// Quickstart: build a CentOS 7 container image, fully unprivileged, on a
// simulated HPC login node.
//
// Walks the paper's arc in one program: the naive Type III build fails at
// chown(2) (Fig 2), then `--force` auto-injects fakeroot(1) and the same
// Dockerfile builds (Fig 10), and the image runs under the Type III runtime.
#include <iostream>

#include "core/chimage.hpp"
#include "core/cluster.hpp"

using namespace minicon;

int main() {
  // One x86_64 login node with repositories and a registry.
  core::ClusterOptions copts;
  copts.name = "demo";
  copts.arch = "x86_64";
  copts.compute_nodes = 1;
  core::Cluster cluster(copts);

  auto alice = cluster.user_on(cluster.login());
  if (!alice.ok()) {
    std::cerr << "cannot log in\n";
    return 1;
  }

  const std::string dockerfile =
      "FROM centos:7\n"
      "RUN echo hello\n"
      "RUN yum install -y openssh\n";

  std::cout << "$ cat centos7.dockerfile\n" << dockerfile << "\n";

  // --- 1. plain unprivileged build: fails at cpio: chown -------------------
  {
    std::cout << "$ ch-image build -t foo -f centos7.dockerfile .\n";
    core::ChImage ch(cluster.login(), *alice, &cluster.registry());
    Transcript t;
    t.echo_to(std::cout);
    const int status = ch.build("foo", dockerfile, t);
    std::cout << "exit status: " << status << "\n\n";
  }

  // --- 2. the same Dockerfile with --force: fakeroot injected, build OK ----
  core::ChImageOptions opts;
  opts.force = true;
  core::ChImage ch(cluster.login(), *alice, &cluster.registry(), opts);
  {
    std::cout << "$ ch-image build --force -t foo -f centos7.dockerfile .\n";
    Transcript t;
    t.echo_to(std::cout);
    const int status = ch.build("foo", dockerfile, t);
    std::cout << "exit status: " << status << "\n\n";
    if (status != 0) return 1;
  }

  // --- 3. run the image (ch-run) and push it -------------------------------
  {
    std::cout << "$ ch-run foo -- ssh\n";
    Transcript t;
    t.echo_to(std::cout);
    ch.run_in_image("foo", {"ssh"}, t);
    std::cout << "$ ch-image push foo demo/foo:latest\n";
    Transcript pt;
    pt.echo_to(std::cout);
    ch.push("foo", "demo/foo:latest", pt);
  }
  return 0;
}
