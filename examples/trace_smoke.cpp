// Trace-export smoke check (tier-1): build a multi-stage Dockerfile with
// `ch-image build --force --trace`, export the Chrome trace_event JSON, and
// validate it — well-formed JSON, and spans nesting
// build → stage → instruction → syscall-batch.
//
// Then the flight-recorder forensics smoke: a second build with a fault
// layer injecting EIO and the recorder on must fail AND leave a
// post-mortem — a well-formed dump whose fault-injected event carries the
// build's trace id and precedes the build-failed anchor.
//
// Usage: trace_smoke [output.json]. Exits non-zero if the build fails or
// the exported trace does not validate; tier1.sh runs it as a stage.
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/chimage.hpp"
#include "core/cluster.hpp"
#include "kernel/faultinject.hpp"
#include "obs/flightrec.hpp"
#include "shell/obscmd.hpp"
#include "shell/registry.hpp"

using namespace minicon;

namespace {

// The canonical fan-out shape: two independent stages feeding a final one,
// with yum RUNs so --force injects fakeroot (the Fig 10 arc).
constexpr const char* kDockerfile =
    "FROM centos:7 AS a\n"
    "RUN echo alpha > /a.txt\n"
    "FROM centos:7 AS b\n"
    "RUN yum install -y openssh\n"
    "FROM centos:7\n"
    "COPY --from=a /a.txt /a.txt\n"
    "RUN cat /a.txt\n";

// Minimal structural JSON scan: braces/brackets balanced outside strings,
// string escapes legal, input fully consumed.
bool json_well_formed(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string && !s.empty();
}

int fail(const std::string& why) {
  std::cerr << "trace_smoke: FAIL: " << why << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "trace_smoke.json";

  core::ClusterOptions copts;
  copts.name = "smoke";
  copts.arch = "x86_64";
  core::Cluster cluster(copts);
  auto user = cluster.user_on(cluster.login());
  if (!user.ok()) return fail("cannot log in");

  obs::MetricsRegistry metrics;
  core::ChImageOptions opts;
  opts.force = true;
  opts.trace = true;
  opts.build_cache = true;
  opts.metrics = &metrics;
  core::ChImage ch(cluster.login(), *user, &cluster.registry(), opts);

  std::cout << "$ ch-image build --force --trace -t smoke -f Dockerfile .\n";
  Transcript t;
  t.echo_to(std::cout);
  if (const int status = ch.build("smoke", kDockerfile, t); status != 0) {
    return fail("build exited " + std::to_string(status));
  }

  // The same export the `trace export <path>` builtin performs, via the
  // builtin itself so the shell surface is exercised too.
  shell::register_obs_commands(*cluster.command_registry(), &metrics,
                               ch.tracer());
  Transcript bt;
  if (ch.run_in_image("smoke", {"trace", "export", "/trace.json"}, bt) != 0) {
    return fail("trace export builtin failed");
  }
  const std::string json = ch.tracer()->chrome_trace_json();
  std::ofstream f(out_path, std::ios::binary);
  f << json;
  f.close();
  if (!f) return fail("cannot write " + out_path);

  // --- validate ------------------------------------------------------------
  if (!json_well_formed(json)) return fail("exported JSON is not well-formed");
  for (const char* name : {"\"name\":\"build\"", "\"name\":\"stage\"",
                           "\"name\":\"instruction\"",
                           "\"name\":\"syscall-batch\"", "\"traceEvents\""}) {
    if (json.find(name) == std::string::npos) {
      return fail(std::string("missing ") + name);
    }
  }
  // Nesting: every stage hangs off the build span, every instruction off a
  // stage, every syscall-batch off an instruction.
  const auto spans = ch.tracer()->spans();
  std::map<obs::SpanId, std::string> name_of;
  for (const auto& s : spans) name_of[s.id] = s.name;
  std::map<std::string, int> count;
  for (const auto& s : spans) {
    ++count[s.name];
    const std::string parent =
        s.parent == obs::kNoSpan ? "" : name_of[s.parent];
    if (s.name == "stage" && parent != "build") {
      return fail("stage span not under build");
    }
    if (s.name == "instruction" && parent != "stage") {
      return fail("instruction span not under stage");
    }
    if (s.name == "syscall-batch" && parent != "instruction") {
      return fail("syscall-batch span not under instruction");
    }
    if (s.end_us < s.start_us) return fail("span " + s.name + " never ended");
  }
  if (count["build"] != 1 || count["stage"] != 3 || count["instruction"] < 3 ||
      count["syscall-batch"] < 2) {
    return fail("span census wrong: build=" + std::to_string(count["build"]) +
                " stage=" + std::to_string(count["stage"]) +
                " instruction=" + std::to_string(count["instruction"]) +
                " syscall-batch=" + std::to_string(count["syscall-batch"]));
  }
  // The registry saw the same build: syscall and cache activity must be
  // non-zero and agree with the per-subsystem structs.
  if (metrics.counter("syscall.calls").value() == 0) {
    return fail("syscall.calls is zero under --trace");
  }
  if (metrics.counter("cache.misses").value() != ch.cache_stats().misses) {
    return fail("cache.misses disagrees with CacheStats");
  }

  // --- flight-recorder forensics ------------------------------------------
  // A doomed build: a fault layer injects EIO on every syscall touching the
  // file its RUN writes. The build must fail and the always-on recorder
  // must be able to explain why, filtered to just this build's trace id.
  obs::FlightRecorder rec(256);
  core::ChImageOptions fopts;
  fopts.force = true;
  fopts.observe_syscalls = true;
  fopts.metrics = &metrics;
  fopts.flight_recorder = &rec;
  fopts.syscall_layers.push_back(
      [&rec](std::shared_ptr<kernel::Syscalls> inner) {
        kernel::FaultSpec spec;
        spec.path_substr = "doomed.txt";
        spec.error = Err::eio;
        auto layer = std::make_shared<kernel::FaultInjectSyscalls>(
            std::move(inner), /*seed=*/42, spec);
        layer->set_flight_recorder(&rec);
        return layer;
      });
  core::ChImage doomed(cluster.login(), *user, &cluster.registry(), fopts);
  std::cout << "\n$ ch-image build -t doomed -f Dockerfile .   "
               "# EIO injected on doomed.txt\n";
  Transcript dt;
  if (doomed.build("doomed", "FROM centos:7\nRUN echo x > /doomed.txt\n",
                   dt) == 0) {
    return fail("fault-injected build unexpectedly succeeded");
  }

  const auto events = rec.dump();
  if (events.empty()) return fail("flight recorder captured nothing");
  std::uint64_t fault_trace = 0;
  std::size_t fault_at = events.size();
  std::size_t failed_at = events.size();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == obs::FlightKind::kFaultInjected &&
        fault_at == events.size()) {
      fault_at = i;
      fault_trace = events[i].trace_id;
    }
    if (events[i].kind == obs::FlightKind::kBuildFailed) failed_at = i;
  }
  if (fault_at == events.size()) return fail("no fault-injected event");
  if (failed_at == events.size()) return fail("no build-failed anchor event");
  if (fault_trace == 0) return fail("fault event missing a trace id");
  if (events[failed_at].trace_id != fault_trace) {
    return fail("fault and build-failed carry different trace ids");
  }
  if (fault_at >= failed_at) {
    return fail("dump is not causally ordered: fault after build-failed");
  }

  // The rendered post-mortem, filtered to the doomed build: a summary
  // header, one indented "+<t>us" line per event, the injected EIO visible.
  const std::string dump = rec.dump_text(fault_trace);
  if (dump.rfind("flight recorder: ", 0) != 0) {
    return fail("dump_text missing summary header");
  }
  std::size_t lines = 0;
  for (std::size_t pos = dump.find('\n');
       pos != std::string::npos && pos + 1 < dump.size();
       pos = dump.find('\n', pos + 1)) {
    ++lines;
    if (dump.compare(pos + 1, 3, "  +") != 0) {
      return fail("malformed dump line after offset " + std::to_string(pos));
    }
  }
  if (lines == 0) return fail("dump_text has no event lines");
  for (const char* needle : {"fault-injected", "EIO", "build-failed"}) {
    if (dump.find(needle) == std::string::npos) {
      return fail(std::string("post-mortem missing ") + needle);
    }
  }
  if (dump.find("fault-injected") > dump.find("build-failed")) {
    return fail("post-mortem text out of causal order");
  }

  std::cout << "\n$ flight dump " << std::hex << fault_trace << std::dec
            << "\n"
            << dump;
  std::cout << "\n$ trace tree\n" << ch.tracer()->span_tree();
  std::cout << "\ntrace_smoke: OK: " << spans.size() << " spans -> "
            << out_path << ", " << events.size()
            << " flight events for the doomed build\n";
  return 0;
}
