// A guided tour of the paper's §2: user namespaces, ID maps, and why
// unprivileged build is hard — demonstrated with raw syscalls rather than
// the builders. Useful for understanding what the builders automate.
#include <iostream>

#include "core/cluster.hpp"
#include "core/machine.hpp"
#include "fakeroot/fakeroot.hpp"
#include "kernel/helpers.hpp"
#include "kernel/syscalls.hpp"

using namespace minicon;

namespace {

void show(const std::string& title) { std::cout << "\n== " << title << " ==\n"; }

void result(const std::string& what, const VoidResult& rc) {
  std::cout << "  " << what << " -> "
            << (rc.ok() ? "OK"
                        : std::string(err_name(rc.error())) + " (" +
                              std::string(err_message(rc.error())) + ")")
            << "\n";
}

}  // namespace

int main() {
  auto universe = std::make_shared<pkg::RepoUniverse>();
  auto registry = core::make_full_registry(universe);
  core::MachineOptions mo;
  mo.hostname = "tour";
  mo.registry = registry;
  core::Machine m(mo);
  auto alice_r = m.add_user("alice", 1000);
  if (!alice_r.ok()) return 1;
  kernel::Process alice = *alice_r;
  std::string out, err;

  show("1. an unprivileged user cannot chown (the classic rule)");
  m.run(alice, "touch /home/alice/f", out, err);
  result("chown(f, 0, 0) as alice",
         alice.sys->chown(alice, "/home/alice/f", 0, 0, true));

  show("2. unprivileged user namespace: root inside, alice outside (§2.1.3)");
  kernel::Process inside = alice.clone();
  (void)inside.sys->unshare_userns(inside);
  (void)inside.sys->write_setgroups(
      inside, inside.userns, kernel::UserNamespace::SetgroupsPolicy::kDeny);
  (void)inside.sys->write_uid_map(inside, inside.userns,
                                  kernel::IdMap::single(0, 1000));
  (void)inside.sys->write_gid_map(inside, inside.userns,
                                  kernel::IdMap::single(0, 1000));
  std::cout << "  getuid() inside: " << inside.sys->getuid(inside)
            << "   (kernel credential is still "
            << inside.cred.euid << ")\n";
  std::cout << "  /proc/self/uid_map:\n"
            << *inside.sys->read_file(inside, "/proc/self/uid_map");

  show("3. ...but the map has exactly one entry, so package IDs fail (§2.3)");
  result("chown(f, 0, 998 /* ssh_keys */) as in-namespace root",
         inside.sys->chown(inside, "/home/alice/f", 0, 998, true));
  result("setgroups({65534}) (apt's sandbox drop)",
         inside.sys->setgroups(inside, {65534}));
  result("seteuid(100 /* _apt */)", inside.sys->seteuid(inside, 100));

  show("4. privileged helpers install a many-ID map (§2.1.2, Type II)");
  kernel::Process root = m.root_process();
  m.run(root, "usermod --add-subuids 200000-265535 alice && "
              "usermod --add-subgids 200000-265535 alice", out, err);
  kernel::Process type2 = alice.clone();
  (void)type2.sys->unshare_userns(type2);
  auto uid_rc = kernel::newuidmap(m.kernel(), alice, type2.userns,
                                  {{0, 1000, 1}, {1, 200000, 65536}});
  auto gid_rc = kernel::newgidmap(m.kernel(), alice, type2.userns,
                                  {{0, 1000, 1}, {1, 200000, 65536}});
  std::cout << "  newuidmap -> " << (uid_rc.ok() ? "OK" : "refused")
            << ", newgidmap -> " << (gid_rc.ok() ? "OK" : "refused") << "\n";
  result("chown(f, 0, 998) with the privileged map",
         type2.sys->chown(type2, "/home/alice/f", 0, 998, true));
  std::cout << "  on the host the file's group is now kernel GID "
            << [&] {
                 auto loc = root.sys->resolve(root, "/home/alice/f", true);
                 return loc.ok() ? loc->mnt->fs->getattr(loc->ino)->gid : 0u;
               }()
            << " (200000 + 998 - 1)\n";

  show("5. helpers enforce the sysadmin's boundaries");
  kernel::Process greedy = alice.clone();
  (void)greedy.sys->unshare_userns(greedy);
  auto stolen = kernel::newuidmap(m.kernel(), alice, greedy.userns,
                                  {{0, 0, 1}});  // try to map host root
  std::cout << "  mapping host root into alice's namespace -> "
            << (stolen.ok() ? "ALLOWED (bug!)" : "refused") << "\n";

  show("6. fakeroot(1): user-space lies instead of kernel maps (§5.1)");
  kernel::Process faked = inside.clone();
  faked.sys = std::make_shared<fakeroot::FakerootSyscalls>(
      faked.sys, nullptr, fakeroot::FakerootOptions{});
  result("chown(f, 0, 998) under fakeroot",
         faked.sys->chown(faked, "/home/alice/f", 0, 998, true));
  auto lied = faked.sys->stat(faked, "/home/alice/f");
  auto truth = alice.sys->stat(alice, "/home/alice/f");
  std::cout << "  stat inside fakeroot: uid=" << lied->uid
            << " gid=" << lied->gid << "; real: uid=" << truth->uid
            << " gid=" << truth->gid << "\n";

  show("7. the setgroups trap (§2.1.4)");
  m.run(root,
        "groupadd -g 500 managers && touch /bin/reboot && "
        "chmod 705 /bin/reboot && chown root:managers /bin/reboot",
        out, err);
  kernel::Process manager = alice.clone();
  manager.cred.groups = {500};
  std::cout << "  manager (in group 500) may run /bin/reboot: "
            << (manager.sys->access(manager, "/bin/reboot",
                                    kernel::kExecOk).ok()
                    ? "yes"
                    : "no (denied by the group entry)")
            << "\n";
  std::cout << "  if setgroups() were allowed in their namespace they could "
               "drop the group and pass the 'other' bits — which is why "
               "unprivileged namespaces deny it.\n";
  return 0;
}
