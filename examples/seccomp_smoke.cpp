// Zero-consistency (--force=seccomp) smoke check (tier-1): both distro
// scriptlet paths must build under the stateless filter with no fakeroot
// machinery —
//   * rpm: openssh's cpio chown storm plus fuse's %post device scriptlet,
//     which fails its readback check and must surface as a *warning* while
//     the build passes and the divergence note is printed;
//   * apt: openssh-client's sandbox-user chowns and setgid directories.
// Then the detection side of the contract: makedev's postinst reads its
// device node back, so the same build must FAIL under seccomp with the
// mode-specific hint, and pass under --force=fakeroot.
//
// Usage: seccomp_smoke. Exits non-zero if any leg misbehaves; tier1.sh
// runs it as a stage.
#include <iostream>
#include <string>

#include "core/chimage.hpp"
#include "core/cluster.hpp"

using namespace minicon;

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what, const Transcript& t) {
  if (!ok) {
    ++g_failures;
    std::cerr << "FAIL: " << what << "\n--- transcript ---\n"
              << t.text() << "------------------\n";
  } else {
    std::cout << "ok: " << what << "\n";
  }
}

}  // namespace

int main() {
  core::ClusterOptions copts;
  copts.arch = "x86_64";
  copts.compute_nodes = 0;
  core::Cluster cluster(copts);
  auto alice = cluster.user_on(cluster.login());
  if (!alice.ok()) {
    std::cerr << "FAIL: no unprivileged user\n";
    return 1;
  }

  auto build = [&](core::ForceMode mode, const char* tag,
                   const std::string& df, Transcript& t) {
    core::ChImageOptions opts;
    opts.force_mode = mode;
    core::ChImage ch(cluster.login(), *alice, &cluster.registry(), opts);
    return ch.build(tag, df, t);
  };

  {  // rpm path: privilege requested, never read back — passes.
    Transcript t;
    const int rc = build(core::ForceMode::kSeccomp, "rpm-ok",
                         "FROM centos:7\nRUN yum install -y openssh\n", t);
    check(rc == 0, "rpm scriptlet path builds under --force=seccomp", t);
    check(t.contains("will use --force: seccomp"), "seccomp mode announced",
          t);
    check(t.contains("--force: seccomp: faked"), "faked ops reported", t);
  }

  {  // rpm warn-only divergence: %post readback fails, build still passes.
    Transcript t;
    const int rc = build(core::ForceMode::kSeccomp, "rpm-warn",
                         "FROM centos:7\nRUN yum install -y fuse\n", t);
    check(rc == 0, "rpm %post divergence is warn-only", t);
    check(t.contains("warning: %post(fuse"), "rpm scriptlet warning surfaced",
          t);
    check(t.contains("note: zero-consistency mode kept no state"),
          "divergence note printed", t);
  }

  {  // apt path: sandbox chowns + setgid dirs — passes.
    Transcript t;
    const int rc =
        build(core::ForceMode::kSeccomp, "apt-ok",
              "FROM debian:buster\nRUN apt-get update\n"
              "RUN apt-get install -y openssh-client\n",
              t);
    check(rc == 0, "apt scriptlet path builds under --force=seccomp", t);
  }

  {  // apt hard divergence: device readback must fail under seccomp...
    const std::string df =
        "FROM debian:buster\nRUN apt-get update\n"
        "RUN apt-get install -y makedev\n";
    Transcript t;
    const int rc = build(core::ForceMode::kSeccomp, "apt-diverge", df, t);
    check(rc != 0, "device-readback scriptlet fails under --force=seccomp",
          t);
    check(t.contains("hint: build failed under --force=seccomp"),
          "mode-specific failure hint printed", t);
    // ...and the identical Dockerfile passes under consistent lies.
    Transcript t2;
    const int rc2 = build(core::ForceMode::kFakeroot, "apt-rescued", df, t2);
    check(rc2 == 0, "same build passes under --force=fakeroot", t2);
  }

  if (g_failures > 0) {
    std::cerr << g_failures << " smoke check(s) failed\n";
    return 1;
  }
  std::cout << "seccomp smoke: all legs passed\n";
  return 0;
}
