// Registry-service smoke check (tier-1): two tenants over one cluster
// registry. Walks the whole service surface end to end —
//
//   * alice adopts a built image, tags it, and a P2P parallel launch pulls
//     the service tag (its registry mirror) on every compute node;
//   * bob's tiny quota rejects his push deterministically (ENOSPC) without
//     storing a byte;
//   * a second build moves alice's tag with compare-and-swap;
//   * an untagged scratch upload survives the first GC cycle (grace) and is
//     reclaimed by the second, while the tagged image keeps serving.
//
// Exits non-zero if any property fails.
#include <iostream>
#include <string>

#include "core/chimage.hpp"
#include "core/cluster.hpp"
#include "service/service.hpp"

using namespace minicon;

namespace {

int fail(const std::string& why) {
  std::cerr << "service_smoke: " << why << "\n";
  return 1;
}

std::string scratch_blob(std::size_t n) {
  std::string s(n, '\0');
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = static_cast<char>((i * 131 + (i >> 16) * 17) & 0xff);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::stoi(argv[1]) : 8;

  core::ClusterOptions copts;
  copts.arch = "x86_64";
  copts.compute_nodes = nodes;
  core::Cluster cluster(copts);

  auto alice = cluster.user_on(cluster.login());
  if (!alice.ok()) return fail("login failed");
  core::ChImage ch(cluster.login(), *alice, &cluster.registry());
  Transcript bt;
  if (ch.build("app", "FROM centos:7\nRUN echo v1 > /version\n", bt) != 0) {
    return fail("build failed:\n" + bt.text());
  }
  Transcript pt;
  if (ch.push("app", "builder/app:1", pt) != 0) {
    return fail("push failed:\n" + pt.text());
  }

  service::RegistryService svc(cluster.registry());

  service::Quota roomy;
  roomy.max_bytes = 1ull << 30;
  if (!svc.create_tenant("alice", roomy).ok()) return fail("create alice");
  service::Quota tiny;
  tiny.max_bytes = 1000;
  if (!svc.create_tenant("bob", tiny).ok()) return fail("create bob");

  // --- alice adopts + tags the built image ------------------------------
  auto v1 = svc.adopt_image("alice", "builder/app:1");
  if (!v1.ok()) return fail("adopt v1");
  if (!svc.tag("alice", "app:latest", *v1).ok()) return fail("tag v1");
  auto pulled = svc.pull("alice", "app:latest");
  if (!pulled.ok() || pulled->bytes == 0) return fail("service pull v1");

  // --- bob's quota rejects before storing anything ----------------------
  auto rejected = svc.push_blob("bob", scratch_blob(4096));
  if (rejected.ok() || rejected.error() != Err::enospc) {
    return fail("bob's over-quota push was not rejected with ENOSPC");
  }
  auto bob = svc.tenant_stats("bob");
  if (!bob.ok() || bob->bytes_used != 0 || bob->quota_rejections != 1) {
    return fail("quota rejection charged bob anyway");
  }

  // --- tag move (CAS) to a second build ---------------------------------
  Transcript bt2;
  if (ch.build("app2", "FROM centos:7\nRUN echo v2 > /version\n", bt2) != 0) {
    return fail("build v2 failed");
  }
  Transcript pt2;
  if (ch.push("app2", "builder/app:2", pt2) != 0) return fail("push v2");
  auto v2 = svc.adopt_image("alice", "builder/app:2");
  if (!v2.ok()) return fail("adopt v2");
  if (!svc.retarget("alice", "app:latest", *v2, *v1).ok()) {
    return fail("CAS tag move");
  }
  if (*svc.resolve("alice", "app:latest") != *v2) return fail("resolve v2");

  // --- GC: grace, then reclaim; tagged content untouched ----------------
  auto scratch = svc.push_blob("alice", scratch_blob(300000));
  if (!scratch.ok()) return fail("scratch push");
  service::GcStats first = svc.run_gc();
  if (first.reclaimed_bytes != 0) {
    return fail("first GC cycle broke the upload grace window");
  }
  service::GcStats second = svc.run_gc();
  if (second.reclaimed_bytes == 0) {
    return fail("second GC cycle reclaimed nothing");
  }
  if (!svc.pull("alice", "app:latest").ok()) {
    return fail("tagged image died under GC");
  }

  // --- P2P parallel launch through the service tag's mirror -------------
  core::Cluster::LaunchOptions opts;
  opts.mode = core::Cluster::LaunchMode::kP2P;
  const std::string mirror =
      service::RegistryService::mirror_reference("alice", "app:latest");
  auto result = cluster.parallel_launch(mirror, {"hostname"}, opts);
  if (result.nodes_ok != nodes || result.nodes_failed != 0) {
    return fail("P2P launch of " + mirror + " failed on " +
                std::to_string(result.nodes_failed) + " node(s)");
  }
  const std::uint64_t per_node_total =
      static_cast<std::uint64_t>(nodes) * result.image_bytes;
  if (result.image_bytes == 0 || result.registry_bytes >= per_node_total) {
    return fail("P2P registry traffic not sublinear");
  }

  std::cout << "service_smoke: OK (pull=" << pulled->bytes
            << "B, gc reclaimed=" << second.reclaimed_bytes
            << "B, p2p registry=" << result.registry_bytes << "/"
            << per_node_total << "B)\n";
  return 0;
}
