// The §5.3.3 production pattern: a CI pipeline of three Dockerfiles run
// with `ch-image build --force` on supercomputer compute nodes —
//   (1) install and configure OpenMPI in a CentOS base image,
//   (2) install the (Spack-like) environment the application needs,
//   (3) build the application itself —
// then push the final image to a private registry and run smoke tests from
// a fresh pull, exactly like the validation stage the paper describes.
#include <iostream>

#include "core/chimage.hpp"
#include "core/cluster.hpp"

using namespace minicon;

namespace {

int stage(core::ChImage& ch, const std::string& name, const std::string& tag,
          const std::string& dockerfile) {
  std::cout << "\n### CI stage: " << name << " ###\n";
  Transcript t;
  t.echo_to(std::cout);
  const int status = ch.build(tag, dockerfile, t);
  if (status != 0) {
    std::cerr << "stage " << name << " failed (exit " << status << ")\n";
  }
  return status;
}

}  // namespace

int main() {
  core::ClusterOptions copts;
  copts.name = "ci";
  copts.arch = "x86_64";
  copts.compute_nodes = 1;
  core::Cluster cluster(copts);
  auto runner = cluster.user_on(cluster.login());
  if (!runner.ok()) return 1;

  // The CI runner is an unprivileged user; everything below is Type III.
  core::ChImageOptions opts;
  opts.force = true;
  opts.build_cache = true;  // iterative development: warm rebuilds are free
  core::ChImage ch(cluster.login(), *runner, &cluster.registry(), opts);

  // Stage 1: OpenMPI on the CentOS base.
  if (stage(ch, "openmpi", "ci/openmpi",
            "FROM centos:7\n"
            "RUN yum install -y gcc openmpi-devel\n"
            "RUN echo 'btl = self,vader' > /etc/openmpi-mca-params.conf\n"))
    return 1;
  Transcript p1;
  if (ch.push("ci/openmpi", "ci/openmpi:latest", p1) != 0) return 1;

  // Stage 2: the Spack-ish environment on top of stage 1.
  if (stage(ch, "spack-env", "ci/env",
            "FROM ci/openmpi:latest\n"
            "RUN yum install -y spack make\n"
            "RUN spack\n"))
    return 1;
  Transcript p2;
  if (ch.push("ci/env", "ci/env:latest", p2) != 0) return 1;

  // Stage 3: the application.
  if (stage(ch, "application", "ci/app",
            "FROM ci/env:latest\n"
            "RUN echo 'int main(){return 0;}' > /src.c\n"
            "RUN mpicc -o /usr/bin/app /src.c\n"
            "CMD [\"app\"]\n"))
    return 1;
  Transcript p3;
  p3.echo_to(std::cout);
  if (ch.push("ci/app", "ci/app:latest", p3) != 0) return 1;

  // Validation stage: a *different* job pulls the pushed image and runs the
  // smoke tests on a compute node.
  std::cout << "\n### CI stage: validate (compute node) ###\n";
  auto node_user = cluster.compute(0).login("alice");
  if (!node_user.ok()) return 1;
  core::ChImage validate(cluster.compute(0), *node_user, &cluster.registry());
  Transcript vt;
  vt.echo_to(std::cout);
  if (validate.pull("ci/app:latest", "smoke", vt) != 0) return 1;
  Transcript rt;
  rt.echo_to(std::cout);
  const int smoke = validate.run_in_image(
      "smoke", {"sh", "-c", "app && mpirun -np 2 app && echo SMOKE-PASS"},
      rt);
  if (smoke != 0 || !rt.contains("SMOKE-PASS")) {
    std::cerr << "smoke tests failed\n";
    return 1;
  }
  std::cout << "\npipeline green: ci/app:latest validated\n";

  // Iterative development: the second run of the whole pipeline is nearly
  // free thanks to the per-instruction cache (a §6.2.2 extension).
  std::cout << "\n### rebuild (warm cache) ###\n";
  Transcript wt;
  stage(ch, "openmpi (rebuild)", "ci/openmpi",
        "FROM centos:7\n"
        "RUN yum install -y gcc openmpi-devel\n"
        "RUN echo 'btl = self,vader' > /etc/openmpi-mca-params.conf\n");
  std::cout << "cache hits: " << ch.cache_hits() << "\n";
  return 0;
}
