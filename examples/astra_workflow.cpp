// The Astra workflow (Fig 6), end to end, as a user would drive it:
//
//   1. podman build the ATSE-like software stack on the aarch64 login node
//      (rootless, privileged helpers, VFS storage driver — the RHEL7-era
//      configuration the paper describes);
//   2. podman push to the site's OCI registry;
//   3. launch the containerized app across the compute nodes with a Type III
//      runtime, both by pulling per node and from the shared filesystem.
//
// Also shows the motivating failure: an x86_64 image simply does not run on
// the Arm machine.
#include <iostream>

#include "core/chimage.hpp"
#include "core/cluster.hpp"
#include "core/podman.hpp"
#include "image/tar.hpp"

using namespace minicon;

int main() {
  core::ClusterOptions copts;
  copts.name = "astra";
  copts.arch = "aarch64";
  copts.compute_nodes = 4;
  core::Cluster astra(copts);
  auto alice = astra.user_on(astra.login());
  if (!alice.ok()) {
    std::cerr << "login failed\n";
    return 1;
  }
  std::cout << "cluster: " << astra.login().hostname() << " + "
            << astra.compute_count() << " compute nodes ("
            << astra.login().arch() << ")\n\n";

  // --- why we must build here: x86 images do not run ------------------------
  {
    auto x86 = astra.registry().get_manifest("centos:7", "x86_64");
    image::Manifest laptop_image = *x86;
    laptop_image.reference = "laptop/app:x86";
    astra.registry().put_manifest(laptop_image);
    core::ChImage ch(astra.login(), *alice, &astra.registry());
    Transcript t;
    ch.pull("laptop/app:x86", "wrong", t);
    Transcript rt;
    const int status = ch.run_in_image("wrong", {"ls"}, rt);
    std::cout << "$ ch-run wrong -- ls   # image built on an x86 laptop\n"
              << rt.text() << "(exit " << status << ")\n\n";
  }

  // --- 1. rootless podman build on the login node ---------------------------
  const std::string atse_dockerfile =
      "FROM centos:7\n"
      "RUN yum install -y gcc openmpi-devel spack\n"
      "RUN echo 'int main(){return 0;}' > /tmp/miniapp.c\n"
      "RUN mpicc -o /usr/bin/miniapp /tmp/miniapp.c\n"
      "CMD [\"mpirun\", \"-np\", \"2\", \"miniapp\"]\n";
  std::cout << "$ podman build -t atse .   # on " << astra.login().hostname()
            << "\n";
  core::PodmanOptions popts;
  popts.driver = core::PodmanOptions::Driver::kVfs;
  core::Podman podman(astra.login(), *alice, &astra.registry(), popts);
  Transcript bt;
  bt.echo_to(std::cout);
  if (podman.build("atse", atse_dockerfile, bt) != 0) return 1;

  // --- 2. push to the registry ----------------------------------------------
  std::cout << "\n$ podman push atse " << astra.registry().name()
            << "/atse/app:1.2.5\n";
  Transcript pt;
  pt.echo_to(std::cout);
  if (podman.push("atse", "atse/app:1.2.5", pt) != 0) return 1;

  // --- 3. distributed launch -------------------------------------------------
  std::cout << "\n$ srun -N" << astra.compute_count()
            << " ch-run atse/app:1.2.5 -- miniapp   # pull per node\n";
  auto pulled = astra.parallel_launch("atse/app:1.2.5", {"miniapp"}, false);
  std::cout << "  nodes ok: " << pulled.nodes_ok << "/"
            << astra.compute_count() << ", wall: " << pulled.wall_ms
            << " ms, registry pulls so far: " << astra.registry().pulls()
            << "\n";
  for (const auto& out : pulled.outputs) {
    std::cout << "    node says: " << out;
  }

  std::cout << "\n$ srun -N" << astra.compute_count()
            << " ch-run /lustre/.../atse -- miniapp   # shared filesystem\n";
  auto shared = astra.parallel_launch("atse/app:1.2.5", {"miniapp"}, true);
  std::cout << "  nodes ok: " << shared.nodes_ok << "/"
            << astra.compute_count() << ", wall: " << shared.wall_ms
            << " ms\n";
  return pulled.nodes_ok == astra.compute_count() &&
                 shared.nodes_ok == astra.compute_count()
             ? 0
             : 1;
}
