// P2P distribution smoke check (tier-1): build an image on the login node,
// push it, launch it on 8 compute nodes in P2P mode, and assert the swarm's
// headline property — the registry serves far less than one image copy per
// node (`swarm.registry_bytes < nodes × image_bytes`). tier1.sh runs this
// under TSAN: the seed/exchange phases hammer the shared chunk caches from
// every pool worker, so a data race in the swarm or registry shows up here.
//
// Usage: swarm_smoke [nodes]. Exits non-zero on any failed node or if the
// registry traffic is not sublinear.
#include <iostream>
#include <string>

#include "core/chimage.hpp"
#include "core/cluster.hpp"

using namespace minicon;

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::stoi(argv[1]) : 8;

  core::ClusterOptions copts;
  copts.arch = "x86_64";
  copts.compute_nodes = nodes;
  core::Cluster cluster(copts);

  auto alice = cluster.user_on(cluster.login());
  if (!alice.ok()) {
    std::cerr << "swarm_smoke: login failed\n";
    return 1;
  }
  core::ChImage ch(cluster.login(), *alice, &cluster.registry());
  Transcript bt;
  if (ch.build("job", "FROM centos:7\nRUN echo swarm-ready\n", bt) != 0) {
    std::cerr << "swarm_smoke: build failed\n" << bt.text();
    return 1;
  }
  Transcript pt;
  if (ch.push("job", "smoke/swarm:1", pt) != 0) {
    std::cerr << "swarm_smoke: push failed\n" << pt.text();
    return 1;
  }

  core::Cluster::LaunchOptions opts;
  opts.mode = core::Cluster::LaunchMode::kP2P;
  auto result = cluster.parallel_launch("smoke/swarm:1", {"hostname"}, opts);

  std::cout << "swarm_smoke: nodes_ok=" << result.nodes_ok
            << " nodes_failed=" << result.nodes_failed
            << " image_bytes=" << result.image_bytes
            << " registry_bytes=" << result.registry_bytes
            << " peer_bytes=" << result.peer_bytes << "\n";

  if (result.nodes_ok != nodes || result.nodes_failed != 0) {
    std::cerr << "swarm_smoke: launch failed on "
              << result.nodes_failed << " node(s)\n";
    for (const auto& out : result.outputs) std::cerr << out << "\n";
    return 1;
  }
  if (result.image_bytes == 0) {
    std::cerr << "swarm_smoke: empty chunk manifest\n";
    return 1;
  }
  // The criterion from the distribution bench: registry traffic must be
  // sublinear in node count — well under one full image per node.
  const std::uint64_t per_node_total =
      static_cast<std::uint64_t>(nodes) * result.image_bytes;
  if (result.registry_bytes >= per_node_total) {
    std::cerr << "swarm_smoke: registry served " << result.registry_bytes
              << " bytes, not sublinear vs " << per_node_total << "\n";
    return 1;
  }
  std::cout << "swarm_smoke: OK (registry served "
            << 100.0 * static_cast<double>(result.registry_bytes) /
                   static_cast<double>(per_node_total)
            << "% of registry-only traffic)\n";
  return 0;
}
