// OCI-style image manifests and a content-addressed registry.
//
// The registry stands in for the GitLab Container Registry Service in the
// Astra workflow (Fig 6): builders push, compute nodes pull, and blobs are
// addressed by SHA-256 digest. It is built for concurrency because the
// distributed-launch benchmark pulls from up to 64 simulated nodes at once:
// blob storage is sharded by digest prefix (N independent mutexes over
// unordered_map buckets), blobs live behind shared_ptr<const std::string>
// so a pull hands out a reference instead of a copy, and all digesting
// happens outside any lock. Layer blobs can additionally be pushed
// chunk-deduplicated (see ChunkStore): a re-push of a nearly-unchanged
// layer transfers only the chunks whose content changed.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "image/chunkstore.hpp"
#include "support/result.hpp"
#include "vfs/filesystem.hpp"

namespace minicon::support {
class ThreadPool;
}

namespace minicon::image {

struct ImageConfig {
  std::string arch = "x86_64";
  std::string user;  // USER instruction; empty = root
  std::map<std::string, std::string> env;
  std::vector<std::string> cmd;
  std::vector<std::string> entrypoint;
  std::string workdir = "/";
  std::map<std::string, std::string> labels;

  std::string serialize() const;

  // §6.2.5 proposed OCI/Dockerfile extension: explicit marking of images to
  // "disallow", "allow" (default), or "require" ownership flattening.
  // Carried as a label so unmodified tooling ignores it.
  static constexpr const char* kFlattenLabel =
      "org.minicon.ownership-flattening";
  std::string flatten_policy() const {
    auto it = labels.find(kFlattenLabel);
    return it == labels.end() ? "allow" : it->second;
  }
};

struct Manifest {
  std::string reference;  // "centos:7"
  ImageConfig config;
  // Layer blob digests, base layer first. Charliecloud pushes exactly one
  // (flattened) layer; Podman/Docker push one per instruction (§6.1).
  std::vector<std::string> layers;

  std::string serialize() const;
  std::string digest() const;
};

class Registry {
 public:
  static constexpr std::size_t kDefaultShards = 16;

  explicit Registry(std::string name = "registry.example.com",
                    std::size_t shards = kDefaultShards);

  const std::string& name() const { return name_; }

  // Stores a whole blob, returns its "sha256:..." digest. Deduplicates; the
  // digest is computed before any lock is taken and the data moves straight
  // into the bucket.
  std::string put_blob(std::string data);

  // Chunk-deduplicated push: the blob is split into fixed-size chunks,
  // digested (in parallel on `pool` when given) and only chunks absent from
  // the store transfer. Returns the chunk-list blob record; its .digest is
  // usable anywhere a put_blob digest is (manifest layers, get_blob...).
  ChunkedBlob put_blob_chunked(std::string_view data,
                               support::ThreadPool* pool = nullptr);

  // Pipelined upload session: append() bytes as a producer (e.g. the
  // streaming tar serializer) emits them; every full chunk is digested and
  // uploaded on `pool` while later bytes are still being produced. finish()
  // waits for in-flight chunks, commits the blob, and returns its digest.
  class BlobWriter {
   public:
    void append(std::string_view data);
    std::string finish();
    std::uint64_t size() const { return size_; }
    // Bytes actually transferred (novel chunks only); valid after finish().
    std::uint64_t new_bytes() const { return new_bytes_; }

   private:
    friend class Registry;
    BlobWriter(Registry* reg, support::ThreadPool* pool)
        : reg_(reg), pool_(pool) {}
    void flush_chunk();

    Registry* reg_;
    support::ThreadPool* pool_;
    std::string buf_;
    std::vector<std::future<std::pair<std::string, std::uint64_t>>> jobs_;
    std::uint64_t size_ = 0;
    std::uint64_t new_bytes_ = 0;
    bool finished_ = false;
  };
  BlobWriter blob_writer(support::ThreadPool* pool = nullptr) {
    return BlobWriter(this, pool);
  }

  // Zero-copy pull: a shared reference to the stored (or, for chunked
  // blobs, memoized reassembled) bytes. nullptr if absent. Counts the blob's
  // size toward bytes_served() — this is the registry handing image content
  // over the wire.
  std::shared_ptr<const std::string> get_blob_ref(
      const std::string& digest) const;
  // Copying compatibility wrapper over get_blob_ref; nullopt if absent.
  std::optional<std::string> get_blob(const std::string& digest) const;
  bool has_blob(const std::string& digest) const;
  // get_blob_ref without the served-bytes accounting: for callers whose
  // transfer was already charged at chunk granularity (the P2P launch path
  // resolving layer structure it obtained through the swarm).
  std::shared_ptr<const std::string> peek_blob_ref(
      const std::string& digest) const;

  // --- Chunk-granularity serving (peer-to-peer distribution) -------------
  //
  // A launch swarm asks the registry what chunks an image decomposes into
  // (chunk_manifest), then each node fetches only its assigned shard via
  // serve_chunk and trades the rest with peers — total registry traffic is
  // O(unique chunks), not O(nodes × image size).
  struct ChunkRef {
    std::string digest;
    std::uint64_t size = 0;
    // std::hash of `digest`, precomputed once when the manifest is built so
    // the thousands of per-node cache probes during a swarm launch skip
    // re-hashing the digest string (0 = not prehashed, hash on the fly).
    std::size_t key_hash = 0;
  };
  struct ChunkManifest {
    std::vector<ChunkRef> chunks;    // deduplicated, deterministic order
    std::uint64_t total_bytes = 0;   // sum of unique chunk sizes
    std::uint64_t image_bytes = 0;   // layer content bytes (duplicates kept)
  };
  // The deduplicated chunk set of every layer in `m`. Tree layers enumerate
  // per-file chunk boundaries; chunked blob layers reuse their chunk list;
  // legacy whole blobs are chunked into the store on first query. Memoized
  // per layer digest. Fails with enoent when a layer is absent.
  Result<ChunkManifest> chunk_manifest(const Manifest& m);
  // One layer's ordered chunk refs (duplicates kept, no key_hash). With
  // materialize = true the chunks are guaranteed resident in the store
  // afterwards (absent ones are re-chunked from the layer's bytes — the
  // serving path). With materialize = false the call is a pure metadata
  // walk: nothing is stored, nothing counts toward bytes_served() or the
  // push counters — this is what the registry-service GC mark phase uses,
  // so a GC cycle can never inflate tenant-billed traffic. Fails with
  // enoent when the layer is absent.
  Result<std::vector<ChunkRef>> layer_chunk_refs(const std::string& layer,
                                                 bool materialize);
  // Serves one chunk's bytes (counts toward bytes_served() and the
  // `registry.chunk_serves` counter). nullptr when absent.
  std::shared_ptr<const std::string> serve_chunk(const std::string& digest);

  // Merkle-tree layer storage. A layer can be pushed as an immutable
  // snapshot tree instead of a serialized tar blob: put_tree walks the tree
  // and transfers only subtrees the registry does not already hold — dedup
  // at directory granularity, so re-pushing an unchanged image skips whole
  // subtrees in O(1) digest compares — chunking new file contents into the
  // shared ChunkStore. The returned digest has the form "tree:<hex Merkle
  // digest>" and goes into Manifest::layers like a blob digest would.
  struct TreePushResult {
    std::string digest;
    std::uint64_t total_bytes = 0;    // file bytes in the whole tree
    std::uint64_t new_bytes = 0;      // file bytes actually transferred
    std::uint64_t nodes = 0;          // nodes in the whole tree
    std::uint64_t nodes_skipped = 0;  // nodes skipped as already present
  };
  TreePushResult put_tree(const vfs::SnapNodePtr& tree,
                          support::ThreadPool* pool = nullptr);
  // Accepts "tree:<hex>" or bare hex; nullptr if absent. O(1): the tree is
  // shared by pointer, nothing is reassembled. Counts the tree's file bytes
  // toward bytes_served() — a pull through this API takes the whole layer.
  vfs::SnapNodePtr get_tree(const std::string& digest) const;
  // get_tree without the served-bytes accounting: structure/metadata access
  // for callers that moved (or will move) the content at chunk granularity.
  vfs::SnapNodePtr get_tree_meta(const std::string& digest) const;
  bool has_tree(const std::string& digest) const;
  static bool is_tree_digest(const std::string& digest) {
    return digest.rfind("tree:", 0) == 0;
  }

  // Tags a manifest under reference (+ its architecture, supporting
  // multi-arch references like the Astra aarch64 images).
  void put_manifest(const Manifest& m);
  std::optional<Manifest> get_manifest(const std::string& reference,
                                       const std::string& arch) const;
  // Any-arch lookup (single-arch references).
  std::optional<Manifest> get_manifest(const std::string& reference) const;
  // Removes a reference (every arch). Blobs are untouched — content
  // lifetime belongs to the registry-service GC. Returns false if absent.
  bool delete_manifest(const std::string& reference);

  std::vector<std::string> references() const;
  // Every tagged manifest, all references and arches. The registry-service
  // GC marks from these so content tagged directly in the registry (base
  // images, builder pushes) is never swept out from under a tag.
  std::vector<Manifest> all_manifests() const;

  // Forgets a chunked-blob record: the chunk-list index entry, any memoized
  // reassembled pull buffer, and the layer_chunk_refs memo. Chunk data is
  // NOT removed (that is ChunkStore::remove_chunk, driven by the service
  // GC's refcounts). A later put of the same content recreates the record
  // bit-for-bit — content addressing makes resurrection exact.
  void drop_chunked(const std::string& digest);

  const ChunkStore& chunks() const { return chunks_; }
  // Mutable chunk-store handle for components (e.g. the build cache) that
  // store their own chunked data against the registry's deduplicated pool
  // without going through the push path or its traffic counters.
  ChunkStore& chunk_store() { return chunks_; }

  // Re-point the registry's mirrored counters (`registry.pulls`,
  // `registry.pushes`, `registry.bytes_pushed`) at a different
  // MetricsRegistry (null = obs::global_metrics()) and attach a tracer;
  // both forward to the chunk store (`chunk.*` metrics, `chunk.put` spans).
  // Not thread-safe against in-flight traffic — wire up before sharing.
  void set_observability(obs::MetricsRegistry* metrics,
                         std::shared_ptr<obs::Tracer> tracer = nullptr);

  // Traffic counters for the workflow benches.
  // Unique bytes resident (whole blobs + deduplicated chunks).
  std::uint64_t blob_bytes() const;
  // Bytes pushes actually transferred: deduplicated whole blobs and already
  // -present chunks cost nothing (the digest-check handshake skips them).
  std::uint64_t bytes_pushed() const { return bytes_pushed_.load(); }
  // Content bytes the registry handed out: whole blobs (get_blob_ref), tree
  // layers (get_tree), and individual chunks (serve_chunk). The launch
  // benches compare this across distribution modes — sublinear growth in
  // node count is the P2P headline criterion.
  std::uint64_t bytes_served() const { return bytes_served_.load(); }
  std::uint64_t pulls() const { return pulls_.load(); }
  std::uint64_t pushes() const { return pushes_.load(); }

 private:
  struct BlobShard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<const std::string>> blobs;
    std::uint64_t bytes = 0;
  };
  BlobShard& shard_for(const std::string& digest) const;
  // Registers a finished chunk list under its digest.
  void commit_chunked(const ChunkedBlob& blob);
  void push_tree_node(const vfs::SnapNodePtr& node, support::ThreadPool* pool,
                      TreePushResult& res);

  std::string name_;
  mutable std::vector<BlobShard> blob_shards_;
  ChunkStore chunks_;
  // Chunked blob index + memoized reassembled pulls.
  mutable std::mutex chunked_mu_;
  std::unordered_map<std::string, ChunkedBlob> chunked_;
  mutable std::unordered_map<std::string, std::shared_ptr<const std::string>>
      assembled_;
  // Memoized per-layer chunk lists for chunk_manifest (keyed by layer
  // digest; layers are immutable, so entries never invalidate).
  mutable std::mutex layer_chunks_mu_;
  std::unordered_map<std::string, std::vector<ChunkRef>> layer_chunks_;
  // Merkle-tree object index: every pushed node (directories included) is
  // addressable by its hex digest, which is what makes whole-subtree skips
  // possible on later pushes. Nodes are shared pointers into the pushers'
  // own snapshot trees — storage dedup falls out of structural sharing.
  mutable std::mutex trees_mu_;
  std::unordered_map<std::string, vfs::SnapNodePtr> trees_;
  // reference -> arch -> manifest
  mutable std::mutex tags_mu_;
  std::map<std::string, std::map<std::string, Manifest>> tags_;
  mutable std::atomic<std::uint64_t> pulls_{0};
  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> bytes_pushed_{0};
  mutable std::atomic<std::uint64_t> bytes_served_{0};
  // Registry-view mirrors of the atomics above, so the `metrics` builtin
  // reports the same numbers pulls()/pushes()/bytes_pushed() do.
  obs::Counter* pulls_metric_;
  obs::Counter* pushes_metric_;
  obs::Counter* bytes_pushed_metric_;
  obs::Counter* tree_pushes_metric_;
  mutable obs::Counter* bytes_served_metric_;
  obs::Counter* chunk_serves_metric_;
};

}  // namespace minicon::image
