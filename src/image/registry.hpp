// OCI-style image manifests and a content-addressed registry.
//
// The registry stands in for the GitLab Container Registry Service in the
// Astra workflow (Fig 6): builders push, compute nodes pull, and blobs are
// addressed by SHA-256 digest. It is thread-safe because the distributed-
// launch benchmark pulls from many simulated nodes concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "support/result.hpp"

namespace minicon::image {

struct ImageConfig {
  std::string arch = "x86_64";
  std::string user;  // USER instruction; empty = root
  std::map<std::string, std::string> env;
  std::vector<std::string> cmd;
  std::vector<std::string> entrypoint;
  std::string workdir = "/";
  std::map<std::string, std::string> labels;

  std::string serialize() const;

  // §6.2.5 proposed OCI/Dockerfile extension: explicit marking of images to
  // "disallow", "allow" (default), or "require" ownership flattening.
  // Carried as a label so unmodified tooling ignores it.
  static constexpr const char* kFlattenLabel =
      "org.minicon.ownership-flattening";
  std::string flatten_policy() const {
    auto it = labels.find(kFlattenLabel);
    return it == labels.end() ? "allow" : it->second;
  }
};

struct Manifest {
  std::string reference;  // "centos:7"
  ImageConfig config;
  // Layer blob digests, base layer first. Charliecloud pushes exactly one
  // (flattened) layer; Podman/Docker push one per instruction (§6.1).
  std::vector<std::string> layers;

  std::string serialize() const;
  std::string digest() const;
};

class Registry {
 public:
  explicit Registry(std::string name = "registry.example.com")
      : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Stores a blob, returns its "sha256:..." digest. Deduplicates.
  std::string put_blob(std::string data);
  // nullopt if absent.
  std::optional<std::string> get_blob(const std::string& digest) const;
  bool has_blob(const std::string& digest) const;

  // Tags a manifest under reference (+ its architecture, supporting
  // multi-arch references like the Astra aarch64 images).
  void put_manifest(const Manifest& m);
  std::optional<Manifest> get_manifest(const std::string& reference,
                                       const std::string& arch) const;
  // Any-arch lookup (single-arch references).
  std::optional<Manifest> get_manifest(const std::string& reference) const;

  std::vector<std::string> references() const;

  // Traffic counters for the workflow benches.
  std::uint64_t blob_bytes() const;
  std::uint64_t pulls() const { return pulls_.load(); }
  std::uint64_t pushes() const { return pushes_.load(); }

 private:
  std::string name_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> blobs_;  // digest -> bytes
  // reference -> arch -> manifest
  std::map<std::string, std::map<std::string, Manifest>> tags_;
  mutable std::atomic<std::uint64_t> pulls_{0};
  std::atomic<std::uint64_t> pushes_{0};
};

}  // namespace minicon::image
