// In-memory ustar (POSIX.1-1988 tar) archives.
//
// Container image layers are tar archives; ownership, modes, device numbers,
// and symlinks ride in the header exactly as GNU/OCI tooling stores them.
// The paper leans on this twice: archives created *outside* a privileged
// user namespace capture the "wrong" (host-side) IDs (§2.1.2), and
// Charliecloud's push flattens ownership to root:root and clears setuid bits
// to avoid leaking site IDs (§6.1).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "support/result.hpp"
#include "vfs/filesystem.hpp"

namespace minicon::image {

struct TarEntry {
  std::string name;  // path relative to the archive root, no leading slash
  vfs::FileType type = vfs::FileType::Regular;
  std::uint32_t mode = 0644;
  vfs::Uid uid = 0;
  vfs::Gid gid = 0;
  std::string content;   // file data
  std::string linkname;  // symlink target
  std::uint32_t dev_major = 0;
  std::uint32_t dev_minor = 0;
  std::uint64_t mtime = 0;
  std::map<std::string, std::string> xattrs;  // carried via PAX-ish side note
};

// Serializes entries into a ustar byte stream (with two trailing zero
// blocks). Names longer than 100 chars use the ustar prefix field.
std::string tar_create(const std::vector<TarEntry>& entries);

// Streaming serializer: the same byte stream as tar_create, delivered to
// `sink` in pieces (header block, content, padding) as they are produced.
// This is the producer half of the pipelined push path: a chunking sink can
// digest and upload early chunks while later entries still serialize,
// instead of materializing one giant std::string first.
using TarSink = std::function<void(std::string_view)>;
void tar_stream(const std::vector<TarEntry>& entries, const TarSink& sink);

// Parses a ustar byte stream.
Result<std::vector<TarEntry>> tar_parse(const std::string& blob);

// Archives a filesystem subtree (store-side operation: reads raw kernel IDs,
// no permission checks). Entry order is deterministic (preorder, sorted).
Result<std::vector<TarEntry>> tree_to_entries(vfs::Filesystem& fs,
                                              vfs::InodeNum root);

// Materializes entries into a filesystem subtree (store-side operation).
VoidResult entries_to_tree(const std::vector<TarEntry>& entries,
                           vfs::Filesystem& fs, vfs::InodeNum root,
                           const vfs::OpCtx& ctx);

// Charliecloud push transform (§6.1): all files become root:root and
// setuid/setgid bits are cleared, "to avoid leaking site IDs". Device
// entries are dropped (a Type III image cannot contain them anyway).
std::vector<TarEntry> flatten_ownership(std::vector<TarEntry> entries);

class Registry;

// Snapshot ⇄ entry-list conversions. snapshot_to_entries emits the same
// deterministic order tree_to_entries does (preorder, sorted names) with
// mtimes fixed at zero, so equal trees serialize to equal tar bytes;
// entries_to_snapshot builds a frozen Merkle tree straight from a parsed
// layer (the root directory defaults to 0755 root:root — tars do not carry
// their root).
std::vector<TarEntry> snapshot_to_entries(const vfs::SnapNodePtr& tree);
vfs::SnapNodePtr entries_to_snapshot(const std::vector<TarEntry>& entries);

// Resolves a manifest layer digest into entries, whichever representation
// the registry holds: a "tree:" Merkle layer walks the shared snapshot tree
// (no tar bytes exist to parse), a blob digest pulls and parses tar bytes.
Result<std::vector<TarEntry>> registry_layer_entries(const Registry& registry,
                                                     const std::string& digest);

}  // namespace minicon::image

namespace minicon::shell {
class CommandRegistry;
}

namespace minicon::image {
// Registers the tar(1) shell command.
void register_tar_command(shell::CommandRegistry& reg);
}  // namespace minicon::image
