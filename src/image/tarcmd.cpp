// tar(1) shell command.
//
// Unlike the store-side helpers in tar.cpp, this command runs through the
// syscall layer as the calling process, so the IDs it records are the
// *namespace-visible* ones. That is the §2.1.2 corollary: with privileged ID
// maps, archives must be created inside the container for correct IDs —
// outside, the host side of the map leaks into the archive.
#include "image/tar.hpp"
#include "kernel/syscalls.hpp"
#include "shell/shell.hpp"
#include "support/path.hpp"

namespace minicon::image {

namespace {

VoidResult collect_via_syscalls(kernel::Process& p, const std::string& dir,
                                const std::string& prefix,
                                std::vector<TarEntry>& out) {
  MINICON_TRY_ASSIGN(entries, p.sys->readdir(p, dir));
  for (const auto& d : entries) {
    const std::string path = path_join(dir, d.name);
    MINICON_TRY_ASSIGN(st, p.sys->lstat(p, path));
    TarEntry e;
    e.name = prefix.empty() ? d.name : prefix + "/" + d.name;
    e.type = st.type;
    e.mode = st.mode;
    e.uid = st.uid;  // namespace-visible (65534 for unmapped!)
    e.gid = st.gid;
    e.mtime = st.mtime;
    e.dev_major = st.dev_major;
    e.dev_minor = st.dev_minor;
    if (st.type == vfs::FileType::Regular) {
      MINICON_TRY_ASSIGN(data, p.sys->read_file(p, path));
      e.content = std::move(data);
    } else if (st.type == vfs::FileType::Symlink) {
      MINICON_TRY_ASSIGN(target, p.sys->readlink(p, path));
      e.linkname = std::move(target);
    }
    const bool is_dir = st.is_dir();
    const std::string child_prefix = e.name;
    out.push_back(std::move(e));
    if (is_dir) {
      MINICON_TRY(collect_via_syscalls(p, path, child_prefix, out));
    }
  }
  return {};
}

int cmd_tar(shell::Invocation& inv) {
  bool create = false, extract = false, list = false;
  std::string archive, chdir_to = ".";
  std::vector<std::string> members;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    const std::string& a = inv.args[i];
    if (a.starts_with("-") || (i == 1 && !a.empty() && a[0] != '/')) {
      std::string flags = a.starts_with("-") ? a.substr(1) : a;
      for (std::size_t j = 0; j < flags.size(); ++j) {
        switch (flags[j]) {
          case 'c': create = true; break;
          case 'x': extract = true; break;
          case 't': list = true; break;
          case 'v': break;
          case 'z': break;  // compression modeled as identity
          case 'f':
            if (i + 1 < inv.args.size()) archive = inv.args[++i];
            break;
          case 'C':
            if (i + 1 < inv.args.size()) chdir_to = inv.args[++i];
            break;
          default: break;
        }
      }
      continue;
    }
    if (a == "-C" && i + 1 < inv.args.size()) {
      chdir_to = inv.args[++i];
      continue;
    }
    members.push_back(a);
  }
  if (archive.empty()) {
    inv.err += "tar: no archive specified\n";
    return 2;
  }
  auto& p = inv.proc;
  if (create) {
    std::vector<TarEntry> entries;
    if (members.empty()) members.push_back(".");
    for (const auto& m : members) {
      const std::string base = m == "." ? chdir_to : path_join(chdir_to, m);
      auto st = p.sys->lstat(p, base);
      if (!st.ok()) {
        inv.err += "tar: " + base + ": " +
                   std::string(err_message(st.error())) + "\n";
        return 2;
      }
      if (m != ".") {
        // The named member itself heads the archive.
        TarEntry e;
        e.name = m;
        e.type = st->type;
        e.mode = st->mode;
        e.uid = st->uid;
        e.gid = st->gid;
        e.mtime = st->mtime;
        if (st->type == vfs::FileType::Regular) {
          auto data = p.sys->read_file(p, base);
          if (data.ok()) e.content = std::move(*data);
        } else if (st->is_symlink()) {
          auto target = p.sys->readlink(p, base);
          if (target.ok()) e.linkname = std::move(*target);
        }
        entries.push_back(std::move(e));
        if (!st->is_dir()) continue;
      }
      if (auto rc = collect_via_syscalls(p, base, m == "." ? "" : m, entries);
          !rc.ok()) {
        inv.err += "tar: " + base + ": " +
                   std::string(err_message(rc.error())) + "\n";
        return 2;
      }
    }
    if (auto rc = p.sys->write_file(p, archive, tar_create(entries), false);
        !rc.ok()) {
      inv.err += "tar: " + archive + ": " +
                 std::string(err_message(rc.error())) + "\n";
      return 2;
    }
    return 0;
  }
  if (list || extract) {
    auto blob = p.sys->read_file(p, archive);
    if (!blob.ok()) {
      inv.err += "tar: " + archive + ": " +
                 std::string(err_message(blob.error())) + "\n";
      return 2;
    }
    auto entries = tar_parse(*blob);
    if (!entries.ok()) {
      inv.err += "tar: " + archive + ": damaged archive\n";
      return 2;
    }
    if (list) {
      for (const auto& e : *entries) {
        inv.out += vfs::format_mode(e.type, e.mode) + " " +
                   std::to_string(e.uid) + "/" + std::to_string(e.gid) + " " +
                   e.name + "\n";
      }
      return 0;
    }
    const bool as_root = p.sys->geteuid(p) == 0;
    for (const auto& e : *entries) {
      const std::string dst = path_join(chdir_to, e.name);
      switch (e.type) {
        case vfs::FileType::Directory:
          if (!p.sys->stat(p, dst).ok()) (void)p.sys->mkdir(p, dst, e.mode);
          break;
        case vfs::FileType::Symlink:
          (void)p.sys->unlink(p, dst);
          (void)p.sys->symlink(p, e.linkname, dst);
          break;
        case vfs::FileType::Regular: {
          (void)p.sys->unlink(p, dst);
          if (auto rc = p.sys->write_file(p, dst, e.content, false, e.mode);
              !rc.ok()) {
            inv.err += "tar: " + dst + ": " +
                       std::string(err_message(rc.error())) + "\n";
            return 2;
          }
          (void)p.sys->chmod(p, dst, e.mode);
          break;
        }
        default: {
          if (auto rc = p.sys->mknod(p, dst, e.type, e.mode, e.dev_major,
                                     e.dev_minor);
              !rc.ok()) {
            inv.err += "tar: " + dst + ": Cannot mknod: " +
                       std::string(err_message(rc.error())) + "\n";
            return 2;
          }
          break;
        }
      }
      // Like GNU tar: restore ownership only when root; otherwise files
      // become the extracting user's, which is how Type III pulls
      // re-own images (§5.2).
      if (as_root && e.type != vfs::FileType::Symlink) {
        if (auto rc = p.sys->chown(p, dst, e.uid, e.gid, false); !rc.ok()) {
          inv.err += "tar: " + dst + ": Cannot change ownership to uid " +
                     std::to_string(e.uid) + ", gid " + std::to_string(e.gid) +
                     ": " + std::string(err_message(rc.error())) + "\n";
          return 2;
        }
      }
    }
    return 0;
  }
  inv.err += "tar: must specify one of -c, -x, -t\n";
  return 2;
}

}  // namespace

void register_tar_command(shell::CommandRegistry& reg) {
  reg.register_external("tar", cmd_tar);
}

}  // namespace minicon::image
