#include "image/registry.hpp"

#include "support/sha256.hpp"

namespace minicon::image {

std::string ImageConfig::serialize() const {
  std::string out = "arch=" + arch + "\nworkdir=" + workdir + "\n";
  if (!user.empty()) out += "user=" + user + "\n";
  for (const auto& [k, v] : env) out += "env:" + k + "=" + v + "\n";
  for (const auto& c : cmd) out += "cmd:" + c + "\n";
  for (const auto& c : entrypoint) out += "entrypoint:" + c + "\n";
  for (const auto& [k, v] : labels) out += "label:" + k + "=" + v + "\n";
  return out;
}

std::string Manifest::serialize() const {
  std::string out = "reference=" + reference + "\n" + config.serialize();
  for (const auto& l : layers) out += "layer:" + l + "\n";
  return out;
}

std::string Manifest::digest() const { return oci_digest(serialize()); }

std::string Registry::put_blob(std::string data) {
  const std::string digest = oci_digest(data);
  std::lock_guard lock(mu_);
  blobs_.try_emplace(digest, std::move(data));
  ++pushes_;
  return digest;
}

std::optional<std::string> Registry::get_blob(const std::string& digest) const {
  std::lock_guard lock(mu_);
  auto it = blobs_.find(digest);
  if (it == blobs_.end()) return std::nullopt;
  ++pulls_;
  return it->second;
}

bool Registry::has_blob(const std::string& digest) const {
  std::lock_guard lock(mu_);
  return blobs_.contains(digest);
}

void Registry::put_manifest(const Manifest& m) {
  std::lock_guard lock(mu_);
  tags_[m.reference][m.config.arch] = m;
}

std::optional<Manifest> Registry::get_manifest(const std::string& reference,
                                               const std::string& arch) const {
  std::lock_guard lock(mu_);
  auto it = tags_.find(reference);
  if (it == tags_.end()) return std::nullopt;
  auto ait = it->second.find(arch);
  if (ait == it->second.end()) return std::nullopt;
  return ait->second;
}

std::optional<Manifest> Registry::get_manifest(
    const std::string& reference) const {
  std::lock_guard lock(mu_);
  auto it = tags_.find(reference);
  if (it == tags_.end() || it->second.empty()) return std::nullopt;
  return it->second.begin()->second;
}

std::vector<std::string> Registry::references() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(tags_.size());
  for (const auto& [ref, _] : tags_) out.push_back(ref);
  return out;
}

std::uint64_t Registry::blob_bytes() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [_, data] : blobs_) total += data.size();
  return total;
}

}  // namespace minicon::image
