#include "image/registry.hpp"

#include "support/sha256.hpp"
#include "support/threadpool.hpp"
#include "vfs/snapshot.hpp"

namespace minicon::image {

std::string ImageConfig::serialize() const {
  std::string out = "arch=" + arch + "\nworkdir=" + workdir + "\n";
  if (!user.empty()) out += "user=" + user + "\n";
  for (const auto& [k, v] : env) out += "env:" + k + "=" + v + "\n";
  for (const auto& c : cmd) out += "cmd:" + c + "\n";
  for (const auto& c : entrypoint) out += "entrypoint:" + c + "\n";
  for (const auto& [k, v] : labels) out += "label:" + k + "=" + v + "\n";
  return out;
}

std::string Manifest::serialize() const {
  std::string out = "reference=" + reference + "\n" + config.serialize();
  for (const auto& l : layers) out += "layer:" + l + "\n";
  return out;
}

std::string Manifest::digest() const { return oci_digest(serialize()); }

Registry::Registry(std::string name, std::size_t shards)
    : name_(std::move(name)),
      blob_shards_(shards == 0 ? kDefaultShards : shards) {
  set_observability(nullptr);
}

void Registry::set_observability(obs::MetricsRegistry* metrics,
                                 std::shared_ptr<obs::Tracer> tracer) {
  obs::MetricsRegistry& reg =
      metrics != nullptr ? *metrics : obs::global_metrics();
  pulls_metric_ = &reg.counter("registry.pulls");
  pushes_metric_ = &reg.counter("registry.pushes");
  bytes_pushed_metric_ = &reg.counter("registry.bytes_pushed");
  tree_pushes_metric_ = &reg.counter("registry.tree_pushes");
  chunks_.set_metrics(metrics);
  chunks_.set_tracer(std::move(tracer));
}

Registry::BlobShard& Registry::shard_for(const std::string& digest) const {
  return blob_shards_[std::hash<std::string>{}(digest) %
                      blob_shards_.size()];
}

std::string Registry::put_blob(std::string data) {
  // Digest outside any lock: hashing is the expensive part, and convoying
  // every concurrent pusher behind it was the old single-mutex design.
  const std::string digest = oci_digest(data);
  const std::uint64_t size = data.size();
  BlobShard& shard = shard_for(digest);
  {
    std::lock_guard lock(shard.mu);
    auto [it, inserted] = shard.blobs.try_emplace(digest, nullptr);
    if (inserted) {
      it->second = std::make_shared<const std::string>(std::move(data));
      shard.bytes += size;
      bytes_pushed_ += size;
      bytes_pushed_metric_->add(size);
    }
  }
  ++pushes_;
  pushes_metric_->add();
  return digest;
}

ChunkedBlob Registry::put_blob_chunked(std::string_view data,
                                       support::ThreadPool* pool) {
  ChunkedBlob blob = chunks_.put(data, pool);
  commit_chunked(blob);
  return blob;
}

void Registry::commit_chunked(const ChunkedBlob& blob) {
  {
    std::lock_guard lock(chunked_mu_);
    chunked_.try_emplace(blob.digest, blob);
  }
  bytes_pushed_ += blob.new_bytes;
  bytes_pushed_metric_->add(blob.new_bytes);
  ++pushes_;
  pushes_metric_->add();
}

void Registry::BlobWriter::flush_chunk() {
  if (buf_.empty()) return;
  if (pool_ != nullptr) {
    jobs_.push_back(pool_->submit(
        [store = &reg_->chunks_, chunk = std::move(buf_)] {
          return store->put_chunk(chunk);
        }));
  } else {
    std::promise<std::pair<std::string, std::uint64_t>> done;
    done.set_value(reg_->chunks_.put_chunk(buf_));
    jobs_.push_back(done.get_future());
  }
  buf_.clear();
}

void Registry::BlobWriter::append(std::string_view data) {
  const std::size_t chunk_size = reg_->chunks_.chunk_size();
  size_ += data.size();
  while (!data.empty()) {
    const std::size_t take =
        std::min(data.size(), chunk_size - buf_.size());
    buf_.append(data.substr(0, take));
    data.remove_prefix(take);
    if (buf_.size() == chunk_size) flush_chunk();
  }
}

std::string Registry::BlobWriter::finish() {
  flush_chunk();
  ChunkedBlob blob;
  blob.size = size_;
  blob.chunks.reserve(jobs_.size());
  for (auto& job : jobs_) {
    auto [digest, added] = job.get();
    new_bytes_ += added;
    blob.chunks.push_back(std::move(digest));
  }
  jobs_.clear();
  blob.new_bytes = new_bytes_;
  blob.digest = ChunkStore::blob_digest(blob.chunks);
  reg_->commit_chunked(blob);
  finished_ = true;
  return blob.digest;
}

std::shared_ptr<const std::string> Registry::get_blob_ref(
    const std::string& digest) const {
  {
    BlobShard& shard = shard_for(digest);
    std::lock_guard lock(shard.mu);
    auto it = shard.blobs.find(digest);
    if (it != shard.blobs.end()) {
      ++pulls_;
      pulls_metric_->add();
      return it->second;
    }
  }
  // Chunked blob: reassemble once, memoize, and share thereafter.
  ChunkedBlob blob;
  {
    std::lock_guard lock(chunked_mu_);
    if (auto it = assembled_.find(digest); it != assembled_.end()) {
      ++pulls_;
      pulls_metric_->add();
      return it->second;
    }
    auto it = chunked_.find(digest);
    if (it == chunked_.end()) return nullptr;
    blob = it->second;
  }
  auto buf = chunks_.assemble(blob);
  if (buf == nullptr) return nullptr;
  std::lock_guard lock(chunked_mu_);
  auto [it, _] = assembled_.try_emplace(digest, std::move(buf));
  ++pulls_;
  pulls_metric_->add();
  return it->second;
}

std::optional<std::string> Registry::get_blob(const std::string& digest) const {
  auto ref = get_blob_ref(digest);
  if (ref == nullptr) return std::nullopt;
  return *ref;
}

void Registry::push_tree_node(const vfs::SnapNodePtr& node,
                              support::ThreadPool* pool, TreePushResult& res) {
  {
    std::lock_guard lock(trees_mu_);
    auto [it, inserted] = trees_.try_emplace(node->digest, node);
    if (!inserted) {
      // This exact subtree (metadata, contents, children) is already held;
      // the digest compare replaces transferring tree_nodes objects.
      res.nodes_skipped += node->tree_nodes;
      return;
    }
  }
  if (node->type == vfs::FileType::Regular && !node->content_view().empty()) {
    const ChunkedBlob blob = chunks_.put(node->content_view(), pool);
    res.new_bytes += blob.new_bytes;
  }
  for (const auto& [name, child] : node->children) {
    push_tree_node(child, pool, res);
  }
}

Registry::TreePushResult Registry::put_tree(const vfs::SnapNodePtr& tree,
                                            support::ThreadPool* pool) {
  TreePushResult res;
  if (tree == nullptr) return res;
  res.total_bytes = tree->tree_bytes;
  res.nodes = tree->tree_nodes;
  push_tree_node(tree, pool, res);
  res.digest = "tree:" + tree->digest;
  ++pushes_;
  pushes_metric_->add();
  tree_pushes_metric_->add();
  bytes_pushed_ += res.new_bytes;
  bytes_pushed_metric_->add(res.new_bytes);
  return res;
}

vfs::SnapNodePtr Registry::get_tree(const std::string& digest) const {
  const std::string hex = is_tree_digest(digest) ? digest.substr(5) : digest;
  std::lock_guard lock(trees_mu_);
  auto it = trees_.find(hex);
  if (it == trees_.end()) return nullptr;
  ++pulls_;
  pulls_metric_->add();
  return it->second;
}

bool Registry::has_tree(const std::string& digest) const {
  const std::string hex = is_tree_digest(digest) ? digest.substr(5) : digest;
  std::lock_guard lock(trees_mu_);
  return trees_.contains(hex);
}

bool Registry::has_blob(const std::string& digest) const {
  {
    BlobShard& shard = shard_for(digest);
    std::lock_guard lock(shard.mu);
    if (shard.blobs.contains(digest)) return true;
  }
  std::lock_guard lock(chunked_mu_);
  return chunked_.contains(digest);
}

void Registry::put_manifest(const Manifest& m) {
  std::lock_guard lock(tags_mu_);
  tags_[m.reference][m.config.arch] = m;
}

std::optional<Manifest> Registry::get_manifest(const std::string& reference,
                                               const std::string& arch) const {
  std::lock_guard lock(tags_mu_);
  auto it = tags_.find(reference);
  if (it == tags_.end()) return std::nullopt;
  auto ait = it->second.find(arch);
  if (ait == it->second.end()) return std::nullopt;
  return ait->second;
}

std::optional<Manifest> Registry::get_manifest(
    const std::string& reference) const {
  std::lock_guard lock(tags_mu_);
  auto it = tags_.find(reference);
  if (it == tags_.end() || it->second.empty()) return std::nullopt;
  return it->second.begin()->second;
}

std::vector<std::string> Registry::references() const {
  std::lock_guard lock(tags_mu_);
  std::vector<std::string> out;
  out.reserve(tags_.size());
  for (const auto& [ref, _] : tags_) out.push_back(ref);
  return out;
}

std::uint64_t Registry::blob_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : blob_shards_) {
    std::lock_guard lock(shard.mu);
    total += shard.bytes;
  }
  return total + chunks_.unique_bytes();
}

}  // namespace minicon::image
