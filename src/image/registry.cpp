#include "image/registry.hpp"

#include <functional>
#include <string_view>
#include <unordered_set>

#include "support/sha256.hpp"
#include "support/threadpool.hpp"
#include "vfs/snapshot.hpp"

namespace minicon::image {

std::string ImageConfig::serialize() const {
  std::string out = "arch=" + arch + "\nworkdir=" + workdir + "\n";
  if (!user.empty()) out += "user=" + user + "\n";
  for (const auto& [k, v] : env) out += "env:" + k + "=" + v + "\n";
  for (const auto& c : cmd) out += "cmd:" + c + "\n";
  for (const auto& c : entrypoint) out += "entrypoint:" + c + "\n";
  for (const auto& [k, v] : labels) out += "label:" + k + "=" + v + "\n";
  return out;
}

std::string Manifest::serialize() const {
  std::string out = "reference=" + reference + "\n" + config.serialize();
  for (const auto& l : layers) out += "layer:" + l + "\n";
  return out;
}

std::string Manifest::digest() const { return oci_digest(serialize()); }

Registry::Registry(std::string name, std::size_t shards)
    : name_(std::move(name)),
      blob_shards_(shards == 0 ? kDefaultShards : shards) {
  set_observability(nullptr);
}

void Registry::set_observability(obs::MetricsRegistry* metrics,
                                 std::shared_ptr<obs::Tracer> tracer) {
  obs::MetricsRegistry& reg =
      metrics != nullptr ? *metrics : obs::global_metrics();
  pulls_metric_ = &reg.counter("registry.pulls");
  pushes_metric_ = &reg.counter("registry.pushes");
  bytes_pushed_metric_ = &reg.counter("registry.bytes_pushed");
  tree_pushes_metric_ = &reg.counter("registry.tree_pushes");
  bytes_served_metric_ = &reg.counter("registry.bytes_served");
  chunk_serves_metric_ = &reg.counter("registry.chunk_serves");
  chunks_.set_metrics(metrics);
  chunks_.set_tracer(std::move(tracer));
}

Registry::BlobShard& Registry::shard_for(const std::string& digest) const {
  return blob_shards_[std::hash<std::string>{}(digest) %
                      blob_shards_.size()];
}

std::string Registry::put_blob(std::string data) {
  // Digest outside any lock: hashing is the expensive part, and convoying
  // every concurrent pusher behind it was the old single-mutex design.
  const std::string digest = oci_digest(data);
  const std::uint64_t size = data.size();
  BlobShard& shard = shard_for(digest);
  {
    std::lock_guard lock(shard.mu);
    auto [it, inserted] = shard.blobs.try_emplace(digest, nullptr);
    if (inserted) {
      it->second = std::make_shared<const std::string>(std::move(data));
      shard.bytes += size;
      bytes_pushed_ += size;
      bytes_pushed_metric_->add(size);
    }
  }
  ++pushes_;
  pushes_metric_->add();
  return digest;
}

ChunkedBlob Registry::put_blob_chunked(std::string_view data,
                                       support::ThreadPool* pool) {
  ChunkedBlob blob = chunks_.put(data, pool);
  commit_chunked(blob);
  return blob;
}

void Registry::commit_chunked(const ChunkedBlob& blob) {
  {
    std::lock_guard lock(chunked_mu_);
    chunked_.try_emplace(blob.digest, blob);
  }
  bytes_pushed_ += blob.new_bytes;
  bytes_pushed_metric_->add(blob.new_bytes);
  ++pushes_;
  pushes_metric_->add();
}

void Registry::BlobWriter::flush_chunk() {
  if (buf_.empty()) return;
  if (pool_ != nullptr) {
    jobs_.push_back(pool_->submit(
        [store = &reg_->chunks_, chunk = std::move(buf_)] {
          return store->put_chunk(chunk);
        }));
  } else {
    std::promise<std::pair<std::string, std::uint64_t>> done;
    done.set_value(reg_->chunks_.put_chunk(buf_));
    jobs_.push_back(done.get_future());
  }
  buf_.clear();
}

void Registry::BlobWriter::append(std::string_view data) {
  const std::size_t chunk_size = reg_->chunks_.chunk_size();
  size_ += data.size();
  while (!data.empty()) {
    const std::size_t take =
        std::min(data.size(), chunk_size - buf_.size());
    buf_.append(data.substr(0, take));
    data.remove_prefix(take);
    if (buf_.size() == chunk_size) flush_chunk();
  }
}

std::string Registry::BlobWriter::finish() {
  flush_chunk();
  ChunkedBlob blob;
  blob.size = size_;
  blob.chunks.reserve(jobs_.size());
  for (auto& job : jobs_) {
    auto [digest, added] = job.get();
    new_bytes_ += added;
    blob.chunks.push_back(std::move(digest));
  }
  jobs_.clear();
  blob.new_bytes = new_bytes_;
  blob.digest = ChunkStore::blob_digest(blob.chunks);
  reg_->commit_chunked(blob);
  finished_ = true;
  return blob.digest;
}

std::shared_ptr<const std::string> Registry::peek_blob_ref(
    const std::string& digest) const {
  {
    BlobShard& shard = shard_for(digest);
    std::lock_guard lock(shard.mu);
    auto it = shard.blobs.find(digest);
    if (it != shard.blobs.end()) return it->second;
  }
  // Chunked blob: reassemble once, memoize, and share thereafter.
  ChunkedBlob blob;
  {
    std::lock_guard lock(chunked_mu_);
    if (auto it = assembled_.find(digest); it != assembled_.end()) {
      return it->second;
    }
    auto it = chunked_.find(digest);
    if (it == chunked_.end()) return nullptr;
    blob = it->second;
  }
  auto buf = chunks_.assemble(blob);
  if (buf == nullptr) return nullptr;
  std::lock_guard lock(chunked_mu_);
  auto [it, _] = assembled_.try_emplace(digest, std::move(buf));
  return it->second;
}

std::shared_ptr<const std::string> Registry::get_blob_ref(
    const std::string& digest) const {
  auto ref = peek_blob_ref(digest);
  if (ref == nullptr) return nullptr;
  ++pulls_;
  pulls_metric_->add();
  bytes_served_ += ref->size();
  bytes_served_metric_->add(ref->size());
  return ref;
}

std::optional<std::string> Registry::get_blob(const std::string& digest) const {
  auto ref = get_blob_ref(digest);
  if (ref == nullptr) return std::nullopt;
  return *ref;
}

void Registry::push_tree_node(const vfs::SnapNodePtr& node,
                              support::ThreadPool* pool, TreePushResult& res) {
  {
    std::lock_guard lock(trees_mu_);
    auto [it, inserted] = trees_.try_emplace(node->digest, node);
    if (!inserted) {
      // This exact subtree (metadata, contents, children) is already held;
      // the digest compare replaces transferring tree_nodes objects.
      res.nodes_skipped += node->tree_nodes;
      return;
    }
  }
  if (node->type == vfs::FileType::Regular && !node->content_view().empty()) {
    const ChunkedBlob blob = chunks_.put(node->content_view(), pool);
    res.new_bytes += blob.new_bytes;
  }
  for (const auto& [name, child] : node->children) {
    push_tree_node(child, pool, res);
  }
}

Registry::TreePushResult Registry::put_tree(const vfs::SnapNodePtr& tree,
                                            support::ThreadPool* pool) {
  TreePushResult res;
  if (tree == nullptr) return res;
  res.total_bytes = tree->tree_bytes;
  res.nodes = tree->tree_nodes;
  push_tree_node(tree, pool, res);
  res.digest = "tree:" + tree->digest;
  ++pushes_;
  pushes_metric_->add();
  tree_pushes_metric_->add();
  bytes_pushed_ += res.new_bytes;
  bytes_pushed_metric_->add(res.new_bytes);
  return res;
}

vfs::SnapNodePtr Registry::get_tree(const std::string& digest) const {
  auto tree = get_tree_meta(digest);
  if (tree == nullptr) return nullptr;
  ++pulls_;
  pulls_metric_->add();
  // A pull through this API walks the whole layer, contents included.
  bytes_served_ += tree->tree_bytes;
  bytes_served_metric_->add(tree->tree_bytes);
  return tree;
}

vfs::SnapNodePtr Registry::get_tree_meta(const std::string& digest) const {
  const std::string hex = is_tree_digest(digest) ? digest.substr(5) : digest;
  std::lock_guard lock(trees_mu_);
  auto it = trees_.find(hex);
  return it == trees_.end() ? nullptr : it->second;
}

bool Registry::has_tree(const std::string& digest) const {
  const std::string hex = is_tree_digest(digest) ? digest.substr(5) : digest;
  std::lock_guard lock(trees_mu_);
  return trees_.contains(hex);
}

bool Registry::has_blob(const std::string& digest) const {
  {
    BlobShard& shard = shard_for(digest);
    std::lock_guard lock(shard.mu);
    if (shard.blobs.contains(digest)) return true;
  }
  std::lock_guard lock(chunked_mu_);
  return chunked_.contains(digest);
}

void Registry::put_manifest(const Manifest& m) {
  std::lock_guard lock(tags_mu_);
  tags_[m.reference][m.config.arch] = m;
}

std::optional<Manifest> Registry::get_manifest(const std::string& reference,
                                               const std::string& arch) const {
  std::lock_guard lock(tags_mu_);
  auto it = tags_.find(reference);
  if (it == tags_.end()) return std::nullopt;
  auto ait = it->second.find(arch);
  if (ait == it->second.end()) return std::nullopt;
  return ait->second;
}

std::optional<Manifest> Registry::get_manifest(
    const std::string& reference) const {
  std::lock_guard lock(tags_mu_);
  auto it = tags_.find(reference);
  if (it == tags_.end() || it->second.empty()) return std::nullopt;
  return it->second.begin()->second;
}

bool Registry::delete_manifest(const std::string& reference) {
  std::lock_guard lock(tags_mu_);
  return tags_.erase(reference) > 0;
}

std::vector<std::string> Registry::references() const {
  std::lock_guard lock(tags_mu_);
  std::vector<std::string> out;
  out.reserve(tags_.size());
  for (const auto& [ref, _] : tags_) out.push_back(ref);
  return out;
}

std::vector<Manifest> Registry::all_manifests() const {
  std::lock_guard lock(tags_mu_);
  std::vector<Manifest> out;
  for (const auto& [ref, arches] : tags_) {
    for (const auto& [arch, m] : arches) out.push_back(m);
  }
  return out;
}

void Registry::drop_chunked(const std::string& digest) {
  {
    std::lock_guard lock(chunked_mu_);
    chunked_.erase(digest);
    assembled_.erase(digest);
  }
  std::lock_guard lock(layer_chunks_mu_);
  layer_chunks_.erase(digest);
}

std::shared_ptr<const std::string> Registry::serve_chunk(
    const std::string& digest) {
  auto buf = chunks_.chunk(digest);
  if (buf == nullptr) return nullptr;
  bytes_served_ += buf->size();
  bytes_served_metric_->add(buf->size());
  chunk_serves_metric_->add();
  return buf;
}

namespace {

// Pure preorder walk collecting per-file chunk refs; children iterate in
// sorted map order, so the list is deterministic for a given tree digest.
// Nothing is stored — boundaries and digests come straight from the
// content, so a GC mark phase can enumerate without touching the store.
void collect_tree_chunk_refs(const vfs::SnapNodePtr& node,
                             std::size_t chunk_size,
                             std::vector<Registry::ChunkRef>& out) {
  if (node->type == vfs::FileType::Regular && !node->content_view().empty()) {
    for (auto& [digest, size] :
         ChunkStore::chunk_refs(node->content_view(), chunk_size)) {
      out.push_back({std::move(digest), size});
    }
  }
  for (const auto& [name, child] : node->children) {
    collect_tree_chunk_refs(child, chunk_size, out);
  }
}

// Re-stores every file whose chunks went missing (a GC sweep reclaimed
// them while the tree stayed resident). put() dedups, so files whose
// chunks survived cost one digest pass and no storage.
void materialize_tree_chunks(const vfs::SnapNodePtr& node, ChunkStore& store) {
  if (node->type == vfs::FileType::Regular && !node->content_view().empty()) {
    (void)store.put(node->content_view());
  }
  for (const auto& [name, child] : node->children) {
    materialize_tree_chunks(child, store);
  }
}

// Expands a chunk list into refs; every chunk is full-size except the last,
// which takes whatever remains of the blob.
void append_chunked_refs(const std::vector<std::string>& chunks,
                         std::uint64_t blob_size, std::size_t chunk_size,
                         std::vector<Registry::ChunkRef>& out) {
  std::uint64_t remaining = blob_size;
  out.reserve(out.size() + chunks.size());
  for (const auto& digest : chunks) {
    const std::uint64_t size =
        std::min<std::uint64_t>(remaining, chunk_size);
    out.push_back({digest, size});
    remaining -= size;
  }
}

}  // namespace

Result<std::vector<Registry::ChunkRef>> Registry::layer_chunk_refs(
    const std::string& layer, bool materialize) {
  std::vector<ChunkRef> refs;
  bool memoized = false;
  {
    std::lock_guard lock(layer_chunks_mu_);
    if (auto it = layer_chunks_.find(layer); it != layer_chunks_.end()) {
      refs = it->second;
      memoized = true;
    }
  }
  if (!memoized) {
    if (is_tree_digest(layer)) {
      auto tree = get_tree_meta(layer);
      if (tree == nullptr) return Err::enoent;
      collect_tree_chunk_refs(tree, chunks_.chunk_size(), refs);
    } else {
      ChunkedBlob blob;
      bool have_chunked = false;
      {
        std::lock_guard lock(chunked_mu_);
        if (auto it = chunked_.find(layer); it != chunked_.end()) {
          blob = it->second;
          have_chunked = true;
        }
      }
      if (have_chunked) {
        append_chunked_refs(blob.chunks, blob.size, chunks_.chunk_size(),
                            refs);
      } else {
        auto data = peek_blob_ref(layer);
        if (data == nullptr) return Err::enoent;
        // Legacy whole blob: the boundaries are computable without storing
        // anything; the chunks themselves migrate into the store only on a
        // materialize (serving) query below.
        for (auto& [digest, size] :
             ChunkStore::chunk_refs(*data, chunks_.chunk_size())) {
          refs.push_back({std::move(digest), size});
        }
      }
    }
    std::lock_guard lock(layer_chunks_mu_);
    layer_chunks_.try_emplace(layer, refs);
  }
  if (materialize) {
    bool all_present = true;
    for (const auto& ref : refs) {
      if (!chunks_.has_chunk(ref.digest)) {
        all_present = false;
        break;
      }
    }
    if (!all_present) {
      if (is_tree_digest(layer)) {
        auto tree = get_tree_meta(layer);
        if (tree == nullptr) return Err::enoent;
        materialize_tree_chunks(tree, chunks_);
      } else {
        // Chunked blobs re-materialize only while the reassembled bytes are
        // still reachable (the memoized pull buffer or the original whole
        // blob); once both are gone the content is genuinely reclaimed.
        auto data = peek_blob_ref(layer);
        if (data == nullptr) return Err::enoent;
        (void)chunks_.put(*data);
      }
    }
  }
  return refs;
}

Result<Registry::ChunkManifest> Registry::chunk_manifest(const Manifest& m) {
  ChunkManifest out;
  std::unordered_set<std::string> seen;
  for (const auto& layer : m.layers) {
    auto refs = layer_chunk_refs(layer, /*materialize=*/true);
    if (!refs.ok()) return refs.error();
    for (auto& ref : *refs) {
      out.image_bytes += ref.size;
      if (seen.insert(ref.digest).second) {
        out.total_bytes += ref.size;
        ref.key_hash = std::hash<std::string_view>{}(ref.digest);
        out.chunks.push_back(std::move(ref));
      }
    }
  }
  return out;
}

std::uint64_t Registry::blob_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : blob_shards_) {
    std::lock_guard lock(shard.mu);
    total += shard.bytes;
  }
  return total + chunks_.unique_bytes();
}

}  // namespace minicon::image
