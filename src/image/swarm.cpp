#include "image/swarm.hpp"

#include <algorithm>

namespace minicon::image {

std::shared_ptr<const std::string> ChunkCache::get(
    const std::string& digest) const {
  std::lock_guard lock(mu_);
  auto it = map_.find(digest);
  return it == map_.end() ? nullptr : it->second;
}

std::uint64_t ChunkCache::put(const std::string& digest,
                              std::shared_ptr<const std::string> data) {
  if (data == nullptr) return 0;
  const std::uint64_t size = data->size();
  std::lock_guard lock(mu_);
  auto [it, inserted] = map_.try_emplace(digest, std::move(data));
  if (!inserted) return 0;
  bytes_ += size;
  return size;
}

bool ChunkCache::has(const std::string& digest) const {
  std::lock_guard lock(mu_);
  return map_.contains(digest);
}

std::uint64_t ChunkCache::bytes() const {
  std::lock_guard lock(mu_);
  return bytes_;
}

std::size_t ChunkCache::count() const {
  std::lock_guard lock(mu_);
  return map_.size();
}

void ChunkCache::clear() {
  std::lock_guard lock(mu_);
  map_.clear();
  bytes_ = 0;
}

namespace {

// Uses the manifest's precomputed digest hash when present; refs built by
// hand (tests, ad-hoc callers) fall back to hashing on the fly.
PrehashedChunkKey chunk_key(const Registry::ChunkRef& ref) {
  return {ref.digest, ref.key_hash != 0
                          ? ref.key_hash
                          : std::hash<std::string_view>{}(ref.digest)};
}

}  // namespace

void ChunkCache::missing_of(const std::vector<Registry::ChunkRef>& refs,
                            std::vector<std::size_t>& out) const {
  std::lock_guard lock(mu_);
  if (map_.empty()) {
    // Cold cache (most nodes of a fresh swarm): everything is missing.
    for (std::size_t i = 0; i < refs.size(); ++i) out.push_back(i);
    return;
  }
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (!map_.contains(chunk_key(refs[i]))) out.push_back(i);
  }
}

void ChunkCache::get_many(
    const std::vector<Registry::ChunkRef>& refs,
    const std::vector<std::size_t>& idx,
    std::vector<std::shared_ptr<const std::string>>& out) const {
  out.assign(idx.size(), nullptr);
  std::lock_guard lock(mu_);
  for (std::size_t k = 0; k < idx.size(); ++k) {
    auto it = map_.find(chunk_key(refs[idx[k]]));
    if (it != map_.end()) out[k] = it->second;
  }
}

std::uint64_t ChunkCache::put_many(
    const std::vector<Registry::ChunkRef>& refs,
    const std::vector<std::size_t>& idx,
    const std::vector<std::shared_ptr<const std::string>>& bufs) {
  if (idx.empty()) return 0;
  std::uint64_t added = 0;
  std::lock_guard lock(mu_);
  // The whole batch lands in one table: grow the buckets once up front
  // instead of rehashing several times mid-insert.
  map_.reserve(map_.size() + idx.size());
  for (std::size_t k = 0; k < idx.size(); ++k) {
    if (bufs[k] == nullptr) continue;
    auto [it, inserted] = map_.try_emplace(refs[idx[k]].digest, bufs[k]);
    if (inserted) added += bufs[k]->size();
  }
  bytes_ += added;
  return added;
}

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// splitmix64 finalizer: one multiply-xor cascade per (chunk, node) score,
// so rendezvous selection over N nodes costs N mixes, not N digest hashes.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

int best_node(std::uint64_t digest_hash, int nodes) {
  int best = 0;
  std::uint64_t best_score = 0;
  for (int n = 0; n < nodes; ++n) {
    const std::uint64_t score = mix(digest_hash ^ static_cast<std::uint64_t>(n));
    if (n == 0 || score > best_score) {
      best = n;
      best_score = score;
    }
  }
  return best;
}

}  // namespace

int DistributionPlan::seeder_of(const std::string& chunk_digest) const {
  if (nodes <= 0) return -1;
  return best_node(fnv1a(chunk_digest), nodes);
}

std::vector<std::vector<std::size_t>> DistributionPlan::shards() const {
  std::vector<std::vector<std::size_t>> out(
      static_cast<std::size_t>(nodes > 0 ? nodes : 0));
  for (std::size_t i = 0; i < seeders.size(); ++i) {
    if (seeders[i] >= 0) {
      out[static_cast<std::size_t>(seeders[i])].push_back(i);
    }
  }
  return out;
}

DistributionPlan make_plan(Registry::ChunkManifest manifest, int nodes) {
  DistributionPlan plan;
  plan.manifest = std::move(manifest);
  plan.nodes = nodes;
  plan.seeders.reserve(plan.manifest.chunks.size());
  for (const auto& ref : plan.manifest.chunks) {
    plan.seeders.push_back(nodes > 0 ? best_node(fnv1a(ref.digest), nodes)
                                     : -1);
  }
  return plan;
}

Swarm::Swarm(Registry* registry, int nodes, SwarmOptions options)
    : registry_(registry), tracer_(std::move(options.tracer)) {
  owned_caches_.reserve(static_cast<std::size_t>(nodes > 0 ? nodes : 0));
  for (int i = 0; i < nodes; ++i) {
    owned_caches_.push_back(std::make_unique<ChunkCache>());
    caches_.push_back(owned_caches_.back().get());
  }
  plan_.nodes = nodes;
  failed_ = std::make_unique<std::atomic<char>[]>(caches_.size());
  failed_size_ = caches_.size();
  obs::MetricsRegistry& reg = options.metrics != nullptr
                                  ? *options.metrics
                                  : obs::global_metrics();
  peer_bytes_metric_ = &reg.counter("swarm.peer_bytes");
  registry_bytes_metric_ = &reg.counter("swarm.registry_bytes");
  fallbacks_metric_ = &reg.counter("swarm.registry_fallbacks");
  chunks_exchanged_metric_ = &reg.counter("swarm.chunks_exchanged");
}

Swarm::Swarm(Registry* registry, std::vector<ChunkCache*> caches,
             SwarmOptions options)
    : Swarm(registry, 0, std::move(options)) {
  caches_ = std::move(caches);
  plan_.nodes = static_cast<int>(caches_.size());
  failed_ = std::make_unique<std::atomic<char>[]>(caches_.size());
  failed_size_ = caches_.size();
}

VoidResult Swarm::prepare(const Manifest& manifest) {
  obs::Span span(tracer_.get(), "swarm.plan");
  if (const obs::TraceContext ctx = obs::current_trace(); ctx.active()) {
    span.annotate("trace_id", ctx.hex());
  }
  const int nodes = static_cast<int>(caches_.size());
  auto chunks = registry_->chunk_manifest(manifest);
  if (!chunks.ok()) return chunks.error();
  plan_ = make_plan(std::move(*chunks), nodes);
  // Counting sort of chunk indices by seeder, straight into CSR form: two
  // flat arrays regardless of node count (per-seeder vectors would mean one
  // allocation per node, and most nodes of a big swarm seed nothing).
  const std::size_t n = caches_.size();
  shard_offsets_.assign(n + 1, 0);
  for (int s : plan_.seeders) {
    if (s >= 0) ++shard_offsets_[static_cast<std::size_t>(s) + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) {
    shard_offsets_[i] += shard_offsets_[i - 1];
  }
  seeder_order_.assign(shard_offsets_[n], 0);
  std::vector<std::size_t> cursor(shard_offsets_.begin(),
                                  shard_offsets_.end() - 1);
  for (std::size_t i = 0; i < plan_.seeders.size(); ++i) {
    const int s = plan_.seeders[i];
    if (s >= 0) seeder_order_[cursor[static_cast<std::size_t>(s)]++] = i;
  }
  span.annotate("chunks", std::to_string(plan_.manifest.chunks.size()));
  span.annotate("bytes", std::to_string(plan_.manifest.total_bytes));
  span.annotate("nodes", std::to_string(nodes));
  return VoidResult::success();
}

// Flushes a phase's accumulated stats into the swarm aggregates and the
// metrics registry: a handful of atomic adds per phase call, not per chunk.
void Swarm::flush_stats(const FetchStats& stats, const char* phase, int node) {
  if (stats.registry_bytes > 0 || stats.chunks_from_registry > 0) {
    registry_bytes_ += stats.registry_bytes;
    registry_bytes_metric_->add(stats.registry_bytes);
  }
  if (stats.peer_bytes > 0 || stats.chunks_from_peers > 0) {
    peer_bytes_ += stats.peer_bytes;
    peer_bytes_metric_->add(stats.peer_bytes);
  }
  if (stats.registry_fallbacks > 0) {
    fallbacks_metric_->add(stats.registry_fallbacks);
  }
  const std::uint64_t moved =
      stats.chunks_from_registry + stats.chunks_from_peers;
  if (moved > 0) chunks_exchanged_metric_->add(moved);
  obs::FlightRecorder& rec = obs::global_flight_recorder();
  if (!rec.enabled()) return;
  // One event per phase call, not per chunk: code = chunks left missing,
  // arg = chunks moved. Fallbacks get their own event so a post-mortem
  // shows the reroute after the seeder's death without grepping details.
  rec.record(obs::FlightKind::kChunkTransfer, phase,
             static_cast<int>(stats.chunks_missing), moved, node);
  if (stats.registry_fallbacks > 0) {
    rec.record(obs::FlightKind::kRegistryFallback, phase, 0,
               stats.registry_fallbacks, node);
  }
}

Swarm::FetchStats Swarm::seed(int node) {
  FetchStats stats;
  if (node < 0 || node >= plan_.nodes ||
      static_cast<std::size_t>(node) + 1 >= shard_offsets_.size() ||
      failed(node)) {
    return stats;
  }
  // Most nodes of a large swarm seed few or no chunks: bail before any
  // lock or span when the shard is empty.
  const std::size_t shard_lo = shard_offsets_[static_cast<std::size_t>(node)];
  const std::size_t shard_hi =
      shard_offsets_[static_cast<std::size_t>(node) + 1];
  if (shard_lo == shard_hi) return stats;
  const std::vector<std::size_t> shard(seeder_order_.begin() + shard_lo,
                                       seeder_order_.begin() + shard_hi);
  obs::Span span(tracer_.get(), "swarm.seed");
  const auto& refs = plan_.manifest.chunks;
  ChunkCache& own = cache(node);
  // One lock: which of this node's shard is not already staged (warm
  // relaunches skip everything here).
  std::vector<std::shared_ptr<const std::string>> staged;
  own.get_many(refs, shard, staged);
  std::vector<std::size_t> wanted;
  for (std::size_t k = 0; k < shard.size(); ++k) {
    if (staged[k] == nullptr) wanted.push_back(shard[k]);
  }
  // Per-chunk registry requests (each one is a serve on the wire), one
  // batched local commit.
  std::vector<std::shared_ptr<const std::string>> bufs(wanted.size());
  for (std::size_t k = 0; k < wanted.size(); ++k) {
    const Registry::ChunkRef& ref = refs[wanted[k]];
    bufs[k] = registry_->serve_chunk(ref.digest);
    if (bufs[k] == nullptr) {
      ++stats.chunks_missing;
      continue;
    }
    stats.registry_bytes += ref.size;
    ++stats.chunks_from_registry;
  }
  own.put_many(refs, wanted, bufs);
  flush_stats(stats, "seed", node);
  if (tracer_ != nullptr) {
    span.annotate("node", std::to_string(node));
    span.annotate("registry_bytes", std::to_string(stats.registry_bytes));
    if (const obs::TraceContext ctx = obs::current_trace(); ctx.active()) {
      span.annotate("trace_id", ctx.hex());
    }
  }
  return stats;
}

Swarm::FetchStats Swarm::exchange(int node) {
  FetchStats stats;
  if (node < 0 || node >= plan_.nodes || failed(node)) return stats;
  obs::Span span(tracer_.get(), "swarm.exchange");
  const auto& refs = plan_.manifest.chunks;
  ChunkCache& own = cache(node);
  // One lock: everything this node still needs, marked on a bitmap so the
  // precomputed seeder-grouped order can be filtered without a per-node
  // sort.
  std::vector<std::size_t> missing;
  missing.reserve(refs.size());
  own.missing_of(refs, missing);
  if (missing.empty()) return stats;
  std::vector<char> need(refs.size(), 0);
  for (std::size_t i : missing) need[i] = 1;
  // Visit each peer once (one bulk read per seeder run, the protocol's
  // node-to-node transfer), then commit locally in one go.
  std::vector<std::size_t> got;
  got.reserve(missing.size());
  std::vector<std::shared_ptr<const std::string>> acquired;
  acquired.reserve(missing.size());
  std::vector<std::size_t> run;
  std::vector<std::shared_ptr<const std::string>> run_bufs;
  for (std::size_t lo = 0; lo < seeder_order_.size();) {
    const int seeder = plan_.seeders[seeder_order_[lo]];
    std::size_t hi = lo;
    run.clear();
    while (hi < seeder_order_.size() &&
           plan_.seeders[seeder_order_[hi]] == seeder) {
      if (need[seeder_order_[hi]]) run.push_back(seeder_order_[hi]);
      ++hi;
    }
    if (run.empty()) {
      lo = hi;
      continue;
    }
    if (seeder >= 0 && seeder != node && !failed(seeder)) {
      cache(seeder).get_many(refs, run, run_bufs);
    } else {
      run_bufs.assign(run.size(), nullptr);
    }
    for (std::size_t k = 0; k < run.size(); ++k) {
      const Registry::ChunkRef& ref = refs[run[k]];
      if (run_bufs[k] != nullptr) {
        stats.peer_bytes += ref.size;
        ++stats.chunks_from_peers;
      } else {
        // Seeder down, or it never obtained the chunk: the registry is the
        // seeder of last resort.
        run_bufs[k] = registry_->serve_chunk(ref.digest);
        if (run_bufs[k] == nullptr) {
          ++stats.chunks_missing;
          continue;
        }
        ++stats.registry_fallbacks;
        stats.registry_bytes += ref.size;
        ++stats.chunks_from_registry;
      }
      got.push_back(run[k]);
      acquired.push_back(std::move(run_bufs[k]));
    }
    lo = hi;
  }
  own.put_many(refs, got, acquired);
  flush_stats(stats, "exchange", node);
  if (tracer_ != nullptr) {
    span.annotate("node", std::to_string(node));
    span.annotate("peer_bytes", std::to_string(stats.peer_bytes));
    span.annotate("fallbacks", std::to_string(stats.registry_fallbacks));
    if (const obs::TraceContext ctx = obs::current_trace(); ctx.active()) {
      span.annotate("trace_id", ctx.hex());
    }
  }
  return stats;
}

void Swarm::mark_failed(int node) {
  if (node < 0 || node >= static_cast<int>(failed_size_)) return;
  failed_[static_cast<std::size_t>(node)].store(1, std::memory_order_release);
  // A dead node serves nobody; dropping its cache keeps the model honest
  // (peers re-route to the registry rather than reading a ghost).
  cache(node).clear();
  obs::FlightRecorder& rec = obs::global_flight_recorder();
  if (rec.enabled()) {
    rec.record(obs::FlightKind::kNodeDead, "swarm seeder down", 0, 0, node);
  }
}

bool Swarm::failed(int node) const {
  if (node < 0 || node >= static_cast<int>(failed_size_)) return true;
  return failed_[static_cast<std::size_t>(node)].load(
             std::memory_order_acquire) != 0;
}

bool Swarm::complete(int node) const {
  if (node < 0 || node >= plan_.nodes) return false;
  ChunkCache& own = *caches_[static_cast<std::size_t>(node)];
  std::vector<std::size_t> missing;
  own.missing_of(plan_.manifest.chunks, missing);
  return missing.empty();
}

}  // namespace minicon::image
