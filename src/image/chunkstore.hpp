// Content-addressed fixed-size chunk storage for layer blobs.
//
// §6.1/P5: distribution cost is dominated by tar serialization + SHA-256 +
// transfer. Chunking attacks all three: a blob becomes an ordered list of
// fixed-size chunks, each addressed by its own SHA-256, so (1) chunk digests
// compute in parallel on a ThreadPool, (2) a re-push of a nearly-unchanged
// layer transfers only the chunks whose content moved, and (3) pulls hand
// out shared immutable buffers instead of copies. The store is sharded by
// digest prefix so concurrent pushers/pullers rarely contend on a mutex.
//
// A chunked blob's digest is Merkle-style: SHA-256 over the ordered chunk
// digest list. It is still a pure function of the content (and the chunk
// size), so the registry stays content-addressed; it is simply a different
// address space from whole-blob digests.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace minicon::support {
class ThreadPool;
}

namespace minicon::image {

struct ChunkedBlob {
  std::string digest;                // "sha256:..." Merkle root
  std::vector<std::string> chunks;   // chunk digests, in blob order
  std::uint64_t size = 0;            // total blob bytes
  std::uint64_t new_bytes = 0;       // bytes this put actually transferred
};

class ChunkStore {
 public:
  static constexpr std::size_t kDefaultChunkSize = 64 * 1024;
  static constexpr std::size_t kDefaultShards = 16;

  explicit ChunkStore(std::size_t chunk_size = kDefaultChunkSize,
                      std::size_t shards = kDefaultShards);

  std::size_t chunk_size() const { return chunk_size_; }

  // Splits `data` into fixed-size chunks, digests them (in parallel when
  // pool != nullptr), and stores only the chunks not already present. When
  // a tracer is attached the whole put runs inside a `chunk.put` span,
  // childed under `parent` when the caller supplies one.
  ChunkedBlob put(std::string_view data, support::ThreadPool* pool = nullptr,
                  obs::SpanId parent = obs::kNoSpan);

  // Stores one chunk. Returns its digest and the bytes newly stored (0 when
  // the chunk deduplicated — in that case the data is never even copied).
  // Thread-safe; digesting happens outside any lock.
  std::pair<std::string, std::uint64_t> put_chunk(std::string_view data);

  // The chunk's shared immutable buffer; nullptr when absent.
  std::shared_ptr<const std::string> chunk(const std::string& digest) const;
  bool has_chunk(const std::string& digest) const;

  // Removes one chunk, returning the bytes reclaimed (0 when absent). The
  // registry-service garbage collector is the only intended caller: it owns
  // the liveness question (refcounts + mark), the store just forgets the
  // buffer. In-flight pulls holding the shared_ptr keep their bytes; a
  // re-put of the same content after removal stores it afresh (resurrection
  // is refcount-driven, there are no tombstones). Counted by the
  // `chunk.removed` / `chunk.bytes_reclaimed` metrics.
  std::uint64_t remove_chunk(const std::string& digest);

  // Reassembles a chunk list into one contiguous buffer (pull
  // materialization). nullptr if any chunk is missing.
  std::shared_ptr<const std::string> assemble(const ChunkedBlob& blob) const;

  // Merkle root over an ordered chunk digest list.
  static std::string blob_digest(const std::vector<std::string>& chunks);

  // The (digest, size) list `data` WOULD chunk into, without storing
  // anything — the manifest query backing peer-to-peer distribution.
  // Boundaries are the same fixed-size scheme put() uses, so every digest
  // returned here names a chunk put() of the same data would create.
  static std::vector<std::pair<std::string, std::uint64_t>> chunk_refs(
      std::string_view data, std::size_t chunk_size);

  std::uint64_t unique_bytes() const;
  std::uint64_t chunk_count() const;

  // Re-point the dedup counters (`chunk.puts`, `chunk.dedup_hits`,
  // `chunk.bytes_stored`, `chunk.bytes_deduped`) at a different registry
  // (default: obs::global_metrics()), and attach a span tracer. Not
  // thread-safe against in-flight puts — wire observability up before
  // sharing the store.
  void set_metrics(obs::MetricsRegistry* metrics);
  void set_tracer(std::shared_ptr<obs::Tracer> tracer);

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<const std::string>> chunks;
    std::uint64_t bytes = 0;
  };
  Shard& shard_for(const std::string& digest) const;

  std::size_t chunk_size_;
  mutable std::vector<Shard> shards_;
  std::shared_ptr<obs::Tracer> tracer_;
  obs::Counter* puts_;
  obs::Counter* dedup_hits_;
  obs::Counter* bytes_stored_;
  obs::Counter* bytes_deduped_;
  obs::Counter* removed_;
  obs::Counter* bytes_reclaimed_;
};

}  // namespace minicon::image
