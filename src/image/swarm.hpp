// Peer-to-peer chunk distribution for cluster-scale image launch.
//
// The Astra workflow's final stage (Fig 6) pulls the image on every compute
// node. Registry-only distribution makes the registry serve
// O(nodes × image size) bytes — the launch-time scaling wall the HPC
// container literature keeps rediscovering. This layer makes registry
// traffic O(unique chunks) instead: the image's chunk set is resolved once
// (Registry::chunk_manifest), every chunk gets exactly one *seeder* node by
// rendezvous hashing over its digest, each node fetches only its own shard
// from the registry (seed phase), and then obtains every remaining chunk
// from its seeder's node-local cache (exchange phase), falling back to the
// registry only when a seeder is down or missing the chunk.
//
// Phases are driven externally (Cluster::parallel_launch fans each phase
// out on its worker pool and joins between them) because pool width is
// usually far below node count — an in-band barrier would deadlock. All
// per-node operations are thread-safe against each other.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "image/registry.hpp"
#include "obs/context.hpp"
#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace minicon::image {

// Lookup key carrying the digest hash precomputed by
// Registry::chunk_manifest: a swarm probes every node's cache with the same
// few dozen digests, so hashing each 71-byte digest string once per
// manifest instead of once per probe removes the dominant per-node cost.
struct PrehashedChunkKey {
  std::string_view digest;
  std::size_t hash = 0;
  operator std::string_view() const noexcept { return digest; }
};

struct ChunkKeyHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  std::size_t operator()(const PrehashedChunkKey& k) const noexcept {
    return k.hash;
  }
};

struct ChunkKeyEqual {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return a == b;
  }
};

// A node-local content-addressed chunk cache (the model of per-node NVMe
// staging storage). Peers read it concurrently during the exchange phase.
class ChunkCache {
 public:
  std::shared_ptr<const std::string> get(const std::string& digest) const;
  // Returns the bytes newly added (0 when the chunk was already cached).
  std::uint64_t put(const std::string& digest,
                    std::shared_ptr<const std::string> data);
  bool has(const std::string& digest) const;

  // Batch operations over a chunk-manifest slice: one lock acquisition per
  // call instead of one per chunk — the exchange phase's peer reads and
  // local commits are bulk transfers, not per-chunk round-trips.
  //
  // Appends to `out` the indices i in [0, refs.size()) whose digest is not
  // cached.
  void missing_of(const std::vector<Registry::ChunkRef>& refs,
                  std::vector<std::size_t>& out) const;
  // out[k] = cached buffer for refs[idx[k]] (nullptr when absent); `out` is
  // resized to idx.size().
  void get_many(const std::vector<Registry::ChunkRef>& refs,
                const std::vector<std::size_t>& idx,
                std::vector<std::shared_ptr<const std::string>>& out) const;
  // Inserts bufs[k] (skipping nullptrs) under refs[idx[k]].digest; returns
  // the bytes newly added.
  std::uint64_t put_many(
      const std::vector<Registry::ChunkRef>& refs,
      const std::vector<std::size_t>& idx,
      const std::vector<std::shared_ptr<const std::string>>& bufs);
  std::uint64_t bytes() const;
  std::size_t count() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const std::string>,
                     ChunkKeyHash, ChunkKeyEqual>
      map_;
  std::uint64_t bytes_ = 0;
};

// Deterministic chunk → seeder assignment over a fixed node count.
// Rendezvous (highest-random-weight) hashing: every (chunk, node) pair gets
// a pseudo-random score from the chunk digest and the node index; the node
// with the top score seeds the chunk. Assignments are stable per digest,
// spread evenly, and — unlike plain modulo — move only O(chunks/nodes)
// chunks when a node joins or leaves.
struct DistributionPlan {
  Registry::ChunkManifest manifest;
  int nodes = 0;
  // seeders[i] is the seeder of manifest.chunks[i]; filled by make_plan.
  std::vector<int> seeders;

  // Recomputes the assignment for one digest (-1 when nodes == 0).
  int seeder_of(const std::string& chunk_digest) const;
  // Indices into manifest.chunks per seeder node.
  std::vector<std::vector<std::size_t>> shards() const;
};

DistributionPlan make_plan(Registry::ChunkManifest manifest, int nodes);

struct SwarmOptions {
  obs::MetricsRegistry* metrics = nullptr;  // null = obs::global_metrics()
  std::shared_ptr<obs::Tracer> tracer;
};

class Swarm {
 public:
  // Owns one fresh ChunkCache per node.
  Swarm(Registry* registry, int nodes, SwarmOptions options = {});
  // Borrows caller-owned caches (per-node caches that persist across
  // launches — warm relaunches transfer only what is missing).
  Swarm(Registry* registry, std::vector<ChunkCache*> caches,
        SwarmOptions options = {});

  // Resolves the image's chunk manifest (one metadata round-trip to the
  // registry) and fixes the chunk → seeder assignment.
  VoidResult prepare(const Manifest& manifest);
  const DistributionPlan& plan() const { return plan_; }

  struct FetchStats {
    std::uint64_t registry_bytes = 0;     // bytes pulled from the registry
    std::uint64_t peer_bytes = 0;         // bytes copied from peer caches
    std::uint64_t chunks_from_registry = 0;
    std::uint64_t chunks_from_peers = 0;
    std::uint64_t registry_fallbacks = 0;  // exchange chunks rerouted to
                                           // the registry (seeder down)
    std::uint64_t chunks_missing = 0;      // unobtainable anywhere
  };

  // Phase 1: fetch `node`'s assigned shard from the registry into its
  // cache. Runs inside a `swarm.seed` span.
  FetchStats seed(int node);
  // Phase 2 (after every live node seeded): obtain each remaining chunk
  // from its seeder's cache, falling back to the registry when the seeder
  // is failed or missing it. Runs inside a `swarm.exchange` span.
  FetchStats exchange(int node);

  // Marks a node down (login failure, staging fault): its cache is cleared
  // so it no longer serves peers, and exchange() reroutes its shard to the
  // registry.
  void mark_failed(int node);
  bool failed(int node) const;

  // True when `node` holds every chunk of the plan.
  bool complete(int node) const;

  ChunkCache& cache(int node) { return *caches_[static_cast<std::size_t>(node)]; }
  int nodes() const { return plan_.nodes; }

  // Aggregates across all nodes (also mirrored into the metrics registry as
  // `swarm.peer_bytes` / `swarm.registry_bytes` / `swarm.registry_fallbacks`).
  std::uint64_t peer_bytes() const { return peer_bytes_.load(); }
  std::uint64_t registry_bytes() const { return registry_bytes_.load(); }

 private:
  // Flushes a phase's stats into the aggregates, the metrics registry, and
  // the flight recorder (`chunk-transfer` per phase call, plus a
  // `registry-fallback` event when a dead seeder's shard was rerouted).
  void flush_stats(const FetchStats& stats, const char* phase, int node);

  Registry* registry_;
  std::vector<std::unique_ptr<ChunkCache>> owned_caches_;
  std::vector<ChunkCache*> caches_;
  DistributionPlan plan_;
  // Derived from the plan once in prepare() and shared read-only by every
  // node's phases, in CSR form: all chunk indices grouped by seeder
  // ascending, with node n's shard at
  // seeder_order_[shard_offsets_[n] .. shard_offsets_[n+1]) — so seed()
  // touches only its own slice and exchange() never re-sorts per node.
  std::vector<std::size_t> seeder_order_;
  std::vector<std::size_t> shard_offsets_;
  // One flag per node, atomic so liveness checks on the exchange hot path
  // are plain loads rather than a shared mutex every peer contends on.
  std::unique_ptr<std::atomic<char>[]> failed_;
  std::size_t failed_size_ = 0;
  std::atomic<std::uint64_t> peer_bytes_{0};
  std::atomic<std::uint64_t> registry_bytes_{0};
  std::shared_ptr<obs::Tracer> tracer_;
  obs::Counter* peer_bytes_metric_;
  obs::Counter* registry_bytes_metric_;
  obs::Counter* fallbacks_metric_;
  obs::Counter* chunks_exchanged_metric_;
};

}  // namespace minicon::image
