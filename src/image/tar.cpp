#include "image/tar.hpp"

#include <algorithm>
#include <cstring>
#include <memory>

#include "image/registry.hpp"
#include "support/path.hpp"
#include "support/strings.hpp"
#include "vfs/snapshot.hpp"

namespace minicon::image {

namespace {

constexpr std::size_t kBlock = 512;

char type_flag(vfs::FileType t) {
  switch (t) {
    case vfs::FileType::Regular: return '0';
    case vfs::FileType::Symlink: return '2';
    case vfs::FileType::CharDev: return '3';
    case vfs::FileType::BlockDev: return '4';
    case vfs::FileType::Directory: return '5';
    case vfs::FileType::Fifo: return '6';
    default: return '0';
  }
}

vfs::FileType flag_type(char c) {
  switch (c) {
    case '0':
    case '\0': return vfs::FileType::Regular;
    case '2': return vfs::FileType::Symlink;
    case '3': return vfs::FileType::CharDev;
    case '4': return vfs::FileType::BlockDev;
    case '5': return vfs::FileType::Directory;
    case '6': return vfs::FileType::Fifo;
    default: return vfs::FileType::Regular;
  }
}

void put_octal(char* field, std::size_t width, std::uint64_t value) {
  const std::string s = format_octal(value, static_cast<int>(width - 1));
  std::memcpy(field, s.data(), width - 1);
  field[width - 1] = '\0';
}

std::uint64_t get_octal(const char* field, std::size_t width) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width; ++i) {
    const char c = field[i];
    if (c < '0' || c > '7') break;
    v = v * 8 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

struct Header {
  char name[100];
  char mode[8];
  char uid[8];
  char gid[8];
  char size[12];
  char mtime[12];
  char chksum[8];
  char typeflag;
  char linkname[100];
  char magic[6];
  char version[2];
  char uname[32];
  char gname[32];
  char devmajor[8];
  char devminor[8];
  char prefix[155];
  char pad[12];
};
static_assert(sizeof(Header) == kBlock, "ustar header must be 512 bytes");

}  // namespace

std::string tar_create(const std::vector<TarEntry>& entries) {
  std::string out;
  out.reserve(entries.size() * kBlock * 2);
  tar_stream(entries, [&out](std::string_view piece) { out.append(piece); });
  return out;
}

void tar_stream(const std::vector<TarEntry>& entries, const TarSink& sink) {
  static constexpr char kZeros[2 * kBlock] = {};
  for (const auto& e : entries) {
    Header h;
    std::memset(&h, 0, sizeof h);
    std::string name = e.name;
    if (e.type == vfs::FileType::Directory && !name.empty() &&
        name.back() != '/') {
      name += '/';
    }
    if (name.size() <= 100) {
      std::memcpy(h.name, name.data(), name.size());
    } else {
      // Split into prefix/name at a slash boundary: the earliest slash that
      // leaves at most 100 bytes for the name field.
      std::size_t cut =
          name.find('/', name.size() > 101 ? name.size() - 101 : 0);
      if (cut == std::string::npos || cut > 154) {
        cut = std::min<std::size_t>(name.size() - 1, 154);
      }
      std::memcpy(h.prefix, name.data(), cut);
      const std::string rest = name.substr(cut + 1);
      std::memcpy(h.name, rest.data(), std::min<std::size_t>(rest.size(), 100));
    }
    put_octal(h.mode, sizeof h.mode, e.mode & 07777);
    put_octal(h.uid, sizeof h.uid, e.uid);
    put_octal(h.gid, sizeof h.gid, e.gid);
    const std::uint64_t size =
        e.type == vfs::FileType::Regular ? e.content.size() : 0;
    put_octal(h.size, sizeof h.size, size);
    // Deterministic serialization: mtime is a logical clock here, and equal
    // trees must produce byte-equal archives (and thus equal blob digests)
    // no matter when they were built, so it is pinned to zero on the wire.
    put_octal(h.mtime, sizeof h.mtime, 0);
    h.typeflag = type_flag(e.type);
    std::memcpy(h.linkname, e.linkname.data(),
                std::min<std::size_t>(e.linkname.size(), 100));
    std::memcpy(h.magic, "ustar", 6);
    std::memcpy(h.version, "00", 2);
    if (e.type == vfs::FileType::CharDev || e.type == vfs::FileType::BlockDev) {
      put_octal(h.devmajor, sizeof h.devmajor, e.dev_major);
      put_octal(h.devminor, sizeof h.devminor, e.dev_minor);
    }
    // Checksum: spaces during computation.
    std::memset(h.chksum, ' ', sizeof h.chksum);
    const auto* bytes = reinterpret_cast<const unsigned char*>(&h);
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i < kBlock; ++i) sum += bytes[i];
    put_octal(h.chksum, 7, sum);
    h.chksum[7] = ' ';

    sink(std::string_view(reinterpret_cast<const char*>(&h), kBlock));
    if (size > 0) {
      sink(e.content);
      const std::size_t rem = size % kBlock;
      if (rem != 0) sink(std::string_view(kZeros, kBlock - rem));
    }
  }
  sink(std::string_view(kZeros, 2 * kBlock));
}

Result<std::vector<TarEntry>> tar_parse(const std::string& blob) {
  std::vector<TarEntry> out;
  std::size_t off = 0;
  while (off + kBlock <= blob.size()) {
    const auto* h = reinterpret_cast<const Header*>(blob.data() + off);
    // End of archive: zero block.
    if (h->name[0] == '\0') break;
    if (std::memcmp(h->magic, "ustar", 5) != 0) return Err::einval;

    // Verify checksum.
    Header copy;
    std::memcpy(&copy, h, kBlock);
    const std::uint64_t stored = get_octal(copy.chksum, sizeof copy.chksum);
    std::memset(copy.chksum, ' ', sizeof copy.chksum);
    const auto* bytes = reinterpret_cast<const unsigned char*>(&copy);
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i < kBlock; ++i) sum += bytes[i];
    if (sum != stored) return Err::eio;

    TarEntry e;
    std::string name(h->name, strnlen(h->name, 100));
    if (h->prefix[0] != '\0') {
      name = std::string(h->prefix, strnlen(h->prefix, 155)) + "/" + name;
    }
    if (!name.empty() && name.back() == '/') name.pop_back();
    e.name = std::move(name);
    e.mode = static_cast<std::uint32_t>(get_octal(h->mode, sizeof h->mode));
    e.uid = static_cast<vfs::Uid>(get_octal(h->uid, sizeof h->uid));
    e.gid = static_cast<vfs::Gid>(get_octal(h->gid, sizeof h->gid));
    e.mtime = get_octal(h->mtime, sizeof h->mtime);
    e.type = flag_type(h->typeflag);
    e.linkname = std::string(h->linkname, strnlen(h->linkname, 100));
    e.dev_major =
        static_cast<std::uint32_t>(get_octal(h->devmajor, sizeof h->devmajor));
    e.dev_minor =
        static_cast<std::uint32_t>(get_octal(h->devminor, sizeof h->devminor));
    const std::uint64_t size = get_octal(h->size, sizeof h->size);
    off += kBlock;
    if (e.type == vfs::FileType::Regular && size > 0) {
      if (off + size > blob.size()) return Err::eio;
      e.content = blob.substr(off, size);
      off += (size + kBlock - 1) / kBlock * kBlock;
    }
    out.push_back(std::move(e));
  }
  return out;
}

namespace {

VoidResult collect(vfs::Filesystem& fs, vfs::InodeNum dir,
                   const std::string& prefix, std::vector<TarEntry>& out) {
  MINICON_TRY_ASSIGN(entries, fs.readdir(dir));
  for (const auto& d : entries) {
    MINICON_TRY_ASSIGN(st, fs.getattr(d.ino));
    TarEntry e;
    e.name = prefix.empty() ? d.name : prefix + "/" + d.name;
    e.type = st.type;
    e.mode = st.mode;
    e.uid = st.uid;
    e.gid = st.gid;
    e.mtime = st.mtime;
    e.dev_major = st.dev_major;
    e.dev_minor = st.dev_minor;
    if (st.type == vfs::FileType::Regular) {
      MINICON_TRY_ASSIGN(data, fs.read(d.ino));
      e.content = std::move(data);
    } else if (st.type == vfs::FileType::Symlink) {
      MINICON_TRY_ASSIGN(target, fs.readlink(d.ino));
      e.linkname = std::move(target);
    }
    if (auto xattrs = fs.list_xattrs(d.ino); xattrs.ok()) {
      for (const auto& name : *xattrs) {
        if (auto v = fs.get_xattr(d.ino, name); v.ok()) e.xattrs[name] = *v;
      }
    }
    const bool is_dir = st.is_dir();
    // Copy the name before recursing: the vector may reallocate and the
    // prefix parameter is a reference.
    const std::string child_prefix = e.name;
    out.push_back(std::move(e));
    if (is_dir) {
      MINICON_TRY(collect(fs, d.ino, child_prefix, out));
    }
  }
  return {};
}

}  // namespace

Result<std::vector<TarEntry>> tree_to_entries(vfs::Filesystem& fs,
                                              vfs::InodeNum root) {
  std::vector<TarEntry> out;
  MINICON_TRY(collect(fs, root, "", out));
  return out;
}

VoidResult entries_to_tree(const std::vector<TarEntry>& entries,
                           vfs::Filesystem& fs, vfs::InodeNum root,
                           const vfs::OpCtx& ctx) {
  for (const auto& e : entries) {
    // Resolve the parent directory, creating missing intermediates.
    const auto comps = path_components(e.name);
    vfs::InodeNum dir = root;
    for (std::size_t i = 0; i + 1 < comps.size(); ++i) {
      auto child = fs.lookup(dir, comps[i]);
      if (!child.ok()) {
        vfs::CreateArgs args;
        args.type = vfs::FileType::Directory;
        args.mode = 0755;
        MINICON_TRY_ASSIGN(created, fs.create(ctx, dir, comps[i], args));
        dir = created;
      } else {
        dir = *child;
      }
    }
    if (comps.empty()) continue;
    const std::string& leaf = comps.back();
    auto existing = fs.lookup(dir, leaf);
    if (existing.ok()) {
      MINICON_TRY_ASSIGN(st, fs.getattr(*existing));
      if (st.is_dir() && e.type == vfs::FileType::Directory) {
        // Merge: refresh metadata.
        MINICON_TRY(fs.set_mode(ctx, *existing, e.mode));
        MINICON_TRY(fs.set_owner(ctx, *existing, e.uid, e.gid));
        continue;
      }
      if (st.is_dir()) return Err::eisdir;
      MINICON_TRY(fs.unlink(ctx, dir, leaf));
    }
    vfs::CreateArgs args;
    args.type = e.type;
    args.mode = e.mode;
    args.uid = e.uid;
    args.gid = e.gid;
    args.dev_major = e.dev_major;
    args.dev_minor = e.dev_minor;
    if (e.type == vfs::FileType::Symlink) args.symlink_target = e.linkname;
    MINICON_TRY_ASSIGN(node, fs.create(ctx, dir, leaf, args));
    if (e.type == vfs::FileType::Regular) {
      MINICON_TRY(fs.write(ctx, node, e.content, false));
    }
    for (const auto& [name, value] : e.xattrs) {
      (void)fs.set_xattr(ctx, node, name, value);
    }
  }
  return {};
}

namespace {

void emit_snapshot(const std::string& prefix, const vfs::SnapNodePtr& node,
                   std::vector<TarEntry>& out) {
  for (const auto& [name, child] : node->children) {
    TarEntry e;
    e.name = prefix.empty() ? name : prefix + "/" + name;
    e.type = child->type;
    e.mode = child->mode;
    e.uid = child->uid;
    e.gid = child->gid;
    e.dev_major = child->dev_major;
    e.dev_minor = child->dev_minor;
    e.xattrs = child->xattrs;
    if (child->type == vfs::FileType::Regular) {
      e.content = std::string(child->content_view());
    } else if (child->type == vfs::FileType::Symlink) {
      e.linkname = std::string(child->content_view());
    }
    const std::string child_prefix = e.name;
    out.push_back(std::move(e));
    if (child->type == vfs::FileType::Directory) {
      emit_snapshot(child_prefix, child, out);
    }
  }
}

// Mutable tree-of-builders; frozen bottom-up once all entries are applied.
struct SnapBuilder {
  vfs::SnapNode node;
  std::map<std::string, std::unique_ptr<SnapBuilder>> children;

  vfs::SnapNodePtr freeze() {
    for (auto& [name, child] : children) {
      node.children.emplace(name, child->freeze());
    }
    children.clear();
    return vfs::freeze_snap_node(std::move(node));
  }
};

}  // namespace

std::vector<TarEntry> snapshot_to_entries(const vfs::SnapNodePtr& tree) {
  std::vector<TarEntry> out;
  if (tree != nullptr) emit_snapshot("", tree, out);
  return out;
}

vfs::SnapNodePtr entries_to_snapshot(const std::vector<TarEntry>& entries) {
  SnapBuilder root;
  root.node.type = vfs::FileType::Directory;
  root.node.mode = 0755;
  for (const auto& e : entries) {
    const auto comps = path_components(e.name);
    if (comps.empty()) continue;
    SnapBuilder* dir = &root;
    for (std::size_t i = 0; i + 1 < comps.size(); ++i) {
      auto& child = dir->children[comps[i]];
      if (child == nullptr) {
        child = std::make_unique<SnapBuilder>();
        child->node.type = vfs::FileType::Directory;
        child->node.mode = 0755;
      }
      dir = child.get();
    }
    auto& leaf = dir->children[comps.back()];
    const bool existed = leaf != nullptr;
    if (!existed) leaf = std::make_unique<SnapBuilder>();
    // Last entry wins (tar semantics); a directory entry over an existing
    // directory merges metadata and keeps accumulated children.
    if (!(existed && leaf->node.type == vfs::FileType::Directory &&
          e.type == vfs::FileType::Directory)) {
      leaf->node = vfs::SnapNode{};
      leaf->children.clear();
    }
    leaf->node.type = e.type;
    leaf->node.mode = e.mode;
    leaf->node.uid = e.uid;
    leaf->node.gid = e.gid;
    leaf->node.dev_major = e.dev_major;
    leaf->node.dev_minor = e.dev_minor;
    leaf->node.xattrs = e.xattrs;
    if (e.type == vfs::FileType::Regular) {
      leaf->node.content = std::make_shared<const std::string>(e.content);
    } else if (e.type == vfs::FileType::Symlink) {
      leaf->node.content = std::make_shared<const std::string>(e.linkname);
    }
  }
  return root.freeze();
}

Result<std::vector<TarEntry>> registry_layer_entries(const Registry& registry,
                                                     const std::string& digest) {
  if (Registry::is_tree_digest(digest)) {
    auto tree = registry.get_tree(digest);
    if (tree == nullptr) return Err::enoent;
    return snapshot_to_entries(tree);
  }
  auto blob = registry.get_blob_ref(digest);
  if (blob == nullptr) return Err::enoent;
  return tar_parse(*blob);
}

std::vector<TarEntry> flatten_ownership(std::vector<TarEntry> entries) {
  std::vector<TarEntry> out;
  out.reserve(entries.size());
  for (auto& e : entries) {
    if (e.type == vfs::FileType::CharDev || e.type == vfs::FileType::BlockDev) {
      continue;  // Type III images cannot contain device nodes
    }
    e.uid = 0;
    e.gid = 0;
    e.mode &= ~(vfs::mode::kSetUid | vfs::mode::kSetGid);
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace minicon::image
