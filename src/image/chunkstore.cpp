#include "image/chunkstore.hpp"

#include <future>

#include "support/sha256.hpp"
#include "support/threadpool.hpp"

namespace minicon::image {

ChunkStore::ChunkStore(std::size_t chunk_size, std::size_t shards)
    : chunk_size_(chunk_size == 0 ? kDefaultChunkSize : chunk_size),
      shards_(shards == 0 ? kDefaultShards : shards) {
  set_metrics(nullptr);
}

void ChunkStore::set_metrics(obs::MetricsRegistry* metrics) {
  obs::MetricsRegistry& reg =
      metrics != nullptr ? *metrics : obs::global_metrics();
  puts_ = &reg.counter("chunk.puts");
  dedup_hits_ = &reg.counter("chunk.dedup_hits");
  bytes_stored_ = &reg.counter("chunk.bytes_stored");
  bytes_deduped_ = &reg.counter("chunk.bytes_deduped");
  removed_ = &reg.counter("chunk.removed");
  bytes_reclaimed_ = &reg.counter("chunk.bytes_reclaimed");
}

void ChunkStore::set_tracer(std::shared_ptr<obs::Tracer> tracer) {
  tracer_ = std::move(tracer);
}

ChunkStore::Shard& ChunkStore::shard_for(const std::string& digest) const {
  // Digests are "sha256:<hex>"; the hex tail is uniformly distributed, so
  // a couple of characters pick the shard.
  std::size_t h = 0;
  for (std::size_t i = digest.size() >= 4 ? digest.size() - 4 : 0;
       i < digest.size(); ++i) {
    h = h * 16 + static_cast<std::size_t>(digest[i]);
  }
  return shards_[h % shards_.size()];
}

std::pair<std::string, std::uint64_t> ChunkStore::put_chunk(
    std::string_view data) {
  std::string digest = oci_digest(data);
  puts_->add();
  Shard& shard = shard_for(digest);
  {
    std::lock_guard lock(shard.mu);
    if (shard.chunks.contains(digest)) {
      dedup_hits_->add();
      bytes_deduped_->add(data.size());
      return {std::move(digest), 0};
    }
  }
  // Miss: copy outside the lock, then re-check (another pusher may have won
  // the race; dedup makes the duplicate insert a harmless no-op).
  auto buf = std::make_shared<const std::string>(data);
  std::lock_guard lock(shard.mu);
  auto [it, inserted] = shard.chunks.try_emplace(digest, std::move(buf));
  if (!inserted) {
    dedup_hits_->add();
    bytes_deduped_->add(data.size());
    return {std::move(digest), 0};
  }
  shard.bytes += data.size();
  bytes_stored_->add(data.size());
  return {std::move(digest), data.size()};
}

ChunkedBlob ChunkStore::put(std::string_view data, support::ThreadPool* pool,
                            obs::SpanId parent) {
  obs::Span span(tracer_.get(), "chunk.put", parent);
  ChunkedBlob out;
  out.size = data.size();
  const std::size_t n_chunks =
      data.empty() ? 0 : (data.size() + chunk_size_ - 1) / chunk_size_;
  if (pool == nullptr || n_chunks < 2) {
    for (std::size_t i = 0; i < n_chunks; ++i) {
      auto [digest, added] =
          put_chunk(data.substr(i * chunk_size_, chunk_size_));
      out.new_bytes += added;
      out.chunks.push_back(std::move(digest));
    }
  } else {
    std::vector<std::future<std::pair<std::string, std::uint64_t>>> jobs;
    jobs.reserve(n_chunks);
    for (std::size_t i = 0; i < n_chunks; ++i) {
      // `data` outlives every future resolved below, so each job slices the
      // caller's buffer directly — no per-chunk copy on the submit path.
      const std::string_view piece = data.substr(i * chunk_size_, chunk_size_);
      jobs.push_back(
          pool->submit([this, piece] { return put_chunk(piece); }));
    }
    for (auto& job : jobs) {
      auto [digest, added] = job.get();
      out.new_bytes += added;
      out.chunks.push_back(std::move(digest));
    }
  }
  out.digest = blob_digest(out.chunks);
  if (span.id() != obs::kNoSpan) {
    span.annotate("chunks", std::to_string(out.chunks.size()));
    span.annotate("size", std::to_string(out.size));
    span.annotate("new_bytes", std::to_string(out.new_bytes));
  }
  return out;
}

std::shared_ptr<const std::string> ChunkStore::chunk(
    const std::string& digest) const {
  Shard& shard = shard_for(digest);
  std::lock_guard lock(shard.mu);
  auto it = shard.chunks.find(digest);
  return it == shard.chunks.end() ? nullptr : it->second;
}

bool ChunkStore::has_chunk(const std::string& digest) const {
  Shard& shard = shard_for(digest);
  std::lock_guard lock(shard.mu);
  return shard.chunks.contains(digest);
}

std::uint64_t ChunkStore::remove_chunk(const std::string& digest) {
  Shard& shard = shard_for(digest);
  std::uint64_t freed = 0;
  {
    std::lock_guard lock(shard.mu);
    auto it = shard.chunks.find(digest);
    if (it == shard.chunks.end()) return 0;
    freed = it->second->size();
    shard.bytes -= freed;
    shard.chunks.erase(it);
  }
  removed_->add();
  bytes_reclaimed_->add(freed);
  return freed;
}

std::shared_ptr<const std::string> ChunkStore::assemble(
    const ChunkedBlob& blob) const {
  auto out = std::make_shared<std::string>();
  out->reserve(blob.size);
  for (const auto& digest : blob.chunks) {
    auto piece = chunk(digest);
    if (piece == nullptr) return nullptr;
    out->append(*piece);
  }
  return out;
}

std::string ChunkStore::blob_digest(const std::vector<std::string>& chunks) {
  Sha256 h;
  h.update("minicon-chunklist-v1");
  for (const auto& c : chunks) {
    h.update(c);
    h.update("\n");
  }
  const auto d = h.finish();
  return "sha256:" + to_hex(d.data(), d.size());
}

std::vector<std::pair<std::string, std::uint64_t>> ChunkStore::chunk_refs(
    std::string_view data, std::size_t chunk_size) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  if (chunk_size == 0) chunk_size = kDefaultChunkSize;
  const std::size_t n_chunks =
      data.empty() ? 0 : (data.size() + chunk_size - 1) / chunk_size;
  out.reserve(n_chunks);
  for (std::size_t i = 0; i < n_chunks; ++i) {
    const std::string_view piece = data.substr(i * chunk_size, chunk_size);
    out.emplace_back(oci_digest(piece), piece.size());
  }
  return out;
}

std::uint64_t ChunkStore::unique_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard lock(s.mu);
    total += s.bytes;
  }
  return total;
}

std::uint64_t ChunkStore::chunk_count() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard lock(s.mu);
    total += s.chunks.size();
  }
  return total;
}

}  // namespace minicon::image
