// ch-image: the fully-unprivileged (Type III) Dockerfile builder (§5).
//
// The centerpiece is the --force fakeroot(1) auto-injection engine (§5.3):
// distro-sniffing configurations, each with init steps (a check command and
// an apply command) and RUN keyword triggers. Design principles, from the
// paper: (1) be clear and explicit about what is happening, (2) minimize
// changes to the build, (3) modify only if the user requests it, otherwise
// say what *could* be modified.
//
// §6.2.2 extensions are implemented behind options: a per-instruction build
// cache, an embedded libfakeroot (no wrapper installed into the image), and
// ownership-preserving push driven by the fakeroot lies database.
#pragma once

#include <map>
#include <string>

#include "core/machine.hpp"
#include "core/runtime.hpp"
#include "fakeroot/fakedb.hpp"
#include "kernel/syscall_filter.hpp"
#include "kernel/trace.hpp"
#include "image/registry.hpp"
#include "image/tar.hpp"
#include "support/transcript.hpp"

namespace minicon::support {
class ThreadPool;
}

namespace minicon::core {

struct ForceInitStep {
  std::string check_cmd;  // exit 0 = step already done
  std::string apply_cmd;
};

struct ForceConfig {
  std::string name;         // "rhel7"
  std::string description;  // "CentOS/RHEL 7"
  std::string match_file;   // file sniffed inside the image
  std::string match_regex;  // ERE applied to its contents
  std::vector<ForceInitStep> init_steps;
  std::vector<std::string> run_keywords;  // substrings that trigger injection
};

// The configurations shipped with ch-image as of the paper (rhel7 and
// debderiv, §5.3.1-2).
const std::vector<ForceConfig>& builtin_force_configs();

struct ChImageOptions {
  bool force = false;
  // §6.2.2 extensions (all off by default, matching the paper's ch-image):
  bool build_cache = false;
  bool embedded_fakeroot = false;
  // §6.2.4 future work: rely on kernel-managed unprivileged maps instead of
  // fakeroot entirely (requires the unprivileged_auto_maps sysctl).
  bool kernel_assisted_maps = false;
  std::string storage_dir;  // default $HOME/.local/share/ch-image

  // Worker pool for the pipelined push path (chunk digest + upload overlap
  // with tar serialization). Null selects the process-wide shared pool.
  std::shared_ptr<support::ThreadPool> digest_pool;

  // Syscall interposition stack. With tracing on, every container gets a
  // TraceSyscalls layer and the build transcript reports per-RUN syscall
  // counts, error deltas, and interposition depth.
  bool trace_syscalls = false;
  kernel::SyscallStatsPtr syscall_stats;  // shared sink; created if null
  // Extra layers (e.g. fault injection) stacked above the runtime's syscall
  // table, innermost first; trace and fakeroot wrap outside these.
  std::vector<kernel::SyscallLayerFn> syscall_layers;
};

class ChImage {
 public:
  ChImage(Machine& m, kernel::Process invoker, image::Registry* registry,
          ChImageOptions options = {});

  // `ch-image build -t tag -f dockerfile .` — returns the exit status and
  // writes a Fig 2/3/10/11-style transcript.
  int build(const std::string& tag, const std::string& dockerfile_text,
            Transcript& t);

  // `ch-image push tag ref` — flattens ownership (root:root, setuid bits
  // cleared, single layer). With preserve_ownership, the embedded fakeroot
  // database supplies the recorded IDs instead (§6.2.2-2).
  int push(const std::string& tag, const std::string& dest_ref, Transcript& t,
           bool preserve_ownership = false);

  // `ch-image pull ref tag`.
  int pull(const std::string& ref, const std::string& tag, Transcript& t);

  // `ch-run tag -- argv` — Type III execution of a built image.
  int run_in_image(const std::string& tag,
                   const std::vector<std::string>& argv, Transcript& t);

  // Rootfs handle for a built image (for runtimes and tests).
  Result<RootFs> image_rootfs(const std::string& tag);

  const image::ImageConfig* config(const std::string& tag) const;

  std::size_t cache_hits() const { return cache_hits_; }
  std::size_t cache_misses() const { return cache_misses_; }
  const fakeroot::FakeDbPtr& embedded_db() const { return embedded_db_; }

  // Aggregate syscall counters across every container entered (null unless
  // tracing is enabled) and the interposition depth of the last container.
  const kernel::SyscallStatsPtr& syscall_stats() const { return stats_; }
  int last_interposition_depth() const { return last_depth_; }

 private:
  struct CacheEntry {
    std::shared_ptr<vfs::MemFs> snapshot;
    image::ImageConfig config;
  };

  std::string storage_path(const std::string& tag) const;
  VoidResult ensure_dir(const std::string& path);
  // Extracts layer entries into the image dir *as the invoker* — which is
  // what squashes ownership to the single available ID (§5.2).
  VoidResult extract_as_user(const std::vector<image::TarEntry>& entries,
                             const std::string& dest, std::size_t* skipped_devices);
  const ForceConfig* detect_config(const std::string& image_dir);
  Result<kernel::Process> enter(const std::string& image_dir,
                                const image::ImageConfig& cfg);
  int run_in_container(const std::string& image_dir,
                       const image::ImageConfig& cfg,
                       const std::vector<std::string>& argv, std::string& out,
                       std::string& err);
  VoidResult snapshot_to_cache(const std::string& key,
                               const std::string& image_dir,
                               const image::ImageConfig& cfg);
  bool restore_from_cache(const std::string& key, const std::string& image_dir,
                          image::ImageConfig& cfg);

  Machine& m_;
  kernel::Process invoker_;
  image::Registry* registry_;
  ChImageOptions options_;
  std::map<std::string, image::ImageConfig> configs_;
  std::map<std::string, CacheEntry> cache_;
  fakeroot::FakeDbPtr embedded_db_;
  kernel::SyscallStatsPtr stats_;  // null unless tracing is enabled
  int last_depth_ = 0;
  std::size_t cache_hits_ = 0;
  std::size_t cache_misses_ = 0;
};

// Renders ['a', 'b', 'c'] the way ch-image transcripts do.
std::string format_argv(const std::vector<std::string>& argv);

}  // namespace minicon::core
