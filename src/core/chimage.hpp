// ch-image: the fully-unprivileged (Type III) Dockerfile builder (§5).
//
// The centerpiece is the --force fakeroot(1) auto-injection engine (§5.3):
// distro-sniffing configurations, each with init steps (a check command and
// an apply command) and RUN keyword triggers. Design principles, from the
// paper: (1) be clear and explicit about what is happening, (2) minimize
// changes to the build, (3) modify only if the user requests it, otherwise
// say what *could* be modified.
//
// §6.2.2 extensions are implemented behind options: a content-addressed
// build cache (buildgraph::BuildCache, shareable with other builders), an
// embedded libfakeroot (no wrapper installed into the image), and
// ownership-preserving push driven by the fakeroot lies database.
//
// Multi-stage Dockerfiles are lowered to a buildgraph::BuildGraph and the
// stages scheduled by buildgraph::StageScheduler: independent stages build
// concurrently, each into its own storage directory, serializing access to
// the simulated machine behind a per-builder mutex.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "buildgraph/cache.hpp"
#include "buildgraph/graph.hpp"
#include "buildgraph/scheduler.hpp"
#include "core/force.hpp"
#include "core/machine.hpp"
#include "core/runtime.hpp"
#include "fakeroot/fakedb.hpp"
#include "kernel/syscall_filter.hpp"
#include "kernel/trace.hpp"
#include "kernel/zeroconsistency.hpp"
#include "image/registry.hpp"
#include "obs/context.hpp"
#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "image/tar.hpp"
#include "support/transcript.hpp"

namespace minicon::support {
class ThreadPool;
}

namespace minicon::core {

struct ForceInitStep {
  std::string check_cmd;  // exit 0 = step already done
  std::string apply_cmd;
};

struct ForceConfig {
  std::string name;         // "rhel7"
  std::string description;  // "CentOS/RHEL 7"
  std::string match_file;   // file sniffed inside the image
  std::string match_regex;  // ERE applied to its contents
  std::vector<ForceInitStep> init_steps;
  std::vector<std::string> run_keywords;  // substrings that trigger injection
};

// The configurations shipped with ch-image as of the paper (rhel7 and
// debderiv, §5.3.1-2).
const std::vector<ForceConfig>& builtin_force_configs();

struct ChImageOptions {
  bool force = false;
  // Which root emulator --force selects. Setting `force` alone keeps the
  // historical meaning (fakeroot injection); setting a mode implies
  // `force`. kSeccomp needs no distro config, no init steps, and no RUN
  // rewriting: the filter stacks under every container unconditionally.
  ForceMode force_mode = ForceMode::kNone;
  // §6.2.2 extensions (all off by default, matching the paper's ch-image):
  bool build_cache = false;
  bool embedded_fakeroot = false;
  // §6.2.4 future work: rely on kernel-managed unprivileged maps instead of
  // fakeroot entirely (requires the unprivileged_auto_maps sysctl).
  bool kernel_assisted_maps = false;
  std::string storage_dir;  // default $HOME/.local/share/ch-image

  // Build cache shared with other builders (implies build_cache). When null
  // and build_cache is set, the builder creates a private cache backed by
  // the registry's chunk store.
  buildgraph::BuildCachePtr shared_cache;

  // Multi-stage scheduling: independent stages run concurrently on
  // stage_pool (null = support::shared_pool()). parallel_stages=false
  // forces serial execution; transcripts are identical either way.
  bool parallel_stages = true;
  std::shared_ptr<support::ThreadPool> stage_pool;

  // Retry for RUN instructions that fail transiently (fault injection);
  // default is one attempt, i.e. no retry.
  buildgraph::RetryPolicy run_retry;

  // Worker pool for the pipelined push path (chunk digest + upload overlap
  // with tar serialization). Null selects the process-wide shared pool.
  std::shared_ptr<support::ThreadPool> digest_pool;

  // Syscall interposition stack. With tracing on, every container gets a
  // TraceSyscalls layer and the build transcript reports per-RUN syscall
  // counts, error deltas, and interposition depth.
  bool trace_syscalls = false;
  kernel::SyscallStatsPtr syscall_stats;  // shared sink; created if null
  // Extra layers (e.g. fault injection) stacked above the runtime's syscall
  // table, innermost first; trace and fakeroot wrap outside these.
  std::vector<kernel::SyscallLayerFn> syscall_layers;

  // Unified telemetry (`ch-image build --trace`): span tracing across the
  // whole build — build → stage → instruction → syscall-batch — plus an
  // ObserveSyscalls metrics layer stacked innermost in every container. A
  // Tracer is created when `tracer` is null; read it back via tracer().
  bool trace = false;
  std::shared_ptr<obs::Tracer> tracer;
  // ObserveSyscalls without full span tracing (implied by `trace`).
  bool observe_syscalls = false;
  // Registry the build reports into; null = obs::global_metrics(). Also
  // re-points the build cache's mirrored counters.
  obs::MetricsRegistry* metrics = nullptr;
  // Flight recorder the build's notable events (syscall errors, build
  // failures) land in; null = obs::global_flight_recorder(). Benches and
  // tests pass a private ring for isolation / a true recorder-off column.
  obs::FlightRecorder* flight_recorder = nullptr;
};

class ChImage {
 public:
  ChImage(Machine& m, kernel::Process invoker, image::Registry* registry,
          ChImageOptions options = {});

  // `ch-image build -t tag -f dockerfile .` — returns the exit status and
  // writes a Fig 2/3/10/11-style transcript.
  int build(const std::string& tag, const std::string& dockerfile_text,
            Transcript& t);

  // `ch-image push tag ref` — flattens ownership (root:root, setuid bits
  // cleared, single layer). With preserve_ownership, the embedded fakeroot
  // database supplies the recorded IDs instead (§6.2.2-2).
  int push(const std::string& tag, const std::string& dest_ref, Transcript& t,
           bool preserve_ownership = false);

  // `ch-image pull ref tag`.
  int pull(const std::string& ref, const std::string& tag, Transcript& t);

  // `ch-run tag -- argv` — Type III execution of a built image.
  int run_in_image(const std::string& tag,
                   const std::vector<std::string>& argv, Transcript& t);

  // Rootfs handle for a built image (for runtimes and tests).
  Result<RootFs> image_rootfs(const std::string& tag);

  const image::ImageConfig* config(const std::string& tag) const;

  // Build-cache counters (zero when caching is off). With a shared cache
  // the counters aggregate every builder attached to it.
  std::size_t cache_hits() const {
    return cache_ != nullptr ? cache_->stats().hits : 0;
  }
  std::size_t cache_misses() const {
    return cache_ != nullptr ? cache_->stats().misses : 0;
  }
  buildgraph::CacheStats cache_stats() const {
    return cache_ != nullptr ? cache_->stats() : buildgraph::CacheStats{};
  }
  const buildgraph::BuildCachePtr& build_cache() const { return cache_; }
  // Stage-scheduling stats for the most recent build.
  const buildgraph::ScheduleStats& schedule_stats() const {
    return sched_stats_;
  }

  const fakeroot::FakeDbPtr& embedded_db() const { return embedded_db_; }

  // Faked-op counts for --force=seccomp (null in the other modes).
  const kernel::ZeroConsistencyStatsPtr& zeroconsistency_stats() const {
    return zc_stats_;
  }

  // Aggregate syscall counters across every container entered (null unless
  // tracing is enabled) and the interposition depth of the last container.
  const kernel::SyscallStatsPtr& syscall_stats() const { return stats_; }
  int last_interposition_depth() const { return last_depth_; }

  // The span tracer (null unless options.trace / options.tracer) and the
  // metrics registry this builder reports into (never null).
  const std::shared_ptr<obs::Tracer>& tracer() const { return tracer_; }
  obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  // Per-stage build state, indexed by stage index. Written only by the
  // stage's own executor; read by dependent stages (after the scheduler's
  // happens-before edge).
  struct StageBuild {
    std::string dir;  // host storage directory holding the stage's tree
    image::ImageConfig cfg;
    std::string key;  // build-cache chain after the last instruction
    const ForceConfig* force_cfg = nullptr;
    int modified_runs = 0;
    bool any_keyword_match = false;
  };

  std::string storage_path(const std::string& tag) const;
  VoidResult ensure_dir(const std::string& path);
  // Extracts layer entries into the image dir *as the invoker* — which is
  // what squashes ownership to the single available ID (§5.2).
  VoidResult extract_as_user(const std::vector<image::TarEntry>& entries,
                             const std::string& dest, std::size_t* skipped_devices);
  const ForceConfig* detect_config(const std::string& image_dir);
  Result<kernel::Process> enter(const std::string& image_dir,
                                const image::ImageConfig& cfg);
  int run_in_container(const std::string& image_dir,
                       const image::ImageConfig& cfg,
                       const std::vector<std::string>& argv, std::string& out,
                       std::string& err);
  // Pulls `ref` into `dir` (transcript gets errors/warnings only). Consults
  // the machine's SnapshotLedger first: re-pulling a layer chain this
  // directory already held syncs back to the recorded state in O(changed).
  Result<image::ImageConfig> pull_into(const std::string& ref,
                                       const std::string& dir, Transcript& t);
  // Merkle snapshot of a stage directory (cache values, push layers). Runs
  // in a "snapshot" span and feeds the snapshot.nodes_built/nodes_reused
  // counters; O(changed) when the backing filesystem caches per-inode snaps.
  Result<vfs::SnapNodePtr> tree_snapshot(const std::string& dir,
                                         obs::SpanId parent = obs::kNoSpan);
  // Rewrites `dir` to match `target`, skipping subtrees whose digests
  // already agree ("snapshot.sync" span).
  bool restore_tree(const std::string& dir, const vfs::SnapNodePtr& target,
                    obs::SpanId parent = obs::kNoSpan);
  // Merkle digest of a COPY source if its filesystem caches snapshots
  // (O(1) for unchanged files), else a content hash of `data`.
  std::string context_digest(const std::string& path, const std::string& data);
  // Executes one build stage; called (possibly concurrently) by the
  // scheduler. Serializes machine access via machine_mu_.
  int build_stage(const std::string& tag, const buildgraph::BuildGraph& g,
                  const buildgraph::Stage& s, std::vector<StageBuild>& sb,
                  Transcript& t, obs::SpanId stage_span);

  Machine& m_;
  kernel::Process invoker_;
  image::Registry* registry_;
  ChImageOptions options_;
  std::map<std::string, image::ImageConfig> configs_;
  buildgraph::BuildCachePtr cache_;  // null when caching is off
  buildgraph::ScheduleStats sched_stats_;
  // One simulated machine, one kernel: stage bodies serialize behind this.
  std::mutex machine_mu_;
  fakeroot::FakeDbPtr embedded_db_;
  kernel::ZeroConsistencyStatsPtr zc_stats_;  // null unless force_mode seccomp
  kernel::SyscallStatsPtr stats_;  // null unless tracing is enabled
  int last_depth_ = 0;
  std::shared_ptr<obs::Tracer> tracer_;  // null unless span tracing is on
  // The running build's trace context: established in build() (inherited
  // from the caller when one is active), re-installed in build_stage() on
  // whichever pool worker runs the stage, so syscall errors and injected
  // faults inside any stage carry the build's trace id.
  obs::TraceContext trace_ctx_;
  obs::MetricsRegistry* metrics_ = nullptr;  // resolved in the constructor
  obs::FlightRecorder* recorder_ = nullptr;  // resolved in the constructor
  // Digest-keyed memo for flatten_snapshot: repeated pushes of a mostly
  // unchanged image re-transform only the changed paths.
  std::map<std::string, vfs::SnapNodePtr> flatten_memo_;
};

// Renders ['a', 'b', 'c'] the way ch-image transcripts do.
std::string format_argv(const std::vector<std::string>& argv);

}  // namespace minicon::core
