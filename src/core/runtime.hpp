// Container runtimes: Type I / II / III process entry (§2.2).
//
// Each function turns a host process into a containerized process with the
// right namespaces, ID maps, and mount table. The crucial difference between
// the flavours is *who owns what*:
//   * Type I   (docker-ish): no user namespace — container root IS host root.
//   * Type II  (rootless Podman): privileged helpers install subuid/subgid
//     maps; many IDs are available; storage mounts are owned by the
//     container's namespace.
//   * Type III (ch-run): unprivileged self-map only; exactly one UID/GID.
#pragma once

#include "core/machine.hpp"
#include "fakeroot/fakeroot.hpp"
#include "kernel/helpers.hpp"

namespace minicon::core {

// A container root filesystem: possibly a subtree of a larger filesystem
// (ch-image storage dirs, vfs-driver layer dirs).
struct RootFs {
  vfs::FilesystemPtr fs;
  vfs::InodeNum root = 0;  // 0 = fs->root()
  // Namespace owning the superblock. Host-backed storage stays owned by the
  // initial namespace even when entered from a container (bind semantics);
  // driver mounts made inside the container namespace are owned by it.
  kernel::UserNsPtr owner_ns;  // nullptr = machine's initial namespace
};

struct TypeIIIOptions {
  bool map_to_root = true;  // invoker appears as UID 0 inside
  bool bind_host_proc = true;
  // ch-run --bind SRC:DST — host directories bound into the container
  // (read-write, host-owned: the container gains no privilege over them).
  std::vector<std::pair<std::string, std::string>> binds;
  // §6.2.4 future work: ask the kernel for a helper-free full map instead of
  // the single self-map. Requires the unprivileged_auto_maps sysctl.
  bool kernel_auto_maps = false;
  std::map<std::string, std::string> env;
};

// ch-run style fully-unprivileged entry. Fails only if user namespaces are
// administratively disabled.
Result<kernel::Process> enter_type3(Machine& m, const kernel::Process& invoker,
                                    const RootFs& rootfs,
                                    const TypeIIIOptions& options = {});

struct TypeIIOptions {
  // Installed via newuidmap/newgidmap against /etc/subuid + /etc/subgid.
  bool use_helpers = true;
  // Overlay storage is mounted by fuse-overlayfs *inside* the namespace, so
  // the superblock belongs to the container (enables mknod-free privileged
  // behavior like namespaced file capabilities). Plain-directory storage
  // (vfs driver) stays owned by the host mount.
  bool container_owned_storage = true;
  // Fig 5 mode: single self-map, host /proc bound, chown errors squashed by
  // the storage configuration.
  bool ignore_chown_errors = false;
  kernel::HelperConfig helper_config;
  std::map<std::string, std::string> env;
};

Result<kernel::Process> enter_type2(Machine& m, const kernel::Process& invoker,
                                    const RootFs& rootfs,
                                    const TypeIIOptions& options = {});

// Type I: privileged entry (requires real root) — the Docker model, used by
// the "sandboxed build system" baseline (§3.2 option 1).
Result<kernel::Process> enter_type1(Machine& m, const kernel::Process& invoker,
                                    const RootFs& rootfs,
                                    const std::map<std::string, std::string>&
                                        env = {});

// Syscall wrapper for Podman's --ignore-chown-errors storage option: failed
// ownership changes are silently dropped (IDs get squashed to the single
// available one) instead of failing the operation.
class IgnoreChownSyscalls : public fakeroot::FakerootSyscalls {
 public:
  explicit IgnoreChownSyscalls(std::shared_ptr<kernel::Syscalls> inner);

  // Unlike fakeroot we do not lie about identity or later stats; we only
  // squash chown failures.
  Result<vfs::Stat> stat(kernel::Process& p, const std::string& path) override;
  Result<vfs::Stat> lstat(kernel::Process& p,
                          const std::string& path) override;
  VoidResult chown(kernel::Process& p, const std::string& path, vfs::Uid uid,
                   vfs::Gid gid, bool follow) override;
  VoidResult mknod(kernel::Process& p, const std::string& path,
                   vfs::FileType type, std::uint32_t mode,
                   std::uint32_t dev_major, std::uint32_t dev_minor) override;
  VoidResult set_xattr(kernel::Process& p, const std::string& path,
                       const std::string& name,
                       const std::string& value) override;
};

}  // namespace minicon::core
