#include "core/singularity.hpp"

#include "image/tar.hpp"
#include "kernel/syscalls.hpp"
#include "support/path.hpp"
#include "support/strings.hpp"

namespace minicon::core {

namespace {

// Extracts registry layers into a fresh MemFs with kernel-ID translation
// through `map_uid`/`map_gid` (identity for Type I, userns map for Type II,
// squash-to-invoker for Type III imports).
template <typename MapUid, typename MapGid>
Result<vfs::FilesystemPtr> materialize(image::Registry& registry,
                                       const image::Manifest& manifest,
                                       MapUid&& map_uid, MapGid&& map_gid) {
  auto fs = std::make_shared<vfs::MemFs>(0755);
  vfs::OpCtx ctx;
  for (const auto& digest : manifest.layers) {
    auto entries = image::registry_layer_entries(registry, digest);
    if (!entries.ok()) return entries.error();
    for (auto& e : *entries) {
      e.uid = map_uid(e.uid);
      e.gid = map_gid(e.gid);
      if (e.type == vfs::FileType::CharDev ||
          e.type == vfs::FileType::BlockDev) {
        e.type = vfs::FileType::Regular;  // flattened formats drop devices
        e.content.clear();
      }
    }
    MINICON_TRY(image::entries_to_tree(*entries, *fs, fs->root(), ctx));
  }
  return vfs::FilesystemPtr(fs);
}

// Writes a flattened single-file image (SIF / enroot squash) to the host
// filesystem as the invoker.
VoidResult write_flat_file(kernel::Process& invoker, const std::string& path,
                           vfs::Filesystem& fs,
                           const image::ImageConfig& config) {
  MINICON_TRY_ASSIGN(entries, image::tree_to_entries(fs, fs.root()));
  auto flat = image::flatten_ownership(std::move(entries));
  std::string blob = "MINICON-SIF\n" + config.serialize() + "\x1d";
  blob += image::tar_create(flat);
  return invoker.sys->write_file(invoker, path, std::move(blob), false, 0644);
}

struct FlatFile {
  image::ImageConfig config;
  std::vector<image::TarEntry> entries;
};

Result<FlatFile> read_flat_file(kernel::Process& invoker,
                                const std::string& path) {
  MINICON_TRY_ASSIGN(blob, invoker.sys->read_file(invoker, path));
  if (!blob.starts_with("MINICON-SIF\n")) return Err::einval;
  const std::size_t sep = blob.find('\x1d');
  if (sep == std::string::npos) return Err::einval;
  FlatFile out;
  // Config: only env/arch/cmd matter for running.
  for (const auto& line : split(blob.substr(12, sep - 12), '\n')) {
    if (starts_with(line, "env:")) {
      const auto eq = line.find('=');
      if (eq != std::string::npos) {
        out.config.env[line.substr(4, eq - 4)] = line.substr(eq + 1);
      }
    } else if (starts_with(line, "arch=")) {
      out.config.arch = line.substr(5);
    } else if (starts_with(line, "cmd:")) {
      out.config.cmd.push_back(line.substr(4));
    }
  }
  MINICON_TRY_ASSIGN(entries, image::tar_parse(blob.substr(sep + 1)));
  out.entries = std::move(entries);
  return out;
}

}  // namespace

Result<SingularityDef> parse_definition(const std::string& text) {
  // A Dockerfile is not a definition file: reject it up front, as the real
  // tool does ("only from Singularity definition files").
  const std::string first(trim(split(text, '\n').front()));
  if (starts_with(first, "FROM ") || starts_with(first, "FROM\t")) {
    return Err::einval;
  }
  SingularityDef def;
  std::string section;
  for (const auto& raw : split(text, '\n')) {
    const std::string line(trim(raw));
    if (line.empty() || line[0] == '#') continue;
    if (starts_with(line, "Bootstrap:")) {
      def.bootstrap = std::string(trim(line.substr(10)));
      continue;
    }
    if (starts_with(line, "From:")) {
      def.from = std::string(trim(line.substr(5)));
      continue;
    }
    if (line[0] == '%') {
      section = line.substr(1);
      continue;
    }
    if (section == "post") {
      def.post.push_back(line);
    } else if (section == "environment") {
      const auto eq = line.find('=');
      if (eq != std::string::npos) {
        std::string key(trim(line.substr(0, eq)));
        if (starts_with(key, "export ")) key = key.substr(7);
        def.environment[key] = std::string(trim(line.substr(eq + 1)));
      }
    } else if (section == "runscript") {
      def.runscript.push_back(line);
    }
  }
  if (def.from.empty()) return Err::einval;
  if (def.bootstrap.empty()) def.bootstrap = "docker";
  return def;
}

Singularity::Singularity(Machine& m, kernel::Process invoker,
                         image::Registry* registry)
    : m_(m), invoker_(std::move(invoker)), registry_(registry) {}

int Singularity::build(const std::string& sif_path,
                       const std::string& definition_text, Transcript& t) {
  auto def = parse_definition(definition_text);
  if (!def.ok()) {
    t.line("FATAL: Unable to build from " + sif_path +
           ": this does not appear to be a Singularity definition file "
           "(Dockerfiles require a separate builder)");
    return 255;
  }
  t.line("INFO:    Starting build... (--fakeroot: Type II user namespace)");
  auto manifest = registry_->get_manifest(def->from, m_.arch());
  if (!manifest) manifest = registry_->get_manifest(def->from);
  if (!manifest) {
    t.line("FATAL: Unable to pull " + def->from + ": not found");
    return 255;
  }

  // Type II container: helpers install the subuid maps, like rootless
  // Podman ("branded fakeroot", §3.1).
  RootFs probe_rootfs;  // materialized below
  auto fs = materialize(
      *registry_, *manifest, [](vfs::Uid u) { return u; },
      [](vfs::Gid g) { return g; });
  if (!fs.ok()) {
    t.line("FATAL: corrupt base image");
    return 255;
  }
  // Translate to host IDs through a Type II namespace by entering one.
  probe_rootfs.fs = *fs;
  probe_rootfs.root = (*fs)->root();
  auto container = enter_type2(m_, invoker_, probe_rootfs, {});
  if (!container.ok()) {
    t.line("FATAL: --fakeroot requires subuid/subgid configuration (" +
           std::string(err_message(container.error())) + ")");
    return 255;
  }
  // The base tree was materialized with container-view IDs; rewrite them to
  // host IDs using the namespace map so permission checks behave.
  {
    vfs::OpCtx ctx;
    auto entries = image::tree_to_entries(**fs, (*fs)->root());
    if (entries.ok()) {
      auto scratch = std::make_shared<vfs::MemFs>(0755);
      for (auto& e : *entries) {
        e.uid = container->userns->uid_to_kernel(e.uid).value_or(
            invoker_.cred.euid);
        e.gid = container->userns->gid_to_kernel(e.gid).value_or(
            invoker_.cred.egid);
      }
      (void)image::entries_to_tree(*entries, *scratch, scratch->root(), ctx);
      (void)scratch->set_owner(ctx, scratch->root(),
                               container->userns->uid_to_kernel(0).value_or(
                                   invoker_.cred.euid),
                               container->userns->gid_to_kernel(0).value_or(
                                   invoker_.cred.egid));
      probe_rootfs.fs = scratch;
      probe_rootfs.root = scratch->root();
      container = enter_type2(m_, invoker_, probe_rootfs, {});
      if (!container.ok()) return 255;
    }
  }

  image::ImageConfig config = manifest->config;
  config.arch = m_.arch();
  for (const auto& [k, v] : def->environment) config.env[k] = v;
  if (!def->runscript.empty()) {
    config.cmd = {"/bin/sh", "-c", join(def->runscript, "\n")};
  }
  container->env.insert(config.env.begin(), config.env.end());

  t.line("INFO:    Running post scriptlet");
  for (const auto& cmd : def->post) {
    t.line("+ " + cmd);
    std::string out, err;
    const int status = m_.shell().run(*container, cmd, out, err);
    t.block(out);
    t.block(err);
    if (status != 0) {
      t.line("FATAL: While performing build: while running post scriptlet: "
             "exit status " + std::to_string(status));
      return status;
    }
  }

  // Flatten into the SIF: one file, all ownership squashed — "a flattened
  // file tree where all users have equivalent access, like that produced by
  // Charliecloud or Singularity's SIF" (§6.2.5).
  if (auto rc = write_flat_file(invoker_, sif_path, *probe_rootfs.fs, config);
      !rc.ok()) {
    t.line("FATAL: cannot write " + sif_path + ": " +
           std::string(err_message(rc.error())));
    return 255;
  }
  t.line("INFO:    Creating SIF file...");
  t.line("INFO:    Build complete: " + sif_path);
  return 0;
}

int Singularity::run(const std::string& sif_path,
                     const std::vector<std::string>& argv, Transcript& t) {
  auto flat = read_flat_file(invoker_, sif_path);
  if (!flat.ok()) {
    t.line("FATAL: could not open image " + sif_path);
    return 255;
  }
  // Extract as the invoker (all files become theirs: flattened tree).
  auto fs = std::make_shared<vfs::MemFs>(0755);
  vfs::OpCtx ctx;
  ctx.host_uid = invoker_.cred.euid;
  ctx.host_gid = invoker_.cred.egid;
  for (auto& e : flat->entries) {
    e.uid = invoker_.cred.euid;
    e.gid = invoker_.cred.egid;
  }
  if (!image::entries_to_tree(flat->entries, *fs, fs->root(), ctx).ok()) {
    t.line("FATAL: corrupt SIF");
    return 255;
  }
  RootFs rootfs{fs, fs->root(), nullptr};
  TypeIIIOptions opts;
  opts.env = flat->config.env;
  auto container = enter_type3(m_, invoker_, rootfs, opts);
  if (!container.ok()) {
    t.line("FATAL: cannot create container");
    return 255;
  }
  std::string out, err;
  const int status =
      argv.empty() && !flat->config.cmd.empty()
          ? m_.shell().run_argv(*container, flat->config.cmd, out, err)
          : m_.shell().run_argv(*container, argv, out, err);
  t.block(out);
  t.block(err);
  return status;
}

// --- Enroot ---------------------------------------------------------------------

Enroot::Enroot(Machine& m, kernel::Process invoker, image::Registry* registry)
    : m_(m), invoker_(std::move(invoker)), registry_(registry) {}

int Enroot::import(const std::string& ref, const std::string& local_path,
                   Transcript& t) {
  auto manifest = registry_->get_manifest(ref, m_.arch());
  if (!manifest) manifest = registry_->get_manifest(ref);
  if (!manifest) {
    t.line("[ERROR] URL docker://" + ref + " not found");
    return 1;
  }
  // Fully unprivileged conversion: ownership squashes to the invoker.
  auto fs = materialize(
      *registry_, *manifest,
      [&](vfs::Uid) { return invoker_.cred.euid; },
      [&](vfs::Gid) { return invoker_.cred.egid; });
  if (!fs.ok()) {
    t.line("[ERROR] corrupt image");
    return 1;
  }
  if (auto rc =
          write_flat_file(invoker_, local_path, **fs, manifest->config);
      !rc.ok()) {
    t.line("[ERROR] cannot write " + local_path);
    return 1;
  }
  t.line("[INFO] Fetched image docker://" + ref);
  t.line("[INFO] Created squashfs image " + local_path);
  return 0;
}

int Enroot::run(const std::string& local_path,
                const std::vector<std::string>& argv, Transcript& t) {
  Singularity compat(m_, invoker_, registry_);
  return compat.run(local_path, argv, t);
}

}  // namespace minicon::core
