// Rootless Podman: the Type II builder (§4).
//
// Privileged helpers (newuidmap/newgidmap driven by /etc/subuid and
// /etc/subgid) give the build a rich ID space, so unmodified distro tooling
// works. Features modeled from the paper:
//   * storage drivers: overlay (fuse-overlayfs; needs user xattrs) and vfs
//     (full copies; what RHEL7-era Astra used) — §4.1/§4.2;
//   * per-instruction build cache (a capability Charliecloud lacks, §6.1-3),
//     now a content-addressed buildgraph::BuildCache shareable with other
//     builders;
//   * multi-layer ownership-preserving push (archives are created "within
//     the container", §2.1.2 / §6.1);
//   * experimental unprivileged mode: single self-map +
//     --ignore-chown-errors, whose openssh-server failure is Fig 5;
//   * shared-filesystem graphroot clash (xattrs / server-side IDs, §4.2);
//   * multi-stage builds lowered to a buildgraph::BuildGraph and scheduled
//     by buildgraph::StageScheduler (independent stages run concurrently).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "buildgraph/cache.hpp"
#include "buildgraph/graph.hpp"
#include "buildgraph/scheduler.hpp"
#include "core/force.hpp"
#include "core/machine.hpp"
#include "core/runtime.hpp"
#include "core/storage.hpp"
#include "kernel/zeroconsistency.hpp"
#include "image/registry.hpp"
#include "kernel/syscall_filter.hpp"
#include "kernel/trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/transcript.hpp"

namespace minicon::support {
class ThreadPool;
}

namespace minicon::core {

struct PodmanOptions {
  enum class Driver { kOverlay, kVfs };
  Driver driver = Driver::kOverlay;
  // Default rootless configuration with privileged helpers; false selects
  // the experimental unprivileged mode (§4.1.1 / Fig 5).
  bool rootless_helpers = true;
  bool ignore_chown_errors = false;
  // kSeccomp stacks the zero-consistency filter under every container —
  // the interesting pairing is the unprivileged single-map mode
  // (rootless_helpers=false), where it fakes the chowns Fig 5 dies on
  // instead of merely ignoring their errors. kFakeroot is not a podman
  // thing (rootless helpers already give real consistency) and is treated
  // as kNone.
  ForceMode force_mode = ForceMode::kNone;
  bool build_cache = true;
  // Build cache shared with other builders (implies build_cache). When null
  // and build_cache is set, the builder creates a private cache backed by
  // the registry's chunk store.
  buildgraph::BuildCachePtr shared_cache;
  // Where image storage lives. Defaults to a fresh local filesystem
  // ("/tmp or local disk", §4.2); pass a SharedFs to model an NFS graphroot.
  vfs::FilesystemPtr graphroot_backing;
  kernel::HelperConfig helper_config;

  // Multi-stage scheduling: independent stages run concurrently on
  // stage_pool (null = support::shared_pool()). parallel_stages=false
  // forces serial execution; transcripts are identical either way.
  bool parallel_stages = true;
  std::shared_ptr<support::ThreadPool> stage_pool;

  // Retry for RUN instructions that fail transiently (fault injection);
  // default is one attempt, i.e. no retry.
  buildgraph::RetryPolicy run_retry;

  // Worker pool for the pipelined push path (per-layer chunk digest +
  // upload overlap with tar serialization). Null selects the process-wide
  // shared pool.
  std::shared_ptr<support::ThreadPool> digest_pool;

  // Syscall interposition stack: with tracing on, every container gets a
  // TraceSyscalls layer and the transcript reports per-STEP syscall counts.
  bool trace_syscalls = false;
  kernel::SyscallStatsPtr syscall_stats;  // shared sink; created if null
  // Extra layers (e.g. fault injection), innermost first; trace wraps them.
  std::vector<kernel::SyscallLayerFn> syscall_layers;

  // Unified telemetry (`podman build --trace`): span tracing across the
  // whole build — build → stage → instruction → syscall-batch — plus an
  // ObserveSyscalls metrics layer stacked innermost in every container. A
  // Tracer is created when `tracer` is null; read it back via tracer().
  bool trace = false;
  std::shared_ptr<obs::Tracer> tracer;
  // ObserveSyscalls without full span tracing (implied by `trace`).
  bool observe_syscalls = false;
  // Registry the build reports into; null = obs::global_metrics(). Also
  // re-points the build cache's mirrored counters.
  obs::MetricsRegistry* metrics = nullptr;
};

class Podman {
 public:
  Podman(Machine& m, kernel::Process invoker, image::Registry* registry,
         PodmanOptions options = {});

  // `podman build -t tag .`
  int build(const std::string& tag, const std::string& dockerfile_text,
            Transcript& t);

  // `podman push tag ref` — base layers by digest plus one diff layer per
  // built layer, ownership preserved in container-namespace IDs.
  int push(const std::string& tag, const std::string& dest_ref, Transcript& t);

  // `podman run tag -- argv`
  int run_in_image(const std::string& tag,
                   const std::vector<std::string>& argv, Transcript& t);

  // `podman unshare cat /proc/self/uid_map` (Figs 4 and 5).
  int show_id_maps(Transcript& t);

  const image::ImageConfig* config(const std::string& tag) const;
  StorageDriver& driver() { return *driver_; }

  // Build-cache counters (zero when caching is off). With a shared cache
  // the counters aggregate every builder attached to it.
  std::size_t cache_hits() const {
    return cache_ != nullptr ? cache_->stats().hits : 0;
  }
  std::size_t cache_misses() const {
    return cache_ != nullptr ? cache_->stats().misses : 0;
  }
  buildgraph::CacheStats cache_stats() const {
    return cache_ != nullptr ? cache_->stats() : buildgraph::CacheStats{};
  }
  const buildgraph::BuildCachePtr& build_cache() const { return cache_; }
  // Stage-scheduling stats for the most recent build.
  const buildgraph::ScheduleStats& schedule_stats() const {
    return sched_stats_;
  }

  // Aggregate syscall counters across every container entered (null unless
  // tracing is enabled) and the interposition depth of the last container.
  const kernel::SyscallStatsPtr& syscall_stats() const { return stats_; }
  int last_interposition_depth() const { return last_depth_; }

  // Faked-op counts for force_mode == kSeccomp (null otherwise).
  const kernel::ZeroConsistencyStatsPtr& zeroconsistency_stats() const {
    return zc_stats_;
  }

  // The span tracer (null unless options.trace / options.tracer) and the
  // metrics registry this builder reports into (never null).
  const std::shared_ptr<obs::Tracer>& tracer() const { return tracer_; }
  obs::MetricsRegistry& metrics() const { return *metrics_; }

  // The container-side view of a kernel ID under this Podman's map
  // (overflow ID when unmapped).
  vfs::Uid uid_to_container(vfs::Uid kuid) const;
  vfs::Gid gid_to_container(vfs::Gid kgid) const;

 private:
  struct BuiltImage {
    std::vector<std::string> base_digests;
    std::vector<Layer> run_layers;  // one per layer-creating instruction
    Layer top;
    image::ImageConfig config;
  };

  // Per-stage build state, indexed by stage index. Written only by the
  // stage's own executor; read by dependent stages (after the scheduler's
  // happens-before edge).
  struct StageBuild {
    Layer current;
    image::ImageConfig cfg;
    std::vector<std::string> base_digests;
    std::vector<Layer> run_layers;
    std::string key;  // build-cache chain after the last instruction
  };

  Result<kernel::Process> enter(const Layer& layer,
                                const image::ImageConfig& cfg);
  void load_id_maps();
  // Reads one file out of a layer's tree (store-side, no container entry).
  Result<std::string> read_from_layer(const Layer& layer,
                                      const std::string& path) const;
  // Replays a cached diff tar on top of a fresh layer.
  // Replays a cached diff snapshot into a fresh layer (entries carry
  // host-side IDs, how the storage layer keeps them).
  bool restore_layer(const Layer& layer, const vfs::SnapNodePtr& snapshot);
  // Executes one build stage; called (possibly concurrently) by the
  // scheduler. Serializes machine access via machine_mu_.
  int build_stage(const buildgraph::BuildGraph& g, const buildgraph::Stage& s,
                  std::vector<StageBuild>& sb, Transcript& t,
                  obs::SpanId stage_span);

  Machine& m_;
  kernel::Process invoker_;
  image::Registry* registry_;
  PodmanOptions options_;
  std::unique_ptr<StorageDriver> driver_;
  std::map<std::string, BuiltImage> images_;
  buildgraph::BuildCachePtr cache_;  // null when caching is off
  buildgraph::ScheduleStats sched_stats_;
  // One simulated machine, one storage driver: stage bodies serialize here.
  std::mutex machine_mu_;
  kernel::SyscallStatsPtr stats_;  // null unless tracing is enabled
  kernel::ZeroConsistencyStatsPtr zc_stats_;  // null unless force_mode seccomp
  int last_depth_ = 0;
  std::shared_ptr<obs::Tracer> tracer_;  // null unless span tracing is on
  obs::MetricsRegistry* metrics_ = nullptr;  // resolved in the constructor
  kernel::IdMap uid_map_;
  kernel::IdMap gid_map_;
};

}  // namespace minicon::core
