// Rootless Podman: the Type II builder (§4).
//
// Privileged helpers (newuidmap/newgidmap driven by /etc/subuid and
// /etc/subgid) give the build a rich ID space, so unmodified distro tooling
// works. Features modeled from the paper:
//   * storage drivers: overlay (fuse-overlayfs; needs user xattrs) and vfs
//     (full copies; what RHEL7-era Astra used) — §4.1/§4.2;
//   * per-instruction build cache (a capability Charliecloud lacks, §6.1-3);
//   * multi-layer ownership-preserving push (archives are created "within
//     the container", §2.1.2 / §6.1);
//   * experimental unprivileged mode: single self-map +
//     --ignore-chown-errors, whose openssh-server failure is Fig 5;
//   * shared-filesystem graphroot clash (xattrs / server-side IDs, §4.2).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/machine.hpp"
#include "core/runtime.hpp"
#include "core/storage.hpp"
#include "image/registry.hpp"
#include "kernel/syscall_filter.hpp"
#include "kernel/trace.hpp"
#include "support/transcript.hpp"

namespace minicon::support {
class ThreadPool;
}

namespace minicon::core {

struct PodmanOptions {
  enum class Driver { kOverlay, kVfs };
  Driver driver = Driver::kOverlay;
  // Default rootless configuration with privileged helpers; false selects
  // the experimental unprivileged mode (§4.1.1 / Fig 5).
  bool rootless_helpers = true;
  bool ignore_chown_errors = false;
  bool build_cache = true;
  // Where image storage lives. Defaults to a fresh local filesystem
  // ("/tmp or local disk", §4.2); pass a SharedFs to model an NFS graphroot.
  vfs::FilesystemPtr graphroot_backing;
  kernel::HelperConfig helper_config;

  // Worker pool for the pipelined push path (per-layer chunk digest +
  // upload overlap with tar serialization). Null selects the process-wide
  // shared pool.
  std::shared_ptr<support::ThreadPool> digest_pool;

  // Syscall interposition stack: with tracing on, every container gets a
  // TraceSyscalls layer and the transcript reports per-STEP syscall counts.
  bool trace_syscalls = false;
  kernel::SyscallStatsPtr syscall_stats;  // shared sink; created if null
  // Extra layers (e.g. fault injection), innermost first; trace wraps them.
  std::vector<kernel::SyscallLayerFn> syscall_layers;
};

class Podman {
 public:
  Podman(Machine& m, kernel::Process invoker, image::Registry* registry,
         PodmanOptions options = {});

  // `podman build -t tag .`
  int build(const std::string& tag, const std::string& dockerfile_text,
            Transcript& t);

  // `podman push tag ref` — base layers by digest plus one diff layer per
  // built layer, ownership preserved in container-namespace IDs.
  int push(const std::string& tag, const std::string& dest_ref, Transcript& t);

  // `podman run tag -- argv`
  int run_in_image(const std::string& tag,
                   const std::vector<std::string>& argv, Transcript& t);

  // `podman unshare cat /proc/self/uid_map` (Figs 4 and 5).
  int show_id_maps(Transcript& t);

  const image::ImageConfig* config(const std::string& tag) const;
  StorageDriver& driver() { return *driver_; }
  std::size_t cache_hits() const { return cache_hits_; }
  std::size_t cache_misses() const { return cache_misses_; }

  // Aggregate syscall counters across every container entered (null unless
  // tracing is enabled) and the interposition depth of the last container.
  const kernel::SyscallStatsPtr& syscall_stats() const { return stats_; }
  int last_interposition_depth() const { return last_depth_; }

  // The container-side view of a kernel ID under this Podman's map
  // (overflow ID when unmapped).
  vfs::Uid uid_to_container(vfs::Uid kuid) const;
  vfs::Gid gid_to_container(vfs::Gid kgid) const;

 private:
  struct BuiltImage {
    std::vector<std::string> base_digests;
    std::vector<Layer> run_layers;  // one per layer-creating instruction
    Layer top;
    image::ImageConfig config;
  };

  Result<kernel::Process> enter(const Layer& layer,
                                const image::ImageConfig& cfg);
  void load_id_maps();

  Machine& m_;
  kernel::Process invoker_;
  image::Registry* registry_;
  PodmanOptions options_;
  std::unique_ptr<StorageDriver> driver_;
  std::map<std::string, BuiltImage> images_;
  struct CacheEntry {
    Layer layer;
    image::ImageConfig config;
  };
  std::map<std::string, CacheEntry> cache_;
  kernel::SyscallStatsPtr stats_;  // null unless tracing is enabled
  int last_depth_ = 0;
  std::size_t cache_hits_ = 0;
  std::size_t cache_misses_ = 0;
  kernel::IdMap uid_map_;
  kernel::IdMap gid_map_;
};

}  // namespace minicon::core
