#include "core/chimage.hpp"

#include <chrono>
#include <regex>
#include <thread>

#include "buildfile/dockerfile.hpp"
#include "image/tar.hpp"
#include "kernel/observe.hpp"
#include "kernel/syscalls.hpp"
#include "obs/flightrec.hpp"
#include "support/path.hpp"
#include "support/sha256.hpp"
#include "support/strings.hpp"
#include "support/threadpool.hpp"
#include "vfs/snapshot.hpp"
#include "vfs/treeops.hpp"

namespace minicon::core {

const std::vector<ForceConfig>& builtin_force_configs() {
  static const std::vector<ForceConfig> configs = {
      {
          "rhel7",
          "CentOS/RHEL 7",
          "/etc/redhat-release",
          "release 7\\.",
          {{
              "command -v fakeroot >/dev/null",
              "set -ex; "
              "if ! grep -Eq '\\[epel\\]' /etc/yum.conf /etc/yum.repos.d/*; "
              "then yum install -y epel-release; "
              "yum-config-manager --disable epel; fi; "
              "yum --enablerepo=epel install -y fakeroot;",
          }},
          {"dnf", "rpm", "yum"},
      },
      {
          "debderiv",
          "Debian (9, 10) or Ubuntu (16, 18, 20)",
          "/etc/os-release",
          "buster|stretch|xenial|bionic|focal",
          {{
               "apt-config dump | fgrep -q 'APT::Sandbox::User \"root\"' || "
               "! fgrep -q _apt /etc/passwd",
               "echo 'APT::Sandbox::User \"root\";' > "
               "/etc/apt/apt.conf.d/no-sandbox",
           },
           {
               "command -v fakeroot >/dev/null",
               "apt-get update && apt-get install -y pseudo",
           }},
          {"apt", "apt-get", "dpkg"},
      },
  };
  return configs;
}

std::string format_argv(const std::vector<std::string>& argv) {
  std::string out = "[";
  for (std::size_t i = 0; i < argv.size(); ++i) {
    if (i > 0) out += ", ";
    out += "'" + argv[i] + "'";
  }
  out += "]";
  return out;
}

ChImage::ChImage(Machine& m, kernel::Process invoker,
                 image::Registry* registry, ChImageOptions options)
    : m_(m),
      invoker_(std::move(invoker)),
      registry_(registry),
      options_(std::move(options)),
      embedded_db_(std::make_shared<fakeroot::FakeDb>()) {
  if (options_.storage_dir.empty()) {
    options_.storage_dir = invoker_.env_get("HOME") + "/.local/share/ch-image";
  }
  // Normalize the two --force spellings: the boolean alone is the historical
  // fakeroot request; an explicit mode implies the flag.
  if (options_.force && options_.force_mode == ForceMode::kNone) {
    options_.force_mode = ForceMode::kFakeroot;
  } else if (options_.force_mode != ForceMode::kNone) {
    options_.force = true;
  }
  if (options_.force_mode == ForceMode::kSeccomp) {
    zc_stats_ = std::make_shared<kernel::ZeroConsistencyStats>();
  }
  if (options_.shared_cache != nullptr) {
    cache_ = options_.shared_cache;
    options_.build_cache = true;
  } else if (options_.build_cache) {
    // A private cache dedups its snapshot chunks against registry blobs.
    cache_ = std::make_shared<buildgraph::BuildCache>(
        registry_ != nullptr ? &registry_->chunk_store() : nullptr);
  }
  if (options_.trace_syscalls || options_.syscall_stats != nullptr) {
    stats_ = options_.syscall_stats != nullptr
                 ? options_.syscall_stats
                 : std::make_shared<kernel::SyscallStats>();
  }
  metrics_ = options_.metrics != nullptr ? options_.metrics
                                         : &obs::global_metrics();
  recorder_ = options_.flight_recorder != nullptr
                  ? options_.flight_recorder
                  : &obs::global_flight_recorder();
  if (options_.tracer != nullptr) {
    tracer_ = options_.tracer;
    options_.trace = true;  // a supplied tracer implies tracing
  } else if (options_.trace) {
    tracer_ = std::make_shared<obs::Tracer>();
  }
  if (cache_ != nullptr) {
    // Leave a shared cache's wiring alone unless we have something to add:
    // another builder (or the caller) may already have pointed it somewhere.
    if (options_.metrics != nullptr) cache_->set_metrics(options_.metrics);
    if (tracer_ != nullptr) cache_->set_tracer(tracer_);
  }
}

std::string ChImage::storage_path(const std::string& tag) const {
  std::string safe = tag;
  for (auto& c : safe) {
    if (c == '/' || c == ':') c = '+';
  }
  return options_.storage_dir + "/img/" + safe;
}

VoidResult ChImage::ensure_dir(const std::string& path) {
  std::string cur = "/";
  for (const auto& comp : path_components(path)) {
    cur = cur == "/" ? "/" + comp : cur + "/" + comp;
    if (invoker_.sys->stat(invoker_, cur).ok()) continue;
    MINICON_TRY(invoker_.sys->mkdir(invoker_, cur, 0755));
  }
  return {};
}

VoidResult ChImage::extract_as_user(
    const std::vector<image::TarEntry>& entries, const std::string& dest,
    std::size_t* skipped_devices) {
  for (const auto& e : entries) {
    const std::string path = path_join(dest, e.name);
    switch (e.type) {
      case vfs::FileType::Directory:
        if (!invoker_.sys->stat(invoker_, path).ok()) {
          MINICON_TRY(invoker_.sys->mkdir(invoker_, path, e.mode | 0700));
        }
        break;
      case vfs::FileType::Symlink:
        (void)invoker_.sys->unlink(invoker_, path);
        MINICON_TRY(invoker_.sys->symlink(invoker_, e.linkname, path));
        break;
      case vfs::FileType::Regular:
        (void)invoker_.sys->unlink(invoker_, path);
        MINICON_TRY(
            invoker_.sys->write_file(invoker_, path, e.content, false, e.mode));
        break;
      case vfs::FileType::CharDev:
      case vfs::FileType::BlockDev:
        // An unprivileged pull cannot create device nodes; skip like
        // ch-image does.
        if (skipped_devices != nullptr) ++*skipped_devices;
        break;
      default:
        break;
    }
  }
  return {};
}

const ForceConfig* ChImage::detect_config(const std::string& image_dir) {
  for (const auto& cfg : builtin_force_configs()) {
    // match_file is container-absolute; resolve it inside the image dir.
    auto text = invoker_.sys->read_file(invoker_, image_dir + cfg.match_file);
    if (!text.ok()) continue;
    try {
      if (std::regex_search(*text, std::regex(cfg.match_regex))) {
        return &cfg;
      }
    } catch (const std::regex_error&) {
      continue;
    }
  }
  return nullptr;
}

Result<kernel::Process> ChImage::enter(const std::string& image_dir,
                                       const image::ImageConfig& cfg) {
  MINICON_TRY_ASSIGN(loc, invoker_.sys->resolve(invoker_, image_dir, true));
  RootFs rootfs;
  rootfs.fs = loc.mnt->fs;
  rootfs.root = loc.ino;
  rootfs.owner_ns = loc.mnt->owner_ns;  // host storage: init-owned
  TypeIIIOptions opts;
  opts.env = cfg.env;
  opts.kernel_auto_maps = options_.kernel_assisted_maps;
  MINICON_TRY_ASSIGN(container, enter_type3(m_, invoker_, rootfs, opts));
  // Interposition stack, innermost first: metrics observation, then the
  // zero-consistency filter, then caller-supplied layers (fault injection,
  // ...), then tracing, then fakeroot outermost so the lies database sees
  // the build's view of every faked operation. ObserveSyscalls sits below
  // the caller layers so an injected fault short-circuits above it and
  // never skews the organic syscall.errno.* counters (it is counted as
  // syscall.fault_injected by the fault layer instead). The same reasoning
  // places ZeroConsistencySyscalls directly above Observe: faked ops never
  // reach the organic counters (they are syscall.zeroconsistency.* instead),
  // while an injected EPERM fires in the fault layer *before* the filter
  // could fake it and so still propagates — a seccomp filter models the
  // kernel's edge, not the C library's.
  if (options_.trace || options_.observe_syscalls) {
    container.sys = std::make_shared<kernel::ObserveSyscalls>(
        container.sys, metrics_, recorder_);
  }
  if (options_.force_mode == ForceMode::kSeccomp) {
    container.sys = std::make_shared<kernel::ZeroConsistencySyscalls>(
        container.sys, zc_stats_, metrics_, recorder_);
  }
  for (const auto& layer : options_.syscall_layers) {
    if (layer) container.sys = layer(container.sys);
  }
  if (stats_ != nullptr) {
    container.sys =
        std::make_shared<kernel::TraceSyscalls>(container.sys, stats_);
  }
  if (options_.embedded_fakeroot) {
    // §6.2.2-3: the wrapper lives in the builder, not the image.
    container.sys = std::make_shared<fakeroot::FakerootSyscalls>(
        container.sys, embedded_db_, fakeroot::FakerootOptions{});
  }
  last_depth_ = kernel::interposition_depth(container.sys.get());
  container.cwd = cfg.workdir.empty() ? "/" : cfg.workdir;
  return container;
}

int ChImage::run_in_container(const std::string& image_dir,
                              const image::ImageConfig& cfg,
                              const std::vector<std::string>& argv,
                              std::string& out, std::string& err) {
  auto container = enter(image_dir, cfg);
  if (!container.ok()) {
    err += "ch-run: cannot enter container: " +
           std::string(err_message(container.error())) + "\n";
    return 1;
  }
  return m_.shell().run_argv(*container, argv, out, err);
}

Result<vfs::SnapNodePtr> ChImage::tree_snapshot(const std::string& dir,
                                                obs::SpanId parent) {
  MINICON_TRY_ASSIGN(loc, invoker_.sys->resolve(invoker_, dir, true));
  obs::Span span(tracer_.get(), "snapshot", parent);
  vfs::SnapshotStats stats;
  MINICON_TRY_ASSIGN(snap, loc.mnt->fs->snapshot(loc.ino, &stats));
  span.annotate("nodes_built", std::to_string(stats.nodes_built));
  span.annotate("nodes_reused", std::to_string(stats.nodes_reused));
  metrics_->counter("snapshot.nodes_built").add(stats.nodes_built);
  metrics_->counter("snapshot.nodes_reused").add(stats.nodes_reused);
  return snap;
}

bool ChImage::restore_tree(const std::string& dir,
                           const vfs::SnapNodePtr& target, obs::SpanId parent) {
  if (target == nullptr) return false;
  auto loc = invoker_.sys->resolve(invoker_, dir, true);
  if (!loc.ok()) return false;
  vfs::OpCtx ctx;
  ctx.host_uid = invoker_.cred.euid;
  ctx.host_gid = invoker_.cred.egid;
  ctx.host_privileged = invoker_.cred.euid == 0;
  obs::Span span(tracer_.get(), "snapshot.sync", parent);
  auto stats = vfs::sync_tree(*loc->mnt->fs, loc->ino, target, ctx);
  if (!stats.ok()) return false;
  span.annotate("created", std::to_string(stats->created));
  span.annotate("removed", std::to_string(stats->removed));
  span.annotate("reused", std::to_string(stats->reused));
  return true;
}

std::string ChImage::context_digest(const std::string& path,
                                    const std::string& data) {
  if (auto loc = invoker_.sys->resolve(invoker_, path, true); loc.ok()) {
    if (auto snap = loc->mnt->fs->snapshot(loc->ino); snap.ok()) {
      return (*snap)->digest;
    }
  }
  return Sha256::hex_digest(data);
}

Result<image::ImageConfig> ChImage::pull_into(const std::string& ref,
                                              const std::string& dir,
                                              Transcript& t) {
  auto manifest = registry_->get_manifest(ref, m_.arch());
  if (!manifest) {
    manifest = registry_->get_manifest(ref);
    if (!manifest) {
      t.line("error: pull failed: manifest for " + ref + " not found");
      return Err::enoent;
    }
    t.line("warning: no " + m_.arch() + " manifest for " + ref + "; using " +
           manifest->config.arch);
  }
  if (auto rc = ensure_dir(dir); !rc.ok()) {
    t.line("error: cannot create storage directory " + dir);
    return rc.error();
  }
  std::string base_key;
  for (const auto& digest : manifest->layers) base_key += digest + "\n";
  // Fast path: this directory held exactly this layer chain before; sync it
  // back to the recorded post-extract state instead of re-extracting every
  // layer — subtrees whose digests still match are skipped wholesale.
  if (auto led = m_.snapshots().find(dir);
      led.has_value() && led->key == base_key) {
    if (restore_tree(dir, led->snap)) {
      metrics_->counter("snapshot.base_reuses").add();
      return manifest->config;
    }
  }
  // Slow path: restore the pristine image state by clearing and extracting.
  if (auto loc = invoker_.sys->resolve(invoker_, dir, true); loc.ok()) {
    vfs::OpCtx ctx;
    ctx.host_uid = invoker_.cred.euid;
    ctx.host_gid = invoker_.cred.egid;
    (void)vfs::remove_tree_contents(*loc->mnt->fs, loc->ino, ctx);
  }
  std::size_t skipped_devices = 0;
  for (const auto& digest : manifest->layers) {
    // Tree layers walk the shared snapshot; blob layers pull + parse tar.
    auto entries = image::registry_layer_entries(*registry_, digest);
    if (!entries.ok()) {
      t.line(entries.error() == Err::enoent
                 ? "error: pull failed: missing blob " + digest
                 : "error: pull failed: corrupt layer " + digest);
      return entries.error();
    }
    if (auto rc = extract_as_user(*entries, dir, &skipped_devices); !rc.ok()) {
      t.line("error: pull failed while extracting: " +
             std::string(err_message(rc.error())));
      return rc.error();
    }
  }
  if (skipped_devices > 0) {
    t.line("warning: ignored " + std::to_string(skipped_devices) +
           " device file(s) in " + ref);
  }
  // Record what extraction actually produced (the invoker's umask and ID
  // squash included) so the next pull of this chain is a pure sync.
  if (auto snap = tree_snapshot(dir); snap.ok()) {
    m_.snapshots().record(dir, base_key, *snap);
  }
  return manifest->config;
}

int ChImage::pull(const std::string& ref, const std::string& tag,
                  Transcript& t) {
  auto cfg = pull_into(ref, storage_path(tag), t);
  if (!cfg.ok()) return 1;
  configs_[tag] = *cfg;
  t.line("pulled image: " + ref + " -> " + tag);
  return 0;
}

int ChImage::build(const std::string& tag, const std::string& dockerfile_text,
                   Transcript& t) {
  auto parsed = build::parse_dockerfile(dockerfile_text);
  if (const auto* err = std::get_if<build::DockerfileError>(&parsed)) {
    t.line("error: Dockerfile line " + std::to_string(err->line) + ": " +
           err->message);
    return 1;
  }
  const auto& df = std::get<build::Dockerfile>(parsed);
  auto lowered = buildgraph::lower(df);
  if (const auto* err = std::get_if<build::DockerfileError>(&lowered)) {
    t.line("error: Dockerfile line " + std::to_string(err->line) + ": " +
           err->message);
    return 1;
  }
  const auto& g = std::get<buildgraph::BuildGraph>(lowered);

  // Baseline for the per-build faked-op delta (the sink is builder-lifetime
  // and a builder can run many builds).
  const kernel::ZeroConsistencyStats::Totals zc0 =
      zc_stats_ != nullptr ? zc_stats_->totals()
                           : kernel::ZeroConsistencyStats::Totals{};

  std::vector<StageBuild> sb(g.stages().size());
  // Adopt the caller's trace context (a cluster launch, a test harness) or
  // mint one: either way every span and flight event below carries it.
  trace_ctx_ = obs::current_trace().active() ? obs::current_trace()
                                             : obs::TraceContext::fresh();
  obs::TraceScope trace_scope(trace_ctx_);
  obs::Span build_span(tracer_.get(), "build");
  build_span.annotate("builder", "ch-image");
  build_span.annotate("tag", tag);
  build_span.annotate("trace_id", trace_ctx_.hex());
  buildgraph::StageScheduler::Options sopts;
  sopts.pool =
      options_.stage_pool != nullptr ? options_.stage_pool.get() : nullptr;
  sopts.parallel = options_.parallel_stages;
  sopts.tracer = tracer_;
  sopts.parent_span = build_span.id();
  sopts.metrics = options_.metrics;
  buildgraph::StageScheduler sched(g, sopts);
  const int rc = sched.run(
      [&](const buildgraph::Stage& s, Transcript& st) {
        return build_stage(tag, g, s, sb, st, sched.stage_span(s.index));
      },
      t);
  sched_stats_ = sched.stats();
  build_span.annotate("status", std::to_string(rc));
  if (rc != 0) {
    // Failure forensics: the post-mortem anchor event. Whatever syscall
    // errors / injected faults led here share this trace id — dump the
    // recorder filtered by it to read the causal chain.
    if (recorder_->enabled()) {
      recorder_->record(obs::FlightKind::kBuildFailed,
                        obs::flight_detail("ch-image", "", tag), rc);
    }
    if (zc_stats_ != nullptr) {
      // Readback-divergence report: with zero state kept, a faked result a
      // later step checked is the prime suspect for the failure.
      const auto zc = zc_stats_->totals();
      const std::uint64_t faked = zc.total() - zc0.total();
      if (faked > 0) {
        t.line("hint: build failed under --force=seccomp after " +
               std::to_string(faked) +
               " faked privileged syscalls; faked results do not survive "
               "readback (--force=fakeroot keeps them consistent)");
      }
    }
    return rc;
  }

  const StageBuild& target = sb[static_cast<std::size_t>(g.target())];
  configs_[tag] = target.cfg;
  int modified_runs = 0;
  bool any_keyword_match = false;
  const ForceConfig* hint_cfg = nullptr;
  for (const auto& s : sb) {
    modified_runs += s.modified_runs;
    if (s.any_keyword_match) {
      any_keyword_match = true;
      if (s.force_cfg != nullptr) hint_cfg = s.force_cfg;
    }
  }
  if (options_.force_mode == ForceMode::kSeccomp) {
    const auto zc = zc_stats_->totals();
    t.line("--force: seccomp: faked " +
           std::to_string(zc.total() - zc0.total()) +
           " privileged syscalls (chown " +
           std::to_string(zc.chown - zc0.chown) + ", chmod-setid " +
           std::to_string(zc.chmod_setid - zc0.chmod_setid) + ", mknod-dev " +
           std::to_string(zc.mknod_dev - zc0.mknod_dev) + ", setid " +
           std::to_string(zc.setid - zc0.setid) + ", xattr " +
           std::to_string(zc.xattr - zc0.xattr) + ")");
    if (zc.readback_divergent() > zc0.readback_divergent()) {
      t.line("note: zero-consistency mode kept no state for these; "
             "ownership, setuid bits, device nodes, and security xattrs "
             "will not survive readback (use --force=fakeroot for "
             "consistent lies)");
    }
  } else if (options_.force) {
    t.line("--force: init OK & modified " + std::to_string(modified_runs) +
           " RUN instructions");
  } else if (any_keyword_match && hint_cfg != nullptr) {
    t.line("hint: --force available (" + hint_cfg->name + ": " +
           hint_cfg->description + ")");
  }
  t.line("grown in " + std::to_string(g.instruction_count()) +
         " instructions: " + tag);
  return 0;
}

int ChImage::build_stage(const std::string& tag,
                         const buildgraph::BuildGraph& g,
                         const buildgraph::Stage& s,
                         std::vector<StageBuild>& sb, Transcript& t,
                         obs::SpanId stage_span) {
  // Stages migrate across pool workers; re-establish the build's context on
  // whichever thread actually runs this stage.
  obs::TraceScope trace_scope(trace_ctx_);
  std::unique_lock lock(machine_mu_);
  StageBuild& o = sb[static_cast<std::size_t>(s.index)];
  // The final stage *is* the image; intermediates get side directories.
  o.dir = s.index == g.target()
              ? storage_path(tag)
              : storage_path(tag) + "+stage" + std::to_string(s.index);
  t.line(std::to_string(s.from_number) + " FROM " + s.from->text);
  if (auto rc = ensure_dir(o.dir); !rc.ok()) {
    t.line("error: cannot create storage directory " + o.dir);
    return 1;
  }
  if (s.base_stage >= 0) {
    // Base is an earlier stage's tree: snapshot it and sync our directory to
    // match — subtrees left over from a previous build that already agree by
    // digest are reused instead of recopied.
    const StageBuild& dep = sb[static_cast<std::size_t>(s.base_stage)];
    auto snap = tree_snapshot(dep.dir, stage_span);
    if (!snap.ok() || !restore_tree(o.dir, *snap, stage_span)) {
      t.line("error: cannot materialize " + g.stage(s.base_stage).display());
      return 1;
    }
    o.cfg = dep.cfg;
    o.key = buildgraph::BuildCache::chain(dep.key, "FROM-STAGE");
  } else {
    Transcript pull_t;
    auto cfg = pull_into(s.base_ref, o.dir, pull_t);
    if (!cfg.ok()) {
      for (const auto& l : pull_t.lines()) t.line(l);
      return 1;
    }
    o.cfg = *cfg;
    o.key = buildgraph::BuildCache::chain("ch-image", "FROM|" + s.from->text,
                                          {o.cfg.arch});
  }
  o.force_cfg = detect_config(o.dir);
  if (options_.force_mode == ForceMode::kSeccomp) {
    // No distro sniffing required: the filter works on the syscall number
    // alone, so there is nothing to match, install, or rewrite.
    t.line("will use --force: seccomp: zero-consistency root emulation "
           "(no image modification)");
  } else if (options_.force) {
    if (o.force_cfg != nullptr) {
      t.line("will use --force: " + o.force_cfg->name + ": " +
             o.force_cfg->description);
    } else {
      t.line("warning: --force requested but no config matched");
    }
  }

  bool fakeroot_inited = false;
  // ARG values exist only during the build and are stage-scoped (Docker
  // semantics); they overlay the environment for RUN instructions.
  std::map<std::string, std::string> build_args;

  for (const auto& si : s.instrs) {
    const build::Instruction& ins = *si.ins;
    const std::string idx_str = std::to_string(si.number);
    obs::Span ins_span(tracer_.get(), "instruction", stage_span);
    ins_span.annotate("number", idx_str);
    ins_span.annotate("kind", build::instr_name(ins.kind));
    switch (ins.kind) {
      case build::InstrKind::kFrom:
        break;  // unreachable: FROM opens a stage, never appears in a body
      case build::InstrKind::kRun: {
        std::vector<std::string> argv =
            ins.is_exec_form()
                ? ins.exec_form
                : std::vector<std::string>{"/bin/sh", "-c", ins.text};
        t.line(idx_str + " RUN " + format_argv(argv));

        o.key = buildgraph::BuildCache::chain(o.key,
                                              "RUN|" + join(argv, "\x1f"));
        if (cache_ != nullptr) {
          auto hit = cache_->lookup(o.key, ins_span.id());
          if (hit && restore_tree(o.dir, hit->snapshot, ins_span.id())) {
            o.cfg = hit->config;
            ins_span.annotate("cached", "true");
            t.line("cached: using existing layer for step " + idx_str);
            break;
          }
        }

        const bool keyword_hit = [&] {
          if (o.force_cfg == nullptr) return false;
          const std::string& cmd = ins.is_exec_form() ? argv.back() : ins.text;
          for (const auto& kw : o.force_cfg->run_keywords) {
            if (contains(cmd, kw)) return true;
          }
          return false;
        }();
        o.any_keyword_match = o.any_keyword_match || keyword_hit;

        if (keyword_hit && options_.force_mode == ForceMode::kFakeroot &&
            !options_.embedded_fakeroot && !options_.kernel_assisted_maps) {
          if (!fakeroot_inited) {
            int step_no = 0;
            for (const auto& step : o.force_cfg->init_steps) {
              ++step_no;
              t.line("workarounds: init step " + std::to_string(step_no) +
                     ": checking: $ " + step.check_cmd);
              std::string out, err;
              auto container = enter(o.dir, o.cfg);
              if (!container.ok()) {
                t.line("error: cannot enter container");
                return 1;
              }
              const int check =
                  m_.shell().run(*container, step.check_cmd, out, err);
              if (check == 0) continue;  // step already satisfied
              t.line("workarounds: init step " + std::to_string(step_no) +
                     ": $ " + step.apply_cmd);
              out.clear();
              err.clear();
              auto apply_container = enter(o.dir, o.cfg);
              if (!apply_container.ok()) {
                t.line("error: cannot enter container");
                return 1;
              }
              const int applied =
                  m_.shell().run(*apply_container, step.apply_cmd, out, err);
              t.block(out);
              t.block(err);
              if (applied != 0) {
                t.line("error: --force init step " + std::to_string(step_no) +
                       " failed with exit status " + std::to_string(applied));
                return applied;
              }
            }
            fakeroot_inited = true;
          }
          argv.insert(argv.begin(), "fakeroot");
          t.line("workarounds: RUN: new command: " + format_argv(argv));
          ++o.modified_runs;
        }

        image::ImageConfig run_cfg = o.cfg;
        for (const auto& [k, v] : build_args) run_cfg.env[k] = v;
        int status = 0;
        std::string errno_sum;
        for (int attempt = 1;; ++attempt) {
          std::string out, err;
          const kernel::SyscallStats::Totals before =
              stats_ != nullptr ? stats_->totals()
                                : kernel::SyscallStats::Totals{};
          const kernel::ZeroConsistencyStats::Totals zc_before =
              zc_stats_ != nullptr ? zc_stats_->totals()
                                   : kernel::ZeroConsistencyStats::Totals{};
          // One syscall-batch span per attempt: deltas of the shared
          // syscall.* counters are exact because the machine mutex is held
          // across the container run.
          obs::Span batch(tracer_.get(), "syscall-batch", ins_span.id());
          batch.annotate("attempt", std::to_string(attempt));
          const std::uint64_t calls0 =
              metrics_->counter("syscall.calls").value();
          const std::uint64_t errors0 =
              metrics_->counter("syscall.errors").value();
          status = run_in_container(o.dir, run_cfg, argv, out, err);
          batch.annotate(
              "calls", std::to_string(
                           metrics_->counter("syscall.calls").value() - calls0));
          batch.annotate("errors",
                         std::to_string(
                             metrics_->counter("syscall.errors").value() -
                             errors0));
          batch.annotate("status", std::to_string(status));
          batch.end();
          t.block(out);
          t.block(err);
          errno_sum.clear();
          if (stats_ != nullptr) {
            const auto after = stats_->totals();
            errno_sum = kernel::SyscallStats::errno_summary(before, after);
            std::string line = "syscalls: instruction " + idx_str + ": " +
                               std::to_string(after.calls - before.calls) +
                               " calls, " +
                               std::to_string(after.errors - before.errors) +
                               " errors";
            if (!errno_sum.empty()) line += " (" + errno_sum + ")";
            line += ", depth " + std::to_string(last_depth_);
            t.line(line);
          }
          if (zc_stats_ != nullptr) {
            const auto zc_after = zc_stats_->totals();
            if (zc_after.total() > zc_before.total()) {
              t.line("seccomp: instruction " + idx_str + ": faked " +
                     std::to_string(zc_after.total() - zc_before.total()) +
                     " privileged syscalls");
            }
          }
          if (status == 0 || attempt >= options_.run_retry.max_attempts) {
            break;
          }
          const int delay = options_.run_retry.backoff_ms(attempt + 1);
          t.line("retry: RUN instruction " + idx_str + " exited " +
                 std::to_string(status) + "; attempt " +
                 std::to_string(attempt + 1) + "/" +
                 std::to_string(options_.run_retry.max_attempts) + " in " +
                 std::to_string(delay) + " ms");
          // Back off without holding the machine: other stages keep going.
          lock.unlock();
          std::this_thread::sleep_for(std::chrono::milliseconds(delay));
          lock.lock();
        }
        if (status != 0) {
          if (!options_.force && o.force_cfg != nullptr && keyword_hit) {
            t.line("hint: build failed; --force might fix it (config " +
                   o.force_cfg->name + ": " + o.force_cfg->description + ")");
          }
          if (stats_ != nullptr) {
            t.line("error: RUN instruction " + idx_str +
                   " failed with exit status " + std::to_string(status) +
                   (errno_sum.empty()
                        ? ""
                        : " (syscall errors: " + errno_sum + ")"));
          }
          t.line("error: build failed: RUN command exited with " +
                 std::to_string(status));
          return status;
        }
        if (cache_ != nullptr) {
          if (auto snap = tree_snapshot(o.dir, ins_span.id()); snap.ok()) {
            // Chunking new subtrees happens outside the machine lock; this
            // is the work independent stages genuinely overlap.
            lock.unlock();
            cache_->store(o.key, *snap, o.cfg, ins_span.id());
            lock.lock();
          }
        }
        break;
      }
      case build::InstrKind::kEnv: {
        t.line(idx_str + " ENV " + ins.text);
        for (const auto& [k, v] : build::parse_kv(ins.text)) o.cfg.env[k] = v;
        o.key = buildgraph::BuildCache::chain(o.key, "ENV|" + ins.text);
        break;
      }
      case build::InstrKind::kArg: {
        t.line(idx_str + " ARG " + ins.text);
        const auto eq = ins.text.find('=');
        if (eq != std::string::npos) {
          build_args[ins.text.substr(0, eq)] = ins.text.substr(eq + 1);
        } else {
          build_args[ins.text];  // declared, empty default
        }
        o.key = buildgraph::BuildCache::chain(o.key, "ARG|" + ins.text);
        break;
      }
      case build::InstrKind::kLabel: {
        t.line(idx_str + " LABEL " + ins.text);
        for (const auto& [k, v] : build::parse_kv(ins.text)) {
          o.cfg.labels[k] = v;
        }
        break;
      }
      case build::InstrKind::kWorkdir: {
        t.line(idx_str + " WORKDIR " + ins.text);
        o.cfg.workdir = ins.text;
        auto container = enter(o.dir, o.cfg);
        if (container.ok()) {
          std::string out, err;
          (void)m_.shell().run(*container, "mkdir -p " + ins.text, out, err);
        }
        o.key = buildgraph::BuildCache::chain(o.key, "WORKDIR|" + ins.text);
        break;
      }
      case build::InstrKind::kCopy:
      case build::InstrKind::kAdd: {
        t.line(idx_str + " COPY " + ins.text);
        const auto fields = split_ws(si.copy_args);
        if (fields.size() < 2) {
          t.line("error: COPY requires source and destination");
          return 1;
        }
        const std::string& src = fields[0];
        std::string dst = fields.back();
        std::string src_path = src;
        if (si.copy_from >= 0) {
          // Source is an earlier stage's tree (already built: the graph
          // recorded the dependency and the scheduler ordered it).
          const StageBuild& from = sb[static_cast<std::size_t>(si.copy_from)];
          src_path = from.dir + path_normalize("/" + src);
        }
        Result<std::string> data = invoker_.sys->read_file(invoker_, src_path);
        if (!data.ok()) {
          t.line("error: COPY: cannot read " + src + ": " +
                 std::string(err_message(data.error())));
          return 1;
        }
        if (dst.ends_with("/")) dst += path_basename(src);
        const std::string target = o.dir + path_normalize("/" + dst);
        (void)ensure_dir(path_dirname(target));
        if (auto rc =
                invoker_.sys->write_file(invoker_, target, *data, false, 0644);
            !rc.ok()) {
          t.line("error: COPY: cannot write " + dst);
          return 1;
        }
        // The context digest is the source's cached Merkle digest when its
        // filesystem maintains one (O(1) for an unchanged file), falling
        // back to hashing the bytes just read.
        o.key = buildgraph::BuildCache::chain(
            o.key, "COPY|" + ins.text, {context_digest(src_path, *data)});
        break;
      }
      case build::InstrKind::kCmd: {
        t.line(idx_str + " CMD " + ins.text);
        o.cfg.cmd = ins.is_exec_form()
                        ? ins.exec_form
                        : std::vector<std::string>{"/bin/sh", "-c", ins.text};
        break;
      }
      case build::InstrKind::kEntrypoint: {
        t.line(idx_str + " ENTRYPOINT " + ins.text);
        o.cfg.entrypoint =
            ins.is_exec_form()
                ? ins.exec_form
                : std::vector<std::string>{"/bin/sh", "-c", ins.text};
        break;
      }
      case build::InstrKind::kUser: {
        t.line(idx_str + " USER " + ins.text);
        // A Type III image has exactly one user; like real ch-image, warn
        // and continue (§2.1.1: multiple users are rarely needed for HPC).
        t.line("warning: USER instruction ignored (Type III images are "
               "single-user)");
        break;
      }
      case build::InstrKind::kShell: {
        t.line(idx_str + " SHELL " + ins.text);
        break;
      }
    }
  }
  return 0;
}

int ChImage::push(const std::string& tag, const std::string& dest_ref,
                  Transcript& t, bool preserve_ownership) {
  auto loc = invoker_.sys->resolve(invoker_, storage_path(tag), true);
  if (!loc.ok()) {
    t.line("error: no such image: " + tag);
    return 1;
  }
  auto cfg_it = configs_.find(tag);
  const image::ImageConfig push_cfg =
      cfg_it != configs_.end() ? cfg_it->second : image::ImageConfig{};
  // §6.2.5: an image marked "disallow" must not be ownership-flattened; the
  // ownership-preserving path (fakeroot DB) is the only legal push.
  if (!preserve_ownership && push_cfg.flatten_policy() == "disallow") {
    t.line("error: image is marked " +
           std::string(image::ImageConfig::kFlattenLabel) +
           "=disallow; use an ownership-preserving push");
    return 1;
  }
  std::string layer_digest;
  std::uint64_t layer_bytes = 0;
  std::uint64_t transferred = 0;
  std::string transfer_note = "chunk-deduplicated";
  if (preserve_ownership) {
    // §6.2.2-2: consult the fakeroot database instead of the filesystem so
    // the pushed archive reflects the *intended* (container) ownership.
    auto entries = image::tree_to_entries(*loc->mnt->fs, loc->ino);
    if (!entries.ok()) {
      t.line("error: cannot archive image " + tag);
      return 1;
    }
    std::vector<image::TarEntry> out_entries = *entries;
    // Re-walk the tree to map names to inodes for DB lookups.
    std::map<std::string, std::pair<const vfs::Filesystem*, vfs::InodeNum>>
        inodes;
    (void)vfs::walk_tree(*loc->mnt->fs, loc->ino,
                         [&](const std::string& rel, const vfs::Stat& st) {
                           inodes[rel] = {loc->mnt->fs.get(), st.ino};
                           return true;
                         });
    for (auto& e : out_entries) {
      e.uid = 0;
      e.gid = 0;
      auto it = inodes.find(e.name);
      if (it == inodes.end()) continue;
      const auto* lie =
          embedded_db_->find(it->second.first, it->second.second);
      if (lie != nullptr) {
        if (lie->uid) e.uid = *lie->uid;
        if (lie->gid) e.gid = *lie->gid;
        if (lie->mode) e.mode = *lie->mode;
        if (lie->type) {
          e.type = *lie->type;
          e.dev_major = lie->dev_major;
          e.dev_minor = lie->dev_minor;
        }
      }
    }
    // Pipelined push: stream the tar serialization into a chunked blob
    // writer — chunks digest and upload on the pool while later entries are
    // still serializing; a re-push of unchanged content transfers nothing.
    support::ThreadPool* pool = options_.digest_pool != nullptr
                                    ? options_.digest_pool.get()
                                    : &support::shared_pool();
    auto writer = registry_->blob_writer(pool);
    image::tar_stream(out_entries, [&writer](std::string_view piece) {
      writer.append(piece);
    });
    layer_digest = writer.finish();
    layer_bytes = writer.size();
    transferred = writer.new_bytes();
  } else {
    // Standard Charliecloud push, Merkle-tree form: flatten ownership to
    // root:root with setuid/setgid cleared (§6.1) as a structural rewrite of
    // the snapshot (unchanged subtrees share nodes via the digest memo),
    // then push the tree — the registry skips whole subtrees it already
    // holds, so a re-push of a mostly-unchanged image is O(changed).
    auto snap = tree_snapshot(storage_path(tag));
    if (!snap.ok()) {
      t.line("error: cannot archive image " + tag);
      return 1;
    }
    support::ThreadPool* pool = options_.digest_pool != nullptr
                                    ? options_.digest_pool.get()
                                    : &support::shared_pool();
    auto flat = vfs::flatten_snapshot(*snap, &flatten_memo_);
    auto res = registry_->put_tree(flat, pool);
    layer_digest = res.digest;
    layer_bytes = res.total_bytes;
    transferred = res.new_bytes;
    transfer_note = std::to_string(res.nodes_skipped) + " of " +
                    std::to_string(res.nodes) + " tree nodes deduplicated";
  }
  image::Manifest manifest;
  manifest.reference = dest_ref;
  manifest.config = push_cfg;
  manifest.config.arch = m_.arch();
  if (!preserve_ownership) {
    // Mark what we produced, per the §6.2.5 proposal.
    manifest.config.labels[image::ImageConfig::kFlattenLabel] = "flattened";
  }
  manifest.layers = {layer_digest};  // single flattened layer
  registry_->put_manifest(manifest);
  t.line("pushing image: " + tag);
  t.line("destination: " + registry_->name() + "/" + dest_ref);
  t.line("layers: 1 (" + std::to_string(layer_bytes) + " bytes, " +
         layer_digest + ")");
  t.line("transferred: " + std::to_string(transferred) + " bytes (" +
         transfer_note + ")");
  t.line("done");
  return 0;
}

int ChImage::run_in_image(const std::string& tag,
                          const std::vector<std::string>& argv,
                          Transcript& t) {
  auto it = configs_.find(tag);
  const image::ImageConfig cfg =
      it != configs_.end() ? it->second : image::ImageConfig{};
  std::string out, err;
  const int status = run_in_container(storage_path(tag), cfg, argv, out, err);
  t.block(out);
  t.block(err);
  return status;
}

Result<RootFs> ChImage::image_rootfs(const std::string& tag) {
  MINICON_TRY_ASSIGN(loc,
                     invoker_.sys->resolve(invoker_, storage_path(tag), true));
  RootFs rootfs;
  rootfs.fs = loc.mnt->fs;
  rootfs.root = loc.ino;
  rootfs.owner_ns = loc.mnt->owner_ns;
  return rootfs;
}

const image::ImageConfig* ChImage::config(const std::string& tag) const {
  auto it = configs_.find(tag);
  return it == configs_.end() ? nullptr : &it->second;
}

}  // namespace minicon::core
