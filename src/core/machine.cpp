#include "core/machine.hpp"

#include "distro/distro.hpp"
#include "support/strings.hpp"
#include "distro/treebuilder.hpp"
#include "kernel/syscalls.hpp"
#include "kernel/userdb.hpp"
#include "support/path.hpp"

namespace minicon::core {

Machine::Machine(MachineOptions options) : options_(std::move(options)) {
  // Hosts run a RHEL7-like tree (most HPC centers, §3.1).
  host_fs_ = distro::make_centos7_tree(options_.arch);

  // Host /proc: files owned by real (initial-namespace) root. /proc/1/environ
  // is 0400 root:root like on a real system — the Fig 5 "owned by nobody"
  // problem comes from bind-mounting this into a user namespace.
  distro::TreeBuilder proc_builder;
  proc_builder.file("/1/environ", std::string("HOME=/\0TERM=linux\0", 18),
                    0400);
  proc_builder.file("/1/status", "Name:\tinit\nPid:\t1\n", 0444);
  proc_builder.file("/sys/crypto/fips_enabled", "0\n", 0444);
  proc_builder.file("/sys/kernel/overflowuid", "65534\n", 0444);
  proc_fs_ = proc_builder.fs();

  kernel::Mount root_mount;
  root_mount.mountpoint = "/";
  root_mount.fs = host_fs_;
  root_mount.root = host_fs_->root();
  root_mount.owner_ns = kernel_.init_userns();
  root_mount.source = "/dev/sda1";
  host_mountns_ = kernel::MountNamespace::make(std::move(root_mount));

  kernel::Mount proc_mount;
  proc_mount.mountpoint = "/proc";
  proc_mount.fs = proc_fs_;
  proc_mount.root = proc_fs_->root();
  proc_mount.owner_ns = kernel_.init_userns();
  proc_mount.source = "proc";
  host_mountns_->add(std::move(proc_mount));

  if (options_.shared_fs != nullptr) {
    // Create the mountpoint directory in the host tree.
    kernel::Mount shared;
    shared.mountpoint = options_.shared_mountpoint;
    shared.fs = options_.shared_fs;
    shared.root = options_.shared_fs->root();
    shared.owner_ns = kernel_.init_userns();
    shared.source = options_.shared_fs->fs_type() + "-server:/export";
    // Ensure the mountpoint exists.
    vfs::OpCtx ctx;
    ctx.now = kernel_.tick();
    vfs::InodeNum cur = host_fs_->root();
    for (const auto& comp : path_components(options_.shared_mountpoint)) {
      auto child = host_fs_->lookup(cur, comp);
      if (child.ok()) {
        cur = *child;
        continue;
      }
      vfs::CreateArgs args;
      args.type = vfs::FileType::Directory;
      args.mode = 0755;
      auto created = host_fs_->create(ctx, cur, comp, args);
      if (!created.ok()) break;
      cur = *created;
    }
    host_mountns_->add(std::move(shared));
  }

  shell_ = std::make_shared<shell::Shell>(options_.registry);
}

kernel::Process Machine::root_process() {
  kernel::Process p;
  p.cred = kernel::Credentials::root();
  p.userns = kernel_.init_userns();
  p.mountns = host_mountns_;
  p.cwd = "/root";
  p.env["PATH"] = distro::kDefaultPath;
  p.env["HOME"] = "/root";
  p.env["USER"] = "root";
  p.env["HOSTNAME"] = options_.hostname;
  p.env["MINICON_ARCH"] = options_.arch;
  p.env["MINICON_NETWORKS"] = join(options_.networks, ",");
  p.sys = kernel_.syscalls();
  return p;
}

Result<kernel::Process> Machine::add_user(const std::string& name,
                                          vfs::Uid uid) {
  kernel::Process root = root_process();
  std::string out, err;
  const int status = run(
      root, "useradd -u " + std::to_string(uid) + " " + name + " && mkdir -p "
            "/home/" + name + " && chown " + name + ":" + name + " /home/" +
            name, out, err);
  if (status != 0) return Err::einval;
  return login(name);
}

Result<kernel::Process> Machine::login(const std::string& name) {
  kernel::Process root = root_process();
  MINICON_TRY_ASSIGN(passwd_text, root.sys->read_file(root, "/etc/passwd"));
  auto entry = kernel::PasswdDb::parse(passwd_text).by_name(name);
  if (!entry) return Err::enoent;

  // Supplementary groups from /etc/group membership.
  std::vector<vfs::Gid> groups;
  if (auto group_text = root.sys->read_file(root, "/etc/group");
      group_text.ok()) {
    // Materialize the database: entries() of a temporary would dangle.
    const kernel::GroupDb group_db = kernel::GroupDb::parse(*group_text);
    for (const auto& g : group_db.entries()) {
      for (const auto& member : g.members) {
        if (member == name) groups.push_back(g.gid);
      }
    }
  }

  kernel::Process p;
  p.cred = kernel::Credentials::user(entry->uid, entry->gid, groups);
  p.userns = kernel_.init_userns();
  p.mountns = host_mountns_;
  p.cwd = entry->home.empty() ? "/" : entry->home;
  p.env["PATH"] = distro::kDefaultPath;
  p.env["HOME"] = p.cwd;
  p.env["USER"] = name;
  p.env["HOSTNAME"] = options_.hostname;
  p.env["MINICON_ARCH"] = options_.arch;
  p.env["MINICON_NETWORKS"] = join(options_.networks, ",");
  p.sys = kernel_.syscalls();
  if (!root.sys->stat(root, p.cwd).ok()) p.cwd = "/";
  return p;
}

int Machine::run(kernel::Process& p, const std::string& script,
                 std::string& out, std::string& err) {
  return shell_->run(p, script, out, err);
}

}  // namespace minicon::core
