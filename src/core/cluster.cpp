#include "core/cluster.hpp"

#include <atomic>
#include <chrono>
#include <future>
#include <optional>
#include <thread>

#include "core/chimage.hpp"
#include "core/runtime.hpp"
#include "distro/distro.hpp"
#include "fakeroot/fakeroot.hpp"
#include "image/tar.hpp"
#include "kernel/syscalls.hpp"
#include "obs/flightrec.hpp"
#include "pkg/managers.hpp"
#include "support/path.hpp"
#include "vfs/snapshot.hpp"

namespace minicon::core {

std::shared_ptr<shell::CommandRegistry> make_full_registry(
    const pkg::RepoUniversePtr& universe) {
  auto reg = std::make_shared<shell::CommandRegistry>();
  shell::register_standard_commands(*reg);
  fakeroot::register_fakeroot_commands(*reg);
  pkg::register_pkg_commands(*reg, universe);
  image::register_tar_command(*reg);
  distro::register_toolchain_commands(*reg);
  return reg;
}

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)),
      universe_(std::make_shared<pkg::RepoUniverse>()),
      registry_("registry." + options_.name + ".example.com") {
  distro::populate_repos(*universe_);
  distro::publish_base_images(registry_, {"x86_64", "aarch64"});
  command_registry_ = make_full_registry(universe_);
  shared_fs_ = std::make_shared<vfs::SharedFs>(options_.shared_fs);

  auto make_node = [&](const std::string& hostname) {
    MachineOptions mo;
    mo.hostname = hostname;
    mo.arch = options_.arch;
    mo.registry = command_registry_;
    mo.shared_fs = shared_fs_;
    mo.shared_mountpoint = "/lustre";
    auto node = std::make_unique<Machine>(mo);
    (void)node->add_user(options_.user, options_.user_uid);
    return node;
  };
  login_ = make_node(options_.name + "-login1");
  for (int i = 0; i < options_.compute_nodes; ++i) {
    compute_.push_back(make_node(options_.name + "-cn" + std::to_string(i)));
    node_caches_.push_back(std::make_unique<image::ChunkCache>());
  }

  // Shared home on the parallel filesystem.
  vfs::OpCtx ctx;
  ctx.host_privileged = true;
  vfs::CreateArgs args;
  args.type = vfs::FileType::Directory;
  args.mode = 0755;
  if (auto home = shared_fs_->create(ctx, shared_fs_->root(), "home", args);
      home.ok()) {
    // The server provisions the user's directory under the user's own
    // authenticated identity (root squash would refuse anything else).
    vfs::OpCtx user_ctx;
    user_ctx.host_uid = options_.user_uid;
    user_ctx.host_gid = options_.user_uid;
    user_ctx.host_privileged = false;
    vfs::CreateArgs user_args = args;
    user_args.uid = options_.user_uid;
    user_args.gid = options_.user_uid;
    user_args.mode = 0700;
    (void)shared_fs_->create(user_ctx, *home, options_.user, user_args);
  }
}

Result<kernel::Process> Cluster::user_on(Machine& node) {
  return node.login(options_.user);
}

image::ChunkCache& Cluster::node_cache(int i) {
  if (i < 0 || static_cast<std::size_t>(i) >= node_caches_.size()) {
    throw std::out_of_range(
        "Cluster::node_cache: node index " + std::to_string(i) +
        " out of range [0, " + std::to_string(node_caches_.size()) + ")");
  }
  return *node_caches_[static_cast<std::size_t>(i)];
}

support::ThreadPool& Cluster::launch_pool(std::size_t width) {
  auto& slot = launch_pools_[width];
  if (slot == nullptr) {
    slot = std::make_unique<support::ThreadPool>(width);
  }
  return *slot;
}

namespace {

// Stacks a node's extra syscall layers (fault injection in tests) onto a
// launch process, innermost first.
void stack_node_layers(kernel::Process& p, int node,
                       const Cluster::LaunchOptions& options) {
  auto it = options.node_syscall_layers.find(node);
  if (it == options.node_syscall_layers.end()) return;
  for (const auto& layer : it->second) p.sys = layer(p.sys);
}

// mkdir -p through the process's syscall stack (so injected faults bite).
bool make_dirs(kernel::Process& p, const std::string& path) {
  std::string cur = "/";
  for (const auto& comp : path_components(path)) {
    cur = cur == "/" ? "/" + comp : cur + "/" + comp;
    if (!p.sys->stat(p, cur).ok() && !p.sys->mkdir(p, cur, 0755).ok()) {
      return false;
    }
  }
  return true;
}

// Resolves every layer of `m` into one merged snapshot owned by the launch
// user — the tree a Type III extraction on the node would produce. Metadata
// access only: content bytes are accounted at chunk granularity by the
// swarm, so this uses the registry's peek/meta accessors.
vfs::SnapNodePtr resolve_launch_tree(image::Registry& registry,
                                     const image::Manifest& m, vfs::Uid uid,
                                     vfs::Gid gid) {
  std::vector<image::TarEntry> all;
  for (const auto& digest : m.layers) {
    std::vector<image::TarEntry> entries;
    if (image::Registry::is_tree_digest(digest)) {
      auto tree = registry.get_tree_meta(digest);
      if (tree == nullptr) return nullptr;
      entries = image::snapshot_to_entries(tree);
    } else {
      auto blob = registry.peek_blob_ref(digest);
      if (blob == nullptr) return nullptr;
      auto parsed = image::tar_parse(*blob);
      if (!parsed.ok()) return nullptr;
      entries = std::move(*parsed);
    }
    all.insert(all.end(), std::make_move_iterator(entries.begin()),
               std::make_move_iterator(entries.end()));
  }
  // Extract-as-user semantics (§5.2): ownership squashes to the single
  // available ID, setuid/setgid bits clear, device nodes drop.
  all = image::flatten_ownership(std::move(all));
  for (auto& e : all) {
    e.uid = uid;
    e.gid = gid;
  }
  auto tree = image::entries_to_snapshot(all);
  if (tree == nullptr) return nullptr;
  // entries_to_snapshot's root defaults to root:root; re-own it too so an
  // unprivileged sync never has to chown toward root.
  vfs::SnapNode root = *tree;
  root.uid = uid;
  root.gid = gid;
  return vfs::freeze_snap_node(std::move(root));
}

}  // namespace

struct Cluster::NodeLaunch {
  std::optional<kernel::Process> user;
  bool dead = false;
};

Cluster::LaunchResult Cluster::parallel_launch(
    const std::string& image_ref, const std::vector<std::string>& argv,
    bool via_shared_fs, int width) {
  LaunchOptions options;
  options.mode = via_shared_fs ? LaunchMode::kSharedFs : LaunchMode::kPullPerNode;
  options.width = width;
  return parallel_launch(image_ref, argv, options);
}

Cluster::LaunchResult Cluster::parallel_launch(
    const std::string& image_ref, const std::vector<std::string>& argv,
    const LaunchOptions& options) {
  // One trace id for the whole launch: explicit > inherited > fresh. The
  // scope installs it on this thread; fan-out bodies re-install a per-node
  // copy on whichever pool worker runs them.
  obs::TraceContext ctx =
      options.trace.active() ? options.trace : obs::current_trace();
  if (!ctx.active()) ctx = obs::TraceContext::fresh();
  obs::TraceScope trace_scope(ctx);
  obs::Span launch_span(options.tracer.get(), "cluster.launch");
  launch_span.annotate("trace_id", ctx.hex());
  launch_span.annotate("nodes", std::to_string(compute_.size()));
  // Every exit path stamps the trace id and, on any node failure, snapshots
  // the launch's flight-recorder post-mortem while the evidence is fresh.
  auto finish = [&](LaunchResult& r) -> LaunchResult {
    r.trace_id = ctx.trace_id;
    if (r.nodes_failed > 0) {
      r.post_mortem = obs::global_flight_recorder().dump_text(r.trace_id);
    }
    return std::move(r);
  };
  const std::uint64_t served_before = registry_.bytes_served();
  LaunchResult result;
  if (options.mode == LaunchMode::kP2P) {
    launch_span.annotate("mode", "p2p");
    result = launch_p2p(image_ref, argv, options);
    result.registry_bytes = registry_.bytes_served() - served_before;
    return finish(result);
  }
  launch_span.annotate(
      "mode", options.mode == LaunchMode::kSharedFs ? "sharedfs" : "pull");
  result.outputs.resize(compute_.size());

  // Shared-filesystem mode: extract the flat image once, every node enters
  // the same tree (the ch-run model the paper recommends for launch).
  std::string shared_image_dir;
  if (options.mode == LaunchMode::kSharedFs) {
    auto manifest = registry_.get_manifest(image_ref, options_.arch);
    if (!manifest) manifest = registry_.get_manifest(image_ref);
    if (!manifest) {
      result.nodes_failed = compute_count();
      return finish(result);
    }
    auto user = user_on(login());
    if (!user.ok()) {
      result.nodes_failed = compute_count();
      return finish(result);
    }
    shared_image_dir = "/lustre/home/" + options_.user + "/images/" +
                       std::to_string(manifest->layers.size());
    std::string cur = "/";
    for (const auto& comp : path_components(shared_image_dir)) {
      cur = cur == "/" ? "/" + comp : cur + "/" + comp;
      if (!user->sys->stat(*user, cur).ok()) {
        (void)user->sys->mkdir(*user, cur, 0755);
      }
    }
    ChImageOptions ch_opts;
    ch_opts.storage_dir = "/lustre/home/" + options_.user + "/.chimage";
    ChImage ch(login(), *user, &registry_, ch_opts);
    Transcript t;
    if (ch.pull(image_ref, "launch", t) != 0) {
      result.nodes_failed = compute_count();
      return finish(result);
    }
    shared_image_dir =
        "/lustre/home/" + options_.user + "/.chimage/img/launch";
  }

  // Pooled fan-out: node jobs share a fixed-width worker pool instead of a
  // std::thread each, so a 64-node launch does not spawn 64 OS threads.
  const std::size_t pool_width =
      options.width > 0 ? static_cast<std::size_t>(options.width)
                        : static_cast<std::size_t>(options_.launch_width);
  support::ThreadPool& pool = launch_pool(pool_width);
  std::atomic<int> nodes_ok{0};
  std::atomic<int> nodes_failed{0};
  if (obs::FlightRecorder& rec = obs::global_flight_recorder();
      rec.enabled()) {
    rec.record(obs::FlightKind::kLaunchPhase,
               options.mode == LaunchMode::kSharedFs ? "launch sharedfs"
                                                     : "launch pull-per-node",
               0, compute_.size());
  }
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<void>> jobs;
  jobs.reserve(compute_.size());
  for (std::size_t i = 0; i < compute_.size(); ++i) {
    jobs.push_back(pool.submit([&, i] {
      obs::TraceContext node_ctx = ctx;
      node_ctx.node = static_cast<int>(i);
      obs::TraceScope node_scope(node_ctx);
      Machine& node = *compute_[i];
      auto user = node.login(options_.user);
      if (!user.ok()) {
        ++nodes_failed;
        return;
      }
      stack_node_layers(*user, static_cast<int>(i), options);
      int status = 1;
      std::string output;
      if (options.mode == LaunchMode::kSharedFs) {
        // Every node sees the same image directory through /lustre.
        auto loc = user->sys->resolve(*user, shared_image_dir, true);
        if (loc.ok()) {
          RootFs rootfs{loc->mnt->fs, loc->ino, loc->mnt->owner_ns};
          auto container = enter_type3(node, *user, rootfs, {});
          if (container.ok()) {
            std::string err;
            status = node.shell().run_argv(*container, argv, output, err);
            output += err;
          }
        }
      } else {
        // Pull to node-local storage, then run (the registry round-trip).
        ChImage ch(node, *user, &registry_, {});
        Transcript t;
        if (ch.pull(image_ref, "job", t) == 0) {
          Transcript rt;
          status = ch.run_in_image("job", argv, rt);
          output = rt.text();
        }
      }
      if (status == 0) {
        ++nodes_ok;
      } else {
        ++nodes_failed;
      }
      // Each job owns its slot; no lock needed.
      result.outputs[i] = std::move(output);
    }));
  }
  for (auto& j : jobs) j.get();
  result.nodes_ok = nodes_ok.load();
  result.nodes_failed = nodes_failed.load();
  const auto end = std::chrono::steady_clock::now();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  result.registry_bytes = registry_.bytes_served() - served_before;
  return finish(result);
}

Cluster::LaunchResult Cluster::launch_p2p(
    const std::string& image_ref, const std::vector<std::string>& argv,
    const LaunchOptions& options) {
  // parallel_launch installed the launch's context on this thread; phases
  // below re-install a node-stamped copy on every pool worker.
  const obs::TraceContext ctx = obs::current_trace();
  auto phase_mark = [&](const char* name) {
    obs::FlightRecorder& rec = obs::global_flight_recorder();
    if (rec.enabled()) {
      rec.record(obs::FlightKind::kLaunchPhase, name, 0, compute_.size());
    }
  };
  LaunchResult result;
  result.outputs.resize(compute_.size());

  auto manifest = registry_.get_manifest(image_ref, options_.arch);
  if (!manifest) manifest = registry_.get_manifest(image_ref);
  if (!manifest) {
    result.nodes_failed = compute_count();
    return result;
  }
  if (compute_.empty()) return result;

  const auto start = std::chrono::steady_clock::now();

  // The swarm borrows the cluster's persistent node caches: a warm
  // relaunch of the same image transfers only what is missing.
  std::vector<image::ChunkCache*> caches;
  caches.reserve(node_caches_.size());
  for (const auto& c : node_caches_) caches.push_back(c.get());
  image::Swarm swarm(&registry_, std::move(caches),
                     image::SwarmOptions{nullptr, options.tracer});
  if (auto rc = swarm.prepare(*manifest); !rc.ok()) {
    result.nodes_failed = compute_count();
    return result;
  }
  result.image_bytes = swarm.plan().manifest.total_bytes;

  auto target = resolve_launch_tree(registry_, *manifest, options_.user_uid,
                                    options_.user_uid);
  if (target == nullptr) {
    result.nodes_failed = compute_count();
    return result;
  }

  const std::size_t pool_width =
      options.width > 0 ? static_cast<std::size_t>(options.width)
                        : static_cast<std::size_t>(options_.launch_width);
  support::ThreadPool& pool = launch_pool(pool_width);
  std::vector<NodeLaunch> nodes(compute_.size());
  const std::string spool_dir = "/home/" + options_.user + "/.swarm";

  // A staging receipt committed through the node's (possibly faulted)
  // syscall stack: a node that cannot write node-local storage is dead —
  // it seeds nobody, and peers re-route its shard to the registry.
  auto write_receipt = [&](kernel::Process& user, const std::string& name,
                           const std::string& body) {
    return user.sys
        ->write_file(user, spool_dir + "/" + name, body, /*append=*/false,
                     0644)
        .ok();
  };

  auto fan_out = [&](auto&& body) {
    std::vector<std::future<void>> jobs;
    jobs.reserve(compute_.size());
    for (std::size_t i = 0; i < compute_.size(); ++i) {
      jobs.push_back(pool.submit([&body, &ctx, i] {
        obs::TraceContext node_ctx = ctx;
        node_ctx.node = static_cast<int>(i);
        obs::TraceScope node_scope(node_ctx);
        body(i);
      }));
    }
    for (auto& j : jobs) j.get();
  };

  // Phase 1 — seed: every node logs in, stages its rendezvous-assigned
  // shard from the registry, and commits a receipt to node-local storage.
  phase_mark("p2p seed");
  fan_out([&](std::size_t i) {
    const int node = static_cast<int>(i);
    auto user = compute_[i]->login(options_.user);
    if (!user.ok()) {
      nodes[i].dead = true;
      swarm.mark_failed(node);
      return;
    }
    stack_node_layers(*user, node, options);
    nodes[i].user = std::move(*user);
    if (!make_dirs(*nodes[i].user, spool_dir)) {
      nodes[i].dead = true;
      swarm.mark_failed(node);
      return;
    }
    auto stats = swarm.seed(node);
    if (stats.chunks_missing > 0 ||
        !write_receipt(*nodes[i].user, "seed",
                       std::to_string(stats.chunks_from_registry))) {
      nodes[i].dead = true;
      swarm.mark_failed(node);
    }
  });

  // Phase 2 — exchange: obtain every remaining chunk from its seeder's
  // cache; seeders that died in phase 1 fall back to the registry.
  phase_mark("p2p exchange");
  fan_out([&](std::size_t i) {
    const int node = static_cast<int>(i);
    if (nodes[i].dead) return;
    auto stats = swarm.exchange(node);
    if (stats.chunks_missing > 0 || !swarm.complete(node) ||
        !write_receipt(*nodes[i].user, "exchange",
                       std::to_string(stats.chunks_from_peers))) {
      nodes[i].dead = true;
      swarm.mark_failed(node);
    }
  });

  // Phase 3 — materialize the staged image into node-local storage and run.
  phase_mark("p2p materialize");
  std::atomic<int> nodes_ok{0};
  std::atomic<int> nodes_failed{0};
  fan_out([&](std::size_t i) {
    if (nodes[i].dead) {
      ++nodes_failed;
      return;
    }
    Machine& node = *compute_[i];
    kernel::Process& user = *nodes[i].user;
    const std::string img_dir = spool_dir + "/img";
    int status = 1;
    std::string output;
    if (make_dirs(user, img_dir)) {
      if (auto loc = user.sys->resolve(user, img_dir, true); loc.ok()) {
        vfs::OpCtx ctx;
        ctx.host_uid = user.cred.euid;
        ctx.host_gid = user.cred.egid;
        ctx.host_privileged = user.cred.euid == 0;
        if (vfs::sync_tree(*loc->mnt->fs, loc->ino, target, ctx).ok()) {
          RootFs rootfs{loc->mnt->fs, loc->ino, loc->mnt->owner_ns};
          auto container = enter_type3(node, user, rootfs, {});
          if (container.ok()) {
            std::string err;
            status = node.shell().run_argv(*container, argv, output, err);
            output += err;
          }
        }
      }
    }
    if (status == 0) {
      ++nodes_ok;
    } else {
      ++nodes_failed;
    }
    result.outputs[i] = std::move(output);
  });

  result.nodes_ok = nodes_ok.load();
  result.nodes_failed = nodes_failed.load();
  result.peer_bytes = swarm.peer_bytes();
  const auto end = std::chrono::steady_clock::now();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  return result;
}

}  // namespace minicon::core
