#include "core/cluster.hpp"

#include <atomic>
#include <chrono>
#include <future>
#include <thread>

#include "core/chimage.hpp"
#include "core/runtime.hpp"
#include "distro/distro.hpp"
#include "fakeroot/fakeroot.hpp"
#include "image/tar.hpp"
#include "kernel/syscalls.hpp"
#include "pkg/managers.hpp"
#include "support/path.hpp"

namespace minicon::core {

std::shared_ptr<shell::CommandRegistry> make_full_registry(
    const pkg::RepoUniversePtr& universe) {
  auto reg = std::make_shared<shell::CommandRegistry>();
  shell::register_standard_commands(*reg);
  fakeroot::register_fakeroot_commands(*reg);
  pkg::register_pkg_commands(*reg, universe);
  image::register_tar_command(*reg);
  distro::register_toolchain_commands(*reg);
  return reg;
}

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)),
      universe_(std::make_shared<pkg::RepoUniverse>()),
      registry_("registry." + options_.name + ".example.com") {
  distro::populate_repos(*universe_);
  distro::publish_base_images(registry_, {"x86_64", "aarch64"});
  command_registry_ = make_full_registry(universe_);
  shared_fs_ = std::make_shared<vfs::SharedFs>(options_.shared_fs);

  auto make_node = [&](const std::string& hostname) {
    MachineOptions mo;
    mo.hostname = hostname;
    mo.arch = options_.arch;
    mo.registry = command_registry_;
    mo.shared_fs = shared_fs_;
    mo.shared_mountpoint = "/lustre";
    auto node = std::make_unique<Machine>(mo);
    (void)node->add_user(options_.user, options_.user_uid);
    return node;
  };
  login_ = make_node(options_.name + "-login1");
  for (int i = 0; i < options_.compute_nodes; ++i) {
    compute_.push_back(make_node(options_.name + "-cn" + std::to_string(i)));
  }

  // Shared home on the parallel filesystem.
  vfs::OpCtx ctx;
  ctx.host_privileged = true;
  vfs::CreateArgs args;
  args.type = vfs::FileType::Directory;
  args.mode = 0755;
  if (auto home = shared_fs_->create(ctx, shared_fs_->root(), "home", args);
      home.ok()) {
    // The server provisions the user's directory under the user's own
    // authenticated identity (root squash would refuse anything else).
    vfs::OpCtx user_ctx;
    user_ctx.host_uid = options_.user_uid;
    user_ctx.host_gid = options_.user_uid;
    user_ctx.host_privileged = false;
    vfs::CreateArgs user_args = args;
    user_args.uid = options_.user_uid;
    user_args.gid = options_.user_uid;
    user_args.mode = 0700;
    (void)shared_fs_->create(user_ctx, *home, options_.user, user_args);
  }
}

Result<kernel::Process> Cluster::user_on(Machine& node) {
  return node.login(options_.user);
}

support::ThreadPool& Cluster::launch_pool(std::size_t width) {
  if (launch_pool_ == nullptr || launch_pool_width_ != width) {
    launch_pool_ = std::make_unique<support::ThreadPool>(width);
    launch_pool_width_ = width;
  }
  return *launch_pool_;
}

Cluster::LaunchResult Cluster::parallel_launch(
    const std::string& image_ref, const std::vector<std::string>& argv,
    bool via_shared_fs, int width) {
  LaunchResult result;
  result.outputs.resize(compute_.size());

  // Shared-filesystem mode: extract the flat image once, every node enters
  // the same tree (the ch-run model the paper recommends for launch).
  std::string shared_image_dir;
  if (via_shared_fs) {
    auto manifest = registry_.get_manifest(image_ref, options_.arch);
    if (!manifest) manifest = registry_.get_manifest(image_ref);
    if (!manifest) {
      result.nodes_failed = compute_count();
      return result;
    }
    auto user = user_on(login());
    if (!user.ok()) {
      result.nodes_failed = compute_count();
      return result;
    }
    shared_image_dir = "/lustre/home/" + options_.user + "/images/" +
                       std::to_string(manifest->layers.size());
    std::string cur = "/";
    for (const auto& comp : path_components(shared_image_dir)) {
      cur = cur == "/" ? "/" + comp : cur + "/" + comp;
      if (!user->sys->stat(*user, cur).ok()) {
        (void)user->sys->mkdir(*user, cur, 0755);
      }
    }
    ChImageOptions ch_opts;
    ch_opts.storage_dir = "/lustre/home/" + options_.user + "/.chimage";
    ChImage ch(login(), *user, &registry_, ch_opts);
    Transcript t;
    if (ch.pull(image_ref, "launch", t) != 0) {
      result.nodes_failed = compute_count();
      return result;
    }
    shared_image_dir =
        "/lustre/home/" + options_.user + "/.chimage/img/launch";
  }

  // Pooled fan-out: node jobs share a fixed-width worker pool instead of a
  // std::thread each, so a 64-node launch does not spawn 64 OS threads.
  const std::size_t pool_width =
      width > 0 ? static_cast<std::size_t>(width)
                : static_cast<std::size_t>(options_.launch_width);
  support::ThreadPool& pool = launch_pool(pool_width);
  std::atomic<int> nodes_ok{0};
  std::atomic<int> nodes_failed{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<void>> jobs;
  jobs.reserve(compute_.size());
  for (std::size_t i = 0; i < compute_.size(); ++i) {
    jobs.push_back(pool.submit([&, i] {
      Machine& node = *compute_[i];
      auto user = node.login(options_.user);
      if (!user.ok()) {
        ++nodes_failed;
        return;
      }
      int status = 1;
      std::string output;
      if (via_shared_fs) {
        // Every node sees the same image directory through /lustre.
        auto loc = user->sys->resolve(*user, shared_image_dir, true);
        if (loc.ok()) {
          RootFs rootfs{loc->mnt->fs, loc->ino, loc->mnt->owner_ns};
          auto container = enter_type3(node, *user, rootfs, {});
          if (container.ok()) {
            std::string err;
            status = node.shell().run_argv(*container, argv, output, err);
            output += err;
          }
        }
      } else {
        // Pull to node-local storage, then run (the registry round-trip).
        ChImage ch(node, *user, &registry_, {});
        Transcript t;
        if (ch.pull(image_ref, "job", t) == 0) {
          Transcript rt;
          status = ch.run_in_image("job", argv, rt);
          output = rt.text();
        }
      }
      if (status == 0) {
        ++nodes_ok;
      } else {
        ++nodes_failed;
      }
      // Each job owns its slot; no lock needed.
      result.outputs[i] = std::move(output);
    }));
  }
  for (auto& j : jobs) j.get();
  result.nodes_ok = nodes_ok.load();
  result.nodes_failed = nodes_failed.load();
  const auto end = std::chrono::steady_clock::now();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  return result;
}

}  // namespace minicon::core
