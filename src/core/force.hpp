// The --force privilege-emulation mode shared by both builders.
//
// Historically --force was a boolean meaning "inject fakeroot(1)". The
// zero-consistency work adds a second emulator, so the flag grows a value:
//
//   --force            -> kFakeroot   (compatibility spelling)
//   --force=fakeroot   -> kFakeroot   (consistent lies, FakeDb)
//   --force=seccomp    -> kSeccomp    (stateless fakes, no readback rewrite)
//   --force=none       -> kNone       (explicit off)
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace minicon::core {

enum class ForceMode {
  kNone = 0,   // no root emulation; privileged ops fail organically
  kFakeroot,   // consistent lies via fakeroot(1)/FakeDb (SC'21 §5.3)
  kSeccomp,    // zero-consistency seccomp filter (Priedhorsky et al. 2024)
};

inline std::string_view force_mode_name(ForceMode m) {
  switch (m) {
    case ForceMode::kNone: return "none";
    case ForceMode::kFakeroot: return "fakeroot";
    case ForceMode::kSeccomp: return "seccomp";
  }
  return "none";
}

// Parses the command-line spelling ("--force", "--force=seccomp", ...).
// Returns nullopt for an unrecognized mode so callers can report the
// offending text themselves.
inline std::optional<ForceMode> parse_force_mode(std::string_view arg) {
  if (arg == "--force") return ForceMode::kFakeroot;
  if (arg.starts_with("--force=")) {
    const std::string_view mode = arg.substr(std::string_view("--force=").size());
    if (mode == "fakeroot") return ForceMode::kFakeroot;
    if (mode == "seccomp") return ForceMode::kSeccomp;
    if (mode == "none") return ForceMode::kNone;
  }
  return std::nullopt;
}

}  // namespace minicon::core
