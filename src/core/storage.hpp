// Container storage drivers (§4.1): "overlay" (fuse-overlayfs) vs "vfs".
//
// The two drivers differ exactly as the paper describes:
//   * overlay — each layer is a copy-up union over its parent. Creating a
//     layer is O(1); storage cost is the delta. Requires user xattrs on the
//     backing filesystem (fuse-overlayfs stashes container IDs there), which
//     default-configured NFS/Lustre/GPFS lack (§6.1).
//   * vfs — each layer is a full copy of its parent in a plain directory:
//     "much slower and has significant storage overhead", but no xattrs
//     needed (what RHEL7-era Podman used on Astra, §4.2).
#pragma once

#include <memory>
#include <string>

#include "image/tar.hpp"
#include "vfs/filesystem.hpp"
#include "vfs/memfs.hpp"
#include "vfs/overlayfs.hpp"

namespace minicon::core {

struct Layer {
  vfs::FilesystemPtr fs;
  vfs::InodeNum root = 0;
  // Marginal bytes attributable to this layer (for the storage bench).
  std::uint64_t marginal_bytes = 0;
};

class StorageDriver {
 public:
  virtual ~StorageDriver() = default;
  virtual std::string name() const = 0;

  // Materializes a base image (already-parsed layer tars, base first).
  virtual Result<Layer> base_layer(
      const std::vector<std::vector<image::TarEntry>>& layer_entries) = 0;

  // Creates a new writable layer on top of parent.
  virtual Result<Layer> create_layer(const Layer& parent) = 0;

  // The entries a push must serialize for this layer: the overlay driver
  // exports only the copy-up delta, the vfs driver has no delta tracking
  // and exports the full tree. Drives the pipelined push path.
  virtual Result<std::vector<image::TarEntry>> diff(const Layer& layer) const;

  // Current bytes attributable to a layer.
  virtual std::uint64_t layer_bytes(const Layer& layer) const = 0;

  // Total bytes the driver has materialized (storage overhead metric).
  virtual std::uint64_t total_bytes() const = 0;
};

// Full-copy driver. Layers are directories inside `backing` under
// `graphroot`; the acting identity matters because a shared backing
// filesystem enforces ownership server-side (§4.2).
class VfsDriver : public StorageDriver {
 public:
  VfsDriver(vfs::FilesystemPtr backing, std::string graphroot,
            vfs::Uid acting_uid, vfs::Gid acting_gid);

  std::string name() const override { return "vfs"; }
  Result<Layer> base_layer(
      const std::vector<std::vector<image::TarEntry>>& layer_entries) override;
  Result<Layer> create_layer(const Layer& parent) override;
  std::uint64_t layer_bytes(const Layer& layer) const override;
  std::uint64_t total_bytes() const override { return total_bytes_; }

 private:
  Result<vfs::InodeNum> new_layer_dir();
  vfs::OpCtx ctx() const;

  vfs::FilesystemPtr backing_;
  std::string graphroot_;
  vfs::Uid uid_;
  vfs::Gid gid_;
  int next_layer_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t clock_ = 1;
};

// Copy-up union driver.
class OverlayDriver : public StorageDriver {
 public:
  // `backing` is probed for user-xattr support (the fuse-overlayfs ID stash);
  // pass the filesystem that would hold the graphroot.
  explicit OverlayDriver(vfs::FilesystemPtr backing);

  std::string name() const override { return "overlay"; }
  Result<Layer> base_layer(
      const std::vector<std::vector<image::TarEntry>>& layer_entries) override;
  Result<Layer> create_layer(const Layer& parent) override;
  std::uint64_t layer_bytes(const Layer& layer) const override;
  std::uint64_t total_bytes() const override;

 private:
  vfs::FilesystemPtr backing_;
  std::vector<std::shared_ptr<vfs::OverlayFs>> overlays_;
  std::vector<std::shared_ptr<vfs::MemFs>> bases_;
};

}  // namespace minicon::core
