#include "core/docker.hpp"

#include "buildfile/dockerfile.hpp"
#include "core/chimage.hpp"  // format_argv
#include "core/cluster.hpp"  // make_full_registry
#include "image/tar.hpp"
#include "kernel/syscalls.hpp"
#include "support/strings.hpp"

namespace minicon::core {

Docker::Docker(Machine& m, kernel::Process invoker, image::Registry* registry)
    : m_(m), invoker_(std::move(invoker)), registry_(registry) {}

Result<kernel::Process> Docker::enter(const BuiltImage& img) {
  RootFs rootfs;
  rootfs.fs = img.fs;
  rootfs.root = img.fs->root();
  rootfs.owner_ns = m_.kernel().init_userns();
  return enter_type1(m_, invoker_, rootfs, img.config.env);
}

int Docker::build(const std::string& tag, const std::string& dockerfile_text,
                  Transcript& t) {
  auto parsed = build::parse_dockerfile(dockerfile_text);
  if (const auto* err = std::get_if<build::DockerfileError>(&parsed)) {
    t.line("Error response from daemon: dockerfile parse error line " +
           std::to_string(err->line) + ": " + err->message);
    return 1;
  }
  if (invoker_.cred.euid != 0) {
    // "Access to the docker command is equivalent to root": modeled as a
    // socket only root may use.
    t.line("Got permission denied while trying to connect to the Docker "
           "daemon socket");
    return 1;
  }
  const auto& df = std::get<build::Dockerfile>(parsed);
  BuiltImage img;
  int step = 0;
  const std::size_t total = df.instructions.size();
  for (const auto& ins : df.instructions) {
    ++step;
    const std::string prefix = "Step " + std::to_string(step) + "/" +
                               std::to_string(total) + " : ";
    switch (ins.kind) {
      case build::InstrKind::kFrom: {
        t.line(prefix + "FROM " + ins.text);
        const auto fields = split_ws(ins.text);
        auto manifest = registry_->get_manifest(fields[0], m_.arch());
        if (!manifest) manifest = registry_->get_manifest(fields[0]);
        if (!manifest) {
          t.line("Error: manifest for " + fields[0] + " not found");
          return 1;
        }
        img.fs = std::make_shared<vfs::MemFs>(0755);
        img.config = manifest->config;
        img.config.arch = m_.arch();
        vfs::OpCtx ctx;
        for (const auto& digest : manifest->layers) {
          auto entries = image::registry_layer_entries(*registry_, digest);
          if (!entries.ok()) {
            t.line(entries.error() == Err::enoent
                       ? "Error: missing blob " + digest
                       : "Error: corrupt base layer");
            return 1;
          }
          if (!image::entries_to_tree(*entries, *img.fs, img.fs->root(), ctx)
                   .ok()) {
            t.line("Error: corrupt base layer");
            return 1;
          }
        }
        break;
      }
      case build::InstrKind::kRun: {
        const std::vector<std::string> argv =
            ins.is_exec_form()
                ? ins.exec_form
                : std::vector<std::string>{"/bin/sh", "-c", ins.text};
        t.line(prefix + "RUN " +
               (ins.is_exec_form() ? format_argv(argv) : ins.text));
        auto container = enter(img);
        if (!container.ok()) {
          t.line("Error: cannot start build container");
          return 1;
        }
        std::string out, err;
        const int status = m_.shell().run_argv(*container, argv, out, err);
        t.block(out);
        t.block(err);
        if (status != 0) {
          t.line("The command '" + join(argv, " ") +
                 "' returned a non-zero code: " + std::to_string(status));
          return status;
        }
        break;
      }
      case build::InstrKind::kEnv:
        t.line(prefix + "ENV " + ins.text);
        for (const auto& [k, v] : build::parse_kv(ins.text)) {
          img.config.env[k] = v;
        }
        break;
      case build::InstrKind::kCmd:
        t.line(prefix + "CMD " + ins.text);
        img.config.cmd = ins.is_exec_form()
                             ? ins.exec_form
                             : std::vector<std::string>{"/bin/sh", "-c",
                                                        ins.text};
        break;
      case build::InstrKind::kLabel:
        t.line(prefix + "LABEL " + ins.text);
        for (const auto& [k, v] : build::parse_kv(ins.text)) {
          img.config.labels[k] = v;
        }
        break;
      case build::InstrKind::kWorkdir: {
        t.line(prefix + "WORKDIR " + ins.text);
        img.config.workdir = ins.text;
        auto container = enter(img);
        if (container.ok()) {
          std::string out, err;
          (void)m_.shell().run(*container, "mkdir -p " + ins.text, out, err);
        }
        break;
      }
      default:
        t.line(prefix + build::instr_name(ins.kind) + " " + ins.text);
        break;
    }
  }
  images_[tag] = std::move(img);
  t.line("Successfully tagged " + tag + ":latest");
  return 0;
}

int Docker::push(const std::string& tag, const std::string& dest_ref,
                 Transcript& t) {
  auto it = images_.find(tag);
  if (it == images_.end()) {
    t.line("Error: no such image: " + tag);
    return 1;
  }
  auto entries = image::tree_to_entries(*it->second.fs, it->second.fs->root());
  if (!entries.ok()) {
    t.line("Error: cannot export image");
    return 1;
  }
  image::Manifest manifest;
  manifest.reference = dest_ref;
  manifest.config = it->second.config;
  manifest.layers = {registry_->put_blob(image::tar_create(*entries))};
  registry_->put_manifest(manifest);
  t.line("The push refers to repository [" + registry_->name() + "/" +
         dest_ref + "]");
  t.line("latest: digest: " + manifest.digest());
  return 0;
}

int Docker::run_in_image(const std::string& tag,
                         const std::vector<std::string>& argv, Transcript& t) {
  auto it = images_.find(tag);
  if (it == images_.end()) {
    t.line("Unable to find image '" + tag + "' locally");
    return 125;
  }
  auto container = enter(it->second);
  if (!container.ok()) {
    t.line("docker: permission denied");
    return 126;
  }
  std::string out, err;
  const int status = m_.shell().run_argv(*container, argv, out, err);
  t.block(out);
  t.block(err);
  return status;
}

const image::ImageConfig* Docker::config(const std::string& tag) const {
  auto it = images_.find(tag);
  return it == images_.end() ? nullptr : &it->second.config;
}

// --- SandboxedBuilder ---------------------------------------------------------

SandboxedBuilder::SandboxedBuilder(pkg::RepoUniversePtr universe,
                                   image::Registry* registry,
                                   SandboxOptions options)
    : universe_(std::move(universe)),
      registry_(registry),
      options_(std::move(options)) {}

int SandboxedBuilder::build_and_push(const std::string& dest_ref,
                                     const std::string& dockerfile_text,
                                     Transcript& t) {
  // Boot the ephemeral VM: generic x86-64, WAN only — "standalone and
  // isolated resources (such as ephemeral virtual machines)" (§2). No
  // shared filesystems, no site network, so no license servers.
  MachineOptions mo;
  mo.hostname = options_.hostname;
  mo.arch = options_.arch;
  mo.registry = make_full_registry(universe_);
  mo.networks = {"wan"};
  Machine vm(mo);
  t.line("[sandbox] booted ephemeral VM " + mo.hostname + " (" + mo.arch +
         ", networks: wan)");
  kernel::Process root = vm.root_process();
  Docker docker(vm, root, registry_);
  const int status = docker.build("ci-build", dockerfile_text, t);
  if (status != 0) {
    t.line("[sandbox] build failed; VM destroyed");
    return status;
  }
  const int pushed = docker.push("ci-build", dest_ref, t);
  t.line("[sandbox] VM destroyed");
  return pushed;
}

}  // namespace minicon::core
