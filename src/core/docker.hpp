// Type I builder and the §3.2 Option 1 baseline.
//
// Docker is the reference Type I implementation (§2.2, §3.1): no user
// namespace, fully privileged — "even simply having access to the docker
// command is equivalent to root". Builds trivially succeed because the
// builder really is root; the paper's question is where such privilege is
// acceptable.
//
// SandboxedBuilder is §3.2's Option 1: an ephemeral, isolated VM (its own
// Machine with no shared filesystems and no site network) that runs Docker
// as root and pushes the result to the site registry. It works — and hits
// exactly the limitation the paper gives: "isolated build environments may
// not be able to access needed resources, such as private code or licenses".
#pragma once

#include "core/machine.hpp"
#include "core/runtime.hpp"
#include "image/registry.hpp"
#include "pkg/package.hpp"
#include "support/transcript.hpp"

namespace minicon::core {

class Docker {
 public:
  // The invoker must be root (or "in the docker group", which is the same
  // thing): enter_type1 enforces it.
  Docker(Machine& m, kernel::Process invoker, image::Registry* registry);

  int build(const std::string& tag, const std::string& dockerfile_text,
            Transcript& t);
  int push(const std::string& tag, const std::string& dest_ref, Transcript& t);
  int run_in_image(const std::string& tag,
                   const std::vector<std::string>& argv, Transcript& t);

  const image::ImageConfig* config(const std::string& tag) const;

 private:
  struct BuiltImage {
    vfs::FilesystemPtr fs;
    image::ImageConfig config;
  };

  Result<kernel::Process> enter(const BuiltImage& img);

  Machine& m_;
  kernel::Process invoker_;
  image::Registry* registry_;
  std::map<std::string, BuiltImage> images_;
};

struct SandboxOptions {
  std::string arch = "x86_64";  // CI/CD clouds are generic x86-64 (§2)
  std::string hostname = "ci-vm-1";
};

// §3.2 Option 1: build in a throwaway VM, push to the site registry.
class SandboxedBuilder {
 public:
  SandboxedBuilder(pkg::RepoUniversePtr universe, image::Registry* registry,
                   SandboxOptions options = {});

  // Boots a fresh VM, builds as root, pushes, destroys the VM.
  int build_and_push(const std::string& dest_ref,
                     const std::string& dockerfile_text, Transcript& t);

 private:
  pkg::RepoUniversePtr universe_;
  image::Registry* registry_;
  SandboxOptions options_;
};

}  // namespace minicon::core
