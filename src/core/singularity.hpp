// Singularity and Enroot models (§3.1's survey of HPC implementations).
//
// Singularity: "the most popular HPC container implementation", runs Type I
// or Type II (branded "fakeroot"); as of 3.7 it "can build in Type II mode,
// but only from Singularity definition files. Building from standard
// Dockerfiles requires a separate builder ... which is a limiting factor for
// interoperability." Its SIF format is a single flattened file — the §6.2.5
// argument that a flattened tree "is sufficient and in fact advantageous".
//
// Enroot: advertises itself as fully unprivileged (Type III) but "does not
// have a build capability, relying on conversion of existing images" — so it
// only imports.
#pragma once

#include "core/machine.hpp"
#include "core/runtime.hpp"
#include "image/registry.hpp"
#include "support/transcript.hpp"

namespace minicon::core {

// Parsed Singularity definition file.
struct SingularityDef {
  std::string bootstrap;  // "docker" (registry) — the only supported agent
  std::string from;       // image reference
  std::vector<std::string> post;         // %post commands
  std::map<std::string, std::string> environment;  // %environment K=V
  std::vector<std::string> runscript;    // %runscript lines
};

// Parses a definition file; rejects Dockerfiles (the interoperability
// limitation the paper calls out).
Result<SingularityDef> parse_definition(const std::string& text);

class Singularity {
 public:
  Singularity(Machine& m, kernel::Process invoker, image::Registry* registry);

  // `singularity build --fakeroot app.sif app.def` — Type II build from a
  // definition file, producing a SIF: ONE flattened file on the host
  // filesystem at `sif_path`.
  int build(const std::string& sif_path, const std::string& definition_text,
            Transcript& t);

  // `singularity run app.sif -- argv` — Type III execution (run never needs
  // the privileged helpers).
  int run(const std::string& sif_path, const std::vector<std::string>& argv,
          Transcript& t);

 private:
  Machine& m_;
  kernel::Process invoker_;
  image::Registry* registry_;
};

// Enroot: `enroot import docker://ref` converts a registry image into a
// flattened local squashfs-like file; running is Type III. No build.
class Enroot {
 public:
  Enroot(Machine& m, kernel::Process invoker, image::Registry* registry);

  int import(const std::string& ref, const std::string& local_path,
             Transcript& t);
  int run(const std::string& local_path,
          const std::vector<std::string>& argv, Transcript& t);

 private:
  Machine& m_;
  kernel::Process invoker_;
  image::Registry* registry_;
};

}  // namespace minicon::core
