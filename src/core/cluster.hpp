// A simulated HPC machine: login node + compute nodes + shared parallel
// filesystem + container registry (the Astra deployment, §4.2 / Fig 6).
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "image/registry.hpp"
#include "image/swarm.hpp"
#include "kernel/syscall_filter.hpp"
#include "obs/context.hpp"
#include "obs/trace.hpp"
#include "pkg/package.hpp"
#include "support/threadpool.hpp"
#include "vfs/sharedfs.hpp"

namespace minicon::core {

struct ClusterOptions {
  std::string name = "astra";
  std::string arch = "aarch64";  // Astra: first Arm Top-500 machine
  int compute_nodes = 4;
  // Shared filesystem options; the default (no xattrs, root squash) is the
  // problematic configuration from §4.2/§6.1.
  vfs::SharedFsOptions shared_fs;
  std::string user = "alice";
  vfs::Uid user_uid = 1000;
  // Worker count for parallel_launch's fan-out pool. 0 = one worker per
  // hardware thread. Nodes beyond the width queue instead of each getting
  // a dedicated std::thread.
  int launch_width = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options = {});

  Machine& login() { return *login_; }
  // Checked access: a node index outside [0, compute_count()) throws
  // std::out_of_range instead of indexing off the end of the vector.
  Machine& compute(int i) {
    if (i < 0 || static_cast<std::size_t>(i) >= compute_.size()) {
      throw std::out_of_range(
          "Cluster::compute: node index " + std::to_string(i) +
          " out of range [0, " + std::to_string(compute_.size()) + ")");
    }
    return *compute_[static_cast<std::size_t>(i)];
  }
  int compute_count() const { return static_cast<int>(compute_.size()); }
  image::Registry& registry() { return registry_; }
  const pkg::RepoUniversePtr& universe() const { return universe_; }
  const std::shared_ptr<shell::CommandRegistry>& command_registry() const {
    return command_registry_;
  }
  const vfs::FilesystemPtr& shared_fs() const { return shared_fs_; }
  const ClusterOptions& options() const { return options_; }

  // The cluster user's login process on a node.
  Result<kernel::Process> user_on(Machine& node);

  // How image bytes reach the compute nodes.
  enum class LaunchMode {
    // Every node pulls the full image from the registry (the Fig 6
    // baseline): registry traffic is O(nodes × image size).
    kPullPerNode,
    // The image is extracted once onto the shared parallel filesystem and
    // every node enters the same tree (the flat-directory ch-run model).
    kSharedFs,
    // Peer-to-peer chunk distribution: each node fetches only its
    // rendezvous-assigned shard of the image's chunk set from the registry
    // and obtains the rest from peer caches; registry traffic is
    // O(unique chunks) + a small per-node constant.
    kP2P,
  };

  struct LaunchOptions {
    LaunchMode mode = LaunchMode::kPullPerNode;
    // Fan-out pool width; 0 = the configured launch_width.
    int width = 0;
    // Extra syscall layers stacked (innermost first) onto a node's launch
    // processes, keyed by node index — fault injection for robustness
    // tests: a faulted node's pull or staging fails, the rest proceed.
    std::map<int, std::vector<kernel::SyscallLayerFn>> node_syscall_layers;
    // Trace context for the launch. When inactive, the ambient
    // obs::current_trace() is inherited; when that is inactive too, a fresh
    // id is minted. Every flight-recorder event the launch produces — on
    // every node, on every pool worker — carries this id.
    obs::TraceContext trace;
    // Span tracer for cluster.launch / swarm.* spans (null = no spans).
    std::shared_ptr<obs::Tracer> tracer;
  };

  struct LaunchResult {
    int nodes_ok = 0;
    int nodes_failed = 0;
    double wall_ms = 0;
    std::vector<std::string> outputs;  // one per node, ordered by index
    // Distribution accounting for this launch. registry_bytes is the delta
    // of Registry::bytes_served across the launch (all modes); peer_bytes
    // is what the swarm moved node-to-node (P2P only); image_bytes is the
    // image's unique chunk payload (P2P only).
    std::uint64_t registry_bytes = 0;
    std::uint64_t peer_bytes = 0;
    std::uint64_t image_bytes = 0;
    // The launch's trace id (never 0) — dump the flight recorder filtered
    // by it to see only this launch's events.
    std::uint64_t trace_id = 0;
    // When any node failed: the recorder's causally-ordered post-mortem for
    // this launch (FlightRecorder::dump_text filtered by trace_id).
    std::string post_mortem;
  };

  // Fig 6 final stage: run argv in a Type III container on every compute
  // node concurrently, distributing the image per options.mode. Per-node
  // work runs on a pooled fan-out of `width` workers, not one thread per
  // node.
  LaunchResult parallel_launch(const std::string& image_ref,
                               const std::vector<std::string>& argv,
                               const LaunchOptions& options);
  // Compatibility wrapper: via_shared_fs toggles kSharedFs vs kPullPerNode.
  LaunchResult parallel_launch(const std::string& image_ref,
                               const std::vector<std::string>& argv,
                               bool via_shared_fs, int width = 0);

  // Node-local chunk caches (the per-node NVMe staging model). They persist
  // across launches, so a warm P2P relaunch transfers only missing chunks.
  image::ChunkCache& node_cache(int i);
  // Number of distinct fan-out pools currently cached (one per width).
  std::size_t cached_launch_pools() const { return launch_pools_.size(); }

 private:
  // The fan-out pool for `width`, cached per width: alternating launches
  // with two widths reuse their pools instead of rebuilding every call.
  support::ThreadPool& launch_pool(std::size_t width);

  // Per-node P2P launch state threaded between the phase fan-outs.
  struct NodeLaunch;
  LaunchResult launch_p2p(const std::string& image_ref,
                          const std::vector<std::string>& argv,
                          const LaunchOptions& options);

  ClusterOptions options_;
  std::shared_ptr<shell::CommandRegistry> command_registry_;
  pkg::RepoUniversePtr universe_;
  image::Registry registry_;
  vfs::FilesystemPtr shared_fs_;
  std::unique_ptr<Machine> login_;
  std::vector<std::unique_ptr<Machine>> compute_;
  std::vector<std::unique_ptr<image::ChunkCache>> node_caches_;
  std::map<std::size_t, std::unique_ptr<support::ThreadPool>> launch_pools_;
};

// Builds a command registry with everything installed: shell builtins,
// fakeroot, package managers, tar, and the HPC toolchain.
std::shared_ptr<shell::CommandRegistry> make_full_registry(
    const pkg::RepoUniversePtr& universe);

}  // namespace minicon::core
