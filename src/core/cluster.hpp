// A simulated HPC machine: login node + compute nodes + shared parallel
// filesystem + container registry (the Astra deployment, §4.2 / Fig 6).
#pragma once

#include <memory>
#include <vector>

#include "core/machine.hpp"
#include "image/registry.hpp"
#include "pkg/package.hpp"
#include "support/threadpool.hpp"
#include "vfs/sharedfs.hpp"

namespace minicon::core {

struct ClusterOptions {
  std::string name = "astra";
  std::string arch = "aarch64";  // Astra: first Arm Top-500 machine
  int compute_nodes = 4;
  // Shared filesystem options; the default (no xattrs, root squash) is the
  // problematic configuration from §4.2/§6.1.
  vfs::SharedFsOptions shared_fs;
  std::string user = "alice";
  vfs::Uid user_uid = 1000;
  // Worker count for parallel_launch's fan-out pool. 0 = one worker per
  // hardware thread. Nodes beyond the width queue instead of each getting
  // a dedicated std::thread.
  int launch_width = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options = {});

  Machine& login() { return *login_; }
  Machine& compute(int i) { return *compute_[static_cast<std::size_t>(i)]; }
  int compute_count() const { return static_cast<int>(compute_.size()); }
  image::Registry& registry() { return registry_; }
  const pkg::RepoUniversePtr& universe() const { return universe_; }
  const std::shared_ptr<shell::CommandRegistry>& command_registry() const {
    return command_registry_;
  }
  const vfs::FilesystemPtr& shared_fs() const { return shared_fs_; }
  const ClusterOptions& options() const { return options_; }

  // The cluster user's login process on a node.
  Result<kernel::Process> user_on(Machine& node);

  struct LaunchResult {
    int nodes_ok = 0;
    int nodes_failed = 0;
    double wall_ms = 0;
    std::vector<std::string> outputs;  // one per node
  };

  // Fig 6 final stage: pull `image_ref` from the registry on every compute
  // node concurrently and run argv in a Type III container. With
  // `via_shared_fs`, the image is extracted once to the shared filesystem
  // and nodes enter it directly (the flat-directory ch-run model).
  // Per-node work runs on a pooled fan-out of `width` workers (0 = the
  // configured launch_width), not one thread per node.
  LaunchResult parallel_launch(const std::string& image_ref,
                               const std::vector<std::string>& argv,
                               bool via_shared_fs, int width = 0);

 private:
  // The cached fan-out pool, rebuilt only when the requested width changes.
  support::ThreadPool& launch_pool(std::size_t width);

  ClusterOptions options_;
  std::shared_ptr<shell::CommandRegistry> command_registry_;
  pkg::RepoUniversePtr universe_;
  image::Registry registry_;
  vfs::FilesystemPtr shared_fs_;
  std::unique_ptr<Machine> login_;
  std::vector<std::unique_ptr<Machine>> compute_;
  std::unique_ptr<support::ThreadPool> launch_pool_;
  std::size_t launch_pool_width_ = 0;
};

// Builds a command registry with everything installed: shell builtins,
// fakeroot, package managers, tar, and the HPC toolchain.
std::shared_ptr<shell::CommandRegistry> make_full_registry(
    const pkg::RepoUniversePtr& universe);

}  // namespace minicon::core
