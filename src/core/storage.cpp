#include "core/storage.hpp"

#include "support/path.hpp"
#include "vfs/treeops.hpp"

namespace minicon::core {

Result<std::vector<image::TarEntry>> StorageDriver::diff(
    const Layer& layer) const {
  if (auto* ovl = dynamic_cast<vfs::OverlayFs*>(layer.fs.get())) {
    return image::tree_to_entries(ovl->upper_fs(), ovl->upper_fs().root());
  }
  return image::tree_to_entries(*layer.fs, layer.root);
}

// --- VfsDriver ----------------------------------------------------------------

VfsDriver::VfsDriver(vfs::FilesystemPtr backing, std::string graphroot,
                     vfs::Uid acting_uid, vfs::Gid acting_gid)
    : backing_(std::move(backing)),
      graphroot_(std::move(graphroot)),
      uid_(acting_uid),
      gid_(acting_gid) {}

vfs::OpCtx VfsDriver::ctx() const {
  vfs::OpCtx c;
  c.host_uid = uid_;
  c.host_gid = gid_;
  // The driver runs as the (unprivileged) invoking user — which is exactly
  // why a shared-filesystem backing refuses to store other IDs (§4.2).
  c.host_privileged = uid_ == 0;
  c.now = const_cast<VfsDriver*>(this)->clock_++;
  return c;
}

Result<vfs::InodeNum> VfsDriver::new_layer_dir() {
  // Ensure the graphroot path exists, then create layer-N inside it.
  vfs::InodeNum cur = backing_->root();
  for (const auto& comp : path_components(graphroot_)) {
    auto child = backing_->lookup(cur, comp);
    if (child.ok()) {
      cur = *child;
      continue;
    }
    vfs::CreateArgs args;
    args.type = vfs::FileType::Directory;
    args.mode = 0755;
    args.uid = uid_;
    args.gid = gid_;
    MINICON_TRY_ASSIGN(created, backing_->create(ctx(), cur, comp, args));
    cur = created;
  }
  vfs::CreateArgs args;
  args.type = vfs::FileType::Directory;
  args.mode = 0755;
  args.uid = uid_;
  args.gid = gid_;
  MINICON_TRY_ASSIGN(layer, backing_->create(
                                ctx(), cur,
                                "layer-" + std::to_string(next_layer_++), args));
  return layer;
}

Result<Layer> VfsDriver::base_layer(
    const std::vector<std::vector<image::TarEntry>>& layer_entries) {
  MINICON_TRY_ASSIGN(dir, new_layer_dir());
  Layer out;
  out.fs = backing_;
  out.root = dir;
  for (const auto& entries : layer_entries) {
    MINICON_TRY(image::entries_to_tree(entries, *backing_, dir, ctx()));
    for (const auto& e : entries) out.marginal_bytes += e.content.size();
  }
  total_bytes_ += out.marginal_bytes;
  return out;
}

Result<Layer> VfsDriver::create_layer(const Layer& parent) {
  MINICON_TRY_ASSIGN(dir, new_layer_dir());
  Layer out;
  out.fs = backing_;
  out.root = dir;
  // The defining cost of the vfs driver: a full copy of the parent tree.
  MINICON_TRY_ASSIGN(stats,
                     vfs::copy_tree(*parent.fs, parent.root, *backing_, dir,
                                    ctx()));
  out.marginal_bytes = stats.bytes;
  total_bytes_ += stats.bytes;
  return out;
}

std::uint64_t VfsDriver::layer_bytes(const Layer& layer) const {
  auto bytes = vfs::tree_bytes(*layer.fs, layer.root);
  return bytes.ok() ? *bytes : 0;
}

// --- OverlayDriver --------------------------------------------------------------

OverlayDriver::OverlayDriver(vfs::FilesystemPtr backing)
    : backing_(std::move(backing)) {}

Result<Layer> OverlayDriver::base_layer(
    const std::vector<std::vector<image::TarEntry>>& layer_entries) {
  if (backing_ != nullptr && !backing_->supports_user_xattrs()) {
    // fuse-overlayfs cannot stash its ID mappings: "user extended attributes
    // (xattrs) Podman uses for its ID mappings" clash with shared
    // filesystems (§6.1).
    return Err::enotsup;
  }
  auto base = std::make_shared<vfs::MemFs>(0755);
  vfs::OpCtx ctx;
  std::uint64_t bytes = 0;
  for (const auto& entries : layer_entries) {
    MINICON_TRY(image::entries_to_tree(entries, *base, base->root(), ctx));
    for (const auto& e : entries) bytes += e.content.size();
  }
  bases_.push_back(base);
  Layer out;
  out.fs = base;
  out.root = base->root();
  out.marginal_bytes = bytes;
  return out;
}

Result<Layer> OverlayDriver::create_layer(const Layer& parent) {
  if (backing_ != nullptr && !backing_->supports_user_xattrs()) {
    return Err::enotsup;
  }
  auto overlay = std::make_shared<vfs::OverlayFs>(parent.fs);
  overlays_.push_back(overlay);
  Layer out;
  out.fs = overlay;
  out.root = overlay->root();
  out.marginal_bytes = 0;  // copy-up happens lazily
  return out;
}

std::uint64_t OverlayDriver::layer_bytes(const Layer& layer) const {
  if (auto* ovl = dynamic_cast<vfs::OverlayFs*>(layer.fs.get())) {
    return ovl->upper_bytes();
  }
  auto bytes = vfs::tree_bytes(*layer.fs, layer.root);
  return bytes.ok() ? *bytes : 0;
}

std::uint64_t OverlayDriver::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& b : bases_) total += b->total_bytes();
  for (const auto& o : overlays_) total += o->upper_bytes();
  return total;
}

}  // namespace minicon::core
