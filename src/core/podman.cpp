#include "core/podman.hpp"

#include "buildfile/dockerfile.hpp"
#include "core/chimage.hpp"  // format_argv
#include "image/tar.hpp"
#include "kernel/syscalls.hpp"
#include "kernel/userdb.hpp"
#include "support/sha256.hpp"
#include "support/strings.hpp"
#include "support/threadpool.hpp"
#include "vfs/overlayfs.hpp"

namespace minicon::core {

Podman::Podman(Machine& m, kernel::Process invoker, image::Registry* registry,
               PodmanOptions options)
    : m_(m),
      invoker_(std::move(invoker)),
      registry_(registry),
      options_(std::move(options)) {
  if (options_.graphroot_backing == nullptr) {
    // "/tmp or local disk can be used for container storage" (§4.2).
    options_.graphroot_backing = std::make_shared<vfs::MemFs>(0755);
  }
  if (options_.driver == PodmanOptions::Driver::kVfs) {
    driver_ = std::make_unique<VfsDriver>(
        options_.graphroot_backing, "containers/storage/vfs",
        invoker_.cred.euid, invoker_.cred.egid);
  } else {
    driver_ = std::make_unique<OverlayDriver>(options_.graphroot_backing);
  }
  if (options_.trace_syscalls || options_.syscall_stats != nullptr) {
    stats_ = options_.syscall_stats != nullptr
                 ? options_.syscall_stats
                 : std::make_shared<kernel::SyscallStats>();
  }
  load_id_maps();
}

void Podman::load_id_maps() {
  // The same subuid/subgid view the helpers enforce; used for the id maps
  // shown by `podman unshare` and for push-time translation.
  std::vector<kernel::IdMapEntry> uids{{0, invoker_.cred.euid, 1}};
  std::vector<kernel::IdMapEntry> gids{{0, invoker_.cred.egid, 1}};
  if (options_.rootless_helpers) {
    kernel::Process reader = invoker_.clone();
    reader.sys = m_.kernel().syscalls();
    const std::string user = invoker_.env_get("USER");
    auto read_db = [&](const std::string& path) {
      auto text = reader.sys->read_file(reader, path);
      return kernel::SubidDb::parse(text.ok() ? *text : "");
    };
    for (const auto& r : read_db(options_.helper_config.subuid_path)
                             .ranges_for(user, invoker_.cred.ruid)) {
      uids.push_back({1, r.start, r.count});
      break;
    }
    for (const auto& r : read_db(options_.helper_config.subgid_path)
                             .ranges_for(user, invoker_.cred.ruid)) {
      gids.push_back({1, r.start, r.count});
      break;
    }
  }
  uid_map_ = kernel::IdMap{uids};
  gid_map_ = kernel::IdMap{gids};
}

vfs::Uid Podman::uid_to_container(vfs::Uid kuid) const {
  return uid_map_.to_inside(kuid).value_or(vfs::kOverflowUid);
}

vfs::Gid Podman::gid_to_container(vfs::Gid kgid) const {
  return gid_map_.to_inside(kgid).value_or(vfs::kOverflowGid);
}

Result<kernel::Process> Podman::enter(const Layer& layer,
                                      const image::ImageConfig& cfg) {
  RootFs rootfs;
  rootfs.fs = layer.fs;
  rootfs.root = layer.root;
  rootfs.owner_ns = nullptr;
  TypeIIOptions opts;
  opts.use_helpers = options_.rootless_helpers;
  opts.ignore_chown_errors = options_.ignore_chown_errors;
  opts.helper_config = options_.helper_config;
  // fuse-overlayfs mounts belong to the container namespace; plain vfs
  // directories remain part of the host mount.
  opts.container_owned_storage =
      options_.driver == PodmanOptions::Driver::kOverlay;
  opts.env = cfg.env;
  MINICON_TRY_ASSIGN(c, enter_type2(m_, invoker_, rootfs, opts));
  // Interposition stack, innermost first: caller-supplied layers (fault
  // injection, ...), then tracing outermost so injected errnos are counted.
  for (const auto& layer : options_.syscall_layers) {
    if (layer) c.sys = layer(c.sys);
  }
  if (stats_ != nullptr) {
    c.sys = std::make_shared<kernel::TraceSyscalls>(c.sys, stats_);
  }
  last_depth_ = kernel::interposition_depth(c.sys.get());
  c.cwd = cfg.workdir.empty() ? "/" : cfg.workdir;
  // USER instruction: switch to the image-defined user — possible in a
  // Type II container because the image's users are all mapped (§2.1.2).
  if (!cfg.user.empty() && cfg.user != "root") {
    vfs::Uid uid = 0;
    vfs::Gid gid = 0;
    if (parse_u32(cfg.user, uid)) {
      gid = uid;
    } else if (auto passwd = c.sys->read_file(c, "/etc/passwd"); passwd.ok()) {
      if (auto entry = kernel::PasswdDb::parse(*passwd).by_name(cfg.user)) {
        uid = entry->uid;
        gid = entry->gid;
      } else {
        return Err::enoent;  // unknown USER
      }
    }
    MINICON_TRY(c.sys->setgid(c, gid));
    MINICON_TRY(c.sys->setuid(c, uid));
  }
  return c;
}

int Podman::build(const std::string& tag, const std::string& dockerfile_text,
                  Transcript& t) {
  auto parsed = build::parse_dockerfile(dockerfile_text);
  if (const auto* err = std::get_if<build::DockerfileError>(&parsed)) {
    t.line("Error: dockerfile line " + std::to_string(err->line) + ": " +
           err->message);
    return 125;
  }
  const auto& df = std::get<build::Dockerfile>(parsed);
  const std::size_t total = df.instructions.size();

  BuiltImage img;
  Layer current;
  std::map<std::string, std::string> build_args;
  std::string cache_key = "podman|" + std::string(driver_->name());
  int step = 0;
  for (const auto& ins : df.instructions) {
    ++step;
    const std::string prefix =
        "STEP " + std::to_string(step) + "/" + std::to_string(total) + ": ";
    switch (ins.kind) {
      case build::InstrKind::kFrom: {
        t.line(prefix + "FROM " + ins.text);
        const auto fields = split_ws(ins.text);
        auto manifest = registry_->get_manifest(fields[0], m_.arch());
        if (!manifest) manifest = registry_->get_manifest(fields[0]);
        if (!manifest) {
          t.line("Error: initializing source: " + fields[0] + ": not found");
          return 125;
        }
        std::vector<std::vector<image::TarEntry>> layer_entries;
        for (const auto& digest : manifest->layers) {
          // Zero-copy pull: parse straight out of the registry's buffer.
          auto blob = registry_->get_blob_ref(digest);
          if (blob == nullptr) {
            t.line("Error: missing blob " + digest);
            return 125;
          }
          auto entries = image::tar_parse(*blob);
          if (!entries.ok()) {
            t.line("Error: corrupt layer " + digest);
            return 125;
          }
          // Storage keeps *host-side* IDs: the archive's container IDs are
          // translated through the user-namespace map (what fuse-overlayfs
          // and podman's storage layer do on pull). Unmapped IDs fail the
          // pull unless --ignore-chown-errors squashes them (§4.1.1).
          for (auto& e : *entries) {
            auto kuid = uid_map_.to_outside(e.uid);
            auto kgid = gid_map_.to_outside(e.gid);
            if ((!kuid || !kgid) && !options_.ignore_chown_errors) {
              t.line("Error: payload contains unmapped IDs (uid " +
                     std::to_string(e.uid) + "); consider "
                     "--ignore-chown-errors or wider subuid ranges");
              return 125;
            }
            e.uid = kuid.value_or(invoker_.cred.euid);
            e.gid = kgid.value_or(invoker_.cred.egid);
          }
          layer_entries.push_back(std::move(*entries));
        }
        auto base = driver_->base_layer(layer_entries);
        if (!base.ok()) {
          t.line("Error: storage driver " + driver_->name() +
                 ": " + std::string(err_message(base.error())) +
                 " (is the graphroot on a shared filesystem without user "
                 "xattrs?)");
          return 125;
        }
        current = *base;
        // The image's root directory itself is container-root-owned too.
        {
          vfs::OpCtx ctx;
          ctx.host_uid = invoker_.cred.euid;
          ctx.host_gid = invoker_.cred.egid;
          (void)current.fs->set_owner(ctx, current.root,
                                      uid_map_.to_outside(0).value_or(
                                          invoker_.cred.euid),
                                      gid_map_.to_outside(0).value_or(
                                          invoker_.cred.egid));
        }
        img.base_digests = manifest->layers;
        img.config = manifest->config;
        img.config.arch = m_.arch();
        cache_key = Sha256::hex_chain({cache_key, "|FROM|", ins.text});
        break;
      }
      case build::InstrKind::kRun: {
        std::vector<std::string> argv =
            ins.is_exec_form()
                ? ins.exec_form
                : std::vector<std::string>{"/bin/sh", "-c", ins.text};
        t.line(prefix + "RUN " + (ins.is_exec_form() ? format_argv(argv)
                                                     : ins.text));
        cache_key =
            Sha256::hex_chain({cache_key, "|RUN|", join(argv, "\x1f")});
        if (options_.build_cache) {
          auto it = cache_.find(cache_key);
          if (it != cache_.end()) {
            ++cache_hits_;
            t.line("--> Using cache " +
                   Sha256::hex_digest(cache_key).substr(0, 12));
            current = it->second.layer;
            img.config = it->second.config;
            img.run_layers.push_back(current);
            break;
          }
          ++cache_misses_;
        }
        auto layer = driver_->create_layer(current);
        if (!layer.ok()) {
          t.line("Error: storage driver " + driver_->name() + ": " +
                 std::string(err_message(layer.error())));
          return 125;
        }
        image::ImageConfig run_cfg = img.config;
        for (const auto& [k, v] : build_args) run_cfg.env[k] = v;
        auto container = enter(*layer, run_cfg);
        if (!container.ok()) {
          t.line("Error: cannot configure rootless user namespace: " +
                 std::string(err_message(container.error())) +
                 " (are subuid/subgid ranges configured?)");
          return 125;
        }
        std::string out, err;
        const kernel::SyscallStats::Totals before =
            stats_ != nullptr ? stats_->totals() : kernel::SyscallStats::Totals{};
        const int status = m_.shell().run_argv(*container, argv, out, err);
        t.block(out);
        t.block(err);
        std::string errno_sum;
        if (stats_ != nullptr) {
          const auto after = stats_->totals();
          errno_sum = kernel::SyscallStats::errno_summary(before, after);
          std::string line = "syscalls: step " + std::to_string(step) + ": " +
                             std::to_string(after.calls - before.calls) +
                             " calls, " +
                             std::to_string(after.errors - before.errors) +
                             " errors";
          if (!errno_sum.empty()) line += " (" + errno_sum + ")";
          line += ", depth " + std::to_string(last_depth_);
          t.line(line);
        }
        if (status != 0) {
          if (stats_ != nullptr) {
            t.line("Error: RUN instruction " + std::to_string(step) +
                   " failed with exit status " + std::to_string(status) +
                   (errno_sum.empty()
                        ? ""
                        : " (syscall errors: " + errno_sum + ")"));
          }
          t.line("Error: building at " + prefix.substr(0, prefix.size() - 2) +
                 ": while running runtime: exit status " +
                 std::to_string(status));
          return status;
        }
        current = *layer;
        img.run_layers.push_back(current);
        if (options_.build_cache) cache_[cache_key] = {current, img.config};
        break;
      }
      case build::InstrKind::kEnv: {
        t.line(prefix + "ENV " + ins.text);
        for (const auto& [k, v] : build::parse_kv(ins.text)) {
          img.config.env[k] = v;
        }
        cache_key = Sha256::hex_chain({cache_key, "|ENV|", ins.text});
        break;
      }
      case build::InstrKind::kWorkdir: {
        t.line(prefix + "WORKDIR " + ins.text);
        img.config.workdir = ins.text;
        if (auto container = enter(current, img.config); container.ok()) {
          std::string out, err;
          (void)m_.shell().run(*container, "mkdir -p " + ins.text, out, err);
        }
        break;
      }
      case build::InstrKind::kCopy:
      case build::InstrKind::kAdd: {
        t.line(prefix + "COPY " + ins.text);
        const auto fields = split_ws(ins.text);
        if (fields.size() < 2) {
          t.line("Error: COPY requires source and destination");
          return 125;
        }
        auto data = invoker_.sys->read_file(invoker_, fields[0]);
        if (!data.ok()) {
          t.line("Error: COPY: " + fields[0] + ": no such file");
          return 125;
        }
        auto layer = driver_->create_layer(current);
        if (!layer.ok()) return 125;
        auto container = enter(*layer, img.config);
        if (!container.ok()) return 125;
        std::string dst = fields.back();
        if (dst.ends_with("/")) dst += fields[0];
        if (auto rc = container->sys->write_file(*container, dst, *data,
                                                 false, 0644);
            !rc.ok()) {
          t.line("Error: COPY: cannot write " + dst);
          return 125;
        }
        current = *layer;
        img.run_layers.push_back(current);
        cache_key = Sha256::hex_chain(
            {cache_key, "|COPY|", ins.text, "|", Sha256::hex_digest(*data)});
        break;
      }
      case build::InstrKind::kCmd:
        t.line(prefix + "CMD " + ins.text);
        img.config.cmd = ins.is_exec_form()
                             ? ins.exec_form
                             : std::vector<std::string>{"/bin/sh", "-c",
                                                        ins.text};
        break;
      case build::InstrKind::kEntrypoint:
        t.line(prefix + "ENTRYPOINT " + ins.text);
        img.config.entrypoint =
            ins.is_exec_form()
                ? ins.exec_form
                : std::vector<std::string>{"/bin/sh", "-c", ins.text};
        break;
      case build::InstrKind::kLabel:
        t.line(prefix + "LABEL " + ins.text);
        for (const auto& [k, v] : build::parse_kv(ins.text)) {
          img.config.labels[k] = v;
        }
        break;
      case build::InstrKind::kArg: {
        t.line(prefix + "ARG " + ins.text);
        const auto eq = ins.text.find('=');
        if (eq != std::string::npos) {
          build_args[ins.text.substr(0, eq)] = ins.text.substr(eq + 1);
        }
        break;
      }
      case build::InstrKind::kUser:
        t.line(prefix + "USER " + ins.text);
        // Type II has real multiple users: record it for later RUNs/runs.
        img.config.user = ins.text;
        break;
      default:
        t.line(prefix + build::instr_name(ins.kind) + " " + ins.text);
        break;
    }
  }
  img.top = current;
  images_[tag] = std::move(img);
  t.line("COMMIT " + tag);
  return 0;
}

int Podman::push(const std::string& tag, const std::string& dest_ref,
                 Transcript& t) {
  auto it = images_.find(tag);
  if (it == images_.end()) {
    t.line("Error: " + tag + ": image not known");
    return 125;
  }
  const BuiltImage& img = it->second;
  image::Manifest manifest;
  manifest.reference = dest_ref;
  manifest.config = img.config;
  manifest.layers = img.base_digests;  // base blobs are shared by digest

  // §6.2.5: images may be marked to require ownership flattening.
  const bool must_flatten = img.config.flatten_policy() == "require";
  for (const auto& layer : img.run_layers) {
    auto entries = driver_->diff(layer);
    if (!entries.ok()) {
      t.line("Error: cannot export layer");
      return 125;
    }
    // "Provided image archives are also created within the container", the
    // image keeps correct ownership (§6.1): record container-namespace IDs.
    for (auto& e : *entries) {
      e.uid = uid_to_container(e.uid);
      e.gid = gid_to_container(e.gid);
    }
    if (must_flatten) *entries = image::flatten_ownership(std::move(*entries));
    // Pipelined push: tar serialization feeds the registry's BlobWriter,
    // which digests/uploads full chunks on the pool while we keep packing.
    support::ThreadPool* pool = options_.digest_pool != nullptr
                                    ? options_.digest_pool.get()
                                    : &support::shared_pool();
    auto writer = registry_->blob_writer(pool);
    image::tar_stream(*entries, [&writer](std::string_view piece) {
      writer.append(piece);
    });
    manifest.layers.push_back(writer.finish());
  }
  if (must_flatten) {
    t.line("Note: image marked " +
           std::string(image::ImageConfig::kFlattenLabel) +
           "=require; layers pushed ownership-flattened");
  }
  registry_->put_manifest(manifest);
  t.line("Copying " + std::to_string(manifest.layers.size()) + " layers to " +
         registry_->name() + "/" + dest_ref);
  t.line("Writing manifest " + manifest.digest());
  return 0;
}

int Podman::run_in_image(const std::string& tag,
                         const std::vector<std::string>& argv, Transcript& t) {
  auto it = images_.find(tag);
  if (it == images_.end()) {
    t.line("Error: " + tag + ": image not known");
    return 125;
  }
  auto container = enter(it->second.top, it->second.config);
  if (!container.ok()) {
    t.line("Error: cannot start container: " +
           std::string(err_message(container.error())));
    return 125;
  }
  std::string out, err;
  const int status = m_.shell().run_argv(*container, argv, out, err);
  t.block(out);
  t.block(err);
  return status;
}

int Podman::show_id_maps(Transcript& t) {
  // `podman unshare cat /proc/self/uid_map`
  kernel::Process c = invoker_.clone();
  c.sys = m_.kernel().syscalls();
  if (auto rc = c.sys->unshare_userns(c); !rc.ok()) {
    t.line("Error: cannot create user namespace");
    return 125;
  }
  if (options_.rootless_helpers) {
    kernel::Process helper_invoker = invoker_.clone();
    helper_invoker.sys = m_.kernel().syscalls();
    std::vector<kernel::IdMapEntry> uids(uid_map_.entries());
    std::vector<kernel::IdMapEntry> gids(gid_map_.entries());
    if (uids.size() < 2 ||
        !kernel::newuidmap(m_.kernel(), helper_invoker, c.userns, uids,
                           options_.helper_config)
             .ok() ||
        !kernel::newgidmap(m_.kernel(), helper_invoker, c.userns, gids,
                           options_.helper_config)
             .ok()) {
      t.line("Error: helpers could not install the requested ID maps");
      return 125;
    }
  } else {
    (void)c.sys->write_setgroups(
        c, c.userns, kernel::UserNamespace::SetgroupsPolicy::kDeny);
    (void)c.sys->write_uid_map(c, c.userns,
                               kernel::IdMap::single(0, invoker_.cred.euid));
    (void)c.sys->write_gid_map(c, c.userns,
                               kernel::IdMap::single(0, invoker_.cred.egid));
  }
  auto uid_map = c.sys->read_file(c, "/proc/self/uid_map");
  t.line("$ podman unshare cat /proc/self/uid_map");
  if (uid_map.ok()) t.block(*uid_map);
  return 0;
}

const image::ImageConfig* Podman::config(const std::string& tag) const {
  auto it = images_.find(tag);
  return it == images_.end() ? nullptr : &it->second.config;
}

}  // namespace minicon::core
