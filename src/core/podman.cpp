#include "core/podman.hpp"

#include <chrono>
#include <thread>

#include "buildfile/dockerfile.hpp"
#include "core/chimage.hpp"  // format_argv
#include "image/tar.hpp"
#include "kernel/observe.hpp"
#include "kernel/syscalls.hpp"
#include "kernel/userdb.hpp"
#include "support/path.hpp"
#include "support/sha256.hpp"
#include "support/strings.hpp"
#include "support/threadpool.hpp"
#include "vfs/overlayfs.hpp"

namespace minicon::core {

Podman::Podman(Machine& m, kernel::Process invoker, image::Registry* registry,
               PodmanOptions options)
    : m_(m),
      invoker_(std::move(invoker)),
      registry_(registry),
      options_(std::move(options)) {
  if (options_.graphroot_backing == nullptr) {
    // "/tmp or local disk can be used for container storage" (§4.2).
    options_.graphroot_backing = std::make_shared<vfs::MemFs>(0755);
  }
  if (options_.driver == PodmanOptions::Driver::kVfs) {
    driver_ = std::make_unique<VfsDriver>(
        options_.graphroot_backing, "containers/storage/vfs",
        invoker_.cred.euid, invoker_.cred.egid);
  } else {
    driver_ = std::make_unique<OverlayDriver>(options_.graphroot_backing);
  }
  if (options_.shared_cache != nullptr) {
    cache_ = options_.shared_cache;
    options_.build_cache = true;
  } else if (options_.build_cache) {
    // A private cache dedups its diff-tar chunks against registry blobs.
    cache_ = std::make_shared<buildgraph::BuildCache>(
        registry_ != nullptr ? &registry_->chunk_store() : nullptr);
  }
  if (options_.trace_syscalls || options_.syscall_stats != nullptr) {
    stats_ = options_.syscall_stats != nullptr
                 ? options_.syscall_stats
                 : std::make_shared<kernel::SyscallStats>();
  }
  if (options_.force_mode == ForceMode::kFakeroot) {
    options_.force_mode = ForceMode::kNone;  // not a podman mode
  }
  if (options_.force_mode == ForceMode::kSeccomp) {
    zc_stats_ = std::make_shared<kernel::ZeroConsistencyStats>();
  }
  metrics_ = options_.metrics != nullptr ? options_.metrics
                                         : &obs::global_metrics();
  if (options_.tracer != nullptr) {
    tracer_ = options_.tracer;
    options_.trace = true;  // a supplied tracer implies tracing
  } else if (options_.trace) {
    tracer_ = std::make_shared<obs::Tracer>();
  }
  if (cache_ != nullptr) {
    // Leave a shared cache's wiring alone unless we have something to add:
    // another builder (or the caller) may already have pointed it somewhere.
    if (options_.metrics != nullptr) cache_->set_metrics(options_.metrics);
    if (tracer_ != nullptr) cache_->set_tracer(tracer_);
  }
  load_id_maps();
}

void Podman::load_id_maps() {
  // The same subuid/subgid view the helpers enforce; used for the id maps
  // shown by `podman unshare` and for push-time translation.
  std::vector<kernel::IdMapEntry> uids{{0, invoker_.cred.euid, 1}};
  std::vector<kernel::IdMapEntry> gids{{0, invoker_.cred.egid, 1}};
  if (options_.rootless_helpers) {
    kernel::Process reader = invoker_.clone();
    reader.sys = m_.kernel().syscalls();
    const std::string user = invoker_.env_get("USER");
    auto read_db = [&](const std::string& path) {
      auto text = reader.sys->read_file(reader, path);
      return kernel::SubidDb::parse(text.ok() ? *text : "");
    };
    for (const auto& r : read_db(options_.helper_config.subuid_path)
                             .ranges_for(user, invoker_.cred.ruid)) {
      uids.push_back({1, r.start, r.count});
      break;
    }
    for (const auto& r : read_db(options_.helper_config.subgid_path)
                             .ranges_for(user, invoker_.cred.ruid)) {
      gids.push_back({1, r.start, r.count});
      break;
    }
  }
  uid_map_ = kernel::IdMap{uids};
  gid_map_ = kernel::IdMap{gids};
}

vfs::Uid Podman::uid_to_container(vfs::Uid kuid) const {
  return uid_map_.to_inside(kuid).value_or(vfs::kOverflowUid);
}

vfs::Gid Podman::gid_to_container(vfs::Gid kgid) const {
  return gid_map_.to_inside(kgid).value_or(vfs::kOverflowGid);
}

Result<kernel::Process> Podman::enter(const Layer& layer,
                                      const image::ImageConfig& cfg) {
  RootFs rootfs;
  rootfs.fs = layer.fs;
  rootfs.root = layer.root;
  rootfs.owner_ns = nullptr;
  TypeIIOptions opts;
  opts.use_helpers = options_.rootless_helpers;
  opts.ignore_chown_errors = options_.ignore_chown_errors;
  opts.helper_config = options_.helper_config;
  // fuse-overlayfs mounts belong to the container namespace; plain vfs
  // directories remain part of the host mount.
  opts.container_owned_storage =
      options_.driver == PodmanOptions::Driver::kOverlay;
  opts.env = cfg.env;
  MINICON_TRY_ASSIGN(c, enter_type2(m_, invoker_, rootfs, opts));
  // Interposition stack, innermost first: metrics observation, then
  // caller-supplied layers (fault injection, ...), then tracing outermost
  // so injected errnos are counted. ObserveSyscalls sits below the caller
  // layers so injected faults short-circuit above it and never skew the
  // organic syscall.errno.* counters.
  if (options_.trace || options_.observe_syscalls) {
    c.sys = std::make_shared<kernel::ObserveSyscalls>(c.sys, metrics_);
  }
  // Zero-consistency filter directly above Observe, below caller layers:
  // same placement rationale as ch-image (see ChImage::enter).
  if (options_.force_mode == ForceMode::kSeccomp) {
    c.sys = std::make_shared<kernel::ZeroConsistencySyscalls>(c.sys, zc_stats_,
                                                              metrics_);
  }
  for (const auto& layer : options_.syscall_layers) {
    if (layer) c.sys = layer(c.sys);
  }
  if (stats_ != nullptr) {
    c.sys = std::make_shared<kernel::TraceSyscalls>(c.sys, stats_);
  }
  last_depth_ = kernel::interposition_depth(c.sys.get());
  c.cwd = cfg.workdir.empty() ? "/" : cfg.workdir;
  // USER instruction: switch to the image-defined user — possible in a
  // Type II container because the image's users are all mapped (§2.1.2).
  if (!cfg.user.empty() && cfg.user != "root") {
    vfs::Uid uid = 0;
    vfs::Gid gid = 0;
    if (parse_u32(cfg.user, uid)) {
      gid = uid;
    } else if (auto passwd = c.sys->read_file(c, "/etc/passwd"); passwd.ok()) {
      if (auto entry = kernel::PasswdDb::parse(*passwd).by_name(cfg.user)) {
        uid = entry->uid;
        gid = entry->gid;
      } else {
        return Err::enoent;  // unknown USER
      }
    }
    MINICON_TRY(c.sys->setgid(c, gid));
    MINICON_TRY(c.sys->setuid(c, uid));
  }
  return c;
}

Result<std::string> Podman::read_from_layer(const Layer& layer,
                                            const std::string& path) const {
  vfs::InodeNum cur = layer.root;
  for (const auto& comp : path_components(path)) {
    MINICON_TRY_ASSIGN(child, layer.fs->lookup(cur, comp));
    cur = child;
  }
  return layer.fs->read(cur);
}

bool Podman::restore_layer(const Layer& layer,
                           const vfs::SnapNodePtr& snapshot) {
  if (snapshot == nullptr) return false;
  // Diff entries carry host-side IDs (how the storage layer keeps them),
  // so they replay verbatim.
  const auto entries = image::snapshot_to_entries(snapshot);
  vfs::OpCtx ctx;
  ctx.host_uid = invoker_.cred.euid;
  ctx.host_gid = invoker_.cred.egid;
  ctx.host_privileged = invoker_.cred.euid == 0;
  return image::entries_to_tree(entries, *layer.fs, layer.root, ctx).ok();
}

int Podman::build(const std::string& tag, const std::string& dockerfile_text,
                  Transcript& t) {
  auto parsed = build::parse_dockerfile(dockerfile_text);
  if (const auto* err = std::get_if<build::DockerfileError>(&parsed)) {
    t.line("Error: dockerfile line " + std::to_string(err->line) + ": " +
           err->message);
    return 125;
  }
  const auto& df = std::get<build::Dockerfile>(parsed);
  auto lowered = buildgraph::lower(df);
  if (const auto* err = std::get_if<build::DockerfileError>(&lowered)) {
    t.line("Error: dockerfile line " + std::to_string(err->line) + ": " +
           err->message);
    return 125;
  }
  const auto& g = std::get<buildgraph::BuildGraph>(lowered);

  const kernel::ZeroConsistencyStats::Totals zc0 =
      zc_stats_ != nullptr ? zc_stats_->totals()
                           : kernel::ZeroConsistencyStats::Totals{};
  std::vector<StageBuild> sb(g.stages().size());
  obs::Span build_span(tracer_.get(), "build");
  build_span.annotate("builder", "podman");
  build_span.annotate("tag", tag);
  buildgraph::StageScheduler::Options sopts;
  sopts.pool =
      options_.stage_pool != nullptr ? options_.stage_pool.get() : nullptr;
  sopts.parallel = options_.parallel_stages;
  sopts.tracer = tracer_;
  sopts.parent_span = build_span.id();
  sopts.metrics = options_.metrics;
  buildgraph::StageScheduler sched(g, sopts);
  const int rc = sched.run(
      [&](const buildgraph::Stage& s, Transcript& st) {
        return build_stage(g, s, sb, st, sched.stage_span(s.index));
      },
      t);
  sched_stats_ = sched.stats();
  build_span.annotate("status", std::to_string(rc));
  if (rc != 0) return rc;

  StageBuild& fin = sb[static_cast<std::size_t>(g.target())];
  BuiltImage img;
  img.base_digests = std::move(fin.base_digests);
  img.run_layers = std::move(fin.run_layers);
  img.top = fin.current;
  img.config = std::move(fin.cfg);
  images_[tag] = std::move(img);
  if (zc_stats_ != nullptr) {
    const auto zc = zc_stats_->totals();
    if (zc.total() > zc0.total()) {
      t.line("seccomp: faked " + std::to_string(zc.total() - zc0.total()) +
             " privileged syscalls (zero-consistency mode)");
    }
  }
  t.line("COMMIT " + tag);
  return 0;
}

int Podman::build_stage(const buildgraph::BuildGraph& g,
                        const buildgraph::Stage& s,
                        std::vector<StageBuild>& sb, Transcript& t,
                        obs::SpanId stage_span) {
  std::unique_lock lock(machine_mu_);
  StageBuild& o = sb[static_cast<std::size_t>(s.index)];
  const std::string total = std::to_string(g.instruction_count());
  const auto prefix = [&total](int number) {
    return "STEP " + std::to_string(number) + "/" + total + ": ";
  };
  t.line(prefix(s.from_number) + "FROM " + s.from->text);
  if (s.base_stage >= 0) {
    // Base is an earlier stage: a fresh layer on top of its top layer.
    const StageBuild& dep = sb[static_cast<std::size_t>(s.base_stage)];
    auto layer = driver_->create_layer(dep.current);
    if (!layer.ok()) {
      t.line("Error: storage driver " + driver_->name() + ": " +
             std::string(err_message(layer.error())));
      return 125;
    }
    o.current = *layer;
    o.cfg = dep.cfg;
    o.base_digests = dep.base_digests;
    o.run_layers = dep.run_layers;
    o.key = buildgraph::BuildCache::chain(dep.key, "FROM-STAGE");
  } else {
    auto manifest = registry_->get_manifest(s.base_ref, m_.arch());
    if (!manifest) manifest = registry_->get_manifest(s.base_ref);
    if (!manifest) {
      t.line("Error: initializing source: " + s.base_ref + ": not found");
      return 125;
    }
    std::vector<std::vector<image::TarEntry>> layer_entries;
    for (const auto& digest : manifest->layers) {
      // Tree layers walk the shared snapshot; blob layers parse straight
      // out of the registry's buffer (zero-copy).
      auto entries = image::registry_layer_entries(*registry_, digest);
      if (!entries.ok()) {
        t.line(entries.error() == Err::enoent
                   ? "Error: missing blob " + digest
                   : "Error: corrupt layer " + digest);
        return 125;
      }
      // Storage keeps *host-side* IDs: the archive's container IDs are
      // translated through the user-namespace map (what fuse-overlayfs
      // and podman's storage layer do on pull). Unmapped IDs fail the
      // pull unless --ignore-chown-errors squashes them (§4.1.1).
      for (auto& e : *entries) {
        auto kuid = uid_map_.to_outside(e.uid);
        auto kgid = gid_map_.to_outside(e.gid);
        if ((!kuid || !kgid) && !options_.ignore_chown_errors) {
          t.line("Error: payload contains unmapped IDs (uid " +
                 std::to_string(e.uid) + "); consider "
                 "--ignore-chown-errors or wider subuid ranges");
          return 125;
        }
        e.uid = kuid.value_or(invoker_.cred.euid);
        e.gid = kgid.value_or(invoker_.cred.egid);
      }
      layer_entries.push_back(std::move(*entries));
    }
    auto base = driver_->base_layer(layer_entries);
    if (!base.ok()) {
      t.line("Error: storage driver " + driver_->name() +
             ": " + std::string(err_message(base.error())) +
             " (is the graphroot on a shared filesystem without user "
             "xattrs?)");
      return 125;
    }
    o.current = *base;
    // The image's root directory itself is container-root-owned too.
    {
      vfs::OpCtx ctx;
      ctx.host_uid = invoker_.cred.euid;
      ctx.host_gid = invoker_.cred.egid;
      (void)o.current.fs->set_owner(ctx, o.current.root,
                                    uid_map_.to_outside(0).value_or(
                                        invoker_.cred.euid),
                                    gid_map_.to_outside(0).value_or(
                                        invoker_.cred.egid));
    }
    o.base_digests = manifest->layers;
    o.cfg = manifest->config;
    o.cfg.arch = m_.arch();
    o.key = buildgraph::BuildCache::chain(
        "podman|" + std::string(driver_->name()), "FROM|" + s.from->text);
  }

  // ARG values exist only during the build and are stage-scoped.
  std::map<std::string, std::string> build_args;

  for (const auto& si : s.instrs) {
    const build::Instruction& ins = *si.ins;
    const std::string step_str = std::to_string(si.number);
    const std::string pfx = prefix(si.number);
    obs::Span ins_span(tracer_.get(), "instruction", stage_span);
    ins_span.annotate("number", step_str);
    ins_span.annotate("kind", build::instr_name(ins.kind));
    switch (ins.kind) {
      case build::InstrKind::kFrom:
        break;  // unreachable: FROM opens a stage, never appears in a body
      case build::InstrKind::kRun: {
        std::vector<std::string> argv =
            ins.is_exec_form()
                ? ins.exec_form
                : std::vector<std::string>{"/bin/sh", "-c", ins.text};
        t.line(pfx + "RUN " + (ins.is_exec_form() ? format_argv(argv)
                                                  : ins.text));
        o.key = buildgraph::BuildCache::chain(o.key,
                                              "RUN|" + join(argv, "\x1f"));
        if (cache_ != nullptr) {
          auto hit = cache_->lookup(o.key, ins_span.id());
          if (hit) {
            auto layer = driver_->create_layer(o.current);
            if (layer.ok() && restore_layer(*layer, hit->snapshot)) {
              ins_span.annotate("cached", "true");
              t.line("--> Using cache " +
                     Sha256::hex_digest(o.key).substr(0, 12));
              o.current = *layer;
              o.cfg = hit->config;
              o.run_layers.push_back(o.current);
              break;
            }
          }
        }
        auto layer = driver_->create_layer(o.current);
        if (!layer.ok()) {
          t.line("Error: storage driver " + driver_->name() + ": " +
                 std::string(err_message(layer.error())));
          return 125;
        }
        image::ImageConfig run_cfg = o.cfg;
        for (const auto& [k, v] : build_args) run_cfg.env[k] = v;
        int status = 0;
        std::string errno_sum;
        for (int attempt = 1;; ++attempt) {
          auto container = enter(*layer, run_cfg);
          if (!container.ok()) {
            t.line("Error: cannot configure rootless user namespace: " +
                   std::string(err_message(container.error())) +
                   " (are subuid/subgid ranges configured?)");
            return 125;
          }
          std::string out, err;
          const kernel::SyscallStats::Totals before =
              stats_ != nullptr ? stats_->totals()
                                : kernel::SyscallStats::Totals{};
          // One syscall-batch span per attempt: deltas of the shared
          // syscall.* counters are exact because the machine mutex is held
          // across the container run.
          obs::Span batch(tracer_.get(), "syscall-batch", ins_span.id());
          batch.annotate("attempt", std::to_string(attempt));
          const std::uint64_t calls0 =
              metrics_->counter("syscall.calls").value();
          const std::uint64_t errors0 =
              metrics_->counter("syscall.errors").value();
          status = m_.shell().run_argv(*container, argv, out, err);
          batch.annotate(
              "calls", std::to_string(
                           metrics_->counter("syscall.calls").value() - calls0));
          batch.annotate("errors",
                         std::to_string(
                             metrics_->counter("syscall.errors").value() -
                             errors0));
          batch.annotate("status", std::to_string(status));
          batch.end();
          t.block(out);
          t.block(err);
          errno_sum.clear();
          if (stats_ != nullptr) {
            const auto after = stats_->totals();
            errno_sum = kernel::SyscallStats::errno_summary(before, after);
            std::string line = "syscalls: step " + step_str + ": " +
                               std::to_string(after.calls - before.calls) +
                               " calls, " +
                               std::to_string(after.errors - before.errors) +
                               " errors";
            if (!errno_sum.empty()) line += " (" + errno_sum + ")";
            line += ", depth " + std::to_string(last_depth_);
            t.line(line);
          }
          if (status == 0 || attempt >= options_.run_retry.max_attempts) {
            break;
          }
          const int delay = options_.run_retry.backoff_ms(attempt + 1);
          t.line("retry: RUN instruction " + step_str + " exited " +
                 std::to_string(status) + "; attempt " +
                 std::to_string(attempt + 1) + "/" +
                 std::to_string(options_.run_retry.max_attempts) + " in " +
                 std::to_string(delay) + " ms");
          // Back off without holding the machine: other stages keep going.
          lock.unlock();
          std::this_thread::sleep_for(std::chrono::milliseconds(delay));
          lock.lock();
        }
        if (status != 0) {
          if (stats_ != nullptr) {
            t.line("Error: RUN instruction " + step_str +
                   " failed with exit status " + std::to_string(status) +
                   (errno_sum.empty()
                        ? ""
                        : " (syscall errors: " + errno_sum + ")"));
          }
          t.line("Error: building at " + pfx.substr(0, pfx.size() - 2) +
                 ": while running runtime: exit status " +
                 std::to_string(status));
          return status;
        }
        o.current = *layer;
        o.run_layers.push_back(o.current);
        if (cache_ != nullptr) {
          auto diff = driver_->diff(o.current);
          if (diff.ok()) {
            auto snap = image::entries_to_snapshot(*diff);
            // Chunking new subtrees happens outside the machine lock; this
            // is the work independent stages genuinely overlap.
            lock.unlock();
            cache_->store(o.key, snap, o.cfg, ins_span.id());
            lock.lock();
          }
        }
        break;
      }
      case build::InstrKind::kEnv: {
        t.line(pfx + "ENV " + ins.text);
        for (const auto& [k, v] : build::parse_kv(ins.text)) {
          o.cfg.env[k] = v;
        }
        o.key = buildgraph::BuildCache::chain(o.key, "ENV|" + ins.text);
        break;
      }
      case build::InstrKind::kWorkdir: {
        t.line(pfx + "WORKDIR " + ins.text);
        o.cfg.workdir = ins.text;
        if (auto container = enter(o.current, o.cfg); container.ok()) {
          std::string out, err;
          (void)m_.shell().run(*container, "mkdir -p " + ins.text, out, err);
        }
        break;
      }
      case build::InstrKind::kCopy:
      case build::InstrKind::kAdd: {
        t.line(pfx + "COPY " + ins.text);
        const auto fields = split_ws(si.copy_args);
        if (fields.size() < 2) {
          t.line("Error: COPY requires source and destination");
          return 125;
        }
        Result<std::string> data = Err::enoent;
        if (si.copy_from >= 0) {
          // Source is an earlier stage's top layer (already built).
          data = read_from_layer(
              sb[static_cast<std::size_t>(si.copy_from)].current, fields[0]);
        } else {
          data = invoker_.sys->read_file(invoker_, fields[0]);
        }
        if (!data.ok()) {
          t.line("Error: COPY: " + fields[0] + ": no such file");
          return 125;
        }
        auto layer = driver_->create_layer(o.current);
        if (!layer.ok()) return 125;
        auto container = enter(*layer, o.cfg);
        if (!container.ok()) return 125;
        std::string dst = fields.back();
        if (dst.ends_with("/")) dst += fields[0];
        if (auto rc = container->sys->write_file(*container, dst, *data,
                                                 false, 0644);
            !rc.ok()) {
          t.line("Error: COPY: cannot write " + dst);
          return 125;
        }
        o.current = *layer;
        o.run_layers.push_back(o.current);
        o.key = buildgraph::BuildCache::chain(o.key, "COPY|" + ins.text,
                                              {Sha256::hex_digest(*data)});
        break;
      }
      case build::InstrKind::kCmd:
        t.line(pfx + "CMD " + ins.text);
        o.cfg.cmd = ins.is_exec_form()
                        ? ins.exec_form
                        : std::vector<std::string>{"/bin/sh", "-c", ins.text};
        break;
      case build::InstrKind::kEntrypoint:
        t.line(pfx + "ENTRYPOINT " + ins.text);
        o.cfg.entrypoint =
            ins.is_exec_form()
                ? ins.exec_form
                : std::vector<std::string>{"/bin/sh", "-c", ins.text};
        break;
      case build::InstrKind::kLabel:
        t.line(pfx + "LABEL " + ins.text);
        for (const auto& [k, v] : build::parse_kv(ins.text)) {
          o.cfg.labels[k] = v;
        }
        break;
      case build::InstrKind::kArg: {
        t.line(pfx + "ARG " + ins.text);
        const auto eq = ins.text.find('=');
        if (eq != std::string::npos) {
          build_args[ins.text.substr(0, eq)] = ins.text.substr(eq + 1);
        }
        break;
      }
      case build::InstrKind::kUser:
        t.line(pfx + "USER " + ins.text);
        // Type II has real multiple users: record it for later RUNs/runs.
        o.cfg.user = ins.text;
        break;
      default:
        t.line(pfx + build::instr_name(ins.kind) + " " + ins.text);
        break;
    }
  }
  return 0;
}

int Podman::push(const std::string& tag, const std::string& dest_ref,
                 Transcript& t) {
  auto it = images_.find(tag);
  if (it == images_.end()) {
    t.line("Error: " + tag + ": image not known");
    return 125;
  }
  const BuiltImage& img = it->second;
  image::Manifest manifest;
  manifest.reference = dest_ref;
  manifest.config = img.config;
  manifest.layers = img.base_digests;  // base blobs are shared by digest

  // §6.2.5: images may be marked to require ownership flattening.
  const bool must_flatten = img.config.flatten_policy() == "require";
  for (const auto& layer : img.run_layers) {
    auto entries = driver_->diff(layer);
    if (!entries.ok()) {
      t.line("Error: cannot export layer");
      return 125;
    }
    // "Provided image archives are also created within the container", the
    // image keeps correct ownership (§6.1): record container-namespace IDs.
    for (auto& e : *entries) {
      e.uid = uid_to_container(e.uid);
      e.gid = gid_to_container(e.gid);
    }
    if (must_flatten) *entries = image::flatten_ownership(std::move(*entries));
    // Merkle-tree push: unchanged subtrees of a previously pushed layer are
    // skipped wholesale (the registry already holds their nodes); file
    // contents dedup at chunk granularity underneath.
    support::ThreadPool* pool = options_.digest_pool != nullptr
                                    ? options_.digest_pool.get()
                                    : &support::shared_pool();
    auto res = registry_->put_tree(image::entries_to_snapshot(*entries), pool);
    manifest.layers.push_back(res.digest);
  }
  if (must_flatten) {
    t.line("Note: image marked " +
           std::string(image::ImageConfig::kFlattenLabel) +
           "=require; layers pushed ownership-flattened");
  }
  registry_->put_manifest(manifest);
  t.line("Copying " + std::to_string(manifest.layers.size()) + " layers to " +
         registry_->name() + "/" + dest_ref);
  t.line("Writing manifest " + manifest.digest());
  return 0;
}

int Podman::run_in_image(const std::string& tag,
                         const std::vector<std::string>& argv, Transcript& t) {
  auto it = images_.find(tag);
  if (it == images_.end()) {
    t.line("Error: " + tag + ": image not known");
    return 125;
  }
  auto container = enter(it->second.top, it->second.config);
  if (!container.ok()) {
    t.line("Error: cannot start container: " +
           std::string(err_message(container.error())));
    return 125;
  }
  std::string out, err;
  const int status = m_.shell().run_argv(*container, argv, out, err);
  t.block(out);
  t.block(err);
  return status;
}

int Podman::show_id_maps(Transcript& t) {
  // `podman unshare cat /proc/self/uid_map`
  kernel::Process c = invoker_.clone();
  c.sys = m_.kernel().syscalls();
  if (auto rc = c.sys->unshare_userns(c); !rc.ok()) {
    t.line("Error: cannot create user namespace");
    return 125;
  }
  if (options_.rootless_helpers) {
    kernel::Process helper_invoker = invoker_.clone();
    helper_invoker.sys = m_.kernel().syscalls();
    std::vector<kernel::IdMapEntry> uids(uid_map_.entries());
    std::vector<kernel::IdMapEntry> gids(gid_map_.entries());
    if (uids.size() < 2 ||
        !kernel::newuidmap(m_.kernel(), helper_invoker, c.userns, uids,
                           options_.helper_config)
             .ok() ||
        !kernel::newgidmap(m_.kernel(), helper_invoker, c.userns, gids,
                           options_.helper_config)
             .ok()) {
      t.line("Error: helpers could not install the requested ID maps");
      return 125;
    }
  } else {
    (void)c.sys->write_setgroups(
        c, c.userns, kernel::UserNamespace::SetgroupsPolicy::kDeny);
    (void)c.sys->write_uid_map(c, c.userns,
                               kernel::IdMap::single(0, invoker_.cred.euid));
    (void)c.sys->write_gid_map(c, c.userns,
                               kernel::IdMap::single(0, invoker_.cred.egid));
  }
  auto uid_map = c.sys->read_file(c, "/proc/self/uid_map");
  t.line("$ podman unshare cat /proc/self/uid_map");
  if (uid_map.ok()) t.block(*uid_map);
  return 0;
}

const image::ImageConfig* Podman::config(const std::string& tag) const {
  auto it = images_.find(tag);
  return it == images_.end() ? nullptr : &it->second.config;
}

}  // namespace minicon::core
