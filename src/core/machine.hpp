// A simulated host: kernel + root filesystem + /proc + users + shell.
//
// A Machine is one node (laptop, login node, compute node). Machines in a
// cluster share a command registry, a package universe, a registry service,
// and optionally a shared parallel filesystem — but each has its own kernel
// and mount table, like real nodes.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "kernel/kernel.hpp"
#include "kernel/process.hpp"
#include "shell/shell.hpp"
#include "vfs/memfs.hpp"

namespace minicon::core {

// Per-machine memo of materialized base-image states: maps an image
// directory path to the layer-chain key it was extracted from and the Merkle
// snapshot recorded right after extraction. Builders consult it to re-pull a
// base in O(changed) — sync the directory back to the recorded snapshot
// instead of clearing and re-extracting every layer. Lives on the Machine
// (not the builder) so fresh builder instances and both build paths share
// it, the way real per-node storage caches outlive individual CLI runs.
class SnapshotLedger {
 public:
  struct Entry {
    std::string key;  // join of the manifest's layer digests
    vfs::SnapNodePtr snap;
  };

  std::optional<Entry> find(const std::string& dir) const {
    std::lock_guard lock(mu_);
    auto it = entries_.find(dir);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  void record(const std::string& dir, std::string key, vfs::SnapNodePtr snap) {
    std::lock_guard lock(mu_);
    entries_[dir] = Entry{std::move(key), std::move(snap)};
  }

  void forget(const std::string& dir) {
    std::lock_guard lock(mu_);
    entries_.erase(dir);
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
};

struct MachineOptions {
  std::string hostname = "localhost";
  std::string arch = "x86_64";
  // Shared across machines; must outlive the Machine.
  std::shared_ptr<shell::CommandRegistry> registry;
  // Optional shared parallel filesystem and where to mount it.
  vfs::FilesystemPtr shared_fs;
  std::string shared_mountpoint = "/lustre";
  // Which networks this machine can reach. Site resources (license servers,
  // private registries) live on "site"; ephemeral CI VMs only see "wan" —
  // the §2 motivation for building on HPC resources directly.
  std::vector<std::string> networks = {"wan", "site"};
};

class Machine {
 public:
  explicit Machine(MachineOptions options);

  const std::string& hostname() const { return options_.hostname; }
  const std::string& arch() const { return options_.arch; }
  kernel::Kernel& kernel() { return kernel_; }
  shell::Shell& shell() { return *shell_; }
  const std::shared_ptr<shell::CommandRegistry>& registry() const {
    return options_.registry;
  }
  const vfs::FilesystemPtr& host_fs() const { return host_fs_; }
  const kernel::MountNsPtr& host_mountns() const { return host_mountns_; }

  // A root shell process on this machine.
  kernel::Process root_process();

  // Creates an account (+ home dir + subordinate ID ranges) and returns a
  // login process for it.
  Result<kernel::Process> add_user(const std::string& name, vfs::Uid uid);
  Result<kernel::Process> login(const std::string& name);

  // Runs a shell command as `p`; returns its exit status.
  int run(kernel::Process& p, const std::string& script, std::string& out,
          std::string& err);

  // Materialized-base memo shared by every builder on this machine.
  SnapshotLedger& snapshots() { return snapshots_; }

 private:
  void populate_host_proc();

  MachineOptions options_;
  kernel::Kernel kernel_;
  vfs::FilesystemPtr host_fs_;
  vfs::FilesystemPtr proc_fs_;
  kernel::MountNsPtr host_mountns_;
  std::shared_ptr<shell::Shell> shell_;
  SnapshotLedger snapshots_;
};

}  // namespace minicon::core
