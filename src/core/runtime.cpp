#include "core/runtime.hpp"

#include "distro/distro.hpp"
#include "kernel/userdb.hpp"
#include "distro/treebuilder.hpp"

namespace minicon::core {

namespace {

// Builds the container's mount namespace: rootfs at /, plus /proc.
kernel::MountNsPtr container_mounts(Machine& m, const RootFs& rootfs,
                                    const kernel::UserNsPtr& container_ns,
                                    bool fresh_proc,
                                    vfs::Uid container_root_kuid) {
  kernel::Mount root;
  root.mountpoint = "/";
  root.fs = rootfs.fs;
  root.root = rootfs.root != 0 ? rootfs.root : rootfs.fs->root();
  root.owner_ns =
      rootfs.owner_ns != nullptr ? rootfs.owner_ns : m.kernel().init_userns();
  root.source = "rootfs";
  auto ns = kernel::MountNamespace::make(std::move(root));

  kernel::Mount proc;
  proc.mountpoint = "/proc";
  if (fresh_proc) {
    // A fresh procfs inside the namespace: pid 1 is the containerized
    // process, so its entries belong to the container's root (mapped and
    // readable). This is why rootless Podman with helpers behaves like a
    // real root system.
    distro::TreeBuilder pb;
    pb.file("/1/environ", std::string("container=podman\0", 17), 0400,
            container_root_kuid, container_root_kuid);
    pb.file("/1/status", "Name:\tsh\nPid:\t1\n", 0444, container_root_kuid,
            container_root_kuid);
    pb.file("/sys/crypto/fips_enabled", "0\n", 0444);
    pb.file("/sys/kernel/overflowuid", "65534\n", 0444);
    proc.fs = pb.fs();
    proc.root = proc.fs->root();
    proc.owner_ns = container_ns;
    proc.source = "proc";
  } else {
    // Bind the host's /proc: files stay owned by (unmapped) host root, which
    // a single-map namespace displays as nobody — the Fig 5 limitation.
    const kernel::Mount* host_proc = m.host_mountns()->find_exact("/proc");
    if (host_proc != nullptr) {
      proc = *host_proc;
      proc.mountpoint = "/proc";
    }
  }
  if (proc.fs != nullptr) ns->add(std::move(proc));
  return ns;
}

void apply_env(kernel::Process& p, Machine& m,
               const std::map<std::string, std::string>& extra) {
  // Containers share the host's network view (no network namespace here);
  // preserve it across the env reset.
  const std::string networks = p.env_get("MINICON_NETWORKS");
  p.env.clear();
  p.env["PATH"] = distro::kDefaultPath;
  p.env["HOSTNAME"] = m.hostname();
  p.env["MINICON_ARCH"] = m.arch();
  p.env["MINICON_NETWORKS"] = networks;
  p.env["HOME"] = "/root";
  for (const auto& [k, v] : extra) p.env[k] = v;
}

}  // namespace

Result<kernel::Process> enter_type3(Machine& m, const kernel::Process& invoker,
                                    const RootFs& rootfs,
                                    const TypeIIIOptions& options) {
  kernel::Process c = invoker.clone();
  c.sys = m.kernel().syscalls();  // runtimes are separate, unwrapped binaries
  MINICON_TRY(c.sys->unshare_userns(c));

  if (options.kernel_auto_maps) {
    // §6.2.4: the kernel supplies a guaranteed-unique full map, no helpers.
    MINICON_TRY(c.sys->userns_auto_map(c));
  } else {
    // Unprivileged setup: setgroups must be denied before the gid self-map.
    MINICON_TRY(c.sys->write_setgroups(
        c, c.userns, kernel::UserNamespace::SetgroupsPolicy::kDeny));
    const vfs::Uid inside_uid = options.map_to_root ? 0 : invoker.cred.euid;
    const vfs::Gid inside_gid = options.map_to_root ? 0 : invoker.cred.egid;
    MINICON_TRY(c.sys->write_uid_map(
        c, c.userns, kernel::IdMap::single(inside_uid, invoker.cred.euid)));
    MINICON_TRY(c.sys->write_gid_map(
        c, c.userns, kernel::IdMap::single(inside_gid, invoker.cred.egid)));
  }

  c.mountns = container_mounts(m, rootfs, c.userns,
                               /*fresh_proc=*/!options.bind_host_proc,
                               invoker.cred.euid);
  // --bind mounts: resolved in the *host* namespace, attached in the
  // container's. Bind semantics keep the source superblock's owner, so the
  // container's fake root has no extra power over them.
  for (const auto& [src, dst] : options.binds) {
    kernel::Process host = invoker.clone();
    host.sys = m.kernel().syscalls();
    auto sloc = host.sys->resolve(host, src, /*follow_last=*/true);
    if (!sloc.ok()) return sloc.error();
    kernel::Process probe = c;
    auto dloc = probe.sys->resolve(probe, dst, /*follow_last=*/true);
    if (!dloc.ok()) return dloc.error();  // ch-run requires the target dir
    kernel::Mount bind;
    bind.mountpoint = dloc->abs_path;
    bind.fs = sloc->mnt->fs;
    bind.root = sloc->ino;
    bind.owner_ns = sloc->mnt->owner_ns;
    bind.source = sloc->abs_path;
    c.mountns->add(std::move(bind));
  }
  c.cwd = "/";
  apply_env(c, m, options.env);
  return c;
}

Result<kernel::Process> enter_type2(Machine& m, const kernel::Process& invoker,
                                    const RootFs& rootfs,
                                    const TypeIIOptions& options) {
  kernel::Process c = invoker.clone();
  c.sys = m.kernel().syscalls();
  MINICON_TRY(c.sys->unshare_userns(c));

  if (options.use_helpers) {
    // Read the administrator's subordinate ID grants the way Podman does,
    // then have the privileged helpers install the full maps (Fig 4):
    // container root = invoker, container 1..n = the subuid range.
    kernel::Process reader = invoker.clone();
    reader.sys = m.kernel().syscalls();
    auto read_ranges = [&](const std::string& path) {
      auto text = reader.sys->read_file(reader, path);
      return kernel::SubidDb::parse(text.ok() ? *text : "");
    };
    const auto subuid = read_ranges(options.helper_config.subuid_path);
    const auto subgid = read_ranges(options.helper_config.subgid_path);
    const std::string user = invoker.env_get("USER");

    std::vector<kernel::IdMapEntry> uid_entries{{0, invoker.cred.euid, 1}};
    for (const auto& r : subuid.ranges_for(user, invoker.cred.ruid)) {
      uid_entries.push_back(kernel::IdMapEntry{1, r.start, r.count});
      break;  // first range, like the default Podman configuration
    }
    std::vector<kernel::IdMapEntry> gid_entries{{0, invoker.cred.egid, 1}};
    for (const auto& r : subgid.ranges_for(user, invoker.cred.ruid)) {
      gid_entries.push_back(kernel::IdMapEntry{1, r.start, r.count});
      break;
    }
    if (uid_entries.size() < 2 || gid_entries.size() < 2) {
      return Err::eperm;  // no subordinate IDs granted: helpers refuse
    }
    kernel::Process helper_invoker = invoker.clone();
    helper_invoker.sys = m.kernel().syscalls();
    MINICON_TRY(kernel::newuidmap(m.kernel(), helper_invoker, c.userns,
                                  uid_entries, options.helper_config));
    MINICON_TRY(kernel::newgidmap(m.kernel(), helper_invoker, c.userns,
                                  gid_entries, options.helper_config));
    RootFs effective = rootfs;
    if (options.container_owned_storage && effective.owner_ns == nullptr) {
      effective.owner_ns = c.userns;
    }
    c.mountns = container_mounts(m, effective, c.userns, /*fresh_proc=*/true,
                                 invoker.cred.euid);
  } else {
    // Fig 5: no helpers. Single self-map to container root, host /proc.
    MINICON_TRY(c.sys->write_setgroups(
        c, c.userns, kernel::UserNamespace::SetgroupsPolicy::kDeny));
    MINICON_TRY(c.sys->write_uid_map(
        c, c.userns, kernel::IdMap::single(0, invoker.cred.euid)));
    MINICON_TRY(c.sys->write_gid_map(
        c, c.userns, kernel::IdMap::single(0, invoker.cred.egid)));
    c.mountns = container_mounts(m, rootfs, c.userns, /*fresh_proc=*/false,
                                 invoker.cred.euid);
  }
  if (options.ignore_chown_errors) {
    c.sys = std::make_shared<IgnoreChownSyscalls>(c.sys);
  }
  c.cwd = "/";
  apply_env(c, m, options.env);
  return c;
}

Result<kernel::Process> enter_type1(
    Machine& m, const kernel::Process& invoker, const RootFs& rootfs,
    const std::map<std::string, std::string>& env) {
  if (invoker.cred.euid != 0 || !invoker.userns->is_init()) {
    return Err::eperm;  // "access to the docker command is equivalent to root"
  }
  kernel::Process c = invoker.clone();
  c.sys = m.kernel().syscalls();
  c.cred = kernel::Credentials::root();
  c.mountns = container_mounts(m, rootfs, c.userns, /*fresh_proc=*/true, 0);
  c.cwd = "/";
  apply_env(c, m, env);
  return c;
}

// --- IgnoreChownSyscalls -------------------------------------------------------

IgnoreChownSyscalls::IgnoreChownSyscalls(
    std::shared_ptr<kernel::Syscalls> inner)
    : FakerootSyscalls(std::move(inner), nullptr,
                       fakeroot::FakerootOptions{
                           fakeroot::Approach::kPreload, "ignore-chown",
                           false}) {}

Result<vfs::Stat> IgnoreChownSyscalls::stat(kernel::Process& p,
                                            const std::string& path) {
  return interposer_inner()->stat(p, path);
}

Result<vfs::Stat> IgnoreChownSyscalls::lstat(kernel::Process& p,
                                             const std::string& path) {
  return interposer_inner()->lstat(p, path);
}

VoidResult IgnoreChownSyscalls::chown(kernel::Process& p,
                                      const std::string& path, vfs::Uid uid,
                                      vfs::Gid gid, bool follow) {
  auto rc = interposer_inner()->chown(p, path, uid, gid, follow);
  if (!rc.ok() && (rc.error() == Err::eperm || rc.error() == Err::einval)) {
    return {};  // squashed: the file keeps the single available ID
  }
  return rc;
}

VoidResult IgnoreChownSyscalls::mknod(kernel::Process& p,
                                      const std::string& path,
                                      vfs::FileType type, std::uint32_t mode,
                                      std::uint32_t dev_major,
                                      std::uint32_t dev_minor) {
  return interposer_inner()->mknod(p, path, type, mode, dev_major, dev_minor);
}

VoidResult IgnoreChownSyscalls::set_xattr(kernel::Process& p,
                                          const std::string& path,
                                          const std::string& name,
                                          const std::string& value) {
  return interposer_inner()->set_xattr(p, path, name, value);
}

}  // namespace minicon::core
