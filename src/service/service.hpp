// RegistryService: a multi-tenant front end over image::Registry.
//
// The paper's workflow (Fig 6) ends at a shared registry service — GitLab's,
// in Astra's case — that many users push to and whole clusters pull from.
// This models the service half of that story, the part the base registry
// deliberately leaves out:
//
//   * Tenancy + quotas. Every blob is admitted against a per-tenant byte and
//     blob budget, checked under the tenant lock BEFORE any data is stored,
//     so rejection (ENOSPC) is deterministic and free. Quota charges logical
//     bytes, not deduplicated bytes: what a tenant pays never depends on
//     what other tenants happen to have pushed.
//   * Real tag semantics. Tags are an atomic tag -> manifest-digest index
//     per tenant: mutable tags move atomically (optionally compare-and-swap
//     against an expected digest, ESTALE on mismatch), immutable pins can
//     never be retargeted (EPERM), and "name@sha256:..." digest references
//     resolve pinned content directly. Every tag mirrors into the underlying
//     Registry as "<tenant>/<tag>" so cluster launch paths (including P2P)
//     pull service-tagged images unmodified.
//   * Garbage collection. Chunks, chunked-blob records, and manifests the
//     service admitted are reference-counted; a concurrent mark-sweep cycle
//     reclaims what nothing references while pushes/pulls/tag-moves proceed.
//     See "GC protocol" below.
//   * Pull fairness. Each tenant spends bytes from a TokenBucket; an empty
//     bucket rejects with EAGAIN (+ retry hint) rather than queuing, and an
//     inflight-pull bound caps the service's concurrent work — backpressure
//     lives at the client, there is no unbounded waiter line.
//
// GC protocol (epoch + refcount + external mark):
//   Every admitted object (chunk / blob record / manifest) carries a
//   refcount and the service epoch at its last admission. run_gc() takes
//   cutoff = epoch++ and sweeps only objects with refs == 0 AND
//   epoch < cutoff, so anything admitted since the previous cycle began —
//   including a push racing the sweep — survives at least one full cycle
//   even before a manifest references it (the upload-grace window real
//   registries implement with upload expiry). Reachability is eager:
//   tagging a manifest holds a manifest ref, a manifest holds refs on its
//   chunks and blob records; delete-then-repush therefore resurrects
//   cleanly — a re-push re-stamps the epoch and re-inserts whatever a prior
//   sweep removed (content addressing makes resurrection exact; there are
//   no tombstones). Before sweeping chunks, a mark phase walks every
//   manifest tagged directly in the Registry (base images, builder pushes)
//   through the non-billing layer_chunk_refs(materialize=false) walk, so
//   shared chunks the service did not admit alone are never reclaimed out
//   from under registry tags — and the mark never inflates any tenant's
//   bytes_served. Whole blobs and Merkle tree nodes are never swept.
//
// Locking: tenant state, the manifest table, the blob table, and each chunk
// shard have independent mutexes, never held together; the chunk sweep
// nests the ChunkStore shard lock under the service shard lock (one
// direction only). run_gc() serializes cycles on gc_mu_.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "image/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "support/result.hpp"
#include "support/tokenbucket.hpp"

namespace minicon::support {
class ThreadPool;
}
namespace minicon::shell {
class CommandRegistry;
}

namespace minicon::service {

struct Quota {
  // Logical bytes a tenant may hold (pushed blobs + adopted images).
  std::uint64_t max_bytes = UINT64_MAX;
  // Blob/layer count budget.
  std::uint64_t max_blobs = UINT64_MAX;
  // Pull fairness: bytes/second refill and bucket capacity. rate <= 0
  // disables throttling; burst <= 0 defaults to one second of rate.
  double pull_rate_bytes_per_sec = 0;
  double pull_burst_bytes = 0;
  // Concurrent pulls in flight before EAGAIN (bounded work, no queue).
  std::uint32_t max_inflight_pulls = 4096;
};

struct TenantStats {
  std::uint64_t bytes_used = 0;   // logical bytes admitted against quota
  std::uint64_t blobs = 0;        // blobs/layers admitted against quota
  std::uint64_t tags = 0;
  std::uint64_t pushes = 0;
  std::uint64_t pulls = 0;
  std::uint64_t bytes_pushed = 0;  // logical bytes of accepted pushes
  std::uint64_t bytes_served = 0;  // content bytes handed to this tenant
  std::uint64_t quota_rejections = 0;
  std::uint64_t throttled = 0;     // pulls rejected by bucket or inflight cap
};

// One cycle's outcome (and, via RegistryService::gc_stats, running totals).
struct GcStats {
  std::uint64_t cycles = 0;
  std::uint64_t reclaimed_chunks = 0;
  std::uint64_t reclaimed_bytes = 0;
  std::uint64_t reclaimed_manifests = 0;
  std::uint64_t reclaimed_blobs = 0;  // chunked-blob records dropped
  std::uint64_t marked_chunks = 0;    // externally-referenced chunks spared
  double pause_us = 0;   // longest mutator-blocking critical section
  double cycle_us = 0;   // whole cycle wall time
};

enum class TagMode {
  kMutable,    // create or atomically retarget
  kImmutable,  // create-only pin; retarget and re-create both fail
};

struct PushReceipt {
  std::string digest;        // chunked-blob digest, usable in manifest layers
  std::uint64_t size = 0;     // logical bytes (what quota charged)
  std::uint64_t new_bytes = 0;  // bytes that actually transferred (dedup)
};

struct PullResult {
  image::Manifest manifest;
  std::uint64_t bytes = 0;  // content bytes served (billed to the tenant)
};

class RegistryService {
 public:
  // `registry` is borrowed and must outlive the service. `pool` parallelizes
  // chunk digesting on pushes (null = serial). `metrics` defaults to
  // obs::global_metrics(). `bucket_clock` drives token-bucket refill
  // (injectable for deterministic throttle tests; null = steady_clock).
  explicit RegistryService(image::Registry& registry,
                           support::ThreadPool* pool = nullptr,
                           obs::MetricsRegistry* metrics = nullptr,
                           support::TokenBucket::Clock bucket_clock = {});

  // --- Tenancy ----------------------------------------------------------
  // EEXIST if the tenant exists; EINVAL for empty names or names with '/'.
  VoidResult create_tenant(const std::string& tenant, Quota quota);
  std::vector<std::string> tenants() const;
  Result<Quota> tenant_quota(const std::string& tenant) const;
  Result<TenantStats> tenant_stats(const std::string& tenant) const;

  // --- Push -------------------------------------------------------------
  // Admission (quota) happens before any byte is stored; rejection is
  // ENOSPC and deterministic. Accepted data is chunk-deduplicated into the
  // registry and enters the GC refcount table with refs == 0 — it survives
  // at least one full GC cycle awaiting its manifest.
  Result<PushReceipt> push_blob(const std::string& tenant,
                                std::string_view data);
  // Registers a manifest whose layers are already resident (service pushes,
  // registry trees, or whole blobs); returns its digest for tagging.
  // ENOENT when a layer — or a chunk a prior sweep reclaimed whose source is
  // gone — cannot be materialized; the caller re-pushes. Idempotent.
  Result<std::string> put_manifest(const std::string& tenant,
                                   const image::Manifest& m);
  // Admits an image already tagged in the underlying registry (a base image
  // or builder push) into the tenant: charges quota for its content, then
  // put_manifest. Returns the manifest digest; the caller tags it.
  Result<std::string> adopt_image(const std::string& tenant,
                                  const std::string& reference);

  // --- Tags -------------------------------------------------------------
  // Tag names are free-form ("app:latest"). ENOENT if the digest names no
  // registered manifest. Conflicts: retargeting an immutable pin -> EPERM;
  // creating kImmutable over an existing tag -> EEXIST.
  VoidResult tag(const std::string& tenant, const std::string& name,
                 const std::string& digest, TagMode mode = TagMode::kMutable);
  // Compare-and-swap retarget: fails ESTALE when the tag no longer points
  // at `expected_digest` (a concurrent writer won), EPERM on pins.
  VoidResult retarget(const std::string& tenant, const std::string& name,
                      const std::string& new_digest,
                      const std::string& expected_digest);
  // Deleting is allowed even for pins — immutability constrains where a
  // name points, not whether the name exists. The content becomes
  // GC-reclaimable once nothing else references it.
  VoidResult delete_tag(const std::string& tenant, const std::string& name);
  // `reference` is a tag name or "<anything>@<digest>" for pinned pulls.
  Result<std::string> resolve(const std::string& tenant,
                              const std::string& reference) const;

  // --- Pull -------------------------------------------------------------
  // Resolves, spends (size) tokens from the tenant's bucket, then serves
  // every layer through the billing read path. EAGAIN = throttled (consult
  // pull_retry_after), ENOENT = no such tag/manifest.
  Result<PullResult> pull(const std::string& tenant,
                          const std::string& reference);
  // Retry hint after an EAGAIN: how long until the bucket could cover the
  // referenced image, assuming no other spender. Zero if unknown reference.
  std::chrono::microseconds pull_retry_after(const std::string& tenant,
                                             const std::string& reference);

  // --- GC ---------------------------------------------------------------
  // One concurrent mark-sweep cycle; safe alongside pushes/pulls/tag moves.
  // Returns that cycle's stats. Note the grace rule: objects admitted since
  // the previous cycle began are never reclaimed by this one, so a
  // delete-then-gc test observes reclamation on the SECOND cycle after the
  // last admission.
  GcStats run_gc();
  // Running totals across cycles (cycles, reclaimed_*) with the last
  // cycle's pause/cycle times and mark count.
  GcStats gc_stats() const;
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  // --- SLO windows ------------------------------------------------------
  // Rolling one-minute latency windows over push/pull (threshold 10 ms,
  // objective 99%): windowed quantiles decay as traffic ages out, and
  // burn_rate > 1 means the service is overspending its error budget. The
  // cumulative service.*_latency_us histograms keep the all-time view.
  obs::SloWindow::Report push_slo() const { return push_slo_.report(); }
  obs::SloWindow::Report pull_slo() const { return pull_slo_.report(); }

  // The underlying-registry reference a tenant tag mirrors to
  // ("<tenant>/<tag>"): what cluster launches pull.
  static std::string mirror_reference(const std::string& tenant,
                                      const std::string& tag);

  image::Registry& registry() { return reg_; }

 private:
  struct TagEntry {
    std::string digest;
    bool immutable = false;
  };
  struct Tenant {
    std::string name;
    Quota quota;
    mutable std::mutex mu;  // guards stats + tags
    TenantStats stats;
    std::map<std::string, TagEntry> tags;
    std::unique_ptr<support::TokenBucket> bucket;
    std::atomic<std::uint32_t> inflight{0};
    // Metric mirrors, resolved once at create_tenant (service.<name>.*).
    obs::Counter* pushes_m = nullptr;
    obs::Counter* pulls_m = nullptr;
    obs::Counter* bytes_pushed_m = nullptr;
    obs::Counter* bytes_served_m = nullptr;
    obs::Counter* rejected_m = nullptr;
    obs::Counter* throttled_m = nullptr;
    obs::Gauge* bytes_used_m = nullptr;
    obs::Gauge* tags_m = nullptr;
  };
  struct ChunkEntry {
    std::uint64_t refs = 0;   // manifests referencing this chunk
    std::uint64_t epoch = 0;  // service epoch at last admission
    std::uint64_t size = 0;
  };
  struct ChunkShard {
    mutable std::mutex mu;
    std::unordered_map<std::string, ChunkEntry> chunks;
  };
  struct BlobEntry {
    std::uint64_t refs = 0;  // manifests with this blob as a layer
    std::uint64_t epoch = 0;
    std::uint64_t size = 0;
  };
  struct ManifestEntry {
    image::Manifest manifest;
    std::vector<std::string> chunks;        // unique chunk digests
    std::vector<std::uint64_t> chunk_sizes;  // parallel to `chunks`
    std::uint64_t bytes = 0;  // content bytes (duplicates kept)
    std::uint64_t refs = 0;   // tags pointing here
    std::uint64_t epoch = 0;
  };
  static constexpr std::size_t kChunkShards = 16;

  Tenant* find_tenant(const std::string& tenant) const;
  ChunkShard& shard_for(const std::string& digest) const;
  // Collect per-layer chunk refs (materializing) + manifest byte size.
  Result<ManifestEntry> build_manifest_entry(const image::Manifest& m);
  // refs-- on `entry`'s chunks and blob layers (manifest sweep / rollback).
  void release_manifest_refs(const ManifestEntry& entry);
  void mirror_tag(const Tenant& t, const std::string& name,
                  const std::string& digest);

  image::Registry& reg_;
  support::ThreadPool* pool_;
  obs::MetricsRegistry* metrics_;
  support::TokenBucket::Clock bucket_clock_;

  mutable std::mutex tenants_mu_;
  // unique_ptr keeps Tenant* stable; tenants are never erased.
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;

  mutable std::vector<ChunkShard> chunk_shards_;

  mutable std::mutex blobs_mu_;
  std::unordered_map<std::string, BlobEntry> blobs_;

  mutable std::mutex manifests_mu_;
  std::unordered_map<std::string, ManifestEntry> manifests_;

  std::atomic<std::uint64_t> epoch_{0};
  std::mutex gc_mu_;  // serializes GC cycles
  mutable std::mutex gc_stats_mu_;
  GcStats gc_totals_;

  std::atomic<std::uint64_t> bytes_served_{0};

  // Global metric mirrors (service.*), resolved once in the constructor.
  obs::Counter* pushes_m_;
  obs::Counter* pulls_m_;
  obs::Counter* bytes_served_m_;
  obs::Counter* rejected_m_;
  obs::Counter* throttled_m_;
  obs::Gauge* queue_depth_m_;
  obs::Gauge* tenants_m_;
  obs::Counter* gc_cycles_m_;
  obs::Counter* gc_reclaimed_bytes_m_;
  obs::Counter* gc_reclaimed_chunks_m_;
  obs::Counter* gc_reclaimed_manifests_m_;
  obs::Histogram* gc_pause_us_m_;
  obs::Histogram* push_latency_us_m_;
  obs::Histogram* pull_latency_us_m_;
  obs::SloWindow push_slo_;
  obs::SloWindow pull_slo_;
};

using RegistryServicePtr = std::shared_ptr<RegistryService>;

// Registers the `service` shell builtin: per-tenant usage, quota headroom,
// tag count, and last-GC stats (the build-cache reporting idiom).
void register_service_command(shell::CommandRegistry& reg,
                              RegistryServicePtr service);

}  // namespace minicon::service
