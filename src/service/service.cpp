#include "service/service.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "obs/flightrec.hpp"
#include "support/threadpool.hpp"
#include "vfs/snapshot.hpp"

namespace minicon::service {

namespace {

// Latency bounds for push/pull/GC-pause histograms: the default µs decades
// top out at 10 ms, too short for a contended 10k-client sweep.
std::vector<double> wide_latency_bounds_us() {
  return {1,    2,     5,     10,    20,    50,     100,    200,
          500,  1000,  2000,  5000,  10000, 20000,  50000,  100000,
          200000, 500000, 1000000};
}

// One-minute rolling SLO: 99% of operations at or under 10 ms.
obs::SloWindow::Options slo_options() {
  obs::SloWindow::Options o;
  o.bounds = wide_latency_bounds_us();
  o.threshold_us = 10000;
  o.objective = 0.99;
  return o;
}

double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

struct ScopeExit {
  std::function<void()> fn;
  ~ScopeExit() {
    if (fn) fn();
  }
};

}  // namespace

RegistryService::RegistryService(image::Registry& registry,
                                 support::ThreadPool* pool,
                                 obs::MetricsRegistry* metrics,
                                 support::TokenBucket::Clock bucket_clock)
    : reg_(registry),
      pool_(pool),
      metrics_(metrics != nullptr ? metrics : &obs::global_metrics()),
      bucket_clock_(std::move(bucket_clock)),
      chunk_shards_(kChunkShards),
      push_slo_(slo_options()),
      pull_slo_(slo_options()) {
  pushes_m_ = &metrics_->counter("service.pushes");
  pulls_m_ = &metrics_->counter("service.pulls");
  bytes_served_m_ = &metrics_->counter("service.bytes_served");
  rejected_m_ = &metrics_->counter("service.admission_rejected");
  throttled_m_ = &metrics_->counter("service.throttled");
  queue_depth_m_ = &metrics_->gauge("service.queue_depth");
  tenants_m_ = &metrics_->gauge("service.tenants");
  gc_cycles_m_ = &metrics_->counter("service.gc.cycles");
  gc_reclaimed_bytes_m_ = &metrics_->counter("service.gc.reclaimed_bytes");
  gc_reclaimed_chunks_m_ = &metrics_->counter("service.gc.reclaimed_chunks");
  gc_reclaimed_manifests_m_ =
      &metrics_->counter("service.gc.reclaimed_manifests");
  gc_pause_us_m_ =
      &metrics_->histogram("service.gc.pause_us", wide_latency_bounds_us());
  push_latency_us_m_ =
      &metrics_->histogram("service.push_latency_us", wide_latency_bounds_us());
  pull_latency_us_m_ =
      &metrics_->histogram("service.pull_latency_us", wide_latency_bounds_us());
}

std::string RegistryService::mirror_reference(const std::string& tenant,
                                              const std::string& tag) {
  return tenant + "/" + tag;
}

RegistryService::ChunkShard& RegistryService::shard_for(
    const std::string& digest) const {
  return chunk_shards_[std::hash<std::string>{}(digest) % kChunkShards];
}

RegistryService::Tenant* RegistryService::find_tenant(
    const std::string& tenant) const {
  std::lock_guard lock(tenants_mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second.get();
}

VoidResult RegistryService::create_tenant(const std::string& tenant,
                                          Quota quota) {
  if (tenant.empty() || tenant.find('/') != std::string::npos) {
    return Err::einval;
  }
  auto t = std::make_unique<Tenant>();
  t->name = tenant;
  t->quota = quota;
  const double rate = quota.pull_rate_bytes_per_sec;
  const double burst = quota.pull_burst_bytes > 0 ? quota.pull_burst_bytes
                       : rate > 0                 ? rate
                                                 : 0;
  t->bucket = std::make_unique<support::TokenBucket>(rate, burst,
                                                     bucket_clock_);
  const std::string prefix = "service." + tenant + ".";
  t->pushes_m = &metrics_->counter(prefix + "pushes");
  t->pulls_m = &metrics_->counter(prefix + "pulls");
  t->bytes_pushed_m = &metrics_->counter(prefix + "bytes_pushed");
  t->bytes_served_m = &metrics_->counter(prefix + "bytes_served");
  t->rejected_m = &metrics_->counter(prefix + "quota_rejections");
  t->throttled_m = &metrics_->counter(prefix + "throttled");
  t->bytes_used_m = &metrics_->gauge(prefix + "bytes_used");
  t->tags_m = &metrics_->gauge(prefix + "tags");

  std::lock_guard lock(tenants_mu_);
  auto [it, inserted] = tenants_.try_emplace(tenant, std::move(t));
  if (!inserted) return Err::eexist;
  tenants_m_->set(static_cast<std::int64_t>(tenants_.size()));
  return {};
}

std::vector<std::string> RegistryService::tenants() const {
  std::vector<std::string> out;
  std::lock_guard lock(tenants_mu_);
  out.reserve(tenants_.size());
  for (const auto& [name, t] : tenants_) out.push_back(name);
  return out;
}

Result<Quota> RegistryService::tenant_quota(const std::string& tenant) const {
  Tenant* t = find_tenant(tenant);
  if (t == nullptr) return Err::enoent;
  return t->quota;
}

Result<TenantStats> RegistryService::tenant_stats(
    const std::string& tenant) const {
  Tenant* t = find_tenant(tenant);
  if (t == nullptr) return Err::enoent;
  std::lock_guard lock(t->mu);
  TenantStats s = t->stats;
  s.tags = t->tags.size();
  return s;
}

Result<PushReceipt> RegistryService::push_blob(const std::string& tenant,
                                               std::string_view data) {
  const auto t0 = std::chrono::steady_clock::now();
  Tenant* t = find_tenant(tenant);
  if (t == nullptr) return Err::enoent;

  const std::uint64_t size = data.size();
  {
    // Admission under the tenant lock, before any byte is stored: two
    // concurrent pushers cannot both squeeze through the same headroom, and
    // a rejected push costs the service nothing.
    std::lock_guard lock(t->mu);
    if (t->stats.bytes_used + size > t->quota.max_bytes ||
        t->stats.blobs + 1 > t->quota.max_blobs) {
      ++t->stats.quota_rejections;
      t->rejected_m->add();
      rejected_m_->add();
      if (obs::FlightRecorder& rec = obs::global_flight_recorder();
          rec.enabled()) {
        rec.record(obs::FlightKind::kQuotaRejected, tenant,
                   err_value(Err::enospc), size);
      }
      return Err::enospc;
    }
    t->stats.bytes_used += size;
    ++t->stats.blobs;
    ++t->stats.pushes;
    t->stats.bytes_pushed += size;
    t->pushes_m->add();
    t->bytes_pushed_m->add(size);
    t->bytes_used_m->set(static_cast<std::int64_t>(t->stats.bytes_used));
  }
  pushes_m_->add();

  const image::ChunkedBlob blob = reg_.put_blob_chunked(data, pool_);

  // Admit every chunk and the blob record into the GC tables, stamped with
  // the current epoch (refcounts unchanged — references come from
  // manifests). A sweep racing this push cannot reclaim them: its cutoff
  // predates this epoch value.
  const std::uint64_t now_epoch = epoch_.load(std::memory_order_relaxed);
  const std::size_t cs = reg_.chunks().chunk_size();
  for (std::size_t i = 0; i < blob.chunks.size(); ++i) {
    const std::uint64_t chunk_size =
        std::min<std::uint64_t>(cs, size - static_cast<std::uint64_t>(i) * cs);
    ChunkShard& shard = shard_for(blob.chunks[i]);
    std::lock_guard lock(shard.mu);
    ChunkEntry& e = shard.chunks[blob.chunks[i]];
    e.epoch = now_epoch;
    e.size = chunk_size;
  }
  {
    std::lock_guard lock(blobs_mu_);
    BlobEntry& e = blobs_[blob.digest];
    e.epoch = now_epoch;
    e.size = blob.size;
  }

  const double took = elapsed_us(t0);
  push_latency_us_m_->observe(took);
  push_slo_.observe(took);
  return PushReceipt{blob.digest, blob.size, blob.new_bytes};
}

Result<RegistryService::ManifestEntry> RegistryService::build_manifest_entry(
    const image::Manifest& m) {
  ManifestEntry entry;
  entry.manifest = m;
  std::unordered_set<std::string> seen;
  for (const std::string& layer : m.layers) {
    auto refs = reg_.layer_chunk_refs(layer, /*materialize=*/true);
    if (!refs.ok()) return refs.error();
    for (const image::Registry::ChunkRef& r : *refs) {
      entry.bytes += r.size;
      if (seen.insert(r.digest).second) {
        entry.chunks.push_back(r.digest);
        entry.chunk_sizes.push_back(r.size);
      }
    }
  }
  return entry;
}

void RegistryService::release_manifest_refs(const ManifestEntry& entry) {
  for (const std::string& d : entry.chunks) {
    ChunkShard& shard = shard_for(d);
    std::lock_guard lock(shard.mu);
    auto it = shard.chunks.find(d);
    if (it != shard.chunks.end() && it->second.refs > 0) --it->second.refs;
  }
  std::lock_guard lock(blobs_mu_);
  for (const std::string& layer : entry.manifest.layers) {
    auto it = blobs_.find(layer);
    if (it != blobs_.end() && it->second.refs > 0) --it->second.refs;
  }
}

Result<std::string> RegistryService::put_manifest(const std::string& tenant,
                                                  const image::Manifest& m) {
  Tenant* t = find_tenant(tenant);
  if (t == nullptr) return Err::enoent;

  auto built = build_manifest_entry(m);
  if (!built.ok()) return built.error();
  ManifestEntry entry = std::move(*built);
  const std::string digest = m.digest();

  {
    std::lock_guard lock(manifests_mu_);
    entry.epoch = epoch_.load(std::memory_order_relaxed);
    auto [it, inserted] = manifests_.try_emplace(digest, entry);
    if (!inserted) {
      // Idempotent re-put: the existing entry already holds its chunk/blob
      // refs; re-stamping the epoch renews the grace window (resurrection
      // after delete — refcount wins, there is no tombstone).
      it->second.epoch = entry.epoch;
      return digest;
    }
  }

  // Take chunk + blob references BEFORE re-verifying presence: once refs are
  // positive no sweep can touch these digests, so a single re-materialize
  // below is race-free.
  for (std::size_t i = 0; i < entry.chunks.size(); ++i) {
    ChunkShard& shard = shard_for(entry.chunks[i]);
    std::lock_guard lock(shard.mu);
    ChunkEntry& e = shard.chunks[entry.chunks[i]];
    ++e.refs;
    e.epoch = entry.epoch;
    e.size = entry.chunk_sizes[i];
  }
  {
    std::lock_guard lock(blobs_mu_);
    for (const std::string& layer : entry.manifest.layers) {
      auto it = blobs_.find(layer);
      if (it != blobs_.end()) ++it->second.refs;
    }
  }

  // A sweep may have reclaimed a chunk between materialization and the
  // ref-take above. Presence is re-checked and repaired exactly once; a
  // repair that still cannot materialize (the source itself was swept)
  // rolls everything back — the ENOENT tells the caller to re-push, the
  // same answer a real registry gives a manifest PUT for an expired upload.
  bool missing = false;
  for (const std::string& d : entry.chunks) {
    if (!reg_.chunks().has_chunk(d)) {
      missing = true;
      break;
    }
  }
  if (missing) {
    bool repaired = true;
    for (const std::string& layer : entry.manifest.layers) {
      auto refs = reg_.layer_chunk_refs(layer, /*materialize=*/true);
      if (!refs.ok()) {
        repaired = false;
        break;
      }
    }
    if (repaired) {
      for (const std::string& d : entry.chunks) {
        if (!reg_.chunks().has_chunk(d)) {
          repaired = false;
          break;
        }
      }
    }
    if (!repaired) {
      release_manifest_refs(entry);
      std::lock_guard lock(manifests_mu_);
      auto it = manifests_.find(digest);
      if (it != manifests_.end() && it->second.refs == 0) manifests_.erase(it);
      return Err::enoent;
    }
  }
  return digest;
}

Result<std::string> RegistryService::adopt_image(const std::string& tenant,
                                                 const std::string& reference) {
  Tenant* t = find_tenant(tenant);
  if (t == nullptr) return Err::enoent;
  auto mf = reg_.get_manifest(reference);
  if (!mf.has_value()) return Err::enoent;

  // Pure metadata walk for the quota charge: adopting must not bill
  // bytes_served or store anything before admission passes.
  std::uint64_t bytes = 0;
  for (const std::string& layer : mf->layers) {
    auto refs = reg_.layer_chunk_refs(layer, /*materialize=*/false);
    if (!refs.ok()) return refs.error();
    for (const image::Registry::ChunkRef& r : *refs) bytes += r.size;
  }
  const std::uint64_t blobs = mf->layers.size();
  {
    std::lock_guard lock(t->mu);
    if (t->stats.bytes_used + bytes > t->quota.max_bytes ||
        t->stats.blobs + blobs > t->quota.max_blobs) {
      ++t->stats.quota_rejections;
      t->rejected_m->add();
      rejected_m_->add();
      if (obs::FlightRecorder& rec = obs::global_flight_recorder();
          rec.enabled()) {
        rec.record(obs::FlightKind::kQuotaRejected, tenant,
                   err_value(Err::enospc), bytes);
      }
      return Err::enospc;
    }
    t->stats.bytes_used += bytes;
    t->stats.blobs += blobs;
    t->bytes_used_m->set(static_cast<std::int64_t>(t->stats.bytes_used));
  }

  auto digest = put_manifest(tenant, *mf);
  if (!digest.ok()) {
    std::lock_guard lock(t->mu);
    t->stats.bytes_used -= bytes;
    t->stats.blobs -= blobs;
    t->bytes_used_m->set(static_cast<std::int64_t>(t->stats.bytes_used));
    return digest.error();
  }
  return digest;
}

void RegistryService::mirror_tag(const Tenant& t, const std::string& name,
                                 const std::string& digest) {
  image::Manifest copy;
  {
    std::lock_guard lock(manifests_mu_);
    auto it = manifests_.find(digest);
    if (it == manifests_.end()) return;
    copy = it->second.manifest;
  }
  copy.reference = mirror_reference(t.name, name);
  reg_.put_manifest(copy);
}

VoidResult RegistryService::tag(const std::string& tenant,
                                const std::string& name,
                                const std::string& digest, TagMode mode) {
  if (name.empty()) return Err::einval;
  Tenant* t = find_tenant(tenant);
  if (t == nullptr) return Err::enoent;

  // Take the new manifest's tag reference first; undone on conflict. This
  // ordering means the manifest can never be swept between the existence
  // check and the tag landing.
  {
    std::lock_guard lock(manifests_mu_);
    auto it = manifests_.find(digest);
    if (it == manifests_.end()) return Err::enoent;
    ++it->second.refs;
  }

  std::string old_digest;
  Err conflict = Err::none;
  {
    std::lock_guard lock(t->mu);
    auto it = t->tags.find(name);
    if (it != t->tags.end()) {
      if (it->second.immutable) {
        conflict = Err::eperm;  // pins never retarget
      } else if (mode == TagMode::kImmutable) {
        conflict = Err::eexist;  // pins are create-only
      } else {
        old_digest = it->second.digest;
        it->second.digest = digest;
      }
    } else {
      t->tags.emplace(name, TagEntry{digest, mode == TagMode::kImmutable});
      t->tags_m->set(static_cast<std::int64_t>(t->tags.size()));
    }
    if (conflict == Err::none) mirror_tag(*t, name, digest);
  }
  if (conflict != Err::none) {
    std::lock_guard lock(manifests_mu_);
    auto it = manifests_.find(digest);
    if (it != manifests_.end() && it->second.refs > 0) --it->second.refs;
    return conflict;
  }
  // A moved tag transfers to the reference taken above; release the one the
  // old target held (also when old == new — the net must stay at one ref).
  if (!old_digest.empty()) {
    std::lock_guard lock(manifests_mu_);
    auto it = manifests_.find(old_digest);
    if (it != manifests_.end() && it->second.refs > 0) --it->second.refs;
  }
  return {};
}

VoidResult RegistryService::retarget(const std::string& tenant,
                                     const std::string& name,
                                     const std::string& new_digest,
                                     const std::string& expected_digest) {
  Tenant* t = find_tenant(tenant);
  if (t == nullptr) return Err::enoent;
  {
    std::lock_guard lock(manifests_mu_);
    auto it = manifests_.find(new_digest);
    if (it == manifests_.end()) return Err::enoent;
    ++it->second.refs;
  }

  std::string old_digest;
  Err conflict = Err::none;
  {
    std::lock_guard lock(t->mu);
    auto it = t->tags.find(name);
    if (it == t->tags.end()) {
      conflict = Err::enoent;
    } else if (it->second.immutable) {
      conflict = Err::eperm;
    } else if (it->second.digest != expected_digest) {
      conflict = Err::estale;  // a concurrent writer moved the tag first
    } else {
      old_digest = it->second.digest;
      it->second.digest = new_digest;
      mirror_tag(*t, name, new_digest);
    }
  }
  if (conflict != Err::none) {
    std::lock_guard lock(manifests_mu_);
    auto it = manifests_.find(new_digest);
    if (it != manifests_.end() && it->second.refs > 0) --it->second.refs;
    return conflict;
  }
  if (!old_digest.empty()) {
    std::lock_guard lock(manifests_mu_);
    auto it = manifests_.find(old_digest);
    if (it != manifests_.end() && it->second.refs > 0) --it->second.refs;
  }
  return {};
}

VoidResult RegistryService::delete_tag(const std::string& tenant,
                                       const std::string& name) {
  Tenant* t = find_tenant(tenant);
  if (t == nullptr) return Err::enoent;
  std::string old_digest;
  {
    std::lock_guard lock(t->mu);
    auto it = t->tags.find(name);
    if (it == t->tags.end()) return Err::enoent;
    old_digest = it->second.digest;
    t->tags.erase(it);
    t->tags_m->set(static_cast<std::int64_t>(t->tags.size()));
    reg_.delete_manifest(mirror_reference(t->name, name));
  }
  std::lock_guard lock(manifests_mu_);
  auto it = manifests_.find(old_digest);
  if (it != manifests_.end() && it->second.refs > 0) --it->second.refs;
  return {};
}

Result<std::string> RegistryService::resolve(const std::string& tenant,
                                             const std::string& reference) const {
  Tenant* t = find_tenant(tenant);
  if (t == nullptr) return Err::enoent;
  const std::size_t at = reference.find('@');
  if (at != std::string::npos) {
    // Digest reference: "<name>@sha256:..." — pinned, tag table not
    // consulted, but the manifest must be registered with the service.
    const std::string digest = reference.substr(at + 1);
    std::lock_guard lock(manifests_mu_);
    if (manifests_.find(digest) == manifests_.end()) return Err::enoent;
    return digest;
  }
  std::lock_guard lock(t->mu);
  auto it = t->tags.find(reference);
  if (it == t->tags.end()) return Err::enoent;
  return it->second.digest;
}

Result<PullResult> RegistryService::pull(const std::string& tenant,
                                         const std::string& reference) {
  const auto t0 = std::chrono::steady_clock::now();
  Tenant* t = find_tenant(tenant);
  if (t == nullptr) return Err::enoent;

  auto digest = resolve(tenant, reference);
  if (!digest.ok()) return digest.error();

  image::Manifest mf;
  std::uint64_t bytes = 0;
  {
    std::lock_guard lock(manifests_mu_);
    auto it = manifests_.find(*digest);
    if (it == manifests_.end()) return Err::enoent;
    mf = it->second.manifest;
    bytes = it->second.bytes;
  }

  t->inflight.fetch_add(1, std::memory_order_relaxed);
  queue_depth_m_->add(1);
  ScopeExit depth{[&] {
    t->inflight.fetch_sub(1, std::memory_order_relaxed);
    queue_depth_m_->add(-1);
  }};

  auto throttle = [&]() -> Err {
    std::lock_guard lock(t->mu);
    ++t->stats.throttled;
    t->throttled_m->add();
    throttled_m_->add();
    if (obs::FlightRecorder& rec = obs::global_flight_recorder();
        rec.enabled()) {
      rec.record(obs::FlightKind::kThrottled, tenant, err_value(Err::eagain),
                 bytes);
    }
    return Err::eagain;
  };
  if (t->inflight.load(std::memory_order_relaxed) >
      t->quota.max_inflight_pulls) {
    return throttle();
  }
  // Spend the whole image's bytes from the fairness bucket up front; an
  // empty bucket rejects (backpressure at the client) instead of queuing.
  if (!t->bucket->try_acquire(static_cast<double>(bytes))) {
    return throttle();
  }

  // Serve every layer through the BILLING read path — this is the service
  // handing content over the wire, unlike the GC mark walk.
  std::uint64_t served = 0;
  for (const std::string& layer : mf.layers) {
    if (image::Registry::is_tree_digest(layer)) {
      vfs::SnapNodePtr tree = reg_.get_tree(layer);
      if (tree == nullptr) return Err::enoent;
      served += tree->tree_bytes;
    } else {
      std::shared_ptr<const std::string> blob = reg_.get_blob_ref(layer);
      if (blob == nullptr) return Err::enoent;
      served += blob->size();
    }
  }

  {
    std::lock_guard lock(t->mu);
    ++t->stats.pulls;
    t->stats.bytes_served += served;
    t->pulls_m->add();
    t->bytes_served_m->add(served);
  }
  pulls_m_->add();
  bytes_served_m_->add(served);
  bytes_served_.fetch_add(served, std::memory_order_relaxed);
  const double took = elapsed_us(t0);
  pull_latency_us_m_->observe(took);
  pull_slo_.observe(took);
  return PullResult{std::move(mf), served};
}

std::chrono::microseconds RegistryService::pull_retry_after(
    const std::string& tenant, const std::string& reference) {
  Tenant* t = find_tenant(tenant);
  if (t == nullptr) return std::chrono::microseconds::zero();
  auto digest = resolve(tenant, reference);
  if (!digest.ok()) return std::chrono::microseconds::zero();
  std::uint64_t bytes = 0;
  {
    std::lock_guard lock(manifests_mu_);
    auto it = manifests_.find(*digest);
    if (it == manifests_.end()) return std::chrono::microseconds::zero();
    bytes = it->second.bytes;
  }
  return t->bucket->retry_after(static_cast<double>(bytes));
}

GcStats RegistryService::run_gc() {
  std::lock_guard gc_lock(gc_mu_);
  const auto cycle_t0 = std::chrono::steady_clock::now();
  GcStats cycle;

  // cutoff is the PREVIOUS epoch value: anything admitted at or after it —
  // including admissions racing this cycle — is inside the grace window.
  const std::uint64_t cutoff =
      epoch_.fetch_add(1, std::memory_order_relaxed);

  // Mark: chunks reachable from manifests tagged directly in the registry
  // (base images, builder pushes, service tag mirrors). The walk is pure
  // metadata — nothing stored, nothing billed.
  std::unordered_set<std::string> marked;
  for (const image::Manifest& m : reg_.all_manifests()) {
    for (const std::string& layer : m.layers) {
      auto refs = reg_.layer_chunk_refs(layer, /*materialize=*/false);
      if (!refs.ok()) continue;  // unenumerable layer holds no chunks
      for (const image::Registry::ChunkRef& r : *refs) marked.insert(r.digest);
    }
  }
  cycle.marked_chunks = marked.size();

  // Manifest sweep. The manifests_mu_ hold is the cycle's only contention
  // with the tag/put hot path, so its duration is what we report as the GC
  // pause.
  std::vector<ManifestEntry> dead_manifests;
  {
    const auto pause_t0 = std::chrono::steady_clock::now();
    std::lock_guard lock(manifests_mu_);
    for (auto it = manifests_.begin(); it != manifests_.end();) {
      if (it->second.refs == 0 && it->second.epoch < cutoff) {
        dead_manifests.push_back(std::move(it->second));
        it = manifests_.erase(it);
      } else {
        ++it;
      }
    }
    cycle.pause_us = elapsed_us(pause_t0);
  }
  for (const ManifestEntry& entry : dead_manifests) {
    release_manifest_refs(entry);
  }
  cycle.reclaimed_manifests = dead_manifests.size();

  // Blob-record sweep: forget chunked-blob indexes nothing references. The
  // chunk data itself falls to the chunk sweep below; a re-push of the same
  // content rebuilds the record bit-for-bit.
  std::vector<std::string> dead_blobs;
  {
    std::lock_guard lock(blobs_mu_);
    for (auto it = blobs_.begin(); it != blobs_.end();) {
      if (it->second.refs == 0 && it->second.epoch < cutoff) {
        dead_blobs.push_back(it->first);
        it = blobs_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const std::string& d : dead_blobs) reg_.drop_chunked(d);
  cycle.reclaimed_blobs = dead_blobs.size();

  // Chunk sweep: unreferenced, out of grace, and not marked by any
  // registry-level tag. The store removal happens under the service shard
  // lock — the same lock put_manifest takes refs under — so a concurrent
  // ref-take and this reclaim are linearized.
  for (ChunkShard& shard : chunk_shards_) {
    std::lock_guard lock(shard.mu);
    for (auto it = shard.chunks.begin(); it != shard.chunks.end();) {
      ChunkEntry& e = it->second;
      if (e.refs == 0 && e.epoch < cutoff && marked.count(it->first) == 0) {
        cycle.reclaimed_bytes += reg_.chunk_store().remove_chunk(it->first);
        ++cycle.reclaimed_chunks;
        it = shard.chunks.erase(it);
      } else {
        ++it;
      }
    }
  }

  cycle.cycle_us = elapsed_us(cycle_t0);
  cycle.cycles = 1;

  gc_cycles_m_->add();
  gc_reclaimed_bytes_m_->add(cycle.reclaimed_bytes);
  gc_reclaimed_chunks_m_->add(cycle.reclaimed_chunks);
  gc_reclaimed_manifests_m_->add(cycle.reclaimed_manifests);
  gc_pause_us_m_->observe(cycle.pause_us);
  // "Did a GC cycle land between the push and the failed pull" is exactly
  // the question a post-mortem answers: leave the cycle mark in the ring.
  if (obs::FlightRecorder& rec = obs::global_flight_recorder();
      rec.enabled()) {
    rec.record(obs::FlightKind::kGcCycle, "gc cycle",
               static_cast<std::int32_t>(cycle.reclaimed_chunks),
               cycle.reclaimed_bytes);
  }

  {
    std::lock_guard lock(gc_stats_mu_);
    ++gc_totals_.cycles;
    gc_totals_.reclaimed_chunks += cycle.reclaimed_chunks;
    gc_totals_.reclaimed_bytes += cycle.reclaimed_bytes;
    gc_totals_.reclaimed_manifests += cycle.reclaimed_manifests;
    gc_totals_.reclaimed_blobs += cycle.reclaimed_blobs;
    gc_totals_.marked_chunks = cycle.marked_chunks;
    gc_totals_.pause_us = cycle.pause_us;
    gc_totals_.cycle_us = cycle.cycle_us;
  }
  return cycle;
}

GcStats RegistryService::gc_stats() const {
  std::lock_guard lock(gc_stats_mu_);
  return gc_totals_;
}

}  // namespace minicon::service
