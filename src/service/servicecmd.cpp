// The `service` shell builtin: operator's view of the registry service.
//
//   service        per-tenant usage, quota headroom, tag counts, GC totals,
//                  and the rolling-window pull/push SLO (p50/p99, burn rate)
//   service gc     run one GC cycle and print what it reclaimed

#include <cstdio>
#include <string>

#include "service/service.hpp"
#include "shell/registry.hpp"
#include "support/strings.hpp"

namespace minicon::service {

namespace {

std::string pad_left(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

std::string quota_cell(std::uint64_t v) {
  return v == UINT64_MAX ? "-" : human_size(v);
}

std::string us_cell(double v) {
  // -1 is the no-samples sentinel from the windowed quantiles.
  if (v < 0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0fus", v);
  return buf;
}

std::string slo_line(const char* op, const obs::SloWindow::Report& r) {
  std::string out = std::string("slo ") + op + " (last " +
                    std::to_string(static_cast<int>(r.window_s)) + "s): ";
  if (r.count == 0) return out + "no traffic\n";
  char rate[32];
  std::snprintf(rate, sizeof rate, "%.2f", r.burn_rate);
  out += std::to_string(r.count) + " ops, p50 " + us_cell(r.p50) + ", p99 " +
         us_cell(r.p99) + ", breaches " + std::to_string(r.breaches) +
         ", burn " + rate + "\n";
  return out;
}

}  // namespace

void register_service_command(shell::CommandRegistry& reg,
                              RegistryServicePtr service) {
  reg.register_special("service", [service](shell::Invocation& inv) {
    if (inv.args.size() > 1 && inv.args[1] == "gc") {
      const GcStats c = service->run_gc();
      inv.out += "gc: reclaimed " + human_size(c.reclaimed_bytes) + " (" +
                 std::to_string(c.reclaimed_chunks) + " chunks, " +
                 std::to_string(c.reclaimed_manifests) + " manifests, " +
                 std::to_string(c.reclaimed_blobs) + " blob records), pause " +
                 std::to_string(static_cast<std::uint64_t>(c.pause_us)) +
                 "us\n";
      return 0;
    }
    inv.out +=
        "tenant         used    quota headroom  blobs  tags  pulls pushes"
        "  rejected throttled\n";
    for (const std::string& name : service->tenants()) {
      auto stats = service->tenant_stats(name);
      auto quota = service->tenant_quota(name);
      if (!stats.ok() || !quota.ok()) continue;
      const std::uint64_t headroom =
          quota->max_bytes == UINT64_MAX ? UINT64_MAX
          : quota->max_bytes > stats->bytes_used
              ? quota->max_bytes - stats->bytes_used
              : 0;
      inv.out += pad_right(name, 12) +
                 pad_left(human_size(stats->bytes_used), 7) +
                 pad_left(quota_cell(quota->max_bytes), 9) +
                 pad_left(quota_cell(headroom), 9) +
                 pad_left(std::to_string(stats->blobs), 7) +
                 pad_left(std::to_string(stats->tags), 6) +
                 pad_left(std::to_string(stats->pulls), 7) +
                 pad_left(std::to_string(stats->pushes), 7) +
                 pad_left(std::to_string(stats->quota_rejections), 10) +
                 pad_left(std::to_string(stats->throttled), 10) + "\n";
    }
    const GcStats g = service->gc_stats();
    inv.out += "gc: " + std::to_string(g.cycles) + " cycles, reclaimed " +
               human_size(g.reclaimed_bytes) + " (" +
               std::to_string(g.reclaimed_chunks) + " chunks, " +
               std::to_string(g.reclaimed_manifests) +
               " manifests), last pause " +
               std::to_string(static_cast<std::uint64_t>(g.pause_us)) + "us\n";
    inv.out += slo_line("pull", service->pull_slo());
    inv.out += slo_line("push", service->push_slo());
    return 0;
  });
}

}  // namespace minicon::service
