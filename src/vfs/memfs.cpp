#include "vfs/memfs.hpp"

#include <algorithm>

#include "vfs/snapshot.hpp"

namespace minicon::vfs {

namespace {

// Drops one recorded link occurrence (hardlinks record one entry per link).
void erase_one_parent(std::vector<InodeNum>& parents, InodeNum dir) {
  auto it = std::find(parents.begin(), parents.end(), dir);
  if (it != parents.end()) parents.erase(it);
}

}  // namespace

MemFs::MemFs(std::uint32_t root_mode) {
  OpCtx ctx;
  CreateArgs args;
  args.type = FileType::Directory;
  args.mode = root_mode;
  root_ = alloc(ctx, args);
  inodes_[root_].st.nlink = 2;
}

MemFs::Inode* MemFs::get(InodeNum n) {
  auto it = inodes_.find(n);
  return it == inodes_.end() ? nullptr : &it->second;
}

Result<MemFs::Inode*> MemFs::get_dir(InodeNum n) {
  Inode* node = get(n);
  if (node == nullptr) return Err::estale;
  if (node->st.type != FileType::Directory) return Err::enotdir;
  return node;
}

InodeNum MemFs::alloc(const OpCtx& ctx, const CreateArgs& args) {
  const InodeNum n = next_ino_++;
  Inode node;
  node.st.ino = n;
  node.st.type = args.type;
  node.st.mode = args.mode & mode::kPermMask;
  node.st.uid = args.uid;
  node.st.gid = args.gid;
  node.st.nlink = args.type == FileType::Directory ? 2 : 1;
  node.st.dev_major = args.dev_major;
  node.st.dev_minor = args.dev_minor;
  node.st.mtime = ctx.now;
  if (args.type == FileType::Symlink) {
    node.data = args.symlink_target;
    node.st.size = node.data.size();
    node.st.mode = 0777;
  }
  inodes_.emplace(n, std::move(node));
  return n;
}

void MemFs::unref(InodeNum n) {
  Inode* node = get(n);
  if (node == nullptr) return;
  if (node->st.nlink > 0) --node->st.nlink;
  if (node->st.nlink == 0) inodes_.erase(n);
}

void MemFs::touch(InodeNum n) {
  Inode* node = get(n);
  if (node == nullptr) return;
  node->snap.reset();
  std::vector<InodeNum> stack(node->parents.begin(), node->parents.end());
  while (!stack.empty()) {
    const InodeNum p = stack.back();
    stack.pop_back();
    Inode* pn = get(p);
    // An already-invalid ancestor implies its own ancestors are invalid too
    // (caches are only filled bottom-up), so stop ascending there.
    if (pn == nullptr || pn->snap == nullptr) continue;
    pn->snap.reset();
    stack.insert(stack.end(), pn->parents.begin(), pn->parents.end());
  }
}

Result<InodeNum> MemFs::lookup(InodeNum dir, const std::string& name) {
  MINICON_TRY_ASSIGN(d, get_dir(dir));
  auto it = d->children.find(name);
  if (it == d->children.end()) return Err::enoent;
  return it->second;
}

Result<Stat> MemFs::getattr(InodeNum n) {
  Inode* node = get(n);
  if (node == nullptr) return Err::estale;
  return node->st;
}

Result<std::vector<DirEntry>> MemFs::readdir(InodeNum dir) {
  MINICON_TRY_ASSIGN(d, get_dir(dir));
  std::vector<DirEntry> out;
  out.reserve(d->children.size());
  for (const auto& [name, ino] : d->children) {
    const Inode* child = get(ino);
    out.push_back({name, ino,
                   child != nullptr ? child->st.type : FileType::Regular});
  }
  return out;
}

Result<std::string> MemFs::readlink(InodeNum n) {
  Inode* node = get(n);
  if (node == nullptr) return Err::estale;
  if (node->st.type != FileType::Symlink) return Err::einval;
  return node->data;
}

Result<std::string> MemFs::read(InodeNum n) {
  Inode* node = get(n);
  if (node == nullptr) return Err::estale;
  if (node->st.type == FileType::Directory) return Err::eisdir;
  return node->data;
}

Result<InodeNum> MemFs::create(const OpCtx& ctx, InodeNum dir,
                               const std::string& name,
                               const CreateArgs& args) {
  MINICON_TRY_ASSIGN(d, get_dir(dir));
  if (d->children.contains(name)) return Err::eexist;
  const InodeNum n = alloc(ctx, args);
  d->children.emplace(name, n);
  inodes_[n].parents.push_back(dir);
  if (args.type == FileType::Directory) ++d->st.nlink;
  d->st.mtime = ctx.now;
  touch(dir);
  return n;
}

VoidResult MemFs::write(const OpCtx& ctx, InodeNum n, std::string data,
                        bool append) {
  Inode* node = get(n);
  if (node == nullptr) return Err::estale;
  if (node->st.type == FileType::Directory) return Err::eisdir;
  if (node->st.type != FileType::Regular) return Err::einval;
  if (append) {
    node->data += data;
  } else {
    node->data = std::move(data);
  }
  node->st.size = node->data.size();
  node->st.mtime = ctx.now;
  touch(n);
  return {};
}

VoidResult MemFs::set_owner(const OpCtx& ctx, InodeNum n, Uid uid, Gid gid) {
  Inode* node = get(n);
  if (node == nullptr) return Err::estale;
  if (uid != kNoChangeId) node->st.uid = uid;
  if (gid != kNoChangeId) node->st.gid = gid;
  node->st.mtime = ctx.now;
  touch(n);
  return {};
}

VoidResult MemFs::set_mode(const OpCtx& ctx, InodeNum n, std::uint32_t m) {
  Inode* node = get(n);
  if (node == nullptr) return Err::estale;
  node->st.mode = m & mode::kPermMask;
  node->st.mtime = ctx.now;
  touch(n);
  return {};
}

VoidResult MemFs::link(const OpCtx& ctx, InodeNum dir, const std::string& name,
                       InodeNum target) {
  MINICON_TRY_ASSIGN(d, get_dir(dir));
  Inode* t = get(target);
  if (t == nullptr) return Err::estale;
  if (t->st.type == FileType::Directory) return Err::eperm;
  if (d->children.contains(name)) return Err::eexist;
  d->children.emplace(name, target);
  ++t->st.nlink;
  t->parents.push_back(dir);
  d->st.mtime = ctx.now;
  // nlink is not part of the digest, so the target's own snapshot stays
  // valid; only the linking directory changed.
  touch(dir);
  return {};
}

VoidResult MemFs::unlink(const OpCtx& ctx, InodeNum dir,
                         const std::string& name) {
  MINICON_TRY_ASSIGN(d, get_dir(dir));
  auto it = d->children.find(name);
  if (it == d->children.end()) return Err::enoent;
  Inode* child = get(it->second);
  if (child != nullptr && child->st.type == FileType::Directory) {
    return Err::eisdir;
  }
  const InodeNum victim = it->second;
  d->children.erase(it);
  d->st.mtime = ctx.now;
  if (Inode* v = get(victim); v != nullptr) erase_one_parent(v->parents, dir);
  unref(victim);
  touch(dir);
  return {};
}

VoidResult MemFs::rmdir(const OpCtx& ctx, InodeNum dir,
                        const std::string& name) {
  MINICON_TRY_ASSIGN(d, get_dir(dir));
  auto it = d->children.find(name);
  if (it == d->children.end()) return Err::enoent;
  Inode* child = get(it->second);
  if (child == nullptr) return Err::estale;
  if (child->st.type != FileType::Directory) return Err::enotdir;
  if (!child->children.empty()) return Err::enotempty;
  const InodeNum victim = it->second;
  d->children.erase(it);
  --d->st.nlink;
  d->st.mtime = ctx.now;
  inodes_.erase(victim);
  touch(dir);
  return {};
}

VoidResult MemFs::rename(const OpCtx& ctx, InodeNum src_dir,
                         const std::string& src_name, InodeNum dst_dir,
                         const std::string& dst_name) {
  MINICON_TRY_ASSIGN(sd, get_dir(src_dir));
  MINICON_TRY_ASSIGN(dd, get_dir(dst_dir));
  auto sit = sd->children.find(src_name);
  if (sit == sd->children.end()) return Err::enoent;
  const InodeNum moving = sit->second;
  Inode* moving_node = get(moving);
  if (moving_node == nullptr) return Err::estale;

  auto dit = dd->children.find(dst_name);
  if (dit != dd->children.end()) {
    if (dit->second == moving) return {};  // rename onto itself
    Inode* existing = get(dit->second);
    if (existing != nullptr && existing->st.type == FileType::Directory) {
      if (moving_node->st.type != FileType::Directory) return Err::eisdir;
      if (!existing->children.empty()) return Err::enotempty;
      const InodeNum victim = dit->second;
      dd->children.erase(dit);
      --dd->st.nlink;
      inodes_.erase(victim);
    } else {
      if (moving_node->st.type == FileType::Directory) return Err::enotdir;
      const InodeNum victim = dit->second;
      dd->children.erase(dit);
      if (existing != nullptr) erase_one_parent(existing->parents, dst_dir);
      unref(victim);
    }
  }

  sd->children.erase(src_name);
  dd->children.emplace(dst_name, moving);
  erase_one_parent(moving_node->parents, src_dir);
  moving_node->parents.push_back(dst_dir);
  if (moving_node->st.type == FileType::Directory && sd != dd) {
    --sd->st.nlink;
    ++dd->st.nlink;
  }
  sd->st.mtime = ctx.now;
  dd->st.mtime = ctx.now;
  touch(src_dir);
  touch(dst_dir);
  return {};
}

VoidResult MemFs::set_xattr(const OpCtx& ctx, InodeNum n,
                            const std::string& name, const std::string& value) {
  Inode* node = get(n);
  if (node == nullptr) return Err::estale;
  node->xattrs[name] = value;
  node->st.mtime = ctx.now;
  touch(n);
  return {};
}

Result<std::string> MemFs::get_xattr(InodeNum n, const std::string& name) {
  Inode* node = get(n);
  if (node == nullptr) return Err::estale;
  auto it = node->xattrs.find(name);
  if (it == node->xattrs.end()) return Err::enodata;
  return it->second;
}

Result<std::vector<std::string>> MemFs::list_xattrs(InodeNum n) {
  Inode* node = get(n);
  if (node == nullptr) return Err::estale;
  std::vector<std::string> out;
  out.reserve(node->xattrs.size());
  for (const auto& [name, _] : node->xattrs) out.push_back(name);
  return out;
}

VoidResult MemFs::remove_xattr(const OpCtx& ctx, InodeNum n,
                               const std::string& name) {
  Inode* node = get(n);
  if (node == nullptr) return Err::estale;
  auto it = node->xattrs.find(name);
  if (it == node->xattrs.end()) return Err::enodata;
  node->xattrs.erase(it);
  node->st.mtime = ctx.now;
  touch(n);
  return {};
}

Result<SnapNodePtr> MemFs::snapshot(InodeNum n, SnapshotStats* stats) {
  Inode* node = get(n);
  if (node == nullptr) return Err::estale;
  if (node->snap != nullptr) {
    if (stats != nullptr) stats->nodes_reused += node->snap->tree_nodes;
    return node->snap;
  }
  SnapNode sn;
  sn.type = node->st.type;
  sn.mode = node->st.mode;
  sn.uid = node->st.uid;
  sn.gid = node->st.gid;
  sn.dev_major = node->st.dev_major;
  sn.dev_minor = node->st.dev_minor;
  sn.xattrs = node->xattrs;
  if (node->st.type == FileType::Directory) {
    // Recursion may not mutate inodes_, and unordered_map never moves its
    // elements, so `node` stays valid across the child calls.
    for (const auto& [name, ino] : node->children) {
      MINICON_TRY_ASSIGN(child, snapshot(ino, stats));
      sn.children.emplace(name, std::move(child));
    }
  } else if (node->st.type == FileType::Regular ||
             node->st.type == FileType::Symlink) {
    sn.content = std::make_shared<const std::string>(node->data);
  }
  node->snap = freeze_snap_node(std::move(sn));
  if (stats != nullptr) ++stats->nodes_built;
  return node->snap;
}

std::uint64_t MemFs::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [_, node] : inodes_) {
    if (node.st.type == FileType::Regular) total += node.data.size();
  }
  return total;
}

}  // namespace minicon::vfs
