// Shared parallel filesystem model (NFS / Lustre / GPFS, §4.2 and §6.1).
//
// The defining property for this paper: *the server* decides what identities
// may be stored, based on who the client really is — a client-side user
// namespace is invisible to it. With default options this reproduces both
// limitations the paper reports for rootless Podman on shared storage:
//   1. UID/GID mappers cannot take effect — the server refuses to create
//      files owned by other (sub)UIDs for an unprivileged user, and squashes
//      root (root_squash).
//   2. user xattrs are unsupported (pre-Linux-5.9 NFS), so fuse-overlayfs'
//      ID-stashing xattrs fail. Set xattrs_supported=true to model the
//      Linux 5.9 + NFSv4.2 future described in §6.2.1.
#pragma once

#include "vfs/filesystem.hpp"
#include "vfs/memfs.hpp"

namespace minicon::vfs {

struct SharedFsOptions {
  bool xattrs_supported = false;  // NFSv4.2 xattrs (RFC 8276) off by default
  bool root_squash = true;        // client root is mapped to nobody
  std::string flavor = "nfs";     // "nfs", "lustre", "gpfs" — cosmetic
};

class SharedFs : public Filesystem {
 public:
  explicit SharedFs(SharedFsOptions options = {});

  std::string fs_type() const override { return options_.flavor; }
  bool supports_user_xattrs() const override {
    return options_.xattrs_supported;
  }
  bool supports_device_nodes() const override { return true; }

  InodeNum root() const override { return inner_.root(); }

  Result<InodeNum> lookup(InodeNum dir, const std::string& name) override {
    return inner_.lookup(dir, name);
  }
  Result<Stat> getattr(InodeNum node) override { return inner_.getattr(node); }
  Result<std::vector<DirEntry>> readdir(InodeNum dir) override {
    return inner_.readdir(dir);
  }
  Result<std::string> readlink(InodeNum node) override {
    return inner_.readlink(node);
  }
  Result<std::string> read(InodeNum node) override { return inner_.read(node); }

  Result<InodeNum> create(const OpCtx& ctx, InodeNum dir,
                          const std::string& name,
                          const CreateArgs& args) override;
  VoidResult write(const OpCtx& ctx, InodeNum node, std::string data,
                   bool append) override {
    return inner_.write(ctx, node, std::move(data), append);
  }
  VoidResult set_owner(const OpCtx& ctx, InodeNum node, Uid uid,
                       Gid gid) override;
  VoidResult set_mode(const OpCtx& ctx, InodeNum node,
                      std::uint32_t mode) override {
    return inner_.set_mode(ctx, node, mode);
  }
  VoidResult link(const OpCtx& ctx, InodeNum dir, const std::string& name,
                  InodeNum target) override {
    return inner_.link(ctx, dir, name, target);
  }
  VoidResult unlink(const OpCtx& ctx, InodeNum dir,
                    const std::string& name) override {
    return inner_.unlink(ctx, dir, name);
  }
  VoidResult rmdir(const OpCtx& ctx, InodeNum dir,
                   const std::string& name) override {
    return inner_.rmdir(ctx, dir, name);
  }
  VoidResult rename(const OpCtx& ctx, InodeNum src_dir,
                    const std::string& src_name, InodeNum dst_dir,
                    const std::string& dst_name) override {
    return inner_.rename(ctx, src_dir, src_name, dst_dir, dst_name);
  }

  VoidResult set_xattr(const OpCtx& ctx, InodeNum node, const std::string& name,
                       const std::string& value) override;
  Result<std::string> get_xattr(InodeNum node,
                                const std::string& name) override;
  Result<std::vector<std::string>> list_xattrs(InodeNum node) override;
  VoidResult remove_xattr(const OpCtx& ctx, InodeNum node,
                          const std::string& name) override;

 private:
  // True when the acting host identity may assign arbitrary ownership on the
  // server (i.e. real root without root_squash).
  bool server_privileged(const OpCtx& ctx) const {
    return ctx.host_privileged && !options_.root_squash;
  }

  SharedFsOptions options_;
  MemFs inner_;
};

}  // namespace minicon::vfs
