// Union filesystem: the fuse-overlayfs storage-driver model (§4.1).
//
// An OverlayFs presents a read-only lower filesystem merged with a private
// writable upper layer (a MemFs). Mutations trigger copy-up; deletions of
// lower entries are recorded as whiteouts. Stacking OverlayFs on OverlayFs
// yields the layered image storage that the Podman overlay driver uses; the
// VFS driver by contrast deep-copies the whole lower tree up front (see
// copy_tree in treeops.hpp), which is the O(image size) per-layer cost the
// paper calls "much slower ... significant storage overhead".
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "vfs/filesystem.hpp"
#include "vfs/memfs.hpp"

namespace minicon::vfs {

class OverlayFs : public Filesystem {
 public:
  explicit OverlayFs(FilesystemPtr lower);

  std::string fs_type() const override { return "overlay"; }
  bool supports_user_xattrs() const override { return true; }

  InodeNum root() const override { return kRootIno; }

  Result<InodeNum> lookup(InodeNum dir, const std::string& name) override;
  Result<Stat> getattr(InodeNum node) override;
  Result<std::vector<DirEntry>> readdir(InodeNum dir) override;
  Result<std::string> readlink(InodeNum node) override;
  Result<std::string> read(InodeNum node) override;

  Result<InodeNum> create(const OpCtx& ctx, InodeNum dir,
                          const std::string& name,
                          const CreateArgs& args) override;
  VoidResult write(const OpCtx& ctx, InodeNum node, std::string data,
                   bool append) override;
  VoidResult set_owner(const OpCtx& ctx, InodeNum node, Uid uid,
                       Gid gid) override;
  VoidResult set_mode(const OpCtx& ctx, InodeNum node,
                      std::uint32_t mode) override;
  VoidResult link(const OpCtx& ctx, InodeNum dir, const std::string& name,
                  InodeNum target) override;
  VoidResult unlink(const OpCtx& ctx, InodeNum dir,
                    const std::string& name) override;
  VoidResult rmdir(const OpCtx& ctx, InodeNum dir,
                   const std::string& name) override;
  VoidResult rename(const OpCtx& ctx, InodeNum src_dir,
                    const std::string& src_name, InodeNum dst_dir,
                    const std::string& dst_name) override;

  VoidResult set_xattr(const OpCtx& ctx, InodeNum node, const std::string& name,
                       const std::string& value) override;
  Result<std::string> get_xattr(InodeNum node,
                                const std::string& name) override;
  Result<std::vector<std::string>> list_xattrs(InodeNum node) override;
  VoidResult remove_xattr(const OpCtx& ctx, InodeNum node,
                          const std::string& name) override;

  // O(changed) snapshots: overlay nodes cache frozen subtrees like MemFs
  // inodes do, and a subtree with no upper backing delegates to the lower
  // filesystem's snapshot — an untouched base-image subtree is shared (same
  // SnapNode pointers) across every overlay stacked on it.
  Result<SnapNodePtr> snapshot(InodeNum node,
                               SnapshotStats* stats = nullptr) override;

  // Bytes stored in this layer's upper dir only — the marginal cost of the
  // layer, as opposed to the cumulative image size.
  std::uint64_t upper_bytes() const { return upper_.total_bytes(); }
  std::size_t upper_inode_count() const { return upper_.inode_count(); }

  // Direct access to the upper layer (layer-diff export for multi-layer
  // pushes). Mutating it directly bypasses copy-up bookkeeping; use for
  // read-only walks.
  MemFs& upper_fs() { return upper_; }

 private:
  static constexpr InodeNum kRootIno = 1;

  struct Node {
    InodeNum parent = 0;  // overlay ino of parent; root points to itself
    std::string name;     // entry name within parent
    std::optional<InodeNum> lower;  // ino in lower fs
    std::optional<InodeNum> upper;  // ino in upper fs
    std::map<std::string, InodeNum> children;  // lazily-populated dentries
    SnapNodePtr snap;  // cached frozen subtree, null when dirty
  };

  Node* get(InodeNum n);
  bool whited_out(InodeNum dir, const std::string& name) const {
    return whiteouts_.contains({dir, name});
  }
  // Returns the ovl ino for (dir, name), creating the Node on first sight.
  InodeNum intern(InodeNum dir, const std::string& name,
                  std::optional<InodeNum> lower, std::optional<InodeNum> upper);
  // Copies the node (and its ancestors) into the upper layer if needed.
  VoidResult ensure_upper(const OpCtx& ctx, InodeNum node);
  // Deep copy-up of a whole subtree (needed before rename of a lower dir).
  VoidResult ensure_upper_deep(const OpCtx& ctx, InodeNum node);
  // Drops a dentry (after unlink/rmdir/rename-away).
  void forget(InodeNum dir, const std::string& name);
  // Invalidates cached snapshots from `node` all the way to the root. Unlike
  // MemFs this cannot stop at an already-invalid ancestor: a delegated
  // (lower-backed) cache can sit above an interned child that was never
  // cached itself.
  void touch(InodeNum node);
  // Stat from whichever layer backs the node, with the overlay ino patched in.
  Result<Stat> backing_stat(const Node& node);

  FilesystemPtr lower_;
  MemFs upper_;
  std::unordered_map<InodeNum, Node> nodes_;
  std::set<std::pair<InodeNum, std::string>> whiteouts_;
  InodeNum next_ino_ = 2;
};

}  // namespace minicon::vfs
