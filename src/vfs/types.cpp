#include "vfs/types.hpp"

namespace minicon::vfs {

char type_char(FileType type) {
  switch (type) {
    case FileType::Regular: return '-';
    case FileType::Directory: return 'd';
    case FileType::Symlink: return 'l';
    case FileType::CharDev: return 'c';
    case FileType::BlockDev: return 'b';
    case FileType::Fifo: return 'p';
    case FileType::Socket: return 's';
  }
  return '?';
}

std::string format_mode(FileType type, std::uint32_t m) {
  std::string out(10, '-');
  out[0] = type_char(type);
  out[1] = (m & mode::kUserR) ? 'r' : '-';
  out[2] = (m & mode::kUserW) ? 'w' : '-';
  if (m & mode::kSetUid) {
    out[3] = (m & mode::kUserX) ? 's' : 'S';
  } else {
    out[3] = (m & mode::kUserX) ? 'x' : '-';
  }
  out[4] = (m & mode::kGroupR) ? 'r' : '-';
  out[5] = (m & mode::kGroupW) ? 'w' : '-';
  if (m & mode::kSetGid) {
    out[6] = (m & mode::kGroupX) ? 's' : 'S';
  } else {
    out[6] = (m & mode::kGroupX) ? 'x' : '-';
  }
  out[7] = (m & mode::kOtherR) ? 'r' : '-';
  out[8] = (m & mode::kOtherW) ? 'w' : '-';
  if (m & mode::kSticky) {
    out[9] = (m & mode::kOtherX) ? 't' : 'T';
  } else {
    out[9] = (m & mode::kOtherX) ? 'x' : '-';
  }
  return out;
}

}  // namespace minicon::vfs
