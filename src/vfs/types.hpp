// Core identifier and metadata types for the simulated filesystems.
#pragma once

#include <cstdint>
#include <string>

namespace minicon::vfs {

using Uid = std::uint32_t;
using Gid = std::uint32_t;
using InodeNum = std::uint64_t;

// Linux overflow IDs: what unmapped kernel IDs appear as inside a user
// namespace ("nobody"/"nogroup", §2.1.1 case 3 of the paper).
inline constexpr Uid kOverflowUid = 65534;
inline constexpr Gid kOverflowGid = 65534;

// Sentinel for chown(2)'s "leave unchanged" arguments.
inline constexpr Uid kNoChangeId = 0xffffffffu;

enum class FileType : std::uint8_t {
  Regular,
  Directory,
  Symlink,
  CharDev,
  BlockDev,
  Fifo,
  Socket,
};

// Permission and special mode bits (octal values match Linux).
namespace mode {
inline constexpr std::uint32_t kSetUid = 04000;
inline constexpr std::uint32_t kSetGid = 02000;
inline constexpr std::uint32_t kSticky = 01000;
inline constexpr std::uint32_t kUserR = 0400;
inline constexpr std::uint32_t kUserW = 0200;
inline constexpr std::uint32_t kUserX = 0100;
inline constexpr std::uint32_t kGroupR = 0040;
inline constexpr std::uint32_t kGroupW = 0020;
inline constexpr std::uint32_t kGroupX = 0010;
inline constexpr std::uint32_t kOtherR = 0004;
inline constexpr std::uint32_t kOtherW = 0002;
inline constexpr std::uint32_t kOtherX = 0001;
inline constexpr std::uint32_t kPermMask = 07777;
}  // namespace mode

// stat(2)-style metadata snapshot.
struct Stat {
  InodeNum ino = 0;
  FileType type = FileType::Regular;
  std::uint32_t mode = 0;  // permission + suid/sgid/sticky bits only
  Uid uid = 0;
  Gid gid = 0;
  std::uint64_t size = 0;
  std::uint32_t nlink = 1;
  std::uint32_t dev_major = 0;  // for device nodes
  std::uint32_t dev_minor = 0;
  std::uint64_t mtime = 0;  // logical clock ticks

  bool is_dir() const noexcept { return type == FileType::Directory; }
  bool is_symlink() const noexcept { return type == FileType::Symlink; }
  bool is_device() const noexcept {
    return type == FileType::CharDev || type == FileType::BlockDev;
  }
};

struct DirEntry {
  std::string name;
  InodeNum ino = 0;
  FileType type = FileType::Regular;
};

// Context for mutating operations: who (in host terms) is acting, so that
// server-enforcing filesystems (NFS model) can apply their own checks, plus
// the logical timestamp to record.
struct OpCtx {
  Uid host_uid = 0;
  Gid host_gid = 0;
  bool host_privileged = true;  // CAP_DAC_OVERRIDE-ish on the "server"
  std::uint64_t now = 0;
};

// "rwxr-xr-x"-style rendering with suid/sgid/sticky and a type prefix, as
// ls -l prints it.
std::string format_mode(FileType type, std::uint32_t mode);

// Type letter for ls: '-', 'd', 'l', 'c', 'b', 'p', 's'.
char type_char(FileType type);

}  // namespace minicon::vfs
