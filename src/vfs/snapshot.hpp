// Copy-on-write tree snapshots with incremental Merkle digests.
//
// A SnapNode is an immutable, structurally-shared snapshot of one filesystem
// node: file content and metadata for leaves, child pointers for
// directories. Because nodes are immutable and reference-counted, forking a
// snapshot is O(1) and two snapshots that share unchanged subtrees share the
// actual nodes — the cache value and registry layer representation the paper
// motivated (§6.1/P5: distribution cost is dominated by serializing and
// hashing bytes that did not change).
//
// Every node carries a Merkle digest: files hash their metadata + content,
// directories hash their metadata + the ordered (name, child digest) list.
// The digest deliberately excludes mtime (a logical clock; serialization
// must be deterministic) and nlink (a derived count: creating a second hard
// link to a file changes the *linking* directory, not the file's own
// subtree). Filesystems that cache snapshots per inode (MemFs, OverlayFs)
// recompute digests only along dirty paths: a build step that touches one
// directory re-digests the path to the root and reuses every sibling.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "support/result.hpp"
#include "vfs/filesystem.hpp"
#include "vfs/types.hpp"

namespace minicon::vfs {

struct SnapNode {
  FileType type = FileType::Regular;
  std::uint32_t mode = 0644;
  Uid uid = 0;
  Gid gid = 0;
  std::uint32_t dev_major = 0;
  std::uint32_t dev_minor = 0;
  // Regular file data or symlink target; shared so that forks and the
  // chunk/registry stores never copy unchanged content.
  std::shared_ptr<const std::string> content;
  std::map<std::string, SnapNodePtr> children;  // directories only
  std::map<std::string, std::string> xattrs;

  // Computed at freeze time, immutable afterwards.
  std::string digest;              // hex Merkle digest of this subtree
  std::uint64_t tree_bytes = 0;    // regular-file bytes in the subtree
  std::uint64_t tree_nodes = 1;    // nodes in the subtree (incl. self)

  std::string_view content_view() const {
    return content != nullptr ? std::string_view(*content)
                              : std::string_view();
  }
};

// Seals a node: computes its Merkle digest and subtree aggregates (children
// must already be frozen) and returns it as an immutable shared node. This
// is the single place digests are computed; each call increments the
// process-wide counter below.
SnapNodePtr freeze_snap_node(SnapNode node);

// Total Merkle digests computed since process start (one per frozen node).
// The O(changed)-resnapshot tests assert on deltas of this counter.
std::uint64_t snapshot_digests_computed();

// Generic O(subtree) snapshot via the public Filesystem interface; the
// default implementation of Filesystem::snapshot. Caching filesystems
// override snapshot() and only fall back to per-node rebuilds along dirty
// paths.
Result<SnapNodePtr> snapshot_tree(Filesystem& fs, InodeNum root,
                                  SnapshotStats* stats = nullptr);

struct SyncStats {
  std::uint64_t created = 0;    // nodes created or rewritten
  std::uint64_t removed = 0;    // nodes removed
  std::uint64_t retouched = 0;  // nodes whose metadata alone was fixed up
  std::uint64_t reused = 0;     // nodes skipped because digests matched
};

// Rewrites the contents (and metadata) of `dir` to exactly match `target`,
// using the filesystem's own cached snapshot to skip subtrees whose digests
// already match: restoring a cached build state onto a mostly-unchanged
// directory costs O(changed), not O(tree). Hard links are expanded (same
// semantics as a tar round-trip); mtimes are not restored.
Result<SyncStats> sync_tree(Filesystem& fs, InodeNum dir,
                            const SnapNodePtr& target, const OpCtx& ctx);

// Materializes `node`'s children into the (existing) directory `dir`.
// Unlike sync_tree this never deletes; it is the snapshot analogue of
// entries_to_tree's merge semantics.
VoidResult materialize_into(Filesystem& fs, InodeNum dir,
                            const SnapNodePtr& node, const OpCtx& ctx);

// Charliecloud push transform (§6.1) on a snapshot: ownership flattens to
// root:root, setuid/setgid bits clear, device nodes drop. Pure and
// structurally sharing: an already-flat subtree is returned as-is, and the
// caller may pass a digest-keyed memo so repeated pushes of a mostly
// unchanged image transform only the changed paths.
SnapNodePtr flatten_snapshot(
    const SnapNodePtr& node,
    std::map<std::string, SnapNodePtr>* memo = nullptr);

}  // namespace minicon::vfs
