#include "vfs/snapshot.hpp"

#include <atomic>

#include "support/sha256.hpp"

namespace minicon::vfs {

namespace {

std::atomic<std::uint64_t> g_digests{0};

char snap_type_tag(FileType t) {
  switch (t) {
    case FileType::Regular: return 'F';
    case FileType::Directory: return 'D';
    case FileType::Symlink: return 'L';
    case FileType::CharDev: return 'C';
    case FileType::BlockDev: return 'B';
    case FileType::Fifo: return 'P';
    case FileType::Socket: return 'S';
  }
  return '?';
}

}  // namespace

std::uint64_t snapshot_digests_computed() {
  return g_digests.load(std::memory_order_relaxed);
}

SnapNodePtr freeze_snap_node(SnapNode node) {
  Sha256 h;
  const char tag = snap_type_tag(node.type);
  h.update(&tag, 1);
  // Metadata header. mtime and nlink are deliberately excluded: mtime is a
  // logical clock (equal trees must digest equal across runs), and nlink is
  // a property of the directories linking to a file, not of its content.
  std::string header = "|" + std::to_string(node.mode) + "|" +
                       std::to_string(node.uid) + "|" +
                       std::to_string(node.gid);
  if (node.type == FileType::CharDev || node.type == FileType::BlockDev) {
    header += "|" + std::to_string(node.dev_major) + ":" +
              std::to_string(node.dev_minor);
  }
  h.update(header);
  for (const auto& [name, value] : node.xattrs) {
    h.update("|x:");
    h.update(name);
    h.update("=");
    h.update(value);
  }
  h.update("|");
  if (node.type == FileType::Directory) {
    node.tree_bytes = 0;
    node.tree_nodes = 1;
    for (const auto& [name, child] : node.children) {
      h.update(name);
      h.update("\0", 1);
      h.update(child->digest);
      h.update("\n");
      node.tree_bytes += child->tree_bytes;
      node.tree_nodes += child->tree_nodes;
    }
  } else {
    h.update(node.content_view());
    node.tree_bytes =
        node.type == FileType::Regular ? node.content_view().size() : 0;
    node.tree_nodes = 1;
  }
  const auto digest = h.finish();
  node.digest = to_hex(digest.data(), digest.size());
  g_digests.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<const SnapNode>(std::move(node));
}

Result<SnapNodePtr> snapshot_tree(Filesystem& fs, InodeNum root,
                                  SnapshotStats* stats) {
  MINICON_TRY_ASSIGN(st, fs.getattr(root));
  SnapNode node;
  node.type = st.type;
  node.mode = st.mode;
  node.uid = st.uid;
  node.gid = st.gid;
  node.dev_major = st.dev_major;
  node.dev_minor = st.dev_minor;
  if (auto xattrs = fs.list_xattrs(root); xattrs.ok()) {
    for (const auto& name : *xattrs) {
      if (auto v = fs.get_xattr(root, name); v.ok()) node.xattrs[name] = *v;
    }
  }
  if (st.type == FileType::Directory) {
    MINICON_TRY_ASSIGN(entries, fs.readdir(root));
    for (const auto& e : entries) {
      MINICON_TRY_ASSIGN(child, snapshot_tree(fs, e.ino, stats));
      node.children.emplace(e.name, std::move(child));
    }
  } else if (st.type == FileType::Regular) {
    MINICON_TRY_ASSIGN(data, fs.read(root));
    node.content = std::make_shared<const std::string>(std::move(data));
  } else if (st.type == FileType::Symlink) {
    MINICON_TRY_ASSIGN(target, fs.readlink(root));
    node.content = std::make_shared<const std::string>(std::move(target));
  }
  if (stats != nullptr) ++stats->nodes_built;
  return freeze_snap_node(std::move(node));
}

Result<SnapNodePtr> Filesystem::snapshot(InodeNum node, SnapshotStats* stats) {
  return snapshot_tree(*this, node, stats);
}

namespace {

// Creates (dir, name) from `node`, descending into directories.
VoidResult create_from_snap(Filesystem& fs, InodeNum dir,
                            const std::string& name, const SnapNodePtr& node,
                            const OpCtx& ctx, SyncStats* stats) {
  CreateArgs args;
  args.type = node->type;
  args.mode = node->mode;
  args.uid = node->uid;
  args.gid = node->gid;
  args.dev_major = node->dev_major;
  args.dev_minor = node->dev_minor;
  if (node->type == FileType::Symlink) {
    args.symlink_target = std::string(node->content_view());
  }
  MINICON_TRY_ASSIGN(ino, fs.create(ctx, dir, name, args));
  if (node->type == FileType::Regular && !node->content_view().empty()) {
    MINICON_TRY(fs.write(ctx, ino, std::string(node->content_view()), false));
  }
  for (const auto& [xname, xvalue] : node->xattrs) {
    (void)fs.set_xattr(ctx, ino, xname, xvalue);
  }
  if (stats != nullptr) ++stats->created;
  if (node->type == FileType::Directory) {
    for (const auto& [cname, child] : node->children) {
      MINICON_TRY(create_from_snap(fs, ino, cname, child, ctx, stats));
    }
  }
  return {};
}

// Removes (dir, name) whatever it is, recursively for directories.
VoidResult remove_entry(Filesystem& fs, InodeNum dir, const std::string& name,
                        const OpCtx& ctx, SyncStats* stats) {
  MINICON_TRY_ASSIGN(ino, fs.lookup(dir, name));
  MINICON_TRY_ASSIGN(st, fs.getattr(ino));
  if (st.is_dir()) {
    MINICON_TRY_ASSIGN(entries, fs.readdir(ino));
    for (const auto& e : entries) {
      MINICON_TRY(remove_entry(fs, ino, e.name, ctx, stats));
    }
    MINICON_TRY(fs.rmdir(ctx, dir, name));
  } else {
    MINICON_TRY(fs.unlink(ctx, dir, name));
  }
  if (stats != nullptr) ++stats->removed;
  return {};
}

VoidResult sync_metadata(Filesystem& fs, InodeNum ino, const Stat& st,
                         const SnapNodePtr& target, const OpCtx& ctx) {
  if (st.mode != target->mode) {
    MINICON_TRY(fs.set_mode(ctx, ino, target->mode));
  }
  if (st.uid != target->uid || st.gid != target->gid) {
    MINICON_TRY(fs.set_owner(ctx, ino, target->uid, target->gid));
  }
  if (auto xattrs = fs.list_xattrs(ino); xattrs.ok()) {
    for (const auto& name : *xattrs) {
      if (!target->xattrs.contains(name)) {
        (void)fs.remove_xattr(ctx, ino, name);
      }
    }
  }
  for (const auto& [name, value] : target->xattrs) {
    auto cur = fs.get_xattr(ino, name);
    if (!cur.ok() || *cur != value) {
      (void)fs.set_xattr(ctx, ino, name, value);
    }
  }
  return {};
}

// `cur` is the filesystem's own snapshot of `ino` (may be null on error
// paths); equal digests mean the whole subtree already matches.
VoidResult sync_dir(Filesystem& fs, InodeNum ino, const SnapNodePtr& cur,
                    const SnapNodePtr& target, const OpCtx& ctx,
                    SyncStats& stats) {
  if (cur != nullptr && cur->digest == target->digest) {
    stats.reused += target->tree_nodes;
    return {};
  }
  MINICON_TRY_ASSIGN(st, fs.getattr(ino));
  MINICON_TRY(sync_metadata(fs, ino, st, target, ctx));
  ++stats.retouched;
  // Drop entries the target does not have.
  MINICON_TRY_ASSIGN(entries, fs.readdir(ino));
  for (const auto& e : entries) {
    if (!target->children.contains(e.name)) {
      MINICON_TRY(remove_entry(fs, ino, e.name, ctx, &stats));
    }
  }
  for (const auto& [name, tchild] : target->children) {
    const SnapNodePtr* cchild = nullptr;
    if (cur != nullptr) {
      if (auto it = cur->children.find(name); it != cur->children.end()) {
        cchild = &it->second;
      }
    }
    if (cchild != nullptr && (*cchild)->digest == tchild->digest) {
      stats.reused += tchild->tree_nodes;
      continue;
    }
    auto existing = fs.lookup(ino, name);
    if (!existing.ok()) {
      MINICON_TRY(create_from_snap(fs, ino, name, tchild, ctx, &stats));
      continue;
    }
    MINICON_TRY_ASSIGN(est, fs.getattr(*existing));
    if (est.type == FileType::Directory &&
        tchild->type == FileType::Directory) {
      MINICON_TRY(sync_dir(fs, *existing, cchild != nullptr ? *cchild : nullptr,
                           tchild, ctx, stats));
      continue;
    }
    if (est.type == FileType::Regular && tchild->type == FileType::Regular) {
      // Rewrite in place: content first, then metadata.
      MINICON_TRY_ASSIGN(data, fs.read(*existing));
      if (data != tchild->content_view()) {
        MINICON_TRY(fs.write(ctx, *existing,
                             std::string(tchild->content_view()), false));
      }
      MINICON_TRY(sync_metadata(fs, *existing, est, tchild, ctx));
      ++stats.retouched;
      continue;
    }
    // Type change (or symlink/device retarget): replace wholesale.
    MINICON_TRY(remove_entry(fs, ino, name, ctx, &stats));
    MINICON_TRY(create_from_snap(fs, ino, name, tchild, ctx, &stats));
  }
  return {};
}

}  // namespace

Result<SyncStats> sync_tree(Filesystem& fs, InodeNum dir,
                            const SnapNodePtr& target, const OpCtx& ctx) {
  if (target == nullptr || target->type != FileType::Directory) {
    return Err::enotdir;
  }
  SnapNodePtr cur;
  if (auto snap = fs.snapshot(dir); snap.ok()) cur = *snap;
  SyncStats stats;
  MINICON_TRY(sync_dir(fs, dir, cur, target, ctx, stats));
  return stats;
}

VoidResult materialize_into(Filesystem& fs, InodeNum dir,
                            const SnapNodePtr& node, const OpCtx& ctx) {
  if (node == nullptr || node->type != FileType::Directory) {
    return Err::enotdir;
  }
  for (const auto& [name, child] : node->children) {
    auto existing = fs.lookup(dir, name);
    if (!existing.ok()) {
      MINICON_TRY(create_from_snap(fs, dir, name, child, ctx, nullptr));
      continue;
    }
    MINICON_TRY_ASSIGN(est, fs.getattr(*existing));
    if (est.is_dir() && child->type == FileType::Directory) {
      // Merge like entries_to_tree: refresh metadata, descend.
      MINICON_TRY(sync_metadata(fs, *existing, est, child, ctx));
      MINICON_TRY(materialize_into(fs, *existing, child, ctx));
      continue;
    }
    if (est.is_dir()) return Err::eisdir;
    MINICON_TRY(fs.unlink(ctx, dir, name));
    MINICON_TRY(create_from_snap(fs, dir, name, child, ctx, nullptr));
  }
  return {};
}

SnapNodePtr flatten_snapshot(const SnapNodePtr& node,
                             std::map<std::string, SnapNodePtr>* memo) {
  if (memo != nullptr) {
    if (auto it = memo->find(node->digest); it != memo->end()) {
      return it->second;
    }
  }
  const bool meta_flat = node->uid == 0 && node->gid == 0 &&
                         (node->mode & (mode::kSetUid | mode::kSetGid)) == 0;
  SnapNodePtr out;
  if (node->type == FileType::Directory) {
    std::map<std::string, SnapNodePtr> children;
    bool changed = !meta_flat;
    for (const auto& [name, child] : node->children) {
      if (child->type == FileType::CharDev ||
          child->type == FileType::BlockDev) {
        changed = true;  // Type III images cannot contain device nodes
        continue;
      }
      SnapNodePtr flat = flatten_snapshot(child, memo);
      changed = changed || flat != child;
      children.emplace(name, std::move(flat));
    }
    if (!changed) {
      out = node;
    } else {
      SnapNode copy = *node;
      copy.uid = 0;
      copy.gid = 0;
      copy.mode &= ~(mode::kSetUid | mode::kSetGid);
      copy.children = std::move(children);
      out = freeze_snap_node(std::move(copy));
    }
  } else if (meta_flat) {
    out = node;
  } else {
    SnapNode copy = *node;
    copy.uid = 0;
    copy.gid = 0;
    copy.mode &= ~(mode::kSetUid | mode::kSetGid);
    out = freeze_snap_node(std::move(copy));
  }
  if (memo != nullptr) memo->emplace(node->digest, out);
  return out;
}

}  // namespace minicon::vfs
