// Generic whole-tree operations over the Filesystem interface.
//
// copy_tree is the primitive behind (a) the Podman "vfs" storage driver,
// which deep-copies the parent layer for every new layer, and (b) image
// export/import. It preserves ownership, modes, devices, symlinks, and
// xattrs exactly as stored — permission *checks* happen in the kernel, so a
// privileged copy preserves everything while an unprivileged one would be
// performed through the syscall layer instead.
#pragma once

#include <functional>
#include <string>

#include "support/result.hpp"
#include "vfs/filesystem.hpp"

namespace minicon::vfs {

struct CopyStats {
  std::uint64_t files = 0;
  std::uint64_t dirs = 0;
  std::uint64_t symlinks = 0;
  std::uint64_t devices = 0;
  std::uint64_t bytes = 0;
};

// Recursively copies the *contents* of src_dir (on src fs) into dst_dir (on
// dst fs). Both directories must already exist. Returns copy statistics.
Result<CopyStats> copy_tree(Filesystem& src, InodeNum src_dir, Filesystem& dst,
                            InodeNum dst_dir, const OpCtx& ctx);

// Visit every entry under `dir` depth-first (parents before children).
// The visitor receives the slash-joined path relative to `dir` (no leading
// slash) and the entry's Stat. Returning false aborts the walk.
VoidResult walk_tree(
    Filesystem& fs, InodeNum dir,
    const std::function<bool(const std::string& rel_path, const Stat& st)>&
        visit);

// Total regular-file bytes reachable under `dir`.
Result<std::uint64_t> tree_bytes(Filesystem& fs, InodeNum dir);

// Number of entries (files + dirs + others) reachable under `dir`.
Result<std::uint64_t> tree_entry_count(Filesystem& fs, InodeNum dir);

}  // namespace minicon::vfs

namespace minicon::vfs {
// Removes every entry under `dir` (store-side; no permission checks beyond
// what the filesystem itself enforces).
VoidResult remove_tree_contents(Filesystem& fs, InodeNum dir, const OpCtx& ctx);
}  // namespace minicon::vfs
