// Abstract filesystem interface.
//
// Every concrete filesystem (MemFs, OverlayFs, SharedFs) exposes inode-level
// operations; the kernel's path walker and permission checks sit above this
// layer. Filesystems do NOT check POSIX permissions — that is the kernel's
// job — but server-enforcing filesystems (the NFS model) may apply their own
// server-side identity rules using the OpCtx, which is exactly the mechanism
// by which rootless Podman's ID maps break on shared filesystems (§4.2).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/result.hpp"
#include "vfs/types.hpp"

namespace minicon::vfs {

// Immutable copy-on-write snapshot node (see vfs/snapshot.hpp).
struct SnapNode;
using SnapNodePtr = std::shared_ptr<const SnapNode>;

// How much work a snapshot() call actually did: caching filesystems reuse
// subtrees whose digests are still valid and rebuild only dirty paths.
struct SnapshotStats {
  std::uint64_t nodes_built = 0;   // nodes (and digests) computed fresh
  std::uint64_t nodes_reused = 0;  // nodes reused from subtree caches
};

struct CreateArgs {
  FileType type = FileType::Regular;
  std::uint32_t mode = 0644;
  Uid uid = 0;
  Gid gid = 0;
  std::uint32_t dev_major = 0;
  std::uint32_t dev_minor = 0;
  std::string symlink_target;  // for FileType::Symlink
};

class Filesystem {
 public:
  virtual ~Filesystem() = default;

  // Human-readable name for diagnostics ("tmpfs", "overlay", "nfs").
  virtual std::string fs_type() const = 0;

  // Feature flags that container storage drivers probe for.
  virtual bool supports_user_xattrs() const = 0;
  virtual bool supports_device_nodes() const { return true; }

  virtual InodeNum root() const = 0;

  virtual Result<InodeNum> lookup(InodeNum dir, const std::string& name) = 0;
  virtual Result<Stat> getattr(InodeNum node) = 0;
  virtual Result<std::vector<DirEntry>> readdir(InodeNum dir) = 0;
  virtual Result<std::string> readlink(InodeNum node) = 0;
  virtual Result<std::string> read(InodeNum node) = 0;

  virtual Result<InodeNum> create(const OpCtx& ctx, InodeNum dir,
                                  const std::string& name,
                                  const CreateArgs& args) = 0;
  virtual VoidResult write(const OpCtx& ctx, InodeNum node, std::string data,
                           bool append) = 0;
  virtual VoidResult set_owner(const OpCtx& ctx, InodeNum node, Uid uid,
                               Gid gid) = 0;
  virtual VoidResult set_mode(const OpCtx& ctx, InodeNum node,
                              std::uint32_t mode) = 0;
  // Hard link `target` into `dir` as `name`.
  virtual VoidResult link(const OpCtx& ctx, InodeNum dir,
                          const std::string& name, InodeNum target) = 0;
  virtual VoidResult unlink(const OpCtx& ctx, InodeNum dir,
                            const std::string& name) = 0;
  virtual VoidResult rmdir(const OpCtx& ctx, InodeNum dir,
                           const std::string& name) = 0;
  virtual VoidResult rename(const OpCtx& ctx, InodeNum src_dir,
                            const std::string& src_name, InodeNum dst_dir,
                            const std::string& dst_name) = 0;

  // Extended attributes (user.* namespace). Used by the Podman storage
  // driver to stash container ownership; unsupported on the default NFS
  // model, reproducing the shared-filesystem clash from §6.1.
  virtual VoidResult set_xattr(const OpCtx& ctx, InodeNum node,
                               const std::string& name,
                               const std::string& value) = 0;
  virtual Result<std::string> get_xattr(InodeNum node,
                                        const std::string& name) = 0;
  virtual Result<std::vector<std::string>> list_xattrs(InodeNum node) = 0;
  virtual VoidResult remove_xattr(const OpCtx& ctx, InodeNum node,
                                  const std::string& name) = 0;

  // Copy-on-write snapshot of the subtree rooted at `node`, with per-node
  // Merkle digests. The default walks the whole subtree through the public
  // interface (O(subtree)); MemFs and OverlayFs override it with per-inode
  // caches so only dirty paths are rebuilt (O(changed)).
  virtual Result<SnapNodePtr> snapshot(InodeNum node,
                                       SnapshotStats* stats = nullptr);
};

using FilesystemPtr = std::shared_ptr<Filesystem>;

}  // namespace minicon::vfs
