#include "vfs/overlayfs.hpp"

#include <cassert>

#include "vfs/snapshot.hpp"

namespace minicon::vfs {

OverlayFs::OverlayFs(FilesystemPtr lower) : lower_(std::move(lower)) {
  assert(lower_ != nullptr);
  Node root;
  root.parent = kRootIno;
  root.name = "/";
  root.lower = lower_->root();
  nodes_.emplace(kRootIno, std::move(root));
}

OverlayFs::Node* OverlayFs::get(InodeNum n) {
  auto it = nodes_.find(n);
  return it == nodes_.end() ? nullptr : &it->second;
}

InodeNum OverlayFs::intern(InodeNum dir, const std::string& name,
                           std::optional<InodeNum> lower,
                           std::optional<InodeNum> upper) {
  Node* d = get(dir);
  assert(d != nullptr);
  auto it = d->children.find(name);
  if (it != d->children.end()) {
    Node* existing = get(it->second);
    if (lower) existing->lower = lower;
    if (upper) existing->upper = upper;
    return it->second;
  }
  const InodeNum n = next_ino_++;
  Node node;
  node.parent = dir;
  node.name = name;
  node.lower = lower;
  node.upper = upper;
  nodes_.emplace(n, std::move(node));
  d->children.emplace(name, n);
  return n;
}

void OverlayFs::forget(InodeNum dir, const std::string& name) {
  Node* d = get(dir);
  if (d == nullptr) return;
  auto it = d->children.find(name);
  if (it == d->children.end()) return;
  nodes_.erase(it->second);
  d->children.erase(it);
}

void OverlayFs::touch(InodeNum n) {
  while (true) {
    Node* node = get(n);
    if (node == nullptr) return;
    node->snap.reset();
    if (node->parent == n) return;  // root points to itself
    n = node->parent;
  }
}

Result<Stat> OverlayFs::backing_stat(const Node& node) {
  Result<Stat> st = node.upper ? upper_.getattr(*node.upper)
                               : lower_->getattr(*node.lower);
  return st;
}

Result<InodeNum> OverlayFs::lookup(InodeNum dir, const std::string& name) {
  Node* d = get(dir);
  if (d == nullptr) return Err::estale;
  if (whited_out(dir, name)) return Err::enoent;
  // A previously-interned dentry is authoritative.
  auto it = d->children.find(name);
  if (it != d->children.end()) return it->second;

  std::optional<InodeNum> upper;
  std::optional<InodeNum> lower;
  if (d->upper) {
    if (auto r = upper_.lookup(*d->upper, name); r.ok()) upper = *r;
  }
  if (d->lower) {
    if (auto r = lower_->lookup(*d->lower, name); r.ok()) lower = *r;
  }
  if (upper && lower) {
    // A non-directory upper entry fully shadows the lower one.
    auto ust = upper_.getattr(*upper);
    auto lst = lower_->getattr(*lower);
    if (!ust.ok()) return ust.error();
    if (!(ust->is_dir() && lst.ok() && lst->is_dir())) lower.reset();
  }
  if (!upper && !lower) return Err::enoent;
  return intern(dir, name, lower, upper);
}

Result<Stat> OverlayFs::getattr(InodeNum n) {
  Node* node = get(n);
  if (node == nullptr) return Err::estale;
  MINICON_TRY_ASSIGN(st, backing_stat(*node));
  st.ino = n;
  return st;
}

Result<std::vector<DirEntry>> OverlayFs::readdir(InodeNum dir) {
  Node* d = get(dir);
  if (d == nullptr) return Err::estale;
  MINICON_TRY_ASSIGN(st, backing_stat(*d));
  if (!st.is_dir()) return Err::enotdir;

  std::map<std::string, DirEntry> merged;
  if (d->lower) {
    MINICON_TRY_ASSIGN(entries, lower_->readdir(*d->lower));
    for (auto& e : entries) {
      if (whited_out(dir, e.name)) continue;
      merged[e.name] = e;
    }
  }
  if (d->upper) {
    MINICON_TRY_ASSIGN(entries, upper_.readdir(*d->upper));
    for (auto& e : entries) merged[e.name] = e;
  }
  std::vector<DirEntry> out;
  out.reserve(merged.size());
  for (auto& [name, e] : merged) {
    // Report overlay inode numbers, interning on the fly.
    auto child = lookup(dir, name);
    if (!child.ok()) continue;
    out.push_back({name, *child, e.type});
  }
  return out;
}

Result<std::string> OverlayFs::readlink(InodeNum n) {
  Node* node = get(n);
  if (node == nullptr) return Err::estale;
  return node->upper ? upper_.readlink(*node->upper)
                     : lower_->readlink(*node->lower);
}

Result<std::string> OverlayFs::read(InodeNum n) {
  Node* node = get(n);
  if (node == nullptr) return Err::estale;
  return node->upper ? upper_.read(*node->upper) : lower_->read(*node->lower);
}

VoidResult OverlayFs::ensure_upper(const OpCtx& ctx, InodeNum n) {
  Node* node = get(n);
  if (node == nullptr) return Err::estale;
  if (node->upper) return {};
  if (n == kRootIno) {
    // Root copy-up: mirror the lower root's attributes onto the upper root.
    MINICON_TRY_ASSIGN(lst, lower_->getattr(*node->lower));
    const InodeNum uroot = upper_.root();
    MINICON_TRY(upper_.set_mode(ctx, uroot, lst.mode));
    MINICON_TRY(upper_.set_owner(ctx, uroot, lst.uid, lst.gid));
    node->upper = uroot;
    return {};
  }
  MINICON_TRY(ensure_upper(ctx, node->parent));
  Node* parent = get(node->parent);
  MINICON_TRY_ASSIGN(lst, lower_->getattr(*node->lower));

  CreateArgs args;
  args.type = lst.type;
  args.mode = lst.mode;
  args.uid = lst.uid;
  args.gid = lst.gid;
  args.dev_major = lst.dev_major;
  args.dev_minor = lst.dev_minor;
  if (lst.type == FileType::Symlink) {
    MINICON_TRY_ASSIGN(target, lower_->readlink(*node->lower));
    args.symlink_target = target;
  }
  MINICON_TRY_ASSIGN(up, upper_.create(ctx, *parent->upper, node->name, args));
  if (lst.type == FileType::Regular) {
    MINICON_TRY_ASSIGN(data, lower_->read(*node->lower));
    MINICON_TRY(upper_.write(ctx, up, std::move(data), /*append=*/false));
  }
  if (auto xattrs = lower_->list_xattrs(*node->lower); xattrs.ok()) {
    for (const auto& name : *xattrs) {
      if (auto v = lower_->get_xattr(*node->lower, name); v.ok()) {
        MINICON_TRY(upper_.set_xattr(ctx, up, name, *v));
      }
    }
  }
  node->upper = up;
  return {};
}

VoidResult OverlayFs::ensure_upper_deep(const OpCtx& ctx, InodeNum n) {
  MINICON_TRY(ensure_upper(ctx, n));
  MINICON_TRY_ASSIGN(st, getattr(n));
  if (!st.is_dir()) return {};
  MINICON_TRY_ASSIGN(entries, readdir(n));
  for (const auto& e : entries) {
    MINICON_TRY(ensure_upper_deep(ctx, e.ino));
  }
  return {};
}

Result<InodeNum> OverlayFs::create(const OpCtx& ctx, InodeNum dir,
                                   const std::string& name,
                                   const CreateArgs& args) {
  Node* d = get(dir);
  if (d == nullptr) return Err::estale;
  if (auto existing = lookup(dir, name); existing.ok()) return Err::eexist;
  MINICON_TRY(ensure_upper(ctx, dir));
  d = get(dir);
  MINICON_TRY_ASSIGN(up, upper_.create(ctx, *d->upper, name, args));
  whiteouts_.erase({dir, name});
  touch(dir);
  return intern(dir, name, std::nullopt, up);
}

VoidResult OverlayFs::write(const OpCtx& ctx, InodeNum n, std::string data,
                            bool append) {
  MINICON_TRY(ensure_upper(ctx, n));
  Node* node = get(n);
  MINICON_TRY(upper_.write(ctx, *node->upper, std::move(data), append));
  touch(n);
  return {};
}

VoidResult OverlayFs::set_owner(const OpCtx& ctx, InodeNum n, Uid uid,
                                Gid gid) {
  MINICON_TRY(ensure_upper(ctx, n));
  Node* node = get(n);
  MINICON_TRY(upper_.set_owner(ctx, *node->upper, uid, gid));
  touch(n);
  return {};
}

VoidResult OverlayFs::set_mode(const OpCtx& ctx, InodeNum n, std::uint32_t m) {
  MINICON_TRY(ensure_upper(ctx, n));
  Node* node = get(n);
  MINICON_TRY(upper_.set_mode(ctx, *node->upper, m));
  touch(n);
  return {};
}

VoidResult OverlayFs::link(const OpCtx& ctx, InodeNum dir,
                           const std::string& name, InodeNum target) {
  Node* d = get(dir);
  if (d == nullptr) return Err::estale;
  if (auto existing = lookup(dir, name); existing.ok()) return Err::eexist;
  MINICON_TRY(ensure_upper(ctx, dir));
  MINICON_TRY(ensure_upper(ctx, target));
  d = get(dir);
  Node* t = get(target);
  MINICON_TRY(upper_.link(ctx, *d->upper, name, *t->upper));
  whiteouts_.erase({dir, name});
  intern(dir, name, std::nullopt, *t->upper);
  touch(dir);
  return {};
}

VoidResult OverlayFs::unlink(const OpCtx& ctx, InodeNum dir,
                             const std::string& name) {
  MINICON_TRY_ASSIGN(child, lookup(dir, name));
  MINICON_TRY_ASSIGN(st, getattr(child));
  if (st.is_dir()) return Err::eisdir;
  // A whiteout makes `dir` differ from its lower copy, so the parent must be
  // copied up even when the victim only exists in the lower layer — kernel
  // overlayfs performs the same parent copy-up before writing a whiteout.
  // This keeps "no upper ⇒ subtree identical to lower" true for snapshots.
  MINICON_TRY(ensure_upper(ctx, dir));
  Node* node = get(child);
  const bool had_lower = node->lower.has_value();
  if (node->upper) {
    Node* d = get(dir);
    MINICON_TRY(upper_.unlink(ctx, *d->upper, name));
  }
  if (had_lower) whiteouts_.insert({dir, name});
  forget(dir, name);
  touch(dir);
  return {};
}

VoidResult OverlayFs::rmdir(const OpCtx& ctx, InodeNum dir,
                            const std::string& name) {
  MINICON_TRY_ASSIGN(child, lookup(dir, name));
  MINICON_TRY_ASSIGN(st, getattr(child));
  if (!st.is_dir()) return Err::enotdir;
  MINICON_TRY_ASSIGN(entries, readdir(child));
  if (!entries.empty()) return Err::enotempty;
  // Parent copy-up before whiteout, as in unlink.
  MINICON_TRY(ensure_upper(ctx, dir));
  Node* node = get(child);
  const bool had_lower = node->lower.has_value();
  if (node->upper) {
    Node* d = get(dir);
    MINICON_TRY(upper_.rmdir(ctx, *d->upper, name));
  }
  if (had_lower) whiteouts_.insert({dir, name});
  forget(dir, name);
  touch(dir);
  return {};
}

VoidResult OverlayFs::rename(const OpCtx& ctx, InodeNum src_dir,
                             const std::string& src_name, InodeNum dst_dir,
                             const std::string& dst_name) {
  MINICON_TRY_ASSIGN(moving, lookup(src_dir, src_name));
  // Real overlayfs returns EXDEV for lower-dir renames and userspace falls
  // back to copy+delete; we perform the copy-up directly.
  MINICON_TRY(ensure_upper_deep(ctx, moving));

  if (auto existing = lookup(dst_dir, dst_name); existing.ok()) {
    MINICON_TRY_ASSIGN(est, getattr(*existing));
    if (est.is_dir()) {
      MINICON_TRY(rmdir(ctx, dst_dir, dst_name));
    } else {
      MINICON_TRY(unlink(ctx, dst_dir, dst_name));
    }
  }
  MINICON_TRY(ensure_upper(ctx, dst_dir));
  MINICON_TRY(ensure_upper(ctx, src_dir));
  Node* sd = get(src_dir);
  Node* dd = get(dst_dir);
  MINICON_TRY(upper_.rename(ctx, *sd->upper, src_name, *dd->upper, dst_name));

  Node* node = get(moving);
  const bool had_lower = node->lower.has_value();
  const InodeNum upper_ino = *node->upper;
  forget(src_dir, src_name);
  if (had_lower) whiteouts_.insert({src_dir, src_name});
  whiteouts_.erase({dst_dir, dst_name});
  intern(dst_dir, dst_name, std::nullopt, upper_ino);
  touch(src_dir);
  touch(dst_dir);
  return {};
}

VoidResult OverlayFs::set_xattr(const OpCtx& ctx, InodeNum n,
                                const std::string& name,
                                const std::string& value) {
  MINICON_TRY(ensure_upper(ctx, n));
  Node* node = get(n);
  MINICON_TRY(upper_.set_xattr(ctx, *node->upper, name, value));
  touch(n);
  return {};
}

Result<std::string> OverlayFs::get_xattr(InodeNum n, const std::string& name) {
  Node* node = get(n);
  if (node == nullptr) return Err::estale;
  return node->upper ? upper_.get_xattr(*node->upper, name)
                     : lower_->get_xattr(*node->lower, name);
}

Result<std::vector<std::string>> OverlayFs::list_xattrs(InodeNum n) {
  Node* node = get(n);
  if (node == nullptr) return Err::estale;
  return node->upper ? upper_.list_xattrs(*node->upper)
                     : lower_->list_xattrs(*node->lower);
}

VoidResult OverlayFs::remove_xattr(const OpCtx& ctx, InodeNum n,
                                   const std::string& name) {
  MINICON_TRY(ensure_upper(ctx, n));
  Node* node = get(n);
  MINICON_TRY(upper_.remove_xattr(ctx, *node->upper, name));
  touch(n);
  return {};
}

Result<SnapNodePtr> OverlayFs::snapshot(InodeNum n, SnapshotStats* stats) {
  Node* node = get(n);
  if (node == nullptr) return Err::estale;
  if (node->snap != nullptr) {
    if (stats != nullptr) stats->nodes_reused += node->snap->tree_nodes;
    return node->snap;
  }
  if (!node->upper && node->lower) {
    // No upper backing means nothing below was ever mutated (whiteouts force
    // parent copy-up), so the subtree is byte-identical to the lower one —
    // delegate and share the lower filesystem's nodes outright.
    MINICON_TRY_ASSIGN(snap, lower_->snapshot(*node->lower, stats));
    node->snap = snap;
    return snap;
  }
  MINICON_TRY_ASSIGN(st, backing_stat(*node));
  SnapNode sn;
  sn.type = st.type;
  sn.mode = st.mode;
  sn.uid = st.uid;
  sn.gid = st.gid;
  sn.dev_major = st.dev_major;
  sn.dev_minor = st.dev_minor;
  if (auto xattrs = list_xattrs(n); xattrs.ok()) {
    for (const auto& name : *xattrs) {
      if (auto v = get_xattr(n, name); v.ok()) sn.xattrs[name] = *v;
    }
  }
  if (st.is_dir()) {
    MINICON_TRY_ASSIGN(entries, readdir(n));
    for (const auto& e : entries) {
      MINICON_TRY_ASSIGN(child, snapshot(e.ino, stats));
      sn.children.emplace(e.name, std::move(child));
    }
    node = get(n);  // readdir interns dentries; re-fetch to be safe
  } else if (st.type == FileType::Regular) {
    MINICON_TRY_ASSIGN(data, read(n));
    sn.content = std::make_shared<const std::string>(std::move(data));
  } else if (st.type == FileType::Symlink) {
    MINICON_TRY_ASSIGN(target, readlink(n));
    sn.content = std::make_shared<const std::string>(std::move(target));
  }
  node->snap = freeze_snap_node(std::move(sn));
  if (stats != nullptr) ++stats->nodes_built;
  return node->snap;
}

}  // namespace minicon::vfs
