// In-memory filesystem: the tmpfs / local-disk model.
//
// MemFs performs no identity checks of its own (OpCtx is accepted and used
// only for timestamps); POSIX permission enforcement is the kernel's job.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "vfs/filesystem.hpp"

namespace minicon::vfs {

class MemFs : public Filesystem {
 public:
  // Creates an empty filesystem whose root directory is owned by root:root
  // with the given mode.
  explicit MemFs(std::uint32_t root_mode = 0755);

  std::string fs_type() const override { return "tmpfs"; }
  bool supports_user_xattrs() const override { return true; }

  InodeNum root() const override { return root_; }

  Result<InodeNum> lookup(InodeNum dir, const std::string& name) override;
  Result<Stat> getattr(InodeNum node) override;
  Result<std::vector<DirEntry>> readdir(InodeNum dir) override;
  Result<std::string> readlink(InodeNum node) override;
  Result<std::string> read(InodeNum node) override;

  Result<InodeNum> create(const OpCtx& ctx, InodeNum dir,
                          const std::string& name,
                          const CreateArgs& args) override;
  VoidResult write(const OpCtx& ctx, InodeNum node, std::string data,
                   bool append) override;
  VoidResult set_owner(const OpCtx& ctx, InodeNum node, Uid uid,
                       Gid gid) override;
  VoidResult set_mode(const OpCtx& ctx, InodeNum node,
                      std::uint32_t mode) override;
  VoidResult link(const OpCtx& ctx, InodeNum dir, const std::string& name,
                  InodeNum target) override;
  VoidResult unlink(const OpCtx& ctx, InodeNum dir,
                    const std::string& name) override;
  VoidResult rmdir(const OpCtx& ctx, InodeNum dir,
                   const std::string& name) override;
  VoidResult rename(const OpCtx& ctx, InodeNum src_dir,
                    const std::string& src_name, InodeNum dst_dir,
                    const std::string& dst_name) override;

  VoidResult set_xattr(const OpCtx& ctx, InodeNum node, const std::string& name,
                       const std::string& value) override;
  Result<std::string> get_xattr(InodeNum node,
                                const std::string& name) override;
  Result<std::vector<std::string>> list_xattrs(InodeNum node) override;
  VoidResult remove_xattr(const OpCtx& ctx, InodeNum node,
                          const std::string& name) override;

  // O(changed) snapshots: each inode caches its frozen subtree snapshot and
  // mutations invalidate only the dirty path to the root, so re-snapshotting
  // after touching one file rebuilds one path and reuses every sibling.
  Result<SnapNodePtr> snapshot(InodeNum node,
                               SnapshotStats* stats = nullptr) override;

  // Total bytes of file content; the storage-driver bench uses this to show
  // the VFS driver's "significant storage overhead" (§4.1).
  std::uint64_t total_bytes() const;
  std::size_t inode_count() const { return inodes_.size(); }

 private:
  struct Inode {
    Stat st;
    std::string data;                           // regular / symlink target
    std::map<std::string, InodeNum> children;   // directory
    std::map<std::string, std::string> xattrs;
    SnapNodePtr snap;                // cached frozen subtree, null when dirty
    std::vector<InodeNum> parents;   // one entry per link (dirs: exactly one)
  };

  Inode* get(InodeNum n);
  Result<Inode*> get_dir(InodeNum n);
  InodeNum alloc(const OpCtx& ctx, const CreateArgs& args);
  void unref(InodeNum n);
  // Invalidates n's cached snapshot and every cached ancestor along its link
  // parents; stops at ancestors that are already invalid (their own
  // ancestors must already be invalid too).
  void touch(InodeNum n);

  std::unordered_map<InodeNum, Inode> inodes_;
  InodeNum next_ino_ = 1;
  InodeNum root_ = 0;
};

}  // namespace minicon::vfs
