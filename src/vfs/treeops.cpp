#include "vfs/treeops.hpp"

namespace minicon::vfs {

namespace {

VoidResult copy_node(Filesystem& src, InodeNum src_node, const Stat& st,
                     Filesystem& dst, InodeNum dst_dir, const std::string& name,
                     const OpCtx& ctx, CopyStats& stats, InodeNum& out_node) {
  CreateArgs args;
  args.type = st.type;
  args.mode = st.mode;
  args.uid = st.uid;
  args.gid = st.gid;
  args.dev_major = st.dev_major;
  args.dev_minor = st.dev_minor;
  if (st.type == FileType::Symlink) {
    MINICON_TRY_ASSIGN(target, src.readlink(src_node));
    args.symlink_target = target;
  }
  MINICON_TRY_ASSIGN(created, dst.create(ctx, dst_dir, name, args));
  out_node = created;
  switch (st.type) {
    case FileType::Regular: {
      MINICON_TRY_ASSIGN(data, src.read(src_node));
      stats.bytes += data.size();
      MINICON_TRY(dst.write(ctx, created, std::move(data), /*append=*/false));
      ++stats.files;
      break;
    }
    case FileType::Directory:
      ++stats.dirs;
      break;
    case FileType::Symlink:
      ++stats.symlinks;
      break;
    case FileType::CharDev:
    case FileType::BlockDev:
      ++stats.devices;
      break;
    default:
      break;
  }
  if (auto xattrs = src.list_xattrs(src_node); xattrs.ok()) {
    for (const auto& xname : *xattrs) {
      if (auto v = src.get_xattr(src_node, xname); v.ok()) {
        // Xattr copy is best-effort: the destination may not support them.
        (void)dst.set_xattr(ctx, created, xname, *v);
      }
    }
  }
  return {};
}

VoidResult copy_children(Filesystem& src, InodeNum src_dir, Filesystem& dst,
                         InodeNum dst_dir, const OpCtx& ctx, CopyStats& stats) {
  MINICON_TRY_ASSIGN(entries, src.readdir(src_dir));
  for (const auto& e : entries) {
    MINICON_TRY_ASSIGN(st, src.getattr(e.ino));
    InodeNum created = 0;
    MINICON_TRY(
        copy_node(src, e.ino, st, dst, dst_dir, e.name, ctx, stats, created));
    if (st.is_dir()) {
      MINICON_TRY(copy_children(src, e.ino, dst, created, ctx, stats));
    }
  }
  return {};
}

}  // namespace

Result<CopyStats> copy_tree(Filesystem& src, InodeNum src_dir, Filesystem& dst,
                            InodeNum dst_dir, const OpCtx& ctx) {
  CopyStats stats;
  MINICON_TRY(copy_children(src, src_dir, dst, dst_dir, ctx, stats));
  return stats;
}

namespace {

VoidResult walk_impl(
    Filesystem& fs, InodeNum dir, const std::string& prefix,
    const std::function<bool(const std::string&, const Stat&)>& visit,
    bool& keep_going) {
  MINICON_TRY_ASSIGN(entries, fs.readdir(dir));
  for (const auto& e : entries) {
    if (!keep_going) return {};
    MINICON_TRY_ASSIGN(st, fs.getattr(e.ino));
    const std::string rel = prefix.empty() ? e.name : prefix + "/" + e.name;
    if (!visit(rel, st)) {
      keep_going = false;
      return {};
    }
    if (st.is_dir()) {
      MINICON_TRY(walk_impl(fs, e.ino, rel, visit, keep_going));
    }
  }
  return {};
}

}  // namespace

VoidResult walk_tree(
    Filesystem& fs, InodeNum dir,
    const std::function<bool(const std::string&, const Stat&)>& visit) {
  bool keep_going = true;
  return walk_impl(fs, dir, "", visit, keep_going);
}

Result<std::uint64_t> tree_bytes(Filesystem& fs, InodeNum dir) {
  std::uint64_t total = 0;
  MINICON_TRY(walk_tree(fs, dir, [&](const std::string&, const Stat& st) {
    if (st.type == FileType::Regular) total += st.size;
    return true;
  }));
  return total;
}

Result<std::uint64_t> tree_entry_count(Filesystem& fs, InodeNum dir) {
  std::uint64_t total = 0;
  MINICON_TRY(walk_tree(fs, dir, [&](const std::string&, const Stat&) {
    ++total;
    return true;
  }));
  return total;
}

}  // namespace minicon::vfs

namespace minicon::vfs {

VoidResult remove_tree_contents(Filesystem& fs, InodeNum dir,
                                const OpCtx& ctx) {
  MINICON_TRY_ASSIGN(entries, fs.readdir(dir));
  for (const auto& e : entries) {
    MINICON_TRY_ASSIGN(st, fs.getattr(e.ino));
    if (st.is_dir()) {
      MINICON_TRY(remove_tree_contents(fs, e.ino, ctx));
      MINICON_TRY(fs.rmdir(ctx, dir, e.name));
    } else {
      MINICON_TRY(fs.unlink(ctx, dir, e.name));
    }
  }
  return {};
}

}  // namespace minicon::vfs
