#include "vfs/sharedfs.hpp"

namespace minicon::vfs {

SharedFs::SharedFs(SharedFsOptions options) : options_(std::move(options)) {}

Result<InodeNum> SharedFs::create(const OpCtx& ctx, InodeNum dir,
                                  const std::string& name,
                                  const CreateArgs& args) {
  CreateArgs adjusted = args;
  if (!server_privileged(ctx)) {
    // The server authenticates the real client identity and stores that,
    // regardless of what ownership the (namespaced) client asked for. This
    // is why §4.2 notes the UID/GID mappers "cannot work when the container
    // storage location is a shared filesystem".
    adjusted.uid = ctx.host_uid;
    adjusted.gid = ctx.host_gid;
  }
  return inner_.create(ctx, dir, name, adjusted);
}

VoidResult SharedFs::set_owner(const OpCtx& ctx, InodeNum node, Uid uid,
                               Gid gid) {
  if (!server_privileged(ctx)) {
    MINICON_TRY_ASSIGN(st, inner_.getattr(node));
    const bool uid_change = uid != kNoChangeId && uid != st.uid;
    const bool gid_change = gid != kNoChangeId && gid != st.gid;
    if (uid_change) return Err::eperm;
    if (gid_change && gid != ctx.host_gid) return Err::eperm;
  }
  return inner_.set_owner(ctx, node, uid, gid);
}

VoidResult SharedFs::set_xattr(const OpCtx& ctx, InodeNum node,
                               const std::string& name,
                               const std::string& value) {
  if (!options_.xattrs_supported) return Err::enotsup;
  return inner_.set_xattr(ctx, node, name, value);
}

Result<std::string> SharedFs::get_xattr(InodeNum node,
                                        const std::string& name) {
  if (!options_.xattrs_supported) return Err::enotsup;
  return inner_.get_xattr(node, name);
}

Result<std::vector<std::string>> SharedFs::list_xattrs(InodeNum node) {
  if (!options_.xattrs_supported) return Err::enotsup;
  return inner_.list_xattrs(node);
}

VoidResult SharedFs::remove_xattr(const OpCtx& ctx, InodeNum node,
                                  const std::string& name) {
  if (!options_.xattrs_supported) return Err::enotsup;
  return inner_.remove_xattr(ctx, node, name);
}

}  // namespace minicon::vfs
