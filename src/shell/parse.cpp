#include "shell/parse.hpp"

#include <cctype>

namespace minicon::shell {

std::optional<std::string> Word::literal() const {
  std::string out;
  for (const auto& seg : segs) {
    if (seg.kind != WordSeg::Kind::kLiteral || seg.quoted) return std::nullopt;
    out += seg.text;
  }
  return out;
}

Word Word::from_literal(std::string text) {
  Word w;
  w.segs.push_back({WordSeg::Kind::kLiteral, std::move(text), false});
  return w;
}

namespace {

struct Token {
  enum class Kind {
    kWord,
    kAndIf,   // &&
    kOrIf,    // ||
    kPipe,    // |
    kSemi,    // ; or newline
    kBang,    // !
    kRedirect,
    kEof,
  };
  Kind kind = Kind::kEof;
  Word word;          // kWord
  Redirect redirect;  // kRedirect (target filled by parser)
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  // Tokenizes the whole input. Returns false on unterminated quotes etc.
  bool run(std::vector<Token>& out, ParseError& err) {
    while (true) {
      skip_blanks();
      if (eof()) break;
      const char c = peek();
      if (c == '#') {
        while (!eof() && peek() != '\n') advance();
        continue;
      }
      if (c == '\n' || c == ';') {
        advance();
        push_op(out, Token::Kind::kSemi);
        continue;
      }
      if (c == '&' && peek(1) == '&') {
        advance();
        advance();
        push_op(out, Token::Kind::kAndIf);
        continue;
      }
      if (c == '|' && peek(1) == '|') {
        advance();
        advance();
        push_op(out, Token::Kind::kOrIf);
        continue;
      }
      if (c == '|') {
        advance();
        push_op(out, Token::Kind::kPipe);
        continue;
      }
      if (c == '>' || c == '<' || (std::isdigit(c) && is_redirect_start())) {
        if (!lex_redirect(out, err)) return false;
        continue;
      }
      if (c == '!' && is_word_boundary(1)) {
        advance();
        push_op(out, Token::Kind::kBang);
        continue;
      }
      if (!lex_word(out, err)) return false;
    }
    Token t;
    t.kind = Token::Kind::kEof;
    t.pos = pos_;
    out.push_back(std::move(t));
    return true;
  }

 private:
  bool eof(std::size_t ahead = 0) const { return pos_ + ahead >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return eof(ahead) ? '\0' : src_[pos_ + ahead];
  }
  void advance() { ++pos_; }

  void skip_blanks() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\r')) {
      advance();
    }
    // Line continuation.
    if (peek() == '\\' && peek(1) == '\n') {
      advance();
      advance();
      skip_blanks();
    }
  }

  bool is_word_boundary(std::size_t ahead) const {
    const char c = peek(ahead);
    return c == '\0' || c == ' ' || c == '\t' || c == '\n' || c == ';';
  }

  // "2>" style: a lone digit immediately before > or <.
  bool is_redirect_start() const {
    return std::isdigit(peek()) && (peek(1) == '>' || peek(1) == '<');
  }

  void push_op(std::vector<Token>& out, Token::Kind kind) {
    Token t;
    t.kind = kind;
    t.pos = pos_;
    out.push_back(std::move(t));
  }

  bool lex_redirect(std::vector<Token>& out, ParseError& err) {
    Token t;
    t.kind = Token::Kind::kRedirect;
    t.pos = pos_;
    Redirect r;
    if (std::isdigit(peek())) {
      r.fd = peek() - '0';
      advance();
    }
    if (peek() == '<') {
      advance();
      r.input = true;
      r.fd = 0;
    } else if (peek() == '>') {
      advance();
      if (peek() == '>') {
        advance();
        r.append = true;
      } else if (peek() == '&' && peek(1) == '1') {
        advance();
        advance();
        r.dup_to_stdout = true;
        t.redirect = r;
        out.push_back(std::move(t));
        return true;
      }
    } else {
      err = {"expected redirection operator", pos_};
      return false;
    }
    t.redirect = r;
    out.push_back(std::move(t));
    return true;
  }

  bool lex_dollar(Word& w, bool quoted, ParseError& err) {
    advance();  // consume $
    if (peek() == '{') {
      advance();
      std::string name;
      while (!eof() && peek() != '}') {
        name += peek();
        advance();
      }
      if (eof()) {
        err = {"unterminated ${", pos_};
        return false;
      }
      advance();  // }
      w.segs.push_back({WordSeg::Kind::kVariable, std::move(name), quoted});
      return true;
    }
    if (peek() == '(') {
      advance();
      std::string script;
      int depth = 1;
      while (!eof()) {
        const char c = peek();
        if (c == '(') ++depth;
        if (c == ')') {
          --depth;
          if (depth == 0) break;
        }
        script += c;
        advance();
      }
      if (eof()) {
        err = {"unterminated $(", pos_};
        return false;
      }
      advance();  // )
      w.segs.push_back({WordSeg::Kind::kCommandSub, std::move(script), quoted});
      return true;
    }
    if (peek() == '?') {
      advance();
      w.segs.push_back({WordSeg::Kind::kVariable, "?", quoted});
      return true;
    }
    std::string name;
    while (!eof() && (std::isalnum(peek()) || peek() == '_')) {
      name += peek();
      advance();
    }
    if (name.empty()) {
      // A bare $ is literal.
      w.segs.push_back({WordSeg::Kind::kLiteral, "$", quoted});
      return true;
    }
    w.segs.push_back({WordSeg::Kind::kVariable, std::move(name), quoted});
    return true;
  }

  bool lex_word(std::vector<Token>& out, ParseError& err) {
    Token t;
    t.kind = Token::Kind::kWord;
    t.pos = pos_;
    Word w;
    std::string lit;
    auto flush_lit = [&](bool quoted) {
      if (!lit.empty()) {
        w.segs.push_back({WordSeg::Kind::kLiteral, lit, quoted});
        lit.clear();
      }
    };
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == ';' || c == '|' ||
          c == '&' || c == '#' || c == '<') {
        break;
      }
      if (c == '>' || (std::isdigit(c) && lit.empty() && w.segs.empty() &&
                       is_redirect_start())) {
        if (c == '>') break;
        break;
      }
      if (c == '\\') {
        advance();
        if (eof()) break;
        if (peek() == '\n') {
          advance();
          continue;
        }
        lit += peek();
        advance();
        continue;
      }
      if (c == '\'') {
        flush_lit(false);
        advance();
        std::string quoted_text;
        while (!eof() && peek() != '\'') {
          quoted_text += peek();
          advance();
        }
        if (eof()) {
          err = {"unterminated single quote", pos_};
          return false;
        }
        advance();
        w.segs.push_back({WordSeg::Kind::kLiteral, std::move(quoted_text), true});
        continue;
      }
      if (c == '"') {
        flush_lit(false);
        advance();
        std::string quoted_text;
        while (!eof() && peek() != '"') {
          if (peek() == '\\' && !eof(1) &&
              (peek(1) == '"' || peek(1) == '\\' || peek(1) == '$' ||
               peek(1) == '`')) {
            advance();
            quoted_text += peek();
            advance();
            continue;
          }
          if (peek() == '$') {
            if (!quoted_text.empty()) {
              w.segs.push_back(
                  {WordSeg::Kind::kLiteral, std::move(quoted_text), true});
              quoted_text.clear();
            }
            if (!lex_dollar(w, /*quoted=*/true, err)) return false;
            continue;
          }
          quoted_text += peek();
          advance();
        }
        if (eof()) {
          err = {"unterminated double quote", pos_};
          return false;
        }
        advance();
        if (!quoted_text.empty()) {
          w.segs.push_back(
              {WordSeg::Kind::kLiteral, std::move(quoted_text), true});
        } else if (w.segs.empty()) {
          // Empty "" still yields an (empty, quoted) field.
          w.segs.push_back({WordSeg::Kind::kLiteral, "", true});
        }
        continue;
      }
      if (c == '$') {
        flush_lit(false);
        if (!lex_dollar(w, /*quoted=*/false, err)) return false;
        continue;
      }
      if (c == '`') {
        flush_lit(false);
        advance();
        std::string script;
        while (!eof() && peek() != '`') {
          script += peek();
          advance();
        }
        if (eof()) {
          err = {"unterminated backquote", pos_};
          return false;
        }
        advance();
        w.segs.push_back({WordSeg::Kind::kCommandSub, std::move(script), false});
        continue;
      }
      lit += c;
      advance();
    }
    flush_lit(false);
    if (w.segs.empty()) {
      err = {"empty word", pos_};
      return false;
    }
    t.word = std::move(w);
    out.push_back(std::move(t));
    return true;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  std::variant<List, ParseError> parse() {
    List list;
    if (!parse_list(list, /*terminators=*/{})) return err_;
    if (!at(Token::Kind::kEof)) {
      return ParseError{"unexpected token", cur().pos};
    }
    return list;
  }

 private:
  const Token& cur() const { return tokens_[idx_]; }
  bool at(Token::Kind k) const { return cur().kind == k; }
  void advance() {
    if (idx_ + 1 < tokens_.size()) ++idx_;
  }

  bool at_reserved(const std::string& name) const {
    if (!at(Token::Kind::kWord)) return false;
    auto lit = cur().word.literal();
    return lit.has_value() && *lit == name;
  }

  bool at_any_reserved(const std::vector<std::string>& names) const {
    for (const auto& n : names) {
      if (at_reserved(n)) return true;
    }
    return false;
  }

  void skip_semis() {
    while (at(Token::Kind::kSemi)) advance();
  }

  bool fail(const std::string& msg) {
    err_ = {msg, cur().pos};
    return false;
  }

  // terminators: reserved words that end the list (then/else/elif/fi/do/done)
  bool parse_list(List& out, const std::vector<std::string>& terminators) {
    skip_semis();
    while (!at(Token::Kind::kEof) && !at_any_reserved(terminators)) {
      AndOr item;
      if (!parse_and_or(item, terminators)) return false;
      out.items.push_back(std::move(item));
      skip_semis();
    }
    return true;
  }

  bool parse_and_or(AndOr& out, const std::vector<std::string>& terminators) {
    AndOrOp op = AndOrOp::kNone;
    while (true) {
      Pipeline pl;
      if (!parse_pipeline(pl, terminators)) return false;
      out.parts.push_back({op, std::move(pl)});
      if (at(Token::Kind::kAndIf)) {
        op = AndOrOp::kAnd;
        advance();
        continue;
      }
      if (at(Token::Kind::kOrIf)) {
        op = AndOrOp::kOr;
        advance();
        continue;
      }
      return true;
    }
  }

  bool parse_pipeline(Pipeline& out,
                      const std::vector<std::string>& terminators) {
    while (at(Token::Kind::kBang)) {
      out.negated = !out.negated;
      advance();
    }
    while (true) {
      CommandPtr cmd;
      if (!parse_command(cmd, terminators)) return false;
      out.commands.push_back(std::move(cmd));
      if (at(Token::Kind::kPipe)) {
        advance();
        continue;
      }
      return true;
    }
  }

  bool parse_command(CommandPtr& out,
                     const std::vector<std::string>& terminators) {
    if (at_reserved("if")) return parse_if(out);
    if (at_reserved("for")) return parse_for(out);
    return parse_simple(out, terminators);
  }

  bool parse_for(CommandPtr& out) {
    advance();  // for
    if (!at(Token::Kind::kWord)) return fail("expected variable after 'for'");
    auto var = cur().word.literal();
    if (!var) return fail("bad for-loop variable");
    advance();
    ForClause clause;
    clause.var = *var;
    if (at_reserved("in")) {
      advance();
      while (at(Token::Kind::kWord) && !at_reserved("do")) {
        clause.words.push_back(cur().word);
        advance();
      }
    }
    skip_semis();
    if (!at_reserved("do")) return fail("expected 'do'");
    advance();
    if (!parse_list(clause.body, {"done"})) return false;
    if (!at_reserved("done")) return fail("expected 'done'");
    advance();
    out = std::make_unique<CommandNode>(std::move(clause));
    return true;
  }

  bool parse_if(CommandPtr& out) {
    advance();  // if
    IfClause clause;
    while (true) {
      IfClause::Arm arm;
      if (!parse_list(arm.condition, {"then"})) return false;
      if (!at_reserved("then")) return fail("expected 'then'");
      advance();
      if (!parse_list(arm.body, {"elif", "else", "fi"})) return false;
      clause.arms.push_back(std::move(arm));
      if (at_reserved("elif")) {
        advance();
        continue;
      }
      break;
    }
    if (at_reserved("else")) {
      advance();
      List else_body;
      if (!parse_list(else_body, {"fi"})) return false;
      clause.else_body = std::move(else_body);
    }
    if (!at_reserved("fi")) return fail("expected 'fi'");
    advance();
    out = std::make_unique<CommandNode>(std::move(clause));
    return true;
  }

  static bool is_assignment(const Word& w, std::string& name, Word& value) {
    if (w.segs.empty()) return false;
    const WordSeg& first = w.segs.front();
    if (first.kind != WordSeg::Kind::kLiteral || first.quoted) return false;
    const std::size_t eq = first.text.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    for (std::size_t i = 0; i < eq; ++i) {
      const char c = first.text[i];
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
        return false;
      }
      if (i == 0 && std::isdigit(static_cast<unsigned char>(c))) return false;
    }
    name = first.text.substr(0, eq);
    value.segs.clear();
    if (eq + 1 < first.text.size()) {
      value.segs.push_back(
          {WordSeg::Kind::kLiteral, first.text.substr(eq + 1), false});
    }
    for (std::size_t i = 1; i < w.segs.size(); ++i) {
      value.segs.push_back(w.segs[i]);
    }
    if (value.segs.empty()) {
      value.segs.push_back({WordSeg::Kind::kLiteral, "", true});
    }
    return true;
  }

  bool parse_simple(CommandPtr& out,
                    const std::vector<std::string>& terminators) {
    SimpleCmd cmd;
    bool words_started = false;
    while (true) {
      if (at(Token::Kind::kRedirect)) {
        Redirect r = cur().redirect;
        advance();
        if (!r.dup_to_stdout) {
          if (!at(Token::Kind::kWord)) return fail("expected redirect target");
          r.target = cur().word;
          advance();
        }
        cmd.redirects.push_back(std::move(r));
        continue;
      }
      if (at(Token::Kind::kWord)) {
        if (!words_started && at_any_reserved(terminators)) break;
        std::string name;
        Word value;
        if (!words_started && is_assignment(cur().word, name, value)) {
          cmd.assignments.emplace_back(std::move(name), std::move(value));
          advance();
          continue;
        }
        words_started = true;
        cmd.words.push_back(cur().word);
        advance();
        continue;
      }
      break;
    }
    if (cmd.words.empty() && cmd.assignments.empty() && cmd.redirects.empty()) {
      return fail("expected command");
    }
    out = std::make_unique<CommandNode>(std::move(cmd));
    return true;
  }

  std::vector<Token> tokens_;
  std::size_t idx_ = 0;
  ParseError err_;
};

}  // namespace

std::variant<List, ParseError> parse_script(const std::string& script) {
  Lexer lexer(script);
  std::vector<Token> tokens;
  ParseError err;
  if (!lexer.run(tokens, err)) return err;
  Parser parser(std::move(tokens));
  return parser.parse();
}

}  // namespace minicon::shell
