// Standard commands: shell special builtins + the coreutils subset that
// distro scriptlets, init steps, and the paper's figures exercise.
#include <regex>

#include "kernel/syscalls.hpp"
#include "kernel/trace.hpp"
#include "kernel/userdb.hpp"
#include "kernel/zeroconsistency.hpp"
#include "shell/shell.hpp"
#include "support/path.hpp"
#include "support/strings.hpp"

namespace minicon::shell {

namespace {

using kernel::Process;

// --- small helpers -----------------------------------------------------------

int complain(Invocation& inv, const std::string& what, Err e) {
  inv.err += inv.args[0] + ": " + what + ": " +
             std::string(err_message(e)) + "\n";
  return 1;
}

// Reads the container's /etc/passwd and /etc/group (may be absent).
kernel::PasswdDb load_passwd(Invocation& inv) {
  auto text = inv.proc.sys->read_file(inv.proc, "/etc/passwd");
  return kernel::PasswdDb::parse(text.ok() ? *text : "");
}

kernel::GroupDb load_group(Invocation& inv) {
  auto text = inv.proc.sys->read_file(inv.proc, "/etc/group");
  return kernel::GroupDb::parse(text.ok() ? *text : "");
}

std::string uid_name(const kernel::PasswdDb& db, vfs::Uid uid) {
  if (auto e = db.by_uid(uid)) return e->name;
  if (uid == vfs::kOverflowUid) return "nobody";
  return std::to_string(uid);
}

std::string gid_name(const kernel::GroupDb& db, vfs::Gid gid) {
  if (auto e = db.by_gid(gid)) return e->name;
  if (gid == vfs::kOverflowGid) return "nogroup";
  return std::to_string(gid);
}

// "alice", "1000", "alice:users", ":users" -> ids. Returns false on unknown
// name.
bool parse_owner_spec(Invocation& inv, const std::string& spec, vfs::Uid& uid,
                      vfs::Gid& gid) {
  uid = vfs::kNoChangeId;
  gid = vfs::kNoChangeId;
  std::string user = spec, group;
  const auto colon = spec.find(':');
  if (colon != std::string::npos) {
    user = spec.substr(0, colon);
    group = spec.substr(colon + 1);
  }
  if (!user.empty()) {
    if (!parse_u32(user, uid)) {
      auto db = load_passwd(inv);
      auto e = db.by_name(user);
      if (!e) return false;
      uid = e->uid;
    }
  }
  if (!group.empty()) {
    if (!parse_u32(group, gid)) {
      auto db = load_group(inv);
      auto e = db.by_name(group);
      if (!e) return false;
      gid = e->gid;
    }
  }
  return true;
}

// Options shared by recursive commands: expands a path list depth-first.
VoidResult for_each_recursive(Invocation& inv, const std::string& path,
                              const std::function<VoidResult(
                                  const std::string&, const vfs::Stat&)>& fn) {
  MINICON_TRY_ASSIGN(st, inv.proc.sys->lstat(inv.proc, path));
  MINICON_TRY(fn(path, st));
  if (st.is_dir()) {
    MINICON_TRY_ASSIGN(entries, inv.proc.sys->readdir(inv.proc, path));
    for (const auto& e : entries) {
      MINICON_TRY(for_each_recursive(inv, path_join(path, e.name), fn));
    }
  }
  return {};
}

// --- special builtins ---------------------------------------------------------

int cmd_true(Invocation&) { return 0; }
int cmd_false(Invocation&) { return 1; }

int cmd_echo(Invocation& inv) {
  bool newline = true;
  std::size_t start = 1;
  if (inv.args.size() > 1 && inv.args[1] == "-n") {
    newline = false;
    start = 2;
  }
  for (std::size_t i = start; i < inv.args.size(); ++i) {
    if (i > start) inv.out += ' ';
    inv.out += inv.args[i];
  }
  if (newline) inv.out += '\n';
  return 0;
}

int cmd_cd(Invocation& inv) {
  const std::string target =
      inv.args.size() > 1 ? inv.args[1] : inv.proc.env_get("HOME");
  if (auto rc = inv.proc.sys->chdir(inv.proc, target.empty() ? "/" : target);
      !rc.ok()) {
    return complain(inv, target, rc.error());
  }
  return 0;
}

int cmd_pwd(Invocation& inv) {
  inv.out += inv.proc.cwd + "\n";
  return 0;
}

int cmd_set(Invocation& inv) {
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    const std::string& a = inv.args[i];
    if (a.size() < 2 || (a[0] != '-' && a[0] != '+')) continue;
    const bool enable = a[0] == '-';
    for (std::size_t j = 1; j < a.size(); ++j) {
      if (a[j] == 'e') inv.state.errexit = enable;
      if (a[j] == 'x') inv.state.xtrace = enable;
    }
  }
  return 0;
}

int cmd_export(Invocation& inv) {
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    const auto eq = inv.args[i].find('=');
    if (eq != std::string::npos) {
      inv.proc.env[inv.args[i].substr(0, eq)] = inv.args[i].substr(eq + 1);
    }
  }
  return 0;
}

int cmd_umask(Invocation& inv) {
  if (inv.args.size() < 2) {
    inv.out += format_octal(inv.proc.umask_bits, 4) + "\n";
    return 0;
  }
  std::uint32_t value = 0;
  for (char c : inv.args[1]) {
    if (c < '0' || c > '7') return 1;
    value = value * 8 + static_cast<std::uint32_t>(c - '0');
  }
  inv.proc.umask_bits = value & 0777;
  return 0;
}

int cmd_test(Invocation& inv) {
  std::vector<std::string> a(inv.args.begin() + 1, inv.args.end());
  if (inv.args[0] == "[") {
    if (a.empty() || a.back() != "]") {
      inv.err += "[: missing ]\n";
      return 2;
    }
    a.pop_back();
  }
  bool negate = false;
  while (!a.empty() && a.front() == "!") {
    negate = !negate;
    a.erase(a.begin());
  }
  bool result = false;
  auto& sys = *inv.proc.sys;
  if (a.empty()) {
    result = false;
  } else if (a.size() == 1) {
    result = !a[0].empty();
  } else if (a.size() == 2) {
    const std::string& op = a[0];
    const std::string& val = a[1];
    if (op == "-z") {
      result = val.empty();
    } else if (op == "-n") {
      result = !val.empty();
    } else if (op == "-e") {
      result = sys.stat(inv.proc, val).ok();
    } else if (op == "-f") {
      auto st = sys.stat(inv.proc, val);
      result = st.ok() && st->type == vfs::FileType::Regular;
    } else if (op == "-d") {
      auto st = sys.stat(inv.proc, val);
      result = st.ok() && st->is_dir();
    } else if (op == "-L" || op == "-h") {
      auto st = sys.lstat(inv.proc, val);
      result = st.ok() && st->is_symlink();
    } else if (op == "-x") {
      result = sys.access(inv.proc, val, kernel::kExecOk).ok();
    } else if (op == "-r") {
      result = sys.access(inv.proc, val, kernel::kReadOk).ok();
    } else if (op == "-w") {
      result = sys.access(inv.proc, val, kernel::kWriteOk).ok();
    } else if (op == "-s") {
      auto st = sys.stat(inv.proc, val);
      result = st.ok() && st->size > 0;
    } else {
      inv.err += "test: unknown operator " + op + "\n";
      return 2;
    }
  } else if (a.size() == 3) {
    const std::string& lhs = a[0];
    const std::string& op = a[1];
    const std::string& rhs = a[2];
    std::uint64_t l = 0, r = 0;
    const bool numeric = parse_u64(lhs, l) && parse_u64(rhs, r);
    if (op == "=" || op == "==") {
      result = lhs == rhs;
    } else if (op == "!=") {
      result = lhs != rhs;
    } else if (op == "-eq" && numeric) {
      result = l == r;
    } else if (op == "-ne" && numeric) {
      result = l != r;
    } else if (op == "-lt" && numeric) {
      result = l < r;
    } else if (op == "-le" && numeric) {
      result = l <= r;
    } else if (op == "-gt" && numeric) {
      result = l > r;
    } else if (op == "-ge" && numeric) {
      result = l >= r;
    } else {
      inv.err += "test: unknown operator " + op + "\n";
      return 2;
    }
  } else {
    inv.err += "test: too many arguments\n";
    return 2;
  }
  if (negate) result = !result;
  return result ? 0 : 1;
}

std::string pad_left(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

// strace [-c] PROG [ARGS...]: run a command with a tracing interposer
// stacked on top of the current syscall layer and print an `strace -c`
// style per-operation summary to stderr.
int cmd_strace(Invocation& inv) {
  std::size_t first = 1;
  if (first < inv.args.size() && inv.args[first] == "-c") ++first;
  if (first >= inv.args.size()) {
    inv.err += "strace: must have PROG [ARGS]\n";
    return 1;
  }
  auto stats = std::make_shared<kernel::SyscallStats>();
  auto saved = inv.proc.sys;
  inv.proc.sys = std::make_shared<kernel::TraceSyscalls>(saved, stats);
  std::vector<std::string> rest(inv.args.begin() + first, inv.args.end());
  const int status = inv.state.shell->dispatch_argv(
      inv.proc, rest, inv.out, inv.err, inv.stdin_data, inv.state);
  inv.proc.sys = saved;
  inv.err += "% calls    errors syscall\n";
  const auto ops = stats->by_op();
  std::uint64_t calls = 0, errors = 0;
  for (const auto& [op, c] : ops) {
    inv.err += pad_left(std::to_string(c.calls), 7) +
               pad_left(c.errors ? std::to_string(c.errors) : "", 10) + " " +
               op + "\n";
    calls += c.calls;
    errors += c.errors;
  }
  inv.err += pad_left(std::to_string(calls), 7) +
             pad_left(errors ? std::to_string(errors) : "", 10) + " total\n";
  return status;
}

// seccomp [--] PROG [ARGS...]: run a command under a zero-consistency
// seccomp filter — privileged operations (chown, setuid-chmod, device
// mknod, set*id, security xattrs) report success without executing and
// without recording anything. A *special* builtin on purpose: the filter is
// kernel-attached, so unlike the fakeroot wrapper it needs no binary
// installed in the image and it covers statically-linked executables.
int cmd_seccomp(Invocation& inv) {
  std::size_t first = 1;
  if (first < inv.args.size() && inv.args[first] == "--") ++first;
  if (first >= inv.args.size()) {
    inv.err += "seccomp: must have PROG [ARGS]\n";
    return 1;
  }
  auto stats = std::make_shared<kernel::ZeroConsistencyStats>();
  auto saved = inv.proc.sys;
  inv.proc.sys = std::make_shared<kernel::ZeroConsistencySyscalls>(
      saved, stats);
  std::vector<std::string> rest(inv.args.begin() + first, inv.args.end());
  const int status = inv.state.shell->dispatch_argv(
      inv.proc, rest, inv.out, inv.err, inv.stdin_data, inv.state);
  inv.proc.sys = saved;
  const auto t = stats->totals();
  if (t.total() > 0) {
    inv.err += "seccomp: faked " + std::to_string(t.total()) +
               " privileged syscall(s); results not kept\n";
  }
  return status;
}

int cmd_command(Invocation& inv) {
  if (inv.args.size() >= 3 && inv.args[1] == "-v") {
    const std::string& name = inv.args[2];
    if (inv.state.registry->find_special(name) != nullptr) {
      inv.out += name + "\n";
      return 0;
    }
    const std::string path = Shell::find_in_path(inv.proc, name);
    if (path.empty()) return 1;
    inv.out += path + "\n";
    return 0;
  }
  if (inv.args.size() >= 2) {
    std::vector<std::string> rest(inv.args.begin() + 1, inv.args.end());
    return inv.state.shell->dispatch_argv(inv.proc, rest, inv.out, inv.err,
                                          inv.stdin_data, inv.state);
  }
  return 0;
}

// --- coreutils ----------------------------------------------------------------

int cmd_sh(Invocation& inv) {
  // sh -c 'script' | sh script-file
  kernel::Process child = inv.proc.clone();
  ShellState state;
  state.registry = inv.state.registry;
  state.shell = inv.state.shell;
  state.depth = inv.state.depth + 1;
  if (inv.args.size() >= 3 && inv.args[1] == "-c") {
    return inv.state.shell->run_with_state(child, inv.args[2], inv.out,
                                           inv.err, inv.stdin_data, state);
  }
  if (inv.args.size() >= 2) {
    auto script = inv.proc.sys->read_file(inv.proc, inv.args[1]);
    if (!script.ok()) return complain(inv, inv.args[1], script.error());
    return inv.state.shell->run_with_state(child, *script, inv.out, inv.err,
                                           inv.stdin_data, state);
  }
  return 0;
}

int cmd_cat(Invocation& inv) {
  if (inv.args.size() == 1) {
    inv.out += inv.stdin_data;
    return 0;
  }
  int status = 0;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    if (inv.args[i] == "-") {
      inv.out += inv.stdin_data;
      continue;
    }
    auto data = inv.proc.sys->read_file(inv.proc, inv.args[i]);
    if (!data.ok()) {
      status = complain(inv, inv.args[i], data.error());
      continue;
    }
    inv.out += *data;
  }
  return status;
}

int cmd_touch(Invocation& inv) {
  int status = 0;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    if (inv.args[i].starts_with("-")) continue;
    if (inv.proc.sys->stat(inv.proc, inv.args[i]).ok()) continue;
    if (auto rc = inv.proc.sys->write_file(inv.proc, inv.args[i], "", false);
        !rc.ok()) {
      status = complain(inv, inv.args[i], rc.error());
    }
  }
  return status;
}

int cmd_mkdir(Invocation& inv) {
  bool parents = false;
  std::uint32_t mode = 0777;
  std::vector<std::string> paths;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    const std::string& a = inv.args[i];
    if (a == "-p") {
      parents = true;
    } else if (a == "-m" && i + 1 < inv.args.size()) {
      std::uint32_t m = 0;
      for (char c : inv.args[++i]) m = m * 8 + static_cast<std::uint32_t>(c - '0');
      mode = m;
    } else {
      paths.push_back(a);
    }
  }
  int status = 0;
  for (const auto& p : paths) {
    if (parents) {
      const std::string abs = path_normalize(
          path_is_absolute(p) ? p : path_join(inv.proc.cwd, p));
      std::string cur = "/";
      for (const auto& comp : path_components(abs)) {
        cur = cur == "/" ? "/" + comp : cur + "/" + comp;
        if (inv.proc.sys->stat(inv.proc, cur).ok()) continue;
        if (auto rc = inv.proc.sys->mkdir(inv.proc, cur, mode); !rc.ok()) {
          status = complain(inv, cur, rc.error());
          break;
        }
      }
    } else if (auto rc = inv.proc.sys->mkdir(inv.proc, p, mode); !rc.ok()) {
      status = complain(inv, p, rc.error());
    }
  }
  return status;
}

int cmd_rmdir(Invocation& inv) {
  int status = 0;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    if (auto rc = inv.proc.sys->rmdir(inv.proc, inv.args[i]); !rc.ok()) {
      status = complain(inv, inv.args[i], rc.error());
    }
  }
  return status;
}

VoidResult rm_recursive(Invocation& inv, const std::string& path) {
  MINICON_TRY_ASSIGN(st, inv.proc.sys->lstat(inv.proc, path));
  if (st.is_dir()) {
    MINICON_TRY_ASSIGN(entries, inv.proc.sys->readdir(inv.proc, path));
    for (const auto& e : entries) {
      MINICON_TRY(rm_recursive(inv, path_join(path, e.name)));
    }
    return inv.proc.sys->rmdir(inv.proc, path);
  }
  return inv.proc.sys->unlink(inv.proc, path);
}

int cmd_rm(Invocation& inv) {
  bool recursive = false, force = false;
  std::vector<std::string> paths;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    const std::string& a = inv.args[i];
    if (a.starts_with("-") && a.size() > 1 && a[1] != '-') {
      if (a.find('r') != std::string::npos ||
          a.find('R') != std::string::npos) {
        recursive = true;
      }
      if (a.find('f') != std::string::npos) force = true;
    } else {
      paths.push_back(a);
    }
  }
  int status = 0;
  for (const auto& p : paths) {
    VoidResult rc =
        recursive ? rm_recursive(inv, p) : inv.proc.sys->unlink(inv.proc, p);
    if (!rc.ok() && !(force && rc.error() == Err::enoent)) {
      status = complain(inv, p, rc.error());
    }
  }
  return status;
}

VoidResult cp_one(Invocation& inv, const std::string& src,
                  const std::string& dst, bool recursive, bool preserve) {
  MINICON_TRY_ASSIGN(st, inv.proc.sys->lstat(inv.proc, src));
  if (st.is_symlink()) {
    MINICON_TRY_ASSIGN(target, inv.proc.sys->readlink(inv.proc, src));
    return inv.proc.sys->symlink(inv.proc, target, dst);
  }
  if (st.is_dir()) {
    if (!recursive) return Err::eisdir;
    if (!inv.proc.sys->stat(inv.proc, dst).ok()) {
      MINICON_TRY(inv.proc.sys->mkdir(inv.proc, dst, st.mode));
    }
    MINICON_TRY_ASSIGN(entries, inv.proc.sys->readdir(inv.proc, src));
    for (const auto& e : entries) {
      MINICON_TRY(cp_one(inv, path_join(src, e.name), path_join(dst, e.name),
                         recursive, preserve));
    }
  } else {
    MINICON_TRY_ASSIGN(data, inv.proc.sys->read_file(inv.proc, src));
    MINICON_TRY(inv.proc.sys->write_file(inv.proc, dst, std::move(data), false,
                                         st.mode));
  }
  if (preserve) {
    (void)inv.proc.sys->chmod(inv.proc, dst, st.mode);
    (void)inv.proc.sys->chown(inv.proc, dst, st.uid, st.gid, false);
  }
  return {};
}

int cmd_cp(Invocation& inv) {
  bool recursive = false, preserve = false;
  std::vector<std::string> paths;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    const std::string& a = inv.args[i];
    if (a.starts_with("-") && a.size() > 1) {
      if (a.find('r') != std::string::npos ||
          a.find('R') != std::string::npos || a.find('a') != std::string::npos) {
        recursive = true;
      }
      if (a.find('p') != std::string::npos ||
          a.find('a') != std::string::npos) {
        preserve = true;
      }
    } else {
      paths.push_back(a);
    }
  }
  if (paths.size() < 2) {
    inv.err += "cp: missing operand\n";
    return 1;
  }
  const std::string dst = paths.back();
  paths.pop_back();
  auto dst_st = inv.proc.sys->stat(inv.proc, dst);
  const bool dst_is_dir = dst_st.ok() && dst_st->is_dir();
  int status = 0;
  for (const auto& src : paths) {
    const std::string target =
        dst_is_dir ? path_join(dst, path_basename(src)) : dst;
    if (auto rc = cp_one(inv, src, target, recursive, preserve); !rc.ok()) {
      status = complain(inv, src, rc.error());
    }
  }
  return status;
}

int cmd_mv(Invocation& inv) {
  if (inv.args.size() < 3) {
    inv.err += "mv: missing operand\n";
    return 1;
  }
  const std::string& src = inv.args[1];
  std::string dst = inv.args[2];
  auto dst_st = inv.proc.sys->stat(inv.proc, dst);
  if (dst_st.ok() && dst_st->is_dir()) dst = path_join(dst, path_basename(src));
  if (auto rc = inv.proc.sys->rename(inv.proc, src, dst); !rc.ok()) {
    return complain(inv, src, rc.error());
  }
  return 0;
}

int cmd_ln(Invocation& inv) {
  bool symbolic = false, force = false;
  std::vector<std::string> paths;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    const std::string& a = inv.args[i];
    if (a.starts_with("-")) {
      if (a.find('s') != std::string::npos) symbolic = true;
      if (a.find('f') != std::string::npos) force = true;
    } else {
      paths.push_back(a);
    }
  }
  if (paths.size() != 2) {
    inv.err += "ln: expected TARGET LINK\n";
    return 1;
  }
  if (force) (void)inv.proc.sys->unlink(inv.proc, paths[1]);
  VoidResult rc = symbolic
                      ? inv.proc.sys->symlink(inv.proc, paths[0], paths[1])
                      : inv.proc.sys->link(inv.proc, paths[0], paths[1]);
  if (!rc.ok()) return complain(inv, paths[1], rc.error());
  return 0;
}

int cmd_chown_impl(Invocation& inv, bool group_only) {
  bool recursive = false, no_deref = false;
  std::vector<std::string> operands;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    const std::string& a = inv.args[i];
    if (a.starts_with("-") && a.size() > 1) {
      if (a.find('R') != std::string::npos) recursive = true;
      if (a.find('h') != std::string::npos) no_deref = true;
    } else {
      operands.push_back(a);
    }
  }
  if (operands.size() < 2) {
    inv.err += inv.args[0] + ": missing operand\n";
    return 1;
  }
  vfs::Uid uid = vfs::kNoChangeId;
  vfs::Gid gid = vfs::kNoChangeId;
  const std::string spec =
      group_only ? ":" + operands[0] : operands[0];
  if (!parse_owner_spec(inv, spec, uid, gid)) {
    inv.err += inv.args[0] + ": invalid user: '" + operands[0] + "'\n";
    return 1;
  }
  int status = 0;
  for (std::size_t i = 1; i < operands.size(); ++i) {
    auto apply = [&](const std::string& path) -> VoidResult {
      return inv.proc.sys->chown(inv.proc, path, uid, gid, !no_deref);
    };
    if (recursive) {
      auto rc = for_each_recursive(
          inv, operands[i],
          [&](const std::string& path, const vfs::Stat&) { return apply(path); });
      if (!rc.ok()) status = complain(inv, operands[i], rc.error());
    } else if (auto rc = apply(operands[i]); !rc.ok()) {
      status = complain(inv, operands[i], rc.error());
    }
  }
  return status;
}

int cmd_chown(Invocation& inv) { return cmd_chown_impl(inv, false); }
int cmd_chgrp(Invocation& inv) { return cmd_chown_impl(inv, true); }

std::uint32_t parse_mode_arg(const std::string& s, std::uint32_t current,
                             bool& ok) {
  ok = true;
  if (!s.empty() && s[0] >= '0' && s[0] <= '7') {
    std::uint32_t m = 0;
    for (char c : s) {
      if (c < '0' || c > '7') {
        ok = false;
        return current;
      }
      m = m * 8 + static_cast<std::uint32_t>(c - '0');
    }
    return m;
  }
  // Symbolic subset: [ugoa]*[+-=][rwxst]+ (comma-separated clauses).
  std::uint32_t mode = current;
  for (const auto& clause : split(s, ',')) {
    std::uint32_t who = 0;
    std::size_t i = 0;
    while (i < clause.size() && std::string("ugoa").find(clause[i]) !=
                                    std::string::npos) {
      switch (clause[i]) {
        case 'u': who |= 04700; break;
        case 'g': who |= 02070; break;
        case 'o': who |= 01007; break;
        case 'a': who |= 07777; break;
      }
      ++i;
    }
    if (who == 0) who = 07777;
    if (i >= clause.size()) {
      ok = false;
      return current;
    }
    const char op = clause[i++];
    std::uint32_t bits = 0;
    for (; i < clause.size(); ++i) {
      switch (clause[i]) {
        case 'r': bits |= 0444; break;
        case 'w': bits |= 0222; break;
        case 'x': bits |= 0111; break;
        case 's': bits |= 06000; break;
        case 't': bits |= 01000; break;
        default: ok = false; return current;
      }
    }
    bits &= who;
    if (op == '+') {
      mode |= bits;
    } else if (op == '-') {
      mode &= ~bits;
    } else if (op == '=') {
      mode = (mode & ~who) | bits;
    } else {
      ok = false;
      return current;
    }
  }
  return mode;
}

int cmd_chmod(Invocation& inv) {
  bool recursive = false;
  std::vector<std::string> operands;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    const std::string& a = inv.args[i];
    if (a == "-R") {
      recursive = true;
    } else {
      operands.push_back(a);
    }
  }
  if (operands.size() < 2) {
    inv.err += "chmod: missing operand\n";
    return 1;
  }
  int status = 0;
  for (std::size_t i = 1; i < operands.size(); ++i) {
    auto apply = [&](const std::string& path,
                     const vfs::Stat& st) -> VoidResult {
      bool ok = false;
      const std::uint32_t m = parse_mode_arg(operands[0], st.mode, ok);
      if (!ok) return Err::einval;
      return inv.proc.sys->chmod(inv.proc, path, m);
    };
    auto run_one = [&](const std::string& path) -> VoidResult {
      MINICON_TRY_ASSIGN(st, inv.proc.sys->stat(inv.proc, path));
      return apply(path, st);
    };
    if (recursive) {
      auto rc = for_each_recursive(inv, operands[i],
                                   [&](const std::string& path,
                                       const vfs::Stat& st) {
                                     return apply(path, st);
                                   });
      if (!rc.ok()) status = complain(inv, operands[i], rc.error());
    } else if (auto rc = run_one(operands[i]); !rc.ok()) {
      status = complain(inv, operands[i], rc.error());
    }
  }
  return status;
}

int cmd_mknod(Invocation& inv) {
  // mknod NAME TYPE [MAJOR MINOR]
  if (inv.args.size() < 3) {
    inv.err += "mknod: missing operand\n";
    return 1;
  }
  const std::string& name = inv.args[1];
  const std::string& type = inv.args[2];
  vfs::FileType ft;
  std::uint32_t major = 0, minor = 0;
  if (type == "c" || type == "u") {
    ft = vfs::FileType::CharDev;
  } else if (type == "b") {
    ft = vfs::FileType::BlockDev;
  } else if (type == "p") {
    ft = vfs::FileType::Fifo;
  } else {
    inv.err += "mknod: invalid type " + type + "\n";
    return 1;
  }
  if (ft != vfs::FileType::Fifo) {
    if (inv.args.size() < 5 || !parse_u32(inv.args[3], major) ||
        !parse_u32(inv.args[4], minor)) {
      inv.err += "mknod: missing or bad major/minor\n";
      return 1;
    }
  }
  if (auto rc = inv.proc.sys->mknod(inv.proc, name, ft, 0644, major, minor);
      !rc.ok()) {
    return complain(inv, name, rc.error());
  }
  return 0;
}

int cmd_ls(Invocation& inv) {
  bool long_fmt = false, all = false, dir_itself = false, human = false;
  std::vector<std::string> paths;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    const std::string& a = inv.args[i];
    if (a.starts_with("-") && a.size() > 1) {
      if (a.find('l') != std::string::npos) long_fmt = true;
      if (a.find('a') != std::string::npos) all = true;
      if (a.find('d') != std::string::npos) dir_itself = true;
      if (a.find('h') != std::string::npos) human = true;
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty()) paths.push_back(".");

  const auto passwd = load_passwd(inv);
  const auto group = load_group(inv);

  auto format_one = [&](const std::string& display_name,
                        const vfs::Stat& st) {
    if (!long_fmt) {
      inv.out += display_name + "\n";
      return;
    }
    std::string line = vfs::format_mode(st.type, st.mode);
    line += " " + std::to_string(st.nlink);
    line += " " + uid_name(passwd, st.uid);
    line += " " + gid_name(group, st.gid);
    if (st.is_device()) {
      line += " " + std::to_string(st.dev_major) + ", " +
              std::to_string(st.dev_minor);
    } else {
      line += " " + (human ? human_size(st.size) : std::to_string(st.size));
    }
    line += " Feb 10 18:09 " + display_name;
    inv.out += line + "\n";
  };

  int status = 0;
  for (const auto& p : paths) {
    auto st = inv.proc.sys->lstat(inv.proc, p);
    if (!st.ok()) {
      status = complain(inv, p, st.error());
      continue;
    }
    if (st->is_dir() && !dir_itself) {
      auto entries = inv.proc.sys->readdir(inv.proc, p);
      if (!entries.ok()) {
        status = complain(inv, p, entries.error());
        continue;
      }
      for (const auto& e : *entries) {
        if (!all && e.name.starts_with(".")) continue;
        auto est = inv.proc.sys->lstat(inv.proc, path_join(p, e.name));
        if (est.ok()) format_one(e.name, *est);
      }
    } else {
      format_one(p, *st);
    }
  }
  return status;
}

int cmd_grep(Invocation& inv) {
  bool extended = inv.args[0] == "egrep";
  bool fixed = inv.args[0] == "fgrep";
  bool quiet = false, invert = false, ignore_case = false, count_only = false;
  std::string pattern;
  bool have_pattern = false;
  std::vector<std::string> files;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    const std::string& a = inv.args[i];
    if (!have_pattern && a.starts_with("-") && a.size() > 1) {
      for (std::size_t j = 1; j < a.size(); ++j) {
        switch (a[j]) {
          case 'E': extended = true; break;
          case 'F': fixed = true; break;
          case 'q': quiet = true; break;
          case 'v': invert = true; break;
          case 'i': ignore_case = true; break;
          case 'c': count_only = true; break;
          default: break;
        }
      }
      continue;
    }
    if (!have_pattern) {
      pattern = a;
      have_pattern = true;
    } else {
      files.push_back(a);
    }
  }
  if (!have_pattern) {
    inv.err += "grep: missing pattern\n";
    return 2;
  }

  std::optional<std::regex> re;
  if (!fixed) {
    // ECMAScript handles the escaping idioms our patterns use (\[, \.)
    // more permissively than POSIX extended; both BRE and ERE are
    // approximated with it.
    auto flags = std::regex::ECMAScript;
    (void)extended;
    if (ignore_case) flags |= std::regex::icase;
    try {
      re.emplace(pattern, flags);
    } catch (const std::regex_error&) {
      inv.err += "grep: invalid pattern\n";
      return 2;
    }
  }
  std::string lowered_pattern = pattern;
  if (fixed && ignore_case) {
    for (auto& c : lowered_pattern) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }

  auto matches = [&](const std::string& line) {
    bool m;
    if (fixed) {
      if (ignore_case) {
        std::string low = line;
        for (auto& c : low) {
          c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        m = low.find(lowered_pattern) != std::string::npos;
      } else {
        m = line.find(pattern) != std::string::npos;
      }
    } else {
      m = std::regex_search(line, *re);
    }
    return invert ? !m : m;
  };

  bool any = false;
  int status = 0;
  const bool show_names = files.size() > 1;
  auto scan = [&](const std::string& text, const std::string& label) {
    std::size_t count = 0;
    auto lines = split(text, '\n');
    if (!lines.empty() && lines.back().empty()) lines.pop_back();
    for (const auto& line : lines) {
      if (matches(line)) {
        any = true;
        ++count;
        if (!quiet && !count_only) {
          inv.out += (show_names ? label + ":" : "") + line + "\n";
        }
      }
    }
    if (count_only && !quiet) {
      inv.out += (show_names ? label + ":" : "") + std::to_string(count) + "\n";
    }
  };
  if (files.empty()) {
    scan(inv.stdin_data, "(standard input)");
  } else {
    for (const auto& f : files) {
      auto data = inv.proc.sys->read_file(inv.proc, f);
      if (!data.ok()) {
        if (!quiet) {
          inv.err += "grep: " + f + ": " +
                     std::string(err_message(data.error())) + "\n";
        }
        status = 2;
        continue;
      }
      scan(*data, f);
    }
  }
  if (status == 2 && !any) return 2;
  return any ? 0 : 1;
}

int cmd_head_tail(Invocation& inv) {
  const bool is_head = inv.args[0] == "head";
  std::size_t n = 10;
  std::vector<std::string> files;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    if (inv.args[i] == "-n" && i + 1 < inv.args.size()) {
      std::uint64_t v = 0;
      if (parse_u64(inv.args[++i], v)) n = v;
    } else if (!inv.args[i].starts_with("-")) {
      files.push_back(inv.args[i]);
    }
  }
  std::string text;
  if (files.empty()) {
    text = inv.stdin_data;
  } else {
    auto data = inv.proc.sys->read_file(inv.proc, files[0]);
    if (!data.ok()) return complain(inv, files[0], data.error());
    text = *data;
  }
  auto lines = split(text, '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  const std::size_t total = lines.size();
  const std::size_t take = std::min(n, total);
  const std::size_t start = is_head ? 0 : total - take;
  const std::size_t end = is_head ? take : total;
  for (std::size_t i = start; i < end; ++i) inv.out += lines[i] + "\n";
  return 0;
}

int cmd_wc(Invocation& inv) {
  bool lines_only = false;
  std::vector<std::string> files;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    if (inv.args[i] == "-l") {
      lines_only = true;
    } else if (!inv.args[i].starts_with("-")) {
      files.push_back(inv.args[i]);
    }
  }
  std::string text;
  if (files.empty()) {
    text = inv.stdin_data;
  } else {
    auto data = inv.proc.sys->read_file(inv.proc, files[0]);
    if (!data.ok()) return complain(inv, files[0], data.error());
    text = *data;
  }
  std::size_t nlines = 0;
  for (char c : text) {
    if (c == '\n') ++nlines;
  }
  if (lines_only) {
    inv.out += std::to_string(nlines) + "\n";
  } else {
    inv.out += std::to_string(nlines) + " " +
               std::to_string(split_ws(text).size()) + " " +
               std::to_string(text.size()) + "\n";
  }
  return 0;
}

int cmd_id(Invocation& inv) {
  auto& sys = *inv.proc.sys;
  const auto passwd = load_passwd(inv);
  const auto group = load_group(inv);
  const vfs::Uid uid = sys.getuid(inv.proc);
  const vfs::Gid gid = sys.getgid(inv.proc);
  if (inv.args.size() > 1 && inv.args[1] == "-u") {
    inv.out += std::to_string(uid) + "\n";
    return 0;
  }
  std::string line = "uid=" + std::to_string(uid) + "(" +
                     uid_name(passwd, uid) + ") gid=" + std::to_string(gid) +
                     "(" + gid_name(group, gid) + ")";
  const auto groups = sys.getgroups(inv.proc);
  if (!groups.empty()) {
    line += " groups=";
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (i > 0) line += ",";
      line += std::to_string(groups[i]) + "(" + gid_name(group, groups[i]) + ")";
    }
  }
  inv.out += line + "\n";
  return 0;
}

int cmd_whoami(Invocation& inv) {
  const auto passwd = load_passwd(inv);
  inv.out += uid_name(passwd, inv.proc.sys->geteuid(inv.proc)) + "\n";
  return 0;
}

int cmd_stat(Invocation& inv) {
  int status = 0;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    if (inv.args[i].starts_with("-")) continue;
    auto st = inv.proc.sys->stat(inv.proc, inv.args[i]);
    if (!st.ok()) {
      status = complain(inv, inv.args[i], st.error());
      continue;
    }
    inv.out += "  File: " + inv.args[i] + "\n";
    inv.out += "  Size: " + std::to_string(st->size) +
               "  Inode: " + std::to_string(st->ino) +
               "  Links: " + std::to_string(st->nlink) + "\n";
    inv.out += "Access: (" + format_octal(st->mode, 4) + "/" +
               vfs::format_mode(st->type, st->mode) +
               ")  Uid: " + std::to_string(st->uid) +
               "  Gid: " + std::to_string(st->gid) + "\n";
  }
  return status;
}

int cmd_readlink(Invocation& inv) {
  if (inv.args.size() < 2) return 1;
  auto target = inv.proc.sys->readlink(inv.proc, inv.args.back());
  if (!target.ok()) return 1;
  inv.out += *target + "\n";
  return 0;
}

int cmd_env(Invocation& inv) {
  for (const auto& [k, v] : inv.proc.env) inv.out += k + "=" + v + "\n";
  return 0;
}

int cmd_uname(Invocation& inv) {
  std::string arch = inv.proc.env_get("MINICON_ARCH");
  if (arch.empty()) arch = "x86_64";
  if (inv.args.size() > 1 && inv.args[1] == "-m") {
    inv.out += arch + "\n";
  } else if (inv.args.size() > 1 && inv.args[1] == "-a") {
    inv.out += "Linux " + inv.proc.env_get("HOSTNAME") + " 5.10.0 minicon " +
               arch + " GNU/Linux\n";
  } else {
    inv.out += "Linux\n";
  }
  return 0;
}

int cmd_hostname(Invocation& inv) {
  inv.out += inv.proc.env_get("HOSTNAME") + "\n";
  return 0;
}

int cmd_sleep(Invocation&) { return 0; }

int cmd_date(Invocation& inv) {
  inv.out += "Wed Feb 10 18:09:00 UTC 2021\n";
  return 0;
}

// --- user management (host-side sysadmin tools, §4.1) -------------------------

int cmd_useradd(Invocation& inv) {
  // useradd [-u UID] [-g GID] NAME; also appends a fresh subuid/subgid range
  // ("Newer versions of shadow-utils can automatically manage the setup").
  std::string name;
  vfs::Uid uid = vfs::kNoChangeId;
  vfs::Gid gid = vfs::kNoChangeId;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    if (inv.args[i] == "-u" && i + 1 < inv.args.size()) {
      parse_u32(inv.args[++i], uid);
    } else if (inv.args[i] == "-g" && i + 1 < inv.args.size()) {
      parse_u32(inv.args[++i], gid);
    } else if (!inv.args[i].starts_with("-")) {
      name = inv.args[i];
    }
  }
  if (name.empty()) {
    inv.err += "useradd: missing name\n";
    return 1;
  }
  auto passwd = load_passwd(inv);
  if (passwd.by_name(name)) {
    inv.err += "useradd: user '" + name + "' already exists\n";
    return 9;
  }
  if (uid == vfs::kNoChangeId) {
    uid = 1000;
    while (passwd.by_uid(uid)) ++uid;
  }
  if (gid == vfs::kNoChangeId) gid = uid;
  passwd.add({name, uid, gid, "", "/home/" + name, "/bin/sh"});
  if (auto rc = inv.proc.sys->write_file(inv.proc, "/etc/passwd",
                                         passwd.format(), false);
      !rc.ok()) {
    return complain(inv, "/etc/passwd", rc.error());
  }
  auto groups = load_group(inv);
  if (!groups.by_gid(gid)) {
    groups.add({name, gid, {}});
    (void)inv.proc.sys->write_file(inv.proc, "/etc/group", groups.format(),
                                   false);
  }
  // Auto-allocate subordinate ID ranges past all existing ones.
  for (const char* file : {"/etc/subuid", "/etc/subgid"}) {
    auto text = inv.proc.sys->read_file(inv.proc, file);
    auto db = kernel::SubidDb::parse(text.ok() ? *text : "");
    std::uint32_t next = 100000;
    for (const auto& r : db.ranges()) {
      next = std::max(next, r.start + r.count);
    }
    db.add({name, next, 65536});
    (void)inv.proc.sys->write_file(inv.proc, file, db.format(), false);
  }
  return 0;
}

int cmd_groupadd(Invocation& inv) {
  // groupadd [-r] [-g GID] NAME
  std::string name;
  vfs::Gid gid = vfs::kNoChangeId;
  bool system_group = false;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    if (inv.args[i] == "-g" && i + 1 < inv.args.size()) {
      parse_u32(inv.args[++i], gid);
    } else if (inv.args[i] == "-r") {
      system_group = true;
    } else if (!inv.args[i].starts_with("-")) {
      name = inv.args[i];
    }
  }
  if (name.empty()) {
    inv.err += "groupadd: missing name\n";
    return 1;
  }
  auto groups = load_group(inv);
  if (groups.by_name(name)) return 9;  // already exists: idempotent enough
  if (gid == vfs::kNoChangeId) {
    gid = system_group ? 999 : 1000;
    while (groups.by_gid(gid)) {
      gid = system_group ? gid - 1 : gid + 1;
    }
  }
  groups.add({name, gid, {}});
  if (auto rc = inv.proc.sys->write_file(inv.proc, "/etc/group",
                                         groups.format(), false);
      !rc.ok()) {
    return complain(inv, "/etc/group", rc.error());
  }
  return 0;
}

int cmd_usermod(Invocation& inv) {
  // usermod --add-subuids FIRST-LAST NAME (and --add-subgids).
  std::string name, range;
  const char* file = nullptr;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    if (inv.args[i] == "--add-subuids" && i + 1 < inv.args.size()) {
      file = "/etc/subuid";
      range = inv.args[++i];
    } else if (inv.args[i] == "--add-subgids" && i + 1 < inv.args.size()) {
      file = "/etc/subgid";
      range = inv.args[++i];
    } else if (!inv.args[i].starts_with("-")) {
      name = inv.args[i];
    }
  }
  if (file == nullptr || name.empty()) {
    inv.err += "usermod: usage: usermod --add-subuids FIRST-LAST NAME\n";
    return 1;
  }
  const auto dash = range.find('-');
  std::uint32_t first = 0, last = 0;
  if (dash == std::string::npos || !parse_u32(range.substr(0, dash), first) ||
      !parse_u32(range.substr(dash + 1), last) || last < first) {
    inv.err += "usermod: invalid range '" + range + "'\n";
    return 1;
  }
  auto text = inv.proc.sys->read_file(inv.proc, file);
  auto db = kernel::SubidDb::parse(text.ok() ? *text : "");
  db.add({name, first, last - first + 1});
  if (auto rc = inv.proc.sys->write_file(inv.proc, file, db.format(), false);
      !rc.ok()) {
    return complain(inv, file, rc.error());
  }
  return 0;
}

}  // namespace

void register_standard_commands(CommandRegistry& reg) {
  // Special builtins (no executable file required).
  reg.register_special("true", cmd_true);
  reg.register_special(":", cmd_true);
  reg.register_special("false", cmd_false);
  reg.register_special("echo", cmd_echo);
  reg.register_special("cd", cmd_cd);
  reg.register_special("pwd", cmd_pwd);
  reg.register_special("set", cmd_set);
  reg.register_special("export", cmd_export);
  reg.register_special("umask", cmd_umask);
  reg.register_special("test", cmd_test);
  reg.register_special("[", cmd_test);
  reg.register_special("command", cmd_command);
  reg.register_special("strace", cmd_strace);
  reg.register_special("seccomp", cmd_seccomp);

  // External commands (need a file on PATH with a "#!minicon <impl>" header).
  reg.register_external("sh", cmd_sh);
  reg.register_external("bash", cmd_sh);
  reg.register_external("cat", cmd_cat);
  reg.register_external("touch", cmd_touch);
  reg.register_external("mkdir", cmd_mkdir);
  reg.register_external("rmdir", cmd_rmdir);
  reg.register_external("rm", cmd_rm);
  reg.register_external("cp", cmd_cp);
  reg.register_external("mv", cmd_mv);
  reg.register_external("ln", cmd_ln);
  reg.register_external("chown", cmd_chown);
  reg.register_external("chgrp", cmd_chgrp);
  reg.register_external("chmod", cmd_chmod);
  reg.register_external("mknod", cmd_mknod);
  reg.register_external("ls", cmd_ls);
  reg.register_external("grep", cmd_grep);
  reg.register_external("egrep", cmd_grep);
  reg.register_external("fgrep", cmd_grep);
  reg.register_external("head", cmd_head_tail);
  reg.register_external("tail", cmd_head_tail);
  reg.register_external("wc", cmd_wc);
  reg.register_external("id", cmd_id);
  reg.register_external("whoami", cmd_whoami);
  reg.register_external("stat", cmd_stat);
  reg.register_external("readlink", cmd_readlink);
  reg.register_external("env", cmd_env);
  reg.register_external("uname", cmd_uname);
  reg.register_external("hostname", cmd_hostname);
  reg.register_external("sleep", cmd_sleep);
  reg.register_external("date", cmd_date);
  reg.register_external("useradd", cmd_useradd);
  reg.register_external("usermod", cmd_usermod);
  reg.register_external("groupadd", cmd_groupadd);
}

}  // namespace minicon::shell
