// Shell builtins surfacing the unified build telemetry (src/obs/):
//
//   metrics [reset|json]   print (or reset) the metrics registry — every
//                          subsystem's counters, gauges, and histograms in
//                          one place, mirrored from the same update points
//                          as the per-subsystem stats structs;
//   trace tree             print the span tree (build → stage →
//                          instruction → syscall-batch) as indented text;
//   trace export <path>    write Chrome trace_event JSON (loadable in
//                          Perfetto / chrome://tracing) to a file inside
//                          the simulated filesystem;
//   trace export --cluster <path>
//                          same, but spans annotated with a "node" attr
//                          (cluster launches, swarm phases) land in per-node
//                          lanes — one pid row per compute node plus a
//                          login-node row;
//   flight [dump [<trace-id>]|clear]
//                          flight-recorder summary / post-mortem dump
//                          (optionally filtered to one launch's trace id) /
//                          ring reset.
#pragma once

#include <memory>

#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace minicon::shell {

class CommandRegistry;

// `metrics` null selects obs::global_metrics(); `tracer` may be null, in
// which case the trace builtins report that tracing is off; `recorder` null
// selects obs::global_flight_recorder().
void register_obs_commands(CommandRegistry& reg,
                           obs::MetricsRegistry* metrics = nullptr,
                           std::shared_ptr<obs::Tracer> tracer = nullptr,
                           obs::FlightRecorder* recorder = nullptr);

}  // namespace minicon::shell
