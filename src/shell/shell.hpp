// Shell interpreter.
#pragma once

#include <memory>
#include <string>

#include "kernel/process.hpp"
#include "shell/parse.hpp"
#include "shell/registry.hpp"

namespace minicon::shell {

// Mutable interpreter state threaded through execution.
struct ShellState {
  std::shared_ptr<CommandRegistry> registry;
  Shell* shell = nullptr;
  bool xtrace = false;   // set -x
  bool errexit = false;  // set -e
  int last_status = 0;   // $?
  int depth = 0;         // recursion guard (subshells, scripts, fakeroot)
};

class Shell {
 public:
  explicit Shell(std::shared_ptr<CommandRegistry> registry)
      : registry_(std::move(registry)) {}

  // Runs `script` as process `p`; stdout/stderr are appended to out/err.
  // Returns the exit status (127 command not found, 2 parse error, ...).
  int run(kernel::Process& p, const std::string& script, std::string& out,
          std::string& err, const std::string& stdin_data = "");

  // Runs with an existing state (used by `sh -c`, command substitution, and
  // init steps that must observe `set -e`).
  int run_with_state(kernel::Process& p, const std::string& script,
                     std::string& out, std::string& err,
                     const std::string& stdin_data, ShellState& state);

  // Executes a pre-split argv (no parsing/expansion), dispatching through
  // PATH exactly like a parsed command. Used by the builders to execute
  // ['fakeroot', '/bin/sh', '-c', ...] exec-form instructions.
  int run_argv(kernel::Process& p, const std::vector<std::string>& argv,
               std::string& out, std::string& err,
               const std::string& stdin_data = "");

  // run_argv with an existing shell state (propagates recursion depth and
  // registry; used by wrapper commands like fakeroot).
  int dispatch_argv(kernel::Process& p, const std::vector<std::string>& argv,
                    std::string& out, std::string& err,
                    const std::string& stdin_data, ShellState& state);

  const std::shared_ptr<CommandRegistry>& registry() const {
    return registry_;
  }

  // PATH search; returns the resolved absolute path of an executable or
  // empty. Exposed for `command -v`.
  static std::string find_in_path(kernel::Process& p, const std::string& name);

 private:
  std::shared_ptr<CommandRegistry> registry_;
};

// Registers the core builtins + coreutils implementations shared by all
// machines (see builtins.cpp for the inventory).
void register_standard_commands(CommandRegistry& reg);

}  // namespace minicon::shell
