// Command registry: maps executable names to C++ implementations.
//
// Commands come in two flavours:
//   * special builtins (cd, set, export, test, command, ...) that exist in
//     every shell regardless of the filesystem, and
//   * external commands, which require an executable file on the container's
//     PATH; the file's "#!minicon <impl> [key=value...]" header selects the
//     implementation. This is what makes `command -v fakeroot` (the §5.3
//     init-step check) meaningful: the binary genuinely appears only after
//     the package manager installs it.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernel/process.hpp"

namespace minicon::shell {

class Shell;
struct ShellState;

struct Invocation {
  kernel::Process& proc;
  std::vector<std::string> args;  // args[0] is the command name
  const std::string& stdin_data;
  std::string& out;
  std::string& err;
  ShellState& state;
  // Attributes parsed from the executable's "#!minicon" header (empty for
  // special builtins). Notable keys: static=1 (defeats LD_PRELOAD wrappers),
  // arch=<isa> (binary's architecture).
  std::map<std::string, std::string> binary_attrs;
};

using CommandFn = std::function<int(Invocation&)>;

class CommandRegistry {
 public:
  void register_special(const std::string& name, CommandFn fn) {
    specials_[name] = std::move(fn);
  }
  void register_external(const std::string& impl, CommandFn fn) {
    externals_[impl] = std::move(fn);
  }

  const CommandFn* find_special(const std::string& name) const {
    auto it = specials_.find(name);
    return it == specials_.end() ? nullptr : &it->second;
  }
  const CommandFn* find_external(const std::string& impl) const {
    auto it = externals_.find(impl);
    return it == externals_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::string, CommandFn> specials_;
  std::map<std::string, CommandFn> externals_;
};

// Renders the standard two-line executable stub for an implementation, e.g.
// make_binary("yum") -> "#!minicon yum\n". Extra attributes append as
// key=value pairs.
std::string make_binary(const std::string& impl,
                        const std::map<std::string, std::string>& attrs = {});

}  // namespace minicon::shell
