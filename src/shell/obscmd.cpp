#include "shell/obscmd.hpp"

#include "kernel/syscalls.hpp"
#include "shell/registry.hpp"

namespace minicon::shell {

void register_obs_commands(CommandRegistry& reg, obs::MetricsRegistry* metrics,
                           std::shared_ptr<obs::Tracer> tracer) {
  obs::MetricsRegistry* m =
      metrics != nullptr ? metrics : &obs::global_metrics();
  reg.register_special("metrics", [m](Invocation& inv) {
    if (inv.args.size() > 1 && inv.args[1] == "reset") {
      m->reset();
      return 0;
    }
    if (inv.args.size() > 1 && inv.args[1] == "json") {
      inv.out += m->json() + "\n";
      return 0;
    }
    if (inv.args.size() > 1) {
      inv.err += "metrics: usage: metrics [reset|json]\n";
      return 2;
    }
    inv.out += m->text();
    return 0;
  });
  reg.register_special("trace", [tracer](Invocation& inv) {
    if (inv.args.size() < 2 || (inv.args[1] != "tree" &&
                                (inv.args[1] != "export" ||
                                 inv.args.size() != 3))) {
      inv.err += "trace: usage: trace tree | trace export <path>\n";
      return 2;
    }
    if (tracer == nullptr) {
      inv.err += "trace: tracing is not enabled (run with --trace)\n";
      return 1;
    }
    if (inv.args[1] == "tree") {
      inv.out += tracer->span_tree();
      return 0;
    }
    const std::string json = tracer->chrome_trace_json();
    if (auto rc = inv.proc.sys->write_file(inv.proc, inv.args[2], json, false,
                                           0644);
        !rc.ok()) {
      inv.err += "trace: cannot write " + inv.args[2] + ": " +
                 std::string(err_message(rc.error())) + "\n";
      return 1;
    }
    inv.out += "trace: wrote " + std::to_string(tracer->span_count()) +
               " spans to " + inv.args[2] + "\n";
    return 0;
  });
}

}  // namespace minicon::shell
