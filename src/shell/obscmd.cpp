#include "shell/obscmd.hpp"

#include <cstdlib>

#include "kernel/syscalls.hpp"
#include "shell/registry.hpp"

namespace minicon::shell {

void register_obs_commands(CommandRegistry& reg, obs::MetricsRegistry* metrics,
                           std::shared_ptr<obs::Tracer> tracer,
                           obs::FlightRecorder* recorder) {
  obs::MetricsRegistry* m =
      metrics != nullptr ? metrics : &obs::global_metrics();
  obs::FlightRecorder* rec =
      recorder != nullptr ? recorder : &obs::global_flight_recorder();
  reg.register_special("metrics", [m](Invocation& inv) {
    if (inv.args.size() > 1 && inv.args[1] == "reset") {
      m->reset();
      return 0;
    }
    if (inv.args.size() > 1 && inv.args[1] == "json") {
      inv.out += m->json() + "\n";
      return 0;
    }
    if (inv.args.size() > 1) {
      inv.err += "metrics: usage: metrics [reset|json]\n";
      return 2;
    }
    inv.out += m->text();
    return 0;
  });
  reg.register_special("trace", [tracer](Invocation& inv) {
    // trace tree | trace export [--cluster] <path>
    bool cluster = false;
    std::string path;
    bool ok = inv.args.size() >= 2;
    if (ok && inv.args[1] == "tree") {
      ok = inv.args.size() == 2;
    } else if (ok && inv.args[1] == "export") {
      if (inv.args.size() == 3) {
        path = inv.args[2];
      } else if (inv.args.size() == 4 && inv.args[2] == "--cluster") {
        cluster = true;
        path = inv.args[3];
      } else {
        ok = false;
      }
    } else {
      ok = false;
    }
    if (!ok) {
      inv.err +=
          "trace: usage: trace tree | trace export [--cluster] <path>\n";
      return 2;
    }
    if (tracer == nullptr) {
      inv.err += "trace: tracing is not enabled (run with --trace)\n";
      return 1;
    }
    if (inv.args[1] == "tree") {
      inv.out += tracer->span_tree();
      return 0;
    }
    const std::string json =
        cluster ? tracer->cluster_trace_json() : tracer->chrome_trace_json();
    if (auto rc = inv.proc.sys->write_file(inv.proc, path, json, false, 0644);
        !rc.ok()) {
      inv.err += "trace: cannot write " + path + ": " +
                 std::string(err_message(rc.error())) + "\n";
      return 1;
    }
    inv.out += "trace: wrote " + std::to_string(tracer->span_count()) +
               " spans to " + path + "\n";
    return 0;
  });
  reg.register_special("flight", [rec](Invocation& inv) {
    if (inv.args.size() == 1) {
      inv.out += "flight recorder: " +
                 std::string(rec->enabled() ? "on" : "off") + ", " +
                 std::to_string(rec->events_recorded()) + " events recorded (" +
                 std::to_string(rec->events_dropped()) + " dropped) across " +
                 std::to_string(rec->threads_seen()) + " threads, " +
                 std::to_string(rec->capacity_per_thread()) +
                 " slots/thread\n";
      return 0;
    }
    if (inv.args[1] == "clear" && inv.args.size() == 2) {
      rec->clear();
      return 0;
    }
    if (inv.args[1] == "dump" && inv.args.size() <= 3) {
      std::uint64_t filter = 0;
      if (inv.args.size() == 3) {
        char* end = nullptr;
        filter = std::strtoull(inv.args[2].c_str(), &end, 16);
        if (filter == 0 || end == nullptr || *end != '\0') {
          inv.err += "flight: bad trace id '" + inv.args[2] +
                     "' (expected nonzero hex)\n";
          return 2;
        }
      }
      inv.out += rec->dump_text(filter);
      return 0;
    }
    inv.err += "flight: usage: flight [dump [<trace-id>]|clear]\n";
    return 2;
  });
}

}  // namespace minicon::shell
