#include "shell/shell.hpp"

#include <algorithm>
#include <cctype>

#include "kernel/syscalls.hpp"
#include "support/path.hpp"
#include "support/strings.hpp"

namespace minicon::shell {

namespace {

constexpr int kMaxDepth = 100;

// --- globbing ---------------------------------------------------------------

bool has_wildcard(const std::string& s) {
  return s.find('*') != std::string::npos || s.find('?') != std::string::npos;
}

bool glob_match(const std::string& pattern, const std::string& name) {
  // Iterative * / ? matcher.
  std::size_t p = 0, n = 0;
  std::size_t star = std::string::npos, star_n = 0;
  while (n < name.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_n = n;
    } else if (star != std::string::npos) {
      p = star + 1;
      n = ++star_n;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::vector<std::string> glob_expand(kernel::Process& proc,
                                     const std::string& pattern) {
  const bool absolute = path_is_absolute(pattern);
  const std::string full =
      absolute ? pattern : path_join(proc.cwd, pattern);
  const auto comps = path_components(full);
  std::vector<std::string> paths{"/"};
  for (const auto& comp : comps) {
    std::vector<std::string> next;
    if (!has_wildcard(comp)) {
      for (const auto& base : paths) {
        next.push_back(base == "/" ? "/" + comp : base + "/" + comp);
      }
    } else {
      for (const auto& base : paths) {
        auto entries = proc.sys->readdir(proc, base);
        if (!entries.ok()) continue;
        for (const auto& e : *entries) {
          if (e.name[0] == '.' && comp[0] != '.') continue;
          if (glob_match(comp, e.name)) {
            next.push_back(base == "/" ? "/" + e.name : base + "/" + e.name);
          }
        }
      }
    }
    paths = std::move(next);
  }
  std::vector<std::string> existing;
  for (const auto& p : paths) {
    if (proc.sys->lstat(proc, p).ok()) existing.push_back(p);
  }
  std::sort(existing.begin(), existing.end());
  if (existing.empty()) return {pattern};  // no match: pattern stays literal
  return existing;
}

// --- the interpreter ---------------------------------------------------------

class Interp {
 public:
  Interp(Shell& shell, kernel::Process& proc, ShellState& state)
      : shell_(shell), proc_(proc), state_(state) {}

  int exec_list(const List& list, std::string& out, std::string& err,
                const std::string& stdin_data, bool in_condition) {
    int status = 0;
    for (const auto& item : list.items) {
      status = exec_and_or(item, out, err, stdin_data, in_condition);
      if (abort_) return status;
      if (state_.errexit && !in_condition && status != 0 &&
          !last_was_negated_) {
        abort_ = true;
        return status;
      }
    }
    return status;
  }

 private:
  int exec_and_or(const AndOr& ao, std::string& out, std::string& err,
                  const std::string& stdin_data, bool in_condition) {
    int status = 0;
    for (std::size_t i = 0; i < ao.parts.size(); ++i) {
      const auto& part = ao.parts[i];
      if (i > 0) {
        if (part.op == AndOrOp::kAnd && status != 0) continue;
        if (part.op == AndOrOp::kOr && status == 0) continue;
      }
      const bool condition_ctx = in_condition || i + 1 < ao.parts.size();
      status = exec_pipeline(part.pipeline, out, err, stdin_data,
                             condition_ctx);
      if (abort_) return status;
    }
    last_was_negated_ =
        !ao.parts.empty() && ao.parts.back().pipeline.negated;
    return status;
  }

  int exec_pipeline(const Pipeline& pl, std::string& out, std::string& err,
                    const std::string& stdin_data, bool in_condition) {
    std::string data = stdin_data;
    int status = 0;
    for (std::size_t i = 0; i < pl.commands.size(); ++i) {
      const bool last = i + 1 == pl.commands.size();
      std::string stage_out;
      status = exec_command(*pl.commands[i], last ? out : stage_out, err, data,
                            in_condition || pl.negated);
      if (abort_) return status;
      if (!last) data = std::move(stage_out);
    }
    if (pl.negated) status = status == 0 ? 1 : 0;
    state_.last_status = status;
    return status;
  }

  int exec_command(const CommandNode& node, std::string& out, std::string& err,
                   const std::string& stdin_data, bool in_condition) {
    if (const auto* simple = std::get_if<SimpleCmd>(&node)) {
      return exec_simple(*simple, out, err, stdin_data);
    }
    if (const auto* loop = std::get_if<ForClause>(&node)) {
      int status = 0;
      for (const auto& w : loop->words) {
        for (const auto& value : expand_word(w, err)) {
          proc_.env[loop->var] = value;
          status = exec_list(loop->body, out, err, stdin_data, in_condition);
          if (abort_) return status;
        }
      }
      return status;
    }
    const auto& clause = std::get<IfClause>(node);
    for (const auto& arm : clause.arms) {
      std::string cond_out;
      const int cond =
          exec_list(arm.condition, cond_out, err, stdin_data,
                    /*in_condition=*/true);
      out += cond_out;
      if (abort_) return cond;
      if (cond == 0) {
        return exec_list(arm.body, out, err, stdin_data, in_condition);
      }
    }
    if (clause.else_body) {
      return exec_list(*clause.else_body, out, err, stdin_data, in_condition);
    }
    return 0;
  }

  std::string expand_var(const std::string& name) {
    if (name == "?") return std::to_string(state_.last_status);
    return proc_.env_get(name);
  }

  std::string command_substitute(const std::string& script, std::string& err) {
    if (state_.depth >= kMaxDepth) return "";
    kernel::Process sub = proc_.clone();
    ShellState sub_state;
    sub_state.registry = state_.registry;
    sub_state.shell = state_.shell;
    sub_state.depth = state_.depth + 1;
    std::string out;
    shell_.run_with_state(sub, script, out, err, "", sub_state);
    while (!out.empty() && out.back() == '\n') out.pop_back();
    return out;
  }

  std::vector<std::string> expand_word(const Word& w, std::string& err) {
    struct Field {
      std::string text;
      bool globbable = false;
      bool quoted_content = false;
    };
    std::vector<Field> fields{{}};
    auto append_splittable = [&](const std::string& value) {
      bool at_field_start = true;
      for (std::size_t i = 0; i < value.size();) {
        if (std::isspace(static_cast<unsigned char>(value[i]))) {
          if (!fields.back().text.empty() || fields.back().quoted_content) {
            fields.push_back({});
          }
          while (i < value.size() &&
                 std::isspace(static_cast<unsigned char>(value[i]))) {
            ++i;
          }
          at_field_start = true;
          continue;
        }
        (void)at_field_start;
        fields.back().text += value[i];
        ++i;
      }
    };
    for (const auto& seg : w.segs) {
      switch (seg.kind) {
        case WordSeg::Kind::kLiteral:
          fields.back().text += seg.text;
          if (seg.quoted) {
            fields.back().quoted_content = true;
          } else if (has_wildcard(seg.text)) {
            fields.back().globbable = true;
          }
          break;
        case WordSeg::Kind::kVariable: {
          const std::string value = expand_var(seg.text);
          if (seg.quoted) {
            fields.back().text += value;
            fields.back().quoted_content = true;
          } else {
            append_splittable(value);
          }
          break;
        }
        case WordSeg::Kind::kCommandSub: {
          const std::string value = command_substitute(seg.text, err);
          if (seg.quoted) {
            fields.back().text += value;
            fields.back().quoted_content = true;
          } else {
            append_splittable(value);
          }
          break;
        }
      }
    }
    std::vector<std::string> out;
    for (const auto& f : fields) {
      if (f.text.empty() && !f.quoted_content) continue;
      if (f.globbable) {
        for (auto& g : glob_expand(proc_, f.text)) out.push_back(std::move(g));
      } else {
        out.push_back(f.text);
      }
    }
    return out;
  }

  std::string expand_single(const Word& w, std::string& err) {
    const auto fields = expand_word(w, err);
    std::string out;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out += ' ';
      out += fields[i];
    }
    return out;
  }

  int exec_simple(const SimpleCmd& cmd, std::string& out, std::string& err,
                  const std::string& stdin_data) {
    // Assignments.
    std::vector<std::pair<std::string, std::optional<std::string>>> saved;
    for (const auto& [name, value_word] : cmd.assignments) {
      const std::string value = expand_single(value_word, err);
      if (!cmd.words.empty()) {
        auto it = proc_.env.find(name);
        saved.emplace_back(name, it == proc_.env.end()
                                     ? std::nullopt
                                     : std::make_optional(it->second));
      }
      proc_.env[name] = value;
    }
    struct RestoreEnv {
      kernel::Process& proc;
      std::vector<std::pair<std::string, std::optional<std::string>>>& saved;
      ~RestoreEnv() {
        for (auto& [name, value] : saved) {
          if (value) {
            proc.env[name] = *value;
          } else {
            proc.env.erase(name);
          }
        }
      }
    } restore{proc_, saved};

    std::vector<std::string> argv;
    for (const auto& w : cmd.words) {
      for (auto& field : expand_word(w, err)) argv.push_back(std::move(field));
    }
    if (argv.empty()) return 0;

    if (state_.xtrace) {
      std::string trace = "+";
      for (const auto& a : argv) {
        trace += ' ';
        trace += a;
      }
      err += trace + "\n";
    }

    // Redirections. We model three dispositions per stream: parent sink,
    // file, or discard (/dev/null).
    enum class Sink { kParent, kFile, kDiscard, kFollowStdout };
    Sink out_sink = Sink::kParent;
    Sink err_sink = Sink::kParent;
    std::string out_file, err_file;
    bool out_append = false, err_append = false;
    std::string input = stdin_data;
    for (const auto& r : cmd.redirects) {
      if (r.dup_to_stdout) {
        err_sink = Sink::kFollowStdout;
        continue;
      }
      const std::string target = expand_single(r.target, err);
      if (r.input) {
        if (target == "/dev/null") {
          input.clear();
        } else {
          auto data = proc_.sys->read_file(proc_, target);
          if (!data.ok()) {
            err += "sh: " + target + ": " +
                   std::string(err_message(data.error())) + "\n";
            return 1;
          }
          input = *data;
        }
        continue;
      }
      if (r.fd == 2) {
        if (target == "/dev/null") {
          err_sink = Sink::kDiscard;
        } else {
          err_sink = Sink::kFile;
          err_file = target;
          err_append = r.append;
        }
      } else {
        if (target == "/dev/null") {
          out_sink = Sink::kDiscard;
        } else {
          out_sink = Sink::kFile;
          out_file = target;
          out_append = r.append;
        }
      }
    }

    std::string local_out, local_err;
    const int status = dispatch(argv, input, local_out, local_err);

    auto deliver = [&](Sink sink, const std::string& file, bool append,
                       const std::string& data,
                       std::string& parent) -> int {
      switch (sink) {
        case Sink::kParent:
          parent += data;
          return 0;
        case Sink::kDiscard:
          return 0;
        case Sink::kFile: {
          auto rc = proc_.sys->write_file(proc_, file, data, append);
          if (!rc.ok()) {
            err += "sh: " + file + ": " +
                   std::string(err_message(rc.error())) + "\n";
            return 1;
          }
          return 0;
        }
        case Sink::kFollowStdout:
          return 0;  // handled below
      }
      return 0;
    };

    if (err_sink == Sink::kFollowStdout) {
      local_out += local_err;
      local_err.clear();
      err_sink = Sink::kDiscard;
    }
    int delivery_status = deliver(out_sink, out_file, out_append, local_out, out);
    delivery_status |=
        deliver(err_sink, err_file, err_append, local_err, err);
    if (delivery_status != 0 && status == 0) return 1;
    return status;
  }

  int dispatch(const std::vector<std::string>& argv, const std::string& input,
               std::string& out, std::string& err) {
    return shell_dispatch(shell_, proc_, state_, argv, input, out, err);
  }

 public:
  // Full command dispatch: special builtins, PATH lookup, "#!minicon"
  // headers, shebang scripts, LD_PRELOAD bypass for static binaries, and
  // architecture checks. Shared with Shell::run_argv.
  static int shell_dispatch(Shell& shell, kernel::Process& proc,
                            ShellState& state,
                            const std::vector<std::string>& argv,
                            const std::string& input, std::string& out,
                            std::string& err) {
    const std::string& name = argv[0];
    if (state.depth >= kMaxDepth) {
      err += "sh: recursion limit exceeded\n";
      return 2;
    }
    if (const CommandFn* fn = state.registry->find_special(name)) {
      Invocation inv{proc, argv, input, out, err, state, {}};
      return (*fn)(inv);
    }
    // External command: must exist on the filesystem.
    std::string path;
    if (name.find('/') != std::string::npos) {
      path = name;
    } else {
      path = Shell::find_in_path(proc, name);
      if (path.empty()) {
        err += "sh: " + name + ": command not found\n";
        return 127;
      }
    }
    auto content = proc.sys->read_file(proc, path);
    if (!content.ok()) {
      if (content.error() == Err::enoent) {
        err += "sh: " + name + ": command not found\n";
        return 127;
      }
      err += "sh: " + path + ": " +
             std::string(err_message(content.error())) + "\n";
      return 126;
    }
    if (auto x = proc.sys->access(proc, path, kernel::kExecOk); !x.ok()) {
      err += "sh: " + path + ": Permission denied\n";
      return 126;
    }

    // Parse the header line.
    const std::string first_line = content->substr(0, content->find('\n'));
    std::map<std::string, std::string> attrs;
    std::string impl;
    if (first_line.starts_with("#!minicon ")) {
      const auto parts = split_ws(first_line.substr(10));
      if (!parts.empty()) impl = parts[0];
      for (std::size_t i = 1; i < parts.size(); ++i) {
        const auto eq = parts[i].find('=');
        if (eq != std::string::npos) {
          attrs[parts[i].substr(0, eq)] = parts[i].substr(eq + 1);
        } else {
          attrs[parts[i]] = "1";
        }
      }
    } else if (first_line.starts_with("#!")) {
      // Shebang script: run the remainder with a child shell process.
      kernel::Process child = proc.clone();
      ShellState child_state;
      child_state.registry = state.registry;
      child_state.shell = state.shell;
      child_state.depth = state.depth + 1;
      return shell.run_with_state(child, *content, out, err, input,
                                  child_state);
    } else {
      impl = path_basename(path);
    }

    // Architecture check: an aarch64 binary does not run on x86_64 (why
    // Astra could not reuse x86 images, §4.2).
    const std::string host_arch = proc.env_get("MINICON_ARCH");
    if (auto it = attrs.find("arch");
        it != attrs.end() && !host_arch.empty() && it->second != host_arch) {
      err += "sh: " + path + ": cannot execute binary file: Exec format error\n";
      return 126;
    }

    const CommandFn* fn = state.registry->find_external(impl);
    if (fn == nullptr) {
      err += "sh: " + name + ": command not found\n";
      return 127;
    }

    // LD_PRELOAD interposers cannot wrap statically-linked executables
    // (Table 1); run those against the inner (real) syscall layer. With a
    // stacked interposition chain, strip every preload-style layer until we
    // reach a ptrace layer or the kernel.
    std::shared_ptr<kernel::Syscalls> saved_sys;
    while (attrs.contains("static") && proc.sys->is_interposer() &&
           !proc.sys->wraps_statically_linked()) {
      if (!saved_sys) saved_sys = proc.sys;
      proc.sys = proc.sys->interposer_inner();
    }
    Invocation inv{proc, argv, input, out, err, state, attrs};
    const int status = (*fn)(inv);
    if (saved_sys) proc.sys = saved_sys;
    return status;
  }

 private:
  Shell& shell_;
  kernel::Process& proc_;
  ShellState& state_;
  bool abort_ = false;
  bool last_was_negated_ = false;
};

}  // namespace

std::string Shell::find_in_path(kernel::Process& p, const std::string& name) {
  std::string path_var = p.env_get("PATH");
  if (path_var.empty()) {
    path_var = "/usr/local/sbin:/usr/local/bin:/usr/sbin:/usr/bin:/sbin:/bin";
  }
  for (const auto& dir : split(path_var, ':')) {
    if (dir.empty()) continue;
    const std::string candidate = path_join(dir, name);
    auto st = p.sys->stat(p, candidate);
    if (st.ok() && st->type == vfs::FileType::Regular &&
        p.sys->access(p, candidate, kernel::kExecOk).ok()) {
      return candidate;
    }
  }
  return "";
}

int Shell::run(kernel::Process& p, const std::string& script, std::string& out,
               std::string& err, const std::string& stdin_data) {
  ShellState state;
  state.registry = registry_;
  state.shell = this;
  return run_with_state(p, script, out, err, stdin_data, state);
}

int Shell::run_with_state(kernel::Process& p, const std::string& script,
                          std::string& out, std::string& err,
                          const std::string& stdin_data, ShellState& state) {
  auto parsed = parse_script(script);
  if (const auto* pe = std::get_if<ParseError>(&parsed)) {
    err += "sh: syntax error: " + pe->message + "\n";
    return 2;
  }
  state.shell = this;
  if (state.registry == nullptr) state.registry = registry_;
  Interp interp(*this, p, state);
  return interp.exec_list(std::get<List>(parsed), out, err, stdin_data,
                          /*in_condition=*/false);
}

int Shell::run_argv(kernel::Process& p, const std::vector<std::string>& argv,
                    std::string& out, std::string& err,
                    const std::string& stdin_data) {
  if (argv.empty()) return 0;
  ShellState state;
  state.registry = registry_;
  state.shell = this;
  return Interp::shell_dispatch(*this, p, state, argv, stdin_data, out, err);
}

int Shell::dispatch_argv(kernel::Process& p,
                         const std::vector<std::string>& argv,
                         std::string& out, std::string& err,
                         const std::string& stdin_data, ShellState& state) {
  if (argv.empty()) return 0;
  return Interp::shell_dispatch(*this, p, state, argv, stdin_data, out, err);
}

std::string make_binary(const std::string& impl,
                        const std::map<std::string, std::string>& attrs) {
  std::string out = "#!minicon " + impl;
  for (const auto& [k, v] : attrs) {
    out += " " + k + "=" + v;
  }
  out += "\n";
  return out;
}

}  // namespace minicon::shell
