// POSIX-subset shell lexer and parser.
//
// The container build path executes every RUN instruction through /bin/sh -c,
// and the fakeroot-injection init steps (§5.3) are nontrivial shell one-
// liners (`set -ex; if ! grep -Eq ...; then ...; fi; ...`), so the simulator
// carries a real little shell: words with quoting, parameter and command
// substitution, pipelines, && / || / ! , redirections, if/then/elif/else/fi,
// and pathname expansion.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "support/result.hpp"

namespace minicon::shell {

// A word is a sequence of segments; quoting is tracked per segment so that
// expansion can decide about field splitting and globbing.
struct WordSeg {
  enum class Kind { kLiteral, kVariable, kCommandSub };
  Kind kind = Kind::kLiteral;
  std::string text;  // literal text, variable name, or substitution script
  bool quoted = false;
};

struct Word {
  std::vector<WordSeg> segs;

  // Literal-only view (used for reserved-word detection).
  std::optional<std::string> literal() const;
  static Word from_literal(std::string text);
};

struct Redirect {
  int fd = 1;            // 1 = stdout, 2 = stderr, 0 = stdin
  bool append = false;   // >>
  bool input = false;    // <
  bool dup_to_stdout = false;  // 2>&1
  Word target;
};

struct SimpleCmd;
struct IfClause;
struct ForClause;
using CommandNode = std::variant<SimpleCmd, IfClause, ForClause>;
using CommandPtr = std::unique_ptr<CommandNode>;

struct Pipeline {
  bool negated = false;
  std::vector<CommandPtr> commands;
};

enum class AndOrOp { kNone, kAnd, kOr };

struct AndOr {
  struct Part {
    AndOrOp op = AndOrOp::kNone;  // connective *before* this pipeline
    Pipeline pipeline;
  };
  std::vector<Part> parts;
};

struct List {
  std::vector<AndOr> items;
};

struct SimpleCmd {
  std::vector<Word> words;
  std::vector<Redirect> redirects;
  // Leading NAME=value assignments.
  std::vector<std::pair<std::string, Word>> assignments;
};

struct IfClause {
  struct Arm {
    List condition;
    List body;
  };
  std::vector<Arm> arms;  // if + elif*
  std::optional<List> else_body;
};

// for NAME in words...; do list; done
struct ForClause {
  std::string var;
  std::vector<Word> words;
  List body;
};

struct ParseError {
  std::string message;
  std::size_t position = 0;
};

// Parses a script; returns the AST or an error description.
std::variant<List, ParseError> parse_script(const std::string& script);

}  // namespace minicon::shell
