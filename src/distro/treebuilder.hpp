// Store-side construction of filesystem trees with explicit ownership.
//
// Base images are built by "the distribution vendor" with full privilege;
// this helper writes straight into a MemFs with kernel IDs, bypassing the
// syscall layer (exactly like importing a vendor tarball as root).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "shell/registry.hpp"
#include "vfs/memfs.hpp"

namespace minicon::distro {

class TreeBuilder {
 public:
  TreeBuilder();

  TreeBuilder& dir(const std::string& path, std::uint32_t mode = 0755,
                   vfs::Uid uid = 0, vfs::Gid gid = 0);
  TreeBuilder& file(const std::string& path, std::string content,
                    std::uint32_t mode = 0644, vfs::Uid uid = 0,
                    vfs::Gid gid = 0);
  TreeBuilder& symlink(const std::string& path, const std::string& target);
  TreeBuilder& device(const std::string& path, vfs::FileType type,
                      std::uint32_t major, std::uint32_t minor,
                      std::uint32_t mode = 0666);
  // Executable with a "#!minicon <impl>" header.
  TreeBuilder& binary(const std::string& path, const std::string& impl,
                      const std::map<std::string, std::string>& attrs = {});

  const std::shared_ptr<vfs::MemFs>& fs() const { return fs_; }

 private:
  vfs::InodeNum ensure_dir(const std::string& path);

  std::shared_ptr<vfs::MemFs> fs_;
  vfs::OpCtx ctx_;
};

}  // namespace minicon::distro
