#include "distro/treebuilder.hpp"

#include <cassert>

#include "support/path.hpp"

namespace minicon::distro {

TreeBuilder::TreeBuilder() : fs_(std::make_shared<vfs::MemFs>(0755)) {}

vfs::InodeNum TreeBuilder::ensure_dir(const std::string& path) {
  vfs::InodeNum cur = fs_->root();
  for (const auto& comp : path_components(path)) {
    auto child = fs_->lookup(cur, comp);
    if (child.ok()) {
      cur = *child;
      continue;
    }
    vfs::CreateArgs args;
    args.type = vfs::FileType::Directory;
    args.mode = 0755;
    auto created = fs_->create(ctx_, cur, comp, args);
    assert(created.ok());
    cur = *created;
  }
  return cur;
}

TreeBuilder& TreeBuilder::dir(const std::string& path, std::uint32_t mode,
                              vfs::Uid uid, vfs::Gid gid) {
  const vfs::InodeNum node = ensure_dir(path);
  (void)fs_->set_mode(ctx_, node, mode);
  (void)fs_->set_owner(ctx_, node, uid, gid);
  return *this;
}

TreeBuilder& TreeBuilder::file(const std::string& path, std::string content,
                               std::uint32_t mode, vfs::Uid uid,
                               vfs::Gid gid) {
  const vfs::InodeNum parent = ensure_dir(path_dirname(path));
  vfs::CreateArgs args;
  args.type = vfs::FileType::Regular;
  args.mode = mode;
  args.uid = uid;
  args.gid = gid;
  auto node = fs_->create(ctx_, parent, path_basename(path), args);
  assert(node.ok());
  (void)fs_->write(ctx_, *node, std::move(content), false);
  return *this;
}

TreeBuilder& TreeBuilder::symlink(const std::string& path,
                                  const std::string& target) {
  const vfs::InodeNum parent = ensure_dir(path_dirname(path));
  vfs::CreateArgs args;
  args.type = vfs::FileType::Symlink;
  args.symlink_target = target;
  auto node = fs_->create(ctx_, parent, path_basename(path), args);
  assert(node.ok());
  (void)node;
  return *this;
}

TreeBuilder& TreeBuilder::device(const std::string& path, vfs::FileType type,
                                 std::uint32_t major, std::uint32_t minor,
                                 std::uint32_t mode) {
  const vfs::InodeNum parent = ensure_dir(path_dirname(path));
  vfs::CreateArgs args;
  args.type = type;
  args.mode = mode;
  args.dev_major = major;
  args.dev_minor = minor;
  auto node = fs_->create(ctx_, parent, path_basename(path), args);
  assert(node.ok());
  (void)node;
  return *this;
}

TreeBuilder& TreeBuilder::binary(const std::string& path,
                                 const std::string& impl,
                                 const std::map<std::string, std::string>& attrs) {
  return file(path, shell::make_binary(impl, attrs), 0755);
}

}  // namespace minicon::distro
