// Synthetic distributions: centos:7 and debian:buster base images plus their
// package repositories.
//
// Contents are chosen to exercise the paper's exact failure modes:
//   * openssh (CentOS) owns files as root:ssh_keys -> cpio chown fails in a
//     basic Type III build (Fig 2).
//   * openssh-client (Debian) ships a setgid root:ssh ssh-agent, and APT's
//     _apt sandbox drops privileges -> Fig 3 failures.
//   * epel-release + fakeroot (EPEL) back the rhel7 injection config
//     (Figs 8/10); pseudo + the APT no-sandbox config back debderiv
//     (Figs 9/11).
//   * iputils-ping (file capabilities) and a statically-linked-helper
//     package differentiate the fakeroot flavours (Table 1).
//   * gcc/openmpi/spack stand in for the ATSE stack on Astra (Fig 6).
#pragma once

#include <memory>
#include <string>

#include "image/registry.hpp"
#include "pkg/package.hpp"
#include "shell/registry.hpp"
#include "vfs/memfs.hpp"

namespace minicon::distro {

// Base filesystem trees. `arch` tags every compiled binary in the tree, so
// an x86_64 image genuinely fails to run on an aarch64 machine (the Astra
// motivation, §4.2).
std::shared_ptr<vfs::MemFs> make_centos7_tree(const std::string& arch);
std::shared_ptr<vfs::MemFs> make_debian10_tree(const std::string& arch);

// Fills the universe with "centos7-base", "epel", "centos7-hpc", and
// "debian10-main" repositories.
void populate_repos(pkg::RepoUniverse& universe);

// Tars the base trees and publishes "centos:7" and "debian:buster"
// manifests for each architecture.
void publish_base_images(image::Registry& registry,
                         const std::vector<std::string>& arches = {
                             "x86_64", "aarch64"});

// Registers the synthetic HPC toolchain: gcc (writes a runnable binary
// tagged with the build arch), mpirun, and the compiled-app stub.
void register_toolchain_commands(shell::CommandRegistry& reg);

// Default PATH baked into base image configs.
inline constexpr const char* kDefaultPath =
    "/usr/local/sbin:/usr/local/bin:/usr/sbin:/usr/bin:/sbin:/bin";

}  // namespace minicon::distro
