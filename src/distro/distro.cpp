#include "distro/distro.hpp"

#include "distro/treebuilder.hpp"
#include "kernel/syscalls.hpp"
#include "support/strings.hpp"
#include "image/tar.hpp"
#include "shell/shell.hpp"

namespace minicon::distro {

namespace {

// Compiled userland commands present in every base image. Each is a binary
// tagged with the image architecture.
const char* const kCoreutils[] = {
    "cat",  "touch", "mkdir",    "rmdir",  "rm",    "cp",    "mv",
    "ln",   "chown", "chgrp",    "chmod",  "mknod", "ls",    "grep",
    "head", "tail",  "wc",       "id",     "whoami", "stat", "readlink",
    "env",  "uname", "hostname", "sleep",  "date",  "tar",
};

void add_common(TreeBuilder& t, const std::string& arch) {
  t.dir("/tmp", 01777);
  t.dir("/root", 0700);
  t.dir("/home");
  t.dir("/proc");
  t.dir("/sys");
  t.dir("/opt");
  t.dir("/etc");
  t.dir("/usr/bin");
  t.dir("/usr/sbin");
  t.dir("/usr/libexec");
  t.dir("/var/log");
  t.dir("/var/tmp", 01777);
  t.dir("/var/cache");
  t.device("/dev/null", vfs::FileType::CharDev, 1, 3);
  t.device("/dev/zero", vfs::FileType::CharDev, 1, 5);
  t.device("/dev/urandom", vfs::FileType::CharDev, 1, 9, 0444);

  const std::map<std::string, std::string> attrs{{"arch", arch}};
  t.binary("/usr/bin/sh", "sh", attrs);
  t.binary("/bin/sh", "sh", attrs);
  for (const char* name : kCoreutils) {
    t.binary(std::string("/usr/bin/") + name, name, attrs);
  }
  t.binary("/usr/bin/egrep", "egrep", attrs);
  t.binary("/usr/bin/fgrep", "fgrep", attrs);
  t.binary("/usr/sbin/useradd", "useradd", attrs);
  t.binary("/usr/sbin/usermod", "usermod", attrs);
  t.binary("/usr/sbin/groupadd", "groupadd", attrs);
}

}  // namespace

std::shared_ptr<vfs::MemFs> make_centos7_tree(const std::string& arch) {
  TreeBuilder t;
  add_common(t, arch);
  const std::map<std::string, std::string> attrs{{"arch", arch}};
  t.binary("/usr/bin/yum", "yum", attrs);
  t.binary("/usr/bin/rpm", "rpm", attrs);
  t.binary("/usr/bin/yum-config-manager", "yum-config-manager", attrs);

  t.file("/etc/redhat-release", "CentOS Linux release 7.9.2009 (Core)\n");
  t.file("/etc/os-release",
         "NAME=\"CentOS Linux\"\nVERSION=\"7 (Core)\"\nID=\"centos\"\n"
         "VERSION_ID=\"7\"\nPRETTY_NAME=\"CentOS Linux 7 (Core)\"\n");
  t.file("/etc/passwd",
         "root:x:0:0:root:/root:/bin/sh\n"
         "bin:x:1:1:bin:/bin:/sbin/nologin\n"
         "daemon:x:2:2:daemon:/sbin:/sbin/nologin\n"
         "nobody:x:65534:65534:Kernel Overflow User:/:/sbin/nologin\n");
  t.file("/etc/group",
         "root:x:0:\n"
         "bin:x:1:\n"
         "daemon:x:2:\n"
         "adm:x:4:\n"
         "wheel:x:10:\n"
         "nogroup:x:65534:\n");
  t.file("/etc/shadow", "root:*:18000:0:99999:7:::\n", 0000);
  t.file("/etc/yum.conf", "[main]\ninstallonly_limit=5\nkeepcache=0\n");
  t.dir("/etc/yum.repos.d");
  t.file("/etc/yum.repos.d/CentOS-Base.repo",
         "[base]\nname=CentOS-7 - Base\nbaseurl=repo://centos7-base\n"
         "enabled=1\n"
         "[hpc]\nname=CentOS-7 - HPC\nbaseurl=repo://centos7-hpc\n"
         "enabled=1\n");
  t.file("/var/lib/rpm/installed",
         "bash 4.2.46-34.el7 x86_64\n"
         "coreutils 8.22-24.el7 x86_64\n"
         "yum 3.4.3-168.el7.centos noarch\n"
         "centos-release 7-9.2009.1.el7.centos x86_64\n");
  return t.fs();
}

std::shared_ptr<vfs::MemFs> make_debian10_tree(const std::string& arch) {
  TreeBuilder t;
  add_common(t, arch);
  const std::map<std::string, std::string> attrs{{"arch", arch}};
  t.binary("/usr/bin/apt-get", "apt-get", attrs);
  t.binary("/usr/bin/apt", "apt", attrs);
  t.binary("/usr/bin/apt-config", "apt-config", attrs);
  t.binary("/usr/bin/dpkg", "dpkg", attrs);

  t.file("/etc/os-release",
         "PRETTY_NAME=\"Debian GNU/Linux 10 (buster)\"\nNAME=\"Debian "
         "GNU/Linux\"\nVERSION_ID=\"10\"\nVERSION=\"10 (buster)\"\n"
         "VERSION_CODENAME=buster\nID=debian\n");
  t.file("/etc/debian_version", "10.8\n");
  t.file("/etc/passwd",
         "root:x:0:0:root:/root:/bin/sh\n"
         "daemon:x:1:1:daemon:/usr/sbin:/usr/sbin/nologin\n"
         "bin:x:2:2:bin:/bin:/usr/sbin/nologin\n"
         "_apt:x:100:65534::/nonexistent:/usr/sbin/nologin\n"
         "nobody:x:65534:65534:nobody:/nonexistent:/usr/sbin/nologin\n");
  t.file("/etc/group",
         "root:x:0:\n"
         "daemon:x:1:\n"
         "bin:x:2:\n"
         "adm:x:4:\n"
         "staff:x:50:\n"
         "nogroup:x:65534:\n");
  t.file("/etc/shadow", "root:*:18000:0:99999:7:::\n", 0000);
  t.file("/etc/apt/sources.list", "deb repo://debian10-main buster main\n");
  t.dir("/etc/apt/apt.conf.d");
  t.dir("/var/lib/apt/lists/partial");
  t.dir("/var/cache/apt/archives");
  t.file("/var/lib/dpkg/status",
         "Package: dash\nVersion: 0.5.10.2-5\nStatus: install ok installed\n\n"
         "Package: coreutils\nVersion: 8.30-3\nStatus: install ok installed\n\n"
         "Package: apt\nVersion: 1.8.2.2\nStatus: install ok installed\n\n"
         "Package: libc-bin\nVersion: 2.28-10\nStatus: install ok "
         "installed\n\n");
  return t.fs();
}

namespace {

std::string script(const std::string& body) {
  return "#!/bin/sh\n" + body + "\n";
}

void populate_centos_repos(pkg::RepoUniverse& universe) {
  pkg::Repository& base = universe.create("centos7-base");
  {
    pkg::Package p;
    p.name = "fipscheck";
    p.version = "1.4.1-6.el7";
    p.arch = "x86_64";
    p.files = {
        {"/usr/bin/fipscheck", vfs::FileType::Regular, 0755, "root", "root",
         script("echo fips mode: disabled")},
        {"/usr/lib64/libfipscheck.so.1", vfs::FileType::Regular, 0755, "root",
         "root", "\177ELF fipscheck library"},
    };
    base.add(std::move(p));
  }
  {
    // The Fig 2 package: ssh-keysign is setgid root:ssh_keys, so cpio's
    // chown(2) fails in a basic Type III container.
    pkg::Package p;
    p.name = "openssh";
    p.version = "7.4p1-21.el7";
    p.arch = "x86_64";
    p.depends = {"fipscheck"};
    p.pre_install = "groupadd -r ssh_keys";
    p.files = {
        {"/etc/ssh/ssh_config", vfs::FileType::Regular, 0644, "root", "root",
         "Host *\n    GSSAPIAuthentication yes\n"},
        {"/usr/bin/ssh", vfs::FileType::Regular, 0755, "root", "root",
         script("echo OpenSSH_7.4p1 client")},
        {"/usr/bin/ssh-keygen", vfs::FileType::Regular, 0755, "root", "root",
         script("echo Generating public/private rsa key pair.")},
        {"/usr/libexec/openssh/ssh-keysign", vfs::FileType::Regular, 02555,
         "root", "ssh_keys", script("echo ssh-keysign")},
    };
    base.add(std::move(p));
  }
  {
    // Fig 5: the %pre scriptlet reads /proc/1/environ (really 0400
    // root-owned); with host /proc bind-mounted into a single-map
    // namespace, that file belongs to "nobody" and the read fails.
    pkg::Package p;
    p.name = "openssh-server";
    p.version = "7.4p1-21.el7";
    p.arch = "x86_64";
    p.depends = {"openssh"};
    p.pre_install = "cat /proc/1/environ >/dev/null";
    p.files = {
        {"/usr/sbin/sshd", vfs::FileType::Regular, 0755, "root", "root",
         script("echo sshd: no hostkeys available")},
        {"/etc/ssh/sshd_config", vfs::FileType::Regular, 0600, "root", "root",
         "PermitRootLogin no\n"},
    };
    base.add(std::move(p));
  }
  {
    pkg::Package p;
    p.name = "epel-release";
    p.version = "7-11";
    p.arch = "noarch";
    p.files = {
        {"/etc/yum.repos.d/epel.repo", vfs::FileType::Regular, 0644, "root",
         "root", "[epel]\nname=Extra Packages for Enterprise Linux 7\n"
                 "baseurl=repo://epel\nenabled=1\n"},
    };
    base.add(std::move(p));
  }
  {
    // File capabilities via setcap(8): classic fakeroot cannot fake the
    // security.capability xattr (Table 1).
    pkg::Package p;
    p.name = "iputils";
    p.version = "20160308-10.el7";
    p.arch = "x86_64";
    pkg::PackageFile ping{"/usr/bin/ping", vfs::FileType::Regular, 0755,
                          "root", "root", script("echo PING 127.0.0.1"),
                          0,    0,        "cap_net_raw+ep"};
    p.files = {ping};
    base.add(std::move(p));
  }
  {
    // Breakage-matrix pass case: the %post scriptlet *requests* privilege
    // (chown + setuid chmod on pkexec) but never reads the result back —
    // exactly the pattern the zero-consistency emulator bets on.
    pkg::Package p;
    p.name = "polkit";
    p.version = "0.112-26.el7";
    p.arch = "x86_64";
    p.post_install =
        "chown root:root /usr/bin/pkexec && chmod 4755 /usr/bin/pkexec";
    p.files = {
        {"/usr/bin/pkexec", vfs::FileType::Regular, 0755, "root", "root",
         script("echo pkexec must be setuid root")},
    };
    base.add(std::move(p));
  }
  {
    // Breakage-matrix divergence case (rpm flavour): the %post creates
    // /dev/fuse MAKEDEV-style and then *checks* it exists. Zero-consistency
    // mode fakes the mknod and keeps nothing, so the readback fails — rpm
    // reports the scriptlet failure as a warning and carries on.
    pkg::Package p;
    p.name = "fuse";
    p.version = "2.9.2-11.el7";
    p.arch = "x86_64";
    p.post_install =
        "test -e /dev/fuse || mknod /dev/fuse c 10 229; test -e /dev/fuse";
    p.files = {
        {"/usr/bin/fusermount", vfs::FileType::Regular, 0755, "root", "root",
         script("echo fusermount version: 2.9.2")},
    };
    base.add(std::move(p));
  }

  pkg::Repository& epel = universe.create("epel");
  {
    pkg::Package p;
    p.name = "fakeroot";
    p.version = "1.25.3-1.el7";
    p.arch = "x86_64";
    p.files = {
        {"/usr/bin/fakeroot", vfs::FileType::Regular, 0755, "root", "root",
         shell::make_binary("fakeroot")},
    };
    epel.add(std::move(p));
  }

  // The ATSE-like HPC stack (Fig 6): compilers, MPI, and Spack stand-ins.
  pkg::Repository& hpc = universe.create("centos7-hpc");
  {
    pkg::Package p;
    p.name = "gcc";
    p.version = "4.8.5-44.el7";
    p.arch = "x86_64";
    p.files = {{"/usr/bin/gcc", vfs::FileType::Regular, 0755, "root", "root",
                shell::make_binary("gcc")},
               {"/usr/bin/cc", vfs::FileType::Regular, 0755, "root", "root",
                shell::make_binary("gcc")}};
    hpc.add(std::move(p));
  }
  {
    pkg::Package p;
    p.name = "make";
    p.version = "3.82-24.el7";
    p.arch = "x86_64";
    p.files = {{"/usr/bin/make", vfs::FileType::Regular, 0755, "root", "root",
                script("echo make: nothing to be done")}};
    hpc.add(std::move(p));
  }
  {
    pkg::Package p;
    p.name = "openmpi-devel";
    p.version = "1.10.7-5.el7";
    p.arch = "x86_64";
    p.depends = {"gcc"};
    p.files = {{"/usr/bin/mpicc", vfs::FileType::Regular, 0755, "root", "root",
                shell::make_binary("gcc")},
               {"/usr/bin/mpirun", vfs::FileType::Regular, 0755, "root",
                "root", shell::make_binary("mpirun")},
               {"/usr/include/mpi.h", vfs::FileType::Regular, 0644, "root",
                "root", "/* Message Passing Interface */\n"}};
    hpc.add(std::move(p));
  }
  {
    // Site-licensed compiler: installing is fine anywhere, *running* it
    // requires the license server on the site network.
    pkg::Package p;
    p.name = "intel-compiler";
    p.version = "19.1.3-2020.4";
    p.arch = "x86_64";
    p.files = {{"/usr/bin/icc", vfs::FileType::Regular, 0755, "root", "root",
                shell::make_binary("icc")},
               {"/opt/intel/license.conf", vfs::FileType::Regular, 0644,
                "root", "root", "SERVER license.site.example.com 27000\n"}};
    hpc.add(std::move(p));
  }
  {
    pkg::Package p;
    p.name = "spack";
    p.version = "0.16.1-1.el7";
    p.arch = "noarch";
    p.depends = {"gcc", "make"};
    p.files = {{"/usr/bin/spack", vfs::FileType::Regular, 0755, "root", "root",
                script("echo spack: environment ready")}};
    hpc.add(std::move(p));
  }
}

void populate_debian_repos(pkg::RepoUniverse& universe) {
  pkg::Repository& main = universe.create("debian10-main");
  {
    pkg::Package p;
    p.name = "libxext6";
    p.version = "2:1.3.3-1+b2";
    p.arch = "amd64";
    p.files = {{"/usr/lib/x86_64-linux-gnu/libXext.so.6",
                vfs::FileType::Regular, 0644, "root", "root",
                "\177ELF libXext"}};
    main.add(std::move(p));
  }
  {
    pkg::Package p;
    p.name = "xauth";
    p.version = "1:1.0.10-1";
    p.arch = "amd64";
    p.files = {{"/usr/bin/xauth", vfs::FileType::Regular, 0755, "root", "root",
                script("echo xauth: creating new authority file")}};
    main.add(std::move(p));
  }
  {
    // The Fig 3 package: ssh-agent is setgid root:ssh.
    pkg::Package p;
    p.name = "openssh-client";
    p.version = "1:7.9p1-10+deb10u2";
    p.arch = "amd64";
    p.depends = {"libxext6", "xauth"};
    p.pre_install = "groupadd -r ssh";
    p.files = {
        {"/usr/bin/ssh", vfs::FileType::Regular, 0755, "root", "root",
         script("echo OpenSSH_7.9p1 client")},
        {"/usr/bin/scp", vfs::FileType::Regular, 0755, "root", "root",
         script("echo scp")},
        {"/usr/bin/ssh-agent", vfs::FileType::Regular, 02755, "root", "ssh",
         script("echo ssh-agent")},
        {"/etc/ssh/ssh_config", vfs::FileType::Regular, 0644, "root", "root",
         "Host *\n    SendEnv LANG LC_*\n"},
    };
    main.add(std::move(p));
  }
  {
    pkg::Package p;
    p.name = "pseudo";
    p.version = "1.9.0+git20180920-1";
    p.arch = "amd64";
    p.files = {
        {"/usr/bin/pseudo", vfs::FileType::Regular, 0755, "root", "root",
         shell::make_binary("fakeroot",
                            {{"flavor", "pseudo"}, {"xattrs", "1"}})},
        // Debian's pseudo provides a fakeroot(1)-compatible entry point.
        {"/usr/bin/fakeroot", vfs::FileType::Regular, 0755, "root", "root",
         shell::make_binary("fakeroot",
                            {{"flavor", "pseudo"}, {"xattrs", "1"}})},
    };
    main.add(std::move(p));
  }
  {
    pkg::Package p;
    p.name = "fakeroot";
    p.version = "1.23-1";
    p.arch = "amd64";
    p.files = {{"/usr/bin/fakeroot", vfs::FileType::Regular, 0755, "root",
                "root", shell::make_binary("fakeroot")}};
    main.add(std::move(p));
  }
  {
    // ptrace-based wrapper: handles statics but the binary only exists for
    // a few architectures (Table 1).
    pkg::Package p;
    p.name = "fakeroot-ng";
    p.version = "0.18-4";
    p.arch = "amd64";
    p.files = {{"/usr/bin/fakeroot-ng", vfs::FileType::Regular, 0755, "root",
                "root",
                shell::make_binary("fakeroot", {{"flavor", "fakeroot-ng"},
                                                {"approach", "ptrace"},
                                                {"arch", "x86_64"}})}};
    main.add(std::move(p));
  }
  {
    pkg::Package p;
    p.name = "iputils-ping";
    p.version = "3:20180629-2+deb10u2";
    p.arch = "amd64";
    pkg::PackageFile ping{"/bin/ping", vfs::FileType::Regular, 0755,
                          "root", "root", script("echo PING 127.0.0.1"),
                          0,    0,        "cap_net_raw+ep"};
    p.files = {ping};
    main.add(std::move(p));
  }
  {
    // Post-install runs a statically-linked helper: LD_PRELOAD wrappers
    // cannot intercept it, the ptrace flavour can (Table 1 / §5.1 quirks).
    pkg::Package p;
    p.name = "initscripts-static";
    p.version = "2.96-1";
    p.arch = "amd64";
    p.post_install = "/usr/sbin/chown.static bin:bin /usr/sbin/chown.static";
    p.files = {{"/usr/sbin/chown.static", vfs::FileType::Regular, 0755,
                "root", "root",
                shell::make_binary("chown", {{"static", "1"}})}};
    main.add(std::move(p));
  }
  {
    pkg::Package p;
    p.name = "hello";
    p.version = "2.10-2";
    p.arch = "amd64";
    p.files = {{"/usr/bin/hello", vfs::FileType::Regular, 0755, "root", "root",
                script("echo Hello, world!")}};
    main.add(std::move(p));
  }
  {
    // Breakage-matrix divergence case (hard failure): like the real makedev
    // package, the postinst creates device nodes — and then verifies them,
    // as MAKEDEV scripts do. Under --force=fakeroot the faked node is a
    // recorded plain file, so the check passes; under --force=seccomp
    // nothing was created and dpkg fails the configure step (apt exits 100).
    pkg::Package p;
    p.name = "makedev";
    p.version = "2.3.1-93";
    p.arch = "all";
    p.post_install = "mknod /dev/sda b 8 0 && test -e /dev/sda";
    p.files = {{"/sbin/MAKEDEV", vfs::FileType::Regular, 0755, "root", "root",
                script("echo MAKEDEV")}};
    main.add(std::move(p));
  }
  {
    // Breakage-matrix divergence case (ownership readback): models the
    // scriptlet class that chowns a path and then *verifies* the result
    // (postfix's "postfix check", dpkg-statoverride --update). fakeroot's
    // consistent lies satisfy the stat; zero-consistency mode leaves the
    // file invoker-owned (Uid: 0 inside the map), so the grep fails and
    // dpkg reports the broken postinst.
    pkg::Package p;
    p.name = "ownership-audit";
    p.version = "1.2-3";
    p.arch = "amd64";
    p.post_install =
        "chown bin:bin /usr/lib/ownership-audit/canary && "
        "stat /usr/lib/ownership-audit/canary | grep -q 'Uid: 2 '";
    p.files = {{"/usr/lib/ownership-audit/canary", vfs::FileType::Regular,
                0644, "bin", "bin", "audited\n"}};
    main.add(std::move(p));
  }
}

}  // namespace

void populate_repos(pkg::RepoUniverse& universe) {
  populate_centos_repos(universe);
  populate_debian_repos(universe);
}

void publish_base_images(image::Registry& registry,
                         const std::vector<std::string>& arches) {
  for (const auto& arch : arches) {
    for (const auto& [ref, tree] :
         {std::pair<std::string, std::shared_ptr<vfs::MemFs>>{
              "centos:7", make_centos7_tree(arch)},
          {"debian:buster", make_debian10_tree(arch)}}) {
      auto entries = image::tree_to_entries(*tree, tree->root());
      if (!entries.ok()) continue;
      const std::string digest = registry.put_blob(image::tar_create(*entries));
      image::Manifest m;
      m.reference = ref;
      m.config.arch = arch;
      m.config.env["PATH"] = kDefaultPath;
      m.config.cmd = {"/bin/sh"};
      m.layers = {digest};
      registry.put_manifest(m);
    }
  }
}

namespace {

int cmd_gcc(shell::Invocation& inv) {
  std::string output = "a.out";
  std::vector<std::string> sources;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    if (inv.args[i] == "-o" && i + 1 < inv.args.size()) {
      output = inv.args[++i];
    } else if (!inv.args[i].starts_with("-")) {
      sources.push_back(inv.args[i]);
    }
  }
  for (const auto& src : sources) {
    if (!inv.proc.sys->stat(inv.proc, src).ok()) {
      inv.err += "gcc: error: " + src + ": No such file or directory\n";
      return 1;
    }
  }
  std::string arch = inv.proc.env_get("MINICON_ARCH");
  if (arch.empty()) arch = "x86_64";
  // The produced executable is tagged with the *build* architecture — the
  // reason HPC images must be built on matching hardware (§2, §4.2).
  std::string content =
      shell::make_binary("compiled-app", {{"arch", arch}});
  for (const auto& src : sources) content += "// from " + src + "\n";
  if (auto rc = inv.proc.sys->write_file(inv.proc, output, content, false,
                                         0755);
      !rc.ok()) {
    inv.err += "gcc: cannot write " + output + "\n";
    return 1;
  }
  (void)inv.proc.sys->chmod(inv.proc, output, 0755);
  return 0;
}

int cmd_compiled_app(shell::Invocation& inv) {
  auto it = inv.binary_attrs.find("arch");
  const std::string arch =
      it == inv.binary_attrs.end() ? "unknown" : it->second;
  inv.out += inv.args[0] + ": hello from compiled application (" + arch +
             ")\n";
  return 0;
}

// A license-managed compiler: it phones home to the site license server
// before compiling — which only works from the site network (§2: "developers
// often need licenses for compilers ... with this limitation").
int cmd_icc(shell::Invocation& inv) {
  const std::string networks = inv.proc.env_get("MINICON_NETWORKS");
  bool on_site = false;
  for (const auto& n : split(networks, ',')) {
    if (n == "site") on_site = true;
  }
  if (!on_site) {
    inv.err += "icc: error #10052: could not checkout FLEXlm license: "
               "cannot reach license.site.example.com:27000\n";
    return 1;
  }
  return cmd_gcc(inv);
}

int cmd_mpirun(shell::Invocation& inv) {
  std::size_t np = 1;
  std::vector<std::string> rest;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    if ((inv.args[i] == "-np" || inv.args[i] == "-n") &&
        i + 1 < inv.args.size()) {
      std::uint64_t v = 0;
      if (parse_u64(inv.args[++i], v)) np = v;
    } else {
      rest.push_back(inv.args[i]);
    }
  }
  if (rest.empty()) return 1;
  int status = 0;
  for (std::size_t rank = 0; rank < np; ++rank) {
    kernel::Process child = inv.proc.clone();
    child.env["OMPI_COMM_WORLD_RANK"] = std::to_string(rank);
    shell::ShellState state;
    state.registry = inv.state.registry;
    state.shell = inv.state.shell;
    state.depth = inv.state.depth + 1;
    status = inv.state.shell->dispatch_argv(child, rest, inv.out, inv.err,
                                            inv.stdin_data, state);
    if (status != 0) break;
  }
  return status;
}

}  // namespace

void register_toolchain_commands(shell::CommandRegistry& reg) {
  reg.register_external("gcc", cmd_gcc);
  reg.register_external("icc", cmd_icc);
  reg.register_external("compiled-app", cmd_compiled_app);
  reg.register_external("mpirun", cmd_mpirun);
}

}  // namespace minicon::distro
