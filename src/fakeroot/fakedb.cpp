#include "fakeroot/fakedb.hpp"

#include <cinttypes>
#include <cstdio>

#include "support/strings.hpp"

namespace minicon::fakeroot {

namespace {

constexpr std::uint32_t kUnset = 0xffffffffu;

}  // namespace

std::string FakeDb::serialize() const {
  // One line per entry:
  //   fs=<ptr> ino=<n> uid=<n|-> gid=<n|-> mode=<octal|-> type=<n|-> maj min
  // followed by "x <name> <hex-len> <value>" xattr lines.
  std::string out;
  char buf[256];
  for (const auto& [key, e] : entries_) {
    std::snprintf(
        buf, sizeof buf, "e %p %" PRIu64 " %u %u %o %d %u %u\n",
        static_cast<const void*>(key.first), key.second,
        e.uid.value_or(kUnset), e.gid.value_or(kUnset), e.mode.value_or(kUnset),
        e.type ? static_cast<int>(*e.type) : -1, e.dev_major, e.dev_minor);
    out += buf;
    for (const auto& [name, value] : e.xattrs) {
      out += "x " + name + " " + value + "\n";
    }
  }
  return out;
}

std::shared_ptr<FakeDb> FakeDb::deserialize(const std::string& text) {
  auto db = std::make_shared<FakeDb>();
  Entry* current = nullptr;
  for (const auto& line : split(text, '\n')) {
    const auto fields = split_ws(line);
    if (fields.empty()) continue;
    if (fields[0] == "e" && fields.size() >= 8) {
      void* fs = nullptr;
      std::sscanf(fields[1].c_str(), "%p", &fs);
      std::uint64_t ino = 0;
      if (!parse_u64(fields[2], ino)) continue;
      Entry e;
      std::uint32_t v = 0;
      if (parse_u32(fields[3], v) && v != kUnset) e.uid = v;
      if (parse_u32(fields[4], v) && v != kUnset) e.gid = v;
      std::uint32_t m = 0;
      std::sscanf(fields[5].c_str(), "%o", &m);
      if (m != kUnset) {
        // "-1" octal round-trips as kUnset; anything else is a real mode.
        if (fields[5] != "37777777777") e.mode = m;
      }
      int type = -1;
      std::sscanf(fields[6].c_str(), "%d", &type);
      if (type >= 0) e.type = static_cast<vfs::FileType>(type);
      parse_u32(fields[7], e.dev_major);
      if (fields.size() > 8) parse_u32(fields[8], e.dev_minor);
      current = &db->entries_[{static_cast<const vfs::Filesystem*>(fs), ino}];
      *current = std::move(e);
    } else if (fields[0] == "x" && fields.size() >= 3 && current != nullptr) {
      current->xattrs[fields[1]] = fields[2];
    }
  }
  return db;
}

}  // namespace minicon::fakeroot
