// fakeroot(1): syscall interposition that fakes privileged operations (§5.1).
//
// The wrapper sits between a process and the real kernel syscalls, lying
// about identity (getuid() -> 0), faking privileged metadata operations
// (chown, mknod, privileged chmod, security xattrs), and keeping the lies
// consistent via a FakeDb. Three flavours mirror Table 1:
//
//   flavour     approach    statics?  faked xattrs?  persistence
//   fakeroot    LD_PRELOAD  no        no             save/restore to file
//   fakeroot-ng ptrace      yes       no             save/restore to file
//   pseudo      LD_PRELOAD  no        yes            database
//
// LD_PRELOAD flavours cannot wrap statically-linked executables (the
// dispatcher consults is_interposer()/wraps_statically_linked()); the
// ptrace flavour wraps everything but the fakeroot-ng binary itself only
// exists for a few architectures.
#pragma once

#include <memory>

#include "fakeroot/fakedb.hpp"
#include "kernel/syscalls.hpp"

namespace minicon::fakeroot {

enum class Approach { kPreload, kPtrace };

struct FakerootOptions {
  Approach approach = Approach::kPreload;
  std::string flavor = "fakeroot";
  // pseudo fakes security.*/trusted.* xattrs in its database; the classic
  // fakeroot does not, so packages that setcap(8) their binaries fail.
  bool fake_security_xattrs = false;
};

class FakerootSyscalls : public kernel::Syscalls,
                         public std::enable_shared_from_this<FakerootSyscalls> {
 public:
  FakerootSyscalls(std::shared_ptr<kernel::Syscalls> inner, FakeDbPtr db,
                   FakerootOptions options = {});

  const FakeDbPtr& db() const { return db_; }
  const FakerootOptions& options() const { return options_; }

  // --- interposition introspection ---
  bool is_interposer() const override { return true; }
  bool wraps_statically_linked() const override {
    return options_.approach == Approach::kPtrace;
  }
  std::shared_ptr<kernel::Syscalls> interposer_inner() const override {
    return inner_;
  }

  // --- intercepted metadata ops ---
  Result<vfs::Stat> stat(kernel::Process& p, const std::string& path) override;
  Result<vfs::Stat> lstat(kernel::Process& p, const std::string& path) override;
  VoidResult chown(kernel::Process& p, const std::string& path, vfs::Uid uid,
                   vfs::Gid gid, bool follow) override;
  VoidResult chmod(kernel::Process& p, const std::string& path,
                   std::uint32_t mode) override;
  VoidResult mknod(kernel::Process& p, const std::string& path,
                   vfs::FileType type, std::uint32_t mode,
                   std::uint32_t dev_major, std::uint32_t dev_minor) override;
  VoidResult unlink(kernel::Process& p, const std::string& path) override;
  VoidResult rename(kernel::Process& p, const std::string& oldpath,
                    const std::string& newpath) override;
  VoidResult set_xattr(kernel::Process& p, const std::string& path,
                       const std::string& name,
                       const std::string& value) override;
  Result<std::string> get_xattr(kernel::Process& p, const std::string& path,
                                const std::string& name) override;

  // --- faked identity ---
  vfs::Uid getuid(kernel::Process& p) override;
  vfs::Uid geteuid(kernel::Process& p) override;
  vfs::Gid getgid(kernel::Process& p) override;
  vfs::Gid getegid(kernel::Process& p) override;
  std::vector<vfs::Gid> getgroups(kernel::Process& p) override;
  VoidResult setuid(kernel::Process& p, vfs::Uid uid) override;
  VoidResult setgid(kernel::Process& p, vfs::Gid gid) override;
  VoidResult setresuid(kernel::Process& p, vfs::Uid r, vfs::Uid e,
                       vfs::Uid s) override;
  VoidResult setresgid(kernel::Process& p, vfs::Gid r, vfs::Gid e,
                       vfs::Gid s) override;
  VoidResult seteuid(kernel::Process& p, vfs::Uid e) override;
  VoidResult setegid(kernel::Process& p, vfs::Gid e) override;
  VoidResult setgroups(kernel::Process& p,
                       const std::vector<vfs::Gid>& groups) override;

  // --- passthrough ---
  Result<std::string> read_file(kernel::Process& p,
                                const std::string& path) override {
    return inner_->read_file(p, path);
  }
  VoidResult write_file(kernel::Process& p, const std::string& path,
                        std::string data, bool append,
                        std::uint32_t create_mode) override {
    return inner_->write_file(p, path, std::move(data), append, create_mode);
  }
  Result<std::vector<vfs::DirEntry>> readdir(kernel::Process& p,
                                             const std::string& path) override {
    return inner_->readdir(p, path);
  }
  Result<std::string> readlink(kernel::Process& p,
                               const std::string& path) override {
    return inner_->readlink(p, path);
  }
  VoidResult mkdir(kernel::Process& p, const std::string& path,
                   std::uint32_t mode) override {
    return inner_->mkdir(p, path, mode);
  }
  VoidResult symlink(kernel::Process& p, const std::string& target,
                     const std::string& linkpath) override {
    return inner_->symlink(p, target, linkpath);
  }
  VoidResult link(kernel::Process& p, const std::string& oldpath,
                  const std::string& newpath) override {
    return inner_->link(p, oldpath, newpath);
  }
  VoidResult rmdir(kernel::Process& p, const std::string& path) override {
    return inner_->rmdir(p, path);
  }
  VoidResult access(kernel::Process& p, const std::string& path,
                    int mask) override {
    return inner_->access(p, path, mask);
  }
  VoidResult chdir(kernel::Process& p, const std::string& path) override {
    return inner_->chdir(p, path);
  }
  Result<std::vector<std::string>> list_xattrs(kernel::Process& p,
                                               const std::string& path) override {
    return inner_->list_xattrs(p, path);
  }
  VoidResult remove_xattr(kernel::Process& p, const std::string& path,
                          const std::string& name) override;

  VoidResult unshare_userns(kernel::Process& p) override {
    return inner_->unshare_userns(p);
  }
  VoidResult unshare_mountns(kernel::Process& p) override {
    return inner_->unshare_mountns(p);
  }
  VoidResult write_uid_map(kernel::Process& writer,
                           const kernel::UserNsPtr& target,
                           kernel::IdMap map) override {
    return inner_->write_uid_map(writer, target, std::move(map));
  }
  VoidResult write_gid_map(kernel::Process& writer,
                           const kernel::UserNsPtr& target,
                           kernel::IdMap map) override {
    return inner_->write_gid_map(writer, target, std::move(map));
  }
  VoidResult write_setgroups(
      kernel::Process& writer, const kernel::UserNsPtr& target,
      kernel::UserNamespace::SetgroupsPolicy policy) override {
    return inner_->write_setgroups(writer, target, policy);
  }
  VoidResult userns_auto_map(kernel::Process& p) override {
    return inner_->userns_auto_map(p);
  }
  VoidResult mount(kernel::Process& p, kernel::Mount m) override {
    return inner_->mount(p, std::move(m));
  }
  VoidResult umount(kernel::Process& p, const std::string& mountpoint) override {
    return inner_->umount(p, mountpoint);
  }
  VoidResult bind_mount(kernel::Process& p, const std::string& src,
                        const std::string& dst, bool read_only) override {
    return inner_->bind_mount(p, src, dst, read_only);
  }
  Result<kernel::Loc> resolve(kernel::Process& p, const std::string& path,
                              bool follow_last) override {
    return inner_->resolve(p, path, follow_last);
  }

 private:
  // Overlay DB lies on a real Stat.
  void apply_lies(const kernel::Loc& loc, vfs::Stat& st) const;

  std::shared_ptr<kernel::Syscalls> inner_;
  FakeDbPtr db_;
  FakerootOptions options_;

  // Faked identity state (what the wrapped process believes).
  vfs::Uid fake_ruid_ = 0, fake_euid_ = 0;
  vfs::Gid fake_rgid_ = 0, fake_egid_ = 0;
};

}  // namespace minicon::fakeroot

namespace minicon::shell {
class CommandRegistry;
}

namespace minicon::fakeroot {

// Registers the `fakeroot` external command implementation. The installed
// binary's "#!minicon fakeroot flavor=pseudo approach=ptrace" attributes
// select the options; -s FILE / -i FILE save and restore the lies database.
void register_fakeroot_commands(shell::CommandRegistry& reg);

}  // namespace minicon::fakeroot
