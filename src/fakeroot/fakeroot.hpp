// fakeroot(1): syscall interposition that fakes privileged operations (§5.1).
//
// The wrapper sits between a process and the real kernel syscalls, lying
// about identity (getuid() -> 0), faking privileged metadata operations
// (chown, mknod, privileged chmod, security xattrs), and keeping the lies
// consistent via a FakeDb. Three flavours mirror Table 1:
//
//   flavour     approach    statics?  faked xattrs?  persistence
//   fakeroot    LD_PRELOAD  no        no             save/restore to file
//   fakeroot-ng ptrace      yes       no             save/restore to file
//   pseudo      LD_PRELOAD  no        yes            database
//
// LD_PRELOAD flavours cannot wrap statically-linked executables (the
// dispatcher consults is_interposer()/wraps_statically_linked()); the
// ptrace flavour wraps everything but the fakeroot-ng binary itself only
// exists for a few architectures.
//
// The layer derives from kernel::SyscallFilter and overrides only the
// operations it actually fakes; everything else forwards to the wrapped
// layer automatically.
#pragma once

#include <memory>

#include "fakeroot/fakedb.hpp"
#include "kernel/syscall_filter.hpp"

namespace minicon::fakeroot {

enum class Approach { kPreload, kPtrace };

struct FakerootOptions {
  Approach approach = Approach::kPreload;
  std::string flavor = "fakeroot";
  // pseudo fakes security.*/trusted.* xattrs in its database; the classic
  // fakeroot does not, so packages that setcap(8) their binaries fail.
  bool fake_security_xattrs = false;
};

class FakerootSyscalls : public kernel::SyscallFilter {
 public:
  FakerootSyscalls(std::shared_ptr<kernel::Syscalls> inner, FakeDbPtr db,
                   FakerootOptions options = {});

  const FakeDbPtr& db() const { return db_; }
  const FakerootOptions& options() const { return options_; }

  // --- interposition introspection ---
  bool is_interposer() const override { return true; }
  bool wraps_statically_linked() const override {
    return options_.approach == Approach::kPtrace;
  }

  // --- intercepted metadata ops ---
  Result<vfs::Stat> stat(kernel::Process& p, const std::string& path) override;
  Result<vfs::Stat> lstat(kernel::Process& p, const std::string& path) override;
  VoidResult chown(kernel::Process& p, const std::string& path, vfs::Uid uid,
                   vfs::Gid gid, bool follow) override;
  VoidResult chmod(kernel::Process& p, const std::string& path,
                   std::uint32_t mode) override;
  VoidResult mknod(kernel::Process& p, const std::string& path,
                   vfs::FileType type, std::uint32_t mode,
                   std::uint32_t dev_major, std::uint32_t dev_minor) override;
  VoidResult unlink(kernel::Process& p, const std::string& path) override;
  VoidResult rename(kernel::Process& p, const std::string& oldpath,
                    const std::string& newpath) override;
  VoidResult set_xattr(kernel::Process& p, const std::string& path,
                       const std::string& name,
                       const std::string& value) override;
  Result<std::string> get_xattr(kernel::Process& p, const std::string& path,
                                const std::string& name) override;
  VoidResult remove_xattr(kernel::Process& p, const std::string& path,
                          const std::string& name) override;

  // --- faked identity ---
  vfs::Uid getuid(kernel::Process& p) override;
  vfs::Uid geteuid(kernel::Process& p) override;
  vfs::Gid getgid(kernel::Process& p) override;
  vfs::Gid getegid(kernel::Process& p) override;
  VoidResult setuid(kernel::Process& p, vfs::Uid uid) override;
  VoidResult setgid(kernel::Process& p, vfs::Gid gid) override;
  VoidResult setresuid(kernel::Process& p, vfs::Uid r, vfs::Uid e,
                       vfs::Uid s) override;
  VoidResult setresgid(kernel::Process& p, vfs::Gid r, vfs::Gid e,
                       vfs::Gid s) override;
  VoidResult seteuid(kernel::Process& p, vfs::Uid e) override;
  VoidResult setegid(kernel::Process& p, vfs::Gid e) override;
  VoidResult setgroups(kernel::Process& p,
                       const std::vector<vfs::Gid>& groups) override;

 private:
  // Overlay DB lies on a real Stat.
  void apply_lies(const kernel::Loc& loc, vfs::Stat& st) const;

  FakeDbPtr db_;
  FakerootOptions options_;

  // Faked identity state (what the wrapped process believes).
  vfs::Uid fake_ruid_ = 0, fake_euid_ = 0;
  vfs::Gid fake_rgid_ = 0, fake_egid_ = 0;
};

}  // namespace minicon::fakeroot

namespace minicon::shell {
class CommandRegistry;
}

namespace minicon::fakeroot {

// Registers the `fakeroot` external command implementation. The installed
// binary's "#!minicon fakeroot flavor=pseudo approach=ptrace" attributes
// select the options; -s FILE / -i FILE save and restore the lies database.
void register_fakeroot_commands(shell::CommandRegistry& reg);

}  // namespace minicon::fakeroot
