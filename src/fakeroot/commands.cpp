// The fakeroot(1) command-line wrapper.
#include "fakeroot/fakeroot.hpp"
#include "shell/shell.hpp"
#include "support/path.hpp"

namespace minicon::fakeroot {

namespace {

// Ensure a file's parent directories exist (for pseudo's database file).
void ensure_parents(kernel::Process& p, const std::string& path) {
  const std::string dir = path_dirname(path);
  std::string cur = "/";
  for (const auto& comp : path_components(dir)) {
    cur = cur == "/" ? "/" + comp : cur + "/" + comp;
    if (!p.sys->stat(p, cur).ok()) (void)p.sys->mkdir(p, cur, 0755);
  }
}

int cmd_fakeroot(shell::Invocation& inv) {
  FakerootOptions options;
  auto attr = [&](const std::string& key) -> std::string {
    auto it = inv.binary_attrs.find(key);
    return it == inv.binary_attrs.end() ? std::string() : it->second;
  };
  if (auto f = attr("flavor"); !f.empty()) options.flavor = f;
  if (attr("approach") == "ptrace") options.approach = Approach::kPtrace;
  if (attr("xattrs") == "1") options.fake_security_xattrs = true;

  std::string save_file, load_file;
  std::vector<std::string> rest;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    const std::string& a = inv.args[i];
    if (rest.empty() && a == "-s" && i + 1 < inv.args.size()) {
      save_file = inv.args[++i];
    } else if (rest.empty() && a == "-i" && i + 1 < inv.args.size()) {
      load_file = inv.args[++i];
    } else if (rest.empty() && a == "--") {
      continue;
    } else {
      rest.push_back(a);
    }
  }

  // pseudo persists its database implicitly; fakeroot needs -s/-i.
  const std::string pseudo_db_path = [&] {
    std::string dir = inv.proc.env_get("PSEUDO_LOCALSTATEDIR");
    if (dir.empty()) {
      const std::string home = inv.proc.env_get("HOME");
      dir = home.empty() ? "/var/pseudo" : home + "/.pseudo";
    }
    return dir + "/files.db";
  }();
  const bool pseudo_persist = options.flavor == "pseudo";

  FakeDbPtr db;
  if (!load_file.empty()) {
    auto text = inv.proc.sys->read_file(inv.proc, load_file);
    if (!text.ok()) {
      inv.err += "fakeroot: cannot load " + load_file + "\n";
      return 1;
    }
    db = FakeDb::deserialize(*text);
  } else if (pseudo_persist) {
    if (auto text = inv.proc.sys->read_file(inv.proc, pseudo_db_path);
        text.ok()) {
      db = FakeDb::deserialize(*text);
    }
  }
  if (db == nullptr) db = std::make_shared<FakeDb>();

  auto wrapper =
      std::make_shared<FakerootSyscalls>(inv.proc.sys, db, options);

  int status = 0;
  if (!rest.empty()) {
    kernel::Process child = inv.proc.clone();
    child.sys = wrapper;
    if (options.approach == Approach::kPreload) {
      child.env["LD_PRELOAD"] = "libfakeroot.so";
    }
    shell::ShellState state;
    state.registry = inv.state.registry;
    state.shell = inv.state.shell;
    state.depth = inv.state.depth + 1;
    status = inv.state.shell->dispatch_argv(child, rest, inv.out, inv.err,
                                            inv.stdin_data, state);
  }

  if (!save_file.empty()) {
    ensure_parents(inv.proc, save_file);
    (void)inv.proc.sys->write_file(inv.proc, save_file, db->serialize(),
                                   false);
  }
  if (pseudo_persist) {
    ensure_parents(inv.proc, pseudo_db_path);
    (void)inv.proc.sys->write_file(inv.proc, pseudo_db_path, db->serialize(),
                                   false);
  }
  return status;
}

}  // namespace

void register_fakeroot_commands(shell::CommandRegistry& reg) {
  reg.register_external("fakeroot", cmd_fakeroot);
}

}  // namespace minicon::fakeroot
