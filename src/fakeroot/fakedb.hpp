// The fakeroot "lies" database (§5.1).
//
// fakeroot(1) remembers which privileged metadata operations it faked so
// that later intercepted stat(2) calls return consistent results. Entries
// are keyed by (filesystem identity, inode) like the real implementation's
// device:inode keys. The database can be serialized (fakeroot's
// save/restore-to-file persistence) or kept alive across invocations
// (pseudo's database persistence) — Table 1's "persistency" column.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "vfs/filesystem.hpp"

namespace minicon::fakeroot {

class FakeDb {
 public:
  struct Entry {
    std::optional<vfs::Uid> uid;
    std::optional<vfs::Gid> gid;
    std::optional<std::uint32_t> mode;
    std::optional<vfs::FileType> type;  // faked device nodes
    std::uint32_t dev_major = 0;
    std::uint32_t dev_minor = 0;
    std::map<std::string, std::string> xattrs;  // faked security.* xattrs
  };

  using Key = std::pair<const vfs::Filesystem*, vfs::InodeNum>;

  Entry& upsert(const vfs::Filesystem* fs, vfs::InodeNum ino) {
    return entries_[{fs, ino}];
  }
  const Entry* find(const vfs::Filesystem* fs, vfs::InodeNum ino) const {
    auto it = entries_.find({fs, ino});
    return it == entries_.end() ? nullptr : &it->second;
  }
  void erase(const vfs::Filesystem* fs, vfs::InodeNum ino) {
    entries_.erase({fs, ino});
  }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  const std::map<Key, Entry>& entries() const { return entries_; }

  // Text form for fakeroot's -s/-i save files. Filesystem identities are
  // only stable within one simulated world, like device numbers within one
  // boot.
  std::string serialize() const;
  static std::shared_ptr<FakeDb> deserialize(const std::string& text);

 private:
  std::map<Key, Entry> entries_;
};

using FakeDbPtr = std::shared_ptr<FakeDb>;

}  // namespace minicon::fakeroot
