#include "fakeroot/fakeroot.hpp"

#include "kernel/privilege.hpp"

namespace minicon::fakeroot {

FakerootSyscalls::FakerootSyscalls(std::shared_ptr<kernel::Syscalls> inner,
                                   FakeDbPtr db, FakerootOptions options)
    : SyscallFilter(std::move(inner)), db_(std::move(db)), options_(options) {
  if (db_ == nullptr) db_ = std::make_shared<FakeDb>();
}

void FakerootSyscalls::apply_lies(const kernel::Loc& loc, vfs::Stat& st) const {
  // Within the fakeroot context every file appears root-owned by default;
  // recorded lies override that (Fig 7: "nobody root" after a faked chown).
  st.uid = 0;
  st.gid = 0;
  const FakeDb::Entry* e = db_->find(loc.mnt->fs.get(), loc.ino);
  if (e == nullptr) return;
  if (e->uid) st.uid = *e->uid;
  if (e->gid) st.gid = *e->gid;
  if (e->mode) st.mode = *e->mode;
  if (e->type) {
    st.type = *e->type;
    st.dev_major = e->dev_major;
    st.dev_minor = e->dev_minor;
    if (st.is_device()) st.size = 0;
  }
}

Result<vfs::Stat> FakerootSyscalls::stat(kernel::Process& p,
                                         const std::string& path) {
  MINICON_TRY_ASSIGN(st, inner()->stat(p, path));
  MINICON_TRY_ASSIGN(loc, inner()->resolve(p, path, /*follow_last=*/true));
  apply_lies(loc, st);
  return st;
}

Result<vfs::Stat> FakerootSyscalls::lstat(kernel::Process& p,
                                          const std::string& path) {
  MINICON_TRY_ASSIGN(st, inner()->lstat(p, path));
  MINICON_TRY_ASSIGN(loc, inner()->resolve(p, path, /*follow_last=*/false));
  apply_lies(loc, st);
  return st;
}

VoidResult FakerootSyscalls::chown(kernel::Process& p, const std::string& path,
                                   vfs::Uid uid, vfs::Gid gid, bool follow) {
  // Never perform the real (privileged) call; record the lie and succeed.
  MINICON_TRY_ASSIGN(loc, inner()->resolve(p, path, follow));
  FakeDb::Entry& e = db_->upsert(loc.mnt->fs.get(), loc.ino);
  if (uid != vfs::kNoChangeId) e.uid = uid;
  if (gid != vfs::kNoChangeId) e.gid = gid;
  return {};
}

VoidResult FakerootSyscalls::chmod(kernel::Process& p, const std::string& path,
                                   std::uint32_t mode) {
  // Try the real call first (most chmods are legitimate); fake only the
  // privileged failures.
  auto rc = inner()->chmod(p, path, mode);
  if (rc.ok()) return rc;
  if (rc.error() != Err::eperm && rc.error() != Err::eacces) return rc;
  MINICON_TRY_ASSIGN(loc, inner()->resolve(p, path, /*follow_last=*/true));
  db_->upsert(loc.mnt->fs.get(), loc.ino).mode = mode & vfs::mode::kPermMask;
  return {};
}

VoidResult FakerootSyscalls::mknod(kernel::Process& p, const std::string& path,
                                   vfs::FileType type, std::uint32_t mode,
                                   std::uint32_t dev_major,
                                   std::uint32_t dev_minor) {
  if (!kernel::privileged_node_type(type)) {
    return inner()->mknod(p, path, type, mode, dev_major, dev_minor);
  }
  // Fake a device node: create a plain file, remember what it pretends to be.
  MINICON_TRY(
      inner()->mknod(p, path, vfs::FileType::Regular, mode, 0, 0));
  MINICON_TRY_ASSIGN(loc, inner()->resolve(p, path, /*follow_last=*/false));
  FakeDb::Entry& e = db_->upsert(loc.mnt->fs.get(), loc.ino);
  e.type = type;
  e.dev_major = dev_major;
  e.dev_minor = dev_minor;
  return {};
}

VoidResult FakerootSyscalls::unlink(kernel::Process& p,
                                    const std::string& path) {
  auto loc = inner()->resolve(p, path, /*follow_last=*/false);
  std::uint32_t nlink = 1;
  if (loc.ok()) {
    if (auto st = loc->mnt->fs->getattr(loc->ino); st.ok()) nlink = st->nlink;
  }
  MINICON_TRY(inner()->unlink(p, path));
  // Drop stale lies so a recycled inode does not inherit them.
  if (loc.ok() && nlink <= 1) db_->erase(loc->mnt->fs.get(), loc->ino);
  return {};
}

VoidResult FakerootSyscalls::rename(kernel::Process& p,
                                    const std::string& oldpath,
                                    const std::string& newpath) {
  // Inode identity survives rename; lies stay attached automatically.
  return inner()->rename(p, oldpath, newpath);
}

VoidResult FakerootSyscalls::set_xattr(kernel::Process& p,
                                       const std::string& path,
                                       const std::string& name,
                                       const std::string& value) {
  if (!kernel::privileged_xattr_name(name)) {
    return inner()->set_xattr(p, path, name, value);
  }
  auto rc = inner()->set_xattr(p, path, name, value);
  if (rc.ok()) return rc;
  if (!options_.fake_security_xattrs) return rc;  // classic fakeroot: fail
  MINICON_TRY_ASSIGN(loc, inner()->resolve(p, path, /*follow_last=*/true));
  db_->upsert(loc.mnt->fs.get(), loc.ino).xattrs[name] = value;
  return {};
}

Result<std::string> FakerootSyscalls::get_xattr(kernel::Process& p,
                                                const std::string& path,
                                                const std::string& name) {
  if (auto loc = inner()->resolve(p, path, /*follow_last=*/true); loc.ok()) {
    if (const FakeDb::Entry* e = db_->find(loc->mnt->fs.get(), loc->ino)) {
      auto it = e->xattrs.find(name);
      if (it != e->xattrs.end()) return it->second;
    }
  }
  return inner()->get_xattr(p, path, name);
}

VoidResult FakerootSyscalls::remove_xattr(kernel::Process& p,
                                          const std::string& path,
                                          const std::string& name) {
  if (auto loc = inner()->resolve(p, path, /*follow_last=*/true); loc.ok()) {
    if (FakeDb::Entry* e = db_->find(loc->mnt->fs.get(), loc->ino)
                               ? &db_->upsert(loc->mnt->fs.get(), loc->ino)
                               : nullptr) {
      if (e->xattrs.erase(name) > 0) return {};
    }
  }
  return inner()->remove_xattr(p, path, name);
}

// --- faked identity -----------------------------------------------------------

vfs::Uid FakerootSyscalls::getuid(kernel::Process&) { return fake_ruid_; }
vfs::Uid FakerootSyscalls::geteuid(kernel::Process&) { return fake_euid_; }
vfs::Gid FakerootSyscalls::getgid(kernel::Process&) { return fake_rgid_; }
vfs::Gid FakerootSyscalls::getegid(kernel::Process&) { return fake_egid_; }

VoidResult FakerootSyscalls::setuid(kernel::Process&, vfs::Uid uid) {
  fake_ruid_ = fake_euid_ = uid;
  return {};
}

VoidResult FakerootSyscalls::setgid(kernel::Process&, vfs::Gid gid) {
  fake_rgid_ = fake_egid_ = gid;
  return {};
}

VoidResult FakerootSyscalls::setresuid(kernel::Process&, vfs::Uid r,
                                       vfs::Uid e, vfs::Uid s) {
  if (r != vfs::kNoChangeId) fake_ruid_ = r;
  if (e != vfs::kNoChangeId) fake_euid_ = e;
  (void)s;
  return {};
}

VoidResult FakerootSyscalls::setresgid(kernel::Process&, vfs::Gid r,
                                       vfs::Gid e, vfs::Gid s) {
  if (r != vfs::kNoChangeId) fake_rgid_ = r;
  if (e != vfs::kNoChangeId) fake_egid_ = e;
  (void)s;
  return {};
}

VoidResult FakerootSyscalls::seteuid(kernel::Process&, vfs::Uid e) {
  fake_euid_ = e;
  return {};
}

VoidResult FakerootSyscalls::setegid(kernel::Process&, vfs::Gid e) {
  fake_egid_ = e;
  return {};
}

VoidResult FakerootSyscalls::setgroups(kernel::Process&,
                                       const std::vector<vfs::Gid>&) {
  return {};  // faked success: the wrapped process believes it is root
}

}  // namespace minicon::fakeroot
