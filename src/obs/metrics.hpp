// MetricsRegistry: process-wide named counters, gauges, and fixed-bucket
// latency histograms.
//
// The paper's evidence is counted behavior — how many chown(2)s a distro
// build issues, how many fail, how much the fakeroot layer adds (§2.3,
// §6.1-1) — so the registry is built for the syscall hot path: instruments
// are plain atomics, lookup is lock-sharded by name hash, and the pointer
// returned by counter()/gauge()/histogram() is stable for the registry's
// lifetime so callers resolve a name once and then update lock-free.
// Snapshots render to a stable text format (sorted by kind, then name) and
// to JSON, so the `metrics` shell builtin and BENCH_*.json rows show the
// same numbers the subsystem stats structs do.
//
// Naming convention: `subsystem.metric` (e.g. `syscall.calls`,
// `cache.hits`, `chunk.dedup_hits`, `pool.queue_depth`); per-key variants
// append one more segment (`syscall.chown.errors`, `syscall.errno.EPERM`).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace minicon::obs {

// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Instantaneous signed level (queue depth, resident bytes).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Fixed-bucket histogram: bounds are upper edges (value <= bound lands in
// that bucket), with one implicit +inf overflow bucket. The default bounds
// suit microsecond latencies. observe() is wait-free: a linear scan over a
// dozen bounds plus three relaxed atomic adds.
class Histogram {
 public:
  // {1, 2, 5, ...} µs decades up to 10 ms; values above land in +inf.
  static const std::vector<double>& default_latency_bounds_us();

  explicit Histogram(std::vector<double> bounds = {});

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  // size() == bounds().size() + 1; last element is the +inf bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  // An empty histogram has no quantiles; percentile() returns this sentinel
  // (negative, so it can never be confused with a latency) instead of a
  // made-up 0.
  static constexpr double kNoSamples = -1.0;

  // Estimated p-quantile (p in [0,1], e.g. 0.5 / 0.99) by linear
  // interpolation within the covering bucket — the standard fixed-bucket
  // estimate (what the service bench records as p50/p99). Edge cases are
  // pinned: an empty histogram returns kNoSamples, and a quantile landing
  // in the +inf overflow bucket clamps to the last finite bound (read it as
  // "at least this — off the scale").
  double percentile(double p) const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double, CAS-accumulated
};

// Point-in-time copy of every instrument, for rendering and tests.
struct MetricsSnapshot {
  struct HistogramValue {
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
    // Same estimate (and same edge-case sentinels) as
    // Histogram::percentile, over the captured buckets.
    double percentile(double p) const;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramValue> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create; the returned reference is stable for the registry's
  // lifetime, so hot paths resolve once and update without the shard lock.
  // A histogram's bounds are fixed by its first registration.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  MetricsSnapshot snapshot() const;

  // One instrument per line, sorted: `counter <name> <value>`,
  // `gauge <name> <value>`, `histogram <name> count=<n> sum=<s> avg=<a>`.
  std::string text() const;
  std::string json() const;

  // Zeroes every instrument (instruments stay registered; pointers remain
  // valid). Mirrored stats structs are unaffected — reset is a view reset.
  void reset();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
    std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;
    std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;
  };
  static constexpr std::size_t kShards = 16;

  Shard& shard_for(const std::string& name) const;

  mutable std::array<Shard, kShards> shards_;
};

// The process-wide registry. Components take an optional MetricsRegistry*;
// null means this one (mirroring support::shared_pool()).
MetricsRegistry& global_metrics();

}  // namespace minicon::obs
