#include "obs/flightrec.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace minicon::obs {

namespace {

// Epoch shared by every recorder in the process so events from the global
// recorder and a test-local one still sort into one timeline.
std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - process_epoch())
      .count();
}

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

// Thread-local single-entry ring cache. Keyed by the recorder's
// process-unique id (never an address, which could be reused after a test
// recorder dies), so a stale entry can never match a new recorder.
thread_local std::uint64_t tl_owner_id = 0;
thread_local void* tl_ring = nullptr;

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

}  // namespace

std::string_view flight_kind_name(FlightKind k) {
  switch (k) {
    case FlightKind::kSyscallError: return "syscall-error";
    case FlightKind::kFaultInjected: return "fault-injected";
    case FlightKind::kLaunchPhase: return "launch-phase";
    case FlightKind::kNodeDead: return "node-dead";
    case FlightKind::kChunkTransfer: return "chunk-transfer";
    case FlightKind::kRegistryFallback: return "registry-fallback";
    case FlightKind::kGcCycle: return "gc-cycle";
    case FlightKind::kQuotaRejected: return "quota-rejected";
    case FlightKind::kThrottled: return "throttled";
    case FlightKind::kCacheEvict: return "cache-evict";
    case FlightKind::kBuildFailed: return "build-failed";
    case FlightKind::kPrivilegeFaked: return "privilege-faked";
    case FlightKind::kMark: return "mark";
  }
  return "unknown";
}

// One ring slot. Every field is a word-sized atomic: the seqlock generation
// makes cross-field reads consistent, the atomics make each individual read
// well-defined (and TSAN-visible) even when the generation check fails.
struct FlightRecorder::Slot {
  static constexpr std::size_t kDetailWords = kDetailMax / sizeof(std::uint64_t);
  std::atomic<std::uint64_t> gen{0};  // odd while a write is in flight
  std::atomic<std::int64_t> t_us{0};
  std::atomic<std::uint64_t> trace_id{0};
  std::atomic<std::uint64_t> kind_len{0};  // kind << 8 | detail length
  std::atomic<std::int64_t> code{0};
  std::atomic<std::int64_t> node{0};
  std::atomic<std::uint64_t> arg{0};
  std::atomic<std::uint64_t> detail[kDetailWords] = {};
};

struct FlightRecorder::Ring {
  explicit Ring(std::size_t cap) : slots(new Slot[cap]) {}
  int id = 0;  // dense, 1-based; reported as FlightEvent::thread
  std::atomic<std::uint64_t> head{0};
  std::unique_ptr<Slot[]> slots;
};

FlightRecorder::FlightRecorder(std::size_t per_thread_capacity)
    : capacity_(per_thread_capacity == 0 ? 1 : per_thread_capacity),
      id_(next_recorder_id()) {
  (void)process_epoch();  // pin the timeline origin at first construction
}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder::Ring* FlightRecorder::ring_for_thread() {
  if (tl_owner_id == id_) return static_cast<Ring*>(tl_ring);
  std::lock_guard lock(mu_);
  rings_.push_back(std::make_unique<Ring>(capacity_));
  rings_.back()->id = static_cast<int>(rings_.size());
  tl_owner_id = id_;
  tl_ring = rings_.back().get();
  return rings_.back().get();
}

void FlightRecorder::write_slot(FlightKind kind, const char* detail,
                                std::size_t len, std::int32_t code,
                                std::uint64_t arg, std::int32_t node) {
  const TraceContext ctx = current_trace();
  if (node < 0) node = ctx.node;
  Ring* r = ring_for_thread();
  const std::uint64_t head = r->head.load(std::memory_order_relaxed);
  Slot& s = r->slots[head % capacity_];
  const std::uint64_t g = s.gen.load(std::memory_order_relaxed);
  // Seqlock write: mark the slot in flight, publish the fields, mark it
  // stable. The release fence keeps the odd generation visible before any
  // field store; the final release store publishes the fields before the
  // even generation.
  s.gen.store(g + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.t_us.store(now_us(), std::memory_order_relaxed);
  s.trace_id.store(ctx.trace_id, std::memory_order_relaxed);
  s.kind_len.store((static_cast<std::uint64_t>(kind) << 8) | len,
                   std::memory_order_relaxed);
  s.code.store(code, std::memory_order_relaxed);
  s.node.store(node, std::memory_order_relaxed);
  s.arg.store(arg, std::memory_order_relaxed);
  for (std::size_t w = 0; w < Slot::kDetailWords; ++w) {
    std::uint64_t word;
    std::memcpy(&word, detail + w * sizeof(word), sizeof(word));
    s.detail[w].store(word, std::memory_order_relaxed);
  }
  s.gen.store(g + 2, std::memory_order_release);
  r->head.store(head + 1, std::memory_order_release);
}

void FlightRecorder::record(FlightKind kind, std::string_view detail,
                            std::int32_t code, std::uint64_t arg,
                            std::int32_t node) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  char buf[kDetailMax] = {};
  const std::size_t len = std::min(detail.size(), kDetailMax);
  std::memcpy(buf, detail.data(), len);
  write_slot(kind, buf, len, code, arg, node);
}

void FlightRecorder::record_error(FlightKind kind, std::string_view op,
                                  std::string_view err, std::string_view path,
                                  std::int32_t code, std::uint64_t arg,
                                  std::int32_t node) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  // flight_detail()'s layout ("op ERR path-tail", op and errno name whole,
  // path truncated to its suffix) composed straight into the staging buffer
  // the slot copy reads from: the hot error paths pay no allocation.
  char buf[kDetailMax] = {};
  std::size_t len = std::min(op.size(), kDetailMax);
  std::memcpy(buf, op.data(), len);
  if (!err.empty() && len + 1 + err.size() <= kDetailMax) {
    buf[len++] = ' ';
    std::memcpy(buf + len, err.data(), err.size());
    len += err.size();
  }
  if (!path.empty() && len + 2 <= kDetailMax) {
    const std::size_t room = kDetailMax - len - 1;
    buf[len++] = ' ';
    const std::string_view tail =
        path.size() > room ? path.substr(path.size() - room) : path;
    std::memcpy(buf + len, tail.data(), tail.size());
    len += tail.size();
  }
  write_slot(kind, buf, len, code, arg, node);
}

void FlightRecorder::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

std::size_t FlightRecorder::threads_seen() const {
  std::lock_guard lock(mu_);
  return rings_.size();
}

std::uint64_t FlightRecorder::events_recorded() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& r : rings_) total += r->head.load(std::memory_order_acquire);
  return total;
}

std::uint64_t FlightRecorder::events_dropped() const {
  std::lock_guard lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& r : rings_) {
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    if (head > capacity_) dropped += head - capacity_;
  }
  return dropped;
}

std::vector<FlightEvent> FlightRecorder::dump(std::uint64_t trace_filter) const {
  std::vector<Ring*> rings;
  {
    std::lock_guard lock(mu_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) rings.push_back(r.get());
  }
  std::vector<FlightEvent> out;
  for (Ring* r : rings) {
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    const std::uint64_t lo = head > capacity_ ? head - capacity_ : 0;
    for (std::uint64_t seq = lo; seq < head; ++seq) {
      const Slot& s = r->slots[seq % capacity_];
      const std::uint64_t g1 = s.gen.load(std::memory_order_acquire);
      if (g1 & 1) continue;  // write in flight
      FlightEvent ev;
      ev.t_us = s.t_us.load(std::memory_order_relaxed);
      ev.trace_id = s.trace_id.load(std::memory_order_relaxed);
      const std::uint64_t kl = s.kind_len.load(std::memory_order_relaxed);
      ev.kind = static_cast<FlightKind>(kl >> 8);
      const std::size_t len = std::min<std::size_t>(kl & 0xff, kDetailMax);
      ev.code = static_cast<std::int32_t>(
          s.code.load(std::memory_order_relaxed));
      ev.node = static_cast<std::int32_t>(
          s.node.load(std::memory_order_relaxed));
      ev.arg = s.arg.load(std::memory_order_relaxed);
      char buf[kDetailMax];
      for (std::size_t w = 0; w < Slot::kDetailWords; ++w) {
        const std::uint64_t word = s.detail[w].load(std::memory_order_relaxed);
        std::memcpy(buf + w * sizeof(word), &word, sizeof(word));
      }
      // The acquire fence keeps the field loads above from drifting past the
      // generation re-check; a mismatch means a writer lapped us mid-read —
      // the torn slot is discarded, never blocked on.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.gen.load(std::memory_order_relaxed) != g1) continue;
      ev.detail.assign(buf, len);
      ev.thread = r->id;
      ev.seq = seq;
      if (trace_filter != 0 && ev.trace_id != trace_filter) continue;
      out.push_back(std::move(ev));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              if (a.t_us != b.t_us) return a.t_us < b.t_us;
              if (a.thread != b.thread) return a.thread < b.thread;
              return a.seq < b.seq;
            });
  return out;
}

std::string FlightRecorder::dump_text(std::uint64_t trace_filter) const {
  const auto events = dump(trace_filter);
  std::string out = "flight recorder: " + std::to_string(events.size()) +
                    " events (" + std::to_string(events_dropped()) +
                    " dropped) across " + std::to_string(threads_seen()) +
                    " threads\n";
  for (const FlightEvent& ev : events) {
    char line[160];
    std::snprintf(line, sizeof(line), "  +%08lldus thr%d trace=%s node=%s ",
                  static_cast<long long>(ev.t_us), ev.thread,
                  ev.trace_id != 0 ? hex16(ev.trace_id).c_str() : "-",
                  ev.node >= 0 ? std::to_string(ev.node).c_str() : "-");
    out += line;
    out += flight_kind_name(ev.kind);
    if (ev.code != 0) out += " code=" + std::to_string(ev.code);
    if (ev.arg != 0) out += " arg=" + std::to_string(ev.arg);
    if (!ev.detail.empty()) out += " \"" + ev.detail + "\"";
    out += "\n";
  }
  return out;
}

void FlightRecorder::clear() {
  std::lock_guard lock(mu_);
  for (const auto& r : rings_) r->head.store(0, std::memory_order_release);
}

FlightRecorder& global_flight_recorder() {
  static FlightRecorder recorder;
  return recorder;
}

std::string flight_detail(std::string_view op, std::string_view err,
                          std::string_view path) {
  std::string d(op);
  if (!err.empty()) {
    d += ' ';
    d += err;
  }
  if (!path.empty() && d.size() + 2 <= FlightRecorder::kDetailMax) {
    const std::size_t room = FlightRecorder::kDetailMax - d.size() - 1;
    d += ' ';
    d += path.size() > room ? path.substr(path.size() - room) : path;
  }
  return d;
}

}  // namespace minicon::obs
