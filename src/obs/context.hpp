// TraceContext: the cluster-wide identity of one logical operation (a
// parallel launch, a build, a service request), carried across thread and
// node boundaries so every span and flight-recorder event it touches can be
// stitched back into one timeline.
//
// PR 4's Tracer deliberately threads span parents explicitly because pooled
// stages migrate across workers. The context here is different: it is set
// *inside* each pool-task body (Cluster's fan-outs install a TraceScope as
// the first thing a node job does), so a thread-local is safe — the value
// never has to survive a migration, it is re-established on whichever
// worker picked the job up. That keeps deep instrumentation points
// (ObserveSyscalls, FaultInjectSyscalls, cache eviction) free to stamp
// events with the current trace id without widening every syscall
// signature.
#pragma once

#include <cstdint>
#include <string>

#include "obs/trace.hpp"

namespace minicon::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;  // 0 = no context
  SpanId parent_span = kNoSpan;
  int node = -1;  // cluster node lane; -1 = login node / unscoped

  bool active() const { return trace_id != 0; }
  // A new process-unique nonzero id (mixed counter, not a clock, so two
  // launches in the same microsecond still differ).
  static TraceContext fresh();
  // 16 lowercase hex digits of trace_id — the form spans and dumps print.
  std::string hex() const;
};

// RAII: installs `ctx` as the calling thread's current context, restoring
// the previous one on destruction (scopes nest; a service request inside a
// launch keeps the launch's id unless given its own).
class TraceScope {
 public:
  explicit TraceScope(const TraceContext& ctx);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext prev_;
};

// The calling thread's current context ({0, kNoSpan, -1} when none is in
// scope).
TraceContext current_trace();

}  // namespace minicon::obs
