#include "obs/context.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace minicon::obs {

namespace {

thread_local TraceContext tl_current;

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer — the same mixer the swarm's rendezvous hashing
  // uses; full-period over the counter, so ids never collide in-process.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

TraceContext TraceContext::fresh() {
  static std::atomic<std::uint64_t> counter{0};
  static const std::uint64_t boot = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  TraceContext ctx;
  do {
    ctx.trace_id =
        mix64(boot ^ counter.fetch_add(1, std::memory_order_relaxed));
  } while (ctx.trace_id == 0);
  return ctx;
}

std::string TraceContext::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return std::string(buf);
}

TraceScope::TraceScope(const TraceContext& ctx) : prev_(tl_current) {
  tl_current = ctx;
}

TraceScope::~TraceScope() { tl_current = prev_; }

TraceContext current_trace() { return tl_current; }

}  // namespace minicon::obs
