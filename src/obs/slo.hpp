// SloWindow: rolling-window latency quantiles and burn rate.
//
// The cumulative histograms in MetricsRegistry answer "what has this
// process ever seen"; an operator watching the registry service needs
// "what is the pull p99 *right now*, and how fast am I spending my error
// budget". SloWindow keeps a ring of fixed-duration time slices, each a
// fixed-bucket histogram plus a count of threshold breaches; report()
// aggregates the slices still inside the window, so quantiles and breach
// fractions decay as traffic ages out instead of being diluted forever by
// history.
//
// Burn rate is the standard SRE reading: breach_fraction / error_budget,
// where error_budget = 1 - objective. burn_rate 1.0 means the service is
// consuming its budget exactly as fast as the objective allows; above 1.0
// it is on course to miss the SLO.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace minicon::obs {

class SloWindow {
 public:
  using Clock = std::function<std::chrono::steady_clock::time_point()>;

  struct Options {
    // Window = slices × slice_width; defaults to 12 × 5 s = one minute.
    std::chrono::milliseconds slice_width{5000};
    int slices = 12;
    // Histogram bucket upper edges (µs); empty = the registry's default
    // latency decades.
    std::vector<double> bounds;
    // SLO: `objective` of observations must land at or under
    // `threshold_us`. threshold_us <= 0 disables breach accounting.
    double threshold_us = 0;
    double objective = 0.99;
    // Injectable time source for deterministic tests; null = steady_clock.
    Clock clock;
  };

  SloWindow() : SloWindow(Options{}) {}
  explicit SloWindow(Options options);

  void observe(double v_us);

  struct Report {
    std::uint64_t count = 0;
    std::uint64_t breaches = 0;
    double p50 = -1.0;  // -1 when the window holds no samples
    double p90 = -1.0;
    double p99 = -1.0;
    double breach_fraction = 0.0;
    double burn_rate = 0.0;
    double threshold_us = 0.0;
    double window_s = 0.0;
  };
  Report report() const;

  // Forgets everything (the slices stay allocated).
  void reset();

 private:
  struct Slice {
    std::int64_t index = -1;  // absolute slice number; -1 = empty
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    std::uint64_t breaches = 0;
  };

  std::int64_t slice_index_now() const;
  Slice& slice_at(std::int64_t index);  // mu_ held; rotates stale slots

  Options options_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Slice> slices_;
};

}  // namespace minicon::obs
