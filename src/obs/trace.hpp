// Tracer: hierarchical spans over the build pipeline, exportable as Chrome
// trace_event JSON (load in Perfetto / about:tracing) or a plain-text tree.
//
// A span is one timed region with a name, a parent, the thread that ran it,
// and key/value attributes: `build → stage → instruction → syscall-batch`
// for a builder run, plus `cache.lookup`, `chunk.put`, and `pool.task`
// leaves from the subsystems underneath. Parents are threaded explicitly
// (not via thread-local state) because the stage scheduler migrates work
// across pool workers — a stage span begun on the caller's thread ends on
// whichever worker ran the stage.
//
// Timestamps are microseconds on std::chrono::steady_clock, relative to the
// tracer's construction, so exports are monotonic and diffable.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace minicon::obs {

// 0 means "no span"; real ids start at 1 and are dense.
using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

struct SpanRecord {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string name;
  int tid = 0;             // small dense id per observed thread, 1-based
  std::int64_t start_us = 0;
  std::int64_t end_us = -1;  // -1 while the span is open
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  SpanId begin(const std::string& name, SpanId parent = kNoSpan);
  void end(SpanId id);
  void annotate(SpanId id, const std::string& key, const std::string& value);

  std::vector<SpanRecord> spans() const;  // snapshot, in id order
  std::size_t span_count() const;
  std::int64_t now_us() const;  // µs since tracer construction
  void clear();

  // {"traceEvents":[...]} with one complete ("ph":"X") event per span.
  // Open spans are clamped to the export instant so the file always loads.
  std::string chrome_trace_json() const;

  // The merged multi-node view of a cluster launch: same events as
  // chrome_trace_json, but each span is assigned a *process lane* from its
  // "node" attribute (inherited down the span tree when a child lacks one),
  // with process_name metadata so Perfetto shows "login" and "node N" rows
  // side by side instead of one interleaved thread soup. Spans with no node
  // anywhere up their chain land in the "login" lane.
  std::string cluster_trace_json() const;

  // Indented tree, children ordered by (start_us, id):
  //   build (1234 us) tag=hello builder=ch-image
  //     stage (801 us) index=0 ...
  std::string span_tree() const;

 private:
  int tid_locked();  // dense id for the calling thread; mu_ must be held

  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;  // spans_[id - 1]
  std::map<std::thread::id, int> tids_;
  std::chrono::steady_clock::time_point epoch_;
};

using TracerPtr = std::shared_ptr<Tracer>;

// RAII span. Inert when the tracer is null, so instrumentation sites need
// no branching: `obs::Span span(tracer_.get(), "chunk.put", parent);`.
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, const std::string& name, SpanId parent = kNoSpan)
      : tracer_(tracer) {
    if (tracer_ != nullptr) id_ = tracer_->begin(name, parent);
  }
  ~Span() { end(); }

  Span(Span&& other) noexcept
      : tracer_(other.tracer_), id_(other.id_) {
    other.tracer_ = nullptr;
    other.id_ = kNoSpan;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      end();
      tracer_ = other.tracer_;
      id_ = other.id_;
      other.tracer_ = nullptr;
      other.id_ = kNoSpan;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  SpanId id() const { return id_; }
  void annotate(const std::string& key, const std::string& value) {
    if (tracer_ != nullptr && id_ != kNoSpan) tracer_->annotate(id_, key, value);
  }
  void end() {
    if (tracer_ != nullptr && id_ != kNoSpan) tracer_->end(id_);
    tracer_ = nullptr;
    id_ = kNoSpan;
  }

 private:
  Tracer* tracer_ = nullptr;
  SpanId id_ = kNoSpan;
};

}  // namespace minicon::obs
