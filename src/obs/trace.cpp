#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace minicon::obs {

namespace {

void json_escape(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

std::int64_t Tracer::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int Tracer::tid_locked() {
  const auto me = std::this_thread::get_id();
  auto it = tids_.find(me);
  if (it != tids_.end()) return it->second;
  const int id = static_cast<int>(tids_.size()) + 1;
  tids_.emplace(me, id);
  return id;
}

SpanId Tracer::begin(const std::string& name, SpanId parent) {
  const std::int64_t t = now_us();
  std::lock_guard lock(mu_);
  SpanRecord rec;
  rec.id = spans_.size() + 1;
  rec.parent = parent;
  rec.name = name;
  rec.tid = tid_locked();
  rec.start_us = t;
  spans_.push_back(std::move(rec));
  return spans_.back().id;
}

void Tracer::end(SpanId id) {
  const std::int64_t t = now_us();
  std::lock_guard lock(mu_);
  if (id == kNoSpan || id > spans_.size()) return;
  SpanRecord& rec = spans_[id - 1];
  if (rec.end_us < 0) {
    // The ending thread is the one that ran the work; attribute it there
    // (a stage span begins on the caller and ends on a pool worker).
    rec.tid = tid_locked();
    rec.end_us = std::max(t, rec.start_us);
  }
}

void Tracer::annotate(SpanId id, const std::string& key,
                      const std::string& value) {
  std::lock_guard lock(mu_);
  if (id == kNoSpan || id > spans_.size()) return;
  spans_[id - 1].attrs.emplace_back(key, value);
}

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard lock(mu_);
  return spans_;
}

std::size_t Tracer::span_count() const {
  std::lock_guard lock(mu_);
  return spans_.size();
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  spans_.clear();
}

std::string Tracer::chrome_trace_json() const {
  const std::int64_t now = now_us();
  const auto snap = spans();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : snap) {
    if (!first) out += ",";
    first = false;
    const std::int64_t end = s.end_us < 0 ? now : s.end_us;
    out += "{\"name\":\"";
    json_escape(out, s.name);
    out += "\",\"cat\":\"minicon\",\"ph\":\"X\",\"ts\":" +
           std::to_string(s.start_us) +
           ",\"dur\":" + std::to_string(std::max<std::int64_t>(end - s.start_us, 0)) +
           ",\"pid\":1,\"tid\":" + std::to_string(s.tid) + ",\"args\":{";
    out += "\"span_id\":" + std::to_string(s.id) +
           ",\"parent_id\":" + std::to_string(s.parent);
    for (const auto& [k, v] : s.attrs) {
      out += ",\"";
      json_escape(out, k);
      out += "\":\"";
      json_escape(out, v);
      out += "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string Tracer::cluster_trace_json() const {
  const std::int64_t now = now_us();
  const auto snap = spans();
  // Lane per span: its own "node" attr, else the nearest ancestor's. Spans
  // are id-ordered and parents always precede children, so one forward pass
  // resolves the whole forest. Lane -1 = login; node n = lane n.
  std::vector<int> lane(snap.size() + 1, -1);
  for (const SpanRecord& s : snap) {
    int l = s.parent != kNoSpan && s.parent <= snap.size()
                ? lane[s.parent]
                : -1;
    for (const auto& [k, v] : s.attrs) {
      if (k == "node") {
        l = std::atoi(v.c_str());
        break;
      }
    }
    lane[s.id] = l;
  }
  // Chrome pids must be positive: login = 1, node n = n + 2.
  const auto pid_of = [](int l) { return l < 0 ? 1 : l + 2; };
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  std::vector<char> named;
  for (const SpanRecord& s : snap) {
    const int pid = pid_of(lane[s.id]);
    if (static_cast<std::size_t>(pid) >= named.size()) {
      named.resize(static_cast<std::size_t>(pid) + 1, 0);
    }
    if (!named[static_cast<std::size_t>(pid)]) {
      named[static_cast<std::size_t>(pid)] = 1;
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
             std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
             (lane[s.id] < 0 ? std::string("login")
                             : "node " + std::to_string(lane[s.id])) +
             "\"}}";
    }
    if (!first) out += ",";
    first = false;
    const std::int64_t end = s.end_us < 0 ? now : s.end_us;
    out += "{\"name\":\"";
    json_escape(out, s.name);
    out += "\",\"cat\":\"minicon\",\"ph\":\"X\",\"ts\":" +
           std::to_string(s.start_us) +
           ",\"dur\":" + std::to_string(std::max<std::int64_t>(end - s.start_us, 0)) +
           ",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(s.tid) + ",\"args\":{";
    out += "\"span_id\":" + std::to_string(s.id) +
           ",\"parent_id\":" + std::to_string(s.parent);
    for (const auto& [k, v] : s.attrs) {
      out += ",\"";
      json_escape(out, k);
      out += "\":\"";
      json_escape(out, v);
      out += "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string Tracer::span_tree() const {
  const std::int64_t now = now_us();
  const auto snap = spans();
  // children[parent] in (start_us, id) order; parent 0 collects the roots.
  std::map<SpanId, std::vector<const SpanRecord*>> children;
  for (const SpanRecord& s : snap) {
    // A dangling parent id (span cleared, or foreign tracer) roots the span.
    const SpanId parent = s.parent <= snap.size() ? s.parent : kNoSpan;
    children[parent].push_back(&s);
  }
  for (auto& [parent, kids] : children) {
    std::sort(kids.begin(), kids.end(),
              [](const SpanRecord* a, const SpanRecord* b) {
                if (a->start_us != b->start_us) return a->start_us < b->start_us;
                return a->id < b->id;
              });
  }
  std::string out;
  // Depth-first from the roots, iterative to keep deep traces safe.
  std::vector<std::pair<const SpanRecord*, int>> stack;
  const auto push_children = [&](SpanId id, int depth) {
    auto it = children.find(id);
    if (it == children.end()) return;
    for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
      stack.emplace_back(*rit, depth);
    }
  };
  push_children(kNoSpan, 0);
  while (!stack.empty()) {
    const auto [s, depth] = stack.back();
    stack.pop_back();
    const std::int64_t end = s->end_us < 0 ? now : s->end_us;
    out += std::string(static_cast<std::size_t>(depth) * 2, ' ');
    out += s->name + " (" + std::to_string(std::max<std::int64_t>(end - s->start_us, 0)) +
           " us)";
    for (const auto& [k, v] : s->attrs) out += " " + k + "=" + v;
    out += "\n";
    push_children(s->id, depth + 1);
  }
  return out;
}

}  // namespace minicon::obs
