#include "obs/slo.hpp"

#include "obs/metrics.hpp"

namespace minicon::obs {

SloWindow::SloWindow(Options options) : options_(std::move(options)) {
  if (options_.slices < 1) options_.slices = 1;
  if (options_.slice_width.count() <= 0) {
    options_.slice_width = std::chrono::milliseconds(1);
  }
  if (options_.bounds.empty()) {
    options_.bounds = Histogram::default_latency_bounds_us();
  }
  if (options_.objective >= 1.0) options_.objective = 0.999999;
  if (options_.objective < 0.0) options_.objective = 0.0;
  epoch_ = options_.clock ? options_.clock() : std::chrono::steady_clock::now();
  slices_.resize(static_cast<std::size_t>(options_.slices));
  for (Slice& s : slices_) s.buckets.assign(options_.bounds.size() + 1, 0);
}

std::int64_t SloWindow::slice_index_now() const {
  const auto now =
      options_.clock ? options_.clock() : std::chrono::steady_clock::now();
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - epoch_);
  return elapsed.count() / options_.slice_width.count();
}

SloWindow::Slice& SloWindow::slice_at(std::int64_t index) {
  Slice& s = slices_[static_cast<std::size_t>(
      index % static_cast<std::int64_t>(slices_.size()))];
  if (s.index != index) {
    // This slot last held a slice a full window ago; recycle it.
    s.index = index;
    s.count = 0;
    s.breaches = 0;
    std::fill(s.buckets.begin(), s.buckets.end(), 0);
  }
  return s;
}

void SloWindow::observe(double v_us) {
  std::lock_guard lock(mu_);
  Slice& s = slice_at(slice_index_now());
  std::size_t i = 0;
  while (i < options_.bounds.size() && v_us > options_.bounds[i]) ++i;
  ++s.buckets[i];
  ++s.count;
  if (options_.threshold_us > 0 && v_us > options_.threshold_us) ++s.breaches;
}

SloWindow::Report SloWindow::report() const {
  Report rep;
  rep.threshold_us = options_.threshold_us;
  rep.window_s = static_cast<double>(options_.slice_width.count()) *
                 static_cast<double>(options_.slices) / 1000.0;
  MetricsSnapshot::HistogramValue agg;
  agg.bounds = options_.bounds;
  agg.buckets.assign(options_.bounds.size() + 1, 0);
  {
    std::lock_guard lock(mu_);
    const std::int64_t now_index = slice_index_now();
    const std::int64_t oldest =
        now_index - static_cast<std::int64_t>(slices_.size()) + 1;
    for (const Slice& s : slices_) {
      if (s.index < oldest || s.index > now_index) continue;  // aged out
      rep.count += s.count;
      rep.breaches += s.breaches;
      for (std::size_t i = 0; i < agg.buckets.size(); ++i) {
        agg.buckets[i] += s.buckets[i];
      }
    }
  }
  agg.count = rep.count;
  if (rep.count > 0) {
    rep.p50 = agg.percentile(0.50);
    rep.p90 = agg.percentile(0.90);
    rep.p99 = agg.percentile(0.99);
    rep.breach_fraction =
        static_cast<double>(rep.breaches) / static_cast<double>(rep.count);
    const double budget = 1.0 - options_.objective;
    rep.burn_rate = budget > 0 ? rep.breach_fraction / budget : 0.0;
  }
  return rep;
}

void SloWindow::reset() {
  std::lock_guard lock(mu_);
  for (Slice& s : slices_) {
    s.index = -1;
    s.count = 0;
    s.breaches = 0;
    std::fill(s.buckets.begin(), s.buckets.end(), 0);
  }
}

}  // namespace minicon::obs
