#include "obs/metrics.hpp"

#include <bit>
#include <cstdio>
#include <functional>
#include <sstream>

namespace minicon::obs {

namespace {

// Fixed-point-free double rendering that is stable across libc locales:
// integral values print without a fraction, others with up to 3 decimals.
std::string render_double(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << v;
  return os.str();
}

void json_escape(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Shared fixed-bucket quantile estimate: find the bucket holding the p-th
// observation, interpolate linearly between its bounds. Edge cases return
// defined sentinels, never interpolation garbage: no samples (or no
// buckets) -> Histogram::kNoSamples; a quantile landing in the +inf
// overflow bucket clamps to the last finite bound ("at least this — off
// the scale").
double bucket_percentile(const std::vector<double>& bounds,
                         const std::vector<std::uint64_t>& buckets,
                         std::uint64_t count, double p) {
  if (count == 0 || buckets.empty() || bounds.empty()) {
    return Histogram::kNoSamples;
  }
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const double target = p * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (cumulative + in_bucket >= target && in_bucket > 0) {
      if (i >= bounds.size()) return bounds.back();  // overflow clamp
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double frac = (target - cumulative) / in_bucket;
      return lo + (hi - lo) * frac;
    }
    cumulative += in_bucket;
  }
  return bounds.back();
}

}  // namespace

const std::vector<double>& Histogram::default_latency_bounds_us() {
  static const std::vector<double> bounds = {1,    2,    5,    10,   20,
                                             50,   100,  200,  500,  1000,
                                             2000, 5000, 10000};
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(bounds.empty() ? default_latency_bounds_us()
                             : std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Doubles have no wait-free fetch_add everywhere; CAS-accumulate the sum.
  std::uint64_t old_bits = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const double next = std::bit_cast<double>(old_bits) + v;
    if (sum_bits_.compare_exchange_weak(old_bits, std::bit_cast<std::uint64_t>(next),
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::percentile(double p) const {
  return bucket_percentile(bounds_, bucket_counts(),
                           count_.load(std::memory_order_relaxed), p);
}

double MetricsSnapshot::HistogramValue::percentile(double p) const {
  return bucket_percentile(bounds, buckets, count, p);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

MetricsRegistry::Shard& MetricsRegistry::shard_for(
    const std::string& name) const {
  return shards_[std::hash<std::string>{}(name) % kShards];
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Shard& s = shard_for(name);
  std::lock_guard lock(s.mu);
  auto& slot = s.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Shard& s = shard_for(name);
  std::lock_guard lock(s.mu);
  auto& slot = s.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  Shard& s = shard_for(name);
  std::lock_guard lock(s.mu);
  auto& slot = s.histograms[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const Shard& s : shards_) {
    std::lock_guard lock(s.mu);
    for (const auto& [name, c] : s.counters) snap.counters[name] = c->value();
    for (const auto& [name, g] : s.gauges) snap.gauges[name] = g->value();
    for (const auto& [name, h] : s.histograms) {
      MetricsSnapshot::HistogramValue v;
      v.bounds = h->bounds();
      v.buckets = h->bucket_counts();
      v.count = h->count();
      v.sum = h->sum();
      snap.histograms[name] = std::move(v);
    }
  }
  return snap;
}

std::string MetricsRegistry::text() const {
  const MetricsSnapshot snap = snapshot();
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    out += "counter " + name + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    out += "gauge " + name + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const double avg = h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count);
    out += "histogram " + name + " count=" + std::to_string(h.count) +
           " sum=" + render_double(h.sum) + " avg=" + render_double(avg) + "\n";
  }
  return out;
}

std::string MetricsRegistry::json() const {
  const MetricsSnapshot snap = snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    json_escape(out, name);
    out += "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    json_escape(out, name);
    out += "\":" + std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    json_escape(out, name);
    out += "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + render_double(h.sum) + ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ",";
      out += render_double(h.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(h.buckets[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::reset() {
  for (Shard& s : shards_) {
    std::lock_guard lock(s.mu);
    for (auto& [name, c] : s.counters) c->reset();
    for (auto& [name, g] : s.gauges) g->reset();
    for (auto& [name, h] : s.histograms) h->reset();
  }
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace minicon::obs
