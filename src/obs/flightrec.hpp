// FlightRecorder: always-on forensic ring buffers.
//
// When a distributed launch fails, the interesting evidence — the injected
// ENOSPC on node 1's seed receipt, the registry fallback it forced on its
// peers, the GC cycle that raced the push — is scattered across threads and
// long gone from any log. The recorder keeps the last N *notable* events
// per thread (syscall errors, injected faults, quota rejections, chunk
// rerouting, cache evictions, GC marks) in fixed-size rings so a failure
// can always be explained after the fact, at a steady-state cost of one
// relaxed load on the no-event path and a handful of relaxed stores per
// recorded event.
//
// Concurrency model: each thread owns one single-writer ring (acquired once
// through a thread-local cache; a mutex is taken only on first contact).
// Slots are composed entirely of word-sized atomics bracketed by a per-slot
// generation counter (odd while a write is in flight, even when stable), and
// the ring head publishes with release order — dump() runs concurrently
// with writers, discarding any slot whose generation changed mid-read
// rather than blocking anyone. No locks on the record path, no torn reads,
// nothing for TSAN to object to.
//
// Events carry the recording thread's obs::current_trace() id, so a dump
// filtered by one launch's trace id is exactly that launch's post-mortem,
// merged across threads in time order.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/context.hpp"

namespace minicon::obs {

enum class FlightKind : std::uint8_t {
  kSyscallError = 0,   // organic errno from ObserveSyscalls
  kFaultInjected,      // FaultInjectSyscalls fired
  kLaunchPhase,        // cluster launch phase boundary
  kNodeDead,           // swarm marked a node failed
  kChunkTransfer,      // swarm seed/exchange phase summary for one node
  kRegistryFallback,   // exchange rerouted a dead seeder's shard
  kGcCycle,            // service GC cycle completed
  kQuotaRejected,      // service push rejected at admission (ENOSPC)
  kThrottled,          // service pull rejected by token bucket / inflight cap
  kCacheEvict,         // build cache evicted an entry
  kBuildFailed,        // builder run ended with nonzero status
  kPrivilegeFaked,     // ZeroConsistencySyscalls faked a privileged op
  kMark,               // free-form caller annotation
};

// Stable lowercase name ("syscall-error", "fault-injected", ...).
std::string_view flight_kind_name(FlightKind k);

// One decoded event, as returned by dump().
struct FlightEvent {
  std::int64_t t_us = 0;        // µs since recorder construction
  std::uint64_t trace_id = 0;   // obs::current_trace() at record time
  FlightKind kind = FlightKind::kMark;
  std::int32_t code = 0;        // errno value / kind-specific code
  std::int32_t node = -1;       // cluster node, -1 when not node-scoped
  std::uint64_t arg = 0;        // kind-specific magnitude (bytes, count)
  int thread = 0;               // dense per-ring id, 1-based
  std::uint64_t seq = 0;        // per-thread sequence number
  std::string detail;           // short text, e.g. "write ENOSPC ~/.swarm/seed"
};

class FlightRecorder {
 public:
  // Longest detail text a slot stores; longer strings are truncated (record
  // sites shorten long paths to their tail before formatting).
  static constexpr std::size_t kDetailMax = 48;

  explicit FlightRecorder(std::size_t per_thread_capacity = 256);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  // Record one event on the calling thread's ring, stamped with
  // obs::current_trace(). `node` < 0 takes the current context's node.
  // No-op when disabled.
  void record(FlightKind kind, std::string_view detail, std::int32_t code = 0,
              std::uint64_t arg = 0, std::int32_t node = -1);

  // record() with the detail formatted as flight_detail(op, err, path)
  // directly into the slot's stack staging buffer — no std::string, no
  // allocation. For hot error paths (ObserveSyscalls notes every organic
  // errno through here).
  void record_error(FlightKind kind, std::string_view op, std::string_view err,
                    std::string_view path, std::int32_t code = 0,
                    std::uint64_t arg = 0, std::int32_t node = -1);

  // The cheap global off-switch (recorder-off benchmark column, tests that
  // want a quiet global ring). Enabled by default: the recorder's whole
  // point is to already be on when the failure happens.
  void set_enabled(bool on);
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  std::size_t capacity_per_thread() const { return capacity_; }
  std::size_t threads_seen() const;
  // Total events ever recorded / overwritten by ring wrap-around.
  std::uint64_t events_recorded() const;
  std::uint64_t events_dropped() const;

  // Merged snapshot of every ring's surviving events in time order
  // (ties broken by thread then sequence). trace_filter != 0 keeps only
  // that trace's events. Safe concurrently with writers.
  std::vector<FlightEvent> dump(std::uint64_t trace_filter = 0) const;

  // Human-readable post-mortem: a summary line followed by one line per
  // event, causally ordered:
  //   flight recorder: 5 events (0 dropped) across 3 threads
  //     +001234us thr2 trace=9f3c... node=1 fault-injected code=28
  //         "write ENOSPC /home/alice/.swarm/seed"
  std::string dump_text(std::uint64_t trace_filter = 0) const;

  // Empties every ring (drop counters reset too). Not meant to race
  // writers; tests call it between scenarios.
  void clear();

 private:
  struct Slot;
  struct Ring;

  Ring* ring_for_thread();
  // The seqlock slot write itself. `detail` must point at a kDetailMax-byte
  // buffer, zero-padded past `len` (both public record paths stage into one
  // on the stack, so the slot copy happens exactly once).
  void write_slot(FlightKind kind, const char* detail, std::size_t len,
                  std::int32_t code, std::uint64_t arg, std::int32_t node);

  const std::size_t capacity_;
  const std::uint64_t id_;  // process-unique, for the thread-local cache
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;  // guards rings_ growth only
  std::vector<std::unique_ptr<Ring>> rings_;
};

// The process-wide recorder (per-thread capacity 256). Components take an
// optional FlightRecorder*; null means this one.
FlightRecorder& global_flight_recorder();

// "op ERR path" squeezed into kDetailMax bytes. The op and errno name are
// kept whole and the *tail* of the path survives truncation — a path
// identifies by suffix ("...alice/.swarm/seed"), not prefix.
std::string flight_detail(std::string_view op, std::string_view err,
                          std::string_view path);

}  // namespace minicon::obs
