// ZeroConsistencySyscalls: stateless root emulation (Priedhorsky et al.
// 2024, "Zero-consistency root emulation for unprivileged container image
// build").
//
// Where fakeroot tells *consistent* lies — every faked chown lands in a
// FakeDb and is replayed on stat readback, at a per-syscall cost on the hot
// stat path — this layer models the sequel paper's seccomp filter: privileged
// operations are intercepted and reported successful *without executing and
// without recording anything*. There is no database, no uid/gid rewrite on
// readback, no identity faking; the emulator keeps zero state. The bet,
// validated by the paper's corpus study, is that distro package builds
// almost never read back the results of privileged syscalls, so the lies
// never need to be consistent.
//
// Consequences (all deliberate, all observable):
//   * chown(2) "succeeds" on any path — even one that does not exist. The
//     filter fires on the syscall number alone, like a seccomp-BPF program
//     that never sees user memory.
//   * chmod(2) with setuid/setgid bits "succeeds" but changes *nothing*,
//     not even the unprivileged permission bits; a later stat sees the old
//     mode. (Plain chmod passes through untouched.)
//   * mknod(2) of a device "succeeds" and creates nothing; a later stat
//     gets ENOENT. (Fifos and regular files pass through.)
//   * set*id(2)/setgroups(2) "succeed" and change no credentials; a later
//     geteuid() is organic. (Builders run this layer inside a Type III
//     container whose single map already shows uid 0, so identity *reads*
//     need no faking at all.)
//   * security.*/trusted.* xattr writes "succeed" and store nothing; a
//     later getxattr is ENODATA.
//
// Because the interception is kernel-attached rather than LD_PRELOAD, it
// wraps statically-linked binaries too (wraps_statically_linked() == true) —
// the one structural advantage over classic fakeroot, shared with ptrace.
//
// Accounting: every faked op bumps `syscall.zeroconsistency.faked` plus the
// per-category `syscall.zeroconsistency.<op>.faked` counter, lands in the
// flight recorder as a `privilege-faked` event, and increments the shared
// ZeroConsistencyStats sink so builders can report per-build deltas and
// warn about the readback-divergent categories.
#pragma once

#include <atomic>
#include <memory>

#include "kernel/syscall_filter.hpp"
#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"

namespace minicon::kernel {

// Shared sink for faked-op counts, one atomic per category (the same idiom
// as SyscallStats: builders keep the pointer and diff totals() snapshots
// around each RUN).
struct ZeroConsistencyStats {
  std::atomic<std::uint64_t> chown{0};
  std::atomic<std::uint64_t> chmod_setid{0};
  std::atomic<std::uint64_t> mknod_dev{0};
  std::atomic<std::uint64_t> setid{0};
  std::atomic<std::uint64_t> xattr{0};

  struct Totals {
    std::uint64_t chown = 0;
    std::uint64_t chmod_setid = 0;
    std::uint64_t mknod_dev = 0;
    std::uint64_t setid = 0;
    std::uint64_t xattr = 0;
    std::uint64_t total() const {
      return chown + chmod_setid + mknod_dev + setid + xattr;
    }
    // Categories whose faked success a later organic read can contradict
    // (stat sees real ownership/mode, a device node is missing, getxattr is
    // ENODATA). setid is excluded: inside the Type III map identity reads
    // are already root, so there is nothing to diverge.
    std::uint64_t readback_divergent() const {
      return chown + chmod_setid + mknod_dev + xattr;
    }
  };
  Totals totals() const {
    Totals t;
    t.chown = chown.load(std::memory_order_relaxed);
    t.chmod_setid = chmod_setid.load(std::memory_order_relaxed);
    t.mknod_dev = mknod_dev.load(std::memory_order_relaxed);
    t.setid = setid.load(std::memory_order_relaxed);
    t.xattr = xattr.load(std::memory_order_relaxed);
    return t;
  }
};
using ZeroConsistencyStatsPtr = std::shared_ptr<ZeroConsistencyStats>;

class ZeroConsistencySyscalls : public SyscallFilter {
 public:
  // null stats = private sink; null metrics = obs::global_metrics(); null
  // recorder = obs::global_flight_recorder(). Counters are pre-registered
  // so the fake path touches only relaxed atomics plus one ring write.
  explicit ZeroConsistencySyscalls(std::shared_ptr<Syscalls> inner,
                                   ZeroConsistencyStatsPtr stats = nullptr,
                                   obs::MetricsRegistry* metrics = nullptr,
                                   obs::FlightRecorder* recorder = nullptr);

  const ZeroConsistencyStatsPtr& stats() const { return stats_; }

  // --- interposition introspection ---
  // Kernel-attached (seccomp), not LD_PRELOAD: statics are covered and the
  // dispatcher must not unwrap this layer for them.
  bool is_interposer() const override { return true; }
  bool wraps_statically_linked() const override { return true; }

  // --- the privileged-op set, faked statelessly ---
  VoidResult chown(Process& p, const std::string& path, Uid uid, Gid gid,
                   bool follow) override;
  VoidResult chmod(Process& p, const std::string& path,
                   std::uint32_t mode) override;
  VoidResult mknod(Process& p, const std::string& path, vfs::FileType type,
                   std::uint32_t mode, std::uint32_t dev_major,
                   std::uint32_t dev_minor) override;
  VoidResult set_xattr(Process& p, const std::string& path,
                       const std::string& name,
                       const std::string& value) override;
  VoidResult remove_xattr(Process& p, const std::string& path,
                          const std::string& name) override;
  VoidResult setuid(Process& p, Uid uid) override;
  VoidResult setgid(Process& p, Gid gid) override;
  VoidResult setresuid(Process& p, Uid r, Uid e, Uid s) override;
  VoidResult setresgid(Process& p, Gid r, Gid e, Gid s) override;
  VoidResult seteuid(Process& p, Uid e) override;
  VoidResult setegid(Process& p, Gid e) override;
  VoidResult setgroups(Process& p, const std::vector<Gid>& groups) override;

 private:
  // Bump category + global counters, leave a privilege-faked flight event.
  void faked(const char* op, const std::string& path,
             std::atomic<std::uint64_t>& category, obs::Counter* op_counter);

  ZeroConsistencyStatsPtr stats_;
  obs::MetricsRegistry* metrics_;
  obs::FlightRecorder* recorder_;
  obs::Counter* faked_total_;
  obs::Counter* faked_chown_;
  obs::Counter* faked_chmod_;
  obs::Counter* faked_mknod_;
  obs::Counter* faked_setid_;
  obs::Counter* faked_xattr_;
};

}  // namespace minicon::kernel
