#include "kernel/helpers.hpp"

#include "kernel/userdb.hpp"

namespace minicon::kernel {

namespace {

// The helper binary runs as the invoker but with elevated file capabilities;
// LD_PRELOAD wrappers (fakeroot) are stripped by the loader for privileged
// executables, so it talks to the real kernel syscalls.
Process helper_process(Kernel& kernel, const Process& invoker, Cap cap) {
  Process p = invoker.clone();
  p.sys = kernel.syscalls();
  p.cred.effective.add(cap);
  p.cred.effective.add(Cap::kDacReadSearch);
  p.cred.effective.add(Cap::kDacOverride);
  return p;
}

struct Validation {
  bool granted = false;
  // True iff the administrator granted subordinate IDs to this user (at
  // least one requested entry comes from /etc/sub[ug]id rather than the
  // implicit self-map); governs whether setgroups may stay enabled.
  bool admin_granted = false;
};

Validation validate(Process& helper, const std::vector<IdMapEntry>& entries,
                    const std::string& subid_path,
                    const std::string& passwd_path, std::uint32_t self_id,
                    Uid invoker_uid) {
  Validation v;
  auto subid_text = helper.sys->read_file(helper, subid_path);
  const SubidDb db =
      subid_text.ok() ? SubidDb::parse(*subid_text) : SubidDb{};
  std::string username;
  if (auto passwd_text = helper.sys->read_file(helper, passwd_path);
      passwd_text.ok()) {
    if (auto entry = PasswdDb::parse(*passwd_text).by_uid(invoker_uid)) {
      username = entry->name;
    }
  }
  for (const auto& e : entries) {
    const bool self_map = e.count == 1 && e.outside == self_id;
    const bool admin_granted = db.covers(username, invoker_uid, e.outside,
                                         e.count);
    if (!self_map && !admin_granted) return {};  // not granted
    if (admin_granted) v.admin_granted = true;
  }
  v.granted = true;
  return v;
}

}  // namespace

VoidResult newuidmap(Kernel& kernel, Process& invoker, const UserNsPtr& target,
                     const std::vector<IdMapEntry>& entries,
                     const HelperConfig& cfg) {
  Process helper = helper_process(kernel, invoker, Cap::kSetUid);
  const Validation v = validate(helper, entries, cfg.subuid_path,
                                cfg.passwd_path, invoker.cred.ruid,
                                invoker.cred.ruid);
  if (!v.granted) return Err::eperm;
  IdMap map{entries};
  if (!map.valid()) return Err::einval;
  return helper.sys->write_uid_map(helper, target, std::move(map));
}

VoidResult newgidmap(Kernel& kernel, Process& invoker, const UserNsPtr& target,
                     const std::vector<IdMapEntry>& entries,
                     const HelperConfig& cfg) {
  Process helper = helper_process(kernel, invoker, Cap::kSetGid);
  const Validation v = validate(helper, entries, cfg.subgid_path,
                                cfg.passwd_path, invoker.cred.rgid,
                                invoker.cred.ruid);
  if (!v.granted) return Err::eperm;
  IdMap map{entries};
  if (!map.valid()) return Err::einval;

  // §2.1.4: acting for an unprivileged user whose mapping is not an explicit
  // administrator grant, the helper must disable setgroups(2) first —
  // otherwise the user could *drop* a supplementary group and bypass
  // group-deny permissions. CVE-2018-7169 was exactly this omission.
  if (!v.admin_granted && !cfg.newgidmap_cve_2018_7169) {
    MINICON_TRY(helper.sys->write_setgroups(
        helper, target, UserNamespace::SetgroupsPolicy::kDeny));
  }
  return helper.sys->write_gid_map(helper, target, std::move(map));
}

}  // namespace minicon::kernel
