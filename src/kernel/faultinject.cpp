#include "kernel/faultinject.hpp"

#include "support/strings.hpp"

namespace minicon::kernel {

FaultInjectSyscalls::FaultInjectSyscalls(std::shared_ptr<Syscalls> inner,
                                         std::uint64_t seed,
                                         std::vector<FaultSpec> specs)
    : SyscallFilter(std::move(inner)),
      specs_(std::move(specs)),
      matched_(specs_.size(), 0),
      fired_(specs_.size(), 0),
      rng_state_(seed == 0 ? 0x9e3779b97f4a7c15ull : seed) {}

std::vector<InjectedFault> FaultInjectSyscalls::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

std::uint64_t FaultInjectSyscalls::calls_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

void FaultInjectSyscalls::set_metrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
}

void FaultInjectSyscalls::set_flight_recorder(obs::FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mu_);
  recorder_ = recorder;
}

std::uint64_t FaultInjectSyscalls::next_random() {
  // xorshift64*: deterministic, state advances only on a spec match so
  // unrelated traffic cannot shift the failure point.
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  return rng_state_ * 0x2545f4914f6cdd1dull;
}

Err FaultInjectSyscalls::should_fail(const char* op, const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  ++seq_;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& s = specs_[i];
    if (!s.op.empty() && s.op != op) continue;
    if (!s.path_substr.empty() && !contains(path, s.path_substr)) continue;
    const std::uint64_t match_no = matched_[i]++;
    if (match_no < s.skip) continue;
    if (fired_[i] >= s.max_failures) continue;
    if (s.probability < 1.0) {
      const double draw =
          static_cast<double>(next_random() >> 11) / 9007199254740992.0;
      if (draw >= s.probability) continue;
    }
    ++fired_[i];
    log_.push_back({seq_, op, path, s.error});
    if (metrics_ != nullptr) {
      metrics_->counter("syscall.fault_injected").add();
      metrics_->counter("syscall.fault_injected." +
                        std::string(err_name(s.error)))
          .add();
    }
    obs::FlightRecorder* rec =
        recorder_ != nullptr ? recorder_ : &obs::global_flight_recorder();
    if (rec->enabled()) {
      rec->record(obs::FlightKind::kFaultInjected,
                  obs::flight_detail(op, err_name(s.error), path),
                  err_value(s.error));
    }
    return s.error;
  }
  return Err::none;
}

#define MINICON_FAULT(op, path)                                   \
  do {                                                            \
    if (Err e = should_fail(op, path); e != Err::none) return e;  \
  } while (0)

Result<vfs::Stat> FaultInjectSyscalls::stat(Process& p,
                                            const std::string& path) {
  MINICON_FAULT("stat", path);
  return SyscallFilter::stat(p, path);
}
Result<vfs::Stat> FaultInjectSyscalls::lstat(Process& p,
                                             const std::string& path) {
  MINICON_FAULT("lstat", path);
  return SyscallFilter::lstat(p, path);
}
Result<std::string> FaultInjectSyscalls::read_file(Process& p,
                                                   const std::string& path) {
  MINICON_FAULT("read", path);
  return SyscallFilter::read_file(p, path);
}
VoidResult FaultInjectSyscalls::write_file(Process& p, const std::string& path,
                                           std::string data, bool append,
                                           std::uint32_t create_mode) {
  MINICON_FAULT("write", path);
  return SyscallFilter::write_file(p, path, std::move(data), append,
                                   create_mode);
}
Result<std::vector<vfs::DirEntry>> FaultInjectSyscalls::readdir(
    Process& p, const std::string& path) {
  MINICON_FAULT("readdir", path);
  return SyscallFilter::readdir(p, path);
}
Result<std::string> FaultInjectSyscalls::readlink(Process& p,
                                                  const std::string& path) {
  MINICON_FAULT("readlink", path);
  return SyscallFilter::readlink(p, path);
}
VoidResult FaultInjectSyscalls::mkdir(Process& p, const std::string& path,
                                      std::uint32_t mode) {
  MINICON_FAULT("mkdir", path);
  return SyscallFilter::mkdir(p, path, mode);
}
VoidResult FaultInjectSyscalls::mknod(Process& p, const std::string& path,
                                      vfs::FileType type, std::uint32_t mode,
                                      std::uint32_t dev_major,
                                      std::uint32_t dev_minor) {
  MINICON_FAULT("mknod", path);
  return SyscallFilter::mknod(p, path, type, mode, dev_major, dev_minor);
}
VoidResult FaultInjectSyscalls::symlink(Process& p, const std::string& target,
                                        const std::string& linkpath) {
  MINICON_FAULT("symlink", linkpath);
  return SyscallFilter::symlink(p, target, linkpath);
}
VoidResult FaultInjectSyscalls::link(Process& p, const std::string& oldpath,
                                     const std::string& newpath) {
  MINICON_FAULT("link", newpath);
  return SyscallFilter::link(p, oldpath, newpath);
}
VoidResult FaultInjectSyscalls::unlink(Process& p, const std::string& path) {
  MINICON_FAULT("unlink", path);
  return SyscallFilter::unlink(p, path);
}
VoidResult FaultInjectSyscalls::rmdir(Process& p, const std::string& path) {
  MINICON_FAULT("rmdir", path);
  return SyscallFilter::rmdir(p, path);
}
VoidResult FaultInjectSyscalls::rename(Process& p, const std::string& oldpath,
                                       const std::string& newpath) {
  MINICON_FAULT("rename", oldpath);
  return SyscallFilter::rename(p, oldpath, newpath);
}
VoidResult FaultInjectSyscalls::chown(Process& p, const std::string& path,
                                      Uid uid, Gid gid, bool follow) {
  MINICON_FAULT("chown", path);
  return SyscallFilter::chown(p, path, uid, gid, follow);
}
VoidResult FaultInjectSyscalls::chmod(Process& p, const std::string& path,
                                      std::uint32_t mode) {
  MINICON_FAULT("chmod", path);
  return SyscallFilter::chmod(p, path, mode);
}
VoidResult FaultInjectSyscalls::access(Process& p, const std::string& path,
                                       int mask) {
  MINICON_FAULT("access", path);
  return SyscallFilter::access(p, path, mask);
}
VoidResult FaultInjectSyscalls::set_xattr(Process& p, const std::string& path,
                                          const std::string& name,
                                          const std::string& value) {
  MINICON_FAULT("setxattr", path);
  return SyscallFilter::set_xattr(p, path, name, value);
}
Result<std::string> FaultInjectSyscalls::get_xattr(Process& p,
                                                   const std::string& path,
                                                   const std::string& name) {
  MINICON_FAULT("getxattr", path);
  return SyscallFilter::get_xattr(p, path, name);
}
VoidResult FaultInjectSyscalls::mount(Process& p, Mount m) {
  MINICON_FAULT("mount", m.mountpoint);
  return SyscallFilter::mount(p, std::move(m));
}
VoidResult FaultInjectSyscalls::bind_mount(Process& p, const std::string& src,
                                           const std::string& dst,
                                           bool read_only) {
  MINICON_FAULT("mount", dst);
  return SyscallFilter::bind_mount(p, src, dst, read_only);
}

#undef MINICON_FAULT

}  // namespace minicon::kernel
