// Mount namespaces and the mount table.
//
// A Mount attaches a filesystem (or a subtree of one, for bind mounts) at an
// absolute path. Each mount records the user namespace that owns it
// (s_user_ns in Linux): capability-based permission overrides are only
// honored relative to that namespace. This single field is what makes
// "root in the container" powerless over host-owned storage (the Type III
// chown failure, Fig 2) yet effective over container-owned storage (the
// Type II Podman build, §4.1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kernel/userns.hpp"
#include "support/result.hpp"
#include "vfs/filesystem.hpp"

namespace minicon::kernel {

struct Mount {
  std::string mountpoint;  // normalized absolute path
  vfs::FilesystemPtr fs;
  vfs::InodeNum root = 0;  // root inode within fs (bind-mount of a subtree)
  UserNsPtr owner_ns;      // namespace that owns the superblock
  bool read_only = false;
  std::string source;  // diagnostics: "tmpfs", "overlay", "/host/path", ...
};

class MountNamespace;
using MountNsPtr = std::shared_ptr<MountNamespace>;

class MountNamespace {
 public:
  // A namespace needs at least a root ("/") mount.
  static MountNsPtr make(Mount root_mount);

  // Copy of the mount table (what unshare(CLONE_NEWNS) gives a child).
  MountNsPtr clone() const;

  // Adds a mount; later mounts at the same mountpoint shadow earlier ones.
  void add(Mount m);

  // Removes the most recent mount at `mountpoint`; ENOENT if none.
  VoidResult remove(const std::string& mountpoint);

  // The active mount exactly at `abs_path`, or nullptr. Used by the path
  // walker for mount crossings.
  const Mount* find_exact(const std::string& abs_path) const;

  const Mount* root_mount() const { return find_exact("/"); }

  const std::vector<Mount>& mounts() const noexcept { return mounts_; }

 private:
  MountNamespace() = default;
  std::vector<Mount> mounts_;
};

}  // namespace minicon::kernel
