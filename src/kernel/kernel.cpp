#include "kernel/kernel.hpp"

namespace minicon::kernel {

Kernel::Kernel()
    : init_userns_(UserNamespace::make_init()),
      sys_(std::make_shared<KernelSyscalls>(this)) {}

}  // namespace minicon::kernel
