// FaultInjectSyscalls: deterministic fault injection for robustness tests.
//
// A filter that fails matching calls with a chosen errno (EIO, ENOSPC,
// EPERM, ...) before they reach the layer below. Matching is by operation
// name and path substring; firing is driven by a seeded xorshift generator,
// so the same seed over the same workload fails at exactly the same point —
// tests can assert that a mid-build ENOSPC yields a coherent diagnostic
// rather than a crash, and replay the identical failure while debugging.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "kernel/syscall_filter.hpp"
#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"

namespace minicon::kernel {

struct FaultSpec {
  std::string op;           // exact operation name ("write", "chown"); empty = any
  std::string path_substr;  // substring of the path argument; empty = any
  Err error = Err::eio;
  double probability = 1.0;        // per matching call, via the seeded PRNG
  std::uint64_t skip = 0;          // let the first N matching calls through
  std::uint64_t max_failures = ~std::uint64_t{0};
};

struct InjectedFault {
  std::uint64_t seq = 0;  // global intercepted-call sequence number
  std::string op;
  std::string path;
  Err error = Err::none;
};

class FaultInjectSyscalls : public SyscallFilter {
 public:
  FaultInjectSyscalls(std::shared_ptr<Syscalls> inner, std::uint64_t seed,
                      std::vector<FaultSpec> specs);

  // Convenience: one spec.
  FaultInjectSyscalls(std::shared_ptr<Syscalls> inner, std::uint64_t seed,
                      FaultSpec spec)
      : FaultInjectSyscalls(std::move(inner), seed,
                            std::vector<FaultSpec>{std::move(spec)}) {}

  // Log of every fault fired, in order. Deterministic for a given seed.
  std::vector<InjectedFault> injected() const;
  std::uint64_t calls_seen() const;

  // Mirror fired faults into a MetricsRegistry as `syscall.fault_injected`
  // (plus `syscall.fault_injected.<ERRNAME>`). Injected faults never reach
  // the ObserveSyscalls layer below, so these counters are the only place
  // they appear — robustness experiments separate them from organic errnos
  // by construction. Null detaches.
  void set_metrics(obs::MetricsRegistry* metrics);

  // Every fired fault is also recorded to the flight recorder as a
  // `fault-injected` event ("op ERRNAME path", stamped with the current
  // trace context) — the forensic trail a post-mortem orders against the
  // downstream damage. Defaults to obs::global_flight_recorder(); this
  // redirects it (tests use a private recorder). Null restores the global.
  void set_flight_recorder(obs::FlightRecorder* recorder);

  Result<vfs::Stat> stat(Process& p, const std::string& path) override;
  Result<vfs::Stat> lstat(Process& p, const std::string& path) override;
  Result<std::string> read_file(Process& p, const std::string& path) override;
  VoidResult write_file(Process& p, const std::string& path, std::string data,
                        bool append, std::uint32_t create_mode) override;
  Result<std::vector<vfs::DirEntry>> readdir(Process& p,
                                             const std::string& path) override;
  Result<std::string> readlink(Process& p, const std::string& path) override;
  VoidResult mkdir(Process& p, const std::string& path,
                   std::uint32_t mode) override;
  VoidResult mknod(Process& p, const std::string& path, vfs::FileType type,
                   std::uint32_t mode, std::uint32_t dev_major,
                   std::uint32_t dev_minor) override;
  VoidResult symlink(Process& p, const std::string& target,
                     const std::string& linkpath) override;
  VoidResult link(Process& p, const std::string& oldpath,
                  const std::string& newpath) override;
  VoidResult unlink(Process& p, const std::string& path) override;
  VoidResult rmdir(Process& p, const std::string& path) override;
  VoidResult rename(Process& p, const std::string& oldpath,
                    const std::string& newpath) override;
  VoidResult chown(Process& p, const std::string& path, Uid uid, Gid gid,
                   bool follow) override;
  VoidResult chmod(Process& p, const std::string& path,
                   std::uint32_t mode) override;
  VoidResult access(Process& p, const std::string& path, int mask) override;
  VoidResult set_xattr(Process& p, const std::string& path,
                       const std::string& name,
                       const std::string& value) override;
  Result<std::string> get_xattr(Process& p, const std::string& path,
                                const std::string& name) override;
  VoidResult mount(Process& p, Mount m) override;
  VoidResult bind_mount(Process& p, const std::string& src,
                        const std::string& dst, bool read_only) override;

 private:
  // Err::none = let the call through; anything else = inject that errno.
  Err should_fail(const char* op, const std::string& path);
  std::uint64_t next_random();  // xorshift64*, seeded

  mutable std::mutex mu_;
  obs::MetricsRegistry* metrics_ = nullptr;   // guarded by mu_
  obs::FlightRecorder* recorder_ = nullptr;   // guarded by mu_; null = global
  std::vector<FaultSpec> specs_;
  std::vector<std::uint64_t> matched_;  // per-spec matching-call counts
  std::vector<std::uint64_t> fired_;    // per-spec injected-fault counts
  std::vector<InjectedFault> log_;
  std::uint64_t rng_state_;
  std::uint64_t seq_ = 0;
};

}  // namespace minicon::kernel
