// ObserveSyscalls: the metrics layer of the interposition stack.
//
// Where TraceSyscalls feeds a per-RUN SyscallStats registry and an optional
// strace-style transcript, ObserveSyscalls feeds the process-wide
// obs::MetricsRegistry: total and per-operation call/error counters, a
// per-errno breakdown, and a call-latency histogram. It changes no
// semantics — builders stack it *innermost* (directly above the runtime's
// syscalls, below any caller-supplied layers), so counts here are organic
// kernel behavior: a fault injected by an outer FaultInjectSyscalls never
// traverses this layer and is accounted separately as
// `syscall.fault_injected` (see FaultInjectSyscalls::set_metrics).
//
// Metric names: `syscall.calls`, `syscall.errors`, `syscall.<op>.calls`,
// `syscall.<op>.errors`, `syscall.errno.<ERRNAME>`, and the histogram
// `syscall.latency_us`. Per-op counters are pre-registered at construction
// so the hot path touches only relaxed atomics.
#pragma once

#include <chrono>
#include <string>
#include <unordered_map>

#include "kernel/syscall_filter.hpp"
#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"

namespace minicon::kernel {

class ObserveSyscalls : public SyscallFilter {
 public:
  // null metrics = obs::global_metrics(); null recorder =
  // obs::global_flight_recorder(). Organic errors additionally land in the
  // flight recorder as `syscall-error` events ("op ERRNAME path", stamped
  // with the current trace context) — the error path is already cold, so
  // forensics ride along for free.
  explicit ObserveSyscalls(std::shared_ptr<Syscalls> inner,
                           obs::MetricsRegistry* metrics = nullptr,
                           obs::FlightRecorder* recorder = nullptr);

  obs::MetricsRegistry& metrics() const { return *metrics_; }

  Result<vfs::Stat> stat(Process& p, const std::string& path) override;
  Result<vfs::Stat> lstat(Process& p, const std::string& path) override;
  Result<std::string> read_file(Process& p, const std::string& path) override;
  VoidResult write_file(Process& p, const std::string& path, std::string data,
                        bool append, std::uint32_t create_mode) override;
  Result<std::vector<vfs::DirEntry>> readdir(Process& p,
                                             const std::string& path) override;
  Result<std::string> readlink(Process& p, const std::string& path) override;
  VoidResult mkdir(Process& p, const std::string& path,
                   std::uint32_t mode) override;
  VoidResult mknod(Process& p, const std::string& path, vfs::FileType type,
                   std::uint32_t mode, std::uint32_t dev_major,
                   std::uint32_t dev_minor) override;
  VoidResult symlink(Process& p, const std::string& target,
                     const std::string& linkpath) override;
  VoidResult link(Process& p, const std::string& oldpath,
                  const std::string& newpath) override;
  VoidResult unlink(Process& p, const std::string& path) override;
  VoidResult rmdir(Process& p, const std::string& path) override;
  VoidResult rename(Process& p, const std::string& oldpath,
                    const std::string& newpath) override;
  VoidResult chown(Process& p, const std::string& path, Uid uid, Gid gid,
                   bool follow) override;
  VoidResult chmod(Process& p, const std::string& path,
                   std::uint32_t mode) override;
  VoidResult access(Process& p, const std::string& path, int mask) override;
  VoidResult chdir(Process& p, const std::string& path) override;

  VoidResult set_xattr(Process& p, const std::string& path,
                       const std::string& name,
                       const std::string& value) override;
  Result<std::string> get_xattr(Process& p, const std::string& path,
                                const std::string& name) override;
  Result<std::vector<std::string>> list_xattrs(
      Process& p, const std::string& path) override;
  VoidResult remove_xattr(Process& p, const std::string& path,
                          const std::string& name) override;

  Uid getuid(Process& p) override;
  Uid geteuid(Process& p) override;
  Gid getgid(Process& p) override;
  Gid getegid(Process& p) override;
  std::vector<Gid> getgroups(Process& p) override;
  VoidResult setuid(Process& p, Uid uid) override;
  VoidResult setgid(Process& p, Gid gid) override;
  VoidResult setresuid(Process& p, Uid r, Uid e, Uid s) override;
  VoidResult setresgid(Process& p, Gid r, Gid e, Gid s) override;
  VoidResult seteuid(Process& p, Uid e) override;
  VoidResult setegid(Process& p, Gid e) override;
  VoidResult setgroups(Process& p, const std::vector<Gid>& groups) override;

  VoidResult unshare_userns(Process& p) override;
  VoidResult unshare_mountns(Process& p) override;
  VoidResult write_uid_map(Process& writer, const UserNsPtr& target,
                           IdMap map) override;
  VoidResult write_gid_map(Process& writer, const UserNsPtr& target,
                           IdMap map) override;
  VoidResult write_setgroups(Process& writer, const UserNsPtr& target,
                             UserNamespace::SetgroupsPolicy policy) override;
  VoidResult userns_auto_map(Process& p) override;
  VoidResult mount(Process& p, Mount m) override;
  VoidResult umount(Process& p, const std::string& mountpoint) override;
  VoidResult bind_mount(Process& p, const std::string& src,
                        const std::string& dst, bool read_only) override;

  Result<Loc> resolve(Process& p, const std::string& path,
                      bool follow_last) override;

 private:
  struct OpCounters {
    obs::Counter* calls = nullptr;
    obs::Counter* errors = nullptr;
  };

  void note(const char* op, Err e, std::chrono::steady_clock::time_point start,
            const std::string& path);

  obs::MetricsRegistry* metrics_;
  obs::FlightRecorder* recorder_;
  obs::Counter* calls_;
  obs::Counter* errors_;
  obs::Histogram* latency_;
  // Immutable after construction: lock-free per-op lookup on the hot path.
  std::unordered_map<std::string, OpCounters> ops_;
};

}  // namespace minicon::kernel
