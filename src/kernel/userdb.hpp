// User-space ID databases: /etc/passwd, /etc/group, /etc/subuid, /etc/subgid.
//
// The kernel deals only in numeric IDs (paper footnote 4); name translation
// is a user-space concern and may differ between host and container. These
// parsers are shared by ls(1), useradd(8), and the newuidmap/newgidmap
// helpers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kernel/ids.hpp"

namespace minicon::kernel {

struct PasswdEntry {
  std::string name;
  Uid uid = 0;
  Gid gid = 0;
  std::string gecos;
  std::string home;
  std::string shell;
};

struct GroupEntry {
  std::string name;
  Gid gid = 0;
  std::vector<std::string> members;
};

class PasswdDb {
 public:
  static PasswdDb parse(const std::string& text);
  std::string format() const;

  std::optional<PasswdEntry> by_name(const std::string& name) const;
  std::optional<PasswdEntry> by_uid(Uid uid) const;
  void add(PasswdEntry e) { entries_.push_back(std::move(e)); }
  const std::vector<PasswdEntry>& entries() const { return entries_; }

 private:
  std::vector<PasswdEntry> entries_;
};

class GroupDb {
 public:
  static GroupDb parse(const std::string& text);
  std::string format() const;

  std::optional<GroupEntry> by_name(const std::string& name) const;
  std::optional<GroupEntry> by_gid(Gid gid) const;
  void add(GroupEntry e) { entries_.push_back(std::move(e)); }
  const std::vector<GroupEntry>& entries() const { return entries_; }

 private:
  std::vector<GroupEntry> entries_;
};

// One /etc/subuid (or /etc/subgid) allocation: "alice:100000:65536".
struct SubidRange {
  std::string owner;  // user name (or decimal UID string)
  std::uint32_t start = 0;
  std::uint32_t count = 0;
};

class SubidDb {
 public:
  static SubidDb parse(const std::string& text);
  std::string format() const;

  // All ranges owned by `user` (matched by name or decimal UID).
  std::vector<SubidRange> ranges_for(const std::string& user, Uid uid) const;
  void add(SubidRange r) { ranges_.push_back(std::move(r)); }
  const std::vector<SubidRange>& ranges() const { return ranges_; }

  // True if [start, start+count) falls entirely inside ranges owned by the
  // user — the check newuidmap(1) performs before installing a map.
  bool covers(const std::string& user, Uid uid, std::uint32_t start,
              std::uint32_t count) const;

 private:
  std::vector<SubidRange> ranges_;
};

}  // namespace minicon::kernel
