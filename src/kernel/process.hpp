// Simulated process: credentials + namespaces + working directory + env.
//
// Processes are value-ish objects; clone() is fork(2). The active syscall
// layer is carried on the process so that fakeroot(1) can interpose per
// process subtree (LD_PRELOAD semantics): children inherit the wrapper,
// unrelated processes do not.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "kernel/cred.hpp"
#include "kernel/mountns.hpp"
#include "kernel/userns.hpp"

namespace minicon::kernel {

class Syscalls;

struct Process {
  Credentials cred;
  UserNsPtr userns;
  MountNsPtr mountns;
  std::string cwd = "/";
  std::map<std::string, std::string> env;
  std::uint32_t umask_bits = 022;
  std::shared_ptr<Syscalls> sys;  // active syscall layer (may be a wrapper)

  // fork(2): children share namespaces (by pointer) and inherit everything
  // else by value.
  Process clone() const { return *this; }

  std::string env_get(const std::string& key) const {
    auto it = env.find(key);
    return it == env.end() ? std::string() : it->second;
  }
};

}  // namespace minicon::kernel
