// The simulated kernel: global clock, the initial user namespace, sysctl
// knobs, and the real syscall implementation.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>

#include "kernel/syscalls.hpp"
#include "kernel/userns.hpp"

namespace minicon::kernel {

class Kernel {
 public:
  Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  const UserNsPtr& init_userns() const noexcept { return init_userns_; }

  // Logical clock for mtimes; monotonic.
  std::uint64_t now() const noexcept { return clock_; }
  std::uint64_t tick() noexcept { return ++clock_; }

  // /proc/sys/user/max_user_namespaces: 0 disables creation of *new* user
  // namespaces (a common hardening sysctl the paper alludes to in §2.1).
  // The limit applies to *live* namespaces, like the real sysctl.
  std::uint64_t max_user_namespaces = 15000;

  // §6.2.4 future-work mechanism: when enabled, the kernel itself offers a
  // general unprivileged mapping policy — "host UID maps to container root
  // and guaranteed-unique host UIDs map to all other container UIDs" — via
  // the userns_auto_map(2) syscall. Off by default (matches 2021 kernels).
  bool unprivileged_auto_maps = false;
  // Pool of guaranteed-unique kernel IDs handed out by auto-mapping; starts
  // far above any administrator-assigned range. Allocation is stable per
  // invoking user, so a user's containers agree on their ID ranges.
  std::uint32_t auto_map_pool_next = 1u << 24;
  std::map<std::uint32_t, std::uint32_t> auto_map_assignments;
  const std::shared_ptr<std::atomic<std::int64_t>>& live_user_namespaces()
      const noexcept {
    return live_userns_;
  }

  const std::shared_ptr<KernelSyscalls>& syscalls() const noexcept {
    return sys_;
  }

 private:
  UserNsPtr init_userns_;
  std::shared_ptr<KernelSyscalls> sys_;
  std::shared_ptr<std::atomic<std::int64_t>> live_userns_ =
      std::make_shared<std::atomic<std::int64_t>>(0);
  std::uint64_t clock_ = 1;
};

}  // namespace minicon::kernel
