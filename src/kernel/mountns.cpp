#include "kernel/mountns.hpp"

#include "support/path.hpp"

namespace minicon::kernel {

MountNsPtr MountNamespace::make(Mount root_mount) {
  auto ns = MountNsPtr(new MountNamespace());
  root_mount.mountpoint = "/";
  ns->mounts_.push_back(std::move(root_mount));
  return ns;
}

MountNsPtr MountNamespace::clone() const {
  auto ns = MountNsPtr(new MountNamespace());
  ns->mounts_ = mounts_;
  return ns;
}

void MountNamespace::add(Mount m) {
  m.mountpoint = path_normalize(m.mountpoint);
  mounts_.push_back(std::move(m));
}

VoidResult MountNamespace::remove(const std::string& mountpoint) {
  const std::string norm = path_normalize(mountpoint);
  for (auto it = mounts_.rbegin(); it != mounts_.rend(); ++it) {
    if (it->mountpoint == norm) {
      mounts_.erase(std::next(it).base());
      return {};
    }
  }
  return Err::enoent;
}

const Mount* MountNamespace::find_exact(const std::string& abs_path) const {
  // Latest mount wins (stacked mounts shadow earlier ones).
  for (auto it = mounts_.rbegin(); it != mounts_.rend(); ++it) {
    if (it->mountpoint == abs_path) return &*it;
  }
  return nullptr;
}

}  // namespace minicon::kernel
