#include "kernel/observe.hpp"

namespace minicon::kernel {

namespace {

// Every operation name note() can be called with; pre-registered so the
// per-call path never takes a registry shard lock.
constexpr const char* kOpNames[] = {
    "stat",       "lstat",     "read",       "write",       "readdir",
    "readlink",   "mkdir",     "mknod",      "symlink",     "link",
    "unlink",     "rmdir",     "rename",     "chown",       "chmod",
    "access",     "chdir",     "setxattr",   "getxattr",    "listxattr",
    "removexattr","getuid",    "geteuid",    "getgid",      "getegid",
    "getgroups",  "setuid",    "setgid",     "setresuid",   "setresgid",
    "seteuid",    "setegid",   "setgroups",  "unshare",     "userns_auto_map",
    "mount",      "umount",
};

template <typename R>
Err error_of(const R& r) {
  return r.ok() ? Err::none : r.error();
}

}  // namespace

ObserveSyscalls::ObserveSyscalls(std::shared_ptr<Syscalls> inner,
                                 obs::MetricsRegistry* metrics,
                                 obs::FlightRecorder* recorder)
    : SyscallFilter(std::move(inner)),
      metrics_(metrics != nullptr ? metrics : &obs::global_metrics()),
      recorder_(recorder != nullptr ? recorder
                                    : &obs::global_flight_recorder()),
      calls_(&metrics_->counter("syscall.calls")),
      errors_(&metrics_->counter("syscall.errors")),
      latency_(&metrics_->histogram("syscall.latency_us")) {
  for (const char* op : kOpNames) {
    const std::string name(op);
    OpCounters c;
    c.calls = &metrics_->counter("syscall." + name + ".calls");
    c.errors = &metrics_->counter("syscall." + name + ".errors");
    ops_.emplace(name, c);
  }
}

namespace {
// Placeholder for operations with no path argument (identity calls).
const std::string kNoPath;
}  // namespace

void ObserveSyscalls::note(const char* op, Err e,
                           std::chrono::steady_clock::time_point start,
                           const std::string& path) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  calls_->add();
  latency_->observe(
      std::chrono::duration<double, std::micro>(elapsed).count());
  const auto it = ops_.find(op);
  if (it != ops_.end()) it->second.calls->add();
  if (e != Err::none) {
    errors_->add();
    if (it != ops_.end()) it->second.errors->add();
    // Error paths are cold; the shard-locked lookup is fine here.
    metrics_->counter("syscall.errno." + std::string(err_name(e))).add();
    if (recorder_->enabled()) {
      recorder_->record_error(obs::FlightKind::kSyscallError, op, err_name(e),
                              path, err_value(e));
    }
  }
}

// Forward through the filter base, timing the inner call and recording the
// observed outcome.
#define MINICON_OBSERVE(op, path, call)                \
  const auto t0 = std::chrono::steady_clock::now();    \
  auto r = SyscallFilter::call;                        \
  note(op, error_of(r), t0, path);                     \
  return r

Result<vfs::Stat> ObserveSyscalls::stat(Process& p, const std::string& path) {
  MINICON_OBSERVE("stat", path, stat(p, path));
}
Result<vfs::Stat> ObserveSyscalls::lstat(Process& p, const std::string& path) {
  MINICON_OBSERVE("lstat", path, lstat(p, path));
}
Result<std::string> ObserveSyscalls::read_file(Process& p,
                                               const std::string& path) {
  MINICON_OBSERVE("read", path, read_file(p, path));
}
VoidResult ObserveSyscalls::write_file(Process& p, const std::string& path,
                                       std::string data, bool append,
                                       std::uint32_t create_mode) {
  MINICON_OBSERVE("write", path,
                  write_file(p, path, std::move(data), append, create_mode));
}
Result<std::vector<vfs::DirEntry>> ObserveSyscalls::readdir(
    Process& p, const std::string& path) {
  MINICON_OBSERVE("readdir", path, readdir(p, path));
}
Result<std::string> ObserveSyscalls::readlink(Process& p,
                                              const std::string& path) {
  MINICON_OBSERVE("readlink", path, readlink(p, path));
}
VoidResult ObserveSyscalls::mkdir(Process& p, const std::string& path,
                                  std::uint32_t mode) {
  MINICON_OBSERVE("mkdir", path, mkdir(p, path, mode));
}
VoidResult ObserveSyscalls::mknod(Process& p, const std::string& path,
                                  vfs::FileType type, std::uint32_t mode,
                                  std::uint32_t dev_major,
                                  std::uint32_t dev_minor) {
  MINICON_OBSERVE("mknod", path, mknod(p, path, type, mode, dev_major, dev_minor));
}
VoidResult ObserveSyscalls::symlink(Process& p, const std::string& target,
                                    const std::string& linkpath) {
  MINICON_OBSERVE("symlink", linkpath, symlink(p, target, linkpath));
}
VoidResult ObserveSyscalls::link(Process& p, const std::string& oldpath,
                                 const std::string& newpath) {
  MINICON_OBSERVE("link", newpath, link(p, oldpath, newpath));
}
VoidResult ObserveSyscalls::unlink(Process& p, const std::string& path) {
  MINICON_OBSERVE("unlink", path, unlink(p, path));
}
VoidResult ObserveSyscalls::rmdir(Process& p, const std::string& path) {
  MINICON_OBSERVE("rmdir", path, rmdir(p, path));
}
VoidResult ObserveSyscalls::rename(Process& p, const std::string& oldpath,
                                   const std::string& newpath) {
  MINICON_OBSERVE("rename", oldpath, rename(p, oldpath, newpath));
}
VoidResult ObserveSyscalls::chown(Process& p, const std::string& path, Uid uid,
                                  Gid gid, bool follow) {
  MINICON_OBSERVE("chown", path, chown(p, path, uid, gid, follow));
}
VoidResult ObserveSyscalls::chmod(Process& p, const std::string& path,
                                  std::uint32_t mode) {
  MINICON_OBSERVE("chmod", path, chmod(p, path, mode));
}
VoidResult ObserveSyscalls::access(Process& p, const std::string& path,
                                   int mask) {
  MINICON_OBSERVE("access", path, access(p, path, mask));
}
VoidResult ObserveSyscalls::chdir(Process& p, const std::string& path) {
  MINICON_OBSERVE("chdir", path, chdir(p, path));
}

VoidResult ObserveSyscalls::set_xattr(Process& p, const std::string& path,
                                      const std::string& name,
                                      const std::string& value) {
  MINICON_OBSERVE("setxattr", path, set_xattr(p, path, name, value));
}
Result<std::string> ObserveSyscalls::get_xattr(Process& p,
                                               const std::string& path,
                                               const std::string& name) {
  MINICON_OBSERVE("getxattr", path, get_xattr(p, path, name));
}
Result<std::vector<std::string>> ObserveSyscalls::list_xattrs(
    Process& p, const std::string& path) {
  MINICON_OBSERVE("listxattr", path, list_xattrs(p, path));
}
VoidResult ObserveSyscalls::remove_xattr(Process& p, const std::string& path,
                                         const std::string& name) {
  MINICON_OBSERVE("removexattr", path, remove_xattr(p, path, name));
}

Uid ObserveSyscalls::getuid(Process& p) {
  const auto t0 = std::chrono::steady_clock::now();
  const Uid r = SyscallFilter::getuid(p);
  note("getuid", Err::none, t0, kNoPath);
  return r;
}
Uid ObserveSyscalls::geteuid(Process& p) {
  const auto t0 = std::chrono::steady_clock::now();
  const Uid r = SyscallFilter::geteuid(p);
  note("geteuid", Err::none, t0, kNoPath);
  return r;
}
Gid ObserveSyscalls::getgid(Process& p) {
  const auto t0 = std::chrono::steady_clock::now();
  const Gid r = SyscallFilter::getgid(p);
  note("getgid", Err::none, t0, kNoPath);
  return r;
}
Gid ObserveSyscalls::getegid(Process& p) {
  const auto t0 = std::chrono::steady_clock::now();
  const Gid r = SyscallFilter::getegid(p);
  note("getegid", Err::none, t0, kNoPath);
  return r;
}
std::vector<Gid> ObserveSyscalls::getgroups(Process& p) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Gid> r = SyscallFilter::getgroups(p);
  note("getgroups", Err::none, t0, kNoPath);
  return r;
}
VoidResult ObserveSyscalls::setuid(Process& p, Uid uid) {
  MINICON_OBSERVE("setuid", kNoPath, setuid(p, uid));
}
VoidResult ObserveSyscalls::setgid(Process& p, Gid gid) {
  MINICON_OBSERVE("setgid", kNoPath, setgid(p, gid));
}
VoidResult ObserveSyscalls::setresuid(Process& p, Uid ru, Uid eu, Uid su) {
  MINICON_OBSERVE("setresuid", kNoPath, setresuid(p, ru, eu, su));
}
VoidResult ObserveSyscalls::setresgid(Process& p, Gid rg, Gid eg, Gid sg) {
  MINICON_OBSERVE("setresgid", kNoPath, setresgid(p, rg, eg, sg));
}
VoidResult ObserveSyscalls::seteuid(Process& p, Uid e) {
  MINICON_OBSERVE("seteuid", kNoPath, seteuid(p, e));
}
VoidResult ObserveSyscalls::setegid(Process& p, Gid e) {
  MINICON_OBSERVE("setegid", kNoPath, setegid(p, e));
}
VoidResult ObserveSyscalls::setgroups(Process& p,
                                      const std::vector<Gid>& groups) {
  MINICON_OBSERVE("setgroups", kNoPath, setgroups(p, groups));
}

VoidResult ObserveSyscalls::unshare_userns(Process& p) {
  MINICON_OBSERVE("unshare", kNoPath, unshare_userns(p));
}
VoidResult ObserveSyscalls::unshare_mountns(Process& p) {
  MINICON_OBSERVE("unshare", kNoPath, unshare_mountns(p));
}
VoidResult ObserveSyscalls::write_uid_map(Process& writer,
                                          const UserNsPtr& target, IdMap map) {
  MINICON_OBSERVE("write", kNoPath, write_uid_map(writer, target, std::move(map)));
}
VoidResult ObserveSyscalls::write_gid_map(Process& writer,
                                          const UserNsPtr& target, IdMap map) {
  MINICON_OBSERVE("write", kNoPath, write_gid_map(writer, target, std::move(map)));
}
VoidResult ObserveSyscalls::write_setgroups(
    Process& writer, const UserNsPtr& target,
    UserNamespace::SetgroupsPolicy policy) {
  MINICON_OBSERVE("write", kNoPath, write_setgroups(writer, target, policy));
}
VoidResult ObserveSyscalls::userns_auto_map(Process& p) {
  MINICON_OBSERVE("userns_auto_map", kNoPath, userns_auto_map(p));
}
VoidResult ObserveSyscalls::mount(Process& p, Mount m) {
  // Copy before the macro body moves `m` into the inner call.
  const std::string where = m.mountpoint;
  MINICON_OBSERVE("mount", where, mount(p, std::move(m)));
}
VoidResult ObserveSyscalls::umount(Process& p, const std::string& mountpoint) {
  MINICON_OBSERVE("umount", mountpoint, umount(p, mountpoint));
}
VoidResult ObserveSyscalls::bind_mount(Process& p, const std::string& src,
                                       const std::string& dst,
                                       bool read_only) {
  MINICON_OBSERVE("mount", dst, bind_mount(p, src, dst, read_only));
}

Result<Loc> ObserveSyscalls::resolve(Process& p, const std::string& path,
                                     bool follow_last) {
  // Internal helper, not a syscall; pass through silently (as TraceSyscalls
  // does) so counters reflect what a real strace would see.
  return SyscallFilter::resolve(p, path, follow_last);
}

#undef MINICON_OBSERVE

}  // namespace minicon::kernel
