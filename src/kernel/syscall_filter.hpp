// SyscallFilter: the base of the composable interposition stack.
//
// A filter wraps an inner std::shared_ptr<Syscalls> and forwards every
// operation unchanged; concrete layers (fakeroot's lies, TraceSyscalls'
// counters, FaultInjectSyscalls' deterministic errors) override only the
// calls they actually care about. Stacking filters is the simulator's
// LD_PRELOAD: a process's `sys` pointer names the top of its stack, and
// each layer owns the one below it.
//
// Introspection is transparent: a filter reports the interposer-ness of
// whatever it wraps, so the dispatcher's static-binary unwrapping and
// interposition_depth() both walk through observability layers.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "kernel/syscalls.hpp"

namespace minicon::kernel {

class SyscallFilter : public Syscalls {
 public:
  explicit SyscallFilter(std::shared_ptr<Syscalls> inner)
      : inner_(std::move(inner)) {}

  // --- file metadata & data -------------------------------------------
  Result<vfs::Stat> stat(Process& p, const std::string& path) override {
    return inner_->stat(p, path);
  }
  Result<vfs::Stat> lstat(Process& p, const std::string& path) override {
    return inner_->lstat(p, path);
  }
  Result<std::string> read_file(Process& p, const std::string& path) override {
    return inner_->read_file(p, path);
  }
  VoidResult write_file(Process& p, const std::string& path, std::string data,
                        bool append, std::uint32_t create_mode) override {
    return inner_->write_file(p, path, std::move(data), append, create_mode);
  }
  Result<std::vector<vfs::DirEntry>> readdir(Process& p,
                                             const std::string& path) override {
    return inner_->readdir(p, path);
  }
  Result<std::string> readlink(Process& p, const std::string& path) override {
    return inner_->readlink(p, path);
  }
  VoidResult mkdir(Process& p, const std::string& path,
                   std::uint32_t mode) override {
    return inner_->mkdir(p, path, mode);
  }
  VoidResult mknod(Process& p, const std::string& path, vfs::FileType type,
                   std::uint32_t mode, std::uint32_t dev_major,
                   std::uint32_t dev_minor) override {
    return inner_->mknod(p, path, type, mode, dev_major, dev_minor);
  }
  VoidResult symlink(Process& p, const std::string& target,
                     const std::string& linkpath) override {
    return inner_->symlink(p, target, linkpath);
  }
  VoidResult link(Process& p, const std::string& oldpath,
                  const std::string& newpath) override {
    return inner_->link(p, oldpath, newpath);
  }
  VoidResult unlink(Process& p, const std::string& path) override {
    return inner_->unlink(p, path);
  }
  VoidResult rmdir(Process& p, const std::string& path) override {
    return inner_->rmdir(p, path);
  }
  VoidResult rename(Process& p, const std::string& oldpath,
                    const std::string& newpath) override {
    return inner_->rename(p, oldpath, newpath);
  }
  VoidResult chown(Process& p, const std::string& path, Uid uid, Gid gid,
                   bool follow) override {
    return inner_->chown(p, path, uid, gid, follow);
  }
  VoidResult chmod(Process& p, const std::string& path,
                   std::uint32_t mode) override {
    return inner_->chmod(p, path, mode);
  }
  VoidResult access(Process& p, const std::string& path, int mask) override {
    return inner_->access(p, path, mask);
  }
  VoidResult chdir(Process& p, const std::string& path) override {
    return inner_->chdir(p, path);
  }

  VoidResult set_xattr(Process& p, const std::string& path,
                       const std::string& name,
                       const std::string& value) override {
    return inner_->set_xattr(p, path, name, value);
  }
  Result<std::string> get_xattr(Process& p, const std::string& path,
                                const std::string& name) override {
    return inner_->get_xattr(p, path, name);
  }
  Result<std::vector<std::string>> list_xattrs(
      Process& p, const std::string& path) override {
    return inner_->list_xattrs(p, path);
  }
  VoidResult remove_xattr(Process& p, const std::string& path,
                          const std::string& name) override {
    return inner_->remove_xattr(p, path, name);
  }

  // --- identity ---------------------------------------------------------
  Uid getuid(Process& p) override { return inner_->getuid(p); }
  Uid geteuid(Process& p) override { return inner_->geteuid(p); }
  Gid getgid(Process& p) override { return inner_->getgid(p); }
  Gid getegid(Process& p) override { return inner_->getegid(p); }
  std::vector<Gid> getgroups(Process& p) override {
    return inner_->getgroups(p);
  }
  VoidResult setuid(Process& p, Uid uid) override {
    return inner_->setuid(p, uid);
  }
  VoidResult setgid(Process& p, Gid gid) override {
    return inner_->setgid(p, gid);
  }
  VoidResult setresuid(Process& p, Uid r, Uid e, Uid s) override {
    return inner_->setresuid(p, r, e, s);
  }
  VoidResult setresgid(Process& p, Gid r, Gid e, Gid s) override {
    return inner_->setresgid(p, r, e, s);
  }
  VoidResult seteuid(Process& p, Uid e) override {
    return inner_->seteuid(p, e);
  }
  VoidResult setegid(Process& p, Gid e) override {
    return inner_->setegid(p, e);
  }
  VoidResult setgroups(Process& p, const std::vector<Gid>& groups) override {
    return inner_->setgroups(p, groups);
  }

  // --- namespaces & mounts -----------------------------------------------
  VoidResult unshare_userns(Process& p) override {
    return inner_->unshare_userns(p);
  }
  VoidResult unshare_mountns(Process& p) override {
    return inner_->unshare_mountns(p);
  }
  VoidResult write_uid_map(Process& writer, const UserNsPtr& target,
                           IdMap map) override {
    return inner_->write_uid_map(writer, target, std::move(map));
  }
  VoidResult write_gid_map(Process& writer, const UserNsPtr& target,
                           IdMap map) override {
    return inner_->write_gid_map(writer, target, std::move(map));
  }
  VoidResult write_setgroups(Process& writer, const UserNsPtr& target,
                             UserNamespace::SetgroupsPolicy policy) override {
    return inner_->write_setgroups(writer, target, policy);
  }
  VoidResult userns_auto_map(Process& p) override {
    return inner_->userns_auto_map(p);
  }
  VoidResult mount(Process& p, Mount m) override {
    return inner_->mount(p, std::move(m));
  }
  VoidResult umount(Process& p, const std::string& mountpoint) override {
    return inner_->umount(p, mountpoint);
  }
  VoidResult bind_mount(Process& p, const std::string& src,
                        const std::string& dst, bool read_only) override {
    return inner_->bind_mount(p, src, dst, read_only);
  }

  // --- resolution ---------------------------------------------------------
  Result<Loc> resolve(Process& p, const std::string& path,
                      bool follow_last) override {
    return inner_->resolve(p, path, follow_last);
  }

  // --- interposition introspection -----------------------------------------
  // Transparent: whether the *stack* is an interposer is a property of the
  // layers below (fakeroot overrides these to model LD_PRELOAD vs ptrace).
  bool is_interposer() const override { return inner_->is_interposer(); }
  bool wraps_statically_linked() const override {
    return inner_->wraps_statically_linked();
  }
  std::shared_ptr<Syscalls> interposer_inner() const override {
    return inner_;
  }

 protected:
  const std::shared_ptr<Syscalls>& inner() const { return inner_; }

 private:
  std::shared_ptr<Syscalls> inner_;
};

// A layer factory: builders thread vectors of these through their options so
// callers can push arbitrary interposition layers (tracing, fault injection,
// future caching/batching) under the container's syscall stack.
using SyscallLayerFn =
    std::function<std::shared_ptr<Syscalls>(std::shared_ptr<Syscalls>)>;

// Number of interposition layers stacked above the real kernel
// implementation (0 for a bare KernelSyscalls). Safe to call on any layer:
// each filter owns its inner via shared_ptr, so the chain outlives the walk.
inline int interposition_depth(const Syscalls* top) {
  int depth = 0;
  const Syscalls* cur = top;
  while (cur != nullptr) {
    const auto in = cur->interposer_inner();
    if (in == nullptr) break;
    ++depth;
    cur = in.get();
  }
  return depth;
}

}  // namespace minicon::kernel
