// The syscall boundary.
//
// Shell builtins, package managers, and builders act on the world only
// through this interface, exactly as real programs act only through
// syscalls. Two implementations exist:
//   * KernelSyscalls — the real rules (permission checks, ID translation,
//     namespace semantics, Linux errnos).
//   * fakeroot::FakerootSyscalls — the §5 interposition wrapper that fakes
//     privileged metadata operations and remembers its lies.
// A process carries a shared_ptr<Syscalls>; wrapping it is LD_PRELOAD.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kernel/mountns.hpp"
#include "kernel/process.hpp"
#include "kernel/userns.hpp"
#include "support/result.hpp"
#include "vfs/filesystem.hpp"

namespace minicon::kernel {

// access(2) masks.
inline constexpr int kReadOk = 4;
inline constexpr int kWriteOk = 2;
inline constexpr int kExecOk = 1;

// Resolved path location: which mount, which inode.
struct Loc {
  const Mount* mnt = nullptr;
  vfs::InodeNum ino = 0;
  std::string abs_path;
};

class Syscalls {
 public:
  virtual ~Syscalls() = default;

  // --- file metadata & data -------------------------------------------
  virtual Result<vfs::Stat> stat(Process& p, const std::string& path) = 0;
  virtual Result<vfs::Stat> lstat(Process& p, const std::string& path) = 0;
  virtual Result<std::string> read_file(Process& p,
                                        const std::string& path) = 0;
  virtual VoidResult write_file(Process& p, const std::string& path,
                                std::string data, bool append,
                                std::uint32_t create_mode = 0644) = 0;
  virtual Result<std::vector<vfs::DirEntry>> readdir(
      Process& p, const std::string& path) = 0;
  virtual Result<std::string> readlink(Process& p,
                                       const std::string& path) = 0;
  virtual VoidResult mkdir(Process& p, const std::string& path,
                           std::uint32_t mode) = 0;
  virtual VoidResult mknod(Process& p, const std::string& path,
                           vfs::FileType type, std::uint32_t mode,
                           std::uint32_t dev_major, std::uint32_t dev_minor) = 0;
  virtual VoidResult symlink(Process& p, const std::string& target,
                             const std::string& linkpath) = 0;
  virtual VoidResult link(Process& p, const std::string& oldpath,
                          const std::string& newpath) = 0;
  virtual VoidResult unlink(Process& p, const std::string& path) = 0;
  virtual VoidResult rmdir(Process& p, const std::string& path) = 0;
  virtual VoidResult rename(Process& p, const std::string& oldpath,
                            const std::string& newpath) = 0;
  // uid/gid are namespace-visible IDs (vfs::kNoChangeId = leave unchanged).
  virtual VoidResult chown(Process& p, const std::string& path, Uid uid,
                           Gid gid, bool follow) = 0;
  virtual VoidResult chmod(Process& p, const std::string& path,
                           std::uint32_t mode) = 0;
  virtual VoidResult access(Process& p, const std::string& path, int mask) = 0;
  virtual VoidResult chdir(Process& p, const std::string& path) = 0;

  virtual VoidResult set_xattr(Process& p, const std::string& path,
                               const std::string& name,
                               const std::string& value) = 0;
  virtual Result<std::string> get_xattr(Process& p, const std::string& path,
                                        const std::string& name) = 0;
  virtual Result<std::vector<std::string>> list_xattrs(
      Process& p, const std::string& path) = 0;
  virtual VoidResult remove_xattr(Process& p, const std::string& path,
                                  const std::string& name) = 0;

  // --- identity ---------------------------------------------------------
  virtual Uid getuid(Process& p) = 0;
  virtual Uid geteuid(Process& p) = 0;
  virtual Gid getgid(Process& p) = 0;
  virtual Gid getegid(Process& p) = 0;
  virtual std::vector<Gid> getgroups(Process& p) = 0;
  virtual VoidResult setuid(Process& p, Uid uid) = 0;
  virtual VoidResult setgid(Process& p, Gid gid) = 0;
  virtual VoidResult setresuid(Process& p, Uid r, Uid e, Uid s) = 0;
  virtual VoidResult setresgid(Process& p, Gid r, Gid e, Gid s) = 0;
  virtual VoidResult seteuid(Process& p, Uid e) = 0;
  virtual VoidResult setegid(Process& p, Gid e) = 0;
  virtual VoidResult setgroups(Process& p, const std::vector<Gid>& groups) = 0;

  // --- namespaces & mounts -----------------------------------------------
  virtual VoidResult unshare_userns(Process& p) = 0;
  virtual VoidResult unshare_mountns(Process& p) = 0;
  virtual VoidResult write_uid_map(Process& writer, const UserNsPtr& target,
                                   IdMap map) = 0;
  virtual VoidResult write_gid_map(Process& writer, const UserNsPtr& target,
                                   IdMap map) = 0;
  virtual VoidResult write_setgroups(Process& writer, const UserNsPtr& target,
                                     UserNamespace::SetgroupsPolicy policy) = 0;
  // §6.2.4: kernel-managed unprivileged full maps — installs
  // {0 <- caller, 1..65536 <- guaranteed-unique pool} into the caller's
  // (fresh) namespace without helpers. ENOSYS unless the sysctl
  // unprivileged_auto_maps is enabled.
  virtual VoidResult userns_auto_map(Process& p) = 0;
  virtual VoidResult mount(Process& p, Mount m) = 0;
  virtual VoidResult umount(Process& p, const std::string& mountpoint) = 0;
  virtual VoidResult bind_mount(Process& p, const std::string& src,
                                const std::string& dst, bool read_only) = 0;

  // --- resolution (for runtimes/builders that need (fs, inode)) ----------
  virtual Result<Loc> resolve(Process& p, const std::string& path,
                              bool follow_last) = 0;

  // --- interposition introspection ----------------------------------------
  // Fakeroot-style wrappers override these; the command dispatcher uses them
  // to model LD_PRELOAD's inability to wrap statically-linked executables
  // (Table 1: LD_PRELOAD "any arch, no statics"; ptrace the reverse).
  virtual bool is_interposer() const { return false; }
  virtual bool wraps_statically_linked() const { return true; }
  virtual std::shared_ptr<Syscalls> interposer_inner() const { return nullptr; }
};

class Kernel;

// The real implementation. One instance per Kernel.
class KernelSyscalls : public Syscalls {
 public:
  explicit KernelSyscalls(Kernel* kernel) : kernel_(kernel) {}

  Result<vfs::Stat> stat(Process& p, const std::string& path) override;
  Result<vfs::Stat> lstat(Process& p, const std::string& path) override;
  Result<std::string> read_file(Process& p, const std::string& path) override;
  VoidResult write_file(Process& p, const std::string& path, std::string data,
                        bool append, std::uint32_t create_mode) override;
  Result<std::vector<vfs::DirEntry>> readdir(Process& p,
                                             const std::string& path) override;
  Result<std::string> readlink(Process& p, const std::string& path) override;
  VoidResult mkdir(Process& p, const std::string& path,
                   std::uint32_t mode) override;
  VoidResult mknod(Process& p, const std::string& path, vfs::FileType type,
                   std::uint32_t mode, std::uint32_t dev_major,
                   std::uint32_t dev_minor) override;
  VoidResult symlink(Process& p, const std::string& target,
                     const std::string& linkpath) override;
  VoidResult link(Process& p, const std::string& oldpath,
                  const std::string& newpath) override;
  VoidResult unlink(Process& p, const std::string& path) override;
  VoidResult rmdir(Process& p, const std::string& path) override;
  VoidResult rename(Process& p, const std::string& oldpath,
                    const std::string& newpath) override;
  VoidResult chown(Process& p, const std::string& path, Uid uid, Gid gid,
                   bool follow) override;
  VoidResult chmod(Process& p, const std::string& path,
                   std::uint32_t mode) override;
  VoidResult access(Process& p, const std::string& path, int mask) override;
  VoidResult chdir(Process& p, const std::string& path) override;

  VoidResult set_xattr(Process& p, const std::string& path,
                       const std::string& name,
                       const std::string& value) override;
  Result<std::string> get_xattr(Process& p, const std::string& path,
                                const std::string& name) override;
  Result<std::vector<std::string>> list_xattrs(
      Process& p, const std::string& path) override;
  VoidResult remove_xattr(Process& p, const std::string& path,
                          const std::string& name) override;

  Uid getuid(Process& p) override;
  Uid geteuid(Process& p) override;
  Gid getgid(Process& p) override;
  Gid getegid(Process& p) override;
  std::vector<Gid> getgroups(Process& p) override;
  VoidResult setuid(Process& p, Uid uid) override;
  VoidResult setgid(Process& p, Gid gid) override;
  VoidResult setresuid(Process& p, Uid r, Uid e, Uid s) override;
  VoidResult setresgid(Process& p, Gid r, Gid e, Gid s) override;
  VoidResult seteuid(Process& p, Uid e) override;
  VoidResult setegid(Process& p, Gid e) override;
  VoidResult setgroups(Process& p, const std::vector<Gid>& groups) override;

  VoidResult unshare_userns(Process& p) override;
  VoidResult unshare_mountns(Process& p) override;
  VoidResult write_uid_map(Process& writer, const UserNsPtr& target,
                           IdMap map) override;
  VoidResult write_gid_map(Process& writer, const UserNsPtr& target,
                           IdMap map) override;
  VoidResult write_setgroups(Process& writer, const UserNsPtr& target,
                             UserNamespace::SetgroupsPolicy policy) override;
  VoidResult userns_auto_map(Process& p) override;
  VoidResult mount(Process& p, Mount m) override;
  VoidResult umount(Process& p, const std::string& mountpoint) override;
  VoidResult bind_mount(Process& p, const std::string& src,
                        const std::string& dst, bool read_only) override;

  Result<Loc> resolve(Process& p, const std::string& path,
                      bool follow_last) override;

 private:
  struct ParentLoc {
    const Mount* mnt = nullptr;
    vfs::InodeNum dir_ino = 0;
    std::string leaf;
    std::string abs_dir;
  };

  Result<Loc> walk(Process& p, const std::string& path, bool follow_last,
                   int depth);
  // Resolves the parent directory of `path` and the final component;
  // requires write+search permission checks to be done by the caller.
  Result<ParentLoc> resolve_parent(Process& p, const std::string& path);

  vfs::OpCtx op_ctx(const Process& p) const;
  // POSIX user/group/other first-match check plus capability overrides.
  bool may_access(const Process& p, const Mount& mnt, const vfs::Stat& st,
                  int mask) const;
  VoidResult check_write_dir(Process& p, const Mount& mnt,
                             vfs::InodeNum dir_ino);
  VoidResult check_sticky_delete(Process& p, const Mount& mnt,
                                 vfs::InodeNum dir_ino, vfs::InodeNum victim);
  // Caps granted over a target namespace (ns_capable).
  bool capable(const Process& p, const UserNamespace& target, Cap c) const;
  // Drops capability state when a root process becomes non-root.
  void maybe_drop_caps(Process& p, Uid old_euid_view) const;
  Result<std::string> proc_special(Process& p, const std::string& abs) const;

  Kernel* kernel_;
};

}  // namespace minicon::kernel
