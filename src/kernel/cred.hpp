// Process credentials and capabilities.
//
// All IDs stored here are *kernel* (host / initial-namespace) IDs, exactly
// like kuid_t/kgid_t in Linux; translation to namespace-visible IDs happens
// at the syscall boundary. Capabilities are held relative to the process's
// own user namespace.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "kernel/ids.hpp"

namespace minicon::kernel {

enum class Cap : std::uint8_t {
  kChown = 0,
  kDacOverride,
  kDacReadSearch,
  kFowner,
  kFsetid,
  kKill,
  kSetGid,
  kSetUid,
  kSetPcap,
  kNetBindService,
  kNetAdmin,
  kSysChroot,
  kSysAdmin,
  kMknod,
  kAuditWrite,
  kSetFcap,
  kCount,  // sentinel
};

class CapSet {
 public:
  constexpr CapSet() = default;

  constexpr bool has(Cap c) const noexcept {
    return (bits_ & bit(c)) != 0;
  }
  constexpr void add(Cap c) noexcept { bits_ |= bit(c); }
  constexpr void remove(Cap c) noexcept { bits_ &= ~bit(c); }
  constexpr bool empty() const noexcept { return bits_ == 0; }
  constexpr void clear() noexcept { bits_ = 0; }

  static constexpr CapSet all() noexcept {
    CapSet s;
    s.bits_ = (std::uint64_t{1} << static_cast<int>(Cap::kCount)) - 1;
    return s;
  }
  static constexpr CapSet none() noexcept { return CapSet{}; }

  friend constexpr bool operator==(CapSet a, CapSet b) noexcept {
    return a.bits_ == b.bits_;
  }

 private:
  static constexpr std::uint64_t bit(Cap c) noexcept {
    return std::uint64_t{1} << static_cast<int>(c);
  }
  std::uint64_t bits_ = 0;
};

struct Credentials {
  // Real, effective, saved, filesystem UIDs — kernel IDs.
  Uid ruid = 0, euid = 0, suid = 0, fsuid = 0;
  Gid rgid = 0, egid = 0, sgid = 0, fsgid = 0;
  std::vector<Gid> groups;  // supplementary groups, kernel IDs
  CapSet effective;

  void set_all_uids(Uid u) { ruid = euid = suid = fsuid = u; }
  void set_all_gids(Gid g) { rgid = egid = sgid = fsgid = g; }

  bool in_group(Gid g) const {
    if (g == fsgid) return true;
    return std::find(groups.begin(), groups.end(), g) != groups.end();
  }

  // Fully-privileged root credentials in some namespace.
  static Credentials root() {
    Credentials c;
    c.effective = CapSet::all();
    return c;
  }

  // Ordinary unprivileged user.
  static Credentials user(Uid uid, Gid gid, std::vector<Gid> supplementary = {}) {
    Credentials c;
    c.set_all_uids(uid);
    c.set_all_gids(gid);
    c.groups = std::move(supplementary);
    c.effective = CapSet::none();
    return c;
  }
};

}  // namespace minicon::kernel
