#include "kernel/userns.hpp"

namespace minicon::kernel {

UserNsPtr UserNamespace::make_init() {
  auto ns = UserNsPtr(new UserNamespace());
  ns->uid_map_ = IdMap::identity();
  ns->gid_map_ = IdMap::identity();
  ns->gid_map_written_ = true;
  return ns;
}

UserNsPtr UserNamespace::make_child(UserNsPtr parent, Uid owner_kuid,
                                    Gid owner_kgid) {
  auto ns = UserNsPtr(new UserNamespace());
  ns->depth_ = parent->depth_ + 1;
  ns->parent_ = std::move(parent);
  ns->owner_kuid_ = owner_kuid;
  ns->owner_kgid_ = owner_kgid;
  return ns;
}

bool UserNamespace::install_uid_map(IdMap map) {
  if (uid_map_set() || !map.valid() || map.empty()) return false;
  uid_map_ = std::move(map);
  return true;
}

bool UserNamespace::install_gid_map(IdMap map) {
  if (gid_map_set() || !map.valid() || map.empty()) return false;
  gid_map_ = std::move(map);
  gid_map_written_ = true;
  return true;
}

bool UserNamespace::set_setgroups(SetgroupsPolicy p) {
  if (gid_map_written_) return false;  // kernel: immutable once map written
  if (setgroups_ == SetgroupsPolicy::kDeny && p == SetgroupsPolicy::kAllow) {
    return false;  // deny is sticky
  }
  setgroups_ = p;
  return true;
}

std::optional<Uid> UserNamespace::uid_to_kernel(Uid inside) const {
  auto in_parent = uid_map_.to_outside(inside);
  if (!in_parent) return std::nullopt;
  if (parent_ == nullptr) return in_parent;
  return parent_->uid_to_kernel(*in_parent);
}

std::optional<Gid> UserNamespace::gid_to_kernel(Gid inside) const {
  auto in_parent = gid_map_.to_outside(inside);
  if (!in_parent) return std::nullopt;
  if (parent_ == nullptr) return in_parent;
  return parent_->gid_to_kernel(*in_parent);
}

std::optional<Uid> UserNamespace::uid_from_kernel(Uid kuid) const {
  if (parent_ == nullptr) return uid_map_.to_inside(kuid);
  auto in_parent = parent_->uid_from_kernel(kuid);
  if (!in_parent) return std::nullopt;
  return uid_map_.to_inside(*in_parent);
}

std::optional<Gid> UserNamespace::gid_from_kernel(Gid kgid) const {
  if (parent_ == nullptr) return gid_map_.to_inside(kgid);
  auto in_parent = parent_->gid_from_kernel(kgid);
  if (!in_parent) return std::nullopt;
  return gid_map_.to_inside(*in_parent);
}

bool UserNamespace::is_descendant_of(const UserNamespace& maybe_ancestor) const {
  const UserNamespace* cur = this;
  while (cur != nullptr) {
    if (cur == &maybe_ancestor) return true;
    cur = cur->parent_.get();
  }
  return false;
}

}  // namespace minicon::kernel
