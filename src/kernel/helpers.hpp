// Privileged user-namespace setup helpers: newuidmap(1) / newgidmap(1).
//
// These model the shadow-utils binaries installed with CAP_SETUID /
// CAP_SETGID file capabilities (§2.1.2, §4.1). They are the security
// boundary of the Type II approach: an unprivileged invoker asks for a map,
// the helper validates it against the administrator's /etc/subuid and
// /etc/subgid, and only then installs it with privilege. The well-known
// failure mode — not disabling setgroups(2) when acting for an unprivileged
// user (CVE-2018-7169) — is available behind a flag for the regression test.
#pragma once

#include "kernel/kernel.hpp"
#include "kernel/process.hpp"
#include "kernel/userns.hpp"

namespace minicon::kernel {

struct HelperConfig {
  // Reproduce the CVE-2018-7169 behavior: skip the setgroups hardening.
  bool newgidmap_cve_2018_7169 = false;
  std::string subuid_path = "/etc/subuid";
  std::string subgid_path = "/etc/subgid";
  std::string passwd_path = "/etc/passwd";
};

// Installs `entries` as the UID map of `target`, on behalf of `invoker`.
// Each entry must either be the invoker's own UID (count 1) or fall entirely
// within a subuid range granted to the invoker. Errors: EPERM (not granted),
// EINVAL (malformed/overlapping), ENOENT (config missing).
VoidResult newuidmap(Kernel& kernel, Process& invoker, const UserNsPtr& target,
                     const std::vector<IdMapEntry>& entries,
                     const HelperConfig& cfg = {});

// GID analogue. The fixed helper denies setgroups(2) in the target namespace
// before installing a map that is not fully covered by administrator
// /etc/subgid grants.
VoidResult newgidmap(Kernel& kernel, Process& invoker, const UserNsPtr& target,
                     const std::vector<IdMapEntry>& entries,
                     const HelperConfig& cfg = {});

}  // namespace minicon::kernel
