#include "kernel/trace.hpp"

#include "support/transcript.hpp"

namespace minicon::kernel {

void SyscallStats::record(const std::string& op, Err e) {
  std::lock_guard<std::mutex> lock(mu_);
  OpCounter& c = ops_[op];
  ++c.calls;
  if (e != Err::none) {
    ++c.errors;
    ++c.errnos[e];
  }
}

SyscallStats::Totals SyscallStats::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  Totals t;
  for (const auto& [op, c] : ops_) {
    t.calls += c.calls;
    t.errors += c.errors;
    for (const auto& [e, n] : c.errnos) t.errnos[e] += n;
  }
  return t;
}

std::map<std::string, SyscallStats::OpCounter> SyscallStats::by_op() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

std::uint64_t SyscallStats::calls(const std::string& op) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ops_.find(op);
  return it == ops_.end() ? 0 : it->second.calls;
}

std::uint64_t SyscallStats::errno_count(Err e) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [op, c] : ops_) {
    auto it = c.errnos.find(e);
    if (it != c.errnos.end()) n += it->second;
  }
  return n;
}

void SyscallStats::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ops_.clear();
}

std::string SyscallStats::errno_summary(const Totals& before,
                                        const Totals& after) {
  std::string out;
  for (const auto& [e, n] : after.errnos) {
    std::uint64_t prev = 0;
    if (auto it = before.errnos.find(e); it != before.errnos.end()) {
      prev = it->second;
    }
    if (n <= prev) continue;
    if (!out.empty()) out += ' ';
    out += std::string(err_name(e)) + " x" + std::to_string(n - prev);
  }
  return out;
}

TraceSyscalls::TraceSyscalls(std::shared_ptr<Syscalls> inner,
                             SyscallStatsPtr stats, TraceOptions options)
    : SyscallFilter(std::move(inner)),
      stats_(std::move(stats)),
      options_(options) {
  if (stats_ == nullptr) stats_ = std::make_shared<SyscallStats>();
}

void TraceSyscalls::note(const char* op, const std::string& detail, Err e) {
  stats_->record(op, e);
  if (options_.transcript == nullptr) return;
  if (e == Err::none && !options_.log_success) return;
  std::string line = std::string(op) + "(\"" + detail + "\")";
  line += e == Err::none ? " = 0" : " = -1 " + std::string(err_name(e));
  options_.transcript->line(std::move(line));
}

namespace {

// Extracts the errno from Result<T>/VoidResult uniformly.
template <typename R>
Err error_of(const R& r) {
  return r.ok() ? Err::none : r.error();
}

}  // namespace

// Forward through the filter base, then record the observed outcome.
#define MINICON_TRACE(op, detail, call) \
  auto r = SyscallFilter::call;         \
  note(op, detail, error_of(r));        \
  return r

Result<vfs::Stat> TraceSyscalls::stat(Process& p, const std::string& path) {
  MINICON_TRACE("stat", path, stat(p, path));
}
Result<vfs::Stat> TraceSyscalls::lstat(Process& p, const std::string& path) {
  MINICON_TRACE("lstat", path, lstat(p, path));
}
Result<std::string> TraceSyscalls::read_file(Process& p,
                                             const std::string& path) {
  MINICON_TRACE("read", path, read_file(p, path));
}
VoidResult TraceSyscalls::write_file(Process& p, const std::string& path,
                                     std::string data, bool append,
                                     std::uint32_t create_mode) {
  MINICON_TRACE("write", path,
                write_file(p, path, std::move(data), append, create_mode));
}
Result<std::vector<vfs::DirEntry>> TraceSyscalls::readdir(
    Process& p, const std::string& path) {
  MINICON_TRACE("readdir", path, readdir(p, path));
}
Result<std::string> TraceSyscalls::readlink(Process& p,
                                            const std::string& path) {
  MINICON_TRACE("readlink", path, readlink(p, path));
}
VoidResult TraceSyscalls::mkdir(Process& p, const std::string& path,
                                std::uint32_t mode) {
  MINICON_TRACE("mkdir", path, mkdir(p, path, mode));
}
VoidResult TraceSyscalls::mknod(Process& p, const std::string& path,
                                vfs::FileType type, std::uint32_t mode,
                                std::uint32_t dev_major,
                                std::uint32_t dev_minor) {
  MINICON_TRACE("mknod", path,
                mknod(p, path, type, mode, dev_major, dev_minor));
}
VoidResult TraceSyscalls::symlink(Process& p, const std::string& target,
                                  const std::string& linkpath) {
  MINICON_TRACE("symlink", linkpath, symlink(p, target, linkpath));
}
VoidResult TraceSyscalls::link(Process& p, const std::string& oldpath,
                               const std::string& newpath) {
  MINICON_TRACE("link", newpath, link(p, oldpath, newpath));
}
VoidResult TraceSyscalls::unlink(Process& p, const std::string& path) {
  MINICON_TRACE("unlink", path, unlink(p, path));
}
VoidResult TraceSyscalls::rmdir(Process& p, const std::string& path) {
  MINICON_TRACE("rmdir", path, rmdir(p, path));
}
VoidResult TraceSyscalls::rename(Process& p, const std::string& oldpath,
                                 const std::string& newpath) {
  MINICON_TRACE("rename", oldpath, rename(p, oldpath, newpath));
}
VoidResult TraceSyscalls::chown(Process& p, const std::string& path, Uid uid,
                                Gid gid, bool follow) {
  MINICON_TRACE("chown", path, chown(p, path, uid, gid, follow));
}
VoidResult TraceSyscalls::chmod(Process& p, const std::string& path,
                                std::uint32_t mode) {
  MINICON_TRACE("chmod", path, chmod(p, path, mode));
}
VoidResult TraceSyscalls::access(Process& p, const std::string& path,
                                 int mask) {
  MINICON_TRACE("access", path, access(p, path, mask));
}
VoidResult TraceSyscalls::chdir(Process& p, const std::string& path) {
  MINICON_TRACE("chdir", path, chdir(p, path));
}

VoidResult TraceSyscalls::set_xattr(Process& p, const std::string& path,
                                    const std::string& name,
                                    const std::string& value) {
  MINICON_TRACE("setxattr", path, set_xattr(p, path, name, value));
}
Result<std::string> TraceSyscalls::get_xattr(Process& p,
                                             const std::string& path,
                                             const std::string& name) {
  MINICON_TRACE("getxattr", path, get_xattr(p, path, name));
}
Result<std::vector<std::string>> TraceSyscalls::list_xattrs(
    Process& p, const std::string& path) {
  MINICON_TRACE("listxattr", path, list_xattrs(p, path));
}
VoidResult TraceSyscalls::remove_xattr(Process& p, const std::string& path,
                                       const std::string& name) {
  MINICON_TRACE("removexattr", path, remove_xattr(p, path, name));
}

Uid TraceSyscalls::getuid(Process& p) {
  note("getuid", "", Err::none);
  return SyscallFilter::getuid(p);
}
Uid TraceSyscalls::geteuid(Process& p) {
  note("geteuid", "", Err::none);
  return SyscallFilter::geteuid(p);
}
Gid TraceSyscalls::getgid(Process& p) {
  note("getgid", "", Err::none);
  return SyscallFilter::getgid(p);
}
Gid TraceSyscalls::getegid(Process& p) {
  note("getegid", "", Err::none);
  return SyscallFilter::getegid(p);
}
std::vector<Gid> TraceSyscalls::getgroups(Process& p) {
  note("getgroups", "", Err::none);
  return SyscallFilter::getgroups(p);
}
VoidResult TraceSyscalls::setuid(Process& p, Uid uid) {
  MINICON_TRACE("setuid", std::to_string(uid), setuid(p, uid));
}
VoidResult TraceSyscalls::setgid(Process& p, Gid gid) {
  MINICON_TRACE("setgid", std::to_string(gid), setgid(p, gid));
}
VoidResult TraceSyscalls::setresuid(Process& p, Uid ru, Uid eu, Uid su) {
  MINICON_TRACE("setresuid", std::to_string(eu), setresuid(p, ru, eu, su));
}
VoidResult TraceSyscalls::setresgid(Process& p, Gid rg, Gid eg, Gid sg) {
  MINICON_TRACE("setresgid", std::to_string(eg), setresgid(p, rg, eg, sg));
}
VoidResult TraceSyscalls::seteuid(Process& p, Uid e) {
  MINICON_TRACE("seteuid", std::to_string(e), seteuid(p, e));
}
VoidResult TraceSyscalls::setegid(Process& p, Gid e) {
  MINICON_TRACE("setegid", std::to_string(e), setegid(p, e));
}
VoidResult TraceSyscalls::setgroups(Process& p,
                                    const std::vector<Gid>& groups) {
  MINICON_TRACE("setgroups", std::to_string(groups.size()),
                setgroups(p, groups));
}

VoidResult TraceSyscalls::unshare_userns(Process& p) {
  MINICON_TRACE("unshare", "CLONE_NEWUSER", unshare_userns(p));
}
VoidResult TraceSyscalls::unshare_mountns(Process& p) {
  MINICON_TRACE("unshare", "CLONE_NEWNS", unshare_mountns(p));
}
VoidResult TraceSyscalls::write_uid_map(Process& writer,
                                        const UserNsPtr& target, IdMap map) {
  MINICON_TRACE("write", "/proc/self/uid_map",
                write_uid_map(writer, target, std::move(map)));
}
VoidResult TraceSyscalls::write_gid_map(Process& writer,
                                        const UserNsPtr& target, IdMap map) {
  MINICON_TRACE("write", "/proc/self/gid_map",
                write_gid_map(writer, target, std::move(map)));
}
VoidResult TraceSyscalls::write_setgroups(
    Process& writer, const UserNsPtr& target,
    UserNamespace::SetgroupsPolicy policy) {
  MINICON_TRACE("write", "/proc/self/setgroups",
                write_setgroups(writer, target, policy));
}
VoidResult TraceSyscalls::userns_auto_map(Process& p) {
  MINICON_TRACE("userns_auto_map", "", userns_auto_map(p));
}
VoidResult TraceSyscalls::mount(Process& p, Mount m) {
  const std::string where = m.mountpoint;
  MINICON_TRACE("mount", where, mount(p, std::move(m)));
}
VoidResult TraceSyscalls::umount(Process& p, const std::string& mountpoint) {
  MINICON_TRACE("umount", mountpoint, umount(p, mountpoint));
}
VoidResult TraceSyscalls::bind_mount(Process& p, const std::string& src,
                                     const std::string& dst, bool read_only) {
  MINICON_TRACE("mount", dst, bind_mount(p, src, dst, read_only));
}

Result<Loc> TraceSyscalls::resolve(Process& p, const std::string& path,
                                   bool follow_last) {
  // resolve() is an internal helper, not a syscall; pass through silently so
  // counters reflect what a real strace would see.
  return SyscallFilter::resolve(p, path, follow_last);
}

#undef MINICON_TRACE

}  // namespace minicon::kernel
