#include "kernel/userdb.hpp"

#include "support/strings.hpp"

namespace minicon::kernel {

PasswdDb PasswdDb::parse(const std::string& text) {
  PasswdDb db;
  for (const auto& raw : split(text, '\n')) {
    const std::string line(trim(raw));
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split(line, ':');
    if (fields.size() < 4) continue;
    PasswdEntry e;
    e.name = fields[0];
    if (!parse_u32(fields[2], e.uid)) continue;
    if (!parse_u32(fields[3], e.gid)) continue;
    if (fields.size() > 4) e.gecos = fields[4];
    if (fields.size() > 5) e.home = fields[5];
    if (fields.size() > 6) e.shell = fields[6];
    db.entries_.push_back(std::move(e));
  }
  return db;
}

std::string PasswdDb::format() const {
  std::string out;
  for (const auto& e : entries_) {
    out += e.name + ":x:" + std::to_string(e.uid) + ":" +
           std::to_string(e.gid) + ":" + e.gecos + ":" + e.home + ":" +
           e.shell + "\n";
  }
  return out;
}

std::optional<PasswdEntry> PasswdDb::by_name(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return e;
  }
  return std::nullopt;
}

std::optional<PasswdEntry> PasswdDb::by_uid(Uid uid) const {
  for (const auto& e : entries_) {
    if (e.uid == uid) return e;
  }
  return std::nullopt;
}

GroupDb GroupDb::parse(const std::string& text) {
  GroupDb db;
  for (const auto& raw : split(text, '\n')) {
    const std::string line(trim(raw));
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split(line, ':');
    if (fields.size() < 3) continue;
    GroupEntry e;
    e.name = fields[0];
    if (!parse_u32(fields[2], e.gid)) continue;
    if (fields.size() > 3 && !fields[3].empty()) {
      e.members = split(fields[3], ',');
    }
    db.entries_.push_back(std::move(e));
  }
  return db;
}

std::string GroupDb::format() const {
  std::string out;
  for (const auto& e : entries_) {
    out += e.name + ":x:" + std::to_string(e.gid) + ":" + join(e.members, ",") +
           "\n";
  }
  return out;
}

std::optional<GroupEntry> GroupDb::by_name(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return e;
  }
  return std::nullopt;
}

std::optional<GroupEntry> GroupDb::by_gid(Gid gid) const {
  for (const auto& e : entries_) {
    if (e.gid == gid) return e;
  }
  return std::nullopt;
}

SubidDb SubidDb::parse(const std::string& text) {
  SubidDb db;
  for (const auto& raw : split(text, '\n')) {
    const std::string line(trim(raw));
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split(line, ':');
    if (fields.size() != 3) continue;
    SubidRange r;
    r.owner = fields[0];
    if (!parse_u32(fields[1], r.start)) continue;
    if (!parse_u32(fields[2], r.count)) continue;
    db.ranges_.push_back(std::move(r));
  }
  return db;
}

std::string SubidDb::format() const {
  std::string out;
  for (const auto& r : ranges_) {
    out += r.owner + ":" + std::to_string(r.start) + ":" +
           std::to_string(r.count) + "\n";
  }
  return out;
}

std::vector<SubidRange> SubidDb::ranges_for(const std::string& user,
                                            Uid uid) const {
  const std::string uid_str = std::to_string(uid);
  std::vector<SubidRange> out;
  for (const auto& r : ranges_) {
    if (r.owner == user || r.owner == uid_str) out.push_back(r);
  }
  return out;
}

bool SubidDb::covers(const std::string& user, Uid uid, std::uint32_t start,
                     std::uint32_t count) const {
  if (count == 0) return false;
  for (const auto& r : ranges_for(user, uid)) {
    if (start >= r.start && count <= r.count &&
        start - r.start <= r.count - count) {
      return true;
    }
  }
  return false;
}

}  // namespace minicon::kernel
