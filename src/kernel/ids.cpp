#include "kernel/ids.hpp"

#include <algorithm>

namespace minicon::kernel {

IdMap::IdMap(std::vector<IdMapEntry> entries) : entries_(std::move(entries)) {}

bool IdMap::valid() const noexcept {
  for (const auto& e : entries_) {
    if (e.count == 0) return false;
    // No wraparound.
    if (e.inside > UINT32_MAX - (e.count - 1)) return false;
    if (e.outside > UINT32_MAX - (e.count - 1)) return false;
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    for (std::size_t j = i + 1; j < entries_.size(); ++j) {
      const auto& a = entries_[i];
      const auto& b = entries_[j];
      const bool inside_overlap = a.inside < b.inside + b.count &&
                                  b.inside < a.inside + a.count;
      const bool outside_overlap = a.outside < b.outside + b.count &&
                                   b.outside < a.outside + a.count;
      if (inside_overlap || outside_overlap) return false;
    }
  }
  return true;
}

std::optional<std::uint32_t> IdMap::to_outside(
    std::uint32_t inside) const noexcept {
  for (const auto& e : entries_) {
    if (inside >= e.inside && inside - e.inside < e.count) {
      return e.outside + (inside - e.inside);
    }
  }
  return std::nullopt;
}

std::optional<std::uint32_t> IdMap::to_inside(
    std::uint32_t outside) const noexcept {
  for (const auto& e : entries_) {
    if (outside >= e.outside && outside - e.outside < e.count) {
      return e.inside + (outside - e.outside);
    }
  }
  return std::nullopt;
}

IdMap IdMap::identity() {
  return IdMap({{0, 0, UINT32_MAX}});
}

IdMap IdMap::single(std::uint32_t inside, std::uint32_t outside,
                    std::uint32_t count) {
  return IdMap({{inside, outside, count}});
}

std::string IdMap::format_proc() const {
  // The kernel prints "%10u %10u %10u\n" per entry; we keep the columns but
  // trim to a readable width.
  std::string out;
  for (const auto& e : entries_) {
    std::string line = std::to_string(e.inside);
    line.insert(0, line.size() < 10 ? 10 - line.size() : 0, ' ');
    std::string o = std::to_string(e.outside);
    o.insert(0, o.size() < 12 ? 12 - o.size() : 0, ' ');
    std::string c = std::to_string(e.count);
    c.insert(0, c.size() < 12 ? 12 - c.size() : 0, ' ');
    out += line + o + c + "\n";
  }
  return out;
}

}  // namespace minicon::kernel
