// UID/GID range maps (§2.1.1 of the paper).
//
// A user namespace is created with two one-to-one mappings between host
// ("outside", kernel) IDs and namespace ("inside") IDs. The kernel format is
// the familiar three-column /proc/<pid>/uid_map: inside outside count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/result.hpp"
#include "vfs/types.hpp"

namespace minicon::kernel {

using Uid = vfs::Uid;
using Gid = vfs::Gid;

struct IdMapEntry {
  std::uint32_t inside = 0;
  std::uint32_t outside = 0;
  std::uint32_t count = 1;
};

class IdMap {
 public:
  IdMap() = default;
  explicit IdMap(std::vector<IdMapEntry> entries);

  // An empty map is "unset": every translation fails (IDs appear as the
  // overflow ID 65534 and cannot be set).
  bool empty() const noexcept { return entries_.empty(); }
  const std::vector<IdMapEntry>& entries() const noexcept { return entries_; }

  // Validation before installing into a namespace: ranges must not overlap
  // on either side and counts must be nonzero.
  bool valid() const noexcept;

  // inside -> outside (namespace ID to host ID).
  std::optional<std::uint32_t> to_outside(std::uint32_t inside) const noexcept;
  // outside -> inside (host ID to namespace ID).
  std::optional<std::uint32_t> to_inside(std::uint32_t outside) const noexcept;

  // Identity map covering the whole ID space (the initial namespace).
  static IdMap identity();

  // Single-entry convenience.
  static IdMap single(std::uint32_t inside, std::uint32_t outside,
                      std::uint32_t count = 1);

  // Rendered like /proc/<pid>/uid_map (columns padded kernel-style).
  std::string format_proc() const;

 private:
  std::vector<IdMapEntry> entries_;
};

}  // namespace minicon::kernel
