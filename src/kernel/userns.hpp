// User namespaces (§2.1).
//
// A namespace holds a UID map and a GID map translating between its inside
// IDs and its parent's IDs; translation to kernel IDs walks the ancestor
// chain. Creation is unprivileged; *writing non-trivial maps* is the
// privileged step performed by helpers (newuidmap/newgidmap, §2.1.2), while
// an unprivileged process may install only the single-entry self-map
// (§2.1.3). The setgroups gate models /proc/<pid>/setgroups (§2.1.4).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "kernel/ids.hpp"

namespace minicon::kernel {

class UserNamespace;
using UserNsPtr = std::shared_ptr<UserNamespace>;

class UserNamespace : public std::enable_shared_from_this<UserNamespace> {
 public:
  enum class SetgroupsPolicy { kAllow, kDeny };

  // The initial ("host") namespace: identity maps, setgroups allowed.
  static UserNsPtr make_init();

  // A child namespace created by `owner_kuid`. Maps start empty (unset).
  static UserNsPtr make_child(UserNsPtr parent, Uid owner_kuid,
                              Gid owner_kgid);

  const UserNsPtr& parent() const noexcept { return parent_; }
  bool is_init() const noexcept { return parent_ == nullptr; }
  Uid owner_kuid() const noexcept { return owner_kuid_; }
  Gid owner_kgid() const noexcept { return owner_kgid_; }
  int depth() const noexcept { return depth_; }

  const IdMap& uid_map() const noexcept { return uid_map_; }
  const IdMap& gid_map() const noexcept { return gid_map_; }
  bool uid_map_set() const noexcept { return !uid_map_.empty(); }
  bool gid_map_set() const noexcept { return !gid_map_.empty(); }

  // Raw installation — permission checks live in the syscall layer. Each map
  // may be written only once (like the kernel). Returns false if already set
  // or invalid.
  bool install_uid_map(IdMap map);
  bool install_gid_map(IdMap map);

  SetgroupsPolicy setgroups_policy() const noexcept { return setgroups_; }
  // Like /proc/<pid>/setgroups: may not be re-enabled after the gid map is
  // written, and "deny" is sticky.
  bool set_setgroups(SetgroupsPolicy p);

  // Translate an inside ID of *this* namespace to a kernel ID by walking up
  // to the initial namespace. nullopt if unmapped anywhere on the chain.
  std::optional<Uid> uid_to_kernel(Uid inside) const;
  std::optional<Gid> gid_to_kernel(Gid inside) const;

  // Translate a kernel ID to this namespace's inside ID. nullopt if unmapped;
  // callers usually substitute the overflow ID 65534 for display.
  std::optional<Uid> uid_from_kernel(Uid kuid) const;
  std::optional<Gid> gid_from_kernel(Gid kgid) const;

  // Overflow-substituting display helpers.
  Uid uid_view(Uid kuid) const {
    return uid_from_kernel(kuid).value_or(vfs::kOverflowUid);
  }
  Gid gid_view(Gid kgid) const {
    return gid_from_kernel(kgid).value_or(vfs::kOverflowGid);
  }

  // True if `maybe_ancestor` is this namespace or an ancestor of it.
  bool is_descendant_of(const UserNamespace& maybe_ancestor) const;

  // Lifetime accounting against /proc/sys/user/max_user_namespaces: the
  // kernel hands a live-count on creation; the destructor releases it.
  void set_accounting(std::shared_ptr<std::atomic<std::int64_t>> counter) {
    accounting_ = std::move(counter);
    if (accounting_) accounting_->fetch_add(1);
  }
  ~UserNamespace() {
    if (accounting_) accounting_->fetch_sub(1);
  }

 private:
  UserNamespace() = default;

  UserNsPtr parent_;
  IdMap uid_map_;
  IdMap gid_map_;
  SetgroupsPolicy setgroups_ = SetgroupsPolicy::kAllow;
  bool gid_map_written_ = false;
  Uid owner_kuid_ = 0;
  Gid owner_kgid_ = 0;
  int depth_ = 0;
  std::shared_ptr<std::atomic<std::int64_t>> accounting_;
};

}  // namespace minicon::kernel
