#include "kernel/zeroconsistency.hpp"

#include "kernel/privilege.hpp"

namespace minicon::kernel {

ZeroConsistencySyscalls::ZeroConsistencySyscalls(
    std::shared_ptr<Syscalls> inner, ZeroConsistencyStatsPtr stats,
    obs::MetricsRegistry* metrics, obs::FlightRecorder* recorder)
    : SyscallFilter(std::move(inner)),
      stats_(stats != nullptr ? std::move(stats)
                              : std::make_shared<ZeroConsistencyStats>()),
      metrics_(metrics != nullptr ? metrics : &obs::global_metrics()),
      recorder_(recorder != nullptr ? recorder
                                    : &obs::global_flight_recorder()),
      faked_total_(&metrics_->counter("syscall.zeroconsistency.faked")),
      faked_chown_(&metrics_->counter("syscall.zeroconsistency.chown.faked")),
      faked_chmod_(&metrics_->counter("syscall.zeroconsistency.chmod.faked")),
      faked_mknod_(&metrics_->counter("syscall.zeroconsistency.mknod.faked")),
      faked_setid_(&metrics_->counter("syscall.zeroconsistency.setid.faked")),
      faked_xattr_(&metrics_->counter("syscall.zeroconsistency.xattr.faked")) {}

void ZeroConsistencySyscalls::faked(const char* op, const std::string& path,
                                    std::atomic<std::uint64_t>& category,
                                    obs::Counter* op_counter) {
  category.fetch_add(1, std::memory_order_relaxed);
  faked_total_->add();
  op_counter->add();
  if (recorder_->enabled()) {
    recorder_->record_error(obs::FlightKind::kPrivilegeFaked, op, "FAKED",
                            path);
  }
}

VoidResult ZeroConsistencySyscalls::chown(Process&, const std::string& path,
                                          Uid, Gid, bool) {
  // Fired on the syscall number alone, like seccomp-BPF: the path is never
  // resolved, so chown of a nonexistent file "succeeds" too.
  faked("chown", path, stats_->chown, faked_chown_);
  return {};
}

VoidResult ZeroConsistencySyscalls::chmod(Process& p, const std::string& path,
                                          std::uint32_t mode) {
  if (!privileged_mode_bits(mode)) return inner()->chmod(p, path, mode);
  // Setuid/setgid request: fake success without executing — even the
  // unprivileged permission bits stay whatever they were.
  faked("chmod", path, stats_->chmod_setid, faked_chmod_);
  return {};
}

VoidResult ZeroConsistencySyscalls::mknod(Process& p, const std::string& path,
                                          vfs::FileType type,
                                          std::uint32_t mode,
                                          std::uint32_t dev_major,
                                          std::uint32_t dev_minor) {
  if (!privileged_node_type(type)) {
    return inner()->mknod(p, path, type, mode, dev_major, dev_minor);
  }
  // No node of any kind is created (contrast fakeroot, which creates a
  // regular file and remembers what it pretends to be).
  faked("mknod", path, stats_->mknod_dev, faked_mknod_);
  return {};
}

VoidResult ZeroConsistencySyscalls::set_xattr(Process& p,
                                              const std::string& path,
                                              const std::string& name,
                                              const std::string& value) {
  if (!privileged_xattr_name(name)) {
    return inner()->set_xattr(p, path, name, value);
  }
  faked("setxattr", path, stats_->xattr, faked_xattr_);
  return {};
}

VoidResult ZeroConsistencySyscalls::remove_xattr(Process& p,
                                                 const std::string& path,
                                                 const std::string& name) {
  if (!privileged_xattr_name(name)) {
    return inner()->remove_xattr(p, path, name);
  }
  faked("removexattr", path, stats_->xattr, faked_xattr_);
  return {};
}

// Credential writes: all faked, none executed. Reads stay organic — in the
// Type III containers builders run this under, the single-entry map already
// presents uid 0, so there is no identity state to keep consistent.

VoidResult ZeroConsistencySyscalls::setuid(Process&, Uid) {
  faked("setuid", "", stats_->setid, faked_setid_);
  return {};
}

VoidResult ZeroConsistencySyscalls::setgid(Process&, Gid) {
  faked("setgid", "", stats_->setid, faked_setid_);
  return {};
}

VoidResult ZeroConsistencySyscalls::setresuid(Process&, Uid, Uid, Uid) {
  faked("setresuid", "", stats_->setid, faked_setid_);
  return {};
}

VoidResult ZeroConsistencySyscalls::setresgid(Process&, Gid, Gid, Gid) {
  faked("setresgid", "", stats_->setid, faked_setid_);
  return {};
}

VoidResult ZeroConsistencySyscalls::seteuid(Process&, Uid) {
  faked("seteuid", "", stats_->setid, faked_setid_);
  return {};
}

VoidResult ZeroConsistencySyscalls::setegid(Process&, Gid) {
  faked("setegid", "", stats_->setid, faked_setid_);
  return {};
}

VoidResult ZeroConsistencySyscalls::setgroups(Process&,
                                              const std::vector<Gid>&) {
  faked("setgroups", "", stats_->setid, faked_setid_);
  return {};
}

}  // namespace minicon::kernel
