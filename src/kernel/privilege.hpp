// Privileged-operation classification, shared by every root-emulation layer.
//
// Both the consistent emulator (fakeroot's FakerootSyscalls, which records
// lies in a FakeDb) and the zero-consistency emulator (ZeroConsistencySyscalls,
// which records nothing) must agree on *which* operations an unprivileged
// build cannot perform; only their answers differ. The predicates live here,
// in the kernel library, because fakeroot depends on kernel and not the
// other way around.
//
// The privileged-op set, per Priedhorsky et al. 2024 §3:
//   * chown(2)/lchown(2) — any ownership change;
//   * chmod(2) with setuid/setgid bits — the kernel silently strips or
//     rejects these for non-owners and unmapped ids;
//   * mknod(2) of character/block devices — requires CAP_MKNOD over the
//     *initial* namespace, never available in a Type III container;
//   * set*id(2)/setgroups(2) — credential changes to ids the single-entry
//     map cannot represent;
//   * xattrs in the security.* and trusted.* namespaces — setcap(8),
//     SELinux labels, and friends.
#pragma once

#include <string_view>

#include "vfs/types.hpp"

namespace minicon::kernel {

// security.* / trusted.* — namespaces an unprivileged process cannot
// generally write (security.capability needs CAP_SETFCAP, trusted.* needs
// init-namespace CAP_SYS_ADMIN). user.* and system.posix_acl_* pass.
inline bool privileged_xattr_name(std::string_view name) {
  return name.starts_with("security.") || name.starts_with("trusted.");
}

// True when `mode` carries setuid/setgid bits, the part of chmod(2) that an
// ID-squashed build cannot reproduce (the kernel drops setgid for
// non-members and refuses setuid on files the caller does not own).
inline bool privileged_mode_bits(std::uint32_t mode) {
  return (mode & (vfs::mode::kSetUid | vfs::mode::kSetGid)) != 0;
}

// Device nodes are the only mknod(2) flavour gated on CAP_MKNOD over the
// initial user namespace; fifos/sockets/regular files are unprivileged.
inline bool privileged_node_type(vfs::FileType type) {
  return type == vfs::FileType::CharDev || type == vfs::FileType::BlockDev;
}

}  // namespace minicon::kernel
