#include "kernel/syscalls.hpp"

#include <algorithm>

#include "kernel/kernel.hpp"
#include "support/path.hpp"

namespace minicon::kernel {

namespace {

constexpr int kMaxSymlinkDepth = 40;

bool id_is_nochange(std::uint32_t id) { return id == vfs::kNoChangeId; }

}  // namespace

vfs::OpCtx KernelSyscalls::op_ctx(const Process& p) const {
  vfs::OpCtx ctx;
  ctx.host_uid = p.cred.fsuid;
  ctx.host_gid = p.cred.fsgid;
  // "Privileged on the server" means real (initial-namespace) root: a shared
  // filesystem server only ever sees kernel IDs.
  ctx.host_privileged = p.cred.fsuid == 0;
  ctx.now = kernel_->tick();
  return ctx;
}

bool KernelSyscalls::capable(const Process& p, const UserNamespace& target,
                             Cap c) const {
  return p.cred.effective.has(c) && target.is_descendant_of(*p.userns);
}

namespace {

// privileged_wrt_inode_uidgid(): capability overrides only apply when the
// inode's IDs are representable in the caller's user namespace. This is why
// the Fig 5 unprivileged-Podman container cannot touch /proc files owned by
// (unmapped) host root even though it is "root" inside.
bool inode_ids_mapped(const Process& p, const vfs::Stat& st) {
  return p.userns->uid_from_kernel(st.uid).has_value() &&
         p.userns->gid_from_kernel(st.gid).has_value();
}

}  // namespace

bool KernelSyscalls::may_access(const Process& p, const Mount& mnt,
                                const vfs::Stat& st, int mask) const {
  // capable_wrt_inode_uidgid(): the check is against the *caller's* user
  // namespace plus a mapping requirement on the inode's IDs — not the
  // mount's owner. This is what lets rootless Podman's mapped root act on
  // its own storage even on a plain host filesystem (VFS driver, §4.1/§4.2).
  (void)mnt;
  if (capable(p, *p.userns, Cap::kDacOverride) && inode_ids_mapped(p, st)) {
    // Even CAP_DAC_OVERRIDE does not grant exec on a file with no x bit.
    if ((mask & kExecOk) != 0 && st.type == vfs::FileType::Regular &&
        (st.mode & 0111) == 0) {
      return false;
    }
    return true;
  }
  std::uint32_t bits;
  if (p.cred.fsuid == st.uid) {
    bits = st.mode >> 6;
  } else if (p.cred.in_group(st.gid)) {
    bits = st.mode >> 3;
  } else {
    bits = st.mode;
  }
  bits &= 7;
  if ((mask & kReadOk) != 0 && (bits & 4) == 0) return false;
  if ((mask & kWriteOk) != 0 && (bits & 2) == 0) return false;
  if ((mask & kExecOk) != 0 && (bits & 1) == 0) return false;
  return true;
}

Result<Loc> KernelSyscalls::walk(Process& p, const std::string& path,
                                 bool follow_last, int depth) {
  if (depth > kMaxSymlinkDepth) return Err::eloop;
  if (path.empty()) return Err::enoent;
  const std::string abs =
      path_is_absolute(path) ? path : path_join(p.cwd, path);
  const std::vector<std::string> comps = path_components(abs);

  const Mount* root_mnt = p.mountns->root_mount();
  if (root_mnt == nullptr) return Err::enoent;
  std::vector<Loc> stack;
  stack.push_back({root_mnt, root_mnt->root, "/"});

  for (std::size_t i = 0; i < comps.size(); ++i) {
    const std::string& comp = comps[i];
    Loc cur = stack.back();
    MINICON_TRY_ASSIGN(st, cur.mnt->fs->getattr(cur.ino));
    if (!st.is_dir()) return Err::enotdir;
    if (!may_access(p, *cur.mnt, st, kExecOk)) return Err::eacces;

    if (comp == "..") {
      if (stack.size() > 1) stack.pop_back();
      continue;
    }
    const std::string child_abs =
        cur.abs_path == "/" ? "/" + comp : cur.abs_path + "/" + comp;
    // Mount crossing: a mount at this exact path shadows the underlying
    // directory (which must still exist for the mount to have been made).
    if (const Mount* m = p.mountns->find_exact(child_abs)) {
      stack.push_back({m, m->root, child_abs});
      continue;
    }
    MINICON_TRY_ASSIGN(child, cur.mnt->fs->lookup(cur.ino, comp));
    MINICON_TRY_ASSIGN(cst, cur.mnt->fs->getattr(child));
    const bool last = i + 1 == comps.size();
    if (cst.is_symlink() && (!last || follow_last)) {
      MINICON_TRY_ASSIGN(target, cur.mnt->fs->readlink(child));
      std::string rest;
      for (std::size_t j = i + 1; j < comps.size(); ++j) {
        rest += "/";
        rest += comps[j];
      }
      const std::string base = path_is_absolute(target)
                                   ? target
                                   : path_join(cur.abs_path, target);
      return walk(p, base + rest, follow_last, depth + 1);
    }
    stack.push_back({cur.mnt, child, child_abs});
  }
  return stack.back();
}

Result<Loc> KernelSyscalls::resolve(Process& p, const std::string& path,
                                    bool follow_last) {
  return walk(p, path, follow_last, 0);
}

Result<KernelSyscalls::ParentLoc> KernelSyscalls::resolve_parent(
    Process& p, const std::string& path) {
  const std::string abs =
      path_normalize(path_is_absolute(path) ? path : path_join(p.cwd, path));
  if (abs == "/") return Err::eexist;
  const std::string dir = path_dirname(abs);
  const std::string leaf = path_basename(abs);
  if (leaf == "..") return Err::einval;
  MINICON_TRY_ASSIGN(loc, walk(p, dir, /*follow_last=*/true, 0));
  MINICON_TRY_ASSIGN(st, loc.mnt->fs->getattr(loc.ino));
  if (!st.is_dir()) return Err::enotdir;
  return ParentLoc{loc.mnt, loc.ino, leaf, loc.abs_path};
}

VoidResult KernelSyscalls::check_write_dir(Process& p, const Mount& mnt,
                                           vfs::InodeNum dir_ino) {
  if (mnt.read_only) return Err::erofs;
  MINICON_TRY_ASSIGN(st, mnt.fs->getattr(dir_ino));
  if (!may_access(p, mnt, st, kWriteOk | kExecOk)) return Err::eacces;
  return {};
}

VoidResult KernelSyscalls::check_sticky_delete(Process& p, const Mount& mnt,
                                               vfs::InodeNum dir_ino,
                                               vfs::InodeNum victim) {
  MINICON_TRY_ASSIGN(dst, mnt.fs->getattr(dir_ino));
  if ((dst.mode & vfs::mode::kSticky) == 0) return {};
  MINICON_TRY_ASSIGN(vst, mnt.fs->getattr(victim));
  if (p.cred.fsuid == vst.uid || p.cred.fsuid == dst.uid) return {};
  if (capable(p, *p.userns, Cap::kFowner) && inode_ids_mapped(p, vst)) {
    return {};
  }
  return Err::eperm;
}

// --- metadata & data -------------------------------------------------------

Result<vfs::Stat> KernelSyscalls::stat(Process& p, const std::string& path) {
  MINICON_TRY_ASSIGN(loc, walk(p, path, /*follow_last=*/true, 0));
  MINICON_TRY_ASSIGN(st, loc.mnt->fs->getattr(loc.ino));
  // stat(2) reports namespace-visible IDs; unmapped kernel IDs appear as the
  // overflow IDs (nobody/nogroup), per §2.1.1 case 3.
  st.uid = p.userns->uid_view(st.uid);
  st.gid = p.userns->gid_view(st.gid);
  return st;
}

Result<vfs::Stat> KernelSyscalls::lstat(Process& p, const std::string& path) {
  MINICON_TRY_ASSIGN(loc, walk(p, path, /*follow_last=*/false, 0));
  MINICON_TRY_ASSIGN(st, loc.mnt->fs->getattr(loc.ino));
  st.uid = p.userns->uid_view(st.uid);
  st.gid = p.userns->gid_view(st.gid);
  return st;
}

Result<std::string> KernelSyscalls::proc_special(Process& p,
                                                 const std::string& abs) const {
  if (abs == "/proc/self/uid_map") {
    return p.userns->uid_map().format_proc();
  }
  if (abs == "/proc/self/gid_map") {
    return p.userns->gid_map().format_proc();
  }
  if (abs == "/proc/self/setgroups") {
    return std::string(p.userns->setgroups_policy() ==
                               UserNamespace::SetgroupsPolicy::kAllow
                           ? "allow\n"
                           : "deny\n");
  }
  if (abs == "/proc/sys/user/max_user_namespaces") {
    return std::to_string(kernel_->max_user_namespaces) + "\n";
  }
  return Err::enoent;
}

Result<std::string> KernelSyscalls::read_file(Process& p,
                                              const std::string& path) {
  const std::string abs =
      path_normalize(path_is_absolute(path) ? path : path_join(p.cwd, path));
  if (abs.starts_with("/proc/self/") || abs.starts_with("/proc/sys/")) {
    auto special = proc_special(p, abs);
    if (special.ok()) return special;
  }
  MINICON_TRY_ASSIGN(loc, walk(p, path, /*follow_last=*/true, 0));
  MINICON_TRY_ASSIGN(st, loc.mnt->fs->getattr(loc.ino));
  if (!may_access(p, *loc.mnt, st, kReadOk)) return Err::eacces;
  return loc.mnt->fs->read(loc.ino);
}

VoidResult KernelSyscalls::write_file(Process& p, const std::string& path,
                                      std::string data, bool append,
                                      std::uint32_t create_mode) {
  // Existing file: need write permission on the file itself.
  if (auto loc = walk(p, path, /*follow_last=*/true, 0); loc.ok()) {
    if (loc->mnt->read_only) return Err::erofs;
    MINICON_TRY_ASSIGN(st, loc->mnt->fs->getattr(loc->ino));
    if (st.is_dir()) return Err::eisdir;
    if (!may_access(p, *loc->mnt, st, kWriteOk)) return Err::eacces;
    return loc->mnt->fs->write(op_ctx(p), loc->ino, std::move(data), append);
  }
  // New file: need write+search on the parent directory.
  MINICON_TRY_ASSIGN(parent, resolve_parent(p, path));
  MINICON_TRY(check_write_dir(p, *parent.mnt, parent.dir_ino));
  vfs::CreateArgs args;
  args.type = vfs::FileType::Regular;
  args.mode = create_mode & ~p.umask_bits;
  args.uid = p.cred.fsuid;
  args.gid = p.cred.fsgid;
  // BSD group semantics for setgid directories.
  MINICON_TRY_ASSIGN(dst, parent.mnt->fs->getattr(parent.dir_ino));
  if ((dst.mode & vfs::mode::kSetGid) != 0) args.gid = dst.gid;
  MINICON_TRY_ASSIGN(ino, parent.mnt->fs->create(op_ctx(p), parent.dir_ino,
                                                 parent.leaf, args));
  return parent.mnt->fs->write(op_ctx(p), ino, std::move(data), append);
}

Result<std::vector<vfs::DirEntry>> KernelSyscalls::readdir(
    Process& p, const std::string& path) {
  MINICON_TRY_ASSIGN(loc, walk(p, path, /*follow_last=*/true, 0));
  MINICON_TRY_ASSIGN(st, loc.mnt->fs->getattr(loc.ino));
  if (!st.is_dir()) return Err::enotdir;
  if (!may_access(p, *loc.mnt, st, kReadOk)) return Err::eacces;
  return loc.mnt->fs->readdir(loc.ino);
}

Result<std::string> KernelSyscalls::readlink(Process& p,
                                             const std::string& path) {
  MINICON_TRY_ASSIGN(loc, walk(p, path, /*follow_last=*/false, 0));
  return loc.mnt->fs->readlink(loc.ino);
}

VoidResult KernelSyscalls::mkdir(Process& p, const std::string& path,
                                 std::uint32_t m) {
  MINICON_TRY_ASSIGN(parent, resolve_parent(p, path));
  if (auto existing = parent.mnt->fs->lookup(parent.dir_ino, parent.leaf);
      existing.ok()) {
    return Err::eexist;
  }
  MINICON_TRY(check_write_dir(p, *parent.mnt, parent.dir_ino));
  vfs::CreateArgs args;
  args.type = vfs::FileType::Directory;
  args.mode = m & ~p.umask_bits;
  args.uid = p.cred.fsuid;
  args.gid = p.cred.fsgid;
  MINICON_TRY_ASSIGN(dst, parent.mnt->fs->getattr(parent.dir_ino));
  if ((dst.mode & vfs::mode::kSetGid) != 0) {
    args.gid = dst.gid;
    args.mode |= vfs::mode::kSetGid;  // setgid propagates to subdirectories
  }
  MINICON_TRY_ASSIGN(
      ino, parent.mnt->fs->create(op_ctx(p), parent.dir_ino, parent.leaf, args));
  (void)ino;
  return {};
}

VoidResult KernelSyscalls::mknod(Process& p, const std::string& path,
                                 vfs::FileType type, std::uint32_t m,
                                 std::uint32_t dev_major,
                                 std::uint32_t dev_minor) {
  if (type == vfs::FileType::Directory || type == vfs::FileType::Symlink) {
    return Err::einval;
  }
  MINICON_TRY_ASSIGN(parent, resolve_parent(p, path));
  if (auto existing = parent.mnt->fs->lookup(parent.dir_ino, parent.leaf);
      existing.ok()) {
    return Err::eexist;
  }
  if (type == vfs::FileType::CharDev || type == vfs::FileType::BlockDev) {
    // Device nodes require CAP_MKNOD over the *initial* user namespace: a
    // namespace-owned mount never grants it. This is why a Type III image
    // "cannot contain privileged special files such as devices" (§6.1)
    // without fakeroot faking it.
    if (!parent.mnt->owner_ns->is_init() ||
        !capable(p, *parent.mnt->owner_ns, Cap::kMknod)) {
      return Err::eperm;
    }
    if (!parent.mnt->fs->supports_device_nodes()) return Err::eperm;
  }
  MINICON_TRY(check_write_dir(p, *parent.mnt, parent.dir_ino));
  vfs::CreateArgs args;
  args.type = type;
  args.mode = m & ~p.umask_bits;
  args.uid = p.cred.fsuid;
  args.gid = p.cred.fsgid;
  args.dev_major = dev_major;
  args.dev_minor = dev_minor;
  MINICON_TRY_ASSIGN(
      ino, parent.mnt->fs->create(op_ctx(p), parent.dir_ino, parent.leaf, args));
  (void)ino;
  return {};
}

VoidResult KernelSyscalls::symlink(Process& p, const std::string& target,
                                   const std::string& linkpath) {
  MINICON_TRY_ASSIGN(parent, resolve_parent(p, linkpath));
  if (auto existing = parent.mnt->fs->lookup(parent.dir_ino, parent.leaf);
      existing.ok()) {
    return Err::eexist;
  }
  MINICON_TRY(check_write_dir(p, *parent.mnt, parent.dir_ino));
  vfs::CreateArgs args;
  args.type = vfs::FileType::Symlink;
  args.symlink_target = target;
  args.uid = p.cred.fsuid;
  args.gid = p.cred.fsgid;
  MINICON_TRY_ASSIGN(
      ino, parent.mnt->fs->create(op_ctx(p), parent.dir_ino, parent.leaf, args));
  (void)ino;
  return {};
}

VoidResult KernelSyscalls::link(Process& p, const std::string& oldpath,
                                const std::string& newpath) {
  MINICON_TRY_ASSIGN(src, walk(p, oldpath, /*follow_last=*/false, 0));
  MINICON_TRY_ASSIGN(parent, resolve_parent(p, newpath));
  if (src.mnt->fs.get() != parent.mnt->fs.get()) return Err::exdev;
  MINICON_TRY(check_write_dir(p, *parent.mnt, parent.dir_ino));
  return parent.mnt->fs->link(op_ctx(p), parent.dir_ino, parent.leaf, src.ino);
}

VoidResult KernelSyscalls::unlink(Process& p, const std::string& path) {
  MINICON_TRY_ASSIGN(parent, resolve_parent(p, path));
  MINICON_TRY(check_write_dir(p, *parent.mnt, parent.dir_ino));
  MINICON_TRY_ASSIGN(victim,
                     parent.mnt->fs->lookup(parent.dir_ino, parent.leaf));
  MINICON_TRY(check_sticky_delete(p, *parent.mnt, parent.dir_ino, victim));
  return parent.mnt->fs->unlink(op_ctx(p), parent.dir_ino, parent.leaf);
}

VoidResult KernelSyscalls::rmdir(Process& p, const std::string& path) {
  MINICON_TRY_ASSIGN(parent, resolve_parent(p, path));
  MINICON_TRY(check_write_dir(p, *parent.mnt, parent.dir_ino));
  MINICON_TRY_ASSIGN(victim,
                     parent.mnt->fs->lookup(parent.dir_ino, parent.leaf));
  MINICON_TRY(check_sticky_delete(p, *parent.mnt, parent.dir_ino, victim));
  if (p.mountns->find_exact(path_normalize(
          path_is_absolute(path) ? path : path_join(p.cwd, path))) != nullptr) {
    return Err::ebusy;  // is a mountpoint
  }
  return parent.mnt->fs->rmdir(op_ctx(p), parent.dir_ino, parent.leaf);
}

VoidResult KernelSyscalls::rename(Process& p, const std::string& oldpath,
                                  const std::string& newpath) {
  MINICON_TRY_ASSIGN(src, resolve_parent(p, oldpath));
  MINICON_TRY_ASSIGN(dst, resolve_parent(p, newpath));
  if (src.mnt->fs.get() != dst.mnt->fs.get()) return Err::exdev;
  MINICON_TRY(check_write_dir(p, *src.mnt, src.dir_ino));
  MINICON_TRY(check_write_dir(p, *dst.mnt, dst.dir_ino));
  MINICON_TRY_ASSIGN(victim, src.mnt->fs->lookup(src.dir_ino, src.leaf));
  MINICON_TRY(check_sticky_delete(p, *src.mnt, src.dir_ino, victim));
  return src.mnt->fs->rename(op_ctx(p), src.dir_ino, src.leaf, dst.dir_ino,
                             dst.leaf);
}

VoidResult KernelSyscalls::chown(Process& p, const std::string& path, Uid uid,
                                 Gid gid, bool follow) {
  MINICON_TRY_ASSIGN(loc, walk(p, path, follow, 0));
  if (loc.mnt->read_only) return Err::erofs;
  MINICON_TRY_ASSIGN(st, loc.mnt->fs->getattr(loc.ino));

  // Translate namespace IDs to kernel IDs; unmapped IDs cannot be named
  // (EINVAL), which is the §2.1.1 case 4 failure.
  Uid kuid = vfs::kNoChangeId;
  Gid kgid = vfs::kNoChangeId;
  if (!id_is_nochange(uid)) {
    auto k = p.userns->uid_to_kernel(uid);
    if (!k) return Err::einval;
    kuid = *k;
  }
  if (!id_is_nochange(gid)) {
    auto k = p.userns->gid_to_kernel(gid);
    if (!k) return Err::einval;
    kgid = *k;
  }
  const bool uid_change = kuid != vfs::kNoChangeId && kuid != st.uid;
  const bool gid_change = kgid != vfs::kNoChangeId && kgid != st.gid;

  const bool privileged =
      capable(p, *p.userns, Cap::kChown) && inode_ids_mapped(p, st);
  if (!privileged) {
    // Unprivileged chown(2): owner may change the group to one of their own
    // groups; nothing else is permitted.
    if (uid_change) return Err::eperm;
    if (gid_change) {
      if (p.cred.fsuid != st.uid) return Err::eperm;
      if (!p.cred.in_group(kgid)) return Err::eperm;
    }
    if (!uid_change && !gid_change && p.cred.fsuid != st.uid &&
        !id_is_nochange(uid)) {
      // chown to the same IDs still requires ownership or privilege.
      return Err::eperm;
    }
  }
  MINICON_TRY(loc.mnt->fs->set_owner(op_ctx(p), loc.ino, kuid, kgid));
  // chown clears setuid/setgid on regular files unless privileged.
  if (st.type == vfs::FileType::Regular &&
      (st.mode & (vfs::mode::kSetUid | vfs::mode::kSetGid)) != 0 &&
      !(capable(p, *p.userns, Cap::kFsetid) && inode_ids_mapped(p, st))) {
    MINICON_TRY(loc.mnt->fs->set_mode(
        op_ctx(p), loc.ino,
        st.mode & ~(vfs::mode::kSetUid | vfs::mode::kSetGid)));
  }
  return {};
}

VoidResult KernelSyscalls::chmod(Process& p, const std::string& path,
                                 std::uint32_t m) {
  MINICON_TRY_ASSIGN(loc, walk(p, path, /*follow_last=*/true, 0));
  if (loc.mnt->read_only) return Err::erofs;
  MINICON_TRY_ASSIGN(st, loc.mnt->fs->getattr(loc.ino));
  const bool owner = p.cred.fsuid == st.uid;
  const bool privileged =
      capable(p, *p.userns, Cap::kFowner) && inode_ids_mapped(p, st);
  if (!owner && !privileged) return Err::eperm;
  // Non-privileged chmod with a group the caller isn't in drops setgid.
  std::uint32_t effective = m;
  if (!privileged && !p.cred.in_group(st.gid)) {
    effective &= ~vfs::mode::kSetGid;
  }
  return loc.mnt->fs->set_mode(op_ctx(p), loc.ino, effective);
}

VoidResult KernelSyscalls::access(Process& p, const std::string& path,
                                  int mask) {
  MINICON_TRY_ASSIGN(loc, walk(p, path, /*follow_last=*/true, 0));
  MINICON_TRY_ASSIGN(st, loc.mnt->fs->getattr(loc.ino));
  if (mask != 0 && !may_access(p, *loc.mnt, st, mask)) return Err::eacces;
  return {};
}

VoidResult KernelSyscalls::chdir(Process& p, const std::string& path) {
  MINICON_TRY_ASSIGN(loc, walk(p, path, /*follow_last=*/true, 0));
  MINICON_TRY_ASSIGN(st, loc.mnt->fs->getattr(loc.ino));
  if (!st.is_dir()) return Err::enotdir;
  if (!may_access(p, *loc.mnt, st, kExecOk)) return Err::eacces;
  p.cwd = loc.abs_path;
  return {};
}

// --- xattrs -----------------------------------------------------------------

VoidResult KernelSyscalls::set_xattr(Process& p, const std::string& path,
                                     const std::string& name,
                                     const std::string& value) {
  MINICON_TRY_ASSIGN(loc, walk(p, path, /*follow_last=*/true, 0));
  if (loc.mnt->read_only) return Err::erofs;
  MINICON_TRY_ASSIGN(st, loc.mnt->fs->getattr(loc.ino));
  // trusted.* needs init-namespace CAP_SYS_ADMIN; security.* (file
  // capabilities, setcap(8)) needs CAP_SETFCAP over the mount's owner
  // namespace — a plain Type III build has neither.
  if (name.starts_with("trusted.")) {
    if (!loc.mnt->owner_ns->is_init() ||
        !capable(p, *loc.mnt->owner_ns, Cap::kSysAdmin)) {
      return Err::eperm;
    }
  } else if (name.starts_with("security.")) {
    if (!capable(p, *loc.mnt->owner_ns, Cap::kSetFcap) ||
        !inode_ids_mapped(p, st)) {
      return Err::eperm;
    }
  } else if (!may_access(p, *loc.mnt, st, kWriteOk)) {
    return Err::eacces;
  }
  return loc.mnt->fs->set_xattr(op_ctx(p), loc.ino, name, value);
}

Result<std::string> KernelSyscalls::get_xattr(Process& p,
                                              const std::string& path,
                                              const std::string& name) {
  MINICON_TRY_ASSIGN(loc, walk(p, path, /*follow_last=*/true, 0));
  MINICON_TRY_ASSIGN(st, loc.mnt->fs->getattr(loc.ino));
  if (!may_access(p, *loc.mnt, st, kReadOk)) return Err::eacces;
  return loc.mnt->fs->get_xattr(loc.ino, name);
}

Result<std::vector<std::string>> KernelSyscalls::list_xattrs(
    Process& p, const std::string& path) {
  MINICON_TRY_ASSIGN(loc, walk(p, path, /*follow_last=*/true, 0));
  return loc.mnt->fs->list_xattrs(loc.ino);
}

VoidResult KernelSyscalls::remove_xattr(Process& p, const std::string& path,
                                        const std::string& name) {
  MINICON_TRY_ASSIGN(loc, walk(p, path, /*follow_last=*/true, 0));
  if (loc.mnt->read_only) return Err::erofs;
  MINICON_TRY_ASSIGN(st, loc.mnt->fs->getattr(loc.ino));
  if (!may_access(p, *loc.mnt, st, kWriteOk)) return Err::eacces;
  return loc.mnt->fs->remove_xattr(op_ctx(p), loc.ino, name);
}

// --- identity ----------------------------------------------------------------

Uid KernelSyscalls::getuid(Process& p) { return p.userns->uid_view(p.cred.ruid); }
Uid KernelSyscalls::geteuid(Process& p) {
  return p.userns->uid_view(p.cred.euid);
}
Gid KernelSyscalls::getgid(Process& p) { return p.userns->gid_view(p.cred.rgid); }
Gid KernelSyscalls::getegid(Process& p) {
  return p.userns->gid_view(p.cred.egid);
}

std::vector<Gid> KernelSyscalls::getgroups(Process& p) {
  std::vector<Gid> out;
  out.reserve(p.cred.groups.size());
  for (Gid g : p.cred.groups) out.push_back(p.userns->gid_view(g));
  return out;
}

void KernelSyscalls::maybe_drop_caps(Process& p, Uid old_euid_view) const {
  const Uid new_view = p.userns->uid_view(p.cred.euid);
  if (old_euid_view == 0 && new_view != 0) {
    p.cred.effective = CapSet::none();
  }
}

VoidResult KernelSyscalls::setresuid(Process& p, Uid r, Uid e, Uid s) {
  Uid kr = p.cred.ruid, ke = p.cred.euid, ks = p.cred.suid;
  auto translate = [&](Uid requested, Uid current, Uid& out) -> VoidResult {
    if (id_is_nochange(requested)) {
      out = current;
      return {};
    }
    auto k = p.userns->uid_to_kernel(requested);
    if (!k) return Err::einval;  // unmapped ID: "22: Invalid argument" (Fig 3)
    out = *k;
    return {};
  };
  MINICON_TRY(translate(r, p.cred.ruid, kr));
  MINICON_TRY(translate(e, p.cred.euid, ke));
  MINICON_TRY(translate(s, p.cred.suid, ks));

  if (!capable(p, *p.userns, Cap::kSetUid)) {
    auto allowed = [&](Uid k) {
      return k == p.cred.ruid || k == p.cred.euid || k == p.cred.suid;
    };
    if (!allowed(kr) || !allowed(ke) || !allowed(ks)) return Err::eperm;
  }
  const Uid old_view = p.userns->uid_view(p.cred.euid);
  p.cred.ruid = kr;
  p.cred.euid = ke;
  p.cred.suid = ks;
  p.cred.fsuid = ke;
  maybe_drop_caps(p, old_view);
  return {};
}

VoidResult KernelSyscalls::setresgid(Process& p, Gid r, Gid e, Gid s) {
  Gid kr = p.cred.rgid, ke = p.cred.egid, ks = p.cred.sgid;
  auto translate = [&](Gid requested, Gid current, Gid& out) -> VoidResult {
    if (id_is_nochange(requested)) {
      out = current;
      return {};
    }
    auto k = p.userns->gid_to_kernel(requested);
    if (!k) return Err::einval;
    out = *k;
    return {};
  };
  MINICON_TRY(translate(r, p.cred.rgid, kr));
  MINICON_TRY(translate(e, p.cred.egid, ke));
  MINICON_TRY(translate(s, p.cred.sgid, ks));

  if (!capable(p, *p.userns, Cap::kSetGid)) {
    auto allowed = [&](Gid k) {
      return k == p.cred.rgid || k == p.cred.egid || k == p.cred.sgid;
    };
    if (!allowed(kr) || !allowed(ke) || !allowed(ks)) return Err::eperm;
  }
  p.cred.rgid = kr;
  p.cred.egid = ke;
  p.cred.sgid = ks;
  p.cred.fsgid = ke;
  return {};
}

VoidResult KernelSyscalls::setuid(Process& p, Uid uid) {
  auto k = p.userns->uid_to_kernel(uid);
  if (!k) return Err::einval;
  if (capable(p, *p.userns, Cap::kSetUid)) {
    const Uid old_view = p.userns->uid_view(p.cred.euid);
    p.cred.set_all_uids(*k);
    maybe_drop_caps(p, old_view);
    return {};
  }
  return setresuid(p, vfs::kNoChangeId, uid, vfs::kNoChangeId);
}

VoidResult KernelSyscalls::setgid(Process& p, Gid gid) {
  auto k = p.userns->gid_to_kernel(gid);
  if (!k) return Err::einval;
  if (capable(p, *p.userns, Cap::kSetGid)) {
    p.cred.set_all_gids(*k);
    return {};
  }
  return setresgid(p, vfs::kNoChangeId, gid, vfs::kNoChangeId);
}

VoidResult KernelSyscalls::seteuid(Process& p, Uid e) {
  return setresuid(p, vfs::kNoChangeId, e, vfs::kNoChangeId);
}

VoidResult KernelSyscalls::setegid(Process& p, Gid e) {
  return setresgid(p, vfs::kNoChangeId, e, vfs::kNoChangeId);
}

VoidResult KernelSyscalls::setgroups(Process& p,
                                     const std::vector<Gid>& groups) {
  // §2.1.4: in a user namespace setgroups(2) is gated by
  // /proc/<pid>/setgroups; unprivileged namespaces always deny it — this is
  // apt-get's "setgroups 65534 failed (1: Operation not permitted)" (Fig 3).
  if (p.userns->setgroups_policy() == UserNamespace::SetgroupsPolicy::kDeny) {
    return Err::eperm;
  }
  if (!capable(p, *p.userns, Cap::kSetGid)) return Err::eperm;
  std::vector<Gid> kernel_ids;
  kernel_ids.reserve(groups.size());
  for (Gid g : groups) {
    auto k = p.userns->gid_to_kernel(g);
    if (!k) return Err::einval;
    kernel_ids.push_back(*k);
  }
  p.cred.groups = std::move(kernel_ids);
  return {};
}

// --- namespaces & mounts ------------------------------------------------------

VoidResult KernelSyscalls::unshare_userns(Process& p) {
  if (kernel_->max_user_namespaces == 0) return Err::eusers;
  if (static_cast<std::uint64_t>(
          kernel_->live_user_namespaces()->load()) >=
      kernel_->max_user_namespaces) {
    return Err::eusers;
  }
  if (p.userns->depth() >= 32) return Err::eusers;
  auto child = UserNamespace::make_child(p.userns, p.cred.euid, p.cred.egid);
  child->set_accounting(kernel_->live_user_namespaces());
  p.userns = std::move(child);
  // Entering a fresh user namespace confers a full capability set *within
  // that namespace* (paper footnote 5).
  p.cred.effective = CapSet::all();
  return {};
}

VoidResult KernelSyscalls::unshare_mountns(Process& p) {
  p.mountns = p.mountns->clone();
  return {};
}

VoidResult KernelSyscalls::write_uid_map(Process& writer,
                                         const UserNsPtr& target, IdMap map) {
  if (target->uid_map_set()) return Err::eperm;  // single write only
  if (!map.valid() || map.entries().empty()) return Err::einval;
  const UserNsPtr& parent = target->parent();
  if (parent == nullptr) return Err::eperm;

  const bool privileged = capable(writer, *parent, Cap::kSetUid);
  if (!privileged) {
    // Unprivileged self-map (§2.1.3): exactly one entry, count 1, outside ID
    // equal to the writer's own effective UID.
    if (map.entries().size() != 1) return Err::eperm;
    const IdMapEntry& e = map.entries().front();
    auto writer_in_parent = parent->uid_from_kernel(writer.cred.euid);
    if (e.count != 1 || !writer_in_parent || e.outside != *writer_in_parent) {
      return Err::eperm;
    }
  }
  if (!target->install_uid_map(std::move(map))) return Err::einval;
  return {};
}

VoidResult KernelSyscalls::write_gid_map(Process& writer,
                                         const UserNsPtr& target, IdMap map) {
  if (target->gid_map_set()) return Err::eperm;
  if (!map.valid() || map.entries().empty()) return Err::einval;
  const UserNsPtr& parent = target->parent();
  if (parent == nullptr) return Err::eperm;

  const bool privileged = capable(writer, *parent, Cap::kSetGid);
  if (!privileged) {
    // The unprivileged gid self-map additionally requires setgroups to have
    // been denied first — the §2.1.4 trap (CVE-2018-7169 was a helper that
    // skipped this).
    if (target->setgroups_policy() != UserNamespace::SetgroupsPolicy::kDeny) {
      return Err::eperm;
    }
    if (map.entries().size() != 1) return Err::eperm;
    const IdMapEntry& e = map.entries().front();
    auto writer_in_parent = parent->gid_from_kernel(writer.cred.egid);
    if (e.count != 1 || !writer_in_parent || e.outside != *writer_in_parent) {
      return Err::eperm;
    }
  }
  if (!target->install_gid_map(std::move(map))) return Err::einval;
  return {};
}

VoidResult KernelSyscalls::write_setgroups(
    Process& writer, const UserNsPtr& target,
    UserNamespace::SetgroupsPolicy policy) {
  // Writing "allow" requires privilege over the parent namespace; "deny" is
  // always permitted (it only ever reduces power).
  if (policy == UserNamespace::SetgroupsPolicy::kAllow) {
    const UserNsPtr& parent = target->parent();
    if (parent == nullptr || !capable(writer, *parent, Cap::kSetGid)) {
      return Err::eperm;
    }
  }
  if (!target->set_setgroups(policy)) return Err::eperm;
  return {};
}

VoidResult KernelSyscalls::userns_auto_map(Process& p) {
  if (!kernel_->unprivileged_auto_maps) return Err::enosys;
  if (p.userns->is_init()) return Err::eperm;
  if (p.userns->uid_map_set() || p.userns->gid_map_set()) return Err::eperm;
  // The namespace owner must be the caller (only your own fresh namespace).
  if (p.userns->owner_kuid() != p.cred.euid) return Err::eperm;
  constexpr std::uint32_t kSpan = 65536;
  // Stable per-user allocation: the same user always gets the same range,
  // so files created in one container keep their identities in the next.
  std::uint32_t base;
  if (auto it = kernel_->auto_map_assignments.find(p.cred.euid);
      it != kernel_->auto_map_assignments.end()) {
    base = it->second;
  } else {
    if (kernel_->auto_map_pool_next > UINT32_MAX - kSpan) return Err::eusers;
    base = kernel_->auto_map_pool_next;
    kernel_->auto_map_pool_next += kSpan;
    kernel_->auto_map_assignments.emplace(p.cred.euid, base);
  }
  // Like the fixed newgidmap, supplementary-group power is not granted.
  (void)p.userns->set_setgroups(UserNamespace::SetgroupsPolicy::kDeny);
  IdMap uid_map({{0, p.cred.euid, 1}, {1, base, kSpan}});
  IdMap gid_map({{0, p.cred.egid, 1}, {1, base, kSpan}});
  if (!p.userns->install_uid_map(std::move(uid_map))) return Err::einval;
  if (!p.userns->install_gid_map(std::move(gid_map))) return Err::einval;
  return {};
}

VoidResult KernelSyscalls::mount(Process& p, Mount m) {
  if (!capable(p, *p.userns, Cap::kSysAdmin)) return Err::eperm;
  MINICON_TRY_ASSIGN(loc, walk(p, m.mountpoint, /*follow_last=*/true, 0));
  MINICON_TRY_ASSIGN(st, loc.mnt->fs->getattr(loc.ino));
  if (!st.is_dir()) return Err::enotdir;
  m.mountpoint = loc.abs_path;
  if (m.owner_ns == nullptr) m.owner_ns = p.userns;
  if (m.root == 0) m.root = m.fs->root();
  p.mountns->add(std::move(m));
  return {};
}

VoidResult KernelSyscalls::umount(Process& p, const std::string& mountpoint) {
  if (!capable(p, *p.userns, Cap::kSysAdmin)) return Err::eperm;
  const std::string abs = path_normalize(
      path_is_absolute(mountpoint) ? mountpoint : path_join(p.cwd, mountpoint));
  return p.mountns->remove(abs);
}

VoidResult KernelSyscalls::bind_mount(Process& p, const std::string& src,
                                      const std::string& dst, bool read_only) {
  if (!capable(p, *p.userns, Cap::kSysAdmin)) return Err::eperm;
  MINICON_TRY_ASSIGN(sloc, walk(p, src, /*follow_last=*/true, 0));
  MINICON_TRY_ASSIGN(dloc, walk(p, dst, /*follow_last=*/true, 0));
  MINICON_TRY_ASSIGN(dst_st, dloc.mnt->fs->getattr(dloc.ino));
  if (!dst_st.is_dir()) return Err::enotdir;
  Mount m;
  m.mountpoint = dloc.abs_path;
  m.fs = sloc.mnt->fs;
  m.root = sloc.ino;
  // A bind mount keeps the original superblock's owning namespace: binding
  // host storage into a container does NOT hand the container privilege
  // over it.
  m.owner_ns = sloc.mnt->owner_ns;
  m.read_only = read_only;
  m.source = sloc.abs_path;
  p.mountns->add(std::move(m));
  return {};
}

}  // namespace minicon::kernel
