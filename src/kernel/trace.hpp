// TraceSyscalls: the observability layer of the interposition stack.
//
// Every call that passes through is recorded into a shared SyscallStats
// registry — per-operation call counts and errno histograms — and may
// optionally be echoed, strace(1)-style, to a Transcript. Builders stack one
// of these under fakeroot so that "fakeroot adds a layer of indirection"
// (§6.1-1) becomes a measured number: per-RUN-instruction syscall counts and
// the interposition depth the call traversed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "kernel/syscall_filter.hpp"

namespace minicon {
class Transcript;
}

namespace minicon::kernel {

// Thread-safe per-operation counters. One registry is typically shared by
// every trace layer a builder creates, so per-instruction deltas come from
// snapshotting totals() around each RUN.
class SyscallStats {
 public:
  struct Totals {
    std::uint64_t calls = 0;
    std::uint64_t errors = 0;
    std::map<Err, std::uint64_t> errnos;  // failed calls only
  };
  struct OpCounter {
    std::uint64_t calls = 0;
    std::uint64_t errors = 0;
    std::map<Err, std::uint64_t> errnos;
  };

  void record(const std::string& op, Err e);

  Totals totals() const;
  std::map<std::string, OpCounter> by_op() const;
  std::uint64_t calls(const std::string& op) const;
  std::uint64_t errno_count(Err e) const;
  void reset();

  // Renders the errno histogram delta between two snapshots, e.g.
  // "ENOSPC x3 EPERM x1"; empty when no new errors.
  static std::string errno_summary(const Totals& before, const Totals& after);

 private:
  mutable std::mutex mu_;
  std::map<std::string, OpCounter> ops_;
};

using SyscallStatsPtr = std::shared_ptr<SyscallStats>;

struct TraceOptions {
  // When set, each call appends one line: `op("path") = 0` or
  // `op("path") = -1 ENOENT`. Stats are always recorded.
  Transcript* transcript = nullptr;
  bool log_success = true;  // with a transcript: also log succeeding calls
};

class TraceSyscalls : public SyscallFilter {
 public:
  TraceSyscalls(std::shared_ptr<Syscalls> inner, SyscallStatsPtr stats = nullptr,
                TraceOptions options = {});

  const SyscallStatsPtr& stats() const { return stats_; }

  Result<vfs::Stat> stat(Process& p, const std::string& path) override;
  Result<vfs::Stat> lstat(Process& p, const std::string& path) override;
  Result<std::string> read_file(Process& p, const std::string& path) override;
  VoidResult write_file(Process& p, const std::string& path, std::string data,
                        bool append, std::uint32_t create_mode) override;
  Result<std::vector<vfs::DirEntry>> readdir(Process& p,
                                             const std::string& path) override;
  Result<std::string> readlink(Process& p, const std::string& path) override;
  VoidResult mkdir(Process& p, const std::string& path,
                   std::uint32_t mode) override;
  VoidResult mknod(Process& p, const std::string& path, vfs::FileType type,
                   std::uint32_t mode, std::uint32_t dev_major,
                   std::uint32_t dev_minor) override;
  VoidResult symlink(Process& p, const std::string& target,
                     const std::string& linkpath) override;
  VoidResult link(Process& p, const std::string& oldpath,
                  const std::string& newpath) override;
  VoidResult unlink(Process& p, const std::string& path) override;
  VoidResult rmdir(Process& p, const std::string& path) override;
  VoidResult rename(Process& p, const std::string& oldpath,
                    const std::string& newpath) override;
  VoidResult chown(Process& p, const std::string& path, Uid uid, Gid gid,
                   bool follow) override;
  VoidResult chmod(Process& p, const std::string& path,
                   std::uint32_t mode) override;
  VoidResult access(Process& p, const std::string& path, int mask) override;
  VoidResult chdir(Process& p, const std::string& path) override;

  VoidResult set_xattr(Process& p, const std::string& path,
                       const std::string& name,
                       const std::string& value) override;
  Result<std::string> get_xattr(Process& p, const std::string& path,
                                const std::string& name) override;
  Result<std::vector<std::string>> list_xattrs(
      Process& p, const std::string& path) override;
  VoidResult remove_xattr(Process& p, const std::string& path,
                          const std::string& name) override;

  Uid getuid(Process& p) override;
  Uid geteuid(Process& p) override;
  Gid getgid(Process& p) override;
  Gid getegid(Process& p) override;
  std::vector<Gid> getgroups(Process& p) override;
  VoidResult setuid(Process& p, Uid uid) override;
  VoidResult setgid(Process& p, Gid gid) override;
  VoidResult setresuid(Process& p, Uid r, Uid e, Uid s) override;
  VoidResult setresgid(Process& p, Gid r, Gid e, Gid s) override;
  VoidResult seteuid(Process& p, Uid e) override;
  VoidResult setegid(Process& p, Gid e) override;
  VoidResult setgroups(Process& p, const std::vector<Gid>& groups) override;

  VoidResult unshare_userns(Process& p) override;
  VoidResult unshare_mountns(Process& p) override;
  VoidResult write_uid_map(Process& writer, const UserNsPtr& target,
                           IdMap map) override;
  VoidResult write_gid_map(Process& writer, const UserNsPtr& target,
                           IdMap map) override;
  VoidResult write_setgroups(Process& writer, const UserNsPtr& target,
                             UserNamespace::SetgroupsPolicy policy) override;
  VoidResult userns_auto_map(Process& p) override;
  VoidResult mount(Process& p, Mount m) override;
  VoidResult umount(Process& p, const std::string& mountpoint) override;
  VoidResult bind_mount(Process& p, const std::string& src,
                        const std::string& dst, bool read_only) override;

  Result<Loc> resolve(Process& p, const std::string& path,
                      bool follow_last) override;

 private:
  void note(const char* op, const std::string& detail, Err e);

  SyscallStatsPtr stats_;
  TraceOptions options_;
};

}  // namespace minicon::kernel
