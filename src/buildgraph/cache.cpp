#include "buildgraph/cache.hpp"

#include <algorithm>

#include "shell/registry.hpp"
#include "support/sha256.hpp"

namespace minicon::buildgraph {

BuildCache::BuildCache(image::ChunkStore* chunks, std::uint64_t capacity_bytes)
    : chunks_(chunks), capacity_(capacity_bytes) {
  if (chunks_ == nullptr) {
    owned_ = std::make_unique<image::ChunkStore>();
    chunks_ = owned_.get();
  }
  set_metrics(nullptr);
}

void BuildCache::set_metrics(obs::MetricsRegistry* metrics) {
  obs::MetricsRegistry& reg =
      metrics != nullptr ? *metrics : obs::global_metrics();
  std::lock_guard lock(mu_);
  hits_metric_ = &reg.counter("cache.hits");
  misses_metric_ = &reg.counter("cache.misses");
  evictions_metric_ = &reg.counter("cache.evictions");
  bytes_metric_ = &reg.gauge("cache.bytes");
  entries_metric_ = &reg.gauge("cache.entries");
}

void BuildCache::set_tracer(std::shared_ptr<obs::Tracer> tracer) {
  std::lock_guard lock(mu_);
  tracer_ = std::move(tracer);
}

std::optional<BuildCache::Hit> BuildCache::lookup(const std::string& key,
                                                  obs::SpanId parent) {
  std::unique_lock lock(mu_);
  obs::Span span(tracer_.get(), "cache.lookup", parent);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    misses_metric_->add();
    span.annotate("outcome", "miss");
    return std::nullopt;
  }
  ++stats_.hits;
  hits_metric_->add();
  span.annotate("outcome", "hit");
  it->second.stamp = ++clock_;
  const image::ChunkedBlob blob = it->second.blob;
  image::ImageConfig config = it->second.config;
  lock.unlock();
  // Reassembly reads the chunk store (its own sharded locks), not ours.
  auto data = chunks_->assemble(blob);
  if (data == nullptr) return std::nullopt;  // chunks dropped underneath us
  return Hit{std::move(data), std::move(config)};
}

void BuildCache::store(const std::string& key, std::string_view tar_blob,
                       const image::ImageConfig& config) {
  // Chunk + digest outside the lock: this is the expensive part, and it is
  // exactly what independent stages overlap.
  const image::ChunkedBlob blob = chunks_->put(tar_blob);
  std::lock_guard lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    stats_.bytes -= it->second.blob.size;
    it->second = Entry{blob, config, ++clock_};
    stats_.bytes += blob.size;
  } else {
    entries_[key] = Entry{blob, config, ++clock_};
    stats_.bytes += blob.size;
  }
  evict_locked();
}

void BuildCache::evict_locked() {
  while (stats_.bytes > capacity_ && entries_.size() > 1) {
    auto oldest = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.stamp < oldest->second.stamp) oldest = it;
    }
    stats_.bytes -= oldest->second.blob.size;
    entries_.erase(oldest);
    ++stats_.evictions;
    evictions_metric_->add();
  }
  stats_.entries = entries_.size();
  // Levels, not deltas: a shared registry may also serve another cache, so
  // the gauges reflect this cache's current residency verbatim.
  bytes_metric_->set(static_cast<std::int64_t>(stats_.bytes));
  entries_metric_->set(static_cast<std::int64_t>(stats_.entries));
}

CacheStats BuildCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::string BuildCache::chain(std::string_view parent,
                              std::string_view instruction,
                              std::initializer_list<std::string_view> context) {
  Sha256 h;
  h.update(parent);
  h.update("|");
  h.update(instruction);
  for (std::string_view c : context) {
    h.update("|");
    h.update(c);
  }
  const auto digest = h.finish();
  return to_hex(digest.data(), digest.size());
}

namespace {

std::string pad_left(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

}  // namespace

void register_cache_command(shell::CommandRegistry& reg, BuildCachePtr cache) {
  reg.register_special("build-cache", [cache](shell::Invocation& inv) {
    const CacheStats s = cache->stats();
    inv.out += "   hits  misses  evicts  entries       bytes\n";
    inv.out += pad_left(std::to_string(s.hits), 7) +
               pad_left(std::to_string(s.misses), 8) +
               pad_left(std::to_string(s.evictions), 8) +
               pad_left(std::to_string(s.entries), 9) +
               pad_left(std::to_string(s.bytes), 12) + "\n";
    return 0;
  });
}

}  // namespace minicon::buildgraph
