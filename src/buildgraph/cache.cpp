#include "buildgraph/cache.hpp"

#include <algorithm>

#include "obs/flightrec.hpp"
#include "shell/registry.hpp"
#include "support/sha256.hpp"
#include "vfs/snapshot.hpp"

namespace minicon::buildgraph {

BuildCache::BuildCache(image::ChunkStore* chunks, std::uint64_t capacity_bytes)
    : chunks_(chunks), capacity_(capacity_bytes) {
  if (chunks_ == nullptr) {
    owned_ = std::make_unique<image::ChunkStore>();
    chunks_ = owned_.get();
  }
  set_metrics(nullptr);
}

void BuildCache::set_metrics(obs::MetricsRegistry* metrics) {
  obs::MetricsRegistry& reg =
      metrics != nullptr ? *metrics : obs::global_metrics();
  std::lock_guard lock(mu_);
  hits_metric_ = &reg.counter("cache.hits");
  misses_metric_ = &reg.counter("cache.misses");
  evictions_metric_ = &reg.counter("cache.evictions");
  evicted_bytes_metric_ = &reg.counter("cache.evicted_bytes");
  bytes_metric_ = &reg.gauge("cache.bytes");
  entries_metric_ = &reg.gauge("cache.entries");
}

void BuildCache::set_tracer(std::shared_ptr<obs::Tracer> tracer) {
  std::lock_guard lock(mu_);
  tracer_ = std::move(tracer);
}

std::optional<BuildCache::Hit> BuildCache::lookup(const std::string& key,
                                                  obs::SpanId parent) {
  std::lock_guard lock(mu_);
  obs::Span span(tracer_.get(), "cache.lookup", parent);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    misses_metric_->add();
    span.annotate("outcome", "miss");
    return std::nullopt;
  }
  ++stats_.hits;
  hits_metric_->add();
  span.annotate("outcome", "hit");
  it->second.stamp = ++clock_;
  // The tree is immutable and shared; handing out the pointer is the whole
  // hit — nothing to reassemble.
  return Hit{it->second.snapshot, it->second.config};
}

void BuildCache::chunk_new_subtrees(const vfs::SnapNodePtr& node,
                                    std::uint64_t* nodes,
                                    std::uint64_t* new_bytes) {
  {
    std::lock_guard g(seen_mu_);
    // A seen digest means this exact subtree was fully chunked before
    // (possibly as part of another entry): skip it wholesale.
    if (!seen_.insert(node->digest).second) return;
  }
  ++*nodes;
  if (node->type == vfs::FileType::Regular && !node->content_view().empty()) {
    chunks_->put(node->content_view());
    *new_bytes += node->content_view().size();
  }
  for (const auto& [name, child] : node->children) {
    chunk_new_subtrees(child, nodes, new_bytes);
  }
}

void BuildCache::store(const std::string& key, vfs::SnapNodePtr snapshot,
                       const image::ImageConfig& config, obs::SpanId parent) {
  if (snapshot == nullptr) return;
  std::shared_ptr<obs::Tracer> tracer;
  {
    std::lock_guard lock(mu_);
    tracer = tracer_;
  }
  obs::Span span(tracer.get(), "cache.store", parent);
  // Chunking new file contents is the expensive part and runs outside the
  // entry lock; unchanged subtrees are skipped by digest.
  std::uint64_t new_nodes = 0;
  std::uint64_t new_bytes = 0;
  chunk_new_subtrees(snapshot, &new_nodes, &new_bytes);
  span.annotate("new_nodes", std::to_string(new_nodes));
  span.annotate("new_bytes", std::to_string(new_bytes));

  const std::uint64_t size = snapshot->tree_bytes;
  std::lock_guard lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    stats_.bytes -= it->second.snapshot->tree_bytes;
    it->second = Entry{std::move(snapshot), config, ++clock_};
    stats_.bytes += size;
  } else {
    entries_[key] = Entry{std::move(snapshot), config, ++clock_};
    stats_.bytes += size;
  }
  evict_locked();
}

void BuildCache::evict_locked() {
  while (stats_.bytes > capacity_ && entries_.size() > 1) {
    auto oldest = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.stamp < oldest->second.stamp) oldest = it;
    }
    const std::uint64_t dropped = oldest->second.snapshot->tree_bytes;
    const std::string key = oldest->first;
    stats_.bytes -= dropped;
    entries_.erase(oldest);
    ++stats_.evictions;
    stats_.evicted_bytes += dropped;
    // Mirrored at the same locked point so the `build-cache` builtin and the
    // `metrics` registry can never disagree after eviction pressure.
    evictions_metric_->add();
    evicted_bytes_metric_->add(dropped);
    // Evictions are a classic "why did my warm build miss" forensic: leave
    // the key prefix and the freed bytes in the flight recorder.
    obs::FlightRecorder& rec = obs::global_flight_recorder();
    if (rec.enabled()) {
      rec.record(obs::FlightKind::kCacheEvict, key.substr(0, 16), 0, dropped);
    }
  }
  stats_.entries = entries_.size();
  // Levels, not deltas: a shared registry may also serve another cache, so
  // the gauges reflect this cache's current residency verbatim.
  bytes_metric_->set(static_cast<std::int64_t>(stats_.bytes));
  entries_metric_->set(static_cast<std::int64_t>(stats_.entries));
}

CacheStats BuildCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::string BuildCache::chain(std::string_view parent,
                              std::string_view instruction,
                              std::initializer_list<std::string_view> context) {
  Sha256 h;
  h.update(parent);
  h.update("|");
  h.update(instruction);
  for (std::string_view c : context) {
    h.update("|");
    h.update(c);
  }
  const auto digest = h.finish();
  return to_hex(digest.data(), digest.size());
}

namespace {

std::string pad_left(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

}  // namespace

void register_cache_command(shell::CommandRegistry& reg, BuildCachePtr cache) {
  reg.register_special("build-cache", [cache](shell::Invocation& inv) {
    const CacheStats s = cache->stats();
    inv.out +=
        "   hits  misses  evicts  entries       bytes     evicted\n";
    inv.out += pad_left(std::to_string(s.hits), 7) +
               pad_left(std::to_string(s.misses), 8) +
               pad_left(std::to_string(s.evictions), 8) +
               pad_left(std::to_string(s.entries), 9) +
               pad_left(std::to_string(s.bytes), 12) +
               pad_left(std::to_string(s.evicted_bytes), 12) + "\n";
    return 0;
  });
}

}  // namespace minicon::buildgraph
