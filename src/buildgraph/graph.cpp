#include "buildgraph/graph.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace minicon::buildgraph {

std::string Stage::display() const {
  std::string s = "stage " + std::to_string(index);
  if (!name.empty()) s += " (" + name + ")";
  return s;
}

namespace {

// Resolves a stage reference (alias or decimal index) against the stages
// declared so far. Returns -1 when the reference names none of them.
int resolve_ref(const std::string& ref, const std::vector<Stage>& stages) {
  std::uint32_t index = 0;
  if (parse_u32(ref, index)) {
    return index < stages.size() ? static_cast<int>(index) : -1;
  }
  for (const auto& s : stages) {
    if (!s.name.empty() && s.name == ref) return s.index;
  }
  return -1;
}

void add_dep(Stage& s, int dep) {
  if (dep < 0) return;
  if (std::find(s.deps.begin(), s.deps.end(), dep) == s.deps.end()) {
    s.deps.push_back(dep);
  }
}

}  // namespace

std::vector<std::vector<int>> BuildGraph::levels() const {
  std::vector<int> level(stages_.size(), 0);
  std::vector<std::vector<int>> out;
  for (const auto& s : stages_) {
    int l = 0;
    for (int dep : s.deps) {
      l = std::max(l, level[static_cast<std::size_t>(dep)] + 1);
    }
    level[static_cast<std::size_t>(s.index)] = l;
    if (static_cast<std::size_t>(l) >= out.size()) {
      out.resize(static_cast<std::size_t>(l) + 1);
    }
    out[static_cast<std::size_t>(l)].push_back(s.index);
  }
  return out;
}

std::size_t BuildGraph::max_parallel_width() const {
  std::size_t width = 0;
  for (const auto& level : levels()) width = std::max(width, level.size());
  return width;
}

std::variant<BuildGraph, build::DockerfileError> lower(
    const build::Dockerfile& df) {
  BuildGraph g;
  g.instruction_count_ = df.instructions.size();
  int number = 0;
  for (const auto& ins : df.instructions) {
    ++number;
    if (ins.kind == build::InstrKind::kFrom) {
      const build::FromClause fc = build::parse_from(ins.text);
      if (fc.ref.empty()) {
        return build::DockerfileError{ins.line,
                                      "FROM requires an image reference"};
      }
      Stage s;
      s.index = static_cast<int>(g.stages_.size());
      s.name = fc.alias;
      s.from = &ins;
      s.from_number = number;
      s.base_stage = resolve_ref(fc.ref, g.stages_);
      if (s.base_stage < 0) s.base_ref = fc.ref;
      add_dep(s, s.base_stage);
      g.stages_.push_back(std::move(s));
      continue;
    }
    // parse_dockerfile guarantees the file starts with FROM.
    Stage& cur = g.stages_.back();
    StageInstr si;
    si.ins = &ins;
    si.number = number;
    if (ins.kind == build::InstrKind::kCopy ||
        ins.kind == build::InstrKind::kAdd) {
      std::string text = ins.text;
      const std::string ref = build::strip_copy_from(text);
      si.copy_args = text;
      if (!ref.empty()) {
        si.copy_from = resolve_ref(ref, g.stages_);
        if (si.copy_from < 0 || si.copy_from >= cur.index) {
          // The parser rejects these; lowering keeps the check so the graph
          // is safe to build from a hand-assembled Dockerfile too.
          return build::DockerfileError{
              ins.line, "COPY --from=" + ref + ": no such build stage"};
        }
        add_dep(cur, si.copy_from);
      }
    } else {
      si.copy_args = ins.text;
    }
    cur.instrs.push_back(std::move(si));
  }
  for (auto& s : g.stages_) std::sort(s.deps.begin(), s.deps.end());
  return g;
}

}  // namespace minicon::buildgraph
