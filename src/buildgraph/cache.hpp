// Content-addressed build cache shared by every builder.
//
// A cache key is an incremental SHA-256 chain over (parent-state digest,
// normalized instruction, digests of any copied context files) — the same
// scheme ch-image's follow-on build cache uses. A cache value is a snapshot
// tree serialized as a tar blob and stored as fixed-size chunks in an
// image::ChunkStore. Pointing the cache at the registry's chunk store makes
// cached layers deduplicate against registry blobs: a layer that was pushed
// (or pulled) costs almost nothing to cache, and vice versa.
//
// Entries are LRU-evicted once resident serialized bytes exceed the
// capacity. Eviction drops only the cache's entry record; the chunks remain
// in the (shared, deduplicated) chunk store until its owner drops them.
//
// Thread-safe: the stage scheduler runs independent stages concurrently and
// both builders may share one instance.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "image/chunkstore.hpp"
#include "image/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace minicon::shell {
class CommandRegistry;
}

namespace minicon::buildgraph {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes = 0;    // serialized bytes of resident entries
  std::uint64_t entries = 0;  // resident entry count
};

class BuildCache {
 public:
  static constexpr std::uint64_t kDefaultCapacity = 256ull << 20;

  // `chunks` is borrowed (pass &registry.chunk_store() to dedup against
  // registry blobs); null makes the cache own a private store.
  explicit BuildCache(image::ChunkStore* chunks = nullptr,
                      std::uint64_t capacity_bytes = kDefaultCapacity);

  struct Hit {
    std::shared_ptr<const std::string> blob;  // serialized snapshot tar
    image::ImageConfig config;
  };

  // Counts a hit or miss; a hit reassembles the snapshot blob and marks the
  // entry most-recently-used. With a tracer attached the lookup runs inside
  // a `cache.lookup` span (childed under `parent` when given) annotated
  // with the outcome.
  std::optional<Hit> lookup(const std::string& key,
                            obs::SpanId parent = obs::kNoSpan);

  // Stores (or refreshes) an entry and evicts least-recently-used entries
  // until resident bytes fit the capacity again. Chunk digesting happens
  // outside the lock, so concurrent stages overlap their serialization.
  void store(const std::string& key, std::string_view tar_blob,
             const image::ImageConfig& config);

  CacheStats stats() const;
  std::uint64_t capacity() const { return capacity_; }

  // The CacheStats counters are mirrored into a MetricsRegistry at the same
  // locked update points (`cache.hits`/`cache.misses`/`cache.evictions`
  // counters, `cache.bytes`/`cache.entries` gauges), so the `build-cache`
  // and `metrics` builtins can never disagree. Default registry is
  // obs::global_metrics(); re-point before sharing the cache. The tracer
  // (if any) times lookups as `cache.lookup` spans.
  void set_metrics(obs::MetricsRegistry* metrics);
  void set_tracer(std::shared_ptr<obs::Tracer> tracer);

  // key_{n} = SHA-256(parent | instruction | context digests...): the
  // incremental chain every builder derives its keys with.
  static std::string chain(std::string_view parent, std::string_view instruction,
                           std::initializer_list<std::string_view> context = {});

 private:
  struct Entry {
    image::ChunkedBlob blob;
    image::ImageConfig config;
    std::uint64_t stamp = 0;  // LRU clock
  };
  void evict_locked();

  mutable std::mutex mu_;
  image::ChunkStore* chunks_;
  std::unique_ptr<image::ChunkStore> owned_;
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t capacity_;
  std::uint64_t clock_ = 0;
  CacheStats stats_;
  std::shared_ptr<obs::Tracer> tracer_;
  obs::Counter* hits_metric_;
  obs::Counter* misses_metric_;
  obs::Counter* evictions_metric_;
  obs::Gauge* bytes_metric_;
  obs::Gauge* entries_metric_;
};

using BuildCachePtr = std::shared_ptr<BuildCache>;

// Registers the `build-cache` shell builtin: prints the cache's counters as
// an `strace -c` style table (the PR 1 reporting idiom).
void register_cache_command(shell::CommandRegistry& reg, BuildCachePtr cache);

}  // namespace minicon::buildgraph
