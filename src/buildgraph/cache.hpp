// Content-addressed build cache shared by every builder.
//
// A cache key is an incremental SHA-256 chain over (parent-state digest,
// normalized instruction, digests of any copied context files) — the same
// scheme ch-image's follow-on build cache uses. A cache value is a Merkle
// tree reference: an immutable vfs::SnapNode tree whose directory objects
// are shared structurally and whose file contents are chunked into an
// image::ChunkStore. Storing an entry walks only subtrees the cache has not
// seen before (by Merkle digest), so caching a build state that differs from
// an earlier one by one directory costs O(changed), and a hit returns the
// tree by pointer with no reassembly at all. Pointing the cache at the
// registry's chunk store makes cached file contents deduplicate against
// registry blobs.
//
// Entries are LRU-evicted once resident snapshot bytes exceed the capacity.
// Eviction drops only the cache's entry record (and its tree reference);
// chunks and shared subtrees remain until their last referent drops them.
//
// Thread-safe: the stage scheduler runs independent stages concurrently and
// both builders may share one instance.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "image/chunkstore.hpp"
#include "image/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "vfs/filesystem.hpp"

namespace minicon::shell {
class CommandRegistry;
}

namespace minicon::buildgraph {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t evicted_bytes = 0;  // cumulative bytes dropped by eviction
  std::uint64_t bytes = 0;          // tree bytes of resident entries
  std::uint64_t entries = 0;        // resident entry count
};

class BuildCache {
 public:
  static constexpr std::uint64_t kDefaultCapacity = 256ull << 20;

  // `chunks` is borrowed (pass &registry.chunk_store() to dedup against
  // registry blobs); null makes the cache own a private store.
  explicit BuildCache(image::ChunkStore* chunks = nullptr,
                      std::uint64_t capacity_bytes = kDefaultCapacity);

  struct Hit {
    vfs::SnapNodePtr snapshot;  // immutable Merkle snapshot tree
    image::ImageConfig config;
  };

  // Counts a hit or miss; a hit returns the snapshot tree by pointer (O(1),
  // nothing is reassembled) and marks the entry most-recently-used. With a
  // tracer attached the lookup runs inside a `cache.lookup` span (childed
  // under `parent` when given) annotated with the outcome.
  std::optional<Hit> lookup(const std::string& key,
                            obs::SpanId parent = obs::kNoSpan);

  // Stores (or refreshes) an entry and evicts least-recently-used entries
  // until resident bytes fit the capacity again. Only subtrees whose Merkle
  // digest the cache has not chunked before are walked, outside the lock, so
  // concurrent stages overlap their chunking and an incremental store is
  // O(changed files).
  void store(const std::string& key, vfs::SnapNodePtr snapshot,
             const image::ImageConfig& config,
             obs::SpanId parent = obs::kNoSpan);

  CacheStats stats() const;
  std::uint64_t capacity() const { return capacity_; }

  // The CacheStats counters are mirrored into a MetricsRegistry at the same
  // locked update points (`cache.hits`/`cache.misses`/`cache.evictions`/
  // `cache.evicted_bytes` counters, `cache.bytes`/`cache.entries` gauges),
  // so the `build-cache` and `metrics` builtins can never disagree — even
  // after eviction pressure. Default registry is obs::global_metrics();
  // re-point before sharing the cache. The tracer (if any) times lookups as
  // `cache.lookup` spans and stores as `cache.store` spans.
  void set_metrics(obs::MetricsRegistry* metrics);
  void set_tracer(std::shared_ptr<obs::Tracer> tracer);

  // key_{n} = SHA-256(parent | instruction | context digests...): the
  // incremental chain every builder derives its keys with.
  static std::string chain(std::string_view parent, std::string_view instruction,
                           std::initializer_list<std::string_view> context = {});

 private:
  struct Entry {
    vfs::SnapNodePtr snapshot;
    image::ImageConfig config;
    std::uint64_t stamp = 0;  // LRU clock
  };
  void evict_locked();
  void chunk_new_subtrees(const vfs::SnapNodePtr& node, std::uint64_t* nodes,
                          std::uint64_t* new_bytes);

  mutable std::mutex mu_;
  image::ChunkStore* chunks_;
  std::unique_ptr<image::ChunkStore> owned_;
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t capacity_;
  std::uint64_t clock_ = 0;
  CacheStats stats_;
  std::shared_ptr<obs::Tracer> tracer_;
  obs::Counter* hits_metric_;
  obs::Counter* misses_metric_;
  obs::Counter* evictions_metric_;
  obs::Counter* evicted_bytes_metric_;
  obs::Gauge* bytes_metric_;
  obs::Gauge* entries_metric_;

  // Merkle digests whose subtrees have already been chunked; guarded by its
  // own mutex so chunking never blocks lookups.
  std::mutex seen_mu_;
  std::unordered_set<std::string> seen_;
};

using BuildCachePtr = std::shared_ptr<BuildCache>;

// Registers the `build-cache` shell builtin: prints the cache's counters as
// an `strace -c` style table (the PR 1 reporting idiom).
void register_cache_command(shell::CommandRegistry& reg, BuildCachePtr cache);

}  // namespace minicon::buildgraph
