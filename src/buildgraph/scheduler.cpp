#include "buildgraph/scheduler.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "support/threadpool.hpp"

namespace minicon::buildgraph {

int RetryPolicy::backoff_ms(int next_attempt) const {
  int delay = backoff_base_ms;
  for (int i = 2; i < next_attempt && delay < backoff_cap_ms; ++i) delay *= 2;
  return std::min(delay, backoff_cap_ms);
}

StageScheduler::StageScheduler(const BuildGraph& graph)
    : StageScheduler(graph, Options{}) {}

StageScheduler::StageScheduler(const BuildGraph& graph, Options opts)
    : graph_(graph), opts_(opts) {
  stats_.stages = graph_.stages().size();
  const auto levels = graph_.levels();
  stats_.levels = levels.size();
  for (const auto& level : levels) {
    stats_.max_width = std::max(stats_.max_width, level.size());
  }
}

int StageScheduler::run(const StageFn& exec, Transcript& out) {
  const auto& stages = graph_.stages();
  const std::size_t n = stages.size();
  std::vector<Transcript> transcripts(n);
  std::vector<int> status(n, 0);
  std::vector<bool> skipped(n, false);
  stage_spans_.assign(n, obs::kNoSpan);
  obs::Tracer* tracer = opts_.tracer.get();

  // Begun on the thread that is about to run (or skip) the stage, so the
  // exec body sees its own span via stage_span(index).
  const auto begin_stage_span = [&](const Stage& s) {
    if (tracer == nullptr) return;
    const obs::SpanId id = tracer->begin("stage", opts_.parent_span);
    tracer->annotate(id, "index", std::to_string(s.index));
    tracer->annotate(id, "display", s.display());
    stage_spans_[static_cast<std::size_t>(s.index)] = id;
  };
  const auto end_stage_span = [&](std::size_t i) {
    if (tracer == nullptr) return;
    const obs::SpanId id = stage_spans_[i];
    if (skipped[i]) {
      tracer->annotate(id, "skipped", "true");
    } else {
      tracer->annotate(id, "status", std::to_string(status[i]));
    }
    tracer->end(id);
  };

  support::ThreadPool* pool = opts_.pool;
  if (pool == nullptr) pool = &support::shared_pool();
  stats_.pool_width = pool->width();
  stats_.parallel = opts_.parallel && pool->width() > 1 && n > 1;

  // Dependents adjacency + indegrees (deps always point backwards).
  std::vector<std::vector<int>> dependents(n);
  std::vector<int> indegree(n, 0);
  for (const auto& s : stages) {
    indegree[static_cast<std::size_t>(s.index)] =
        static_cast<int>(s.deps.size());
    for (int dep : s.deps) {
      dependents[static_cast<std::size_t>(dep)].push_back(s.index);
    }
  }

  if (!stats_.parallel) {
    // Serial path: stage indices are already a topological order.
    stats_.peak_in_flight = n > 0 ? 1 : 0;
    for (const auto& s : stages) {
      const std::size_t i = static_cast<std::size_t>(s.index);
      bool dep_failed = false;
      for (int dep : s.deps) {
        const std::size_t d = static_cast<std::size_t>(dep);
        if (status[d] != 0 || skipped[d]) dep_failed = true;
      }
      begin_stage_span(s);
      if (dep_failed) {
        skipped[i] = true;
        transcripts[i].line("buildgraph: " + s.display() +
                            " skipped: a dependency failed");
        end_stage_span(i);
        continue;
      }
      status[i] = exec(s, transcripts[i]);
      end_stage_span(i);
    }
  } else {
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t remaining = n;
    std::size_t in_flight = 0;

    // Marks `i` finished and dispatches / skips newly-ready dependents.
    // Called with `mu` held.
    std::function<void(std::size_t)> on_finished;
    std::function<void(int)> dispatch = [&](int idx) {
      ++in_flight;
      stats_.peak_in_flight = std::max(stats_.peak_in_flight, in_flight);
      // The future is intentionally dropped: completion is tracked via
      // `remaining`, and exec's exceptions are caught in the task.
      (void)pool->submit([&, idx] {
        const Stage& s = stages[static_cast<std::size_t>(idx)];
        begin_stage_span(s);
        int rc = 0;
        try {
          rc = exec(s, transcripts[static_cast<std::size_t>(idx)]);
        } catch (...) {
          rc = 70;  // EX_SOFTWARE: the stage body must not throw
        }
        std::lock_guard lock(mu);
        status[static_cast<std::size_t>(idx)] = rc;
        end_stage_span(static_cast<std::size_t>(idx));
        --in_flight;
        on_finished(static_cast<std::size_t>(idx));
      });
    };
    on_finished = [&](std::size_t i) {
      --remaining;
      for (int dep_idx : dependents[i]) {
        const std::size_t d = static_cast<std::size_t>(dep_idx);
        if (--indegree[d] != 0) continue;
        bool dep_failed = false;
        for (int dep : stages[d].deps) {
          const std::size_t k = static_cast<std::size_t>(dep);
          if (status[k] != 0 || skipped[k]) dep_failed = true;
        }
        if (dep_failed) {
          skipped[d] = true;
          transcripts[d].line("buildgraph: " + stages[d].display() +
                              " skipped: a dependency failed");
          begin_stage_span(stages[d]);
          end_stage_span(d);
          on_finished(d);  // cascades to its dependents
        } else {
          dispatch(dep_idx);
        }
      }
      if (remaining == 0) done_cv.notify_all();
    };

    {
      std::unique_lock lock(mu);
      std::vector<int> ready;
      for (const auto& s : stages) {
        if (indegree[static_cast<std::size_t>(s.index)] == 0) {
          ready.push_back(s.index);
        }
      }
      for (int idx : ready) dispatch(idx);
      done_cv.wait(lock, [&] { return remaining == 0; });
    }
  }

  // Deterministic merge: stage order, not completion order.
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& line : transcripts[i].lines()) out.line(line);
  }
  if (n > 1) {
    out.line("buildgraph: " + std::to_string(n) + " stages in " +
             std::to_string(stats_.levels) + " levels (max " +
             std::to_string(stats_.max_width) + " concurrent)");
  }
  // Mirror the run's shape into the registry so `metrics` reports the same
  // numbers stats() does.
  obs::MetricsRegistry& reg =
      opts_.metrics != nullptr ? *opts_.metrics : obs::global_metrics();
  reg.gauge("sched.stages").set(static_cast<std::int64_t>(stats_.stages));
  reg.gauge("sched.levels").set(static_cast<std::int64_t>(stats_.levels));
  reg.gauge("sched.max_width")
      .set(static_cast<std::int64_t>(stats_.max_width));
  reg.gauge("sched.peak_in_flight")
      .set(static_cast<std::int64_t>(stats_.peak_in_flight));
  reg.gauge("sched.pool_width")
      .set(static_cast<std::int64_t>(stats_.pool_width));
  reg.gauge("sched.parallel").set(stats_.parallel ? 1 : 0);

  for (std::size_t i = 0; i < n; ++i) {
    if (status[i] != 0) return status[i];
    if (skipped[i]) return 1;
  }
  return 0;
}

}  // namespace minicon::buildgraph
