// Multi-stage build graph: a parsed Dockerfile lowered into a DAG of build
// stages with explicit cross-stage edges.
//
// Each `FROM` opens a stage; a stage depends on another stage when its FROM
// names that stage's alias (or index) or when one of its COPY instructions
// carries `--from=<stage>`. Dependencies always point at earlier stages (the
// parser rejects forward and self references), so stage indices are already
// a topological order. The scheduler uses the graph's dependency levels to
// run independent stages concurrently; builders use the per-instruction
// global numbering to keep transcripts identical to a linear build.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "buildfile/dockerfile.hpp"

namespace minicon::buildgraph {

// One instruction inside a stage. `ins` borrows from the Dockerfile, which
// must outlive the graph (builders parse and lower in the same scope).
struct StageInstr {
  const build::Instruction* ins = nullptr;
  int number = 0;         // 1-based position in the whole file (transcripts)
  int copy_from = -1;     // source stage for COPY --from; -1 = build context
  std::string copy_args;  // COPY/ADD argument text with any --from stripped
};

struct Stage {
  int index = 0;
  std::string name;      // `AS` alias; "" if unnamed
  std::string base_ref;  // registry reference (meaningful when base_stage<0)
  int base_stage = -1;   // stage index the FROM names; -1 = registry pull
  int from_number = 0;   // 1-based instruction number of the FROM
  const build::Instruction* from = nullptr;
  std::vector<StageInstr> instrs;  // stage body, FROM excluded
  std::vector<int> deps;           // sorted unique stage indices

  // "stage 0 (builder)" / "stage 2" — for diagnostics.
  std::string display() const;
};

class BuildGraph {
 public:
  const std::vector<Stage>& stages() const { return stages_; }
  const Stage& stage(int i) const { return stages_[static_cast<std::size_t>(i)]; }
  // The final stage: its result is the image being built.
  int target() const { return static_cast<int>(stages_.size()) - 1; }
  // Total instructions in the file (FROMs included), for STEP n/m prefixes.
  std::size_t instruction_count() const { return instruction_count_; }

  // Stages grouped by dependency depth: level 0 has no dependencies, level
  // k+1 depends only on levels <= k. Stages within one level are mutually
  // independent and may run concurrently.
  std::vector<std::vector<int>> levels() const;
  // Width of the widest level: the static parallelism bound.
  std::size_t max_parallel_width() const;

 private:
  friend std::variant<BuildGraph, build::DockerfileError> lower(
      const build::Dockerfile& df);
  std::vector<Stage> stages_;
  std::size_t instruction_count_ = 0;
};

// Lowers a parsed Dockerfile into the stage DAG. The parser has already
// rejected malformed stage references; lowering only resolves them.
std::variant<BuildGraph, build::DockerfileError> lower(
    const build::Dockerfile& df);

}  // namespace minicon::buildgraph
