// Parallel stage scheduler for the build graph.
//
// Independent stages (disjoint dependency chains) run concurrently as tasks
// on a support::ThreadPool; a stage is dispatched the moment its last
// dependency completes. Each stage writes its own Transcript, and after the
// run the per-stage transcripts are merged in stage order — so a parallel
// build's transcript is byte-identical to a serial build's, whatever order
// the pool actually executed in. A failed stage fails the build; stages
// depending on it are skipped with a diagnostic, while already-runnable
// stages still finish (their work is valid and cacheable).
//
// The builders' stage bodies serialize their access to the simulated
// machine (one kernel, one host filesystem) behind the builder's machine
// mutex; what overlaps across stages is everything outside it — snapshot
// chunking/digesting for the build cache and retry backoff waits.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "buildgraph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/transcript.hpp"

namespace minicon::support {
class ThreadPool;
}

namespace minicon::buildgraph {

// Bounded exponential backoff for RUN instructions that fail transiently
// (e.g. under kernel::FaultInjectSyscalls). max_attempts=1 disables retry.
struct RetryPolicy {
  int max_attempts = 1;
  int backoff_base_ms = 1;
  int backoff_cap_ms = 50;

  // Delay before attempt `next_attempt` (2-based): base * 2^(n-2), capped.
  int backoff_ms(int next_attempt) const;
};

struct ScheduleStats {
  std::size_t stages = 0;
  std::size_t levels = 0;
  std::size_t max_width = 0;       // widest dependency level (static bound)
  std::size_t peak_in_flight = 0;  // max stages dispatched-but-unfinished
  std::size_t pool_width = 0;
  bool parallel = false;
};

class StageScheduler {
 public:
  struct Options {
    support::ThreadPool* pool = nullptr;  // null = support::shared_pool()
    bool parallel = true;
    // Observability: every stage gets a `stage` span (childed under
    // `parent_span`, typically the builder's `build` span), including
    // skipped stages (annotated skipped=true); stats_ gauges mirror into
    // `metrics` (null = obs::global_metrics()) after the run.
    std::shared_ptr<obs::Tracer> tracer;
    obs::SpanId parent_span = obs::kNoSpan;
    obs::MetricsRegistry* metrics = nullptr;
  };

  StageScheduler(const BuildGraph& graph, Options opts);
  explicit StageScheduler(const BuildGraph& graph);

  // Runs one stage; must tolerate concurrent invocations for independent
  // stages. Returns the stage's exit status (0 = success).
  using StageFn = std::function<int(const Stage&, Transcript&)>;

  // Runs every stage honoring dependencies, merges the per-stage
  // transcripts into `out` in stage order, and returns the first (by stage
  // index) non-zero status, or 0.
  int run(const StageFn& exec, Transcript& out);

  const ScheduleStats& stats() const { return stats_; }

  // The span under which stage `index` is currently executing (kNoSpan
  // without a tracer). Valid inside exec for that stage: the span is begun
  // on the executing thread immediately before exec is invoked, so the
  // stage body can child its own spans (instructions, cache lookups) under
  // it and annotate retries.
  obs::SpanId stage_span(int index) const {
    const auto i = static_cast<std::size_t>(index);
    return i < stage_spans_.size() ? stage_spans_[i] : obs::kNoSpan;
  }

 private:
  const BuildGraph& graph_;
  Options opts_;
  ScheduleStats stats_;
  std::vector<obs::SpanId> stage_spans_;
};

}  // namespace minicon::buildgraph
