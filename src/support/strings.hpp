// Small string utilities shared across the simulator.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace minicon {

// Split on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

// Split on runs of whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Strip leading and trailing whitespace.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
bool contains(std::string_view haystack, std::string_view needle);

// Replace every occurrence of `from` with `to`.
std::string replace_all(std::string s, std::string_view from,
                        std::string_view to);

// Parse a non-negative decimal integer; returns false on any non-digit or
// empty input.
bool parse_u32(std::string_view s, std::uint32_t& out);
bool parse_u64(std::string_view s, std::uint64_t& out);

// printf-like octal / decimal formatting used by ls(1) and tar headers.
std::string format_octal(std::uint64_t value, int width);

// ls -h / du -h style size rendering: "512", "1.5K", "24M", "3.2G". Shared
// by the shell's ls and the `service` / `build-cache` usage builtins.
std::string human_size(std::uint64_t n);

}  // namespace minicon
