#include "support/errno.hpp"

namespace minicon {

std::string_view err_name(Err e) noexcept {
  switch (e) {
    case Err::none: return "OK";
    case Err::eperm: return "EPERM";
    case Err::enoent: return "ENOENT";
    case Err::esrch: return "ESRCH";
    case Err::eintr: return "EINTR";
    case Err::eio: return "EIO";
    case Err::enxio: return "ENXIO";
    case Err::e2big: return "E2BIG";
    case Err::enoexec: return "ENOEXEC";
    case Err::ebadf: return "EBADF";
    case Err::echild: return "ECHILD";
    case Err::eagain: return "EAGAIN";
    case Err::enomem: return "ENOMEM";
    case Err::eacces: return "EACCES";
    case Err::efault: return "EFAULT";
    case Err::enotblk: return "ENOTBLK";
    case Err::ebusy: return "EBUSY";
    case Err::eexist: return "EEXIST";
    case Err::exdev: return "EXDEV";
    case Err::enodev: return "ENODEV";
    case Err::enotdir: return "ENOTDIR";
    case Err::eisdir: return "EISDIR";
    case Err::einval: return "EINVAL";
    case Err::enfile: return "ENFILE";
    case Err::emfile: return "EMFILE";
    case Err::enotty: return "ENOTTY";
    case Err::etxtbsy: return "ETXTBSY";
    case Err::efbig: return "EFBIG";
    case Err::enospc: return "ENOSPC";
    case Err::espipe: return "ESPIPE";
    case Err::erofs: return "EROFS";
    case Err::emlink: return "EMLINK";
    case Err::epipe: return "EPIPE";
    case Err::erange: return "ERANGE";
    case Err::enametoolong: return "ENAMETOOLONG";
    case Err::enosys: return "ENOSYS";
    case Err::enotempty: return "ENOTEMPTY";
    case Err::eloop: return "ELOOP";
    case Err::enodata: return "ENODATA";
    case Err::eoverflow: return "EOVERFLOW";
    case Err::eusers: return "EUSERS";
    case Err::enotsup: return "ENOTSUP";
    case Err::estale: return "ESTALE";
  }
  return "E???";
}

std::string_view err_message(Err e) noexcept {
  switch (e) {
    case Err::none: return "Success";
    case Err::eperm: return "Operation not permitted";
    case Err::enoent: return "No such file or directory";
    case Err::esrch: return "No such process";
    case Err::eintr: return "Interrupted system call";
    case Err::eio: return "Input/output error";
    case Err::enxio: return "No such device or address";
    case Err::e2big: return "Argument list too long";
    case Err::enoexec: return "Exec format error";
    case Err::ebadf: return "Bad file descriptor";
    case Err::echild: return "No child processes";
    case Err::eagain: return "Resource temporarily unavailable";
    case Err::enomem: return "Cannot allocate memory";
    case Err::eacces: return "Permission denied";
    case Err::efault: return "Bad address";
    case Err::enotblk: return "Block device required";
    case Err::ebusy: return "Device or resource busy";
    case Err::eexist: return "File exists";
    case Err::exdev: return "Invalid cross-device link";
    case Err::enodev: return "No such device";
    case Err::enotdir: return "Not a directory";
    case Err::eisdir: return "Is a directory";
    case Err::einval: return "Invalid argument";
    case Err::enfile: return "Too many open files in system";
    case Err::emfile: return "Too many open files";
    case Err::enotty: return "Inappropriate ioctl for device";
    case Err::etxtbsy: return "Text file busy";
    case Err::efbig: return "File too large";
    case Err::enospc: return "No space left on device";
    case Err::espipe: return "Illegal seek";
    case Err::erofs: return "Read-only file system";
    case Err::emlink: return "Too many links";
    case Err::epipe: return "Broken pipe";
    case Err::erange: return "Numerical result out of range";
    case Err::enametoolong: return "File name too long";
    case Err::enosys: return "Function not implemented";
    case Err::enotempty: return "Directory not empty";
    case Err::eloop: return "Too many levels of symbolic links";
    case Err::enodata: return "No data available";
    case Err::eoverflow: return "Value too large for defined data type";
    case Err::eusers: return "Too many users";
    case Err::enotsup: return "Operation not supported";
    case Err::estale: return "Stale file handle";
  }
  return "Unknown error";
}

}  // namespace minicon
