// Thread-safe token bucket for per-tenant pull-rate fairness.
//
// The registry service admits pulls by spending tokens (bytes) from the
// pulling tenant's bucket: `rate` tokens refill per second up to `burst`
// capacity. When the bucket runs dry the service rejects with EAGAIN and a
// retry hint instead of queuing — backpressure stays at the client, the
// service never accumulates an unbounded line of waiters (the 10k-client
// load bench is the sizing argument). The clock is injectable so tests and
// benches drive refill deterministically.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>

namespace minicon::support {

class TokenBucket {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;
  using Clock = std::function<TimePoint()>;

  // rate_per_sec <= 0 disables limiting (every acquire succeeds). burst is
  // the bucket capacity; the bucket starts full. `clock` null selects
  // std::chrono::steady_clock.
  TokenBucket(double rate_per_sec, double burst, Clock clock = {});

  // Refill to now, then take `tokens` if available. Never blocks.
  bool try_acquire(double tokens);

  // Tokens available right now (after refill).
  double available();

  // How long until `tokens` could be acquired, assuming no other spender.
  // Zero when they are available already; a large value when tokens exceed
  // burst (the request can never succeed in one acquire).
  std::chrono::microseconds retry_after(double tokens);

  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void refill_locked(TimePoint now);

  const double rate_;
  const double burst_;
  Clock clock_;
  std::mutex mu_;
  double tokens_;
  TimePoint last_;
};

}  // namespace minicon::support
