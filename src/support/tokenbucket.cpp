#include "support/tokenbucket.hpp"

#include <algorithm>

namespace minicon::support {

TokenBucket::TokenBucket(double rate_per_sec, double burst, Clock clock)
    : rate_(rate_per_sec),
      burst_(burst < 0 ? 0 : burst),
      clock_(clock ? std::move(clock)
                   : [] { return std::chrono::steady_clock::now(); }),
      tokens_(burst_),
      last_(clock_()) {}

void TokenBucket::refill_locked(TimePoint now) {
  if (now <= last_) return;
  const double elapsed =
      std::chrono::duration<double>(now - last_).count();
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
  last_ = now;
}

bool TokenBucket::try_acquire(double tokens) {
  if (rate_ <= 0) return true;
  std::lock_guard lock(mu_);
  refill_locked(clock_());
  if (tokens_ < tokens) return false;
  tokens_ -= tokens;
  return true;
}

double TokenBucket::available() {
  if (rate_ <= 0) return burst_;
  std::lock_guard lock(mu_);
  refill_locked(clock_());
  return tokens_;
}

std::chrono::microseconds TokenBucket::retry_after(double tokens) {
  if (rate_ <= 0) return std::chrono::microseconds{0};
  std::lock_guard lock(mu_);
  refill_locked(clock_());
  if (tokens_ >= tokens) return std::chrono::microseconds{0};
  if (tokens > burst_) return std::chrono::microseconds::max();
  const double deficit = tokens - tokens_;
  return std::chrono::microseconds{
      static_cast<std::int64_t>(deficit / rate_ * 1e6) + 1};
}

}  // namespace minicon::support
