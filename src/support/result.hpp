// Minimal expected-style result type carrying an Err.
//
// GCC 12 / C++20 has no std::expected, so we provide the small subset the
// simulated kernel needs: value-or-error, monadic-free, assert-on-misuse.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "support/errno.hpp"

namespace minicon {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit: lets syscalls `return Err::eperm;` / `return v;`.
  Result(T value) : value_(std::move(value)), err_(Err::none) {}
  Result(Err e) : err_(e) { assert(e != Err::none); }

  bool ok() const noexcept { return err_ == Err::none; }
  explicit operator bool() const noexcept { return ok(); }

  Err error() const noexcept { return err_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Err err_;
};

// Result<void> analogue: success or an errno.
class [[nodiscard]] VoidResult {
 public:
  VoidResult() : err_(Err::none) {}
  VoidResult(Err e) : err_(e) {}  // Err::none means success.

  bool ok() const noexcept { return err_ == Err::none; }
  explicit operator bool() const noexcept { return ok(); }
  Err error() const noexcept { return err_; }

  static VoidResult success() { return VoidResult{}; }

 private:
  Err err_;
};

// Propagate an error from an expression yielding Result/VoidResult.
#define MINICON_TRY(expr)                   \
  do {                                      \
    auto try_rc_ = (expr);                  \
    if (!try_rc_.ok()) return try_rc_.error(); \
  } while (0)

// Assign the value of a Result expression or propagate its error.
#define MINICON_TRY_ASSIGN(lhs, expr)       \
  auto lhs##_rc_ = (expr);                  \
  if (!lhs##_rc_.ok()) return lhs##_rc_.error(); \
  auto lhs = std::move(lhs##_rc_).value()

}  // namespace minicon
