#include "support/transcript.hpp"

#include <ostream>

#include "support/strings.hpp"

namespace minicon {

void Transcript::line(std::string text) {
  if (echo_) echo_(text);
  lines_.push_back(std::move(text));
}

void Transcript::block(std::string_view text) {
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find('\n', start);
    if (pos == std::string_view::npos) {
      if (start < text.size()) line(std::string(text.substr(start)));
      return;
    }
    line(std::string(text.substr(start, pos - start)));
    start = pos + 1;
  }
}

std::string Transcript::text() const {
  std::string out;
  for (const auto& l : lines_) {
    out += l;
    out += '\n';
  }
  return out;
}

bool Transcript::contains(std::string_view needle) const {
  for (const auto& l : lines_) {
    if (minicon::contains(l, needle)) return true;
  }
  return false;
}

std::size_t Transcript::count(std::string_view needle) const {
  std::size_t n = 0;
  for (const auto& l : lines_) {
    if (minicon::contains(l, needle)) ++n;
  }
  return n;
}

void Transcript::echo_to(std::ostream& os) {
  set_echo([&os](const std::string& l) { os << l << '\n'; });
}

void Transcript::print(std::ostream& os) const {
  for (const auto& l : lines_) os << l << '\n';
}

}  // namespace minicon
