// Purely-lexical path manipulation for the simulated VFS.
//
// Paths inside the simulator are always slash-separated and absolute once
// resolved against a working directory; symlink semantics live in the kernel
// path walker, not here.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace minicon {

// Split "/a/b/c" -> {"a","b","c"}; "" and "/" -> {}. "." components are
// dropped; ".." is preserved (resolved by the path walker, which must honor
// symlinks).
std::vector<std::string> path_components(std::string_view path);

// Lexically normalize: collapse "//", drop ".", resolve ".." where possible
// without consulting the filesystem. Result is absolute if input was.
std::string path_normalize(std::string_view path);

// Join two paths; if `rhs` is absolute it wins.
std::string path_join(std::string_view lhs, std::string_view rhs);

// "/a/b/c" -> "/a/b"; "/a" -> "/"; "/" -> "/".
std::string path_dirname(std::string_view path);

// "/a/b/c" -> "c"; "/" -> "/".
std::string path_basename(std::string_view path);

bool path_is_absolute(std::string_view path);

}  // namespace minicon
