// Transcript sink for regenerating the paper's figures.
//
// Every figure in the paper is a terminal transcript ($ prompt lines, tool
// output, error lines). Builders, package managers, and the shell write their
// user-visible output through a Transcript so that benches can both print it
// and assert on its contents.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace minicon {

class Transcript {
 public:
  Transcript() = default;

  // Appends one line (no trailing newline needed).
  void line(std::string text);

  // Appends a "$ cmd" prompt line, like an interactive session.
  void prompt(std::string_view cmd) { line("$ " + std::string(cmd)); }

  // Appends possibly-multiline text, splitting on '\n'.
  void block(std::string_view text);

  const std::vector<std::string>& lines() const noexcept { return lines_; }

  // Whole transcript joined with newlines (plus trailing newline).
  std::string text() const;

  bool contains(std::string_view needle) const;

  // Number of lines containing `needle`.
  std::size_t count(std::string_view needle) const;

  void clear() { lines_.clear(); }

  // When set, each line is also forwarded as it is appended (used by benches
  // that stream to stdout).
  void set_echo(std::function<void(const std::string&)> echo) {
    echo_ = std::move(echo);
  }

  // Convenience: echo to an ostream.
  void echo_to(std::ostream& os);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> lines_;
  std::function<void(const std::string&)> echo_;
};

}  // namespace minicon
