#include "support/strings.hpp"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace minicon {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string replace_all(std::string s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

bool parse_u32(std::string_view s, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v > UINT32_MAX) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

std::string format_octal(std::uint64_t value, int width) {
  std::string out(static_cast<std::size_t>(width), '0');
  for (int i = width - 1; i >= 0 && (value != 0 || i == width - 1); --i) {
    out[static_cast<std::size_t>(i)] = static_cast<char>('0' + (value & 7));
    value >>= 3;
  }
  return out;
}

std::string human_size(std::uint64_t n) {
  if (n < 1024) return std::to_string(n);
  const char* units = "KMGTP";
  double v = static_cast<double>(n);
  int u = -1;
  while (v >= 1024 && u < 4) {
    v /= 1024;
    ++u;
  }
  char buf[32];
  if (v < 10) {
    std::snprintf(buf, sizeof buf, "%.1f%c", v, units[u]);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f%c", v, units[u]);
  }
  return buf;
}

}  // namespace minicon
