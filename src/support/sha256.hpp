// Self-contained SHA-256 (FIPS 180-4) for content-addressed image storage.
//
// The registry and layer store address blobs by "sha256:<hex>" digests like
// OCI registries do; no external crypto dependency is available offline, so
// we implement the compression function directly.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

namespace minicon {

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  // Finalizes and returns the 32-byte digest. The object must be reset()
  // before reuse.
  std::array<std::uint8_t, 32> finish();

  // One-shot helpers.
  static std::array<std::uint8_t, 32> digest(std::string_view data);
  static std::string hex_digest(std::string_view data);

  // Digest of the parts as if concatenated, fed incrementally — same result
  // as hex_digest(a + b + ...) without materializing the throwaway string.
  static std::string hex_chain(std::initializer_list<std::string_view> parts);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

// Lowercase hex of arbitrary bytes.
std::string to_hex(const std::uint8_t* data, std::size_t len);

// "sha256:<hex>" digest string as used by the registry.
std::string oci_digest(std::string_view blob);

}  // namespace minicon
