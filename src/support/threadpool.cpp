#include "support/threadpool.hpp"

namespace minicon::support {

ThreadPool::ThreadPool(std::size_t width, obs::MetricsRegistry* metrics) {
  if (width == 0) {
    width = std::thread::hardware_concurrency();
    if (width == 0) width = 1;
  }
  obs::MetricsRegistry& reg =
      metrics != nullptr ? *metrics : obs::global_metrics();
  queue_depth_ = &reg.gauge("pool.queue_depth");
  tasks_ = &reg.counter("pool.tasks");
  wait_us_ = &reg.histogram("pool.task_wait_us");
  run_us_ = &reg.histogram("pool.task_run_us");
  workers_.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    workers_.emplace_back([this] { worker(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

void ThreadPool::set_tracer(std::shared_ptr<obs::Tracer> tracer) {
  std::lock_guard lock(mu_);
  tracer_ = std::move(tracer);
}

void ThreadPool::worker() {
  for (;;) {
    Task task;
    std::shared_ptr<obs::Tracer> tracer;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Shutdown drains: exit only once the queue is empty.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
      tracer = tracer_;
    }
    const auto started = std::chrono::steady_clock::now();
    const double wait_us =
        std::chrono::duration<double, std::micro>(started - task.enqueued)
            .count();
    wait_us_->observe(wait_us);
    {
      obs::Span span(tracer.get(), "pool.task");
      if (span.id() != obs::kNoSpan) {
        span.annotate("wait_us", std::to_string(static_cast<long long>(wait_us)));
      }
      task.fn();  // exceptions land in the task's future, not here
    }
    run_us_->observe(std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - started)
                         .count());
    tasks_->add();
  }
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace minicon::support
