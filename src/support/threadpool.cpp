#include "support/threadpool.hpp"

namespace minicon::support {

ThreadPool::ThreadPool(std::size_t width) {
  if (width == 0) {
    width = std::thread::hardware_concurrency();
    if (width == 0) width = 1;
  }
  workers_.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    workers_.emplace_back([this] { worker(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

void ThreadPool::worker() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Shutdown drains: exit only once the queue is empty.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future, not here
  }
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace minicon::support
