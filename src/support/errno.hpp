// Linux-style error numbers for the simulated kernel.
//
// The paper's argument turns on *which* errno a syscall returns under which
// privilege model (e.g. apt-get printing "seteuid 100 failed - seteuid (22:
// Invalid argument)" because setresuid(2) returns EINVAL for an unmapped UID
// in an unprivileged user namespace). We therefore carry real errno values,
// with the numbers matching asm-generic so transcripts line up with the paper.
#pragma once

#include <cstdint>
#include <string_view>

namespace minicon {

enum class Err : std::int32_t {
  none = 0,
  eperm = 1,    // Operation not permitted
  enoent = 2,   // No such file or directory
  esrch = 3,    // No such process
  eintr = 4,    // Interrupted system call
  eio = 5,      // I/O error
  enxio = 6,    // No such device or address
  e2big = 7,    // Argument list too long
  enoexec = 8,  // Exec format error
  ebadf = 9,    // Bad file number
  echild = 10,  // No child processes
  eagain = 11,  // Try again
  enomem = 12,  // Out of memory
  eacces = 13,  // Permission denied
  efault = 14,  // Bad address
  enotblk = 15, // Block device required
  ebusy = 16,   // Device or resource busy
  eexist = 17,  // File exists
  exdev = 18,   // Cross-device link
  enodev = 19,  // No such device
  enotdir = 20, // Not a directory
  eisdir = 21,  // Is a directory
  einval = 22,  // Invalid argument
  enfile = 23,  // File table overflow
  emfile = 24,  // Too many open files
  enotty = 25,  // Not a typewriter
  etxtbsy = 26, // Text file busy
  efbig = 27,   // File too large
  enospc = 28,  // No space left on device
  espipe = 29,  // Illegal seek
  erofs = 30,   // Read-only file system
  emlink = 31,  // Too many links
  epipe = 32,   // Broken pipe
  erange = 34,  // Math result not representable
  enametoolong = 36,
  enosys = 38,       // Function not implemented
  enotempty = 39,    // Directory not empty
  eloop = 40,        // Too many symbolic links
  enodata = 61,      // No data available (missing xattr)
  eoverflow = 75,    // Value too large for defined data type
  eusers = 87,       // Too many users
  enotsup = 95,      // Operation not supported
  estale = 116,      // Stale file handle (NFS)
};

// errno name, e.g. "EPERM".
std::string_view err_name(Err e) noexcept;

// strerror(3)-style message, e.g. "Operation not permitted".
std::string_view err_message(Err e) noexcept;

// Numeric value as the kernel would report it.
constexpr std::int32_t err_value(Err e) noexcept {
  return static_cast<std::int32_t>(e);
}

}  // namespace minicon
