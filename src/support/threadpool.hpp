// Fixed-width worker pool over one shared FIFO queue.
//
// The distribution pipeline (chunk digesting in the registry, compute-node
// launch fan-out in Cluster) needs bounded concurrency: the Astra workflow
// pulls on up to 64 nodes at once (§4.2, Fig 6), and a thread per node or
// per chunk does not survive "millions of users" traffic. submit() returns
// a std::future, so exceptions thrown by a task propagate to the waiter
// instead of killing a worker. Destruction drains the queue: every task
// submitted before shutdown runs to completion.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace minicon::support {

class ThreadPool {
 public:
  // width 0 = one worker per hardware thread (at least one). The pool
  // always reports into a MetricsRegistry (null = obs::global_metrics()):
  // `pool.queue_depth` gauge, `pool.tasks` counter, and
  // `pool.task_wait_us` / `pool.task_run_us` histograms.
  explicit ThreadPool(std::size_t width = 0,
                      obs::MetricsRegistry* metrics = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t width() const { return workers_.size(); }
  std::size_t pending() const;

  // Drains the queue (every task already submitted runs) and joins the
  // workers. Idempotent; subsequent submit() calls throw.
  void shutdown();

  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only; std::function requires copyable targets,
    // so the task rides in a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard lock(mu_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.push_back(
          {[task] { (*task)(); }, std::chrono::steady_clock::now()});
      queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    }
    cv_.notify_one();
    return future;
  }

  // When set, every task runs inside a root `pool.task` span annotated with
  // its queue wait. Null detaches.
  void set_tracer(std::shared_ptr<obs::Tracer> tracer);

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  std::shared_ptr<obs::Tracer> tracer_;  // guarded by mu_

  // Resolved once at construction; updates are lock-free relaxed atomics.
  obs::Gauge* queue_depth_;
  obs::Counter* tasks_;
  obs::Histogram* wait_us_;
  obs::Histogram* run_us_;
};

// Lazily-constructed process-wide pool for digest work. Components take an
// optional ThreadPool*; null means this shared pool.
ThreadPool& shared_pool();

}  // namespace minicon::support
