#include "support/path.hpp"

namespace minicon {

std::vector<std::string> path_components(std::string_view path) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    const std::size_t start = i;
    while (i < path.size() && path[i] != '/') ++i;
    if (i > start) {
      std::string_view comp = path.substr(start, i - start);
      if (comp != ".") out.emplace_back(comp);
    }
  }
  return out;
}

std::string path_normalize(std::string_view path) {
  const bool abs = path_is_absolute(path);
  std::vector<std::string> stack;
  for (auto& comp : path_components(path)) {
    if (comp == "..") {
      if (!stack.empty() && stack.back() != "..") {
        stack.pop_back();
      } else if (!abs) {
        stack.push_back(comp);
      }
      // ".." at the root of an absolute path stays at "/".
    } else {
      stack.push_back(comp);
    }
  }
  std::string out = abs ? "/" : "";
  for (std::size_t i = 0; i < stack.size(); ++i) {
    if (i > 0) out += '/';
    out += stack[i];
  }
  if (out.empty()) out = abs ? "/" : ".";
  if (abs && out.size() > 1 && out[0] == '/' && out[1] == '/') {
    out.erase(0, 1);
  }
  return out;
}

std::string path_join(std::string_view lhs, std::string_view rhs) {
  if (rhs.empty()) return std::string(lhs);
  if (path_is_absolute(rhs)) return std::string(rhs);
  std::string out(lhs);
  if (!out.empty() && out.back() != '/') out += '/';
  out += rhs;
  return out;
}

std::string path_dirname(std::string_view path) {
  const std::string norm = path_normalize(path);
  const std::size_t pos = norm.rfind('/');
  if (pos == std::string::npos) return ".";
  if (pos == 0) return "/";
  return norm.substr(0, pos);
}

std::string path_basename(std::string_view path) {
  const std::string norm = path_normalize(path);
  if (norm == "/") return "/";
  const std::size_t pos = norm.rfind('/');
  if (pos == std::string::npos) return norm;
  return norm.substr(pos + 1);
}

bool path_is_absolute(std::string_view path) {
  return !path.empty() && path[0] == '/';
}

}  // namespace minicon
