#include "buildfile/dockerfile.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <optional>

#include "support/strings.hpp"

namespace minicon::build {

namespace {

struct Keyword {
  const char* name;
  InstrKind kind;
};

constexpr Keyword kKeywords[] = {
    {"FROM", InstrKind::kFrom},         {"RUN", InstrKind::kRun},
    {"COPY", InstrKind::kCopy},         {"ADD", InstrKind::kAdd},
    {"ENV", InstrKind::kEnv},           {"ARG", InstrKind::kArg},
    {"WORKDIR", InstrKind::kWorkdir},   {"USER", InstrKind::kUser},
    {"SHELL", InstrKind::kShell},       {"CMD", InstrKind::kCmd},
    {"ENTRYPOINT", InstrKind::kEntrypoint}, {"LABEL", InstrKind::kLabel},
};

std::string upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool is_comment(std::string_view line) {
  const std::string_view t = trim(line);
  return !t.empty() && t.front() == '#';
}

// Parses a JSON string array (`["/bin/sh", "-c"]`). Returns false if the
// text is not a clean array; the caller then keeps shell form.
bool parse_json_array(std::string_view text, std::vector<std::string>& out) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '[') return false;
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == ']') return trim(text.substr(i + 1)).empty();
  while (true) {
    skip_ws();
    if (i >= text.size() || text[i] != '"') return false;
    ++i;
    std::string elem;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;
      elem += text[i++];
    }
    if (i >= text.size()) return false;
    ++i;  // closing quote
    out.push_back(std::move(elem));
    skip_ws();
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    if (i < text.size() && text[i] == ']') {
      return trim(text.substr(i + 1)).empty();
    }
    return false;
  }
}

}  // namespace

std::string instr_name(InstrKind kind) {
  for (const Keyword& kw : kKeywords) {
    if (kw.kind == kind) return kw.name;
  }
  return "?";
}

std::string Dockerfile::base() const {
  const auto words = split_ws(instructions.front().text);
  return words.empty() ? "" : words.front();
}

std::size_t Dockerfile::stage_count() const {
  std::size_t n = 0;
  for (const auto& ins : instructions) {
    if (ins.kind == InstrKind::kFrom) ++n;
  }
  return n;
}

FromClause parse_from(const std::string& text) {
  const auto fields = split_ws(text);
  FromClause fc;
  if (!fields.empty()) fc.ref = fields[0];
  if (fields.size() >= 3 && upper(fields[1]) == "AS") fc.alias = fields[2];
  return fc;
}

std::string strip_copy_from(std::string& text) {
  const auto fields = split_ws(text);
  if (fields.empty() || !fields[0].starts_with("--from=")) return "";
  const std::string ref = fields[0].substr(7);
  std::vector<std::string> rest(fields.begin() + 1, fields.end());
  text = join(rest, " ");
  return ref;
}

namespace {

// Stage-reference validation: stage names are declared by `FROM ... AS`, and
// a `COPY --from` may only name (or index) a stage that is already complete.
std::optional<DockerfileError> validate_stages(const Dockerfile& df) {
  // First pass: stage aliases in declaration order, with duplicate and
  // self-referential FROM checks.
  std::vector<std::string> aliases;  // per stage; "" if unnamed
  for (const auto& ins : df.instructions) {
    if (ins.kind != InstrKind::kFrom) continue;
    const FromClause fc = parse_from(ins.text);
    if (!fc.alias.empty()) {
      for (const auto& seen : aliases) {
        if (seen == fc.alias) {
          return DockerfileError{ins.line,
                                 "duplicate build stage name: " + fc.alias};
        }
      }
      // `FROM x AS x` is only legal when x names an *earlier* stage.
      if (fc.ref == fc.alias) {
        return DockerfileError{
            ins.line, "self-referential build stage: " + fc.alias};
      }
    }
    aliases.push_back(fc.alias);
  }
  // Second pass: resolve every COPY --from against the stages completed so
  // far (Docker semantics: a stage may copy only from stages above it).
  int stage = -1;
  for (const auto& ins : df.instructions) {
    if (ins.kind == InstrKind::kFrom) {
      ++stage;
      continue;
    }
    if (ins.kind != InstrKind::kCopy && ins.kind != InstrKind::kAdd) continue;
    std::string text = ins.text;
    const std::string ref = strip_copy_from(text);
    if (ref.empty()) continue;
    std::uint32_t index = 0;
    int target = -1;
    if (parse_u32(ref, index)) {
      target = static_cast<int>(index) <
                       static_cast<int>(aliases.size())
                   ? static_cast<int>(index)
                   : -1;
    } else {
      for (std::size_t i = 0; i < aliases.size(); ++i) {
        if (aliases[i] == ref) {
          target = static_cast<int>(i);
          break;
        }
      }
    }
    if (target < 0) {
      return DockerfileError{ins.line,
                             "COPY --from=" + ref + ": no such build stage"};
    }
    if (target == stage) {
      return DockerfileError{
          ins.line,
          "COPY --from=" + ref + ": stage cannot copy from itself"};
    }
    if (target > stage) {
      return DockerfileError{
          ins.line, "COPY --from=" + ref +
                        ": forward reference to a later build stage"};
    }
  }
  return std::nullopt;
}

}  // namespace

std::variant<Dockerfile, DockerfileError> parse_dockerfile(
    const std::string& text) {
  const auto lines = split(text, '\n');
  Dockerfile df;
  std::size_t i = 0;
  while (i < lines.size()) {
    const int first_line = static_cast<int>(i) + 1;
    std::string_view raw = lines[i];
    if (trim(raw).empty() || is_comment(raw)) {
      ++i;
      continue;
    }
    // Gather continuation lines (trailing backslash); comment lines inside a
    // continuation are skipped, as Docker does.
    std::string logical;
    while (i < lines.size()) {
      std::string_view piece = trim(lines[i]);
      ++i;
      if (is_comment(piece)) continue;
      const bool continued = !piece.empty() && piece.back() == '\\';
      if (continued) piece = trim(piece.substr(0, piece.size() - 1));
      if (!piece.empty()) {
        if (!logical.empty()) logical += ' ';
        logical += piece;
      }
      if (!continued) break;
    }

    const std::size_t sp = logical.find_first_of(" \t");
    const std::string word = logical.substr(0, sp);
    const std::string keyword = upper(word);
    const Keyword* match = nullptr;
    for (const Keyword& kw : kKeywords) {
      if (keyword == kw.name) {
        match = &kw;
        break;
      }
    }
    if (match == nullptr) {
      return DockerfileError{first_line, "unknown instruction: " + word};
    }
    if (df.instructions.empty() && match->kind != InstrKind::kFrom) {
      return DockerfileError{first_line,
                             "no build stage in current context: first "
                             "instruction must be FROM"};
    }
    Instruction ins;
    ins.kind = match->kind;
    ins.line = first_line;
    ins.text = sp == std::string::npos
                   ? ""
                   : std::string(trim(logical.substr(sp + 1)));
    if (!ins.text.empty() && ins.text.front() == '[') {
      std::vector<std::string> argv;
      if (parse_json_array(ins.text, argv)) ins.exec_form = std::move(argv);
    }
    df.instructions.push_back(std::move(ins));
  }
  if (df.instructions.empty()) {
    return DockerfileError{1, "file with no instructions"};
  }
  if (auto err = validate_stages(df)) return *err;
  return df;
}

std::vector<std::pair<std::string, std::string>> parse_kv(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> out;
  const std::string_view s = trim(text);
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  };
  skip_ws();
  while (i < s.size()) {
    std::string key;
    while (i < s.size() && s[i] != '=' &&
           !std::isspace(static_cast<unsigned char>(s[i]))) {
      key += s[i++];
    }
    if (i >= s.size() || s[i] != '=') {
      // Legacy form: `KEY the whole rest` is one pair.
      if (out.empty() && !key.empty()) {
        skip_ws();
        out.emplace_back(std::move(key), std::string(trim(s.substr(i))));
      }
      return out;
    }
    ++i;  // '='
    std::string value;
    if (i < s.size() && (s[i] == '"' || s[i] == '\'')) {
      const char quote = s[i++];
      while (i < s.size() && s[i] != quote) {
        if (s[i] == '\\' && i + 1 < s.size()) ++i;
        value += s[i++];
      }
      if (i < s.size()) ++i;  // closing quote
    } else {
      while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
        value += s[i++];
      }
    }
    out.emplace_back(std::move(key), std::move(value));
    skip_ws();
  }
  return out;
}

}  // namespace minicon::build
