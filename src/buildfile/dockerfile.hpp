// Dockerfile parser: the subset of instructions exercised by the paper's
// builds (Fig 2/3 recipes and the privilege-model ablations).
//
// Parsing is line-oriented: comments and blank lines are skipped, trailing
// backslashes continue an instruction onto the next physical line, keywords
// are case-insensitive, and a JSON string array after the keyword selects
// exec form (RUN/CMD/ENTRYPOINT/SHELL).
//
// Multi-stage files (`FROM <ref> AS <name>`, `COPY --from=<stage|index>`)
// are validated here: duplicate stage names, self-referential stages, and
// forward or dangling `--from` references are parse errors, so every
// consumer (ch-image, Podman, the build graph) reports them identically
// before any instruction executes.
#pragma once

#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace minicon::build {

enum class InstrKind {
  kFrom,
  kRun,
  kCopy,
  kAdd,
  kEnv,
  kArg,
  kWorkdir,
  kUser,
  kShell,
  kCmd,
  kEntrypoint,
  kLabel,
};

// Canonical uppercase keyword ("RUN", "WORKDIR", ...).
std::string instr_name(InstrKind kind);

struct Instruction {
  InstrKind kind = InstrKind::kRun;
  std::string text;                    // arguments after the keyword
  int line = 0;                        // first physical line, 1-based
  std::vector<std::string> exec_form;  // non-empty iff JSON-array form

  bool is_exec_form() const { return !exec_form.empty(); }
};

struct Dockerfile {
  std::vector<Instruction> instructions;

  // The base image reference; the parser guarantees instruction 0 is FROM.
  std::string base() const;

  // Number of build stages (FROM instructions).
  std::size_t stage_count() const;
};

// Splits `FROM <ref> [AS <name>]` text into the reference and the optional
// stage alias ("" if none). `AS` is case-insensitive.
struct FromClause {
  std::string ref;
  std::string alias;
};
FromClause parse_from(const std::string& text);

// If a COPY/ADD argument list starts with `--from=<ref>`, strips the flag
// and returns the reference; otherwise returns "" and leaves text alone.
std::string strip_copy_from(std::string& text);

struct DockerfileError {
  int line = 0;
  std::string message;
};

std::variant<Dockerfile, DockerfileError> parse_dockerfile(
    const std::string& text);

// Parses `K=v K2="two words"` pairs; a bare `KEY rest of line` is the
// legacy single-pair form (ENV KEY value).
std::vector<std::pair<std::string, std::string>> parse_kv(
    const std::string& text);

}  // namespace minicon::build
