// RPM personality: yum(8), rpm(8), yum-config-manager(8).
#include <algorithm>
#include <functional>
#include <set>

#include "kernel/syscalls.hpp"
#include "pkg/install.hpp"
#include "pkg/managers.hpp"
#include "pkg/package.hpp"
#include "shell/shell.hpp"
#include "support/path.hpp"
#include "support/strings.hpp"

namespace minicon::pkg {

namespace {

constexpr const char* kRpmDbPath = "/var/lib/rpm/installed";

void ensure_dir(kernel::Process& p, const std::string& dir) {
  std::string cur = "/";
  for (const auto& comp : path_components(dir)) {
    cur = cur == "/" ? "/" + comp : cur + "/" + comp;
    if (!p.sys->stat(p, cur).ok()) (void)p.sys->mkdir(p, cur, 0755);
  }
}

// Minimal INI reader for yum repo files: returns (section, key) -> value.
struct IniFile {
  // Ordered sections, each with ordered key/value pairs, so rewriting
  // preserves layout well enough.
  std::vector<std::pair<std::string, std::vector<std::pair<std::string,
                                                           std::string>>>>
      sections;

  static IniFile parse(const std::string& text) {
    IniFile ini;
    std::string current;
    for (const auto& raw : split(text, '\n')) {
      const std::string line(trim(raw));
      if (line.empty() || line[0] == '#' || line[0] == ';') continue;
      if (line.front() == '[' && line.back() == ']') {
        current = line.substr(1, line.size() - 2);
        ini.sections.push_back({current, {}});
        continue;
      }
      const auto eq = line.find('=');
      if (eq == std::string::npos || ini.sections.empty()) continue;
      ini.sections.back().second.emplace_back(
          std::string(trim(line.substr(0, eq))),
          std::string(trim(line.substr(eq + 1))));
    }
    return ini;
  }

  std::string format() const {
    std::string out;
    for (const auto& [name, keys] : sections) {
      out += "[" + name + "]\n";
      for (const auto& [k, v] : keys) out += k + "=" + v + "\n";
    }
    return out;
  }

  const std::string* get(const std::string& section,
                         const std::string& key) const {
    for (const auto& [name, keys] : sections) {
      if (name != section) continue;
      for (const auto& [k, v] : keys) {
        if (k == key) return &v;
      }
    }
    return nullptr;
  }

  bool set(const std::string& section, const std::string& key,
           const std::string& value) {
    for (auto& [name, keys] : sections) {
      if (name != section) continue;
      for (auto& [k, v] : keys) {
        if (k == key) {
          v = value;
          return true;
        }
      }
      keys.emplace_back(key, value);
      return true;
    }
    return false;
  }
};

std::vector<std::string> repo_config_files(kernel::Process& p) {
  std::vector<std::string> files{"/etc/yum.conf"};
  if (auto entries = p.sys->readdir(p, "/etc/yum.repos.d"); entries.ok()) {
    for (const auto& e : *entries) {
      if (ends_with(e.name, ".repo")) {
        files.push_back("/etc/yum.repos.d/" + e.name);
      }
    }
  }
  return files;
}

struct RepoConfig {
  std::string section;  // repo id as named in config ("base", "epel")
  std::string universe_id;
  bool enabled = true;
  std::string file;
};

std::vector<RepoConfig> parse_repo_configs(kernel::Process& p) {
  std::vector<RepoConfig> out;
  for (const auto& file : repo_config_files(p)) {
    auto text = p.sys->read_file(p, file);
    if (!text.ok()) continue;
    const IniFile ini = IniFile::parse(*text);
    for (const auto& [section, keys] : ini.sections) {
      if (section == "main") continue;
      RepoConfig rc;
      rc.section = section;
      rc.file = file;
      for (const auto& [k, v] : keys) {
        if (k == "baseurl" && starts_with(v, "repo://")) {
          rc.universe_id = v.substr(7);
        }
        if (k == "enabled") rc.enabled = v != "0";
      }
      if (!rc.universe_id.empty()) out.push_back(std::move(rc));
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> rpm_installed(kernel::Process& p) {
  auto text = p.sys->read_file(p, kRpmDbPath);
  if (!text.ok()) return {};
  std::vector<std::string> out;
  for (const auto& line : split(*text, '\n')) {
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

bool rpm_is_installed(kernel::Process& p, const std::string& name) {
  for (const auto& line : rpm_installed(p)) {
    const auto fields = split_ws(line);
    if (!fields.empty() && fields[0] == name) return true;
  }
  return false;
}

void rpm_record_install(kernel::Process& p, const Package& pkg) {
  ensure_dir(p, "/var/lib/rpm");
  (void)p.sys->write_file(
      p, kRpmDbPath, pkg.name + " " + pkg.version + " " + pkg.arch + "\n",
      /*append=*/true);
}

std::vector<std::string> yum_enabled_repos(kernel::Process& p) {
  std::vector<std::string> out;
  for (const auto& rc : parse_repo_configs(p)) {
    if (rc.enabled) out.push_back(rc.universe_id);
  }
  return out;
}

namespace {

// Dependency-ordered closure of packages to install.
int resolve_install_set(shell::Invocation& inv, const RepoUniverse& universe,
                        const std::vector<std::string>& enabled,
                        const std::vector<std::string>& wanted,
                        std::vector<const Package*>& out) {
  std::set<std::string> visiting, done;
  std::function<int(const std::string&)> visit =
      [&](const std::string& name) -> int {
    if (done.contains(name)) return 0;
    if (visiting.contains(name)) return 0;  // dependency cycle: tolerate
    if (rpm_is_installed(inv.proc, name)) {
      done.insert(name);
      return 0;
    }
    visiting.insert(name);
    const Package* pkg = nullptr;
    for (const auto& repo_id : enabled) {
      const Repository* repo = universe.find(repo_id);
      if (repo == nullptr) continue;
      if (const Package* found = repo->find(name)) {
        pkg = found;
        break;
      }
    }
    if (pkg == nullptr) {
      inv.err += "No package " + name + " available.\n";
      return 1;
    }
    for (const auto& dep : pkg->depends) {
      if (int rc = visit(dep); rc != 0) return rc;
    }
    visiting.erase(name);
    done.insert(name);
    out.push_back(pkg);
    return 0;
  };
  for (const auto& name : wanted) {
    if (int rc = visit(name); rc != 0) return rc;
  }
  return 0;
}

int run_scriptlet(shell::Invocation& inv, const std::string& script) {
  if (script.empty()) return 0;
  kernel::Process child = inv.proc.clone();
  shell::ShellState state;
  state.registry = inv.state.registry;
  state.shell = inv.state.shell;
  state.depth = inv.state.depth + 1;
  return inv.state.shell->run_with_state(child, script, inv.out, inv.err, "",
                                         state);
}

int yum_install(shell::Invocation& inv, const RepoUniverse& universe,
                const std::vector<std::string>& names,
                const std::vector<std::string>& extra_enabled) {
  if (inv.proc.sys->geteuid(inv.proc) != 0) {
    inv.err += "You need to be root to perform this command.\n";
    return 1;
  }
  std::vector<std::string> enabled = yum_enabled_repos(inv.proc);
  for (const auto& e : extra_enabled) {
    for (const auto& rc : parse_repo_configs(inv.proc)) {
      if (rc.section == e) enabled.push_back(rc.universe_id);
    }
  }

  std::vector<std::string> to_install;
  for (const auto& name : names) {
    if (rpm_is_installed(inv.proc, name)) {
      inv.out += "Package " + name +
                 " already installed and latest version\n";
      continue;
    }
    to_install.push_back(name);
  }
  if (to_install.empty()) {
    inv.out += "Nothing to do\n";
    return 0;
  }

  std::vector<const Package*> plan;
  if (int rc = resolve_install_set(inv, universe, enabled, to_install, plan);
      rc != 0) {
    inv.err += "Error: Nothing to do\n";
    return 1;
  }
  inv.out += "Resolving Dependencies\n";
  for (const Package* pkg : plan) {
    if (int rc = run_scriptlet(inv, pkg->pre_install); rc != 0) {
      inv.err += "error: %pre scriptlet failed for " + pkg->label() + "\n";
      return 1;
    }
    inv.out += "  Installing: " + pkg->label() + "\n";
    if (auto failure = unpack_package(inv.proc, *pkg)) {
      inv.out += "Error unpacking rpm package " + pkg->label() + "\n";
      inv.err += "error: unpacking of archive failed on file " +
                 failure->path + ": cpio: " + failure->op + "\n";
      inv.err += "error: " + pkg->label() + ": install failed\n";
      return 1;
    }
    if (int rc = run_scriptlet(inv, pkg->post_install); rc != 0) {
      inv.err +=
          "warning: %post(" + pkg->label() + ") scriptlet failed\n";
    }
    rpm_record_install(inv.proc, *pkg);
  }
  inv.out += "Complete!\n";
  return 0;
}

int cmd_yum(shell::Invocation& inv, const RepoUniversePtr& universe) {
  std::vector<std::string> names;
  std::vector<std::string> extra_enabled;
  std::string subcommand;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    const std::string& a = inv.args[i];
    if (a == "-y" || a == "--assumeyes" || a == "-q") continue;
    if (starts_with(a, "--enablerepo=")) {
      extra_enabled.push_back(a.substr(13));
      continue;
    }
    if (starts_with(a, "--")) continue;
    if (subcommand.empty()) {
      subcommand = a;
    } else {
      names.push_back(a);
    }
  }
  if (subcommand == "install") {
    return yum_install(inv, *universe, names, extra_enabled);
  }
  if (subcommand == "repolist") {
    for (const auto& rc : parse_repo_configs(inv.proc)) {
      inv.out += rc.section + (rc.enabled ? " enabled" : " disabled") + "\n";
    }
    return 0;
  }
  inv.err += "yum: unsupported subcommand '" + subcommand + "'\n";
  return 1;
}

int cmd_yum_config_manager(shell::Invocation& inv) {
  // yum-config-manager --disable ID | --enable ID
  std::string target;
  bool enable = false;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    if (inv.args[i] == "--disable" && i + 1 < inv.args.size()) {
      target = inv.args[++i];
      enable = false;
    } else if (inv.args[i] == "--enable" && i + 1 < inv.args.size()) {
      target = inv.args[++i];
      enable = true;
    }
  }
  if (target.empty()) {
    inv.err += "yum-config-manager: missing repo id\n";
    return 1;
  }
  for (const auto& file : repo_config_files(inv.proc)) {
    auto text = inv.proc.sys->read_file(inv.proc, file);
    if (!text.ok()) continue;
    IniFile ini = IniFile::parse(*text);
    bool found = false;
    for (const auto& [section, _] : ini.sections) {
      if (section == target) found = true;
    }
    if (!found) continue;
    ini.set(target, "enabled", enable ? "1" : "0");
    if (auto rc =
            inv.proc.sys->write_file(inv.proc, file, ini.format(), false);
        !rc.ok()) {
      inv.err += "yum-config-manager: cannot write " + file + "\n";
      return 1;
    }
    return 0;
  }
  inv.err += "yum-config-manager: no repo named " + target + "\n";
  return 1;
}

int cmd_rpm(shell::Invocation& inv) {
  if (inv.args.size() >= 2 && inv.args[1] == "-qa") {
    for (const auto& line : rpm_installed(inv.proc)) {
      const auto fields = split_ws(line);
      if (fields.size() >= 3) {
        inv.out += fields[0] + "-" + fields[1] + "." + fields[2] + "\n";
      }
    }
    return 0;
  }
  if (inv.args.size() >= 3 && inv.args[1] == "-q") {
    int status = 0;
    for (std::size_t i = 2; i < inv.args.size(); ++i) {
      bool found = false;
      for (const auto& line : rpm_installed(inv.proc)) {
        const auto fields = split_ws(line);
        if (fields.size() >= 3 && fields[0] == inv.args[i]) {
          inv.out += fields[0] + "-" + fields[1] + "." + fields[2] + "\n";
          found = true;
        }
      }
      if (!found) {
        inv.out += "package " + inv.args[i] + " is not installed\n";
        status = 1;
      }
    }
    return status;
  }
  inv.err += "rpm: unsupported invocation\n";
  return 1;
}

}  // namespace

void register_rpm_commands(shell::CommandRegistry& reg,
                           RepoUniversePtr universe) {
  reg.register_external("yum", [universe](shell::Invocation& inv) {
    return cmd_yum(inv, universe);
  });
  reg.register_external("dnf", [universe](shell::Invocation& inv) {
    return cmd_yum(inv, universe);
  });
  reg.register_external("rpm", cmd_rpm);
  reg.register_external("yum-config-manager", cmd_yum_config_manager);
}

}  // namespace minicon::pkg
