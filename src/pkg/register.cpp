#include "pkg/managers.hpp"

namespace minicon::pkg {

void register_rpm_commands(shell::CommandRegistry& reg,
                           RepoUniversePtr universe);
void register_apt_commands(shell::CommandRegistry& reg,
                           RepoUniversePtr universe);

void register_pkg_commands(shell::CommandRegistry& reg,
                           RepoUniversePtr universe) {
  register_rpm_commands(reg, universe);
  register_apt_commands(reg, std::move(universe));
}

}  // namespace minicon::pkg
