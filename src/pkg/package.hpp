// Package model and repositories.
//
// The paper's central failure mode (§2.3) is caused by package *metadata*:
// distribution packages carry per-file ownership, setuid/setgid bits,
// device nodes, and maintainer scriptlets that perform privileged syscalls.
// Packages here carry exactly that metadata, so the failures in Figs 2-3
// arise from first principles rather than being scripted.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "vfs/types.hpp"

namespace minicon::pkg {

struct PackageFile {
  std::string path;  // absolute path inside the image
  vfs::FileType type = vfs::FileType::Regular;
  std::uint32_t mode = 0644;
  std::string owner = "root";  // resolved against the image's /etc/passwd
  std::string group = "root";
  std::string content;  // file data or symlink target
  std::uint32_t dev_major = 0;
  std::uint32_t dev_minor = 0;
  // Non-empty: file capabilities applied via setcap(8) at install time
  // (a security.capability xattr — classic fakeroot cannot fake it).
  std::string caps;
};

struct Package {
  std::string name;
  std::string version;  // e.g. "7.4p1-21.el7"
  std::string arch = "noarch";
  std::vector<std::string> depends;
  std::vector<PackageFile> files;
  std::string pre_install;   // %pre / preinst scriptlet (shell)
  std::string post_install;  // %post / postinst scriptlet (shell)

  // "openssh-7.4p1-21.el7.x86_64"-style NEVRA label.
  std::string label() const { return name + "-" + version + "." + arch; }

  std::uint64_t payload_bytes() const {
    std::uint64_t total = 0;
    for (const auto& f : files) total += f.content.size();
    return total;
  }
};

// One package repository ("base", "epel", "debian10-main", ...).
class Repository {
 public:
  explicit Repository(std::string id) : id_(std::move(id)) {}

  const std::string& id() const { return id_; }

  void add(Package p) { packages_[p.name] = std::move(p); }
  const Package* find(const std::string& name) const {
    auto it = packages_.find(name);
    return it == packages_.end() ? nullptr : &it->second;
  }
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(packages_.size());
    for (const auto& [name, _] : packages_) out.push_back(name);
    return out;
  }
  std::size_t size() const { return packages_.size(); }
  std::uint64_t index_bytes() const {
    // Synthetic index size, for apt-get update's "Fetched N kB" line.
    return 8422 * 1024;
  }

 private:
  std::string id_;
  std::map<std::string, Package> packages_;
};

// All repositories reachable from a simulated network. Containers reference
// them by id through their repo configuration files (yum.repos.d,
// sources.list).
class RepoUniverse {
 public:
  Repository& create(const std::string& id) {
    auto [it, _] = repos_.try_emplace(id, Repository{id});
    return it->second;
  }
  const Repository* find(const std::string& id) const {
    auto it = repos_.find(id);
    return it == repos_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::string, Repository> repos_;
};

using RepoUniversePtr = std::shared_ptr<RepoUniverse>;

}  // namespace minicon::pkg
