// Package manager front-ends: yum/rpm (RPM personality) and
// apt-get/apt-config/dpkg (Debian personality).
//
// Both are implemented as shell commands against the syscall layer, so they
// behave correctly under every privilege model: real root (Type I), mapped
// root (Type II), fake root via wrapper (Type III + fakeroot), and plain
// unprivileged (the Fig 2/3 failures).
#pragma once

#include <string>
#include <vector>

#include "kernel/process.hpp"
#include "pkg/package.hpp"
#include "shell/registry.hpp"

namespace minicon::pkg {

// Registers yum, dnf, rpm, yum-config-manager, apt-get, apt, apt-config,
// and dpkg. The universe is captured by the command closures (it stands in
// for the network the managers download from).
void register_pkg_commands(shell::CommandRegistry& reg,
                           RepoUniversePtr universe);

// --- installed-package databases (shared with builders and tests) ----------

// RPM: /var/lib/rpm/installed, one "name version arch" line per package.
std::vector<std::string> rpm_installed(kernel::Process& p);
bool rpm_is_installed(kernel::Process& p, const std::string& name);
void rpm_record_install(kernel::Process& p, const Package& pkg);

// dpkg: /var/lib/dpkg/status stanzas.
bool dpkg_is_installed(kernel::Process& p, const std::string& name);
void dpkg_record_install(kernel::Process& p, const Package& pkg);

// Enabled yum repositories (universe ids) per /etc/yum.conf +
// /etc/yum.repos.d/*.repo.
std::vector<std::string> yum_enabled_repos(kernel::Process& p);

// APT sources (universe ids) per /etc/apt/sources.list.
std::vector<std::string> apt_sources(kernel::Process& p);

// True when `apt-get update` has fetched indexes for the given repo.
bool apt_lists_present(kernel::Process& p, const std::string& repo_id);

}  // namespace minicon::pkg
