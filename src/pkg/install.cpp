#include "pkg/install.hpp"

#include "kernel/syscalls.hpp"
#include "kernel/userdb.hpp"
#include "support/path.hpp"

namespace minicon::pkg {

namespace {

// Resolves a package owner/group name against the image databases; system
// accounts are created by %pre scriptlets before unpack, exactly like real
// packages do.
std::optional<vfs::Uid> resolve_uid(kernel::Process& p,
                                    const std::string& name) {
  if (name == "root") return 0;
  auto text = p.sys->read_file(p, "/etc/passwd");
  if (!text.ok()) return std::nullopt;
  auto entry = kernel::PasswdDb::parse(*text).by_name(name);
  if (!entry) return std::nullopt;
  return entry->uid;
}

std::optional<vfs::Gid> resolve_gid(kernel::Process& p,
                                    const std::string& name) {
  if (name == "root") return 0;
  auto text = p.sys->read_file(p, "/etc/group");
  if (!text.ok()) return std::nullopt;
  auto entry = kernel::GroupDb::parse(*text).by_name(name);
  if (!entry) return std::nullopt;
  return entry->gid;
}

VoidResult ensure_parents(kernel::Process& p, const std::string& path) {
  const std::string dir = path_dirname(path);
  std::string cur = "/";
  for (const auto& comp : path_components(dir)) {
    cur = cur == "/" ? "/" + comp : cur + "/" + comp;
    if (p.sys->stat(p, cur).ok()) continue;
    MINICON_TRY(p.sys->mkdir(p, cur, 0755));
  }
  return {};
}

}  // namespace

std::optional<UnpackError> unpack_package(kernel::Process& p,
                                          const Package& pkg) {
  const bool as_root = p.sys->geteuid(p) == 0;
  for (const auto& f : pkg.files) {
    if (auto rc = ensure_parents(p, f.path); !rc.ok()) {
      return UnpackError{f.path, "mkdir", rc.error()};
    }
    // Replace any existing payload (package upgrades).
    if (auto st = p.sys->lstat(p, f.path); st.ok() && !st->is_dir()) {
      (void)p.sys->unlink(p, f.path);
    }
    switch (f.type) {
      case vfs::FileType::Regular: {
        if (auto rc = p.sys->write_file(p, f.path, f.content, false, f.mode);
            !rc.ok()) {
          return UnpackError{f.path, "write", rc.error()};
        }
        if (auto rc = p.sys->chmod(p, f.path, f.mode); !rc.ok()) {
          return UnpackError{f.path, "chmod", rc.error()};
        }
        break;
      }
      case vfs::FileType::Directory: {
        if (!p.sys->stat(p, f.path).ok()) {
          if (auto rc = p.sys->mkdir(p, f.path, f.mode); !rc.ok()) {
            return UnpackError{f.path, "mkdir", rc.error()};
          }
        }
        break;
      }
      case vfs::FileType::Symlink: {
        if (auto rc = p.sys->symlink(p, f.content, f.path); !rc.ok()) {
          return UnpackError{f.path, "symlink", rc.error()};
        }
        break;
      }
      case vfs::FileType::CharDev:
      case vfs::FileType::BlockDev:
      case vfs::FileType::Fifo: {
        if (auto rc = p.sys->mknod(p, f.path, f.type, f.mode, f.dev_major,
                                   f.dev_minor);
            !rc.ok()) {
          return UnpackError{f.path, "mknod", rc.error()};
        }
        break;
      }
      default:
        break;
    }
    if (as_root && f.type != vfs::FileType::Symlink) {
      // cpio/dpkg restore archive ownership whenever running as root. The
      // names translate through the *image's* databases to namespace IDs;
      // the kernel then translates those to host IDs — or refuses (§2.1.1).
      const auto uid = resolve_uid(p, f.owner);
      const auto gid = resolve_gid(p, f.group);
      if (!uid || !gid) {
        return UnpackError{f.path, "chown", Err::einval};
      }
      if (auto rc = p.sys->chown(p, f.path, *uid, *gid, /*follow=*/false);
          !rc.ok()) {
        return UnpackError{f.path, "chown", rc.error()};
      }
      // chown clears setuid/setgid bits; the archive mode is authoritative,
      // so restore it the way cpio does.
      if (f.type == vfs::FileType::Regular &&
          (f.mode & (vfs::mode::kSetUid | vfs::mode::kSetGid)) != 0) {
        if (auto rc = p.sys->chmod(p, f.path, f.mode); !rc.ok()) {
          return UnpackError{f.path, "chmod", rc.error()};
        }
      }
    }
    if (!f.caps.empty()) {
      // setcap(8): a security.capability xattr; requires real privilege or a
      // wrapper that fakes security xattrs (pseudo can, classic fakeroot
      // cannot — Table 1).
      if (auto rc =
              p.sys->set_xattr(p, f.path, "security.capability", f.caps);
          !rc.ok()) {
        return UnpackError{f.path, "setcap", rc.error()};
      }
    }
  }
  return std::nullopt;
}

}  // namespace minicon::pkg
