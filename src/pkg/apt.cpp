// Debian personality: apt-get(8), apt-config(8), dpkg(1).
//
// The key behaviour reproduced here is APT's download sandbox (§2.3): since
// Debian 9, apt drops privileges to the _apt user for fetching, via
// setgroups(2)/setresgid(2)/setresuid(2). In an unprivileged user namespace
// those calls fail — setgroups with EPERM (gated by /proc/.../setgroups) and
// set*id with EINVAL (unmapped IDs) — producing exactly the Fig 3 transcript.
// The escape hatch is the configuration APT::Sandbox::User "root" (Fig 9).
#include <functional>
#include <set>

#include "kernel/syscalls.hpp"
#include "kernel/userdb.hpp"
#include "pkg/install.hpp"
#include "pkg/managers.hpp"
#include "shell/shell.hpp"
#include "support/path.hpp"
#include "support/strings.hpp"

namespace minicon::pkg {

namespace {

constexpr const char* kStatusPath = "/var/lib/dpkg/status";
constexpr const char* kListsDir = "/var/lib/apt/lists";

void ensure_dir(kernel::Process& p, const std::string& dir) {
  std::string cur = "/";
  for (const auto& comp : path_components(dir)) {
    cur = cur == "/" ? "/" + comp : cur + "/" + comp;
    if (!p.sys->stat(p, cur).ok()) (void)p.sys->mkdir(p, cur, 0755);
  }
}

// APT configuration: defaults overlaid with /etc/apt/apt.conf.d/* contents.
// Config files contain lines of the form:  APT::Sandbox::User "root";
std::map<std::string, std::string> apt_config(kernel::Process& p) {
  std::map<std::string, std::string> cfg{
      {"APT::Architecture", "amd64"},
      {"APT::Sandbox::User", "_apt"},
      {"Dir", "/"},
      {"Dir::State", "var/lib/apt"},
  };
  std::vector<std::string> files;
  if (auto entries = p.sys->readdir(p, "/etc/apt/apt.conf.d"); entries.ok()) {
    for (const auto& e : *entries) files.push_back("/etc/apt/apt.conf.d/" + e.name);
  }
  files.push_back("/etc/apt/apt.conf");
  for (const auto& file : files) {
    auto text = p.sys->read_file(p, file);
    if (!text.ok()) continue;
    for (const auto& raw : split(*text, '\n')) {
      std::string line(trim(raw));
      if (line.empty() || line[0] == '#') continue;
      if (line.back() == ';') line.pop_back();
      const auto space = line.find(' ');
      if (space == std::string::npos) continue;
      std::string key(trim(line.substr(0, space)));
      std::string value(trim(line.substr(space + 1)));
      if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
        value = value.substr(1, value.size() - 2);
      }
      cfg[key] = value;
    }
  }
  return cfg;
}

// Simulates APT's privilege drop into the _apt sandbox user. Returns 0 on
// success; on failure appends the E: lines from Fig 3 and returns 100.
int drop_to_sandbox(shell::Invocation& inv, kernel::Process& fetcher) {
  const auto cfg = apt_config(inv.proc);
  const auto it = cfg.find("APT::Sandbox::User");
  const std::string sandbox_user = it == cfg.end() ? "_apt" : it->second;
  if (sandbox_user == "root") return 0;  // sandbox disabled

  auto passwd_text = inv.proc.sys->read_file(inv.proc, "/etc/passwd");
  if (!passwd_text.ok()) return 0;
  const auto entry =
      kernel::PasswdDb::parse(*passwd_text).by_name(sandbox_user);
  if (!entry) return 0;  // no _apt user: sandbox silently skipped

  int status = 0;
  // setgroups() to the overflow group, then switch IDs — the same calls and
  // error texts as real apt (which reports setresgid/setresuid failures
  // under the names setegid/seteuid).
  if (auto rc = fetcher.sys->setgroups(fetcher, {vfs::kOverflowGid});
      !rc.ok()) {
    inv.err += "E: setgroups " + std::to_string(vfs::kOverflowGid) +
               " failed - setgroups (" + std::to_string(err_value(rc.error())) +
               ": " + std::string(err_message(rc.error())) + ")\n";
    status = 100;
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (auto rc = fetcher.sys->seteuid(fetcher, entry->uid); !rc.ok()) {
      inv.err += "E: seteuid " + std::to_string(entry->uid) +
                 " failed - seteuid (" + std::to_string(err_value(rc.error())) +
                 ": " + std::string(err_message(rc.error())) + ")\n";
      status = 100;
    } else {
      break;
    }
  }
  return status;
}

struct DpkgStanza {
  std::string name;
  std::string version;
};

std::vector<DpkgStanza> dpkg_status(kernel::Process& p) {
  std::vector<DpkgStanza> out;
  auto text = p.sys->read_file(p, kStatusPath);
  if (!text.ok()) return out;
  DpkgStanza cur;
  for (const auto& line : split(*text, '\n')) {
    if (starts_with(line, "Package: ")) cur.name = line.substr(9);
    if (starts_with(line, "Version: ")) cur.version = line.substr(9);
    if (line.empty() && !cur.name.empty()) {
      out.push_back(cur);
      cur = {};
    }
  }
  if (!cur.name.empty()) out.push_back(cur);
  return out;
}

int apt_update(shell::Invocation& inv, const RepoUniverse& universe) {
  kernel::Process fetcher = inv.proc.clone();
  if (int rc = drop_to_sandbox(inv, fetcher); rc != 0) {
    // Continue attempting the fetch as apt does, but the methods have
    // already failed; report and bail.
    inv.err += "E: Method gave invalid 400 URI Failure message\n";
    return 100;
  }
  ensure_dir(inv.proc, kListsDir);
  int seq = 1;
  std::uint64_t fetched = 0;
  for (const auto& repo_id : apt_sources(inv.proc)) {
    const Repository* repo = universe.find(repo_id);
    if (repo == nullptr) {
      inv.err += "E: The repository 'repo://" + repo_id +
                 "' does not have a Release file.\n";
      return 100;
    }
    inv.out += "Get:" + std::to_string(seq++) + " repo://" + repo_id +
               " buster InRelease\n";
    fetched += repo->index_bytes();
    std::string index;
    for (const auto& name : repo->names()) {
      const Package* pkg = repo->find(name);
      index += name + " " + pkg->version + "\n";
    }
    (void)inv.proc.sys->write_file(
        inv.proc, std::string(kListsDir) + "/" + repo_id + "_Packages", index,
        false);
  }
  inv.out += "Fetched " + std::to_string(fetched / 1024) +
             " kB in 7s (1214 kB/s)\n";
  inv.out += "Reading package lists...\n";
  return 0;
}

int resolve_install_set(shell::Invocation& inv, const RepoUniverse& universe,
                        const std::vector<std::string>& sources,
                        const std::vector<std::string>& wanted,
                        std::vector<const Package*>& out) {
  std::set<std::string> done;
  std::function<int(const std::string&)> visit =
      [&](const std::string& name) -> int {
    if (done.contains(name)) return 0;
    if (dpkg_is_installed(inv.proc, name)) {
      done.insert(name);
      return 0;
    }
    const Package* pkg = nullptr;
    for (const auto& repo_id : sources) {
      // Availability is gated on fetched indexes, not just the universe:
      // base images ship with no indexes, so nothing can be installed before
      // apt-get update (§5.2).
      if (!apt_lists_present(inv.proc, repo_id)) continue;
      const Repository* repo = universe.find(repo_id);
      if (repo == nullptr) continue;
      if (const Package* found = repo->find(name)) {
        pkg = found;
        break;
      }
    }
    if (pkg == nullptr) {
      inv.err += "E: Unable to locate package " + name + "\n";
      return 100;
    }
    done.insert(name);
    for (const auto& dep : pkg->depends) {
      if (int rc = visit(dep); rc != 0) return rc;
    }
    out.push_back(pkg);
    return 0;
  };
  for (const auto& name : wanted) {
    if (int rc = visit(name); rc != 0) return rc;
  }
  return 0;
}

int run_scriptlet(shell::Invocation& inv, const std::string& script) {
  if (script.empty()) return 0;
  kernel::Process child = inv.proc.clone();
  shell::ShellState state;
  state.registry = inv.state.registry;
  state.shell = inv.state.shell;
  state.depth = inv.state.depth + 1;
  return inv.state.shell->run_with_state(child, script, inv.out, inv.err, "",
                                         state);
}

int apt_install(shell::Invocation& inv, const RepoUniverse& universe,
                const std::vector<std::string>& names) {
  inv.out += "Reading package lists...\n";
  inv.out += "Building dependency tree...\n";

  const auto sources = apt_sources(inv.proc);
  std::vector<const Package*> plan;
  std::vector<std::string> wanted;
  for (const auto& name : names) {
    if (dpkg_is_installed(inv.proc, name)) {
      inv.out += name + " is already the newest version.\n";
    } else {
      wanted.push_back(name);
    }
  }
  if (wanted.empty()) {
    inv.out += "0 upgraded, 0 newly installed, 0 to remove.\n";
    return 0;
  }
  if (int rc = resolve_install_set(inv, universe, sources, wanted, plan);
      rc != 0) {
    return rc;
  }

  inv.out += "The following NEW packages will be installed:\n ";
  for (const Package* pkg : plan) inv.out += " " + pkg->name;
  inv.out += "\n";

  // Download phase uses the sandbox (same drop as update).
  kernel::Process fetcher = inv.proc.clone();
  if (int rc = drop_to_sandbox(inv, fetcher); rc != 0) {
    inv.err += "E: Unable to fetch some archives\n";
    return 100;
  }

  for (const Package* pkg : plan) {
    inv.out += "Unpacking " + pkg->name + " (" + pkg->version + ") ...\n";
    if (int rc = run_scriptlet(inv, pkg->pre_install); rc != 0) {
      inv.err += "dpkg: error processing package " + pkg->name +
                 " (--configure): preinst failed\n";
      return 100;
    }
    if (auto failure = unpack_package(inv.proc, *pkg)) {
      inv.err += "dpkg: error processing archive /var/cache/apt/archives/" +
                 pkg->name + "_" + pkg->version + "_amd64.deb (--unpack):\n";
      inv.err += " unable to " + failure->op + " '" + failure->path + "': " +
                 std::string(err_message(failure->err)) + "\n";
      inv.err += "E: Sub-process /usr/bin/dpkg returned an error code (1)\n";
      return 100;
    }
    dpkg_record_install(inv.proc, *pkg);
  }
  for (const Package* pkg : plan) {
    inv.out += "Setting up " + pkg->name + " (" + pkg->version + ") ...\n";
    if (int rc = run_scriptlet(inv, pkg->post_install); rc != 0) {
      inv.err += "dpkg: error processing package " + pkg->name +
                 " (--configure): postinst failed\n";
      return 100;
    }
  }
  inv.out += "Processing triggers for libc-bin (2.28-10) ...\n";

  // apt keeps its log files owned root:adm; in a Type III container this
  // chown fails and apt only warns (Fig 9 line 21).
  ensure_dir(inv.proc, "/var/log/apt");
  (void)inv.proc.sys->write_file(inv.proc, "/var/log/apt/term.log", "", true);
  vfs::Gid adm_gid = 4;
  if (auto text = inv.proc.sys->read_file(inv.proc, "/etc/group"); text.ok()) {
    if (auto g = kernel::GroupDb::parse(*text).by_name("adm")) {
      adm_gid = g->gid;
    }
  }
  if (auto rc = inv.proc.sys->chown(inv.proc, "/var/log/apt/term.log", 0,
                                    adm_gid, true);
      !rc.ok()) {
    inv.out += "W: chown to root:adm of file /var/log/apt/term.log failed - "
               "AutoFlushLogFiles (" +
               std::to_string(err_value(rc.error())) + ": " +
               std::string(err_message(rc.error())) + ")\n";
  }
  return 0;
}

int cmd_apt_get(shell::Invocation& inv, const RepoUniversePtr& universe) {
  std::string subcommand;
  std::vector<std::string> names;
  for (std::size_t i = 1; i < inv.args.size(); ++i) {
    const std::string& a = inv.args[i];
    if (a == "-y" || a == "-q" || a == "-qq" || starts_with(a, "--")) continue;
    if (subcommand.empty()) {
      subcommand = a;
    } else {
      names.push_back(a);
    }
  }
  if (subcommand == "update") return apt_update(inv, *universe);
  if (subcommand == "install") return apt_install(inv, *universe, names);
  inv.err += "E: Invalid operation " + subcommand + "\n";
  return 100;
}

int cmd_apt_config(shell::Invocation& inv) {
  if (inv.args.size() >= 2 && inv.args[1] == "dump") {
    for (const auto& [k, v] : apt_config(inv.proc)) {
      inv.out += k + " \"" + v + "\";\n";
    }
    return 0;
  }
  inv.err += "apt-config: unsupported invocation\n";
  return 1;
}

int cmd_dpkg(shell::Invocation& inv) {
  if (inv.args.size() >= 2 && inv.args[1] == "-l") {
    for (const auto& s : dpkg_status(inv.proc)) {
      inv.out += "ii  " + s.name + "  " + s.version + "\n";
    }
    return 0;
  }
  if (inv.args.size() >= 3 && inv.args[1] == "-s") {
    for (const auto& s : dpkg_status(inv.proc)) {
      if (s.name == inv.args[2]) {
        inv.out += "Package: " + s.name + "\nStatus: install ok installed\n" +
                   "Version: " + s.version + "\n";
        return 0;
      }
    }
    inv.err += "dpkg-query: package '" + inv.args[2] + "' is not installed\n";
    return 1;
  }
  inv.err += "dpkg: unsupported invocation\n";
  return 1;
}

}  // namespace

std::vector<std::string> apt_sources(kernel::Process& p) {
  std::vector<std::string> out;
  auto text = p.sys->read_file(p, "/etc/apt/sources.list");
  if (!text.ok()) return out;
  for (const auto& raw : split(*text, '\n')) {
    const std::string line(trim(raw));
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split_ws(line);
    if (fields.size() >= 2 && fields[0] == "deb" &&
        starts_with(fields[1], "repo://")) {
      out.push_back(fields[1].substr(7));
    }
  }
  return out;
}

bool apt_lists_present(kernel::Process& p, const std::string& repo_id) {
  return p.sys
      ->stat(p, std::string(kListsDir) + "/" + repo_id + "_Packages")
      .ok();
}

bool dpkg_is_installed(kernel::Process& p, const std::string& name) {
  for (const auto& s : dpkg_status(p)) {
    if (s.name == name) return true;
  }
  return false;
}

void dpkg_record_install(kernel::Process& p, const Package& pkg) {
  ensure_dir(p, "/var/lib/dpkg");
  (void)p.sys->write_file(p, kStatusPath,
                          "Package: " + pkg.name + "\nVersion: " +
                              pkg.version +
                              "\nStatus: install ok installed\n\n",
                          /*append=*/true);
}

void register_apt_commands(shell::CommandRegistry& reg,
                           RepoUniversePtr universe) {
  reg.register_external("apt-get", [universe](shell::Invocation& inv) {
    return cmd_apt_get(inv, universe);
  });
  reg.register_external("apt", [universe](shell::Invocation& inv) {
    return cmd_apt_get(inv, universe);
  });
  reg.register_external("apt-config", cmd_apt_config);
  reg.register_external("dpkg", cmd_dpkg);
}

}  // namespace minicon::pkg
