// Shared payload-unpack routine (cpio for rpm, dpkg-deb for apt).
//
// Mirrors how archives are unpacked by a package manager running "as root":
// create parents, write the payload, apply modes, then apply ownership with
// chown(2) — the exact step that fails in a basic Type III container (Fig 2:
// "cpio: chown"). Ownership is only attempted when the process believes it
// is root, which is how the same code succeeds under fakeroot(1).
#pragma once

#include <optional>
#include <string>

#include "kernel/process.hpp"
#include "pkg/package.hpp"
#include "support/errno.hpp"

namespace minicon::pkg {

struct UnpackError {
  std::string path;  // file that failed
  std::string op;    // "chown", "mknod", "setcap", "write"
  Err err = Err::eperm;
};

// Unpacks pkg's files into the filesystem as process p. Returns nullopt on
// success or the first failure.
std::optional<UnpackError> unpack_package(kernel::Process& p,
                                          const Package& pkg);

}  // namespace minicon::pkg
