// Cluster tests: the Astra workflow (Fig 6) — build on the login node, push
// to a registry, launch in parallel on compute nodes.
#include <gtest/gtest.h>

#include "core/chimage.hpp"
#include "core/cluster.hpp"
#include "core/podman.hpp"

namespace minicon {
namespace {

TEST(Cluster, ArchitectureMattersForBuild) {
  // An aarch64 cluster cannot run x86_64 images — the original Astra
  // motivation (§4.2): users "had an immediate need to build new container
  // images specifically for the aarch64 ISA".
  core::ClusterOptions copts;
  copts.arch = "aarch64";
  copts.compute_nodes = 1;
  core::Cluster cluster(copts);
  auto alice = cluster.user_on(cluster.login());
  ASSERT_TRUE(alice.ok());

  core::ChImage ch(cluster.login(), *alice, &cluster.registry());
  // The registry carries both arches; pull selects aarch64 on this machine.
  Transcript t;
  ASSERT_EQ(ch.pull("centos:7", "native", t), 0);
  Transcript rt;
  EXPECT_EQ(ch.run_in_image("native", {"uname", "-m"}, rt), 0);
  EXPECT_TRUE(rt.contains("aarch64"));
}

TEST(Cluster, AstraWorkflowEndToEnd) {
  // Fig 6: podman build on the login node -> push to the GitLab-ish
  // registry -> parallel Type III launch on the compute nodes.
  core::ClusterOptions copts;
  copts.arch = "aarch64";
  copts.compute_nodes = 4;
  core::Cluster cluster(copts);
  auto alice = cluster.user_on(cluster.login());
  ASSERT_TRUE(alice.ok());

  // Astra's RHEL7-era configuration used the VFS driver (§4.2).
  core::PodmanOptions popts;
  popts.driver = core::PodmanOptions::Driver::kVfs;
  core::Podman podman(cluster.login(), *alice, &cluster.registry(), popts);
  Transcript bt;
  const int built = podman.build("atse",
                                 "FROM centos:7\n"
                                 "RUN yum install -y gcc openmpi-devel spack\n"
                                 "RUN echo 'int main(){}' > /tmp/app.c\n"
                                 "RUN mpicc -o /usr/bin/atse-app /tmp/app.c\n",
                                 bt);
  ASSERT_EQ(built, 0) << bt.text();
  Transcript pt;
  ASSERT_EQ(podman.push("atse", "atse/app:1.2.5", pt), 0);

  // Distributed launch via per-node registry pulls.
  auto result = cluster.parallel_launch("atse/app:1.2.5", {"atse-app"},
                                        /*via_shared_fs=*/false);
  EXPECT_EQ(result.nodes_ok, 4);
  EXPECT_EQ(result.nodes_failed, 0);
  for (const auto& out : result.outputs) {
    EXPECT_NE(out.find("hello from compiled application (aarch64)"),
              std::string::npos)
        << out;
  }
}

TEST(Cluster, SharedFilesystemLaunch) {
  core::ClusterOptions copts;
  copts.arch = "aarch64";
  copts.compute_nodes = 3;
  core::Cluster cluster(copts);
  auto alice = cluster.user_on(cluster.login());
  ASSERT_TRUE(alice.ok());
  // Push a trivially-built image, then launch through /lustre.
  core::ChImage ch(cluster.login(), *alice, &cluster.registry());
  Transcript t;
  ASSERT_EQ(ch.build("job", "FROM centos:7\nRUN echo built\n", t), 0)
      << t.text();
  Transcript pt;
  ASSERT_EQ(ch.push("job", "jobs/hello:1", pt), 0);

  auto result =
      cluster.parallel_launch("jobs/hello:1", {"hostname"},
                              /*via_shared_fs=*/true);
  EXPECT_EQ(result.nodes_ok, 3);
  // Each node reports its own hostname: genuinely separate machines.
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(result.outputs[static_cast<std::size_t>(i)].find("astra-cn"),
              std::string::npos);
  }
}

TEST(Cluster, SharedHomeVisibleAcrossNodes) {
  core::ClusterOptions copts;
  copts.compute_nodes = 2;
  core::Cluster cluster(copts);
  auto login_user = cluster.user_on(cluster.login());
  ASSERT_TRUE(login_user.ok());
  std::string out, err;
  ASSERT_EQ(cluster.login().run(*login_user,
                                "echo shared-data > /lustre/home/alice/f",
                                out, err),
            0)
      << err;
  auto compute_user = cluster.compute(0).login("alice");
  ASSERT_TRUE(compute_user.ok());
  out.clear();
  ASSERT_EQ(cluster.compute(0).run(*compute_user,
                                   "cat /lustre/home/alice/f", out, err),
            0);
  EXPECT_EQ(out, "shared-data\n");
}

TEST(Cluster, PooledLaunchWidthNarrowerThanNodes) {
  // 8 nodes through a 2-worker pool: jobs queue instead of spawning a
  // thread per node, and every node still completes with its own output.
  core::ClusterOptions copts;
  copts.arch = "x86_64";
  copts.compute_nodes = 8;
  copts.launch_width = 2;
  core::Cluster cluster(copts);
  auto alice = cluster.user_on(cluster.login());
  ASSERT_TRUE(alice.ok());
  core::ChImage ch(cluster.login(), *alice, &cluster.registry());
  Transcript t;
  ASSERT_EQ(ch.build("job", "FROM centos:7\nRUN echo ready\n", t), 0)
      << t.text();
  Transcript pt;
  ASSERT_EQ(ch.push("job", "jobs/narrow:1", pt), 0);

  auto result = cluster.parallel_launch("jobs/narrow:1", {"hostname"},
                                        /*via_shared_fs=*/true);
  EXPECT_EQ(result.nodes_ok, 8);
  EXPECT_EQ(result.nodes_failed, 0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(result.outputs[static_cast<std::size_t>(i)].find(
                  "astra-cn" + std::to_string(i)),
              std::string::npos);
  }

  // A per-call width override reshapes the pool without touching options.
  auto wide = cluster.parallel_launch("jobs/narrow:1", {"hostname"},
                                      /*via_shared_fs=*/true, /*width=*/4);
  EXPECT_EQ(wide.nodes_ok, 8);
  EXPECT_EQ(wide.nodes_failed, 0);
}

TEST(Cluster, UsersAreIsolatedOnSharedFs) {
  core::ClusterOptions copts;
  copts.compute_nodes = 0;
  core::Cluster cluster(copts);
  auto alice = cluster.user_on(cluster.login());
  ASSERT_TRUE(alice.ok());
  std::string out, err;
  ASSERT_EQ(cluster.login().run(*alice,
                                "echo mine > /lustre/home/alice/secret && "
                                "chmod 600 /lustre/home/alice/secret",
                                out, err),
            0);
  auto bob = cluster.login().add_user("bob", 1001);
  ASSERT_TRUE(bob.ok());
  EXPECT_NE(cluster.login().run(*bob, "cat /lustre/home/alice/secret", out,
                                err),
            0);
}

}  // namespace
}  // namespace minicon
