// Cluster tests: the Astra workflow (Fig 6) — build on the login node, push
// to a registry, launch in parallel on compute nodes.
#include <gtest/gtest.h>

#include "core/chimage.hpp"
#include "core/cluster.hpp"
#include "core/podman.hpp"
#include "kernel/faultinject.hpp"
#include "obs/context.hpp"
#include "obs/flightrec.hpp"

namespace minicon {
namespace {

// Builds FROM centos:7 with one RUN, pushes as `ref`, returns success.
bool build_and_push(core::Cluster& cluster, const std::string& ref) {
  auto alice = cluster.user_on(cluster.login());
  if (!alice.ok()) return false;
  core::ChImage ch(cluster.login(), *alice, &cluster.registry());
  Transcript t;
  if (ch.build("job", "FROM centos:7\nRUN echo ready\n", t) != 0) return false;
  Transcript pt;
  return ch.push("job", ref, pt) == 0;
}

// A layer factory injecting `error` on every syscall touching `path_substr`.
kernel::SyscallLayerFn fault_layer(std::string path_substr,
                                   Err error = Err::eio) {
  return [path_substr = std::move(path_substr),
          error](std::shared_ptr<kernel::Syscalls> inner) {
    kernel::FaultSpec spec;
    spec.path_substr = path_substr;
    spec.error = error;
    return std::make_shared<kernel::FaultInjectSyscalls>(std::move(inner),
                                                         /*seed=*/42, spec);
  };
}

TEST(Cluster, ArchitectureMattersForBuild) {
  // An aarch64 cluster cannot run x86_64 images — the original Astra
  // motivation (§4.2): users "had an immediate need to build new container
  // images specifically for the aarch64 ISA".
  core::ClusterOptions copts;
  copts.arch = "aarch64";
  copts.compute_nodes = 1;
  core::Cluster cluster(copts);
  auto alice = cluster.user_on(cluster.login());
  ASSERT_TRUE(alice.ok());

  core::ChImage ch(cluster.login(), *alice, &cluster.registry());
  // The registry carries both arches; pull selects aarch64 on this machine.
  Transcript t;
  ASSERT_EQ(ch.pull("centos:7", "native", t), 0);
  Transcript rt;
  EXPECT_EQ(ch.run_in_image("native", {"uname", "-m"}, rt), 0);
  EXPECT_TRUE(rt.contains("aarch64"));
}

TEST(Cluster, AstraWorkflowEndToEnd) {
  // Fig 6: podman build on the login node -> push to the GitLab-ish
  // registry -> parallel Type III launch on the compute nodes.
  core::ClusterOptions copts;
  copts.arch = "aarch64";
  copts.compute_nodes = 4;
  core::Cluster cluster(copts);
  auto alice = cluster.user_on(cluster.login());
  ASSERT_TRUE(alice.ok());

  // Astra's RHEL7-era configuration used the VFS driver (§4.2).
  core::PodmanOptions popts;
  popts.driver = core::PodmanOptions::Driver::kVfs;
  core::Podman podman(cluster.login(), *alice, &cluster.registry(), popts);
  Transcript bt;
  const int built = podman.build("atse",
                                 "FROM centos:7\n"
                                 "RUN yum install -y gcc openmpi-devel spack\n"
                                 "RUN echo 'int main(){}' > /tmp/app.c\n"
                                 "RUN mpicc -o /usr/bin/atse-app /tmp/app.c\n",
                                 bt);
  ASSERT_EQ(built, 0) << bt.text();
  Transcript pt;
  ASSERT_EQ(podman.push("atse", "atse/app:1.2.5", pt), 0);

  // Distributed launch via per-node registry pulls.
  auto result = cluster.parallel_launch("atse/app:1.2.5", {"atse-app"},
                                        /*via_shared_fs=*/false);
  EXPECT_EQ(result.nodes_ok, 4);
  EXPECT_EQ(result.nodes_failed, 0);
  for (const auto& out : result.outputs) {
    EXPECT_NE(out.find("hello from compiled application (aarch64)"),
              std::string::npos)
        << out;
  }
}

TEST(Cluster, SharedFilesystemLaunch) {
  core::ClusterOptions copts;
  copts.arch = "aarch64";
  copts.compute_nodes = 3;
  core::Cluster cluster(copts);
  auto alice = cluster.user_on(cluster.login());
  ASSERT_TRUE(alice.ok());
  // Push a trivially-built image, then launch through /lustre.
  core::ChImage ch(cluster.login(), *alice, &cluster.registry());
  Transcript t;
  ASSERT_EQ(ch.build("job", "FROM centos:7\nRUN echo built\n", t), 0)
      << t.text();
  Transcript pt;
  ASSERT_EQ(ch.push("job", "jobs/hello:1", pt), 0);

  auto result =
      cluster.parallel_launch("jobs/hello:1", {"hostname"},
                              /*via_shared_fs=*/true);
  EXPECT_EQ(result.nodes_ok, 3);
  // Each node reports its own hostname: genuinely separate machines.
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(result.outputs[static_cast<std::size_t>(i)].find("astra-cn"),
              std::string::npos);
  }
}

TEST(Cluster, SharedHomeVisibleAcrossNodes) {
  core::ClusterOptions copts;
  copts.compute_nodes = 2;
  core::Cluster cluster(copts);
  auto login_user = cluster.user_on(cluster.login());
  ASSERT_TRUE(login_user.ok());
  std::string out, err;
  ASSERT_EQ(cluster.login().run(*login_user,
                                "echo shared-data > /lustre/home/alice/f",
                                out, err),
            0)
      << err;
  auto compute_user = cluster.compute(0).login("alice");
  ASSERT_TRUE(compute_user.ok());
  out.clear();
  ASSERT_EQ(cluster.compute(0).run(*compute_user,
                                   "cat /lustre/home/alice/f", out, err),
            0);
  EXPECT_EQ(out, "shared-data\n");
}

TEST(Cluster, PooledLaunchWidthNarrowerThanNodes) {
  // 8 nodes through a 2-worker pool: jobs queue instead of spawning a
  // thread per node, and every node still completes with its own output.
  core::ClusterOptions copts;
  copts.arch = "x86_64";
  copts.compute_nodes = 8;
  copts.launch_width = 2;
  core::Cluster cluster(copts);
  auto alice = cluster.user_on(cluster.login());
  ASSERT_TRUE(alice.ok());
  core::ChImage ch(cluster.login(), *alice, &cluster.registry());
  Transcript t;
  ASSERT_EQ(ch.build("job", "FROM centos:7\nRUN echo ready\n", t), 0)
      << t.text();
  Transcript pt;
  ASSERT_EQ(ch.push("job", "jobs/narrow:1", pt), 0);

  auto result = cluster.parallel_launch("jobs/narrow:1", {"hostname"},
                                        /*via_shared_fs=*/true);
  EXPECT_EQ(result.nodes_ok, 8);
  EXPECT_EQ(result.nodes_failed, 0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(result.outputs[static_cast<std::size_t>(i)].find(
                  "astra-cn" + std::to_string(i)),
              std::string::npos);
  }

  // A per-call width override reshapes the pool without touching options.
  auto wide = cluster.parallel_launch("jobs/narrow:1", {"hostname"},
                                      /*via_shared_fs=*/true, /*width=*/4);
  EXPECT_EQ(wide.nodes_ok, 8);
  EXPECT_EQ(wide.nodes_failed, 0);
}

TEST(Cluster, ComputeIndexOutOfRangeThrows) {
  core::ClusterOptions copts;
  copts.compute_nodes = 2;
  core::Cluster cluster(copts);
  EXPECT_NO_THROW(cluster.compute(0));
  EXPECT_NO_THROW(cluster.compute(1));
  EXPECT_THROW(cluster.compute(2), std::out_of_range);
  EXPECT_THROW(cluster.compute(-1), std::out_of_range);
  EXPECT_THROW(cluster.node_cache(2), std::out_of_range);
}

TEST(Cluster, ZeroComputeNodesLaunchIsEmptySuccess) {
  core::ClusterOptions copts;
  copts.arch = "x86_64";
  copts.compute_nodes = 0;
  core::Cluster cluster(copts);
  ASSERT_TRUE(build_and_push(cluster, "jobs/empty:1"));
  for (auto mode :
       {core::Cluster::LaunchMode::kPullPerNode,
        core::Cluster::LaunchMode::kSharedFs, core::Cluster::LaunchMode::kP2P}) {
    core::Cluster::LaunchOptions opts;
    opts.mode = mode;
    auto result = cluster.parallel_launch("jobs/empty:1", {"hostname"}, opts);
    EXPECT_EQ(result.nodes_ok, 0);
    EXPECT_EQ(result.nodes_failed, 0);
    EXPECT_TRUE(result.outputs.empty());
  }
}

TEST(Cluster, LaunchPoolCachedPerWidthAcrossAlternatingCalls) {
  core::ClusterOptions copts;
  copts.arch = "x86_64";
  copts.compute_nodes = 2;
  core::Cluster cluster(copts);
  ASSERT_TRUE(build_and_push(cluster, "jobs/pool:1"));
  EXPECT_EQ(cluster.cached_launch_pools(), 0u);
  // Alternating widths must not rebuild a pool per call: each width gets
  // one pool, reused thereafter.
  for (int round = 0; round < 3; ++round) {
    auto a = cluster.parallel_launch("jobs/pool:1", {"hostname"},
                                     /*via_shared_fs=*/true, /*width=*/2);
    EXPECT_EQ(a.nodes_ok, 2);
    auto b = cluster.parallel_launch("jobs/pool:1", {"hostname"},
                                     /*via_shared_fs=*/true, /*width=*/4);
    EXPECT_EQ(b.nodes_ok, 2);
  }
  EXPECT_EQ(cluster.cached_launch_pools(), 2u);
}

TEST(Cluster, NodePullFaultFailsOnlyThatNode) {
  core::ClusterOptions copts;
  copts.arch = "x86_64";
  copts.compute_nodes = 4;
  core::Cluster cluster(copts);
  ASSERT_TRUE(build_and_push(cluster, "jobs/faulty:1"));
  core::Cluster::LaunchOptions opts;
  opts.mode = core::Cluster::LaunchMode::kPullPerNode;
  // Node 2's local image storage returns EIO on every touch: its pull
  // fails; the other nodes are unaffected.
  opts.node_syscall_layers[2].push_back(fault_layer("ch-image"));
  auto result = cluster.parallel_launch("jobs/faulty:1", {"hostname"}, opts);
  EXPECT_EQ(result.nodes_ok, 3);
  EXPECT_EQ(result.nodes_failed, 1);
  ASSERT_EQ(result.outputs.size(), 4u);
  // Outputs stay index-ordered: every healthy node's slot holds its own
  // hostname; the faulted node's slot is empty.
  for (int i = 0; i < 4; ++i) {
    const auto& out = result.outputs[static_cast<std::size_t>(i)];
    if (i == 2) {
      EXPECT_TRUE(out.empty()) << out;
    } else {
      EXPECT_NE(out.find("astra-cn" + std::to_string(i)), std::string::npos)
          << out;
    }
  }
}

TEST(Cluster, P2PLaunchRunsEverywhereWithSublinearRegistryTraffic) {
  core::ClusterOptions copts;
  copts.arch = "x86_64";
  copts.compute_nodes = 8;
  core::Cluster cluster(copts);
  ASSERT_TRUE(build_and_push(cluster, "jobs/p2p:1"));
  core::Cluster::LaunchOptions opts;
  opts.mode = core::Cluster::LaunchMode::kP2P;
  auto result = cluster.parallel_launch("jobs/p2p:1", {"hostname"}, opts);
  EXPECT_EQ(result.nodes_ok, 8);
  EXPECT_EQ(result.nodes_failed, 0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(result.outputs[static_cast<std::size_t>(i)].find(
                  "astra-cn" + std::to_string(i)),
              std::string::npos);
  }
  // The registry served ~one copy of the image, not one per node.
  ASSERT_GT(result.image_bytes, 0u);
  EXPECT_GT(result.registry_bytes, 0u);
  EXPECT_LT(result.registry_bytes, 8 * result.image_bytes / 4);
  EXPECT_GT(result.peer_bytes, 0u);

  // Warm relaunch: node caches persist, so the registry serves ~nothing.
  auto warm = cluster.parallel_launch("jobs/p2p:1", {"hostname"}, opts);
  EXPECT_EQ(warm.nodes_ok, 8);
  EXPECT_EQ(warm.registry_bytes, 0u);
  EXPECT_EQ(warm.peer_bytes, 0u);
}

TEST(Cluster, P2PFaultedSeederFallsBackToRegistry) {
  core::ClusterOptions copts;
  copts.arch = "x86_64";
  copts.compute_nodes = 4;
  core::Cluster cluster(copts);
  ASSERT_TRUE(build_and_push(cluster, "jobs/p2pfault:1"));
  core::Cluster::LaunchOptions opts;
  opts.mode = core::Cluster::LaunchMode::kP2P;
  // Node 1 cannot write its staging spool: it dies in the seed phase and
  // its shard reroutes to the registry for everyone else.
  opts.node_syscall_layers[1].push_back(fault_layer(".swarm"));
  auto result = cluster.parallel_launch("jobs/p2pfault:1", {"hostname"}, opts);
  EXPECT_EQ(result.nodes_ok, 3);
  EXPECT_EQ(result.nodes_failed, 1);
  ASSERT_EQ(result.outputs.size(), 4u);
  EXPECT_TRUE(result.outputs[1].empty());
  for (int i : {0, 2, 3}) {
    EXPECT_NE(result.outputs[static_cast<std::size_t>(i)].find(
                  "astra-cn" + std::to_string(i)),
              std::string::npos);
  }
  // Survivors completed despite the dead seeder — via registry fallback,
  // still far below per-node full pulls.
  ASSERT_GT(result.image_bytes, 0u);
  EXPECT_LT(result.registry_bytes, 4 * result.image_bytes);
}

TEST(Cluster, P2PFaultPostMortemIsCausallyOrderedAndTraceStamped) {
  // The forensics acceptance path: an injected seeder fault during a P2P
  // launch must leave a flight-recorder trail, filtered by the launch's
  // trace id, in which the fault causally precedes the registry fallback
  // it forced on the surviving peers.
  core::ClusterOptions copts;
  copts.arch = "x86_64";
  copts.compute_nodes = 4;
  core::Cluster cluster(copts);
  ASSERT_TRUE(build_and_push(cluster, "jobs/forensic:1"));
  core::Cluster::LaunchOptions opts;
  opts.mode = core::Cluster::LaunchMode::kP2P;
  opts.node_syscall_layers[1].push_back(fault_layer(".swarm", Err::enospc));
  auto result = cluster.parallel_launch("jobs/forensic:1", {"hostname"}, opts);
  EXPECT_EQ(result.nodes_ok, 3);
  EXPECT_EQ(result.nodes_failed, 1);
  ASSERT_NE(result.trace_id, 0u);

  const auto events = obs::global_flight_recorder().dump(result.trace_id);
  ASSERT_FALSE(events.empty());
  std::size_t first_fault = events.size();
  std::size_t first_fallback = events.size();
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].trace_id, result.trace_id);
    if (events[i].kind == obs::FlightKind::kFaultInjected &&
        first_fault == events.size()) {
      first_fault = i;
      // The fault fired on node 1's worker: the context stamped its lane.
      EXPECT_EQ(events[i].node, 1);
      EXPECT_NE(events[i].detail.find("ENOSPC"), std::string::npos)
          << events[i].detail;
    }
    if (events[i].kind == obs::FlightKind::kRegistryFallback &&
        first_fallback == events.size()) {
      first_fallback = i;
    }
  }
  ASSERT_LT(first_fault, events.size());
  ASSERT_LT(first_fallback, events.size());
  // Seed-phase fault before exchange-phase reroute: causal order survives
  // the merge across worker threads.
  EXPECT_LT(first_fault, first_fallback);

  // A failed launch carries its own post-mortem, already filtered and
  // rendered: the same story in human-readable form.
  ASSERT_FALSE(result.post_mortem.empty());
  EXPECT_NE(result.post_mortem.find(
                obs::TraceContext{result.trace_id}.hex()),
            std::string::npos);
  EXPECT_NE(result.post_mortem.find("ENOSPC"), std::string::npos);
  EXPECT_NE(result.post_mortem.find("node-dead"), std::string::npos);
  const std::size_t fault_pos = result.post_mortem.find("fault-injected");
  const std::size_t fallback_pos = result.post_mortem.find("registry-fallback");
  ASSERT_NE(fault_pos, std::string::npos);
  ASSERT_NE(fallback_pos, std::string::npos);
  EXPECT_LT(fault_pos, fallback_pos);
}

TEST(Cluster, UsersAreIsolatedOnSharedFs) {
  core::ClusterOptions copts;
  copts.compute_nodes = 0;
  core::Cluster cluster(copts);
  auto alice = cluster.user_on(cluster.login());
  ASSERT_TRUE(alice.ok());
  std::string out, err;
  ASSERT_EQ(cluster.login().run(*alice,
                                "echo mine > /lustre/home/alice/secret && "
                                "chmod 600 /lustre/home/alice/secret",
                                out, err),
            0);
  auto bob = cluster.login().add_user("bob", 1001);
  ASSERT_TRUE(bob.ok());
  EXPECT_NE(cluster.login().run(*bob, "cat /lustre/home/alice/secret", out,
                                err),
            0);
}

}  // namespace
}  // namespace minicon
