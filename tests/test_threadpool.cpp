// ThreadPool unit tests: result correctness independent of scheduling
// order, exception propagation through futures, and drain-on-shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/threadpool.hpp"

namespace minicon::support {
namespace {

TEST(ThreadPool, WidthDefaultsToAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.width(), 1u);
}

TEST(ThreadPool, ExplicitWidth) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.width(), 4u);
}

TEST(ThreadPool, ResultsIndependentOfSchedulingOrder) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  // Each future yields its own task's value regardless of which worker ran
  // it or in what order.
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto boom = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(boom.get(), std::runtime_error);
  // A thrown task must not kill its worker: the pool still runs new work.
  EXPECT_EQ(pool.submit([] { return 8; }).get(), 8);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    // One worker: tasks queue behind each other, so most are still pending
    // when the destructor runs. All of them must still execute.
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++ran;
      });
    }
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ShutdownDrainsThenRejectsSubmit) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> fs;
  for (int i = 0; i < 20; ++i) {
    fs.push_back(pool.submit([&ran] { ++ran; }));
  }
  pool.shutdown();
  EXPECT_EQ(ran.load(), 20);  // drain semantics: nothing submitted is lost
  EXPECT_EQ(pool.pending(), 0u);
  EXPECT_THROW((void)pool.submit([] { return 1; }), std::runtime_error);
  pool.shutdown();  // idempotent
}

TEST(ThreadPool, ManyProducersOneQueue) {
  // submit() is itself thread-safe: several producers feed one pool.
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &sum, p] {
      std::vector<std::future<void>> fs;
      for (int i = 0; i < 100; ++i) {
        fs.push_back(pool.submit([&sum, p, i] { sum += p * 1000 + i; }));
      }
      for (auto& f : fs) f.get();
    });
  }
  for (auto& t : producers) t.join();
  long expected = 0;
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < 100; ++i) expected += p * 1000 + i;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  ThreadPool& a = shared_pool();
  ThreadPool& b = shared_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.width(), 1u);
  EXPECT_EQ(a.submit([] { return 42; }).get(), 42);
}

}  // namespace
}  // namespace minicon::support
