// Interposition-stack tests: SyscallFilter transparency, TraceSyscalls
// counters, deterministic fault injection, and coherent builder diagnostics
// when a fault fires mid-build.
#include <gtest/gtest.h>

#include "core/chimage.hpp"
#include "core/cluster.hpp"
#include "core/podman.hpp"
#include "kernel/faultinject.hpp"
#include "kernel/kernel.hpp"
#include "kernel/syscall_filter.hpp"
#include "kernel/syscalls.hpp"
#include "kernel/trace.hpp"
#include "vfs/memfs.hpp"

namespace minicon {
namespace {

using kernel::FaultInjectSyscalls;
using kernel::FaultSpec;
using kernel::Process;
using kernel::SyscallFilter;
using kernel::SyscallStats;
using kernel::TraceSyscalls;

class InterposeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_shared<vfs::MemFs>(0755);
    kernel::Mount root;
    root.mountpoint = "/";
    root.fs = fs_;
    root.root = fs_->root();
    root.owner_ns = kernel_.init_userns();
    mountns_ = kernel::MountNamespace::make(std::move(root));
  }

  Process proc(std::shared_ptr<kernel::Syscalls> sys,
               vfs::Uid uid = 0, vfs::Gid gid = 0) {
    Process p;
    p.cred = uid == 0 ? kernel::Credentials::root()
                      : kernel::Credentials::user(uid, gid, {});
    p.userns = kernel_.init_userns();
    p.mountns = mountns_;
    p.sys = std::move(sys);
    return p;
  }

  kernel::Kernel kernel_;
  std::shared_ptr<vfs::MemFs> fs_;
  kernel::MountNsPtr mountns_;
};

// --- SyscallFilter: the identity layer ---------------------------------------

// A bare filter (and a stack of them) must behave exactly like the kernel
// table across the permission matrix that test_syscalls pins down.
TEST_F(InterposeTest, BareFilterIsIdentityAcrossPermissionMatrix) {
  struct PermCase {
    std::uint32_t mode;
    vfs::Uid file_uid;
    vfs::Gid file_gid;
    vfs::Uid proc_uid;
    vfs::Gid proc_gid;
    int want;
  };
  const PermCase cases[] = {
      {0600, 1000, 1000, 1000, 1000, kernel::kReadOk},
      {0600, 1000, 1000, 1000, 1000, kernel::kExecOk},
      {0640, 0, 1000, 1001, 1000, kernel::kReadOk},
      {0640, 0, 1000, 1001, 1000, kernel::kWriteOk},
      {0604, 0, 0, 1001, 1001, kernel::kReadOk},
      {0640, 0, 0, 1001, 1001, kernel::kReadOk},
      {0007, 1000, 1000, 1000, 1000, kernel::kReadOk},
      {0070, 1000, 1000, 1001, 1000, kernel::kReadOk},
      {0007, 1000, 1000, 1001, 1000, kernel::kReadOk},
  };
  auto raw = kernel_.syscalls();
  auto filtered = std::make_shared<SyscallFilter>(
      std::make_shared<SyscallFilter>(raw));  // two layers deep
  for (const auto& c : cases) {
    Process root = proc(raw);
    ASSERT_TRUE(root.sys->write_file(root, "/f", "x", false, 0777).ok());
    ASSERT_TRUE(root.sys->chmod(root, "/f", c.mode).ok());
    ASSERT_TRUE(root.sys->chown(root, "/f", c.file_uid, c.file_gid, true).ok());
    Process direct = proc(raw, c.proc_uid, c.proc_gid);
    Process wrapped = proc(filtered, c.proc_uid, c.proc_gid);
    const auto want = direct.sys->access(direct, "/f", c.want);
    const auto got = wrapped.sys->access(wrapped, "/f", c.want);
    EXPECT_EQ(want.ok(), got.ok());
    if (!want.ok()) {
      EXPECT_EQ(want.error(), got.error());
    }
    ASSERT_TRUE(root.sys->unlink(root, "/f").ok());
  }
}

TEST_F(InterposeTest, FilterForwardsDataAndMetadataOps) {
  auto filtered = std::make_shared<SyscallFilter>(kernel_.syscalls());
  Process p = proc(filtered);
  ASSERT_TRUE(p.sys->mkdir(p, "/d", 0755).ok());
  ASSERT_TRUE(p.sys->write_file(p, "/d/f", "hello", false, 0644).ok());
  EXPECT_EQ(*p.sys->read_file(p, "/d/f"), "hello");
  ASSERT_TRUE(p.sys->symlink(p, "/d/f", "/link").ok());
  EXPECT_EQ(*p.sys->readlink(p, "/link"), "/d/f");
  ASSERT_TRUE(p.sys->set_xattr(p, "/d/f", "user.k", "v").ok());
  EXPECT_EQ(*p.sys->get_xattr(p, "/d/f", "user.k"), "v");
  auto entries = p.sys->readdir(p, "/d");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 1u);
  EXPECT_EQ(p.sys->stat(p, "/nope").error(), Err::enoent);
}

TEST_F(InterposeTest, DepthWalksTheWholeStack) {
  auto raw = kernel_.syscalls();
  EXPECT_EQ(kernel::interposition_depth(raw.get()), 0);
  auto one = std::make_shared<SyscallFilter>(raw);
  EXPECT_EQ(kernel::interposition_depth(one.get()), 1);
  auto two = std::make_shared<FaultInjectSyscalls>(one, 1,
                                                   std::vector<FaultSpec>{});
  auto three = std::make_shared<TraceSyscalls>(two);
  EXPECT_EQ(kernel::interposition_depth(three.get()), 3);
  // Introspection is transparent: a bare filter reports the interposer-ness
  // of whatever it wraps.
  EXPECT_FALSE(one->is_interposer());
  EXPECT_FALSE(three->is_interposer());
}

// --- TraceSyscalls -----------------------------------------------------------

TEST_F(InterposeTest, TraceCountsCallsAndErrnos) {
  auto stats = std::make_shared<SyscallStats>();
  auto traced = std::make_shared<TraceSyscalls>(kernel_.syscalls(), stats);
  Process p = proc(traced);
  ASSERT_TRUE(p.sys->write_file(p, "/a", "1", false, 0644).ok());
  ASSERT_TRUE(p.sys->write_file(p, "/b", "2", false, 0644).ok());
  EXPECT_TRUE(p.sys->read_file(p, "/a").ok());
  EXPECT_FALSE(p.sys->stat(p, "/missing").ok());
  EXPECT_FALSE(p.sys->read_file(p, "/missing").ok());
  EXPECT_EQ(stats->calls("write"), 2u);
  EXPECT_EQ(stats->calls("read"), 2u);
  EXPECT_EQ(stats->calls("stat"), 1u);
  EXPECT_EQ(stats->errno_count(Err::enoent), 2u);
  const auto t = stats->totals();
  EXPECT_EQ(t.calls, 5u);
  EXPECT_EQ(t.errors, 2u);
  EXPECT_EQ(SyscallStats::errno_summary({}, t), "ENOENT x2");
}

TEST_F(InterposeTest, TraceEmitsTranscriptLines) {
  Transcript tr;
  kernel::TraceOptions topts;
  topts.transcript = &tr;
  auto traced = std::make_shared<TraceSyscalls>(
      kernel_.syscalls(), nullptr, topts);
  Process p = proc(traced);
  (void)p.sys->write_file(p, "/a", "1", false, 0644);
  (void)p.sys->stat(p, "/missing");
  EXPECT_TRUE(tr.contains("write(\"/a\") = 0"));
  EXPECT_TRUE(tr.contains("stat(\"/missing\") = -1 ENOENT"));
}

// --- FaultInjectSyscalls -----------------------------------------------------

// The same seed over the same workload must fail at exactly the same point.
TEST_F(InterposeTest, SeededFaultInjectionIsDeterministic) {
  auto workload = [&](std::uint64_t seed) {
    auto inject = std::make_shared<FaultInjectSyscalls>(
        kernel_.syscalls(), seed,
        FaultSpec{"write", "", Err::eio, /*probability=*/0.4});
    Process p = proc(inject);
    for (int i = 0; i < 50; ++i) {
      (void)p.sys->write_file(p, "/f" + std::to_string(i), "x", false, 0644);
    }
    return inject->injected();
  };
  const auto a = workload(42);
  const auto b = workload(42);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].path, b[i].path);
    EXPECT_EQ(a[i].error, b[i].error);
  }
}

TEST_F(InterposeTest, FaultSpecSkipMaxAndPathMatch) {
  auto inject = std::make_shared<FaultInjectSyscalls>(
      kernel_.syscalls(), 7,
      FaultSpec{"write", "/data/", Err::enospc, 1.0, /*skip=*/1,
                /*max_failures=*/1});
  Process p = proc(inject);
  ASSERT_TRUE(p.sys->mkdir(p, "/data", 0755).ok());
  // Non-matching path: never fails.
  EXPECT_TRUE(p.sys->write_file(p, "/other", "x", false, 0644).ok());
  // First match is skipped, second fails, third passes (max_failures hit).
  EXPECT_TRUE(p.sys->write_file(p, "/data/a", "x", false, 0644).ok());
  EXPECT_EQ(p.sys->write_file(p, "/data/b", "x", false, 0644).error(),
            Err::enospc);
  EXPECT_TRUE(p.sys->write_file(p, "/data/c", "x", false, 0644).ok());
  ASSERT_EQ(inject->injected().size(), 1u);
  EXPECT_EQ(inject->injected()[0].op, "write");
  EXPECT_EQ(inject->injected()[0].path, "/data/b");
}

// Trace stacked outside fault injection observes the injected errno — the
// canonical layer ordering for the builders.
TEST_F(InterposeTest, TraceObservesInjectedErrnos) {
  auto stats = std::make_shared<SyscallStats>();
  auto inject = std::make_shared<FaultInjectSyscalls>(
      kernel_.syscalls(), 1, FaultSpec{"write", "", Err::enospc});
  auto traced = std::make_shared<TraceSyscalls>(inject, stats);
  Process p = proc(traced);
  EXPECT_EQ(p.sys->write_file(p, "/f", "x", false, 0644).error(), Err::enospc);
  EXPECT_EQ(stats->errno_count(Err::enospc), 1u);
}

// --- builders under trace + fault injection ----------------------------------

constexpr const char* kCentosDockerfile =
    "FROM centos:7\n"
    "RUN echo hello\n"
    "RUN yum install -y openssh\n";

class BuilderInterposeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::ClusterOptions copts;
    copts.arch = "x86_64";
    copts.compute_nodes = 0;
    cluster_ = std::make_unique<core::Cluster>(copts);
    auto alice = cluster_->user_on(cluster_->login());
    ASSERT_TRUE(alice.ok());
    alice_ = *alice;
  }

  static kernel::SyscallLayerFn enospc_on_write(std::uint64_t seed) {
    return [seed](std::shared_ptr<kernel::Syscalls> inner) {
      return std::make_shared<FaultInjectSyscalls>(
          std::move(inner), seed, FaultSpec{"write", "", Err::enospc});
    };
  }

  std::unique_ptr<core::Cluster> cluster_;
  kernel::Process alice_;
};

TEST_F(BuilderInterposeTest, ChImageTracedBuildReportsPerInstructionCounts) {
  core::ChImageOptions opts;
  opts.trace_syscalls = true;
  core::ChImage ch(cluster_->login(), alice_, &cluster_->registry(), opts);
  Transcript t;
  (void)ch.build("traced", kCentosDockerfile, t);
  EXPECT_TRUE(t.contains("syscalls: instruction 2:")) << t.text();
  EXPECT_TRUE(t.contains("depth 1")) << t.text();
  ASSERT_NE(ch.syscall_stats(), nullptr);
  EXPECT_GT(ch.syscall_stats()->totals().calls, 0u);
  EXPECT_EQ(ch.last_interposition_depth(), 1);
}

// A mid-build ENOSPC yields a coherent diagnostic (instruction index plus
// errno summary), not a crash or a silent success.
TEST_F(BuilderInterposeTest, ChImageMidBuildEnospcIsCoherent) {
  core::ChImageOptions opts;
  opts.trace_syscalls = true;
  opts.syscall_layers.push_back(enospc_on_write(42));
  core::ChImage ch(cluster_->login(), alice_, &cluster_->registry(), opts);
  Transcript t;
  const int status = ch.build("doomed", kCentosDockerfile, t);
  EXPECT_NE(status, 0);
  EXPECT_TRUE(t.contains("ENOSPC")) << t.text();
  EXPECT_TRUE(t.contains("error: RUN instruction")) << t.text();
  EXPECT_TRUE(t.contains("error: build failed: RUN command exited with"))
      << t.text();
  EXPECT_GT(ch.syscall_stats()->errno_count(Err::enospc), 0u);
  // Fault layer + trace layer.
  EXPECT_EQ(ch.last_interposition_depth(), 2);
}

// Same seed, same Dockerfile: the build fails at the same instruction with
// the same transcript diagnostics.
TEST_F(BuilderInterposeTest, ChImageFaultedBuildIsReplayable) {
  auto run_once = [&] {
    core::ChImageOptions opts;
    opts.trace_syscalls = true;
    opts.syscall_layers.push_back(enospc_on_write(42));
    core::ChImage ch(cluster_->login(), alice_, &cluster_->registry(), opts);
    Transcript t;
    const int status = ch.build("doomed", kCentosDockerfile, t);
    std::string diag;
    for (const auto& line : t.lines()) {
      if (line.find("error: RUN instruction") != std::string::npos) diag = line;
    }
    return std::make_pair(status, diag);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_FALSE(a.second.empty());
}

// Podman: a faulted RUN abandons the in-progress layer — the tag is never
// registered and the failure is reported with instruction index + errno.
TEST_F(BuilderInterposeTest, PodmanFaultedBuildRollsBackLayer) {
  core::PodmanOptions opts;
  opts.trace_syscalls = true;
  opts.syscall_layers.push_back(enospc_on_write(42));
  core::Podman podman(cluster_->login(), alice_, &cluster_->registry(), opts);
  Transcript t;
  const int status = podman.build("pfail", kCentosDockerfile, t);
  EXPECT_NE(status, 0);
  EXPECT_EQ(podman.config("pfail"), nullptr);
  EXPECT_TRUE(t.contains("ENOSPC")) << t.text();
  EXPECT_TRUE(t.contains("Error: RUN instruction")) << t.text();
  EXPECT_TRUE(t.contains("while running runtime: exit status")) << t.text();
  EXPECT_GT(podman.syscall_stats()->errno_count(Err::enospc), 0u);
}

// The shell-level `strace` builtin wraps the child command in a trace layer
// and prints an `strace -c` style summary on stderr.
TEST_F(BuilderInterposeTest, StraceBuiltinPrintsSummary) {
  std::string out, err;
  const int status =
      cluster_->login().run(alice_, "strace -c cat /etc/passwd", out, err);
  EXPECT_EQ(status, 0) << err;
  EXPECT_NE(err.find("syscall"), std::string::npos) << err;
  EXPECT_NE(err.find("read"), std::string::npos) << err;
  EXPECT_NE(err.find("total"), std::string::npos) << err;
  EXPECT_NE(out.find("alice"), std::string::npos) << out;
}

TEST_F(BuilderInterposeTest, PodmanCleanBuildStillSucceedsUnderTrace) {
  core::PodmanOptions opts;
  opts.trace_syscalls = true;
  core::Podman podman(cluster_->login(), alice_, &cluster_->registry(), opts);
  Transcript t;
  const int status = podman.build("ok", kCentosDockerfile, t);
  EXPECT_EQ(status, 0) << t.text();
  EXPECT_NE(podman.config("ok"), nullptr);
  EXPECT_TRUE(t.contains("syscalls: step 3:")) << t.text();
}

}  // namespace
}  // namespace minicon
